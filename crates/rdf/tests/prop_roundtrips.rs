//! Property tests: N-Triples serialization round-trips for arbitrary terms,
//! and dictionary identity laws.

use rapida_testkit::prelude::*;
use rapida_rdf::{parse_ntriples, write_ntriples, Dictionary, Term, TermTriple};

/// Printable-ish strings including the characters the escaper must handle.
fn literal_text() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~\u{e0}-\u{ff}\n\t\"\\\\]{0,40}").unwrap()
}

fn iri_text() -> impl Strategy<Value = String> {
    proptest::string::string_regex("http://[a-z]{1,8}\\.example/[A-Za-z0-9_/#-]{0,24}").unwrap()
}

fn bnode_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z][A-Za-z0-9]{0,12}").unwrap()
}

fn lang_tag() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z]{2}(-[A-Z]{2})?").unwrap()
}

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        iri_text().prop_map(Term::iri),
        literal_text().prop_map(Term::literal),
        (literal_text(), iri_text()).prop_map(|(l, d)| Term::typed_literal(l, d)),
        (literal_text(), lang_tag()).prop_map(|(l, t)| Term::lang_literal(l, t)),
        any::<i64>().prop_map(Term::integer),
        (-1e12f64..1e12).prop_map(Term::decimal),
    ]
}

fn arb_subject() -> impl Strategy<Value = Term> {
    prop_oneof![
        iri_text().prop_map(Term::iri),
        bnode_label().prop_map(Term::bnode),
    ]
}

proptest! {
    #[test]
    fn ntriples_roundtrip(
        triples in proptest::collection::vec(
            (arb_subject(), iri_text().prop_map(Term::iri), arb_term())
                .prop_map(|(s, p, o)| TermTriple::new(s, p, o)),
            0..20,
        )
    ) {
        let doc = write_ntriples(&triples);
        let parsed = parse_ntriples(&doc).expect("serialized output must parse");
        prop_assert_eq!(parsed, triples);
    }

    #[test]
    fn dictionary_is_injective(terms in proptest::collection::vec(arb_term(), 0..50)) {
        let dict = Dictionary::new();
        let ids: Vec<_> = terms.iter().map(|t| dict.intern(t)).collect();
        // Same term -> same id; different terms -> different ids.
        for (i, a) in terms.iter().enumerate() {
            for (j, b) in terms.iter().enumerate() {
                prop_assert_eq!(a == b, ids[i] == ids[j]);
            }
        }
        // Ids resolve back to the interned term.
        for (t, id) in terms.iter().zip(&ids) {
            prop_assert_eq!(&dict.term(*id), t);
        }
    }

    #[test]
    fn numeric_cache_matches_term(term in arb_term()) {
        let dict = Dictionary::new();
        let id = dict.intern(&term);
        prop_assert_eq!(dict.numeric_value(id), term.numeric_value());
    }
}
