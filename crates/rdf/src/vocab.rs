//! Well-known vocabulary IRIs used across the workspace.

/// `rdf:type` — the property whose object-based partitioning the paper's
/// overlap definition (Def 3.1) and Hive's property-object partitions
/// special-case.
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// `rdfs:label`.
pub const RDFS_LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";

/// Base namespace for the BSBM-like synthetic vocabulary.
pub const BSBM_NS: &str = "http://bsbm.example.org/v01/";

/// Base namespace for the Chem2Bio2RDF-like synthetic vocabulary.
pub const CHEM_NS: &str = "http://chem2bio2rdf.example.org/";

/// Base namespace for the PubMed-like synthetic vocabulary.
pub const PUBMED_NS: &str = "http://pubmed.example.org/";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rdf_type_is_the_w3c_iri() {
        assert!(RDF_TYPE.starts_with("http://www.w3.org/1999/02/22-rdf-syntax-ns#"));
    }
}
