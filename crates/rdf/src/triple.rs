//! Triples: dictionary-encoded [`Triple`] and term-level [`TermTriple`].

use crate::dict::{Dictionary, TermId};
use crate::term::Term;
use std::fmt;

/// A dictionary-encoded RDF triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// Subject id.
    pub s: TermId,
    /// Property (predicate) id.
    pub p: TermId,
    /// Object id.
    pub o: TermId,
}

impl Triple {
    /// Construct a triple from ids.
    #[inline]
    pub fn new(s: TermId, p: TermId, o: TermId) -> Self {
        Triple { s, p, o }
    }

    /// Decode this triple against a dictionary.
    pub fn decode(&self, dict: &Dictionary) -> TermTriple {
        TermTriple {
            s: dict.term(self.s),
            p: dict.term(self.p),
            o: dict.term(self.o),
        }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} {} {})", self.s, self.p, self.o)
    }
}

/// A triple of full [`Term`]s (pre-encoding / post-decoding form).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TermTriple {
    /// Subject term.
    pub s: Term,
    /// Property term.
    pub p: Term,
    /// Object term.
    pub o: Term,
}

impl TermTriple {
    /// Construct from terms.
    pub fn new(s: Term, p: Term, o: Term) -> Self {
        TermTriple { s, p, o }
    }

    /// Encode against a dictionary, interning all three components.
    pub fn encode(&self, dict: &Dictionary) -> Triple {
        Triple {
            s: dict.intern(&self.s),
            p: dict.intern(&self.p),
            o: dict.intern(&self.o),
        }
    }
}

impl fmt::Display for TermTriple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.s, self.p, self.o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let dict = Dictionary::new();
        let tt = TermTriple::new(
            Term::iri("http://x/s"),
            Term::iri("http://x/p"),
            Term::literal("o"),
        );
        let t = tt.encode(&dict);
        assert_eq!(t.decode(&dict), tt);
    }

    #[test]
    fn display_formats() {
        let tt = TermTriple::new(
            Term::iri("http://x/s"),
            Term::iri("http://x/p"),
            Term::integer(1),
        );
        let line = tt.to_string();
        assert!(line.starts_with("<http://x/s> <http://x/p> \"1\""));
        assert!(line.ends_with(" ."));
    }
}
