//! Dictionary encoding: a concurrent bidirectional interner mapping
//! [`Term`]s to dense `u64` [`TermId`]s.
//!
//! Numeric literal values are parsed once at intern time and cached, so
//! aggregation operators never re-parse lexical forms on the hot path.

use crate::fxhash::FxHashMap;
use crate::term::Term;
use std::fmt;
use std::sync::{Arc, RwLock};

/// A dictionary-encoded term identifier.
///
/// Ids are dense, starting at 0, assigned in intern order. `TermId` is the
/// currency of the whole system: triples, triplegroups and binding rows all
/// hold `TermId`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u64);

impl TermId {
    /// The raw id value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

#[derive(Default)]
struct DictInner {
    terms: Vec<Term>,
    /// Cached numeric value per id (same index as `terms`).
    numeric: Vec<Option<f64>>,
    index: FxHashMap<Term, TermId>,
}

/// A thread-safe term dictionary.
///
/// Cloning a `Dictionary` is cheap (it is an `Arc` handle); all clones share
/// the same underlying interner.
#[derive(Clone, Default)]
pub struct Dictionary {
    inner: Arc<RwLock<DictInner>>,
}

impl Dictionary {
    /// Create an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a term, returning its id. Idempotent.
    pub fn intern(&self, term: &Term) -> TermId {
        if let Some(id) = self.inner.read().unwrap().index.get(term) {
            return *id;
        }
        let mut inner = self.inner.write().unwrap();
        if let Some(id) = inner.index.get(term) {
            return *id;
        }
        let id = TermId(inner.terms.len() as u64);
        inner.terms.push(term.clone());
        inner.numeric.push(term.numeric_value());
        inner.index.insert(term.clone(), id);
        id
    }

    /// Intern an IRI given by string.
    pub fn intern_iri(&self, iri: &str) -> TermId {
        self.intern(&Term::iri(iri))
    }

    /// Look up an already-interned term without inserting.
    pub fn lookup(&self, term: &Term) -> Option<TermId> {
        self.inner.read().unwrap().index.get(term).copied()
    }

    /// Resolve an id back to its term. Panics on unknown ids (ids only come
    /// from this dictionary, so an unknown id is a logic error).
    pub fn term(&self, id: TermId) -> Term {
        self.inner.read().unwrap().terms[id.0 as usize].clone()
    }

    /// The lexical form of the term behind `id` (IRI string / literal lexical
    /// form / bnode label).
    pub fn lexical(&self, id: TermId) -> String {
        self.inner.read().unwrap().terms[id.0 as usize]
            .lexical()
            .to_string()
    }

    /// Cached numeric value of the literal behind `id`, if numeric.
    #[inline]
    pub fn numeric_value(&self, id: TermId) -> Option<f64> {
        self.inner.read().unwrap().numeric[id.0 as usize]
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap().terms.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of numeric values indexed by raw id, for lock-free access in
    /// parallel operators. Index `i` holds the numeric value of `TermId(i)`.
    pub fn numeric_snapshot(&self) -> Vec<Option<f64>> {
        self.inner.read().unwrap().numeric.clone()
    }

    /// Snapshot of lexical forms indexed by raw id, for lock-free access in
    /// parallel operators (e.g. `regex`-style FILTERs).
    pub fn lexical_snapshot(&self) -> Vec<String> {
        self.inner
            .read()
            .unwrap()
            .terms
            .iter()
            .map(|t| t.lexical().to_string())
            .collect()
    }
}

impl fmt::Debug for Dictionary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dictionary({} terms)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let d = Dictionary::new();
        let a = d.intern(&Term::iri("http://x/a"));
        let b = d.intern(&Term::iri("http://x/a"));
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn distinct_terms_get_distinct_ids() {
        let d = Dictionary::new();
        let a = d.intern(&Term::iri("http://x/a"));
        let b = d.intern(&Term::literal("http://x/a"));
        assert_ne!(a, b, "IRI and literal with same lexical form differ");
    }

    #[test]
    fn roundtrip_term() {
        let d = Dictionary::new();
        let t = Term::lang_literal("bonjour", "fr");
        let id = d.intern(&t);
        assert_eq!(d.term(id), t);
    }

    #[test]
    fn numeric_cache() {
        let d = Dictionary::new();
        let id = d.intern(&Term::decimal(3.25));
        assert_eq!(d.numeric_value(id), Some(3.25));
        let id2 = d.intern(&Term::literal("not a number"));
        assert_eq!(d.numeric_value(id2), None);
    }

    #[test]
    fn lookup_does_not_insert() {
        let d = Dictionary::new();
        assert_eq!(d.lookup(&Term::iri("http://x/a")), None);
        assert!(d.is_empty());
        let id = d.intern(&Term::iri("http://x/a"));
        assert_eq!(d.lookup(&Term::iri("http://x/a")), Some(id));
    }

    #[test]
    fn snapshots_align_with_ids() {
        let d = Dictionary::new();
        let a = d.intern(&Term::integer(10));
        let b = d.intern(&Term::literal("xyz"));
        let nums = d.numeric_snapshot();
        let lex = d.lexical_snapshot();
        assert_eq!(nums[a.0 as usize], Some(10.0));
        assert_eq!(nums[b.0 as usize], None);
        assert_eq!(lex[b.0 as usize], "xyz");
    }

    #[test]
    fn concurrent_intern_consistent() {
        let d = Dictionary::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let d = d.clone();
                std::thread::spawn(move || {
                    (0..1000)
                        .map(|i| d.intern(&Term::iri(format!("http://x/{i}"))))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<TermId>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for r in &results[1..] {
            assert_eq!(r, &results[0], "all threads see identical ids");
        }
        assert_eq!(d.len(), 1000);
    }
}
