//! A small, strict N-Triples parser and serializer.
//!
//! Supports the subset needed by the workspace: IRIs, blank nodes, plain /
//! typed / language-tagged literals with the standard escapes, `#` comments,
//! and blank lines.

use crate::term::Term;
use crate::triple::TermTriple;
use std::fmt;

/// Error produced by the N-Triples parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NtError {
    /// 1-based line number of the offending line (0 when unknown).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for NtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N-Triples parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for NtError {}

struct Cursor<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(input: &'a str) -> Self {
        Cursor {
            input: input.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len()
            && (self.input[self.pos] == b' ' || self.input[self.pos] == b'\t')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == c => Ok(()),
            Some(got) => Err(format!("expected '{}', found '{}'", c as char, got as char)),
            None => Err(format!("expected '{}', found end of line", c as char)),
        }
    }

    fn take_until(&mut self, stop: u8) -> Result<&'a str, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == stop {
                let s = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| "invalid utf-8".to_string())?;
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        Err(format!("unterminated token, expected '{}'", stop as char))
    }

    fn parse_term(&mut self) -> Result<Term, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'<') => {
                self.bump();
                let iri = self.take_until(b'>')?;
                Ok(Term::iri(iri))
            }
            Some(b'_') => {
                self.bump();
                self.expect(b':')?;
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c == b' ' || c == b'\t' {
                        break;
                    }
                    self.pos += 1;
                }
                let label = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| "invalid utf-8".to_string())?;
                if label.is_empty() {
                    return Err("empty blank node label".into());
                }
                Ok(Term::bnode(label))
            }
            Some(b'"') => {
                self.bump();
                let mut lexical = String::new();
                loop {
                    match self.bump() {
                        None => return Err("unterminated string literal".into()),
                        Some(b'"') => break,
                        Some(b'\\') => match self.bump() {
                            Some(b'n') => lexical.push('\n'),
                            Some(b'r') => lexical.push('\r'),
                            Some(b't') => lexical.push('\t'),
                            Some(b'"') => lexical.push('"'),
                            Some(b'\\') => lexical.push('\\'),
                            Some(c) => return Err(format!("bad escape '\\{}'", c as char)),
                            None => return Err("dangling escape".into()),
                        },
                        Some(c) => {
                            // Re-assemble multi-byte UTF-8 sequences.
                            if c < 0x80 {
                                lexical.push(c as char);
                            } else {
                                let start = self.pos - 1;
                                let width = utf8_width(c);
                                let end = start + width;
                                if end > self.input.len() {
                                    return Err("truncated utf-8".into());
                                }
                                let s = std::str::from_utf8(&self.input[start..end])
                                    .map_err(|_| "invalid utf-8".to_string())?;
                                lexical.push_str(s);
                                self.pos = end;
                            }
                        }
                    }
                }
                match self.peek() {
                    Some(b'^') => {
                        self.bump();
                        self.expect(b'^')?;
                        self.expect(b'<')?;
                        let dt = self.take_until(b'>')?;
                        Ok(Term::typed_literal(lexical, dt))
                    }
                    Some(b'@') => {
                        self.bump();
                        let start = self.pos;
                        while let Some(c) = self.peek() {
                            if c == b' ' || c == b'\t' {
                                break;
                            }
                            self.pos += 1;
                        }
                        let lang = std::str::from_utf8(&self.input[start..self.pos])
                            .map_err(|_| "invalid utf-8".to_string())?;
                        Ok(Term::lang_literal(lexical, lang))
                    }
                    _ => Ok(Term::literal(lexical)),
                }
            }
            Some(c) => Err(format!("unexpected character '{}'", c as char)),
            None => Err("unexpected end of line".into()),
        }
    }
}

fn utf8_width(first: u8) -> usize {
    if first >= 0xF0 {
        4
    } else if first >= 0xE0 {
        3
    } else {
        2
    }
}

/// Parse a single N-Triples line. Returns `Ok(None)` for blank/comment lines.
pub fn parse_ntriples_line(line: &str) -> Result<Option<TermTriple>, String> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    let mut cur = Cursor::new(trimmed);
    let s = cur.parse_term()?;
    let p = cur.parse_term()?;
    let o = cur.parse_term()?;
    cur.skip_ws();
    cur.expect(b'.')?;
    cur.skip_ws();
    if cur.peek().is_some() {
        return Err("trailing content after '.'".into());
    }
    if s.is_literal() {
        return Err("literal in subject position".into());
    }
    if !p.is_iri() {
        return Err("non-IRI in property position".into());
    }
    Ok(Some(TermTriple::new(s, p, o)))
}

/// Parse an entire N-Triples document.
pub fn parse_ntriples(doc: &str) -> Result<Vec<TermTriple>, NtError> {
    let mut out = Vec::new();
    for (i, line) in doc.lines().enumerate() {
        match parse_ntriples_line(line) {
            Ok(Some(t)) => out.push(t),
            Ok(None) => {}
            Err(message) => {
                return Err(NtError {
                    line: i + 1,
                    message,
                })
            }
        }
    }
    Ok(out)
}

/// Serialize triples as an N-Triples document.
pub fn write_ntriples(triples: &[TermTriple]) -> String {
    let mut out = String::new();
    for t in triples {
        out.push_str(&t.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_iri_triple() {
        let t = parse_ntriples_line("<http://x/s> <http://x/p> <http://x/o> .")
            .unwrap()
            .unwrap();
        assert_eq!(t.s, Term::iri("http://x/s"));
        assert_eq!(t.p, Term::iri("http://x/p"));
        assert_eq!(t.o, Term::iri("http://x/o"));
    }

    #[test]
    fn parses_typed_literal() {
        let t = parse_ntriples_line(
            "<http://x/s> <http://x/p> \"42\"^^<http://www.w3.org/2001/XMLSchema#integer> .",
        )
        .unwrap()
        .unwrap();
        assert_eq!(t.o.numeric_value(), Some(42.0));
    }

    #[test]
    fn parses_lang_literal_and_bnode() {
        let t = parse_ntriples_line("_:b1 <http://x/p> \"chat\"@fr .")
            .unwrap()
            .unwrap();
        assert_eq!(t.s, Term::bnode("b1"));
        assert_eq!(t.o, Term::lang_literal("chat", "fr"));
    }

    #[test]
    fn skips_comments_and_blanks() {
        let doc = "# a comment\n\n<http://x/s> <http://x/p> \"v\" .\n";
        let ts = parse_ntriples(doc).unwrap();
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn rejects_literal_subject() {
        let err = parse_ntriples("\"lit\" <http://x/p> <http://x/o> .").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("subject"));
    }

    #[test]
    fn rejects_missing_dot() {
        assert!(parse_ntriples("<http://x/s> <http://x/p> <http://x/o>").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_ntriples("<http://x/s> <http://x/p> <http://x/o> . x").is_err());
    }

    #[test]
    fn escape_roundtrip() {
        let original = TermTriple::new(
            Term::iri("http://x/s"),
            Term::iri("http://x/p"),
            Term::literal("line1\nline2\t\"quoted\" \\slash"),
        );
        let doc = write_ntriples(std::slice::from_ref(&original));
        let parsed = parse_ntriples(&doc).unwrap();
        assert_eq!(parsed, vec![original]);
    }

    #[test]
    fn unicode_literal_roundtrip() {
        let original = TermTriple::new(
            Term::iri("http://x/s"),
            Term::iri("http://x/p"),
            Term::literal("καλημέρα 世界 🌍"),
        );
        let doc = write_ntriples(std::slice::from_ref(&original));
        let parsed = parse_ntriples(&doc).unwrap();
        assert_eq!(parsed, vec![original]);
    }
}
