//! # rapida-rdf
//!
//! RDF data model substrate for the RAPIDA workspace: terms, dictionary
//! (string interning) encoding, triples, and N-Triples I/O.
//!
//! Everything downstream (storage, NTGA operators, query engines) works over
//! dictionary-encoded [`TermId`]s; lexical forms and numeric literal values are
//! resolved through a shared [`Dictionary`].
//!
//! ```
//! use rapida_rdf::{Dictionary, Term, Triple};
//!
//! let dict = Dictionary::new();
//! let s = dict.intern(&Term::iri("http://example.org/p1"));
//! let p = dict.intern(&Term::iri("http://example.org/price"));
//! let o = dict.intern(&Term::typed_literal("42.5", "http://www.w3.org/2001/XMLSchema#decimal"));
//! let t = Triple::new(s, p, o);
//! assert_eq!(dict.numeric_value(t.o), Some(42.5));
//! ```

mod dict;
mod graph;
mod ntriples;
mod term;
mod triple;
pub mod vocab;

pub use dict::{Dictionary, TermId};
pub use graph::{Graph, GraphStats};
pub use ntriples::{parse_ntriples, parse_ntriples_line, write_ntriples, NtError};
pub use term::{Term, XSD_DATE, XSD_DECIMAL, XSD_DOUBLE, XSD_INTEGER, XSD_STRING};
pub use triple::{TermTriple, Triple};

/// A fast, non-cryptographic hasher (FxHash algorithm as used by rustc).
///
/// The sanctioned dependency list has no `rustc-hash`, so the ~20-line
/// algorithm is reproduced here. Used for all hot-path hash maps keyed by
/// dictionary ids. Not HashDoS-resistant; inputs are internal ids, not
/// attacker-controlled strings.
pub mod fxhash {
    use std::hash::{BuildHasherDefault, Hasher};

    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    /// FxHash hasher state.
    #[derive(Default, Clone)]
    pub struct FxHasher {
        hash: u64,
    }

    impl FxHasher {
        #[inline]
        fn add_to_hash(&mut self, i: u64) {
            self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
        }
    }

    impl Hasher for FxHasher {
        #[inline]
        fn write(&mut self, bytes: &[u8]) {
            for chunk in bytes.chunks(8) {
                let mut buf = [0u8; 8];
                buf[..chunk.len()].copy_from_slice(chunk);
                self.add_to_hash(u64::from_le_bytes(buf));
            }
        }
        #[inline]
        fn write_u8(&mut self, i: u8) {
            self.add_to_hash(i as u64);
        }
        #[inline]
        fn write_u32(&mut self, i: u32) {
            self.add_to_hash(i as u64);
        }
        #[inline]
        fn write_u64(&mut self, i: u64) {
            self.add_to_hash(i);
        }
        #[inline]
        fn write_usize(&mut self, i: usize) {
            self.add_to_hash(i as u64);
        }
        #[inline]
        fn finish(&self) -> u64 {
            self.hash
        }
    }

    /// `HashMap` keyed with FxHash.
    pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
    /// `HashSet` keyed with FxHash.
    pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;
}

pub use fxhash::{FxHashMap, FxHashSet};

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{Hash, Hasher};

    #[test]
    fn fxhash_distributes_ids() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            let mut h = fxhash::FxHasher::default();
            i.hash(&mut h);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000, "no collisions on small sequential ids");
    }

    #[test]
    fn fxhash_str_stable() {
        let mut h1 = fxhash::FxHasher::default();
        h1.write(b"hello world");
        let mut h2 = fxhash::FxHasher::default();
        h2.write(b"hello world");
        assert_eq!(h1.finish(), h2.finish());
        let mut h3 = fxhash::FxHasher::default();
        h3.write(b"hello worle");
        assert_ne!(h1.finish(), h3.finish());
    }
}
