//! A simple in-memory triple collection with its dictionary and summary
//! statistics. Storage layouts (vertical partitions, triplegroups) are built
//! from a [`Graph`] by `rapida-storage`.

use crate::dict::{Dictionary, TermId};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::term::Term;
use crate::triple::{TermTriple, Triple};
use crate::vocab::RDF_TYPE;

/// A set of dictionary-encoded triples plus the dictionary that encodes them.
#[derive(Clone, Debug)]
pub struct Graph {
    /// Shared dictionary for this graph.
    pub dict: Dictionary,
    /// The triples, in insertion order (duplicates removed).
    pub triples: Vec<Triple>,
    seen: FxHashSet<Triple>,
}

impl Graph {
    /// Create an empty graph with a fresh dictionary.
    pub fn new() -> Self {
        Graph::with_dict(Dictionary::new())
    }

    /// Create an empty graph sharing an existing dictionary.
    pub fn with_dict(dict: Dictionary) -> Self {
        Graph {
            dict,
            triples: Vec::new(),
            seen: FxHashSet::default(),
        }
    }

    /// Insert an encoded triple. Returns `true` if it was new.
    pub fn insert(&mut self, t: Triple) -> bool {
        if self.seen.insert(t) {
            self.triples.push(t);
            true
        } else {
            false
        }
    }

    /// Intern and insert a term-level triple.
    pub fn insert_terms(&mut self, s: &Term, p: &Term, o: &Term) -> bool {
        let t = Triple::new(self.dict.intern(s), self.dict.intern(p), self.dict.intern(o));
        self.insert(t)
    }

    /// Load triples parsed from an N-Triples document.
    pub fn insert_term_triples<'a>(&mut self, triples: impl IntoIterator<Item = &'a TermTriple>) {
        for tt in triples {
            let t = tt.encode(&self.dict);
            self.insert(t);
        }
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True if the graph holds no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Compute summary statistics (property cardinalities etc.).
    pub fn stats(&self) -> GraphStats {
        let mut per_property: FxHashMap<TermId, usize> = FxHashMap::default();
        let mut type_objects: FxHashMap<TermId, usize> = FxHashMap::default();
        let mut subjects: FxHashSet<TermId> = FxHashSet::default();
        let rdf_type = self.dict.lookup(&Term::iri(RDF_TYPE));
        for t in &self.triples {
            *per_property.entry(t.p).or_default() += 1;
            subjects.insert(t.s);
            if Some(t.p) == rdf_type {
                *type_objects.entry(t.o).or_default() += 1;
            }
        }
        GraphStats {
            triples: self.triples.len(),
            distinct_subjects: subjects.len(),
            distinct_properties: per_property.len(),
            per_property,
            type_objects,
        }
    }
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

/// Summary statistics about a [`Graph`], used for optimizer decisions
/// (e.g. Hive's map-join threshold) and test assertions.
#[derive(Clone, Debug)]
pub struct GraphStats {
    /// Total triple count.
    pub triples: usize,
    /// Distinct subject count.
    pub distinct_subjects: usize,
    /// Distinct property count.
    pub distinct_properties: usize,
    /// Triple count per property.
    pub per_property: FxHashMap<TermId, usize>,
    /// For `rdf:type`: instance count per type object.
    pub type_objects: FxHashMap<TermId, usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    #[test]
    fn insert_dedups() {
        let mut g = Graph::new();
        assert!(g.insert_terms(&iri("s"), &iri("p"), &iri("o")));
        assert!(!g.insert_terms(&iri("s"), &iri("p"), &iri("o")));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn stats_counts_properties_and_types() {
        let mut g = Graph::new();
        g.insert_terms(&iri("a"), &Term::iri(RDF_TYPE), &iri("T1"));
        g.insert_terms(&iri("b"), &Term::iri(RDF_TYPE), &iri("T1"));
        g.insert_terms(&iri("c"), &Term::iri(RDF_TYPE), &iri("T2"));
        g.insert_terms(&iri("a"), &iri("p"), &Term::integer(1));
        let st = g.stats();
        assert_eq!(st.triples, 4);
        assert_eq!(st.distinct_subjects, 3);
        assert_eq!(st.distinct_properties, 2);
        let t1 = g.dict.lookup(&iri("T1")).unwrap();
        assert_eq!(st.type_objects[&t1], 2);
    }
}
