//! RDF terms: IRIs, literals (plain, typed, language-tagged), blank nodes.

use std::fmt;

/// Well-known XSD datatype IRIs used when constructing typed literals.
pub const XSD_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
/// xsd:decimal datatype IRI.
pub const XSD_DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";
/// xsd:double datatype IRI.
pub const XSD_DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";
/// xsd:string datatype IRI.
pub const XSD_STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
/// xsd:date datatype IRI.
pub const XSD_DATE: &str = "http://www.w3.org/2001/XMLSchema#date";

/// An RDF term.
///
/// The in-memory representation used *before* dictionary encoding. Hot paths
/// operate on [`crate::TermId`]s instead.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An IRI reference, stored without the surrounding `<>`.
    Iri(String),
    /// A literal with optional datatype and language tag.
    Literal {
        /// The lexical form.
        lexical: String,
        /// Datatype IRI, if any (`None` means plain / xsd:string).
        datatype: Option<String>,
        /// Language tag, if any (mutually exclusive with `datatype`).
        language: Option<String>,
    },
    /// A blank node with its local label (without the `_:` prefix).
    BlankNode(String),
}

impl Term {
    /// Construct an IRI term.
    pub fn iri(value: impl Into<String>) -> Self {
        Term::Iri(value.into())
    }

    /// Construct a plain (untyped) string literal.
    pub fn literal(lexical: impl Into<String>) -> Self {
        Term::Literal {
            lexical: lexical.into(),
            datatype: None,
            language: None,
        }
    }

    /// Construct a typed literal.
    pub fn typed_literal(lexical: impl Into<String>, datatype: impl Into<String>) -> Self {
        Term::Literal {
            lexical: lexical.into(),
            datatype: Some(datatype.into()),
            language: None,
        }
    }

    /// Construct a language-tagged literal.
    pub fn lang_literal(lexical: impl Into<String>, lang: impl Into<String>) -> Self {
        Term::Literal {
            lexical: lexical.into(),
            datatype: None,
            language: Some(lang.into()),
        }
    }

    /// Construct an integer literal (xsd:integer).
    pub fn integer(value: i64) -> Self {
        Term::typed_literal(value.to_string(), XSD_INTEGER)
    }

    /// Construct a decimal literal (xsd:decimal).
    pub fn decimal(value: f64) -> Self {
        Term::typed_literal(format!("{value}"), XSD_DECIMAL)
    }

    /// Construct a blank node term.
    pub fn bnode(label: impl Into<String>) -> Self {
        Term::BlankNode(label.into())
    }

    /// Is this term an IRI?
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// Is this term a literal?
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal { .. })
    }

    /// Is this term a blank node?
    pub fn is_blank(&self) -> bool {
        matches!(self, Term::BlankNode(_))
    }

    /// Lexical form for literals, IRI string for IRIs, label for bnodes.
    pub fn lexical(&self) -> &str {
        match self {
            Term::Iri(s) => s,
            Term::Literal { lexical, .. } => lexical,
            Term::BlankNode(l) => l,
        }
    }

    /// The numeric value of this term if it is a numeric literal.
    ///
    /// Any literal whose lexical form parses as `f64` is treated as numeric,
    /// matching SPARQL's lenient treatment in aggregate expressions over
    /// benchmark data.
    pub fn numeric_value(&self) -> Option<f64> {
        match self {
            Term::Literal { lexical, .. } => lexical.trim().parse::<f64>().ok(),
            _ => None,
        }
    }

    /// Canonical N-Triples encoding of this term.
    pub fn to_ntriples(&self) -> String {
        self.to_string()
    }
}

fn escape_literal(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(iri) => write!(f, "<{iri}>"),
            Term::Literal {
                lexical,
                datatype,
                language,
            } => {
                let mut s = String::with_capacity(lexical.len() + 2);
                escape_literal(lexical, &mut s);
                write!(f, "\"{s}\"")?;
                if let Some(lang) = language {
                    write!(f, "@{lang}")?;
                } else if let Some(dt) = datatype {
                    write!(f, "^^<{dt}>")?;
                }
                Ok(())
            }
            Term::BlankNode(label) => write!(f, "_:{label}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_iri() {
        assert_eq!(Term::iri("http://x/a").to_string(), "<http://x/a>");
    }

    #[test]
    fn display_plain_literal() {
        assert_eq!(Term::literal("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn display_typed_literal() {
        assert_eq!(
            Term::integer(5).to_string(),
            format!("\"5\"^^<{XSD_INTEGER}>")
        );
    }

    #[test]
    fn display_lang_literal() {
        assert_eq!(Term::lang_literal("hallo", "de").to_string(), "\"hallo\"@de");
    }

    #[test]
    fn display_bnode() {
        assert_eq!(Term::bnode("b0").to_string(), "_:b0");
    }

    #[test]
    fn escapes_quotes_and_backslashes() {
        assert_eq!(
            Term::literal("a\"b\\c\nd").to_string(),
            "\"a\\\"b\\\\c\\nd\""
        );
    }

    #[test]
    fn numeric_value_parses() {
        assert_eq!(Term::integer(7).numeric_value(), Some(7.0));
        assert_eq!(Term::decimal(1.5).numeric_value(), Some(1.5));
        assert_eq!(Term::literal("12.25").numeric_value(), Some(12.25));
        assert_eq!(Term::literal("abc").numeric_value(), None);
        assert_eq!(Term::iri("http://x/7").numeric_value(), None);
    }

    #[test]
    fn term_kind_predicates() {
        assert!(Term::iri("http://x").is_iri());
        assert!(Term::literal("x").is_literal());
        assert!(Term::bnode("b").is_blank());
        assert!(!Term::literal("x").is_iri());
    }
}
