//! # rapida-serve
//!
//! Concurrent serving front end over the query engines: N simulated client
//! sessions submit analytical queries against one loaded catalog; arrivals
//! are collected into batching windows; each window's batch is deduplicated
//! by canonical query signature, partitioned into MQO fusion groups
//! ([`rapida_core::fusion_groups`]), and executed as shared NTGA workflows
//! whose per-block outputs are demultiplexed back into per-query results.
//! A cross-query [`ScanCache`] persists keyed job outputs across windows.
//!
//! Two serving modes share one timeline model:
//!
//! * **Batched** — window-close batching, signature dedup, MQO fusion,
//!   scan cache. A request's simulated latency is the wait until its
//!   window closes plus the modeled cluster time of the shared jobs of
//!   its group and of every plan finishing before its own.
//! * **Serial** — the one-query-at-a-time baseline: requests are served
//!   in arrival order on the same engine with no batching, no dedup, no
//!   fusion and no cache.
//!
//! All times are *simulated* cluster seconds from [`ClusterModel`], so the
//! whole report — per-request latencies, queries/sec, cache ledger — is a
//! deterministic function of (catalog, traffic, config): two replays of
//! the same traffic produce byte-identical [`ServeLedger`]s. Admission is
//! governed by the engine's [`ResiliencePolicy`]: a per-query deadline
//! turns an over-budget query into a typed [`RequestStatus::Rejected`],
//! never a panic, and never partial rows.

use rapida_core::engines::{HiveConfig, HiveMqo};
use rapida_core::{
    demux_member_plan, extract, fusion_groups, plan_fused_group, AnalyticalQuery, DataCatalog,
    QueryEngine,
};
use rapida_datagen::traffic::{sparql_of, TrafficEvent};
use rapida_mapred::{
    ClusterModel, Engine, FaultPlan, JobDeadline, ResiliencePolicy, ScanCache, ScanCacheStats,
};
use rapida_rdf::Graph;
use rapida_sparql::{parse_query, Relation};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// How the server schedules a drained queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// Window batching + signature dedup + MQO fusion + scan cache.
    Batched,
    /// One query at a time in arrival order; no sharing of any kind.
    Serial,
}

impl ServeMode {
    /// Stable lowercase name (ledger field, CLI flag, bench id).
    pub fn name(&self) -> &'static str {
        match self {
            ServeMode::Batched => "batched",
            ServeMode::Serial => "serial",
        }
    }
}

/// Server configuration. Construct with struct-update syntax over
/// [`ServeConfig::default`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Scheduling mode.
    pub mode: ServeMode,
    /// Batching window length, milliseconds of simulated arrival time
    /// (clamped to ≥ 1). A request arriving at `t` is executed when the
    /// window containing `t` closes.
    pub window_ms: u64,
    /// Scan-cache byte budget; 0 disables the cache entirely.
    pub cache_budget_bytes: usize,
    /// Optional per-job simulated deadline (seconds). Installed into the
    /// engine's [`ResiliencePolicy`] with no escalation, so a query whose
    /// jobs cannot meet it is deterministically rejected with a typed
    /// error instead of retried forever.
    pub deadline_s: Option<f64>,
    /// Cluster cost model used for all simulated latencies.
    pub model: ClusterModel,
    /// Optional chaos injection (a [`FaultPlan::chaotic`] seed) for the
    /// isolation suites.
    pub fault_seed: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            mode: ServeMode::Batched,
            window_ms: 100,
            cache_budget_bytes: 8 << 20,
            deadline_s: None,
            model: ClusterModel::nodes10(),
            fault_seed: None,
        }
    }
}

/// One queued request.
#[derive(Debug, Clone)]
struct Request {
    at_ms: u64,
    client: usize,
    seq: usize,
    query_id: String,
    sparql: String,
}

/// Terminal state of one request.
#[derive(Debug, Clone)]
pub enum RequestStatus {
    /// The query ran to completion; `relation` is its full result.
    Completed {
        /// The decoded result relation.
        relation: Relation,
    },
    /// The query was rejected (deadline/retry-budget exhaustion, planning
    /// failure, parse error). No rows were delivered — rejection is
    /// all-or-nothing per query, including every member of a fused group
    /// whose shared jobs failed.
    Rejected {
        /// Human-readable typed reason.
        reason: String,
    },
}

/// Per-request outcome, in (at_ms, client, seq) order.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// Submitting client id.
    pub client: usize,
    /// Per-client submission sequence number.
    pub seq: usize,
    /// Arrival time, ms.
    pub at_ms: u64,
    /// Catalog query id (or "adhoc" for raw SPARQL submissions).
    pub query_id: String,
    /// Simulated latency: completion (or rejection) minus arrival, ms.
    pub latency_ms: f64,
    /// Completion or typed rejection.
    pub status: RequestStatus,
}

impl RequestOutcome {
    /// Completed result rows, if any.
    pub fn rows(&self) -> Option<usize> {
        match &self.status {
            RequestStatus::Completed { relation } => Some(relation.len()),
            RequestStatus::Rejected { .. } => None,
        }
    }
}

/// The replayable trace of one request — everything about it except the
/// result relation itself, with the latency fixed to integer nanoseconds
/// so the ledger is `Eq`-comparable across replays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestTrace {
    /// Submitting client id.
    pub client: usize,
    /// Per-client submission sequence number.
    pub seq: usize,
    /// Catalog query id.
    pub query_id: String,
    /// Simulated latency in nanoseconds.
    pub latency_ns: u64,
    /// Result rows, or `None` if rejected.
    pub rows: Option<u64>,
}

/// Per-window counters (batched mode; serial mode records none).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowTrace {
    /// Window index (`at_ms / window_ms`).
    pub window: u64,
    /// Requests that arrived in the window.
    pub arrivals: usize,
    /// Distinct query signatures among them.
    pub unique: usize,
    /// Fusion groups the unique queries partitioned into.
    pub groups: usize,
    /// Unique queries that executed inside a ≥2-member fused group.
    pub fused_members: usize,
    /// Shared MQO jobs run for the window's fused groups.
    pub shared_jobs: usize,
    /// Requests rejected in the window.
    pub rejected: usize,
    /// Cumulative scan-cache ledger after the window.
    pub cache: ScanCacheStats,
}

/// The deterministic metrics ledger of one drained traffic replay.
/// Everything in here is a pure function of (catalog, traffic, config);
/// the replay-determinism suite asserts two runs compare equal.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeLedger {
    /// Scheduling mode name ("batched" / "serial").
    pub mode: String,
    /// Batching window, ms.
    pub window_ms: u64,
    /// Per-window counters (empty in serial mode).
    pub windows: Vec<WindowTrace>,
    /// Per-request traces in (at_ms, client, seq) order.
    pub requests: Vec<RequestTrace>,
    /// Completed request count.
    pub completed: usize,
    /// Rejected request count.
    pub rejected: usize,
    /// End of the simulated timeline, ms.
    pub makespan_ms: f64,
    /// Completed queries per simulated second.
    pub qps: f64,
    /// Median simulated latency over completed requests, ms.
    pub p50_ms: f64,
    /// 95th-percentile simulated latency over completed requests, ms.
    pub p95_ms: f64,
    /// Final cumulative scan-cache ledger.
    pub cache: ScanCacheStats,
}

impl ServeLedger {
    /// Scan-cache hit ratio over the whole replay.
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.cache.hits + self.cache.misses;
        if total == 0 {
            0.0
        } else {
            self.cache.hits as f64 / total as f64
        }
    }
}

/// A drained replay: the deterministic ledger plus the full per-request
/// outcomes (with result relations) for identity checking.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// The deterministic metrics ledger.
    pub ledger: ServeLedger,
    /// Per-request outcomes in (at_ms, client, seq) order.
    pub outcomes: Vec<RequestOutcome>,
}

impl ServeReport {
    /// One-paragraph human summary (CLI output).
    pub fn summary(&self) -> String {
        let l = &self.ledger;
        format!(
            "{} mode: {} completed, {} rejected over {:.1} simulated ms \
             ({:.2} q/s, p50 {:.1} ms, p95 {:.1} ms); scan cache {} hits / {} misses / \
             {} evictions ({:.0}% hit ratio)",
            l.mode,
            l.completed,
            l.rejected,
            l.makespan_ms,
            l.qps,
            l.p50_ms,
            l.p95_ms,
            l.cache.hits,
            l.cache.misses,
            l.cache.evictions,
            100.0 * l.cache_hit_ratio(),
        )
    }
}

struct Inner {
    cat: DataCatalog,
    config: ServeConfig,
    cache: Option<ScanCache>,
    queue: Mutex<Vec<Request>>,
}

/// The in-process server: one loaded catalog, one scan cache, one queue.
/// Cloning is cheap and shares all state, which is what [`Session`]
/// handles rely on to submit concurrently from many client threads.
#[derive(Clone)]
pub struct Server {
    inner: Arc<Inner>,
}

/// A per-client submission handle ([`Server::session`]). Sessions are
/// `Send + Sync`: N client threads can submit concurrently; the drain
/// sorts arrivals by `(at_ms, client, seq)`, so scheduling — and the
/// whole ledger — is independent of thread interleaving.
pub struct Session {
    server: Server,
    client: usize,
    seq: AtomicUsize,
}

impl Session {
    /// Submit a raw SPARQL query arriving at `at_ms`.
    pub fn submit(&self, at_ms: u64, sparql: &str) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.server
            .push(at_ms, self.client, seq, "adhoc".to_string(), sparql.to_string());
    }

    /// Submit a catalog query by id, arriving at `at_ms`.
    pub fn submit_catalog(&self, at_ms: u64, query_id: &str) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let sparql = rapida_datagen::query(query_id).sparql;
        self.server
            .push(at_ms, self.client, seq, query_id.to_string(), sparql);
    }
}

impl Server {
    /// Load `graph` into a fresh catalog and stand up a server over it.
    pub fn new(graph: &Graph, config: ServeConfig) -> Server {
        Server::over(DataCatalog::load(graph), config)
    }

    /// Stand up a server over an already-loaded catalog.
    pub fn over(cat: DataCatalog, config: ServeConfig) -> Server {
        let cache = match (config.mode, config.cache_budget_bytes) {
            (ServeMode::Serial, _) | (_, 0) => None,
            (ServeMode::Batched, budget) => Some(ScanCache::new(budget as u64)),
        };
        Server {
            inner: Arc::new(Inner {
                cat,
                config,
                cache,
                queue: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Open a submission handle for one simulated client.
    pub fn session(&self, client: usize) -> Session {
        Session {
            server: self.clone(),
            client,
            seq: AtomicUsize::new(0),
        }
    }

    /// Enqueue a pre-generated traffic trace (see
    /// [`rapida_datagen::traffic`]); event sequence numbers are preserved.
    pub fn enqueue_traffic(&self, events: &[TrafficEvent]) {
        let mut q = self.inner.queue.lock().unwrap();
        for ev in events {
            q.push(Request {
                at_ms: ev.at_ms,
                client: ev.client,
                seq: ev.seq,
                query_id: ev.query_id.clone(),
                sparql: sparql_of(ev),
            });
        }
    }

    fn push(&self, at_ms: u64, client: usize, seq: usize, query_id: String, sparql: String) {
        self.inner.queue.lock().unwrap().push(Request {
            at_ms,
            client,
            seq,
            query_id,
            sparql,
        });
    }

    /// Current cumulative scan-cache ledger.
    pub fn cache_stats(&self) -> ScanCacheStats {
        self.inner
            .cache
            .as_ref()
            .map(|c| c.stats())
            .unwrap_or_default()
    }

    /// Drain the queue: sort all pending requests by `(at_ms, client,
    /// seq)` and serve them under the configured mode. The scan cache
    /// persists across drains; the queue does not.
    pub fn drain(&self) -> ServeReport {
        let mut reqs: Vec<Request> = std::mem::take(&mut *self.inner.queue.lock().unwrap());
        reqs.sort_by(|a, b| {
            (a.at_ms, a.client, a.seq).cmp(&(b.at_ms, b.client, b.seq))
        });
        match self.inner.config.mode {
            ServeMode::Batched => self.drain_batched(reqs),
            ServeMode::Serial => self.drain_serial(reqs),
        }
    }

    /// The execution engine: pinned worker count for determinism, shared
    /// scan cache, optional chaos plan, deadline admission.
    fn engine(&self) -> Engine {
        let cfg = &self.inner.config;
        let mut mr = Engine::pinned(self.inner.cat.dfs.clone());
        if let Some(cache) = &self.inner.cache {
            mr = mr.with_scan_cache(cache.clone());
        }
        if let Some(seed) = cfg.fault_seed {
            mr = mr.with_faults(FaultPlan::chaotic(seed));
        }
        if let Some(limit_s) = cfg.deadline_s {
            let mut dl = JobDeadline::new(cfg.model.clone(), limit_s);
            dl.escalation = 1.0; // never escalate: reject, don't retry upward
            mr = mr.with_resilience(ResiliencePolicy {
                deadline: Some(dl),
                workflow_attempts: 2,
                ..ResiliencePolicy::default()
            });
        }
        mr
    }

    fn drain_batched(&self, reqs: Vec<Request>) -> ServeReport {
        let cat = &self.inner.cat;
        let cfg = &self.inner.config;
        let window_ms = cfg.window_ms.max(1);
        let mr = self.engine();
        let hive = HiveConfig::default();
        let planner = HiveMqo::default();

        // Window index -> request indexes, in (at_ms, client, seq) order.
        let mut windows: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for (i, r) in reqs.iter().enumerate() {
            windows.entry(r.at_ms / window_ms).or_default().push(i);
        }

        let mut clock_ms = 0.0_f64;
        let mut done_ms = vec![0.0_f64; reqs.len()];
        let mut status: Vec<Option<RequestStatus>> = vec![None; reqs.len()];
        let mut traces = Vec::new();

        for (w, members) in &windows {
            let close_ms = ((w + 1) * window_ms) as f64;
            clock_ms = clock_ms.max(close_ms);
            let rejected_before = status
                .iter()
                .filter(|s| matches!(s, Some(RequestStatus::Rejected { .. })))
                .count();

            // Parse + extract; dedup by canonical signature.
            let mut uniq: Vec<(String, AnalyticalQuery, Vec<usize>)> = Vec::new();
            for &i in members {
                let aq = match parse_query(&reqs[i].sparql)
                    .map_err(|e| format!("parse error: {e}"))
                    .and_then(|q| {
                        extract(&q).map_err(|e| format!("not an analytical query: {e}"))
                    }) {
                    Ok(aq) => aq,
                    Err(reason) => {
                        status[i] = Some(RequestStatus::Rejected { reason });
                        done_ms[i] = clock_ms;
                        continue;
                    }
                };
                let sig = aq.signature();
                match uniq.iter_mut().find(|(s, _, _)| *s == sig) {
                    Some((_, _, idxs)) => idxs.push(i),
                    None => uniq.push((sig, aq, vec![i])),
                }
            }

            let queries: Vec<AnalyticalQuery> = uniq.iter().map(|(_, q, _)| q.clone()).collect();
            let groups = fusion_groups(&queries);
            let mut fused_members = 0usize;
            let mut shared_jobs = 0usize;

            for group in &groups {
                if group.len() >= 2 {
                    fused_members += group.len();
                    let refs: Vec<&AnalyticalQuery> =
                        group.iter().map(|&u| &queries[u]).collect();
                    let group_sig: String = group
                        .iter()
                        .map(|&u| uniq[u].0.as_str())
                        .collect::<Vec<_>>()
                        .join("&");
                    let shared = plan_fused_group(&refs, &hive, cat).and_then(|mut fused| {
                        fused.attach_scan_cache_keys(&format!("{hive:?}|{group_sig}"));
                        let wf = mr.try_run_workflow(&fused.jobs).map_err(|e| {
                            rapida_core::PlanError::Unsupported(format!("shared jobs: {e}"))
                        })?;
                        Ok((fused, cfg.model.workflow_time(&wf)))
                    });
                    match shared {
                        Err(e) => {
                            // All-or-nothing per group: a failed shared
                            // workflow rejects every member — no partial
                            // block data ever reaches a demux.
                            let reason = format!("fused group rejected: {e}");
                            for &u in group {
                                for &i in &uniq[u].2 {
                                    status[i] =
                                        Some(RequestStatus::Rejected { reason: clone_reason(&reason) });
                                    done_ms[i] = clock_ms;
                                }
                            }
                        }
                        Ok((fused, shared_s)) => {
                            shared_jobs += fused.jobs.len();
                            clock_ms += shared_s * 1000.0;
                            for (m, &u) in group.iter().enumerate() {
                                let (_, aq, idxs) = &uniq[u];
                                let run = demux_member_plan(
                                    &fused,
                                    m,
                                    aq,
                                    "Hive (MQO)",
                                    &cat.dfs,
                                    mr.split_bytes,
                                )
                                .map_err(|e| format!("demux: {e}"))
                                .and_then(|plan| {
                                    let out = plan
                                        .try_execute(&mr, aq, &cat.dict)
                                        .map_err(|e| format!("finishing jobs: {e}"));
                                    plan.cleanup(&cat.dfs);
                                    cat.dfs.remove(&plan.output_dataset);
                                    out
                                });
                                match run {
                                    Ok((rel, wf)) => {
                                        clock_ms += cfg.model.workflow_time(&wf) * 1000.0;
                                        deliver(&mut status, &mut done_ms, idxs, rel, clock_ms);
                                    }
                                    Err(reason) => {
                                        for &i in idxs {
                                            status[i] = Some(RequestStatus::Rejected {
                                                reason: clone_reason(&reason),
                                            });
                                            done_ms[i] = clock_ms;
                                        }
                                    }
                                }
                            }
                            for ds in fused.intermediate_datasets() {
                                cat.dfs.remove(&ds);
                            }
                        }
                    }
                } else {
                    let u = group[0];
                    let (sig, aq, idxs) = &uniq[u];
                    let run = planner
                        .plan(aq, cat)
                        .map_err(|e| format!("planning: {e}"))
                        .and_then(|mut plan| {
                            plan.attach_scan_cache_keys(&format!("solo|{hive:?}|{sig}"));
                            let out = plan
                                .try_execute(&mr, aq, &cat.dict)
                                .map_err(|e| format!("{e}"));
                            plan.cleanup(&cat.dfs);
                            cat.dfs.remove(&plan.output_dataset);
                            out
                        });
                    match run {
                        Ok((rel, wf)) => {
                            clock_ms += cfg.model.workflow_time(&wf) * 1000.0;
                            deliver(&mut status, &mut done_ms, idxs, rel, clock_ms);
                        }
                        Err(reason) => {
                            for &i in idxs {
                                status[i] = Some(RequestStatus::Rejected {
                                    reason: clone_reason(&reason),
                                });
                                done_ms[i] = clock_ms;
                            }
                        }
                    }
                }
            }

            let rejected_now = status
                .iter()
                .filter(|s| matches!(s, Some(RequestStatus::Rejected { .. })))
                .count();
            traces.push(WindowTrace {
                window: *w,
                arrivals: members.len(),
                unique: uniq.len(),
                groups: groups.len(),
                fused_members,
                shared_jobs,
                rejected: rejected_now - rejected_before,
                cache: self.cache_stats(),
            });
        }

        self.finish(reqs, status, done_ms, clock_ms, traces)
    }

    fn drain_serial(&self, reqs: Vec<Request>) -> ServeReport {
        let cat = &self.inner.cat;
        let cfg = &self.inner.config;
        let mr = self.engine();
        let planner = HiveMqo::default();

        // The engine is deterministic: identical queries produce identical
        // metrics and results, so repeated requests replay a memoized run
        // while still being *charged* full one-at-a-time simulated cost.
        let mut memo: Vec<(String, Result<(Relation, f64), String>)> = Vec::new();
        let mut clock_ms = 0.0_f64;
        let mut done_ms = vec![0.0_f64; reqs.len()];
        let mut status: Vec<Option<RequestStatus>> = vec![None; reqs.len()];

        for (i, r) in reqs.iter().enumerate() {
            clock_ms = clock_ms.max(r.at_ms as f64);
            let parsed = parse_query(&r.sparql)
                .map_err(|e| format!("parse error: {e}"))
                .and_then(|q| extract(&q).map_err(|e| format!("not an analytical query: {e}")));
            let aq = match parsed {
                Ok(aq) => aq,
                Err(reason) => {
                    status[i] = Some(RequestStatus::Rejected { reason });
                    done_ms[i] = clock_ms;
                    continue;
                }
            };
            let sig = aq.signature();
            let entry = match memo.iter().find(|(s, _)| *s == sig) {
                Some((_, e)) => e.clone(),
                None => {
                    let run = planner
                        .plan(&aq, cat)
                        .map_err(|e| format!("planning: {e}"))
                        .and_then(|plan| {
                            let out = plan
                                .try_execute(&mr, &aq, &cat.dict)
                                .map_err(|e| format!("{e}"));
                            plan.cleanup(&cat.dfs);
                            cat.dfs.remove(&plan.output_dataset);
                            out
                        })
                        .map(|(rel, wf)| (rel, cfg.model.workflow_time(&wf)));
                    memo.push((sig, run.clone()));
                    run
                }
            };
            match entry {
                Ok((rel, sim_s)) => {
                    clock_ms += sim_s * 1000.0;
                    status[i] = Some(RequestStatus::Completed { relation: rel });
                    done_ms[i] = clock_ms;
                }
                Err(reason) => {
                    status[i] = Some(RequestStatus::Rejected { reason });
                    done_ms[i] = clock_ms;
                }
            }
        }

        self.finish(reqs, status, done_ms, clock_ms, Vec::new())
    }

    fn finish(
        &self,
        reqs: Vec<Request>,
        status: Vec<Option<RequestStatus>>,
        done_ms: Vec<f64>,
        clock_ms: f64,
        windows: Vec<WindowTrace>,
    ) -> ServeReport {
        let cfg = &self.inner.config;
        let mut outcomes = Vec::with_capacity(reqs.len());
        for (i, r) in reqs.into_iter().enumerate() {
            let status = status[i].clone().unwrap_or(RequestStatus::Rejected {
                reason: "request was never scheduled".to_string(),
            });
            outcomes.push(RequestOutcome {
                client: r.client,
                seq: r.seq,
                at_ms: r.at_ms,
                query_id: r.query_id,
                latency_ms: (done_ms[i] - r.at_ms as f64).max(0.0),
                status,
            });
        }
        let completed = outcomes
            .iter()
            .filter(|o| matches!(o.status, RequestStatus::Completed { .. }))
            .count();
        let mut lat: Vec<f64> = outcomes
            .iter()
            .filter(|o| matches!(o.status, RequestStatus::Completed { .. }))
            .map(|o| o.latency_ms)
            .collect();
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let qps = if clock_ms > 0.0 {
            completed as f64 / (clock_ms / 1000.0)
        } else {
            0.0
        };
        let ledger = ServeLedger {
            mode: cfg.mode.name().to_string(),
            window_ms: cfg.window_ms.max(1),
            windows,
            requests: outcomes
                .iter()
                .map(|o| RequestTrace {
                    client: o.client,
                    seq: o.seq,
                    query_id: o.query_id.clone(),
                    latency_ns: (o.latency_ms * 1e6).round() as u64,
                    rows: o.rows().map(|r| r as u64),
                })
                .collect(),
            completed,
            rejected: outcomes.len() - completed,
            makespan_ms: clock_ms,
            qps,
            p50_ms: percentile(&lat, 0.50),
            p95_ms: percentile(&lat, 0.95),
            cache: self.cache_stats(),
        };
        ServeReport { ledger, outcomes }
    }
}

/// Record a completed unique query into every duplicate request's slot.
fn deliver(
    status: &mut [Option<RequestStatus>],
    done_ms: &mut [f64],
    idxs: &[usize],
    rel: Relation,
    clock_ms: f64,
) {
    for &i in idxs {
        status[i] = Some(RequestStatus::Completed {
            relation: rel.clone(),
        });
        done_ms[i] = clock_ms;
    }
}

fn clone_reason(reason: &str) -> String {
    reason.to_string()
}

/// Nearest-rank percentile over an already-sorted sample (0.0 if empty).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapida_datagen::traffic::{generate, TrafficConfig};
    use rapida_datagen::{generate_bsbm, BsbmConfig};

    fn tiny_server(config: ServeConfig) -> Server {
        let g = generate_bsbm(&BsbmConfig::tiny());
        Server::new(&g, config)
    }

    #[test]
    fn batched_drain_completes_traffic_and_fills_the_ledger() {
        let server = tiny_server(ServeConfig::default());
        let events = generate(&TrafficConfig::bsbm_mix(7, 4, 300));
        server.enqueue_traffic(&events);
        let report = server.drain();
        assert_eq!(report.outcomes.len(), events.len());
        assert_eq!(report.ledger.completed, events.len());
        assert_eq!(report.ledger.rejected, 0);
        assert!(!report.ledger.windows.is_empty());
        assert!(report.ledger.qps > 0.0);
        assert!(report.ledger.p95_ms >= report.ledger.p50_ms);
        // Dedup actually bites: some window saw fewer uniques than arrivals.
        let arrivals: usize = report.ledger.windows.iter().map(|w| w.arrivals).sum();
        let uniques: usize = report.ledger.windows.iter().map(|w| w.unique).sum();
        assert!(uniques < arrivals, "{uniques} !< {arrivals}");
        // The cross-window cache ends up warm.
        assert!(report.ledger.cache.hits > 0, "{:?}", report.ledger.cache);
    }

    #[test]
    fn serial_mode_serves_in_arrival_order_without_sharing() {
        let mut config = ServeConfig::default();
        config.mode = ServeMode::Serial;
        let server = tiny_server(config);
        let events = generate(&TrafficConfig::bsbm_mix(7, 3, 200));
        server.enqueue_traffic(&events);
        let report = server.drain();
        assert_eq!(report.ledger.mode, "serial");
        assert_eq!(report.ledger.completed, events.len());
        assert!(report.ledger.windows.is_empty());
        assert_eq!(report.ledger.cache, ScanCacheStats::default());
        // Completion times are monotone in arrival order.
        let mut last = 0.0;
        for o in &report.outcomes {
            let done = o.at_ms as f64 + o.latency_ms;
            assert!(done >= last);
            last = done;
        }
    }

    #[test]
    fn batched_beats_serial_on_simulated_qps() {
        let events = generate(&TrafficConfig::bsbm_mix(11, 8, 400));
        let batched = {
            let s = tiny_server(ServeConfig::default());
            s.enqueue_traffic(&events);
            s.drain()
        };
        let serial = {
            let mut c = ServeConfig::default();
            c.mode = ServeMode::Serial;
            let s = tiny_server(c);
            s.enqueue_traffic(&events);
            s.drain()
        };
        assert!(
            batched.ledger.qps > serial.ledger.qps,
            "batched {} !> serial {}",
            batched.ledger.qps,
            serial.ledger.qps
        );
    }

    #[test]
    fn session_submissions_are_order_independent() {
        let events = generate(&TrafficConfig::bsbm_mix(3, 4, 200));
        let reference = {
            let s = tiny_server(ServeConfig::default());
            s.enqueue_traffic(&events);
            s.drain()
        };
        // Same traffic submitted from concurrent client threads.
        let server = tiny_server(ServeConfig::default());
        std::thread::scope(|scope| {
            for client in 0..4 {
                let session = server.session(client);
                let evs: Vec<_> = events.iter().filter(|e| e.client == client).collect();
                scope.spawn(move || {
                    for ev in evs {
                        session.submit_catalog(ev.at_ms, &ev.query_id);
                    }
                });
            }
        });
        let report = server.drain();
        assert_eq!(report.ledger, reference.ledger);
    }

    #[test]
    fn deadline_rejections_are_typed_and_total() {
        let mut config = ServeConfig::default();
        config.deadline_s = Some(1e-9); // nothing can meet this
        let server = tiny_server(config);
        let events = generate(&TrafficConfig::bsbm_mix(5, 2, 150));
        server.enqueue_traffic(&events);
        let report = server.drain();
        assert_eq!(report.ledger.completed, 0);
        assert_eq!(report.ledger.rejected, events.len());
        for o in &report.outcomes {
            match &o.status {
                RequestStatus::Rejected { reason } => {
                    assert!(reason.contains("deadline"), "untyped reason: {reason}")
                }
                RequestStatus::Completed { .. } => panic!("completed under 1ns deadline"),
            }
        }
    }

    #[test]
    fn replaying_identical_traffic_gives_an_identical_ledger() {
        let events = generate(&TrafficConfig::bsbm_mix(13, 6, 300));
        let run = |_: usize| {
            // Tiny budget forces evictions, exercising the LRU ledger too.
            let mut c = ServeConfig::default();
            c.cache_budget_bytes = 4 << 10;
            let s = tiny_server(c);
            s.enqueue_traffic(&events);
            s.drain()
        };
        let a = run(0);
        let b = run(1);
        assert!(a.ledger.cache.evictions > 0, "{:?}", a.ledger.cache);
        assert_eq!(a.ledger, b.ledger);
    }
}
