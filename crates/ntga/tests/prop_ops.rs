//! Property tests for the NTGA operators: the set-theoretic laws of
//! Definitions 3.3–3.5, partial-aggregate algebra, and codec round-trips.

use rapida_testkit::prelude::*;
use rapida_ntga::{
    alpha_join, any_alpha_partial, n_split, opt_group_filter, AggOp, AggRec, AlphaCond,
    AlphaTerm, AnnTg, PartialAgg, PropReq, StarSpec, TripleGroup,
};

fn arb_tg() -> impl Strategy<Value = TripleGroup> {
    (
        any::<u32>(),
        proptest::collection::vec((1u64..8, 0u64..12), 0..10),
    )
        .prop_map(|(s, pairs)| TripleGroup::new(u64::from(s), pairs))
}

fn arb_spec() -> impl Strategy<Value = StarSpec> {
    (
        proptest::collection::btree_set(1u64..8, 0..3),
        proptest::collection::btree_set(1u64..8, 0..3),
    )
        .prop_map(|(prim, sec)| StarSpec {
            star: 0,
            primary: prim.into_iter().map(PropReq::any).collect(),
            secondary: sec.into_iter().map(PropReq::any).collect(),
        })
}

proptest! {
    /// Def 3.3: σ^γopt output satisfies P_prim ⊆ props(tg') ⊆ P_prim ∪ P_opt,
    /// keeps only original triples, and is idempotent.
    #[test]
    fn opt_group_filter_laws(tg in arb_tg(), spec in arb_spec()) {
        let prim: Vec<u64> = spec.primary.iter().map(|r| r.prop).collect();
        let all: Vec<u64> = spec.all_props();
        match opt_group_filter(&tg, &spec) {
            None => {
                // Rejected iff some primary requirement fails.
                prop_assert!(spec.primary.iter().any(|r| !r.matches(&tg)));
            }
            Some(out) => {
                let props = out.props();
                for p in &prim {
                    prop_assert!(props.contains(p), "primary {p} present");
                }
                for p in &props {
                    prop_assert!(all.contains(p), "only projected properties remain");
                }
                for t in &out.triples {
                    prop_assert!(tg.triples.contains(t), "no invented triples");
                }
                // Idempotence.
                prop_assert_eq!(opt_group_filter(&out, &spec), Some(out.clone()));
            }
        }
    }

    /// Def 3.4: each n-split extract is tg_prim ∪ tg_sec_i, present iff the
    /// secondary set is fully matched.
    #[test]
    fn n_split_laws(
        tg in arb_tg(),
        prim in proptest::collection::vec(1u64..8, 0..3),
        secs in proptest::collection::vec(proptest::collection::vec(1u64..8, 0..2), 1..4),
    ) {
        let outs = n_split(&tg, &prim, &secs);
        prop_assert_eq!(outs.len(), secs.len());
        for (out, sec) in outs.iter().zip(&secs) {
            match out {
                None => prop_assert!(sec.iter().any(|p| !tg.has_prop(*p))),
                Some(o) => {
                    prop_assert!(sec.iter().all(|p| tg.has_prop(*p)));
                    for (p, v) in &o.triples {
                        prop_assert!(prim.contains(p) || sec.contains(p));
                        prop_assert!(tg.has_triple(*p, *v));
                    }
                }
            }
        }
    }

    /// Def 3.5: the α-join equals the naive filtered nested-loop join.
    #[test]
    fn alpha_join_equals_nested_loop(
        left in proptest::collection::vec((0u64..4, arb_tg()), 0..8),
        right in proptest::collection::vec((0u64..4, arb_tg()), 0..8),
        req_prop in 1u64..8,
    ) {
        let left: Vec<(u64, AnnTg)> = left
            .into_iter()
            .map(|(k, tg)| (k, AnnTg::single(0, tg)))
            .collect();
        let right: Vec<(u64, AnnTg)> = right
            .into_iter()
            .map(|(k, tg)| (k, AnnTg::single(1, tg)))
            .collect();
        let conds = vec![AlphaCond {
            terms: vec![AlphaTerm { star: 0, prop: req_prop, required: true }],
        }];
        let mut got = alpha_join(&left, &right, &conds);
        let mut expect = Vec::new();
        for (lk, l) in &left {
            for (rk, r) in &right {
                if lk == rk {
                    let joined = l.merge(r);
                    if any_alpha_partial(&conds, &joined) {
                        expect.push(joined);
                    }
                }
            }
        }
        let key = |t: &AnnTg| format!("{t:?}");
        got.sort_by_key(&key);
        expect.sort_by_key(&key);
        prop_assert_eq!(got, expect);
    }

    /// PartialAgg merge is associative and commutative and equals the direct
    /// fold, for every aggregate op.
    #[test]
    fn partial_agg_algebra(
        xs in proptest::collection::vec(proptest::option::of(-1e6f64..1e6), 0..20),
        ys in proptest::collection::vec(proptest::option::of(-1e6f64..1e6), 0..20),
        zs in proptest::collection::vec(proptest::option::of(-1e6f64..1e6), 0..20),
    ) {
        let fold = |vals: &[Option<f64>]| {
            let mut p = PartialAgg::default();
            for v in vals {
                p.add(*v);
            }
            p
        };
        let (a, b, c) = (fold(&xs), fold(&ys), fold(&zs));

        let mut ab_c = a;
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut a_bc = a;
        a_bc.merge(&bc);
        let mut ba = b;
        ba.merge(&a);

        let direct = fold(&[xs.clone(), ys.clone(), zs.clone()].concat());
        for op in [AggOp::Count, AggOp::Sum, AggOp::Avg, AggOp::Min, AggOp::Max] {
            let close = |x: Option<f64>, y: Option<f64>| match (x, y) {
                (None, None) => true,
                (Some(a), Some(b)) => (a - b).abs() <= 1e-6 * (1.0 + a.abs()),
                _ => false,
            };
            prop_assert!(close(ab_c.finalize(op), a_bc.finalize(op)), "associative {op:?}");
            prop_assert!(close(ab_c.finalize(op), direct.finalize(op)), "fold {op:?}");
            {
                let mut ba2 = ba;
                ba2.merge(&c);
                prop_assert!(close(ab_c.finalize(op), ba2.finalize(op)), "commutative {op:?}");
            }
        }
    }

    /// Codec round-trips for AnnTg and AggRec under arbitrary contents.
    #[test]
    fn codecs_roundtrip(
        groups in proptest::collection::vec((0u8..4, arb_tg()), 0..4),
        id in any::<u8>(),
        key in proptest::collection::vec(any::<u64>(), 0..5),
        values in proptest::collection::vec(proptest::option::of(any::<f64>()), 0..5),
    ) {
        let mut sorted = groups;
        sorted.sort_by_key(|(s, _)| *s);
        sorted.dedup_by_key(|(s, _)| *s);
        let ann = AnnTg { groups: sorted };
        prop_assert_eq!(AnnTg::decode(&ann.encoded()), Some(ann));

        let rec = AggRec { id, key, values: values.clone() };
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        let back = AggRec::decode(&buf).unwrap();
        prop_assert_eq!(back.id, rec.id);
        prop_assert_eq!(back.key, rec.key);
        prop_assert_eq!(back.values.len(), rec.values.len());
        for (x, y) in back.values.iter().zip(&rec.values) {
            match (x, y) {
                (None, None) => {}
                (Some(a), Some(b)) => prop_assert!(a == b || (a.is_nan() && b.is_nan())),
                _ => prop_assert!(false, "Some/None mismatch"),
            }
        }
    }
}
