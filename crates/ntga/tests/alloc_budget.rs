//! Allocation-budget test for the zero-copy operator path.
//!
//! Installs [`rapida_testkit::alloc_gauge::CountingAlloc`] as this test
//! binary's global allocator and drives [`TgJoinMapper`] directly over a
//! batch of encoded triplegroup records, comparing allocator traffic
//! between the borrowed-view path and the `legacy_owned` baseline:
//!
//! * once its scratch buffers are warm, the view path must stay under a
//!   small allocations-per-record ceiling (steady state is zero: records
//!   are parsed as views and emits reuse two cleared buffers);
//! * the legacy path allocates per record (owned decode, per-route clone,
//!   fresh key/value `Vec`s per emit), so the view path must come in at
//!   least 3x below it on identical input.
//!
//! Everything is measured single-threaded in one `#[test]` — the gauge's
//! counters are global.

use rapida_mapred::{InputSrc, KvBuffer, MapOutput, MapTask};
use rapida_ntga::{
    JoinKey, PropReq, Side, StarRoute, StarSpec, TgJoinMapConfig, TgJoinMapper, TripleGroup,
};
use rapida_testkit::alloc_gauge::{self, CountingAlloc};
use std::sync::Arc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

const RECORDS: usize = 2_000;
const PRODUCT: u64 = 3;
const PRICE: u64 = 4;
const DELIVERY: u64 = 5;

/// A product/price star with an optional delivery-days secondary — two
/// thirds of the records match, one third fails the primary check.
fn records() -> Vec<Vec<u8>> {
    (0..RECORDS)
        .map(|i| {
            let s = 1_000 + i as u64;
            let triples = match i % 3 {
                0 => vec![(PRODUCT, s % 97), (PRICE, 10 + s % 50)],
                1 => vec![(PRODUCT, s % 97), (PRICE, 10 + s % 50), (DELIVERY, 7)],
                _ => vec![(PRICE, 10 + s % 50)], // no product: filtered out
            };
            let mut rec = Vec::new();
            TripleGroup::new(s, triples).encode(&mut rec);
            rec
        })
        .collect()
}

fn config(legacy_owned: bool) -> Arc<TgJoinMapConfig> {
    Arc::new(TgJoinMapConfig {
        raw_inputs: vec![0],
        star_routes: vec![StarRoute {
            spec: StarSpec {
                star: 0,
                primary: vec![PropReq::any(PRODUCT), PropReq::any(PRICE)],
                secondary: vec![PropReq::any(DELIVERY)],
            },
            side: Side::Left,
            key: JoinKey::Subject { star: 0 },
            prefilter: None,
        }],
        ann_routes: Vec::new(),
        legacy_owned,
    })
}

/// Sized so the pre-built output sink never grows during the measured pass.
fn sized_output() -> MapOutput {
    MapOutput {
        kvs: KvBuffer::with_capacity(2 * RECORDS, 128 * RECORDS),
        ..MapOutput::default()
    }
}

/// One warm-up pass (fills the mapper's scratch buffers), then a measured
/// pass into a pre-sized sink. Returns `(allocations, emitted pairs)`.
fn measure(cfg: Arc<TgJoinMapConfig>, recs: &[Vec<u8>]) -> (u64, usize) {
    let src = InputSrc { dataset: 0 };
    let mut mapper = TgJoinMapper::new(cfg);
    let mut warm = sized_output();
    for r in recs {
        mapper.map(src, r, &mut warm);
    }
    let mut out = sized_output();
    alloc_gauge::reset();
    for r in recs {
        mapper.map(src, r, &mut out);
    }
    let (allocs, _bytes) = alloc_gauge::counters();
    assert_eq!(out.kvs.len(), warm.kvs.len(), "passes must emit identically");
    (allocs, out.kvs.len())
}

#[test]
fn view_path_allocations_bounded() {
    let recs = records();
    let (view_allocs, view_pairs) = measure(config(false), &recs);
    let (legacy_allocs, legacy_pairs) = measure(config(true), &recs);
    assert_eq!(view_pairs, legacy_pairs, "variants must agree on output");
    assert!(view_pairs > RECORDS / 2, "most records should pass the filter");

    // Absolute ceiling: warm view path is allocation-free per record; allow
    // 0.05 allocs/record of slack for incidental growth.
    let ceiling = (RECORDS / 20) as u64;
    assert!(
        view_allocs <= ceiling,
        "view path allocated {view_allocs} times over {RECORDS} records \
         (ceiling {ceiling})"
    );

    // Relative floor: legacy owned-decode allocates every record (decode +
    // clone + fresh emit buffers); views must be at least 3x below it.
    assert!(
        legacy_allocs >= 3 * RECORDS as u64,
        "legacy path should allocate per record, got {legacy_allocs}"
    );
    assert!(
        view_allocs * 3 <= legacy_allocs,
        "view path ({view_allocs}) must allocate at least 3x less than \
         legacy ({legacy_allocs})"
    );
}
