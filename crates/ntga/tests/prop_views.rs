//! Property tests for the borrowed triplegroup views ([`TgRef`],
//! [`AnnTgRef`]): because the codecs are canonical (one byte string per
//! logical group), a view parsed from an encoded record must re-encode
//! byte-identically, agree field-by-field with the owned decode, and merge
//! exactly like the owned join product.

use rapida_ntga::{AnnTg, AnnTgRef, TgRef, TripleGroup};
use rapida_testkit::prelude::*;

fn arb_tg() -> impl Strategy<Value = TripleGroup> {
    (
        any::<u32>(),
        proptest::collection::vec((1u64..8, 0u64..12), 0..10),
    )
        .prop_map(|(s, pairs)| TripleGroup::new(u64::from(s), pairs))
}

/// Annotated triplegroups with sorted, unique star indices (the codec
/// invariant maintained by `AnnTg::single` / `merge`).
fn arb_ann() -> impl Strategy<Value = AnnTg> {
    proptest::collection::vec((0u8..5, arb_tg()), 1..4).prop_map(|mut groups| {
        groups.sort_by_key(|(s, _)| *s);
        groups.dedup_by_key(|(s, _)| *s);
        AnnTg { groups }
    })
}

proptest! {
    /// encode -> `TgRef::parse` -> `encode_into` is the identity on bytes,
    /// and every view accessor agrees with the owned group.
    #[test]
    fn tg_view_roundtrip(tg in arb_tg()) {
        let mut rec = Vec::new();
        tg.encode(&mut rec);
        let v = TgRef::parse(&rec).expect("canonical record parses");

        let mut back = Vec::new();
        v.encode_into(&mut back);
        prop_assert_eq!(&back, &rec, "re-encode must be byte-identical");
        prop_assert_eq!(v.raw_bytes(), &rec[..], "view span is the record");

        prop_assert_eq!(v.subject(), tg.subject);
        prop_assert_eq!(v.len(), tg.triples.len());
        let pairs: Vec<(u64, u64)> = v.pairs().collect();
        prop_assert_eq!(&pairs, &tg.triples);
        prop_assert_eq!(v.to_owned(), tg.clone());
        for p in 0u64..8 {
            prop_assert_eq!(v.has_prop(p), tg.has_prop(p));
            let vo: Vec<u64> = v.objects_of(p).collect();
            let to: Vec<u64> = tg.objects_of(p).collect();
            prop_assert_eq!(vo, to);
        }
    }

    /// Same laws for annotated groups: byte-identical re-encode, star
    /// lookup agreement, and owned-decode agreement.
    #[test]
    fn ann_view_roundtrip(ann in arb_ann()) {
        let rec = ann.encoded();
        let v = AnnTgRef::parse(&rec).expect("canonical record parses");

        let mut back = Vec::new();
        v.encode_into(&mut back);
        prop_assert_eq!(&back, &rec, "re-encode must be byte-identical");

        prop_assert_eq!(v.len(), ann.groups.len());
        let stars: Vec<u8> = v.stars().collect();
        let owned_stars: Vec<u8> = ann.stars().collect();
        prop_assert_eq!(stars, owned_stars);
        for (s, tg) in &ann.groups {
            let comp = v.star(*s).expect("star present in view");
            prop_assert_eq!(comp.to_owned(), tg.clone());
        }
        prop_assert!(v.star(200).is_none(), "absent star yields None");
        prop_assert_eq!(v.to_owned(), ann.clone());
        prop_assert_eq!(AnnTg::decode(&rec), Some(ann.clone()));
    }

    /// `merge_into` over views produces exactly the bytes of the owned
    /// `AnnTg::merge` product (the α-join materialization path).
    #[test]
    fn ann_view_merge_matches_owned(l in arb_ann(), r in arb_ann()) {
        // Make the star sets disjoint (the merge precondition): shift the
        // right side's indices above the left's maximum.
        let shift = l.groups.iter().map(|(s, _)| *s).max().unwrap_or(0) + 1;
        let r = AnnTg {
            groups: r
                .groups
                .iter()
                .map(|(s, tg)| (s + shift, tg.clone()))
                .collect(),
        };
        let (lrec, rrec) = (l.encoded(), r.encoded());
        let lv = AnnTgRef::parse(&lrec).expect("left parses");
        let rv = AnnTgRef::parse(&rrec).expect("right parses");

        let mut got = Vec::new();
        lv.merge_into(&rv, &mut got);
        prop_assert_eq!(got, l.merge(&r).encoded());
    }
}
