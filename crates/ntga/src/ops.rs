//! Logical NTGA operators — in-memory reference forms of the paper's
//! Definitions 3.3–3.6. The MR physical forms in [`crate::physical`] must
//! agree with these (tested in the workspace integration suite).

use crate::spec::{AggJoinSpec, AggOp, AlphaCond, NumericSnapshot, PartialAgg, StarSpec};
use crate::triplegroup::{AnnTg, AnnTgRef, TgRef, TripleGroup};
use rapida_mapred::codec::write_varint;
use rapida_rdf::FxHashMap;

/// σ^γopt — the **optional group filter** (Def 3.3).
///
/// Projects a subject triplegroup onto a composite star pattern's
/// `P_prim ∪ P_opt` and keeps it iff every primary property matches. Returns
/// the projected group, or `None` if a primary requirement fails.
pub fn opt_group_filter(tg: &TripleGroup, spec: &StarSpec) -> Option<TripleGroup> {
    for req in &spec.primary {
        if !req.matches(tg) {
            return None;
        }
    }
    let mut triples = Vec::new();
    for &(p, o) in &tg.triples {
        let keep = spec
            .primary
            .iter()
            .chain(spec.secondary.iter())
            .any(|req| req.prop == p && req.object.is_none_or(|ro| ro == o));
        if keep {
            triples.push((p, o));
        }
    }
    Some(TripleGroup::new(tg.subject, triples))
}

/// [`opt_group_filter`] over a borrowed view, encoding the projected group
/// directly into `out` (appended; the caller clears). Returns `false`
/// without touching `out` when a primary requirement fails.
///
/// Byte-identical to `opt_group_filter(...).encode(...)`: the view's pairs
/// are stored sorted, so the kept subsequence is sorted too and the direct
/// varint encoding equals the owned round trip.
pub fn opt_group_filter_into(tg: &TgRef<'_>, spec: &StarSpec, out: &mut Vec<u8>) -> bool {
    if spec.primary.len() > 64 {
        // The bitmask below tops out at 64 primary requirements; fall back
        // to one scan per requirement (unreachable on real specs).
        for req in &spec.primary {
            if !req.matches_ref(tg) {
                return false;
            }
        }
        encode_filtered(tg, spec, usize::MAX, out);
        return true;
    }
    // One fused pass: track which primary requirements are satisfied and
    // how many pairs the projection keeps.
    let mut matched: u64 = 0;
    let mut kept: usize = 0;
    for (p, o) in tg.pairs() {
        let mut keep = false;
        for (i, req) in spec.primary.iter().enumerate() {
            if req.prop == p && req.object.is_none_or(|ro| ro == o) {
                matched |= 1 << i;
                keep = true;
            }
        }
        kept += usize::from(
            keep || spec
                .secondary
                .iter()
                .any(|req| req.prop == p && req.object.is_none_or(|ro| ro == o)),
        );
    }
    if matched.count_ones() as usize != spec.primary.len() {
        return false;
    }
    if kept == tg.len() {
        // Projection keeps every pair: the canonical codec makes the
        // record's raw span exactly the filtered encoding.
        out.extend_from_slice(tg.raw_bytes());
    } else {
        encode_filtered(tg, spec, kept, out);
    }
    true
}

/// Encode the σ^γopt projection of `tg`, re-counting kept pairs unless the
/// caller already knows the count.
fn encode_filtered(tg: &TgRef<'_>, spec: &StarSpec, kept: usize, out: &mut Vec<u8>) {
    let kept = if kept == usize::MAX {
        tg.pairs().filter(|&(p, o)| spec.keeps(p, o)).count()
    } else {
        kept
    };
    write_varint(out, tg.subject());
    write_varint(out, kept as u64);
    for (p, o) in tg.pairs() {
        if spec.keeps(p, o) {
            write_varint(out, p);
            write_varint(out, o);
        }
    }
}

/// χ — the **n-split** operator (Def 3.4).
///
/// Extracts up to `n` sub-triplegroups from a composite-pattern match: the
/// `i`-th output combines the primary-property triples with the triples of
/// the `i`-th secondary property set, and exists iff every property of that
/// secondary set is present.
pub fn n_split(
    tg: &TripleGroup,
    primary: &[u64],
    secondary_sets: &[Vec<u64>],
) -> Vec<Option<TripleGroup>> {
    secondary_sets
        .iter()
        .map(|secs| {
            if !secs.iter().all(|p| tg.has_prop(*p)) {
                return None;
            }
            let triples: Vec<(u64, u64)> = tg
                .triples
                .iter()
                .filter(|(p, _)| primary.contains(p) || secs.contains(p))
                .copied()
                .collect();
            Some(TripleGroup::new(tg.subject, triples))
        })
        .collect()
}

/// ⋈^γ_{α1∨…∨αm} — the **α-Join** (Def 3.5), in-memory form.
///
/// Joins two annotated-triplegroup collections on precomputed key values,
/// materializing a combination only when at least one α-condition accepts it
/// (partial semantics: conditions mention only stars present so far).
pub fn alpha_join(
    left: &[(u64, AnnTg)],
    right: &[(u64, AnnTg)],
    conds: &[AlphaCond],
) -> Vec<AnnTg> {
    let mut by_key: FxHashMap<u64, Vec<&AnnTg>> = FxHashMap::default();
    for (k, tg) in left {
        by_key.entry(*k).or_default().push(tg);
    }
    let mut out = Vec::new();
    for (k, rtg) in right {
        if let Some(ls) = by_key.get(k) {
            for ltg in ls {
                let joined = ltg.merge(rtg);
                if crate::spec::any_alpha_partial(conds, &joined) {
                    out.push(joined);
                }
            }
        }
    }
    out
}

/// γ^AgJ — the **TG Agg-Join** (Def 3.6), in-memory form.
///
/// For each detail triplegroup satisfying the spec's α-condition, enumerates
/// the joint assignments of all referenced variables (grouping + aggregation
/// arguments; multi-valued properties fan out exactly as the relational
/// row expansion would) and folds each assignment into the group keyed by
/// the grouping values. Returns `(group key, partial states)` pairs.
///
/// The paper's base-triplegroup formulation (`RNG(btg, TG_detail, θ, α)`)
/// is recovered by reading each output group as one base triplegroup whose
/// RNG contributed the folded detail groups.
pub fn agg_join(
    details: &[AnnTg],
    spec: &AggJoinSpec,
    numeric: &NumericSnapshot,
) -> Vec<(Vec<u64>, Vec<PartialAgg>)> {
    let mut groups: FxHashMap<Vec<u64>, Vec<PartialAgg>> = FxHashMap::default();
    for tg in details {
        if !spec.alpha.satisfied_full(tg) {
            continue;
        }
        accumulate(tg, spec, numeric, &mut |key, idx, value| {
            let entry = groups
                .entry(key.to_vec())
                .or_insert_with(|| vec![PartialAgg::default(); spec.aggs.len()]);
            entry[idx].add(value);
        });
    }
    groups.into_iter().collect()
}

/// Shared assignment-enumeration core for the logical and physical Agg-Join:
/// calls `fold(group_key, agg_index, numeric_value)` once per (assignment,
/// aggregation) pair.
/// Callback type for [`accumulate`]: `(group key, aggregate index, value)`.
pub type FoldFn<'a> = dyn FnMut(&[u64], usize, Option<f64>) + 'a;

pub fn accumulate(
    tg: &AnnTg,
    spec: &AggJoinSpec,
    numeric: &NumericSnapshot,
    fold: &mut FoldFn<'_>,
) {
    // Value lists per slot. A triplegroup that reached the Agg-Join and
    // passed α has every pattern variable bound (primary presence is
    // enforced by the group filter, secondary presence by α); an empty slot
    // therefore means the pattern does not match and the group contributes
    // nothing (relational inner-join semantics).
    let value_lists: Vec<Vec<u64>> = spec.slots.iter().map(|r| r.values(tg)).collect();
    if value_lists.iter().any(|v| v.is_empty()) {
        return;
    }

    // Enumerate the full cartesian assignment space — the relational
    // solution-row expansion of the block pattern.
    let mut assignment: Vec<u64> = vec![0; spec.slots.len()];
    enumerate(&value_lists, 0, &mut assignment, &mut |assignment| {
        let key: Vec<u64> = spec.group_slots.iter().map(|&i| assignment[i]).collect();
        for (i, agg) in spec.aggs.iter().enumerate() {
            match agg.arg {
                None => fold(&key, i, None), // COUNT(*): every assignment counts
                Some(slot) => {
                    let v = assignment[slot];
                    let num = numeric.get(v as usize).copied().flatten();
                    fold(&key, i, num);
                }
            }
        }
    });
}

fn enumerate(
    lists: &[Vec<u64>],
    i: usize,
    assignment: &mut Vec<u64>,
    f: &mut dyn FnMut(&[u64]),
) {
    if i == lists.len() {
        f(assignment);
        return;
    }
    for &v in &lists[i] {
        assignment[i] = v;
        enumerate(lists, i + 1, assignment, f);
    }
}

/// Reusable scratch for [`accumulate_view`]: slot values flattened into one
/// arena (per-slot spans in `bounds`), the current assignment, and the
/// current group key. Cleared, never reallocated, between records.
#[derive(Debug, Default)]
pub struct AccumScratch {
    values: Vec<u64>,
    bounds: Vec<(u32, u32)>,
    assignment: Vec<u64>,
    key: Vec<u64>,
}

/// [`accumulate`] over a borrowed view: identical enumeration order and
/// fold sequence, but slot values stream into `scratch` (one flat arena)
/// and the group key is rebuilt in place per assignment — zero allocations
/// per record once the scratch is warm.
pub fn accumulate_view(
    tg: &AnnTgRef<'_>,
    spec: &AggJoinSpec,
    numeric: &NumericSnapshot,
    scratch: &mut AccumScratch,
    fold: &mut FoldFn<'_>,
) {
    let AccumScratch {
        values,
        bounds,
        assignment,
        key,
    } = scratch;
    values.clear();
    bounds.clear();
    for r in &spec.slots {
        let start = values.len() as u32;
        r.for_each_value_ref(tg, |v| values.push(v));
        let end = values.len() as u32;
        // Same inner-join semantics as the owned path: an empty slot means
        // the pattern does not match and the group contributes nothing.
        if start == end {
            return;
        }
        bounds.push((start, end));
    }
    assignment.clear();
    assignment.resize(spec.slots.len(), 0);
    enumerate_flat(values, bounds, 0, assignment, &mut |assignment| {
        key.clear();
        key.extend(spec.group_slots.iter().map(|&i| assignment[i]));
        for (i, agg) in spec.aggs.iter().enumerate() {
            match agg.arg {
                None => fold(key, i, None), // COUNT(*): every assignment counts
                Some(slot) => {
                    let v = assignment[slot];
                    let num = numeric.get(v as usize).copied().flatten();
                    fold(key, i, num);
                }
            }
        }
    });
}

fn enumerate_flat(
    values: &[u64],
    bounds: &[(u32, u32)],
    i: usize,
    assignment: &mut Vec<u64>,
    f: &mut dyn FnMut(&[u64]),
) {
    if i == bounds.len() {
        f(assignment);
        return;
    }
    let (s, e) = bounds[i];
    for j in s..e {
        assignment[i] = values[j as usize];
        enumerate_flat(values, bounds, i + 1, assignment, f);
    }
}

/// Finalize agg-join groups into `(key, values)` with each partial resolved
/// through its [`AggOp`].
pub fn finalize_groups(
    groups: Vec<(Vec<u64>, Vec<PartialAgg>)>,
    ops: &[AggOp],
) -> Vec<(Vec<u64>, Vec<Option<f64>>)> {
    finalize_groups_par(groups, ops, 1)
}

/// [`finalize_groups`] with the group list cut into contiguous chunks
/// finalized on `workers` scoped threads. Each group's finalize reads only
/// its own partials — key-local in the engine's sense — so chunk outputs
/// concatenated in chunk order are exactly the serial result at any worker
/// count.
pub fn finalize_groups_par(
    groups: Vec<(Vec<u64>, Vec<PartialAgg>)>,
    ops: &[AggOp],
    workers: usize,
) -> Vec<(Vec<u64>, Vec<Option<f64>>)> {
    const MIN_PAR_GROUPS: usize = 1024;
    let finalize_chunk = |chunk: Vec<(Vec<u64>, Vec<PartialAgg>)>| {
        chunk
            .into_iter()
            .map(|(k, partials)| {
                let values = partials
                    .iter()
                    .zip(ops)
                    .map(|(p, op)| p.finalize(*op))
                    .collect();
                (k, values)
            })
            .collect::<Vec<_>>()
    };
    let workers = workers.max(1).min(groups.len() / MIN_PAR_GROUPS + 1);
    if workers <= 1 {
        return finalize_chunk(groups);
    }
    // Split into owned chunks front to back, finalize each on its own
    // scoped thread, join in spawn order.
    let per = groups.len().div_ceil(workers);
    let mut rest = groups;
    let mut chunks: Vec<Vec<(Vec<u64>, Vec<PartialAgg>)>> = Vec::with_capacity(workers);
    while rest.len() > per {
        let tail = rest.split_off(per);
        chunks.push(rest);
        rest = tail;
    }
    chunks.push(rest);
    let finalize_chunk = &finalize_chunk;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || finalize_chunk(c)))
            .collect();
        let mut out = Vec::new();
        for h in handles {
            out.extend(h.join().expect("finalize worker panicked"));
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AggSpec, AlphaTerm, PropReq, VarRef};
    use std::sync::Arc;

    fn tg(s: u64, pairs: &[(u64, u64)]) -> TripleGroup {
        TripleGroup::new(s, pairs.to_vec())
    }

    // Property ids echoing Fig. 4: product=1, price=2, validFrom=3, validTo=4.
    const PRODUCT: u64 = 1;
    const PRICE: u64 = 2;
    const VALID_FROM: u64 = 3;
    const VALID_TO: u64 = 4;

    fn fig4_spec() -> StarSpec {
        StarSpec {
            star: 0,
            primary: vec![PropReq::any(PRODUCT), PropReq::any(PRICE)],
            secondary: vec![PropReq::any(VALID_FROM), PropReq::any(VALID_TO)],
        }
    }

    /// Fig. 4(a): tg1, tg2, tg4 pass; tg3 (missing price) is filtered out.
    #[test]
    fn fig4a_optional_group_filter() {
        let tg1 = tg(101, &[(PRODUCT, 11), (PRICE, 21), (VALID_TO, 41)]);
        let tg2 = tg(102, &[(PRODUCT, 12), (PRICE, 22)]);
        let tg3 = tg(103, &[(PRODUCT, 13), (VALID_FROM, 33)]);
        let tg4 = tg(
            104,
            &[(PRODUCT, 14), (PRICE, 24), (VALID_FROM, 34), (VALID_TO, 44)],
        );
        let spec = fig4_spec();
        assert!(opt_group_filter(&tg1, &spec).is_some());
        assert!(opt_group_filter(&tg2, &spec).is_some());
        assert!(opt_group_filter(&tg3, &spec).is_none(), "missing primary price");
        assert!(opt_group_filter(&tg4, &spec).is_some());
    }

    #[test]
    fn filter_projects_away_irrelevant_properties() {
        let g = tg(1, &[(PRODUCT, 11), (PRICE, 21), (99, 5)]);
        let out = opt_group_filter(&g, &fig4_spec()).unwrap();
        assert!(!out.has_prop(99));
        assert_eq!(out.triples.len(), 2);
    }

    #[test]
    fn filter_with_type_object_constraint() {
        let spec = StarSpec {
            star: 0,
            primary: vec![PropReq::with_object(7, 70)],
            secondary: vec![],
        };
        assert!(opt_group_filter(&tg(1, &[(7, 70)]), &spec).is_some());
        assert!(opt_group_filter(&tg(1, &[(7, 71)]), &spec).is_none());
        // Projection keeps only the matching type triple.
        let both = tg(1, &[(7, 70), (7, 71)]);
        let out = opt_group_filter(&both, &spec).unwrap();
        assert_eq!(out.triples, vec![(7, 70)]);
    }

    /// Fig. 4(b): n-split with P_sec1={validFrom}, P_sec2={validTo}.
    #[test]
    fn fig4b_n_split() {
        let tg4 = tg(
            104,
            &[(PRODUCT, 14), (PRICE, 24), (VALID_FROM, 34), (VALID_TO, 44)],
        );
        let tg1 = tg(101, &[(PRODUCT, 11), (PRICE, 21), (VALID_TO, 41)]);
        let prim = vec![PRODUCT, PRICE];
        let secs = vec![vec![VALID_FROM], vec![VALID_TO]];

        let s4 = n_split(&tg4, &prim, &secs);
        // tg4 matches both combinations.
        let s41 = s4[0].as_ref().unwrap();
        assert!(s41.has_prop(VALID_FROM) && !s41.has_prop(VALID_TO));
        let s42 = s4[1].as_ref().unwrap();
        assert!(s42.has_prop(VALID_TO) && !s42.has_prop(VALID_FROM));

        // tg1 matches only the second combination.
        let s1 = n_split(&tg1, &prim, &secs);
        assert!(s1[0].is_none());
        assert!(s1[1].is_some());
    }

    /// Fig. 4(c): first combination has no secondary properties.
    #[test]
    fn fig4c_n_split_with_empty_secondary() {
        let tg1 = tg(101, &[(PRODUCT, 11), (PRICE, 21), (VALID_TO, 41)]);
        let s = n_split(&tg1, &[PRODUCT, PRICE], &[vec![], vec![VALID_TO]]);
        let first = s[0].as_ref().unwrap();
        assert_eq!(first.props().len(), 2);
        assert!(s[1].is_some());
    }

    /// Table 2 row 4 shape: GP1=abc:de, GP2=ab:def — α1 = c≠∅ ∧ f=∅,
    /// α2 = c=∅ ∧ f≠∅. Combinations violating both must not materialize.
    #[test]
    fn alpha_join_rejects_invalid_combinations() {
        const A: u64 = 1;
        const B: u64 = 2;
        const C: u64 = 3;
        const D: u64 = 4;
        const E: u64 = 5;
        const F: u64 = 6;
        let conds = vec![
            AlphaCond {
                terms: vec![
                    AlphaTerm { star: 0, prop: C, required: true },
                    AlphaTerm { star: 1, prop: F, required: false },
                ],
            },
            AlphaCond {
                terms: vec![
                    AlphaTerm { star: 0, prop: C, required: false },
                    AlphaTerm { star: 1, prop: F, required: true },
                ],
            },
        ];
        // Left star 0 groups: with and without c. Key = subject for the test.
        let l_abc = AnnTg::single(0, tg(1, &[(A, 10), (B, 11), (C, 12)]));
        let l_ab = AnnTg::single(0, tg(2, &[(A, 10), (B, 11)]));
        // Right star 1 groups: with and without f.
        let r_def = AnnTg::single(1, tg(3, &[(D, 20), (E, 21), (F, 22)]));
        let r_de = AnnTg::single(1, tg(4, &[(D, 20), (E, 21)]));

        let left = vec![(7, l_abc.clone()), (7, l_ab.clone())];
        let right = vec![(7, r_def.clone()), (7, r_de.clone())];
        let out = alpha_join(&left, &right, &conds);
        // Valid: abc+de (α1), ab+def (α2). Invalid: abc+def, ab+de.
        assert_eq!(out.len(), 2);
        for j in &out {
            let has_c = j.star(0).unwrap().has_prop(C);
            let has_f = j.star(1).unwrap().has_prop(F);
            assert!(has_c != has_f, "exactly one of c/f per Table 2 row");
        }
    }

    #[test]
    fn alpha_join_matches_on_key_only() {
        let l = vec![(1, AnnTg::single(0, tg(1, &[(1, 1)])))];
        let r = vec![(2, AnnTg::single(1, tg(2, &[(2, 2)])))];
        assert!(alpha_join(&l, &r, &[]).is_empty(), "different keys");
    }

    /// Fig. 5: groupings on (feature, country); dtg2 (no pf) fails α and the
    /// aggregation fans out over the multi-valued pf.
    #[test]
    fn fig5_agg_join() {
        const PF: u64 = 10; // productFeature (secondary)
        const PC: u64 = 11; // price
        const CN: u64 = 12; // country
        // One composite star (index 0) carrying pf+pc, star 1 carrying cn —
        // flattened here into two stars of an AnnTg.
        let feat1 = 501;
        let feat2 = 502;
        let uk = 601;
        let us = 602;
        // Numeric snapshot: ids are prices when in 0..100.
        let mut numeric = vec![None; 1000];
        numeric[30] = Some(30.0);
        numeric[50] = Some(50.0);
        numeric[20] = Some(20.0);
        let numeric: NumericSnapshot = Arc::new(numeric);

        let dtg1 = AnnTg {
            groups: vec![
                (0, tg(1, &[(PF, feat1), (PC, 30)])),
                (1, tg(9, &[(CN, uk)])),
            ],
        };
        // dtg2 has no pf — fails α.
        let dtg2 = AnnTg {
            groups: vec![(0, tg(2, &[(PC, 50)])), (1, tg(9, &[(CN, uk)]))],
        };
        // dtg3: two features, one price — fans out to two groups.
        let dtg3 = AnnTg {
            groups: vec![
                (0, tg(3, &[(PF, feat1), (PF, feat2), (PC, 20)])),
                (1, tg(8, &[(CN, us)])),
            ],
        };
        let spec = AggJoinSpec {
            id: 0,
            slots: vec![
                VarRef::ObjectOf { star: 0, prop: PF },
                VarRef::ObjectOf { star: 1, prop: CN },
                VarRef::ObjectOf { star: 0, prop: PC },
            ],
            group_slots: vec![0, 1],
            aggs: vec![
                AggSpec { op: AggOp::Sum, arg: Some(2) },
                AggSpec { op: AggOp::Count, arg: Some(2) },
            ],
            alpha: AlphaCond {
                terms: vec![AlphaTerm { star: 0, prop: PF, required: true }],
            },
        };
        let mut groups = agg_join(&[dtg1, dtg2, dtg3], &spec, &numeric);
        groups.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(groups.len(), 3); // (f1,uk), (f1,us), (f2,us)
        let lookup = |k: &[u64]| {
            groups
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, p)| (p[0].finalize(AggOp::Sum), p[1].finalize(AggOp::Count)))
                .unwrap()
        };
        assert_eq!(lookup(&[feat1, uk]), (Some(30.0), Some(1.0)));
        assert_eq!(lookup(&[feat1, us]), (Some(20.0), Some(1.0)));
        assert_eq!(lookup(&[feat2, us]), (Some(20.0), Some(1.0)));
    }

    /// COUNT grouped by the counted variable must count each assignment once
    /// (the correlated-variable case).
    #[test]
    fn agg_join_correlated_group_and_agg_var() {
        const CID: u64 = 5;
        let numeric: NumericSnapshot = Arc::new(vec![None; 10]);
        let d = AnnTg::single(0, tg(1, &[(CID, 7), (CID, 8)]));
        let spec = AggJoinSpec {
            id: 0,
            slots: vec![VarRef::ObjectOf { star: 0, prop: CID }],
            group_slots: vec![0],
            aggs: vec![AggSpec {
                op: AggOp::Count,
                arg: Some(0),
            }],
            alpha: AlphaCond::default(),
        };
        let mut groups = agg_join(&[d], &spec, &numeric);
        groups.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(groups.len(), 2);
        for (_, p) in &groups {
            assert_eq!(p[0].finalize(AggOp::Count), Some(1.0));
        }
    }

    /// GROUP BY ALL: a single group keyed by the empty tuple.
    #[test]
    fn agg_join_group_by_all() {
        const PC: u64 = 11;
        let mut numeric = vec![None; 100];
        numeric[30] = Some(30.0);
        numeric[20] = Some(20.0);
        let numeric: NumericSnapshot = Arc::new(numeric);
        let d1 = AnnTg::single(0, tg(1, &[(PC, 30)]));
        let d2 = AnnTg::single(0, tg(2, &[(PC, 20)]));
        let spec = AggJoinSpec {
            id: 1,
            slots: vec![VarRef::ObjectOf { star: 0, prop: PC }],
            group_slots: vec![],
            aggs: vec![AggSpec {
                op: AggOp::Sum,
                arg: Some(0),
            }],
            alpha: AlphaCond::default(),
        };
        let groups = agg_join(&[d1, d2], &spec, &numeric);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].0, Vec::<u64>::new());
        assert_eq!(groups[0].1[0].finalize(AggOp::Sum), Some(50.0));
    }

    /// Parallel evaluation of two independent Agg-Joins over the same detail
    /// collection (§4.1) must equal their sequential evaluation.
    #[test]
    fn parallel_agg_joins_equal_sequential() {
        const PF: u64 = 10;
        const PC: u64 = 11;
        let mut numeric = vec![None; 100];
        numeric[30] = Some(30.0);
        numeric[20] = Some(20.0);
        let numeric: NumericSnapshot = Arc::new(numeric);
        let details = vec![
            AnnTg::single(0, tg(1, &[(PF, 61), (PC, 30)])),
            AnnTg::single(0, tg(2, &[(PC, 20)])),
        ];
        let spec1 = AggJoinSpec {
            id: 0,
            slots: vec![
                VarRef::ObjectOf { star: 0, prop: PF },
                VarRef::ObjectOf { star: 0, prop: PC },
            ],
            group_slots: vec![0],
            aggs: vec![AggSpec { op: AggOp::Sum, arg: Some(1) }],
            alpha: AlphaCond {
                terms: vec![AlphaTerm { star: 0, prop: PF, required: true }],
            },
        };
        let spec2 = AggJoinSpec {
            id: 1,
            slots: vec![VarRef::ObjectOf { star: 0, prop: PC }],
            group_slots: vec![],
            aggs: vec![AggSpec { op: AggOp::Count, arg: Some(0) }],
            alpha: AlphaCond::default(),
        };
        // "Parallel": one pass over details feeding both specs.
        let g1 = agg_join(&details, &spec1, &numeric);
        let g2 = agg_join(&details, &spec2, &numeric);
        assert_eq!(g1.len(), 1);
        assert_eq!(g1[0].1[0].finalize(AggOp::Sum), Some(30.0));
        assert_eq!(g2[0].1[0].finalize(AggOp::Count), Some(2.0));
    }

    #[test]
    fn finalize_groups_applies_ops() {
        let mut p = PartialAgg::default();
        p.add(Some(4.0));
        p.add(Some(6.0));
        let out = finalize_groups(vec![(vec![1], vec![p])], &[AggOp::Avg]);
        assert_eq!(out[0].1[0], Some(5.0));
    }

    #[test]
    fn finalize_groups_par_matches_serial_in_order() {
        // Enough groups to clear the MIN_PAR_GROUPS floor and genuinely
        // split across threads.
        let mk = || {
            (0..5000usize)
                .map(|i| {
                    let mut p = PartialAgg::default();
                    p.add(Some(i as f64));
                    p.add(if i % 7 == 0 { None } else { Some(2.0 * i as f64) });
                    let mut q = PartialAgg::default();
                    q.add(Some(1.0));
                    (vec![i as u64, (i % 13) as u64], vec![p, q])
                })
                .collect::<Vec<_>>()
        };
        let ops = [AggOp::Sum, AggOp::Count];
        let serial = finalize_groups_par(mk(), &ops, 1);
        for workers in [2, 3, 8] {
            assert_eq!(
                finalize_groups_par(mk(), &ops, workers),
                serial,
                "chunk-parallel finalize must match serial at {workers} workers"
            );
        }
    }

    #[test]
    fn opt_group_filter_into_matches_owned() {
        let spec = fig4_spec();
        let cases = [
            tg(101, &[(PRODUCT, 11), (PRICE, 21), (VALID_TO, 41), (99, 5)]),
            tg(102, &[(PRODUCT, 12), (PRICE, 22)]),
            tg(103, &[(PRODUCT, 13), (VALID_FROM, 33)]),
        ];
        for g in &cases {
            let mut rec = Vec::new();
            g.encode(&mut rec);
            let v = TgRef::parse(&rec).unwrap();
            let mut got = Vec::new();
            let kept = opt_group_filter_into(&v, &spec, &mut got);
            match opt_group_filter(g, &spec) {
                None => {
                    assert!(!kept);
                    assert!(got.is_empty(), "rejected group must not touch out");
                }
                Some(owned) => {
                    assert!(kept);
                    let mut want = Vec::new();
                    owned.encode(&mut want);
                    assert_eq!(got, want);
                }
            }
        }
    }

    #[test]
    fn accumulate_view_matches_owned() {
        const PF: u64 = 10;
        const PC: u64 = 11;
        const CN: u64 = 12;
        let mut numeric = vec![None; 100];
        numeric[30] = Some(30.0);
        numeric[20] = Some(20.0);
        let numeric: NumericSnapshot = Arc::new(numeric);
        let spec = AggJoinSpec {
            id: 0,
            slots: vec![
                VarRef::ObjectOf { star: 0, prop: PF },
                VarRef::ObjectOf { star: 1, prop: CN },
                VarRef::ObjectOf { star: 0, prop: PC },
            ],
            group_slots: vec![0, 1],
            aggs: vec![
                AggSpec { op: AggOp::Sum, arg: Some(2) },
                AggSpec { op: AggOp::Count, arg: None },
            ],
            alpha: AlphaCond::default(),
        };
        let details = [
            AnnTg {
                groups: vec![
                    (0, tg(3, &[(PF, 61), (PF, 62), (PC, 20), (PC, 30)])),
                    (1, tg(8, &[(CN, 70), (CN, 71)])),
                ],
            },
            // Missing pf: slot 0 empty, contributes nothing on both paths.
            AnnTg {
                groups: vec![(0, tg(4, &[(PC, 20)])), (1, tg(8, &[(CN, 70)]))],
            },
        ];
        let mut scratch = AccumScratch::default();
        for d in &details {
            let mut owned_folds: Vec<(Vec<u64>, usize, Option<f64>)> = Vec::new();
            accumulate(d, &spec, &numeric, &mut |k, i, v| {
                owned_folds.push((k.to_vec(), i, v));
            });
            let rec = d.encoded();
            let view = AnnTgRef::parse(&rec).unwrap();
            let mut view_folds: Vec<(Vec<u64>, usize, Option<f64>)> = Vec::new();
            accumulate_view(&view, &spec, &numeric, &mut scratch, &mut |k, i, v| {
                view_folds.push((k.to_vec(), i, v));
            });
            assert_eq!(view_folds, owned_folds, "fold sequences must be identical");
        }
    }
}
