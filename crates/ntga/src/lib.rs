//! # rapida-ntga
//!
//! The Nested TripleGroup Data Model and Algebra (NTGA) with this paper's
//! analytical extensions:
//!
//! * [`triplegroup`] — [`TripleGroup`] / [`AnnTg`] model and codecs.
//! * [`spec`] — operator specifications: star requirements, α-conditions
//!   (Table 2), variable references, aggregation specs and mergeable
//!   [`PartialAgg`] states.
//! * [`ops`] — logical operators (Defs 3.3–3.6): the optional group filter
//!   σ^γopt, the n-split χ, the α-Join, and the TG Agg-Join γ^AgJ.
//! * [`physical`] — MR physical operators (Algorithms 1–3): filter + α-join
//!   map/reduce pairs and the Agg-Join with map-side hash aggregation.
//! * [`hashagg`] — the open-addressing [`AggTable`] backing map-side
//!   combining (flat key/state arenas, deterministic sorted drain).
//!
//! The hot operator paths run on the borrowed views [`TgRef`] /
//! [`AnnTgRef`]: records are parsed in place and re-emitted by copying
//! raw spans into per-task scratch buffers (see `DESIGN.md` §2d). The
//! owned-decode paths survive behind `legacy_owned` flags as the
//! benchmark baseline.

pub mod hashagg;
pub mod ops;
pub mod physical;
pub mod spec;
pub mod triplegroup;

pub use hashagg::AggTable;
pub use ops::{
    accumulate, accumulate_view, agg_join, alpha_join, finalize_groups, finalize_groups_par,
    n_split,
    opt_group_filter, opt_group_filter_into, AccumScratch,
};
pub use spec::{
    any_alpha_partial, any_alpha_partial_merged, AggJoinSpec, AggOp, AggRec, AggSpec, AlphaCond,
    AlphaTerm, JoinKey, NumericSnapshot, PartialAgg, PropReq, StarSpec, VarRef,
};
pub use physical::{
    AggJoinConfig, AggJoinMapper, AggJoinReducer, AlphaJoinReducer, AnnRoute, Side, StarRoute,
    TgJoinMapConfig, TgJoinMapper, TgTransform,
};
pub use triplegroup::{AnnTg, AnnTgRef, TgRef, TripleGroup};
