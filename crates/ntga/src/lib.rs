//! # rapida-ntga
//!
//! The Nested TripleGroup Data Model and Algebra (NTGA) with this paper's
//! analytical extensions:
//!
//! * [`triplegroup`] — [`TripleGroup`] / [`AnnTg`] model and codecs.
//! * [`spec`] — operator specifications: star requirements, α-conditions
//!   (Table 2), variable references, aggregation specs and mergeable
//!   [`PartialAgg`] states.
//! * [`ops`] — logical operators (Defs 3.3–3.6): the optional group filter
//!   σ^γopt, the n-split χ, the α-Join, and the TG Agg-Join γ^AgJ.
//! * [`physical`] — MR physical operators (Algorithms 1–3): filter + α-join
//!   map/reduce pairs and the Agg-Join with map-side hash aggregation.

pub mod ops;
pub mod physical;
pub mod spec;
pub mod triplegroup;

pub use ops::{agg_join, alpha_join, finalize_groups, n_split, opt_group_filter};
pub use spec::{
    any_alpha_partial, AggJoinSpec, AggOp, AggRec, AggSpec, AlphaCond, AlphaTerm, JoinKey,
    NumericSnapshot, PartialAgg, PropReq, StarSpec, VarRef,
};
pub use physical::{
    AggJoinConfig, AggJoinMapper, AggJoinReducer, AlphaJoinReducer, AnnRoute, Side, StarRoute,
    TgJoinMapConfig, TgJoinMapper, TgTransform,
};
pub use triplegroup::{AnnTg, TripleGroup};
