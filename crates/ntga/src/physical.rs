//! Physical MR operators: the map/reduce function pairs of §4.2
//! (Algorithms 1–3), implemented against the `rapida-mapred` task traits.
//!
//! * [`TgJoinMapper`] + [`AlphaJoinReducer`] — `TG_OptGrpFilter` pipelined
//!   into the map phase of `TG_AlphaJoin` (Algorithm 2, and `Job_i` of
//!   Algorithm 1).
//! * [`AggJoinMapper`] + [`AggJoinReducer`] — `TG_AgJ` with map-side hash
//!   aggregation (`multiAggMap`, Algorithm 3; `Job_k` of Algorithm 1).

use crate::ops::{accumulate, opt_group_filter};
use crate::spec::{
    any_alpha_partial, AggJoinSpec, AggRec, AlphaCond, JoinKey, NumericSnapshot, PartialAgg,
    StarSpec,
};
use crate::triplegroup::{AnnTg, TripleGroup};
use rapida_mapred::codec::{read_varint, write_varint};
use rapida_mapred::{InputSrc, MapOutput, MapTask, ReduceOutput, ReduceTask};
use rapida_rdf::FxHashMap;
use std::sync::Arc;

/// Join side tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Left equivalence class.
    Left,
    /// Right equivalence class.
    Right,
}

impl Side {
    fn byte(self) -> u8 {
        match self {
            Side::Left => 0,
            Side::Right => 1,
        }
    }
}

/// A route from a star-pattern spec to a join side: every raw triplegroup
/// passing the spec's optional group filter is emitted on `side` keyed by
/// `key`. Multiple routes over the same scan realize NTGA's shared
/// execution of star patterns.
#[derive(Clone)]
pub struct StarRoute {
    /// The composite star spec (`TG_OptGrpFilter` parameters).
    pub spec: StarSpec,
    /// Which side of the join this star feeds.
    pub side: Side,
    /// The join key extractor.
    pub key: JoinKey,
    /// Optional per-star value-filter transform applied before the group
    /// filter (FILTER pushdown; may differ between stars).
    pub prefilter: Option<TgTransform>,
}

/// A route for intermediate annotated-triplegroup inputs (later join cycles
/// of 3+-star patterns), selected by job input index.
#[derive(Debug, Clone)]
pub struct AnnRoute {
    /// Job input (dataset) index this route applies to.
    pub input: usize,
    /// Join side.
    pub side: Side,
    /// Join key extractor.
    pub key: JoinKey,
}

/// A raw-triplegroup transform applied before star filtering: value-level
/// FILTER pushdown drops triples whose objects fail a predicate (returning
/// `None` drops the whole group). Built by the planner with dictionary
/// snapshots baked in.
pub type TgTransform = Arc<dyn Fn(TripleGroup) -> Option<TripleGroup> + Send + Sync>;

/// Configuration for [`TgJoinMapper`].
#[derive(Clone, Default)]
pub struct TgJoinMapConfig {
    /// Dataset indexes holding raw subject triplegroups; all
    /// [`Self::star_routes`] are applied to each of their records (shared
    /// scan).
    pub raw_inputs: Vec<usize>,
    /// Star routes for raw inputs.
    pub star_routes: Vec<StarRoute>,
    /// Routes for annotated intermediate inputs.
    pub ann_routes: Vec<AnnRoute>,
}

/// Map phase of `Job_i`: `TG_OptGrpFilter` + tagging for `TG_AlphaJoin`.
pub struct TgJoinMapper {
    config: Arc<TgJoinMapConfig>,
}

impl TgJoinMapper {
    /// Create from shared config.
    pub fn new(config: Arc<TgJoinMapConfig>) -> Self {
        TgJoinMapper { config }
    }
}

fn emit_tagged(out: &mut MapOutput, key_val: u64, side: Side, tg: &AnnTg) {
    let mut key = Vec::with_capacity(10);
    write_varint(&mut key, key_val);
    let mut val = Vec::new();
    val.push(side.byte());
    tg.encode(&mut val);
    out.emit(&key, &val);
}

impl MapTask for TgJoinMapper {
    fn map(&mut self, src: InputSrc, record: &[u8], out: &mut MapOutput) {
        if self.config.raw_inputs.contains(&src.dataset) {
            let Some(tg) = TripleGroup::decode(record) else {
                return;
            };
            for route in &self.config.star_routes {
                let view = match &route.prefilter {
                    Some(f) => match f(tg.clone()) {
                        Some(v) => v,
                        None => continue,
                    },
                    None => tg.clone(),
                };
                if let Some(filtered) = opt_group_filter(&view, &route.spec) {
                    let ann = AnnTg::single(route.spec.star, filtered);
                    for k in route.key.extract(&ann) {
                        emit_tagged(out, k, route.side, &ann);
                    }
                }
            }
        } else {
            let Some(ann) = AnnTg::decode(record) else {
                return;
            };
            for route in &self.config.ann_routes {
                if route.input == src.dataset {
                    for k in route.key.extract(&ann) {
                        emit_tagged(out, k, route.side, &ann);
                    }
                }
            }
        }
    }
}

/// Reduce phase of `Job_i`: `TG_AlphaJoin` (Algorithm 2) — joins the left
/// and right equivalence classes of each key, materializing only
/// combinations accepted by at least one α-condition.
pub struct AlphaJoinReducer {
    conds: Arc<Vec<AlphaCond>>,
}

impl AlphaJoinReducer {
    /// Create from the shared α-condition list (empty = accept all).
    pub fn new(conds: Arc<Vec<AlphaCond>>) -> Self {
        AlphaJoinReducer { conds }
    }
}

impl ReduceTask for AlphaJoinReducer {
    fn reduce(&mut self, _key: &[u8], values: &[&[u8]], out: &mut ReduceOutput) {
        let mut left: Vec<AnnTg> = Vec::new();
        let mut right: Vec<AnnTg> = Vec::new();
        for v in values {
            let (side, rest) = match v.split_first() {
                Some(x) => x,
                None => continue,
            };
            let Some(ann) = AnnTg::decode(rest) else {
                continue;
            };
            if *side == Side::Left.byte() {
                left.push(ann);
            } else {
                right.push(ann);
            }
        }
        for l in &left {
            for r in &right {
                let joined = l.merge(r);
                if any_alpha_partial(&self.conds, &joined) {
                    out.write(&joined.encoded());
                }
            }
        }
    }
}

/// Configuration for the Agg-Join map phase.
#[derive(Clone, Default)]
pub struct AggJoinConfig {
    /// All Agg-Join specs evaluated in this cycle (parallel evaluation of
    /// independent aggregations, §4.1 / Fig. 6(b)).
    pub specs: Vec<AggJoinSpec>,
    /// Numeric values by raw term id.
    pub numeric: NumericSnapshot,
    /// If non-empty, inputs are raw subject triplegroups: each entry is a
    /// single-star filter (with optional value-filter transform) whose
    /// `spec.star` tags the produced annotated triplegroup. Several entries
    /// realize a *shared scan* across structurally different single-star
    /// patterns (§2.2) — one cycle aggregates them all.
    pub raw_filters: Vec<(StarSpec, Option<TgTransform>)>,
    /// Map-side hash aggregation (`multiAggMap`). Disabling it emits one
    /// record per assignment — the ablation knob for Algorithm 3.
    pub map_side_combine: bool,
}

/// Map phase of `Job_k` (Algorithm 3): per-mapper hash aggregation keyed by
/// `id#grp`, flushed in `cleanup`.
pub struct AggJoinMapper {
    config: Arc<AggJoinConfig>,
    multi_agg_map: FxHashMap<Vec<u8>, Vec<PartialAgg>>,
}

impl AggJoinMapper {
    /// Create from shared config.
    pub fn new(config: Arc<AggJoinConfig>) -> Self {
        AggJoinMapper {
            config,
            multi_agg_map: FxHashMap::default(),
        }
    }

    fn process(&mut self, ann: &AnnTg, out: &mut MapOutput) {
        // Borrow pieces separately so the closure can mutate the map while
        // reading the config.
        let specs = &self.config.specs;
        let numeric = &self.config.numeric;
        let combine = self.config.map_side_combine;
        let map = &mut self.multi_agg_map;
        for spec in specs {
            if !spec.alpha.satisfied_full(ann) {
                continue;
            }
            let nagg = spec.aggs.len();
            accumulate(ann, spec, numeric, &mut |key, idx, value| {
                let mut kb = Vec::with_capacity(12);
                write_varint(&mut kb, u64::from(spec.id));
                write_varint(&mut kb, key.len() as u64);
                for k in key {
                    write_varint(&mut kb, *k);
                }
                if combine {
                    let entry = map
                        .entry(kb)
                        .or_insert_with(|| vec![PartialAgg::default(); nagg]);
                    entry[idx].add(value);
                } else {
                    let mut single = vec![PartialAgg::default(); nagg];
                    single[idx].add(value);
                    let mut vb = Vec::new();
                    for p in &single {
                        p.encode(&mut vb);
                    }
                    out.emit(&kb, &vb);
                }
            });
        }
    }
}

impl MapTask for AggJoinMapper {
    fn map(&mut self, _src: InputSrc, record: &[u8], out: &mut MapOutput) {
        if self.config.raw_filters.is_empty() {
            let Some(ann) = AnnTg::decode(record) else {
                return;
            };
            self.process(&ann, out);
            return;
        }
        let Some(tg) = TripleGroup::decode(record) else {
            return;
        };
        let raw_filters = self.config.raw_filters.clone();
        for (filter, transform) in &raw_filters {
            let view = match transform {
                Some(t) => match t(tg.clone()) {
                    Some(v) => v,
                    None => continue,
                },
                None => tg.clone(),
            };
            if let Some(filtered) = opt_group_filter(&view, filter) {
                let ann = AnnTg::single(filter.star, filtered);
                self.process(&ann, out);
            }
        }
    }

    fn cleanup(&mut self, out: &mut MapOutput) {
        // Algorithm 3, Map.clean: emit the pre-aggregated entries.
        for (key, partials) in self.multi_agg_map.drain() {
            let mut vb = Vec::new();
            for p in &partials {
                p.encode(&mut vb);
            }
            out.emit(&key, &vb);
        }
    }
}

/// Reduce phase of `Job_k`: merges pre-aggregated triplegroups of each
/// `id#grp` key and emits one [`AggRec`] per group.
pub struct AggJoinReducer {
    config: Arc<AggJoinConfig>,
}

impl AggJoinReducer {
    /// Create from shared config (for spec/op lookup by id).
    pub fn new(config: Arc<AggJoinConfig>) -> Self {
        AggJoinReducer { config }
    }
}

impl ReduceTask for AggJoinReducer {
    fn reduce(&mut self, key: &[u8], values: &[&[u8]], out: &mut ReduceOutput) {
        let mut kb = key;
        let Some(id) = read_varint(&mut kb) else {
            return;
        };
        let Some(nk) = read_varint(&mut kb) else {
            return;
        };
        let mut group_key = Vec::with_capacity(nk as usize);
        for _ in 0..nk {
            match read_varint(&mut kb) {
                Some(k) => group_key.push(k),
                None => return,
            }
        }
        let Some(spec) = self.config.specs.iter().find(|s| u64::from(s.id) == id) else {
            return;
        };
        let mut merged = vec![PartialAgg::default(); spec.aggs.len()];
        for v in values {
            let mut vb = *v;
            for m in merged.iter_mut() {
                match PartialAgg::decode(&mut vb) {
                    Some(p) => m.merge(&p),
                    None => break,
                }
            }
        }
        let rec = AggRec {
            id: spec.id,
            key: group_key,
            values: merged
                .iter()
                .zip(spec.aggs.iter())
                .map(|(p, a)| p.finalize(a.op))
                .collect(),
        };
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        out.write(&buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AggOp, AggSpec, AlphaTerm, PropReq, VarRef};
    use rapida_mapred::{
        DatasetWriter, Engine, FnMapFactory, FnReduceFactory, JobBuilder, SimDfs,
    };

    const TY: u64 = 1;
    const PT18: u64 = 90;
    const PF: u64 = 2;
    const PR: u64 = 3;
    const PC: u64 = 4;

    fn tg_record(s: u64, pairs: &[(u64, u64)]) -> Vec<u8> {
        let mut buf = Vec::new();
        TripleGroup::new(s, pairs.to_vec()).encode(&mut buf);
        buf
    }

    /// End-to-end MR run of filter + α-join for an AQ1-like 2-star composite:
    /// products (ty PT18, optional pf) ⋈ offers (pr, pc).
    fn run_composite_join(dfs: &SimDfs) -> Vec<AnnTg> {
        // Products: 10 has pf, 11 lacks pf, 12 is wrong type.
        let mut w = DatasetWriter::new(64);
        w.push(&tg_record(10, &[(TY, PT18), (PF, 71)]));
        w.push(&tg_record(11, &[(TY, PT18)]));
        w.push(&tg_record(12, &[(TY, 91), (PF, 71)]));
        dfs.put("tg_products", w.finish());
        // Offers: o20 -> p10, o21 -> p11, o22 -> p12.
        let mut w = DatasetWriter::new(64);
        w.push(&tg_record(20, &[(PR, 10), (PC, 30)]));
        w.push(&tg_record(21, &[(PR, 11), (PC, 40)]));
        w.push(&tg_record(22, &[(PR, 12), (PC, 50)]));
        dfs.put("tg_offers", w.finish());

        let config = Arc::new(TgJoinMapConfig {
            raw_inputs: vec![0, 1],
            star_routes: vec![
                StarRoute {
                    spec: StarSpec {
                        star: 0,
                        primary: vec![PropReq::with_object(TY, PT18)],
                        secondary: vec![PropReq::any(PF)],
                    },
                    side: Side::Left,
                    key: JoinKey::Subject { star: 0 },
                    prefilter: None,
                },
                StarRoute {
                    spec: StarSpec {
                        star: 1,
                        primary: vec![PropReq::any(PR), PropReq::any(PC)],
                        secondary: vec![],
                    },
                    side: Side::Right,
                    key: JoinKey::ObjectOf { star: 1, prop: PR },
                    prefilter: None,
                },
            ],
            ann_routes: vec![],
        });
        let conds: Arc<Vec<AlphaCond>> = Arc::new(vec![]);
        let job = JobBuilder::new("mr1")
            .input("tg_products")
            .input("tg_offers")
            .mapper(Arc::new(FnMapFactory({
                let c = config.clone();
                move || TgJoinMapper::new(c.clone())
            })))
            .reducer(Arc::new(FnReduceFactory({
                let c = conds.clone();
                move || AlphaJoinReducer::new(c.clone())
            })))
            .output("joined")
            .num_reducers(2)
            .build();
        Engine::with_workers(dfs.clone(), 4).run_job(&job);
        dfs.get("joined")
            .unwrap()
            .iter_records()
            .map(|r| AnnTg::decode(r).unwrap())
            .collect()
    }

    #[test]
    fn composite_join_produces_valid_pairs() {
        let dfs = SimDfs::new();
        let mut joined = run_composite_join(&dfs);
        joined.sort_by_key(|a| a.star(1).map(|g| g.subject));
        // p12 is the wrong type — only offers 20 and 21 join.
        assert_eq!(joined.len(), 2);
        assert_eq!(joined[0].star(0).unwrap().subject, 10);
        assert!(joined[0].star(0).unwrap().has_prop(PF));
        assert_eq!(joined[1].star(0).unwrap().subject, 11);
        assert!(!joined[1].star(0).unwrap().has_prop(PF));
    }

    #[test]
    fn alpha_conditions_prune_at_join_time() {
        // Same data, but α requires pf present — p11's combination dies.
        let dfs = SimDfs::new();
        let mut w = DatasetWriter::new(64);
        w.push(&tg_record(10, &[(TY, PT18), (PF, 71)]));
        w.push(&tg_record(11, &[(TY, PT18)]));
        dfs.put("tg_products", w.finish());
        let mut w = DatasetWriter::new(64);
        w.push(&tg_record(20, &[(PR, 10), (PC, 30)]));
        w.push(&tg_record(21, &[(PR, 11), (PC, 40)]));
        dfs.put("tg_offers", w.finish());

        let config = Arc::new(TgJoinMapConfig {
            raw_inputs: vec![0, 1],
            star_routes: vec![
                StarRoute {
                    spec: StarSpec {
                        star: 0,
                        primary: vec![PropReq::with_object(TY, PT18)],
                        secondary: vec![PropReq::any(PF)],
                    },
                    side: Side::Left,
                    key: JoinKey::Subject { star: 0 },
                    prefilter: None,
                },
                StarRoute {
                    spec: StarSpec {
                        star: 1,
                        primary: vec![PropReq::any(PR), PropReq::any(PC)],
                        secondary: vec![],
                    },
                    side: Side::Right,
                    key: JoinKey::ObjectOf { star: 1, prop: PR },
                    prefilter: None,
                },
            ],
            ann_routes: vec![],
        });
        let conds = Arc::new(vec![AlphaCond {
            terms: vec![AlphaTerm {
                star: 0,
                prop: PF,
                required: true,
            }],
        }]);
        let job = JobBuilder::new("mr1")
            .input("tg_products")
            .input("tg_offers")
            .mapper(Arc::new(FnMapFactory({
                let c = config.clone();
                move || TgJoinMapper::new(c.clone())
            })))
            .reducer(Arc::new(FnReduceFactory({
                let c = conds.clone();
                move || AlphaJoinReducer::new(c.clone())
            })))
            .output("joined")
            .build();
        Engine::with_workers(dfs.clone(), 4).run_job(&job);
        let joined: Vec<AnnTg> = dfs
            .get("joined")
            .unwrap()
            .iter_records()
            .map(|r| AnnTg::decode(r).unwrap())
            .collect();
        assert_eq!(joined.len(), 1);
        assert_eq!(joined[0].star(0).unwrap().subject, 10);
    }

    /// MR Agg-Join over the joined composite: SUM(price) per feature in
    /// parallel with COUNT(price) over ALL.
    #[test]
    fn agg_join_mr_parallel_specs() {
        let dfs = SimDfs::new();
        let joined = run_composite_join(&dfs);
        assert_eq!(joined.len(), 2);

        let mut numeric = vec![None; 100];
        numeric[30] = Some(30.0);
        numeric[40] = Some(40.0);
        let config = Arc::new(AggJoinConfig {
            specs: vec![
                AggJoinSpec {
                    id: 0,
                    slots: vec![
                        VarRef::ObjectOf { star: 0, prop: PF },
                        VarRef::ObjectOf { star: 1, prop: PC },
                    ],
                    group_slots: vec![0],
                    aggs: vec![AggSpec {
                        op: AggOp::Sum,
                        arg: Some(1),
                    }],
                    alpha: AlphaCond {
                        terms: vec![AlphaTerm {
                            star: 0,
                            prop: PF,
                            required: true,
                        }],
                    },
                },
                AggJoinSpec {
                    id: 1,
                    slots: vec![VarRef::ObjectOf { star: 1, prop: PC }],
                    group_slots: vec![],
                    aggs: vec![AggSpec {
                        op: AggOp::Count,
                        arg: Some(0),
                    }],
                    alpha: AlphaCond::default(),
                },
            ],
            numeric: Arc::new(numeric),
            raw_filters: vec![],
            map_side_combine: true,
        });
        let job = JobBuilder::new("agj")
            .input("joined")
            .mapper(Arc::new(FnMapFactory({
                let c = config.clone();
                move || AggJoinMapper::new(c.clone())
            })))
            .reducer(Arc::new(FnReduceFactory({
                let c = config.clone();
                move || AggJoinReducer::new(c.clone())
            })))
            .output("aggs")
            .build();
        Engine::with_workers(dfs.clone(), 4).run_job(&job);
        let mut recs: Vec<AggRec> = dfs
            .get("aggs")
            .unwrap()
            .iter_records()
            .map(|r| AggRec::decode(r).unwrap())
            .collect();
        recs.sort_by_key(|r| (r.id, r.key.clone()));
        assert_eq!(recs.len(), 2);
        // Spec 0: feature 71 -> sum 30 (only p10 has pf).
        assert_eq!(recs[0].id, 0);
        assert_eq!(recs[0].key, vec![71]);
        assert_eq!(recs[0].values, vec![Some(30.0)]);
        // Spec 1: ALL -> count 2.
        assert_eq!(recs[1].id, 1);
        assert!(recs[1].key.is_empty());
        assert_eq!(recs[1].values, vec![Some(2.0)]);
    }

    /// The map-side combine ablation: results identical, shuffle smaller.
    #[test]
    fn map_side_combine_shrinks_shuffle() {
        let dfs = SimDfs::new();
        // Many triplegroups, one group key -> heavy combining opportunity.
        let mut w = DatasetWriter::new(128);
        for i in 0..200 {
            w.push(&tg_record(i, &[(PC, 30)]));
        }
        dfs.put("tgs", w.finish());
        let mut numeric = vec![None; 100];
        numeric[30] = Some(30.0);
        let numeric = Arc::new(numeric);

        let mk_config = |combine: bool| {
            Arc::new(AggJoinConfig {
                specs: vec![AggJoinSpec {
                    id: 0,
                    slots: vec![VarRef::ObjectOf { star: 0, prop: PC }],
                    group_slots: vec![],
                    aggs: vec![AggSpec {
                        op: AggOp::Sum,
                        arg: Some(0),
                    }],
                    alpha: AlphaCond::default(),
                }],
                numeric: numeric.clone(),
                raw_filters: vec![(
                    StarSpec {
                        star: 0,
                        primary: vec![PropReq::any(PC)],
                        secondary: vec![],
                    },
                    None,
                )],
                map_side_combine: combine,
            })
        };
        let run = |combine: bool, out: &str| {
            let config = mk_config(combine);
            let job = JobBuilder::new("agj")
                .input("tgs")
                .mapper(Arc::new(FnMapFactory({
                    let c = config.clone();
                    move || AggJoinMapper::new(c.clone())
                })))
                .reducer(Arc::new(FnReduceFactory({
                    let c = config.clone();
                    move || AggJoinReducer::new(c.clone())
                })))
                .output(out)
                .build();
            Engine::with_workers(dfs.clone(), 4).run_job(&job)
        };
        let with = run(true, "out_with");
        let without = run(false, "out_without");
        let recs = |name: &str| -> Vec<AggRec> {
            dfs.get(name)
                .unwrap()
                .iter_records()
                .map(|r| AggRec::decode(r).unwrap())
                .collect()
        };
        assert_eq!(recs("out_with"), recs("out_without"));
        assert_eq!(recs("out_with")[0].values, vec![Some(6000.0)]);
        assert!(
            with.shuffle_records < without.shuffle_records,
            "hash aggregation must shrink the shuffle ({} vs {})",
            with.shuffle_records,
            without.shuffle_records
        );
    }
}
