//! Physical MR operators: the map/reduce function pairs of §4.2
//! (Algorithms 1–3), implemented against the `rapida-mapred` task traits.
//!
//! * [`TgJoinMapper`] + [`AlphaJoinReducer`] — `TG_OptGrpFilter` pipelined
//!   into the map phase of `TG_AlphaJoin` (Algorithm 2, and `Job_i` of
//!   Algorithm 1).
//! * [`AggJoinMapper`] + [`AggJoinReducer`] — `TG_AgJ` with map-side hash
//!   aggregation (`multiAggMap`, Algorithm 3; `Job_k` of Algorithm 1).

use crate::hashagg::AggTable;
use crate::ops::{accumulate, accumulate_view, opt_group_filter, opt_group_filter_into, AccumScratch};
use crate::spec::{
    any_alpha_partial, any_alpha_partial_merged, AggJoinSpec, AlphaCond, JoinKey,
    NumericSnapshot, PartialAgg, StarSpec,
};
use crate::triplegroup::{AnnTg, AnnTgRef, TgRef, TripleGroup};
use rapida_mapred::codec::{read_varint, write_f64, write_varint};
use rapida_mapred::{InputSrc, MapOutput, MapTask, ReduceOutput, ReduceTask};
use rapida_rdf::FxHashMap;
use std::sync::Arc;

/// Join side tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Left equivalence class.
    Left,
    /// Right equivalence class.
    Right,
}

impl Side {
    fn byte(self) -> u8 {
        match self {
            Side::Left => 0,
            Side::Right => 1,
        }
    }
}

/// A route from a star-pattern spec to a join side: every raw triplegroup
/// passing the spec's optional group filter is emitted on `side` keyed by
/// `key`. Multiple routes over the same scan realize NTGA's shared
/// execution of star patterns.
#[derive(Clone)]
pub struct StarRoute {
    /// The composite star spec (`TG_OptGrpFilter` parameters).
    pub spec: StarSpec,
    /// Which side of the join this star feeds.
    pub side: Side,
    /// The join key extractor.
    pub key: JoinKey,
    /// Optional per-star value-filter transform applied before the group
    /// filter (FILTER pushdown; may differ between stars).
    pub prefilter: Option<TgTransform>,
}

/// A route for intermediate annotated-triplegroup inputs (later join cycles
/// of 3+-star patterns), selected by job input index.
#[derive(Debug, Clone)]
pub struct AnnRoute {
    /// Job input (dataset) index this route applies to.
    pub input: usize,
    /// Join side.
    pub side: Side,
    /// Join key extractor.
    pub key: JoinKey,
}

/// A raw-triplegroup transform applied before star filtering: value-level
/// FILTER pushdown drops triples whose objects fail a predicate (returning
/// `None` drops the whole group). Built by the planner with dictionary
/// snapshots baked in.
pub type TgTransform = Arc<dyn Fn(TripleGroup) -> Option<TripleGroup> + Send + Sync>;

/// Configuration for [`TgJoinMapper`].
#[derive(Clone, Default)]
pub struct TgJoinMapConfig {
    /// Dataset indexes holding raw subject triplegroups; all
    /// [`Self::star_routes`] are applied to each of their records (shared
    /// scan).
    pub raw_inputs: Vec<usize>,
    /// Star routes for raw inputs.
    pub star_routes: Vec<StarRoute>,
    /// Routes for annotated intermediate inputs.
    pub ann_routes: Vec<AnnRoute>,
    /// Run the pre-view owned-decode path (`TripleGroup::decode` + fresh
    /// `Vec` per emit). Kept in-tree as the benchmark baseline and as a
    /// byte-identity oracle for the view path.
    pub legacy_owned: bool,
}

/// Map phase of `Job_i`: `TG_OptGrpFilter` + tagging for `TG_AlphaJoin`.
///
/// The default path parses records as [`TgRef`]/[`AnnTgRef`] views and
/// encodes each emit directly into two per-task scratch buffers (cleared,
/// never reallocated). The `legacy_owned` config flag selects the original
/// owned-decode implementation.
pub struct TgJoinMapper {
    config: Arc<TgJoinMapConfig>,
    key_buf: Vec<u8>,
    val_buf: Vec<u8>,
}

impl TgJoinMapper {
    /// Create from shared config.
    pub fn new(config: Arc<TgJoinMapConfig>) -> Self {
        TgJoinMapper {
            config,
            key_buf: Vec::new(),
            val_buf: Vec::new(),
        }
    }

    /// The pre-view implementation, verbatim: owned decode per record,
    /// fresh key/value `Vec`s per emit.
    fn map_legacy(&mut self, src: InputSrc, record: &[u8], out: &mut MapOutput) {
        if self.config.raw_inputs.contains(&src.dataset) {
            let Some(tg) = TripleGroup::decode(record) else {
                out.skip_corrupt();
                return;
            };
            for route in &self.config.star_routes {
                let view = match &route.prefilter {
                    Some(f) => match f(tg.clone()) {
                        Some(v) => v,
                        None => continue,
                    },
                    None => tg.clone(),
                };
                if let Some(filtered) = opt_group_filter(&view, &route.spec) {
                    let ann = AnnTg::single(route.spec.star, filtered);
                    for k in route.key.extract(&ann) {
                        emit_tagged(out, k, route.side, &ann);
                    }
                }
            }
        } else {
            let Some(ann) = AnnTg::decode(record) else {
                out.skip_corrupt();
                return;
            };
            for route in &self.config.ann_routes {
                if route.input == src.dataset {
                    for k in route.key.extract(&ann) {
                        emit_tagged(out, k, route.side, &ann);
                    }
                }
            }
        }
    }
}

fn emit_tagged(out: &mut MapOutput, key_val: u64, side: Side, tg: &AnnTg) {
    let mut key = Vec::with_capacity(10);
    write_varint(&mut key, key_val);
    let mut val = Vec::new();
    val.push(side.byte());
    tg.encode(&mut val);
    out.emit(&key, &val);
}

impl MapTask for TgJoinMapper {
    fn map(&mut self, src: InputSrc, record: &[u8], out: &mut MapOutput) {
        if self.config.legacy_owned {
            self.map_legacy(src, record, out);
            return;
        }
        let TgJoinMapper {
            config,
            key_buf,
            val_buf,
        } = self;
        if config.raw_inputs.contains(&src.dataset) {
            let Some(tg) = TgRef::parse_framed(record) else {
                out.skip_corrupt();
                return;
            };
            // Prefilter transforms need an owned group; decode lazily, once,
            // only when some route actually has one.
            let mut owned: Option<TripleGroup> = None;
            for route in &config.star_routes {
                // Value layout (identical to the owned path): side byte +
                // AnnTg::single(star, filtered) = 1, star, tg.
                val_buf.clear();
                val_buf.push(route.side.byte());
                write_varint(val_buf, 1);
                write_varint(val_buf, u64::from(route.spec.star));
                let tg_start = val_buf.len();
                match &route.prefilter {
                    Some(f) => {
                        let base = owned.get_or_insert_with(|| tg.to_owned());
                        let Some(v) = f(base.clone()) else { continue };
                        let Some(filtered) = opt_group_filter(&v, &route.spec) else {
                            continue;
                        };
                        filtered.encode(val_buf);
                        // Key off the filtered group just encoded in place.
                        let Some(ftg) = TgRef::parse_framed(&val_buf[tg_start..]) else {
                            continue;
                        };
                        match route.key {
                            JoinKey::Subject { star } if star == route.spec.star => {
                                key_buf.clear();
                                write_varint(key_buf, ftg.subject());
                                out.emit(key_buf, val_buf);
                            }
                            JoinKey::ObjectOf { star, prop } if star == route.spec.star => {
                                for o in ftg.objects_of(prop) {
                                    key_buf.clear();
                                    write_varint(key_buf, o);
                                    out.emit(key_buf, val_buf);
                                }
                            }
                            // Key references a star this route doesn't
                            // produce: nothing to emit (extract() semantics).
                            _ => {}
                        }
                    }
                    None => {
                        if !opt_group_filter_into(&tg, &route.spec, val_buf) {
                            continue;
                        }
                        // Key straight off the source view: the filtered
                        // group's subject is `tg`'s, and its `prop` objects
                        // are exactly the kept `(prop, o)` pairs — no
                        // re-parse of the encoded bytes needed.
                        match route.key {
                            JoinKey::Subject { star } if star == route.spec.star => {
                                key_buf.clear();
                                write_varint(key_buf, tg.subject());
                                out.emit(key_buf, val_buf);
                            }
                            JoinKey::ObjectOf { star, prop } if star == route.spec.star => {
                                for (p, o) in tg.pairs() {
                                    if p == prop && route.spec.keeps(p, o) {
                                        key_buf.clear();
                                        write_varint(key_buf, o);
                                        out.emit(key_buf, val_buf);
                                    }
                                }
                            }
                            _ => {}
                        }
                    }
                }
            }
        } else {
            let Some(ann) = AnnTgRef::parse_framed(record) else {
                out.skip_corrupt();
                return;
            };
            for route in &config.ann_routes {
                if route.input != src.dataset {
                    continue;
                }
                val_buf.clear();
                val_buf.push(route.side.byte());
                ann.encode_into(val_buf);
                route.key.extract_ref(&ann, |k| {
                    key_buf.clear();
                    write_varint(key_buf, k);
                    out.emit(key_buf, val_buf);
                });
            }
        }
    }
}

/// Reduce phase of `Job_i`: `TG_AlphaJoin` (Algorithm 2) — joins the left
/// and right equivalence classes of each key, materializing only
/// combinations accepted by at least one α-condition.
///
/// The default path parses each value as an [`AnnTgRef`] view, evaluates
/// α over the *logical* merge, and writes accepted products by
/// interleaving raw component spans into one reused scratch buffer.
pub struct AlphaJoinReducer {
    conds: Arc<Vec<AlphaCond>>,
    legacy_owned: bool,
    out_buf: Vec<u8>,
    left_idx: Vec<u32>,
    right_idx: Vec<u32>,
}

impl AlphaJoinReducer {
    /// This reducer is *key-local* (see
    /// `rapida_mapred::ReduceTaskFactory::key_local`): each key group's join
    /// product depends only on that group's values — the index lists and
    /// emit buffer are per-call scratch, cleared on entry — and `cleanup`
    /// emits nothing. Factories may wrap it in `rapida_mapred::KeyLocal` to
    /// let the engine shard its partitions across workers.
    pub const KEY_LOCAL: bool = true;

    /// Create from the shared α-condition list (empty = accept all).
    pub fn new(conds: Arc<Vec<AlphaCond>>) -> Self {
        AlphaJoinReducer {
            conds,
            legacy_owned: false,
            out_buf: Vec::new(),
            left_idx: Vec::new(),
            right_idx: Vec::new(),
        }
    }

    /// The pre-view owned-decode variant (benchmark baseline).
    pub fn legacy(conds: Arc<Vec<AlphaCond>>) -> Self {
        AlphaJoinReducer {
            conds,
            legacy_owned: true,
            out_buf: Vec::new(),
            left_idx: Vec::new(),
            right_idx: Vec::new(),
        }
    }

    fn reduce_legacy(&mut self, values: &[&[u8]], out: &mut ReduceOutput) {
        let mut left: Vec<AnnTg> = Vec::new();
        let mut right: Vec<AnnTg> = Vec::new();
        for v in values {
            let (side, rest) = match v.split_first() {
                Some(x) => x,
                None => continue,
            };
            let Some(ann) = AnnTg::decode(rest) else {
                out.skip_corrupt();
                continue;
            };
            if *side == Side::Left.byte() {
                left.push(ann);
            } else {
                right.push(ann);
            }
        }
        for l in &left {
            for r in &right {
                let joined = l.merge(r);
                if any_alpha_partial(&self.conds, &joined) {
                    out.write(&joined.encoded());
                }
            }
        }
    }
}

impl ReduceTask for AlphaJoinReducer {
    fn reduce(&mut self, _key: &[u8], values: &[&[u8]], out: &mut ReduceOutput) {
        if self.legacy_owned {
            self.reduce_legacy(values, out);
            return;
        }
        // Split by side byte first, deferring the (cheap, but non-free)
        // view parse until a key is known to have both sides: one-sided
        // keys — the common case under selective star filters — cost two
        // index pushes and nothing else. The index lists and emit buffer
        // are long-lived scratch; views borrow from `values` per pair.
        let AlphaJoinReducer {
            conds,
            out_buf,
            left_idx,
            right_idx,
            ..
        } = self;
        left_idx.clear();
        right_idx.clear();
        for (i, v) in values.iter().enumerate() {
            match v.first() {
                Some(side) if *side == Side::Left.byte() => left_idx.push(i as u32),
                Some(_) => right_idx.push(i as u32),
                None => {}
            }
        }
        if left_idx.is_empty() || right_idx.is_empty() {
            return;
        }
        for &li in left_idx.iter() {
            let Some(l) = AnnTgRef::parse_framed(&values[li as usize][1..]) else {
                out.skip_corrupt();
                continue;
            };
            for &ri in right_idx.iter() {
                let Some(r) = AnnTgRef::parse_framed(&values[ri as usize][1..]) else {
                    out.skip_corrupt();
                    continue;
                };
                if any_alpha_partial_merged(conds, &l, &r) {
                    out_buf.clear();
                    l.merge_into(&r, out_buf);
                    out.write(out_buf);
                }
            }
        }
    }
}

/// Configuration for the Agg-Join map phase.
#[derive(Clone, Default)]
pub struct AggJoinConfig {
    /// All Agg-Join specs evaluated in this cycle (parallel evaluation of
    /// independent aggregations, §4.1 / Fig. 6(b)).
    pub specs: Vec<AggJoinSpec>,
    /// Numeric values by raw term id.
    pub numeric: NumericSnapshot,
    /// If non-empty, inputs are raw subject triplegroups: each entry is a
    /// single-star filter (with optional value-filter transform) whose
    /// `spec.star` tags the produced annotated triplegroup. Several entries
    /// realize a *shared scan* across structurally different single-star
    /// patterns (§2.2) — one cycle aggregates them all.
    pub raw_filters: Vec<(StarSpec, Option<TgTransform>)>,
    /// Map-side hash aggregation (`multiAggMap`). Disabling it emits one
    /// record per assignment — the ablation knob for Algorithm 3.
    pub map_side_combine: bool,
    /// Run the pre-view owned-decode path (`AnnTg::decode` + boxed
    /// `FxHashMap<Vec<u8>, Vec<PartialAgg>>` combine state). Benchmark
    /// baseline and byte-identity oracle for the view path.
    pub legacy_owned: bool,
}

/// Map phase of `Job_k` (Algorithm 3): per-mapper hash aggregation keyed by
/// `id#grp`, flushed in `cleanup`.
///
/// The default path consumes [`AnnTgRef`] views and combines into the flat
/// open-addressing [`AggTable`] keyed by `(spec id, group key)` term ids —
/// no per-group key or state boxing. `cleanup` flushes in sorted key order,
/// which keeps map-output bytes (and therefore the whole downstream
/// byte-identity chain) independent of hash iteration order.
pub struct AggJoinMapper {
    config: Arc<AggJoinConfig>,
    multi_agg_map: FxHashMap<Vec<u8>, Vec<PartialAgg>>,
    table: AggTable,
    scratch: AccumScratch,
    key_buf: Vec<u8>,
    val_buf: Vec<u8>,
    ann_buf: Vec<u8>,
}

/// The view-path record processor, as a free function over the mapper's
/// destructured fields so the fold closure can mutate the table while the
/// spec list stays borrowed from the config.
#[allow(clippy::too_many_arguments)]
fn process_view(
    config: &AggJoinConfig,
    ann: &AnnTgRef<'_>,
    table: &mut AggTable,
    scratch: &mut AccumScratch,
    key_buf: &mut Vec<u8>,
    val_buf: &mut Vec<u8>,
    out: &mut MapOutput,
) {
    let combine = config.map_side_combine;
    for spec in &config.specs {
        if !spec.alpha.satisfied_full_ref(ann) {
            continue;
        }
        let nagg = spec.aggs.len();
        accumulate_view(ann, spec, &config.numeric, scratch, &mut |key, idx, value| {
            if combine {
                table.slots_mut(u64::from(spec.id), key, nagg)[idx].add(value);
            } else {
                key_buf.clear();
                write_varint(key_buf, u64::from(spec.id));
                write_varint(key_buf, key.len() as u64);
                for k in key {
                    write_varint(key_buf, *k);
                }
                val_buf.clear();
                let empty = PartialAgg::default();
                for i in 0..nagg {
                    if i == idx {
                        let mut p = PartialAgg::default();
                        p.add(value);
                        p.encode(val_buf);
                    } else {
                        empty.encode(val_buf);
                    }
                }
                out.emit(key_buf, val_buf);
            }
        });
    }
}

impl AggJoinMapper {
    /// Create from shared config.
    pub fn new(config: Arc<AggJoinConfig>) -> Self {
        AggJoinMapper {
            config,
            multi_agg_map: FxHashMap::default(),
            table: AggTable::default(),
            scratch: AccumScratch::default(),
            key_buf: Vec::new(),
            val_buf: Vec::new(),
            ann_buf: Vec::new(),
        }
    }

    fn process(&mut self, ann: &AnnTg, out: &mut MapOutput) {
        // Borrow pieces separately so the closure can mutate the map while
        // reading the config.
        let specs = &self.config.specs;
        let numeric = &self.config.numeric;
        let combine = self.config.map_side_combine;
        let map = &mut self.multi_agg_map;
        for spec in specs {
            if !spec.alpha.satisfied_full(ann) {
                continue;
            }
            let nagg = spec.aggs.len();
            accumulate(ann, spec, numeric, &mut |key, idx, value| {
                let mut kb = Vec::with_capacity(12);
                write_varint(&mut kb, u64::from(spec.id));
                write_varint(&mut kb, key.len() as u64);
                for k in key {
                    write_varint(&mut kb, *k);
                }
                if combine {
                    let entry = map
                        .entry(kb)
                        .or_insert_with(|| vec![PartialAgg::default(); nagg]);
                    entry[idx].add(value);
                } else {
                    let mut single = vec![PartialAgg::default(); nagg];
                    single[idx].add(value);
                    let mut vb = Vec::new();
                    for p in &single {
                        p.encode(&mut vb);
                    }
                    out.emit(&kb, &vb);
                }
            });
        }
    }

    /// The pre-view map implementation, verbatim (including its per-record
    /// `raw_filters` clone — part of the owned-path allocation profile the
    /// benchmark baselines).
    fn map_legacy(&mut self, record: &[u8], out: &mut MapOutput) {
        if self.config.raw_filters.is_empty() {
            let Some(ann) = AnnTg::decode(record) else {
                out.skip_corrupt();
                return;
            };
            self.process(&ann, out);
            return;
        }
        let Some(tg) = TripleGroup::decode(record) else {
            out.skip_corrupt();
            return;
        };
        let raw_filters = self.config.raw_filters.clone();
        for (filter, transform) in &raw_filters {
            let view = match transform {
                Some(t) => match t(tg.clone()) {
                    Some(v) => v,
                    None => continue,
                },
                None => tg.clone(),
            };
            if let Some(filtered) = opt_group_filter(&view, filter) {
                let ann = AnnTg::single(filter.star, filtered);
                self.process(&ann, out);
            }
        }
    }
}

impl MapTask for AggJoinMapper {
    fn map(&mut self, _src: InputSrc, record: &[u8], out: &mut MapOutput) {
        if self.config.legacy_owned {
            self.map_legacy(record, out);
            return;
        }
        let AggJoinMapper {
            config,
            table,
            scratch,
            key_buf,
            val_buf,
            ann_buf,
            multi_agg_map: _,
        } = self;
        if config.raw_filters.is_empty() {
            let Some(ann) = AnnTgRef::parse_framed(record) else {
                out.skip_corrupt();
                return;
            };
            process_view(config, &ann, table, scratch, key_buf, val_buf, out);
            return;
        }
        let Some(tg) = TgRef::parse_framed(record) else {
            out.skip_corrupt();
            return;
        };
        let mut owned: Option<TripleGroup> = None;
        for (filter, transform) in &config.raw_filters {
            // Single-star annotated layout: 1, star, filtered tg.
            ann_buf.clear();
            write_varint(ann_buf, 1);
            write_varint(ann_buf, u64::from(filter.star));
            match transform {
                Some(t) => {
                    let base = owned.get_or_insert_with(|| tg.to_owned());
                    let Some(v) = t(base.clone()) else { continue };
                    let Some(filtered) = opt_group_filter(&v, filter) else {
                        continue;
                    };
                    filtered.encode(ann_buf);
                }
                None => {
                    if !opt_group_filter_into(&tg, filter, ann_buf) {
                        continue;
                    }
                }
            }
            let Some(ann) = AnnTgRef::parse_framed(ann_buf) else {
                continue;
            };
            process_view(config, &ann, table, scratch, key_buf, val_buf, out);
        }
    }

    fn cleanup(&mut self, out: &mut MapOutput) {
        // Algorithm 3, Map.clean: emit the pre-aggregated entries.
        if self.config.legacy_owned {
            for (key, partials) in self.multi_agg_map.drain() {
                let mut vb = Vec::new();
                for p in &partials {
                    p.encode(&mut vb);
                }
                out.emit(&key, &vb);
            }
            return;
        }
        let AggJoinMapper {
            table,
            key_buf,
            val_buf,
            ..
        } = self;
        table.drain_sorted(|full_key, partials| {
            // full_key[0] is the table tag = the spec id; re-encode the
            // same `id, nk, keys…` shuffle key the owned path produced.
            let (tag, key) = full_key
                .split_first()
                .expect("AggTable keys always carry the tag");
            key_buf.clear();
            write_varint(key_buf, *tag);
            write_varint(key_buf, key.len() as u64);
            for k in key {
                write_varint(key_buf, *k);
            }
            val_buf.clear();
            for p in partials {
                p.encode(val_buf);
            }
            out.emit(key_buf, val_buf);
        });
    }
}

/// Reduce phase of `Job_k`: merges pre-aggregated triplegroups of each
/// `id#grp` key and emits one [`crate::spec::AggRec`] per group, encoded
/// directly into a reused scratch buffer.
pub struct AggJoinReducer {
    config: Arc<AggJoinConfig>,
    group_key: Vec<u64>,
    merged: Vec<PartialAgg>,
    buf: Vec<u8>,
}

impl AggJoinReducer {
    /// This reducer is *key-local* (see
    /// `rapida_mapred::ReduceTaskFactory::key_local`): the partial-aggregate
    /// merge and finalize for one `id#grp` key read nothing but that key
    /// group — `group_key` / `merged` / `buf` are per-call scratch — and
    /// `cleanup` emits nothing. Factories may wrap it in
    /// `rapida_mapred::KeyLocal` to let the engine shard its partitions.
    pub const KEY_LOCAL: bool = true;

    /// Create from shared config (for spec/op lookup by id).
    pub fn new(config: Arc<AggJoinConfig>) -> Self {
        AggJoinReducer {
            config,
            group_key: Vec::new(),
            merged: Vec::new(),
            buf: Vec::new(),
        }
    }
}

impl ReduceTask for AggJoinReducer {
    fn reduce(&mut self, key: &[u8], values: &[&[u8]], out: &mut ReduceOutput) {
        let AggJoinReducer {
            config,
            group_key,
            merged,
            buf,
        } = self;
        let mut kb = key;
        let Some(id) = read_varint(&mut kb) else {
            out.skip_corrupt();
            return;
        };
        let Some(nk) = read_varint(&mut kb) else {
            out.skip_corrupt();
            return;
        };
        group_key.clear();
        for _ in 0..nk {
            match read_varint(&mut kb) {
                Some(k) => group_key.push(k),
                None => {
                    out.skip_corrupt();
                    return;
                }
            }
        }
        let Some(spec) = config.specs.iter().find(|s| u64::from(s.id) == id) else {
            return;
        };
        merged.clear();
        merged.resize(spec.aggs.len(), PartialAgg::default());
        for v in values {
            let mut vb = *v;
            for m in merged.iter_mut() {
                match PartialAgg::decode(&mut vb) {
                    Some(p) => m.merge(&p),
                    None => {
                        out.skip_corrupt();
                        break;
                    }
                }
            }
        }
        // Direct `AggRec::encode` layout, without the owned intermediate.
        buf.clear();
        write_varint(buf, u64::from(spec.id));
        write_varint(buf, group_key.len() as u64);
        for k in group_key.iter() {
            write_varint(buf, *k);
        }
        write_varint(buf, spec.aggs.len() as u64);
        for (p, a) in merged.iter().zip(spec.aggs.iter()) {
            match p.finalize(a.op) {
                Some(x) => {
                    buf.push(1);
                    write_f64(buf, x);
                }
                None => buf.push(0),
            }
        }
        out.write(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AggOp, AggRec, AggSpec, AlphaTerm, PropReq, VarRef};
    use rapida_mapred::{
        DatasetWriter, Engine, FnMapFactory, FnReduceFactory, JobBuilder, KeyLocal, SimDfs,
    };

    const TY: u64 = 1;
    const PT18: u64 = 90;
    const PF: u64 = 2;
    const PR: u64 = 3;
    const PC: u64 = 4;

    fn tg_record(s: u64, pairs: &[(u64, u64)]) -> Vec<u8> {
        let mut buf = Vec::new();
        TripleGroup::new(s, pairs.to_vec()).encode(&mut buf);
        buf
    }

    /// End-to-end MR run of filter + α-join for an AQ1-like 2-star composite:
    /// products (ty PT18, optional pf) ⋈ offers (pr, pc).
    fn run_composite_join(dfs: &SimDfs) -> Vec<AnnTg> {
        run_composite_join_as(dfs, false, "joined")
    }

    fn run_composite_join_as(dfs: &SimDfs, legacy: bool, out_name: &str) -> Vec<AnnTg> {
        // Products: 10 has pf, 11 lacks pf, 12 is wrong type.
        let mut w = DatasetWriter::new(64);
        w.push(&tg_record(10, &[(TY, PT18), (PF, 71)]));
        w.push(&tg_record(11, &[(TY, PT18)]));
        w.push(&tg_record(12, &[(TY, 91), (PF, 71)]));
        dfs.put("tg_products", w.finish());
        // Offers: o20 -> p10, o21 -> p11, o22 -> p12.
        let mut w = DatasetWriter::new(64);
        w.push(&tg_record(20, &[(PR, 10), (PC, 30)]));
        w.push(&tg_record(21, &[(PR, 11), (PC, 40)]));
        w.push(&tg_record(22, &[(PR, 12), (PC, 50)]));
        dfs.put("tg_offers", w.finish());

        let config = Arc::new(TgJoinMapConfig {
            raw_inputs: vec![0, 1],
            star_routes: vec![
                StarRoute {
                    spec: StarSpec {
                        star: 0,
                        primary: vec![PropReq::with_object(TY, PT18)],
                        secondary: vec![PropReq::any(PF)],
                    },
                    side: Side::Left,
                    key: JoinKey::Subject { star: 0 },
                    prefilter: None,
                },
                StarRoute {
                    spec: StarSpec {
                        star: 1,
                        primary: vec![PropReq::any(PR), PropReq::any(PC)],
                        secondary: vec![],
                    },
                    side: Side::Right,
                    key: JoinKey::ObjectOf { star: 1, prop: PR },
                    prefilter: None,
                },
            ],
            ann_routes: vec![],
            legacy_owned: legacy,
        });
        let conds: Arc<Vec<AlphaCond>> = Arc::new(vec![]);
        let job = JobBuilder::new("mr1")
            .input("tg_products")
            .input("tg_offers")
            .mapper(Arc::new(FnMapFactory({
                let c = config.clone();
                move || TgJoinMapper::new(c.clone())
            })))
            .reducer(Arc::new(KeyLocal(FnReduceFactory({
                let c = conds.clone();
                move || {
                    if legacy {
                        AlphaJoinReducer::legacy(c.clone())
                    } else {
                        AlphaJoinReducer::new(c.clone())
                    }
                }
            }))))
            .output(out_name)
            .num_reducers(2)
            .build();
        Engine::pinned(dfs.clone()).run_job(&job);
        dfs.get(out_name)
            .unwrap()
            .iter_records()
            .map(|r| AnnTg::decode(r).unwrap())
            .collect()
    }

    #[test]
    fn composite_join_produces_valid_pairs() {
        let dfs = SimDfs::new();
        let mut joined = run_composite_join(&dfs);
        joined.sort_by_key(|a| a.star(1).map(|g| g.subject));
        // p12 is the wrong type — only offers 20 and 21 join.
        assert_eq!(joined.len(), 2);
        assert_eq!(joined[0].star(0).unwrap().subject, 10);
        assert!(joined[0].star(0).unwrap().has_prop(PF));
        assert_eq!(joined[1].star(0).unwrap().subject, 11);
        assert!(!joined[1].star(0).unwrap().has_prop(PF));
    }

    #[test]
    fn alpha_conditions_prune_at_join_time() {
        // Same data, but α requires pf present — p11's combination dies.
        let dfs = SimDfs::new();
        let mut w = DatasetWriter::new(64);
        w.push(&tg_record(10, &[(TY, PT18), (PF, 71)]));
        w.push(&tg_record(11, &[(TY, PT18)]));
        dfs.put("tg_products", w.finish());
        let mut w = DatasetWriter::new(64);
        w.push(&tg_record(20, &[(PR, 10), (PC, 30)]));
        w.push(&tg_record(21, &[(PR, 11), (PC, 40)]));
        dfs.put("tg_offers", w.finish());

        let config = Arc::new(TgJoinMapConfig {
            raw_inputs: vec![0, 1],
            star_routes: vec![
                StarRoute {
                    spec: StarSpec {
                        star: 0,
                        primary: vec![PropReq::with_object(TY, PT18)],
                        secondary: vec![PropReq::any(PF)],
                    },
                    side: Side::Left,
                    key: JoinKey::Subject { star: 0 },
                    prefilter: None,
                },
                StarRoute {
                    spec: StarSpec {
                        star: 1,
                        primary: vec![PropReq::any(PR), PropReq::any(PC)],
                        secondary: vec![],
                    },
                    side: Side::Right,
                    key: JoinKey::ObjectOf { star: 1, prop: PR },
                    prefilter: None,
                },
            ],
            ann_routes: vec![],
            legacy_owned: false,
        });
        let conds = Arc::new(vec![AlphaCond {
            terms: vec![AlphaTerm {
                star: 0,
                prop: PF,
                required: true,
            }],
        }]);
        let job = JobBuilder::new("mr1")
            .input("tg_products")
            .input("tg_offers")
            .mapper(Arc::new(FnMapFactory({
                let c = config.clone();
                move || TgJoinMapper::new(c.clone())
            })))
            .reducer(Arc::new(KeyLocal(FnReduceFactory({
                let c = conds.clone();
                move || AlphaJoinReducer::new(c.clone())
            }))))
            .output("joined")
            .build();
        Engine::pinned(dfs.clone()).run_job(&job);
        let joined: Vec<AnnTg> = dfs
            .get("joined")
            .unwrap()
            .iter_records()
            .map(|r| AnnTg::decode(r).unwrap())
            .collect();
        assert_eq!(joined.len(), 1);
        assert_eq!(joined[0].star(0).unwrap().subject, 10);
    }

    /// MR Agg-Join over the joined composite: SUM(price) per feature in
    /// parallel with COUNT(price) over ALL.
    #[test]
    fn agg_join_mr_parallel_specs() {
        let dfs = SimDfs::new();
        let joined = run_composite_join(&dfs);
        assert_eq!(joined.len(), 2);

        let mut numeric = vec![None; 100];
        numeric[30] = Some(30.0);
        numeric[40] = Some(40.0);
        let config = Arc::new(AggJoinConfig {
            specs: vec![
                AggJoinSpec {
                    id: 0,
                    slots: vec![
                        VarRef::ObjectOf { star: 0, prop: PF },
                        VarRef::ObjectOf { star: 1, prop: PC },
                    ],
                    group_slots: vec![0],
                    aggs: vec![AggSpec {
                        op: AggOp::Sum,
                        arg: Some(1),
                    }],
                    alpha: AlphaCond {
                        terms: vec![AlphaTerm {
                            star: 0,
                            prop: PF,
                            required: true,
                        }],
                    },
                },
                AggJoinSpec {
                    id: 1,
                    slots: vec![VarRef::ObjectOf { star: 1, prop: PC }],
                    group_slots: vec![],
                    aggs: vec![AggSpec {
                        op: AggOp::Count,
                        arg: Some(0),
                    }],
                    alpha: AlphaCond::default(),
                },
            ],
            numeric: Arc::new(numeric),
            raw_filters: vec![],
            map_side_combine: true,
            legacy_owned: false,
        });
        let job = JobBuilder::new("agj")
            .input("joined")
            .mapper(Arc::new(FnMapFactory({
                let c = config.clone();
                move || AggJoinMapper::new(c.clone())
            })))
            .reducer(Arc::new(KeyLocal(FnReduceFactory({
                let c = config.clone();
                move || AggJoinReducer::new(c.clone())
            }))))
            .output("aggs")
            .build();
        Engine::pinned(dfs.clone()).run_job(&job);
        let mut recs: Vec<AggRec> = dfs
            .get("aggs")
            .unwrap()
            .iter_records()
            .map(|r| AggRec::decode(r).unwrap())
            .collect();
        recs.sort_by_key(|r| (r.id, r.key.clone()));
        assert_eq!(recs.len(), 2);
        // Spec 0: feature 71 -> sum 30 (only p10 has pf).
        assert_eq!(recs[0].id, 0);
        assert_eq!(recs[0].key, vec![71]);
        assert_eq!(recs[0].values, vec![Some(30.0)]);
        // Spec 1: ALL -> count 2.
        assert_eq!(recs[1].id, 1);
        assert!(recs[1].key.is_empty());
        assert_eq!(recs[1].values, vec![Some(2.0)]);
    }

    /// The map-side combine ablation: results identical, shuffle smaller.
    #[test]
    fn map_side_combine_shrinks_shuffle() {
        let dfs = SimDfs::new();
        // Many triplegroups, one group key -> heavy combining opportunity.
        let mut w = DatasetWriter::new(128);
        for i in 0..200 {
            w.push(&tg_record(i, &[(PC, 30)]));
        }
        dfs.put("tgs", w.finish());
        let mut numeric = vec![None; 100];
        numeric[30] = Some(30.0);
        let numeric = Arc::new(numeric);

        let mk_config = |combine: bool| {
            Arc::new(AggJoinConfig {
                specs: vec![AggJoinSpec {
                    id: 0,
                    slots: vec![VarRef::ObjectOf { star: 0, prop: PC }],
                    group_slots: vec![],
                    aggs: vec![AggSpec {
                        op: AggOp::Sum,
                        arg: Some(0),
                    }],
                    alpha: AlphaCond::default(),
                }],
                numeric: numeric.clone(),
                raw_filters: vec![(
                    StarSpec {
                        star: 0,
                        primary: vec![PropReq::any(PC)],
                        secondary: vec![],
                    },
                    None,
                )],
                map_side_combine: combine,
                legacy_owned: false,
            })
        };
        let run = |combine: bool, out: &str| {
            let config = mk_config(combine);
            let job = JobBuilder::new("agj")
                .input("tgs")
                .mapper(Arc::new(FnMapFactory({
                    let c = config.clone();
                    move || AggJoinMapper::new(c.clone())
                })))
                .reducer(Arc::new(KeyLocal(FnReduceFactory({
                    let c = config.clone();
                    move || AggJoinReducer::new(c.clone())
                }))))
                .output(out)
                .build();
            Engine::pinned(dfs.clone()).run_job(&job)
        };
        let with = run(true, "out_with");
        let without = run(false, "out_without");
        let recs = |name: &str| -> Vec<AggRec> {
            dfs.get(name)
                .unwrap()
                .iter_records()
                .map(|r| AggRec::decode(r).unwrap())
                .collect()
        };
        assert_eq!(recs("out_with"), recs("out_without"));
        assert_eq!(recs("out_with")[0].values, vec![Some(6000.0)]);
        assert!(
            with.shuffle_records < without.shuffle_records,
            "hash aggregation must shrink the shuffle ({} vs {})",
            with.shuffle_records,
            without.shuffle_records
        );
    }

    fn raw_records(dfs: &SimDfs, name: &str) -> Vec<Vec<u8>> {
        dfs.get(name)
            .unwrap()
            .iter_records()
            .map(|r| r.to_vec())
            .collect()
    }

    /// The view pipeline must be byte-identical to the owned-decode path —
    /// same records, same bytes, same order — through filter + α-join.
    #[test]
    fn view_join_byte_identical_to_legacy() {
        let dfs = SimDfs::new();
        run_composite_join_as(&dfs, false, "joined_view");
        run_composite_join_as(&dfs, true, "joined_legacy");
        assert_eq!(
            raw_records(&dfs, "joined_view"),
            raw_records(&dfs, "joined_legacy")
        );
    }

    /// Same identity for the Agg-Join: the sorted-drain hash table and the
    /// legacy `FxHashMap` combine state must produce identical final bytes,
    /// with and without map-side combining, including the raw-filter
    /// (shared single-star scan) map path.
    #[test]
    fn view_agg_join_byte_identical_to_legacy() {
        let dfs = SimDfs::new();
        let mut w = DatasetWriter::new(128);
        for i in 0..50 {
            w.push(&tg_record(i, &[(PF, 60 + i % 3), (PC, 30 + (i % 2) * 10)]));
        }
        dfs.put("tgs", w.finish());
        let mut numeric = vec![None; 100];
        numeric[30] = Some(30.0);
        numeric[40] = Some(40.0);
        let numeric = Arc::new(numeric);

        let mk_config = |combine: bool, legacy: bool| {
            Arc::new(AggJoinConfig {
                specs: vec![AggJoinSpec {
                    id: 0,
                    slots: vec![
                        VarRef::ObjectOf { star: 0, prop: PF },
                        VarRef::ObjectOf { star: 0, prop: PC },
                    ],
                    group_slots: vec![0],
                    aggs: vec![
                        AggSpec {
                            op: AggOp::Avg,
                            arg: Some(1),
                        },
                        AggSpec {
                            op: AggOp::Count,
                            arg: None,
                        },
                    ],
                    alpha: AlphaCond::default(),
                }],
                numeric: numeric.clone(),
                raw_filters: vec![(
                    StarSpec {
                        star: 0,
                        primary: vec![PropReq::any(PF), PropReq::any(PC)],
                        secondary: vec![],
                    },
                    None,
                )],
                map_side_combine: combine,
                legacy_owned: legacy,
            })
        };
        let run = |combine: bool, legacy: bool, out: &str| {
            let config = mk_config(combine, legacy);
            let job = JobBuilder::new("agj")
                .input("tgs")
                .mapper(Arc::new(FnMapFactory({
                    let c = config.clone();
                    move || AggJoinMapper::new(c.clone())
                })))
                .reducer(Arc::new(KeyLocal(FnReduceFactory({
                    let c = config.clone();
                    move || AggJoinReducer::new(c.clone())
                }))))
                .output(out)
                .num_reducers(2)
                .build();
            Engine::pinned(dfs.clone()).run_job(&job);
        };
        for combine in [true, false] {
            let (a, b) = if combine {
                ("agg_view_c", "agg_legacy_c")
            } else {
                ("agg_view_n", "agg_legacy_n")
            };
            run(combine, false, a);
            run(combine, true, b);
            assert_eq!(
                raw_records(&dfs, a),
                raw_records(&dfs, b),
                "combine={combine}"
            );
            assert!(!raw_records(&dfs, a).is_empty());
        }
    }
}
