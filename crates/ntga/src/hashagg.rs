//! Open-addressing partial-aggregation table for map-side combining.
//!
//! Replaces the `FxHashMap<Vec<u8>, Vec<PartialAgg>>` combine state: group
//! keys live in one flat `u64` arena (the table tag — spec id or key width
//! — is stored as the first key element), partial states in one flat
//! [`PartialAgg`] arena, and the open-addressed index holds only entry
//! numbers. No per-group boxing, no per-record key allocation: probing a
//! present key touches the index and the key arena only.
//!
//! Draining is deterministic regardless of insertion order:
//! [`AggTable::drain_sorted`] visits entries in lexicographic key order.
//! (Strictly, any drain order would yield byte-identical *final* output —
//! the shuffle re-sorts combiner records by key bytes — but sorted flushes
//! also pin intermediate map-output bytes, which the chaos suite and
//! metrics signatures compare.)

use crate::spec::PartialAgg;
use rapida_rdf::fxhash::FxHasher;
use std::hash::Hasher;

/// One table entry: spans into the key and slot arenas.
#[derive(Debug, Clone, Copy)]
struct Entry {
    hash: u64,
    key_off: u32,
    key_len: u32,
    slot_off: u32,
    slot_len: u32,
}

/// The partial-aggregation hash table. Keys are `(tag, group key)` tuples
/// of `u64`s; values are flat runs of [`PartialAgg`] slots (one per
/// aggregate of the owning spec — specs may differ in arity within one
/// table).
#[derive(Debug, Default)]
pub struct AggTable {
    /// Flat key arena: each entry's key is `tag` followed by its group key.
    keys: Vec<u64>,
    /// Flat partial-state arena.
    slots: Vec<PartialAgg>,
    entries: Vec<Entry>,
    /// Open-addressed index of `entry index + 1` (0 = empty). Power-of-two
    /// sized; linear probing.
    index: Vec<u32>,
}

fn hash_key(tag: u64, key: &[u64]) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(tag);
    for &k in key {
        h.write_u64(k);
    }
    h.finish()
}

impl AggTable {
    /// Number of distinct groups in the table.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The partial-state slots for `(tag, key)`, inserting `nagg` default
    /// slots on first sight. `tag` disambiguates keys across specs sharing
    /// the table (and must determine `nagg`).
    pub fn slots_mut(&mut self, tag: u64, key: &[u64], nagg: usize) -> &mut [PartialAgg] {
        self.maybe_grow();
        let hash = hash_key(tag, key);
        let mask = self.index.len() - 1;
        let mut pos = (hash as usize) & mask;
        let entry_idx = loop {
            match self.index[pos] {
                0 => {
                    // Vacant: append a new entry.
                    let key_off = self.keys.len() as u32;
                    self.keys.push(tag);
                    self.keys.extend_from_slice(key);
                    let slot_off = self.slots.len() as u32;
                    self.slots
                        .extend(std::iter::repeat(PartialAgg::default()).take(nagg));
                    let idx = self.entries.len();
                    self.entries.push(Entry {
                        hash,
                        key_off,
                        key_len: (key.len() + 1) as u32,
                        slot_off,
                        slot_len: nagg as u32,
                    });
                    self.index[pos] = (idx + 1) as u32;
                    break idx;
                }
                slot => {
                    let idx = (slot - 1) as usize;
                    let e = self.entries[idx];
                    if e.hash == hash && self.entry_key(&e) == Some((tag, key)) {
                        break idx;
                    }
                    pos = (pos + 1) & mask;
                }
            }
        };
        let e = self.entries[entry_idx];
        &mut self.slots[e.slot_off as usize..(e.slot_off + e.slot_len) as usize]
    }

    fn entry_key(&self, e: &Entry) -> Option<(u64, &[u64])> {
        let span = &self.keys[e.key_off as usize..(e.key_off + e.key_len) as usize];
        span.split_first().map(|(&tag, key)| (tag, key))
    }

    /// Grow + rehash when the next insert could push load factor past 7/8.
    fn maybe_grow(&mut self) {
        if self.index.is_empty() {
            self.index = vec![0; 16];
            return;
        }
        if (self.entries.len() + 1) * 8 <= self.index.len() * 7 {
            return;
        }
        let new_cap = self.index.len() * 2;
        let mask = new_cap - 1;
        let mut index = vec![0u32; new_cap];
        for (i, e) in self.entries.iter().enumerate() {
            let mut pos = (e.hash as usize) & mask;
            while index[pos] != 0 {
                pos = (pos + 1) & mask;
            }
            index[pos] = (i + 1) as u32;
        }
        self.index = index;
    }

    /// Visit every `(full key, slots)` pair in lexicographic key order —
    /// `full key` includes the tag as element 0 — then clear the table,
    /// keeping its capacity for the next batch.
    pub fn drain_sorted(&mut self, mut f: impl FnMut(&[u64], &[PartialAgg])) {
        let mut order: Vec<u32> = (0..self.entries.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            let ea = self.entries[a as usize];
            let eb = self.entries[b as usize];
            let ka = &self.keys[ea.key_off as usize..(ea.key_off + ea.key_len) as usize];
            let kb = &self.keys[eb.key_off as usize..(eb.key_off + eb.key_len) as usize];
            ka.cmp(kb)
        });
        for i in order {
            let e = self.entries[i as usize];
            let key = &self.keys[e.key_off as usize..(e.key_off + e.key_len) as usize];
            let slots = &self.slots[e.slot_off as usize..(e.slot_off + e.slot_len) as usize];
            f(key, slots);
        }
        self.keys.clear();
        self.slots.clear();
        self.entries.clear();
        self.index.iter_mut().for_each(|s| *s = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_accumulate_and_drain_sorted() {
        let mut t = AggTable::default();
        t.slots_mut(1, &[30, 2], 1)[0].add(Some(5.0));
        t.slots_mut(1, &[10, 4], 2)[1].add(None);
        t.slots_mut(1, &[30, 2], 1)[0].add(Some(7.0));
        t.slots_mut(0, &[99], 1)[0].add(None);
        assert_eq!(t.len(), 3);

        let mut seen: Vec<(Vec<u64>, Vec<u64>)> = Vec::new();
        t.drain_sorted(|k, s| {
            seen.push((k.to_vec(), s.iter().map(|p| p.count).collect()));
        });
        assert_eq!(
            seen,
            vec![
                (vec![0, 99], vec![1]),
                (vec![1, 10, 4], vec![0, 1]),
                (vec![1, 30, 2], vec![2]),
            ]
        );
        let folded: f64 = {
            let mut t2 = AggTable::default();
            t2.slots_mut(1, &[30, 2], 1)[0].add(Some(5.0));
            t2.slots_mut(1, &[30, 2], 1)[0].add(Some(7.0));
            let mut sum = 0.0;
            t2.drain_sorted(|_, s| sum = s[0].sum);
            sum
        };
        assert_eq!(folded, 12.0);
        // Drained table is empty and reusable.
        assert!(t.is_empty());
        t.slots_mut(5, &[], 1)[0].add(None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn survives_growth_and_collisions() {
        let mut t = AggTable::default();
        for i in 0..1000u64 {
            t.slots_mut(0, &[i % 250, (i / 250) % 2], 1)[0].add(Some(1.0));
        }
        assert_eq!(t.len(), 500);
        let mut total = 0u64;
        let mut last: Option<Vec<u64>> = None;
        t.drain_sorted(|k, s| {
            assert_eq!(s[0].count, 2);
            if let Some(prev) = &last {
                assert!(prev.as_slice() < k, "drain must be key-sorted");
            }
            last = Some(k.to_vec());
            total += s[0].count;
        });
        assert_eq!(total, 1000);
    }

    #[test]
    fn empty_key_group_by_all() {
        let mut t = AggTable::default();
        t.slots_mut(3, &[], 2)[0].add(Some(1.0));
        t.slots_mut(3, &[], 2)[1].add(None);
        assert_eq!(t.len(), 1);
        t.drain_sorted(|k, s| {
            assert_eq!(k, &[3]);
            assert_eq!((s[0].count, s[1].count), (1, 1));
        });
    }
}
