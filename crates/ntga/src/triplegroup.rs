//! The triplegroup data model of the Nested TripleGroup Algebra (NTGA).
//!
//! A [`TripleGroup`] is a set of triples sharing a subject; an [`AnnTg`]
//! ("annotated triplegroup") is the join product of triplegroups matching
//! the star subpatterns of a (composite) graph pattern, each component
//! tagged with its star index.

use rapida_mapred::codec::{read_varint, write_varint};
use std::collections::BTreeSet;

/// A subject triplegroup: `subject` plus `(property, object)` id pairs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TripleGroup {
    /// Subject term id (raw).
    pub subject: u64,
    /// `(property, object)` pairs, in sorted order.
    pub triples: Vec<(u64, u64)>,
}

impl TripleGroup {
    /// Construct, normalizing pair order.
    pub fn new(subject: u64, mut triples: Vec<(u64, u64)>) -> Self {
        triples.sort_unstable();
        TripleGroup { subject, triples }
    }

    /// `props(tg)` — the distinct property set.
    pub fn props(&self) -> BTreeSet<u64> {
        self.triples.iter().map(|(p, _)| *p).collect()
    }

    /// Does the group contain any triple with property `p`?
    pub fn has_prop(&self, p: u64) -> bool {
        self.triples.iter().any(|(q, _)| *q == p)
    }

    /// Does the group contain the exact triple `(p, o)`?
    pub fn has_triple(&self, p: u64, o: u64) -> bool {
        self.triples.binary_search(&(p, o)).is_ok()
    }

    /// All objects of property `p` (multi-valued properties yield several).
    pub fn objects_of(&self, p: u64) -> impl Iterator<Item = u64> + '_ {
        self.triples
            .iter()
            .filter(move |(q, _)| *q == p)
            .map(|(_, o)| *o)
    }

    /// Encode as the canonical DFS record (see `rapida-storage`).
    pub fn encode(&self, out: &mut Vec<u8>) {
        rapida_storage::encode_tg(self.subject, &self.triples, out);
    }

    /// Decode from the canonical DFS record.
    pub fn decode(rec: &[u8]) -> Option<TripleGroup> {
        let (subject, triples) = rapida_storage::decode_tg(rec)?;
        Some(TripleGroup { subject, triples })
    }
}

/// An annotated (possibly joined) triplegroup: one component triplegroup per
/// matched star subpattern, tagged with the star index within the
/// (composite) graph pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnTg {
    /// `(star index, component)` pairs, sorted by star index.
    pub groups: Vec<(u8, TripleGroup)>,
}

impl AnnTg {
    /// A single-star annotated triplegroup.
    pub fn single(star: u8, tg: TripleGroup) -> Self {
        AnnTg {
            groups: vec![(star, tg)],
        }
    }

    /// The component for star `star`, if present.
    pub fn star(&self, star: u8) -> Option<&TripleGroup> {
        self.groups
            .iter()
            .find(|(s, _)| *s == star)
            .map(|(_, tg)| tg)
    }

    /// Star indexes present in this group.
    pub fn stars(&self) -> Vec<u8> {
        self.groups.iter().map(|(s, _)| *s).collect()
    }

    /// Merge two annotated triplegroups (join product). Star sets must be
    /// disjoint; result is sorted by star index.
    pub fn merge(&self, other: &AnnTg) -> AnnTg {
        let mut groups = self.groups.clone();
        groups.extend(other.groups.iter().cloned());
        // sort_unstable is safe on this join-product hot path: the star
        // sets are disjoint, so star indices are unique and stability
        // cannot affect the result.
        groups.sort_unstable_by_key(|(s, _)| *s);
        AnnTg { groups }
    }

    /// Encode: `n, (star, tg) * n`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        write_varint(out, self.groups.len() as u64);
        for (star, tg) in &self.groups {
            write_varint(out, u64::from(*star));
            tg.encode(out);
        }
    }

    /// Encoded byte size helper (allocates; use sparingly).
    pub fn encoded(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    /// Decode from [`AnnTg::encode`] output.
    pub fn decode(mut rec: &[u8]) -> Option<AnnTg> {
        let n = read_varint(&mut rec)? as usize;
        let mut groups = Vec::with_capacity(n.min(16));
        for _ in 0..n {
            let star = read_varint(&mut rec)? as u8;
            let subject = read_varint(&mut rec)?;
            let cnt = read_varint(&mut rec)? as usize;
            let mut triples = Vec::with_capacity(cnt.min(1 << 16));
            for _ in 0..cnt {
                let p = read_varint(&mut rec)?;
                let o = read_varint(&mut rec)?;
                triples.push((p, o));
            }
            groups.push((star, TripleGroup { subject, triples }));
        }
        Some(AnnTg { groups })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tg(s: u64, pairs: &[(u64, u64)]) -> TripleGroup {
        TripleGroup::new(s, pairs.to_vec())
    }

    #[test]
    fn props_and_lookup() {
        let g = tg(1, &[(10, 100), (11, 101), (10, 102)]);
        assert_eq!(g.props().len(), 2);
        assert!(g.has_prop(10));
        assert!(!g.has_prop(12));
        assert!(g.has_triple(10, 102));
        assert!(!g.has_triple(10, 103));
        let objs: Vec<u64> = g.objects_of(10).collect();
        assert_eq!(objs, vec![100, 102]);
    }

    #[test]
    fn tg_codec_roundtrip() {
        let g = tg(42, &[(1, 2), (3, 4)]);
        let mut buf = Vec::new();
        g.encode(&mut buf);
        assert_eq!(TripleGroup::decode(&buf), Some(g));
    }

    #[test]
    fn anntg_merge_sorts_by_star() {
        let a = AnnTg::single(2, tg(1, &[(5, 6)]));
        let b = AnnTg::single(0, tg(2, &[(7, 8)]));
        let m = a.merge(&b);
        assert_eq!(m.stars(), vec![0, 2]);
        assert_eq!(m.star(0).unwrap().subject, 2);
        assert_eq!(m.star(2).unwrap().subject, 1);
        assert!(m.star(1).is_none());
    }

    #[test]
    fn anntg_codec_roundtrip() {
        let m = AnnTg {
            groups: vec![
                (0, tg(1, &[(10, 100), (11, 110)])),
                (1, tg(2, &[(20, 200)])),
                (2, tg(3, &[])),
            ],
        };
        assert_eq!(AnnTg::decode(&m.encoded()), Some(m));
    }
}
