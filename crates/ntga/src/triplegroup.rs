//! The triplegroup data model of the Nested TripleGroup Algebra (NTGA).
//!
//! A [`TripleGroup`] is a set of triples sharing a subject; an [`AnnTg`]
//! ("annotated triplegroup") is the join product of triplegroups matching
//! the star subpatterns of a (composite) graph pattern, each component
//! tagged with its star index.
//!
//! [`TgRef`] and [`AnnTgRef`] are the borrowed counterparts: views over an
//! encoded record that parse the header eagerly (one validating scan, no
//! owned `Vec`) and iterate pairs/components lazily over the raw bytes.
//! Because the record codec is canonical (minimal-LEB128 varints, pairs
//! stored sorted), a view's raw byte span *is* its re-encoding — operators
//! can copy component spans instead of decode→encode round trips.

use rapida_mapred::codec::{read_varint, write_varint};
use std::collections::BTreeSet;

/// A subject triplegroup: `subject` plus `(property, object)` id pairs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TripleGroup {
    /// Subject term id (raw).
    pub subject: u64,
    /// `(property, object)` pairs, in sorted order.
    pub triples: Vec<(u64, u64)>,
}

impl TripleGroup {
    /// Construct, normalizing pair order.
    pub fn new(subject: u64, mut triples: Vec<(u64, u64)>) -> Self {
        triples.sort_unstable();
        TripleGroup { subject, triples }
    }

    /// `props(tg)` — the distinct property set.
    pub fn props(&self) -> BTreeSet<u64> {
        self.triples.iter().map(|(p, _)| *p).collect()
    }

    /// Does the group contain any triple with property `p`?
    pub fn has_prop(&self, p: u64) -> bool {
        self.triples.iter().any(|(q, _)| *q == p)
    }

    /// Does the group contain the exact triple `(p, o)`?
    pub fn has_triple(&self, p: u64, o: u64) -> bool {
        self.triples.binary_search(&(p, o)).is_ok()
    }

    /// All objects of property `p` (multi-valued properties yield several).
    pub fn objects_of(&self, p: u64) -> impl Iterator<Item = u64> + '_ {
        self.triples
            .iter()
            .filter(move |(q, _)| *q == p)
            .map(|(_, o)| *o)
    }

    /// Encode as the canonical DFS record (see `rapida-storage`).
    pub fn encode(&self, out: &mut Vec<u8>) {
        rapida_storage::encode_tg(self.subject, &self.triples, out);
    }

    /// Decode from the canonical DFS record.
    pub fn decode(rec: &[u8]) -> Option<TripleGroup> {
        let (subject, triples) = rapida_storage::decode_tg(rec)?;
        Some(TripleGroup { subject, triples })
    }
}

/// An annotated (possibly joined) triplegroup: one component triplegroup per
/// matched star subpattern, tagged with the star index within the
/// (composite) graph pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnTg {
    /// `(star index, component)` pairs, sorted by star index.
    pub groups: Vec<(u8, TripleGroup)>,
}

impl AnnTg {
    /// A single-star annotated triplegroup.
    pub fn single(star: u8, tg: TripleGroup) -> Self {
        AnnTg {
            groups: vec![(star, tg)],
        }
    }

    /// The component for star `star`, if present.
    pub fn star(&self, star: u8) -> Option<&TripleGroup> {
        self.groups
            .iter()
            .find(|(s, _)| *s == star)
            .map(|(_, tg)| tg)
    }

    /// Star indexes present in this group, in sorted order. Returned as an
    /// iterator — this sits on the join hot path, where an owned `Vec<u8>`
    /// per call was pure allocation tax.
    pub fn stars(&self) -> impl Iterator<Item = u8> + '_ {
        self.groups.iter().map(|(s, _)| *s)
    }

    /// Merge two annotated triplegroups (join product). Star sets must be
    /// disjoint; result is sorted by star index.
    pub fn merge(&self, other: &AnnTg) -> AnnTg {
        let mut groups = self.groups.clone();
        groups.extend(other.groups.iter().cloned());
        // sort_unstable is safe on this join-product hot path: the star
        // sets are disjoint, so star indices are unique and stability
        // cannot affect the result.
        groups.sort_unstable_by_key(|(s, _)| *s);
        AnnTg { groups }
    }

    /// Encode: `n, (star, tg) * n`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        write_varint(out, self.groups.len() as u64);
        for (star, tg) in &self.groups {
            write_varint(out, u64::from(*star));
            tg.encode(out);
        }
    }

    /// Encoded byte size helper (allocates; use sparingly).
    pub fn encoded(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    /// Decode from [`AnnTg::encode`] output.
    pub fn decode(mut rec: &[u8]) -> Option<AnnTg> {
        let n = read_varint(&mut rec)? as usize;
        let mut groups = Vec::with_capacity(n.min(16));
        for _ in 0..n {
            let star = read_varint(&mut rec)? as u8;
            let subject = read_varint(&mut rec)?;
            let cnt = read_varint(&mut rec)? as usize;
            let mut triples = Vec::with_capacity(cnt.min(1 << 16));
            for _ in 0..cnt {
                let p = read_varint(&mut rec)?;
                let o = read_varint(&mut rec)?;
                triples.push((p, o));
            }
            groups.push((star, TripleGroup { subject, triples }));
        }
        Some(AnnTg { groups })
    }
}

/// A borrowed triplegroup view over a canonical record
/// (`subject, n, (p, o) * n` varints). Parsing scans the pairs once to
/// validate and find the span; all accessors then iterate the raw bytes.
#[derive(Debug, Clone, Copy)]
pub struct TgRef<'a> {
    subject: u64,
    len: usize,
    /// The `(p, o)` varint region.
    pairs: &'a [u8],
    /// The full canonical encoding (header + pairs).
    raw: &'a [u8],
}

impl<'a> TgRef<'a> {
    /// Parse a view from the front of `rec`, advancing past the group.
    /// Used for nested parsing inside [`AnnTgRef`].
    pub fn parse_prefix(rec: &mut &'a [u8]) -> Option<TgRef<'a>> {
        let start = *rec;
        let subject = read_varint(rec)?;
        let len = read_varint(rec)? as usize;
        let body = *rec;
        for _ in 0..len {
            read_varint(rec)?;
            read_varint(rec)?;
        }
        let pairs_len = body.len() - rec.len();
        let raw_len = start.len() - rec.len();
        Some(TgRef {
            subject,
            len,
            pairs: &body[..pairs_len],
            raw: &start[..raw_len],
        })
    }

    /// Parse a whole record. Trailing bytes are ignored, matching
    /// [`TripleGroup::decode`].
    pub fn parse(mut rec: &'a [u8]) -> Option<TgRef<'a>> {
        Self::parse_prefix(&mut rec)
    }

    /// Parse a span known to frame exactly one canonical record (a
    /// `RecordIter` record, a shuffle value, a just-encoded buffer): reads
    /// the header and trusts the framing for the pair region instead of
    /// walking it — the hot-path constructor. On corrupt input the
    /// accessors yield whatever the bytes decode to (always bounded by the
    /// span) instead of failing the parse; use [`Self::parse`] when the
    /// span may carry trailing bytes or come from outside the engine.
    pub fn parse_framed(rec: &'a [u8]) -> Option<TgRef<'a>> {
        let mut cur = rec;
        let subject = read_varint(&mut cur)?;
        let len = read_varint(&mut cur)? as usize;
        Some(TgRef {
            subject,
            len,
            pairs: cur,
            raw: rec,
        })
    }

    /// Subject term id.
    pub fn subject(&self) -> u64 {
        self.subject
    }

    /// Number of `(property, object)` pairs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the group empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The full canonical encoding of this group (re-encoding = copying
    /// this span).
    pub fn raw_bytes(&self) -> &'a [u8] {
        self.raw
    }

    /// Iterate the `(property, object)` pairs in stored (sorted) order.
    pub fn pairs(&self) -> PairIter<'a> {
        PairIter { rest: self.pairs }
    }

    /// Does the group contain any triple with property `p`?
    pub fn has_prop(&self, p: u64) -> bool {
        self.pairs().any(|(q, _)| q == p)
    }

    /// Does the group contain the exact triple `(p, o)`?
    pub fn has_triple(&self, p: u64, o: u64) -> bool {
        self.pairs().any(|(q, v)| q == p && v == o)
    }

    /// All objects of property `p`, in stored order.
    pub fn objects_of(&self, p: u64) -> impl Iterator<Item = u64> + 'a {
        self.pairs().filter(move |(q, _)| *q == p).map(|(_, o)| o)
    }

    /// Append the canonical encoding to `out` (byte-identical to
    /// [`TripleGroup::encode`] of the decoded group).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.raw);
    }

    /// Materialize an owned [`TripleGroup`].
    pub fn to_owned(&self) -> TripleGroup {
        TripleGroup {
            subject: self.subject,
            triples: self.pairs().collect(),
        }
    }
}

/// Iterator over the raw pair bytes of a [`TgRef`].
#[derive(Debug, Clone, Copy)]
pub struct PairIter<'a> {
    rest: &'a [u8],
}

impl Iterator for PairIter<'_> {
    type Item = (u64, u64);

    fn next(&mut self) -> Option<(u64, u64)> {
        if self.rest.is_empty() {
            return None;
        }
        // The span was validated at parse time; a decode failure here can
        // only mean corruption, which ends the iteration.
        let p = read_varint(&mut self.rest)?;
        let o = read_varint(&mut self.rest)?;
        Some((p, o))
    }
}

/// A borrowed annotated-triplegroup view over a canonical record
/// (`n, (star, tg) * n`). Parsing validates the whole structure in one
/// scan; component groups are iterated lazily as [`TgRef`]s.
#[derive(Debug, Clone, Copy)]
pub struct AnnTgRef<'a> {
    len: usize,
    /// The `(star, tg)` region.
    body: &'a [u8],
    /// The full canonical encoding.
    raw: &'a [u8],
}

impl<'a> AnnTgRef<'a> {
    /// Parse a whole record. Trailing bytes are ignored, matching
    /// [`AnnTg::decode`].
    pub fn parse(rec: &'a [u8]) -> Option<AnnTgRef<'a>> {
        let mut cur = rec;
        let len = read_varint(&mut cur)? as usize;
        let body = cur;
        for _ in 0..len {
            read_varint(&mut cur)?;
            TgRef::parse_prefix(&mut cur)?;
        }
        let body_len = body.len() - cur.len();
        let raw_len = rec.len() - cur.len();
        Some(AnnTgRef {
            len,
            body: &body[..body_len],
            raw: &rec[..raw_len],
        })
    }

    /// Parse a span known to frame exactly one canonical annotated record
    /// (a `RecordIter` record or a shuffle value tail): reads the group
    /// count and trusts the framing for the component region instead of
    /// walking every component — the hot-path constructor. On corrupt
    /// input the group iterator stops early (reads stay bounded by the
    /// span) instead of failing the parse; use [`Self::parse`] when the
    /// span may carry trailing bytes or come from outside the engine.
    pub fn parse_framed(rec: &'a [u8]) -> Option<AnnTgRef<'a>> {
        let mut cur = rec;
        let len = read_varint(&mut cur)? as usize;
        Some(AnnTgRef {
            len,
            body: cur,
            raw: rec,
        })
    }

    /// Number of component groups.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the view empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The full canonical encoding (re-encoding = copying this span).
    pub fn raw_bytes(&self) -> &'a [u8] {
        self.raw
    }

    /// Iterate `(star, component view)` pairs in stored (star-sorted) order.
    pub fn groups(&self) -> AnnGroupIter<'a> {
        AnnGroupIter { rest: self.body }
    }

    /// The component view for star `star`, if present.
    pub fn star(&self, star: u8) -> Option<TgRef<'a>> {
        self.groups().find(|(s, _)| *s == star).map(|(_, g)| g)
    }

    /// Star indexes present, in sorted order.
    pub fn stars(&self) -> impl Iterator<Item = u8> + 'a {
        self.groups().map(|(s, _)| s)
    }

    /// Append the canonical encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.raw);
    }

    /// Encode the join product of two views directly into `out` without
    /// materializing either side: component spans are interleaved by star
    /// index. Star sets must be disjoint (the α-join contract). The result
    /// is byte-identical to `self.to_owned().merge(&other.to_owned())`
    /// re-encoded.
    pub fn merge_into(&self, other: &AnnTgRef<'_>, out: &mut Vec<u8>) {
        write_varint(out, (self.len + other.len) as u64);
        let mut l = self.groups();
        let mut r = other.groups();
        let (mut lc, mut rc) = (l.next(), r.next());
        loop {
            match (lc, rc) {
                (Some((ls, lg)), Some((rs, _))) if ls <= rs => {
                    write_varint(out, u64::from(ls));
                    out.extend_from_slice(lg.raw_bytes());
                    lc = l.next();
                }
                (_, Some((rs, rg))) => {
                    write_varint(out, u64::from(rs));
                    out.extend_from_slice(rg.raw_bytes());
                    rc = r.next();
                }
                (Some((ls, lg)), None) => {
                    write_varint(out, u64::from(ls));
                    out.extend_from_slice(lg.raw_bytes());
                    lc = l.next();
                }
                (None, None) => break,
            }
        }
    }

    /// Materialize an owned [`AnnTg`].
    pub fn to_owned(&self) -> AnnTg {
        AnnTg {
            groups: self.groups().map(|(s, g)| (s, g.to_owned())).collect(),
        }
    }
}

/// Iterator over the component groups of an [`AnnTgRef`].
#[derive(Debug, Clone, Copy)]
pub struct AnnGroupIter<'a> {
    rest: &'a [u8],
}

impl<'a> Iterator for AnnGroupIter<'a> {
    type Item = (u8, TgRef<'a>);

    fn next(&mut self) -> Option<(u8, TgRef<'a>)> {
        if self.rest.is_empty() {
            return None;
        }
        let star = read_varint(&mut self.rest)? as u8;
        let tg = TgRef::parse_prefix(&mut self.rest)?;
        Some((star, tg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tg(s: u64, pairs: &[(u64, u64)]) -> TripleGroup {
        TripleGroup::new(s, pairs.to_vec())
    }

    #[test]
    fn props_and_lookup() {
        let g = tg(1, &[(10, 100), (11, 101), (10, 102)]);
        assert_eq!(g.props().len(), 2);
        assert!(g.has_prop(10));
        assert!(!g.has_prop(12));
        assert!(g.has_triple(10, 102));
        assert!(!g.has_triple(10, 103));
        let objs: Vec<u64> = g.objects_of(10).collect();
        assert_eq!(objs, vec![100, 102]);
    }

    #[test]
    fn tg_codec_roundtrip() {
        let g = tg(42, &[(1, 2), (3, 4)]);
        let mut buf = Vec::new();
        g.encode(&mut buf);
        assert_eq!(TripleGroup::decode(&buf), Some(g));
    }

    #[test]
    fn anntg_merge_sorts_by_star() {
        let a = AnnTg::single(2, tg(1, &[(5, 6)]));
        let b = AnnTg::single(0, tg(2, &[(7, 8)]));
        let m = a.merge(&b);
        assert_eq!(m.stars().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(m.star(0).unwrap().subject, 2);
        assert_eq!(m.star(2).unwrap().subject, 1);
        assert!(m.star(1).is_none());
    }

    #[test]
    fn anntg_codec_roundtrip() {
        let m = AnnTg {
            groups: vec![
                (0, tg(1, &[(10, 100), (11, 110)])),
                (1, tg(2, &[(20, 200)])),
                (2, tg(3, &[])),
            ],
        };
        assert_eq!(AnnTg::decode(&m.encoded()), Some(m));
    }

    #[test]
    fn tgref_agrees_with_owned_decode() {
        let g = tg(300, &[(1, 2), (1, 9), (3, 4), (7, 0)]);
        let mut buf = Vec::new();
        g.encode(&mut buf);
        let v = TgRef::parse(&buf).unwrap();
        assert_eq!(v.subject(), g.subject);
        assert_eq!(v.len(), g.triples.len());
        assert_eq!(v.pairs().collect::<Vec<_>>(), g.triples);
        assert!(v.has_prop(3) && !v.has_prop(4));
        assert!(v.has_triple(1, 9) && !v.has_triple(1, 3));
        assert_eq!(v.objects_of(1).collect::<Vec<_>>(), vec![2, 9]);
        assert_eq!(v.to_owned(), g);
        // Raw span is the canonical re-encoding.
        let mut re = Vec::new();
        v.encode_into(&mut re);
        assert_eq!(re, buf);
    }

    #[test]
    fn tgref_ignores_trailing_bytes() {
        let g = tg(5, &[(6, 7)]);
        let mut buf = Vec::new();
        g.encode(&mut buf);
        let clean_len = buf.len();
        buf.extend_from_slice(&[0xFF, 0xFF]);
        let v = TgRef::parse(&buf).unwrap();
        assert_eq!(v.raw_bytes().len(), clean_len);
        assert_eq!(v.to_owned(), g);
        // Truncated records fail to parse.
        assert!(TgRef::parse(&buf[..clean_len - 1]).is_none());
    }

    #[test]
    fn anntgref_agrees_with_owned_decode() {
        let m = AnnTg {
            groups: vec![
                (0, tg(1, &[(10, 100), (11, 110)])),
                (1, tg(2, &[(20, 200)])),
                (2, tg(3, &[])),
            ],
        };
        let buf = m.encoded();
        let v = AnnTgRef::parse(&buf).unwrap();
        assert_eq!(v.len(), 3);
        assert_eq!(v.stars().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(v.star(1).unwrap().subject(), 2);
        assert!(v.star(3).is_none());
        assert_eq!(v.to_owned(), m);
        let mut re = Vec::new();
        v.encode_into(&mut re);
        assert_eq!(re, buf);
    }

    #[test]
    fn merge_into_matches_owned_merge() {
        let a = AnnTg {
            groups: vec![(0, tg(1, &[(5, 6)])), (3, tg(4, &[(9, 9)]))],
        };
        let b = AnnTg {
            groups: vec![(1, tg(2, &[(7, 8), (7, 9)])), (2, tg(3, &[]))],
        };
        let (ab, bb) = (a.encoded(), b.encoded());
        let (va, vb) = (AnnTgRef::parse(&ab).unwrap(), AnnTgRef::parse(&bb).unwrap());
        let mut out = Vec::new();
        va.merge_into(&vb, &mut out);
        assert_eq!(out, a.merge(&b).encoded());
        out.clear();
        vb.merge_into(&va, &mut out);
        assert_eq!(out, b.merge(&a).encoded());
    }
}
