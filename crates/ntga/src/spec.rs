//! Operator specifications: star-pattern requirements, α-conditions
//! (Table 2), variable references, aggregation specs and partial aggregates.
//!
//! Everything here is dictionary-id based (`u64`) so the specs can be shipped
//! into MR tasks without touching the dictionary; numeric literal values
//! arrive via a read-only snapshot.

use crate::triplegroup::{AnnTg, AnnTgRef, TgRef, TripleGroup};
use rapida_mapred::codec::{read_f64, read_varint, write_f64, write_varint};
use std::sync::Arc;

/// One property requirement of a star pattern. For the `ty PT18`
/// pseudo-property, `object` constrains the object value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PropReq {
    /// Property id.
    pub prop: u64,
    /// Required object id (type constraints); `None` accepts any object.
    pub object: Option<u64>,
}

impl PropReq {
    /// Requirement on a plain property.
    pub fn any(prop: u64) -> Self {
        PropReq { prop, object: None }
    }

    /// Requirement on a property with a fixed object (e.g. `rdf:type PT18`).
    pub fn with_object(prop: u64, object: u64) -> Self {
        PropReq {
            prop,
            object: Some(object),
        }
    }

    /// Does the triplegroup satisfy this requirement?
    pub fn matches(&self, tg: &TripleGroup) -> bool {
        match self.object {
            Some(o) => tg.has_triple(self.prop, o),
            None => tg.has_prop(self.prop),
        }
    }

    /// [`PropReq::matches`] over a borrowed view.
    pub fn matches_ref(&self, tg: &TgRef<'_>) -> bool {
        match self.object {
            Some(o) => tg.has_triple(self.prop, o),
            None => tg.has_prop(self.prop),
        }
    }
}

/// A composite star pattern spec: primary (required) and secondary
/// (optional) properties, as consumed by the optional group filter
/// (σ^γopt, Def 3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StarSpec {
    /// The star index within the (composite) graph pattern.
    pub star: u8,
    /// Primary properties (`P_prim`) — every one must match.
    pub primary: Vec<PropReq>,
    /// Secondary properties (`P_sec` / `P_opt`) — may match.
    pub secondary: Vec<PropReq>,
}

impl StarSpec {
    /// All property ids this spec projects (primary ∪ secondary).
    pub fn all_props(&self) -> Vec<u64> {
        self.primary
            .iter()
            .chain(self.secondary.iter())
            .map(|r| r.prop)
            .collect()
    }

    /// Primary property ids only (the equivalence-class cover used to select
    /// storage partitions).
    pub fn primary_props(&self) -> Vec<u64> {
        self.primary.iter().map(|r| r.prop).collect()
    }

    /// Does the σ^γopt projection keep pair `(p, o)`?
    pub fn keeps(&self, p: u64, o: u64) -> bool {
        self.primary
            .iter()
            .chain(self.secondary.iter())
            .any(|req| req.prop == p && req.object.is_none_or(|ro| ro == o))
    }
}

/// How an annotated triplegroup is keyed for a join (the map-phase tag of
/// `TG_AlphaJoin`, Algorithm 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKey {
    /// Key on the subject of star `star`.
    Subject {
        /// Star index.
        star: u8,
    },
    /// Key on the object(s) of `prop` in star `star` (multi-valued objects
    /// emit one copy per object).
    ObjectOf {
        /// Star index.
        star: u8,
        /// Property whose objects are the key.
        prop: u64,
    },
}

impl JoinKey {
    /// Extract key values from an annotated triplegroup.
    pub fn extract(&self, tg: &AnnTg) -> Vec<u64> {
        match self {
            JoinKey::Subject { star } => {
                tg.star(*star).map(|g| vec![g.subject]).unwrap_or_default()
            }
            JoinKey::ObjectOf { star, prop } => tg
                .star(*star)
                .map(|g| g.objects_of(*prop).collect())
                .unwrap_or_default(),
        }
    }

    /// [`JoinKey::extract`] over a borrowed view, streaming key values into
    /// `sink` instead of allocating a `Vec`.
    pub fn extract_ref(&self, tg: &AnnTgRef<'_>, mut sink: impl FnMut(u64)) {
        match self {
            JoinKey::Subject { star } => {
                if let Some(g) = tg.star(*star) {
                    sink(g.subject());
                }
            }
            JoinKey::ObjectOf { star, prop } => {
                if let Some(g) = tg.star(*star) {
                    for o in g.objects_of(*prop) {
                        sink(o);
                    }
                }
            }
        }
    }
}

/// One term of an α-condition: secondary property `prop` of star `star`
/// must (`required = true`) or must not (`required = false`) be present.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlphaTerm {
    /// Star index the property belongs to.
    pub star: u8,
    /// Secondary property id.
    pub prop: u64,
    /// Presence (`≠ ∅`) vs absence (`= ∅`).
    pub required: bool,
}

/// An α-condition: a conjunction of [`AlphaTerm`]s (one row of Table 2
/// corresponds to one original graph pattern).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AlphaCond {
    /// The conjunct terms.
    pub terms: Vec<AlphaTerm>,
}

impl AlphaCond {
    /// Evaluate against an annotated triplegroup. Terms whose star is not
    /// present in `tg` are vacuously true, which lets the same condition
    /// list validate partial joins mid-workflow.
    pub fn satisfied_partial(&self, tg: &AnnTg) -> bool {
        self.terms.iter().all(|t| match tg.star(t.star) {
            None => true,
            Some(g) => g.has_prop(t.prop) == t.required,
        })
    }

    /// Evaluate against a *complete* annotated triplegroup: every term's
    /// star must be present.
    pub fn satisfied_full(&self, tg: &AnnTg) -> bool {
        self.terms.iter().all(|t| match tg.star(t.star) {
            None => false,
            Some(g) => g.has_prop(t.prop) == t.required,
        })
    }

    /// [`AlphaCond::satisfied_full`] over a borrowed view.
    pub fn satisfied_full_ref(&self, tg: &AnnTgRef<'_>) -> bool {
        self.terms.iter().all(|t| match tg.star(t.star) {
            None => false,
            Some(g) => g.has_prop(t.prop) == t.required,
        })
    }

    /// [`AlphaCond::satisfied_partial`] over the *logical merge* of two
    /// views with disjoint star sets — evaluates the join product without
    /// materializing it.
    pub fn satisfied_partial_merged(&self, l: &AnnTgRef<'_>, r: &AnnTgRef<'_>) -> bool {
        self.terms
            .iter()
            .all(|t| match l.star(t.star).or_else(|| r.star(t.star)) {
                None => true,
                Some(g) => g.has_prop(t.prop) == t.required,
            })
    }
}

/// Does any condition in the list accept `tg` (partial semantics)?
pub fn any_alpha_partial(conds: &[AlphaCond], tg: &AnnTg) -> bool {
    conds.is_empty() || conds.iter().any(|c| c.satisfied_partial(tg))
}

/// [`any_alpha_partial`] over the logical merge of two views (disjoint star
/// sets) — the α-join validity check without materializing the product.
pub fn any_alpha_partial_merged(conds: &[AlphaCond], l: &AnnTgRef<'_>, r: &AnnTgRef<'_>) -> bool {
    conds.is_empty() || conds.iter().any(|c| c.satisfied_partial_merged(l, r))
}

/// A variable reference resolved against a (composite) star layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarRef {
    /// The subject of star `star`.
    Subject {
        /// Star index.
        star: u8,
    },
    /// The object(s) of `prop` in star `star`.
    ObjectOf {
        /// Star index.
        star: u8,
        /// Property id.
        prop: u64,
    },
}

impl VarRef {
    /// Values of this reference within an annotated triplegroup.
    pub fn values(&self, tg: &AnnTg) -> Vec<u64> {
        match self {
            VarRef::Subject { star } => {
                tg.star(*star).map(|g| vec![g.subject]).unwrap_or_default()
            }
            VarRef::ObjectOf { star, prop } => tg
                .star(*star)
                .map(|g| g.objects_of(*prop).collect())
                .unwrap_or_default(),
        }
    }

    /// [`VarRef::values`] over a borrowed view, streaming each value into
    /// `sink` instead of allocating a `Vec`.
    pub fn for_each_value_ref(&self, tg: &AnnTgRef<'_>, mut sink: impl FnMut(u64)) {
        match self {
            VarRef::Subject { star } => {
                if let Some(g) = tg.star(*star) {
                    sink(g.subject());
                }
            }
            VarRef::ObjectOf { star, prop } => {
                if let Some(g) = tg.star(*star) {
                    for o in g.objects_of(*prop) {
                        sink(o);
                    }
                }
            }
        }
    }
}

/// Aggregate functions supported by the Agg-Join operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggOp {
    /// Row/binding count.
    Count,
    /// Numeric sum.
    Sum,
    /// Numeric average.
    Avg,
    /// Numeric minimum.
    Min,
    /// Numeric maximum.
    Max,
}

impl AggOp {
    fn code(self) -> u64 {
        match self {
            AggOp::Count => 0,
            AggOp::Sum => 1,
            AggOp::Avg => 2,
            AggOp::Min => 3,
            AggOp::Max => 4,
        }
    }

    fn from_code(c: u64) -> Option<Self> {
        Some(match c {
            0 => AggOp::Count,
            1 => AggOp::Sum,
            2 => AggOp::Avg,
            3 => AggOp::Min,
            4 => AggOp::Max,
            _ => return None,
        })
    }
}

/// A partial (distributive/algebraic) aggregate state — mergeable across
/// mappers and reducers, finalizable into any [`AggOp`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartialAgg {
    /// Number of contributing bindings.
    pub count: u64,
    /// Number of *numeric* contributing bindings (AVG denominator).
    pub num_count: u64,
    /// Numeric sum.
    pub sum: f64,
    /// Numeric minimum.
    pub min: f64,
    /// Numeric maximum.
    pub max: f64,
}

impl Default for PartialAgg {
    fn default() -> Self {
        PartialAgg {
            count: 0,
            num_count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl PartialAgg {
    /// Fold one binding: every binding counts; numeric bindings contribute
    /// to sum/min/max.
    pub fn add(&mut self, numeric: Option<f64>) {
        self.count += 1;
        if let Some(v) = numeric {
            self.num_count += 1;
            self.sum += v;
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
    }

    /// Merge another partial state (associative + commutative).
    pub fn merge(&mut self, other: &PartialAgg) {
        self.count += other.count;
        self.num_count += other.num_count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Finalize for a given aggregate op. `None` for numeric ops with no
    /// numeric inputs (SPARQL: unbound).
    pub fn finalize(&self, op: AggOp) -> Option<f64> {
        match op {
            AggOp::Count => Some(self.count as f64),
            AggOp::Sum if self.num_count > 0 => Some(self.sum),
            AggOp::Avg if self.num_count > 0 => Some(self.sum / self.num_count as f64),
            AggOp::Min if self.num_count > 0 => Some(self.min),
            AggOp::Max if self.num_count > 0 => Some(self.max),
            _ => None,
        }
    }

    /// Encode into a shuffle value.
    pub fn encode(&self, out: &mut Vec<u8>) {
        write_varint(out, self.count);
        write_varint(out, self.num_count);
        write_f64(out, self.sum);
        write_f64(out, self.min);
        write_f64(out, self.max);
    }

    /// Decode, advancing the slice.
    pub fn decode(buf: &mut &[u8]) -> Option<PartialAgg> {
        Some(PartialAgg {
            count: read_varint(buf)?,
            num_count: read_varint(buf)?,
            sum: read_f64(buf)?,
            min: read_f64(buf)?,
            max: read_f64(buf)?,
        })
    }
}

/// One aggregation in an Agg-Join: `(func, arg)` over a grouping `theta`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// Aggregate function.
    pub op: AggOp,
    /// Index of the aggregated variable in [`AggJoinSpec::slots`];
    /// `None` = `COUNT(*)` (count assignments).
    pub arg: Option<usize>,
}

/// A full Agg-Join specification (one per original grouping block):
/// `γ^AgJ(TG_base, TG_detail, l, θ, α)` with θ the grouping-variable
/// references and α the validity condition.
///
/// `slots` lists **every distinct variable of the original block pattern**.
/// Aggregation enumerates the cartesian assignment space over all slots —
/// exactly the relational solution-row expansion — so multi-valued
/// properties duplicate contributions precisely as SPARQL semantics
/// require, even for variables no aggregate references.
#[derive(Debug, Clone, PartialEq)]
pub struct AggJoinSpec {
    /// Stable id (`agj.id` in Algorithm 3); also tags output records.
    pub id: u8,
    /// The enumeration domain: one reference per distinct pattern variable.
    pub slots: Vec<VarRef>,
    /// θ — indexes into `slots` forming the grouping key (empty = ALL).
    pub group_slots: Vec<usize>,
    /// l — the aggregation list.
    pub aggs: Vec<AggSpec>,
    /// α — validity terms for this original pattern.
    pub alpha: AlphaCond,
}

/// The numeric-value resolver shared by aggregation operators: index by raw
/// term id, `None` for non-numeric terms.
pub type NumericSnapshot = Arc<Vec<Option<f64>>>;

/// An aggregated output record: `(spec id, group key values, finalized
/// aggregate values)`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggRec {
    /// The Agg-Join spec id that produced this record.
    pub id: u8,
    /// Grouping key values (term ids), in spec order.
    pub key: Vec<u64>,
    /// Finalized aggregate values, in spec order (`None` = unbound).
    pub values: Vec<Option<f64>>,
}

impl AggRec {
    /// Encode as a DFS record.
    pub fn encode(&self, out: &mut Vec<u8>) {
        write_varint(out, u64::from(self.id));
        write_varint(out, self.key.len() as u64);
        for k in &self.key {
            write_varint(out, *k);
        }
        write_varint(out, self.values.len() as u64);
        for v in &self.values {
            match v {
                Some(x) => {
                    out.push(1);
                    write_f64(out, *x);
                }
                None => out.push(0),
            }
        }
    }

    /// Decode from [`AggRec::encode`] output.
    pub fn decode(mut rec: &[u8]) -> Option<AggRec> {
        let id = read_varint(&mut rec)? as u8;
        let nk = read_varint(&mut rec)? as usize;
        let mut key = Vec::with_capacity(nk.min(16));
        for _ in 0..nk {
            key.push(read_varint(&mut rec)?);
        }
        let nv = read_varint(&mut rec)? as usize;
        let mut values = Vec::with_capacity(nv.min(16));
        for _ in 0..nv {
            let (flag, rest) = rec.split_first()?;
            rec = rest;
            values.push(if *flag == 1 {
                Some(read_f64(&mut rec)?)
            } else {
                None
            });
        }
        Some(AggRec { id, key, values })
    }
}

/// Encode an [`AggOp`] list compactly (used by plan serialization tests).
pub fn encode_ops(ops: &[AggOp], out: &mut Vec<u8>) {
    write_varint(out, ops.len() as u64);
    for op in ops {
        write_varint(out, op.code());
    }
}

/// Decode an [`AggOp`] list.
pub fn decode_ops(buf: &mut &[u8]) -> Option<Vec<AggOp>> {
    let n = read_varint(buf)? as usize;
    let mut out = Vec::with_capacity(n.min(16));
    for _ in 0..n {
        out.push(AggOp::from_code(read_varint(buf)?)?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tg(s: u64, pairs: &[(u64, u64)]) -> TripleGroup {
        TripleGroup::new(s, pairs.to_vec())
    }

    #[test]
    fn prop_req_matching() {
        let g = tg(1, &[(10, 100), (11, 5)]);
        assert!(PropReq::any(10).matches(&g));
        assert!(PropReq::with_object(10, 100).matches(&g));
        assert!(!PropReq::with_object(10, 101).matches(&g));
        assert!(!PropReq::any(99).matches(&g));
    }

    #[test]
    fn join_key_extraction() {
        let a = AnnTg::single(0, tg(7, &[(10, 100), (10, 101)]));
        assert_eq!(JoinKey::Subject { star: 0 }.extract(&a), vec![7]);
        assert_eq!(
            JoinKey::ObjectOf { star: 0, prop: 10 }.extract(&a),
            vec![100, 101]
        );
        assert!(JoinKey::Subject { star: 1 }.extract(&a).is_empty());
    }

    #[test]
    fn alpha_partial_vs_full() {
        let cond = AlphaCond {
            terms: vec![
                AlphaTerm {
                    star: 0,
                    prop: 10,
                    required: true,
                },
                AlphaTerm {
                    star: 1,
                    prop: 20,
                    required: false,
                },
            ],
        };
        let only_star0 = AnnTg::single(0, tg(1, &[(10, 5)]));
        assert!(cond.satisfied_partial(&only_star0));
        assert!(!cond.satisfied_full(&only_star0));

        let full_good = only_star0.merge(&AnnTg::single(1, tg(2, &[(21, 9)])));
        assert!(cond.satisfied_full(&full_good));

        let full_bad = only_star0.merge(&AnnTg::single(1, tg(2, &[(20, 9)])));
        assert!(!cond.satisfied_partial(&full_bad));
    }

    #[test]
    fn empty_alpha_list_accepts_all() {
        let a = AnnTg::single(0, tg(1, &[]));
        assert!(any_alpha_partial(&[], &a));
    }

    #[test]
    fn partial_agg_merge_and_finalize() {
        let mut a = PartialAgg::default();
        a.add(Some(10.0));
        a.add(Some(30.0));
        let mut b = PartialAgg::default();
        b.add(Some(2.0));
        b.add(None); // non-numeric binding: counts, no sum
        a.merge(&b);
        assert_eq!(a.finalize(AggOp::Count), Some(4.0));
        assert_eq!(a.finalize(AggOp::Sum), Some(42.0));
        assert_eq!(a.finalize(AggOp::Avg), Some(14.0));
        assert_eq!(a.finalize(AggOp::Min), Some(2.0));
        assert_eq!(a.finalize(AggOp::Max), Some(30.0));
    }

    #[test]
    fn empty_partial_finalizes_to_none_for_numeric_ops() {
        let p = PartialAgg::default();
        assert_eq!(p.finalize(AggOp::Count), Some(0.0));
        assert_eq!(p.finalize(AggOp::Sum), None);
        assert_eq!(p.finalize(AggOp::Avg), None);
    }

    #[test]
    fn partial_agg_codec_roundtrip() {
        let mut p = PartialAgg::default();
        p.add(Some(3.5));
        p.add(Some(-1.0));
        let mut buf = Vec::new();
        p.encode(&mut buf);
        let mut s = buf.as_slice();
        assert_eq!(PartialAgg::decode(&mut s), Some(p));
    }

    #[test]
    fn aggrec_codec_roundtrip() {
        let r = AggRec {
            id: 3,
            key: vec![100, 200],
            values: vec![Some(1.5), None, Some(0.0)],
        };
        let mut buf = Vec::new();
        r.encode(&mut buf);
        assert_eq!(AggRec::decode(&buf), Some(r));
    }

    #[test]
    fn ops_codec_roundtrip() {
        let ops = vec![AggOp::Count, AggOp::Avg, AggOp::Max];
        let mut buf = Vec::new();
        encode_ops(&ops, &mut buf);
        let mut s = buf.as_slice();
        assert_eq!(decode_ops(&mut s), Some(ops));
    }
}
