//! # rapida-bench
//!
//! The experiment harness regenerating every table and figure of the paper's
//! evaluation section (§5): workload construction, engine execution, metric
//! collection, and paper-style table rendering. Criterion micro-benchmarks
//! under `benches/` reuse these helpers.

use rapida_core::engines::{HiveMqo, HiveNaive, RapidAnalytics, RapidPlus};
use rapida_core::{extract, DataCatalog, PlanError, QueryEngine};
use rapida_datagen::{
    generate_bsbm, generate_chem, generate_pubmed, query, BsbmConfig, CatalogQuery, ChemConfig,
    PubmedConfig,
};
use rapida_mapred::{ClusterModel, Engine, FaultPlan};
use rapida_sparql::parse_query;
use std::time::Instant;

/// The four engines in the paper's presentation order.
pub fn all_engines() -> Vec<Box<dyn QueryEngine>> {
    vec![
        Box::new(HiveNaive::default()),
        Box::new(HiveMqo::default()),
        Box::new(RapidPlus::default()),
        Box::new(RapidAnalytics::default()),
    ]
}

/// Hive vs RAPIDAnalytics only (Table 3's comparison).
pub fn table3_engines() -> Vec<Box<dyn QueryEngine>> {
    vec![
        Box::new(HiveNaive::default()),
        Box::new(RapidAnalytics::default()),
    ]
}

/// One measured engine run.
#[derive(Debug, Clone, Default)]
pub struct ExperimentResult {
    /// Query id.
    pub query: String,
    /// Engine name.
    pub engine: String,
    /// In-process wall milliseconds.
    pub wall_ms: f64,
    /// Simulated cluster seconds under the experiment's [`ClusterModel`].
    pub sim_seconds: f64,
    /// Total MR cycles.
    pub cycles: usize,
    /// Full (shuffling) cycles.
    pub full_cycles: usize,
    /// Map-only cycles.
    pub map_only_cycles: usize,
    /// Shuffled megabytes (measured).
    pub shuffle_mb: f64,
    /// Materialized (DFS-written) megabytes (measured).
    pub materialized_mb: f64,
    /// Result row count.
    pub rows: usize,
    /// Total task attempts (map + reduce, incl. retries and speculation).
    pub task_attempts: u64,
    /// Attempts killed by injected failures and retried.
    pub retried_attempts: u64,
    /// Speculative duplicate attempts launched for stragglers.
    pub speculative_attempts: u64,
    /// Straggling tasks observed.
    pub straggler_tasks: u64,
    /// Megabytes produced by attempts whose work was discarded.
    pub wasted_mb: f64,
    /// Simulated retry backoff, seconds.
    pub backoff_s: f64,
    /// Corrupt DFS block copies detected and quarantined on read.
    pub corrupt_blocks_detected: u64,
    /// Corrupt shuffle spill runs detected and quarantined at commit.
    pub corrupt_spills_detected: u64,
    /// Megabytes re-read from replicas after a checksum mismatch.
    pub integrity_reread_mb: f64,
    /// Malformed records skipped (and counted) by operator decode paths.
    pub corrupt_records_skipped: u64,
    /// Jobs replayed by workflow-level recovery.
    pub jobs_replayed: u64,
    /// Megabytes recomputed by replayed jobs.
    pub recomputed_mb: f64,
    /// Checkpoint megabytes verified + read instead of recomputed.
    pub checkpoint_mb: f64,
}

/// A prepared workload: catalog + cluster model calibrated to the paper's
/// dataset size.
pub struct Workbench {
    /// The loaded catalog.
    pub cat: DataCatalog,
    /// The MR engine bound to the catalog's DFS.
    pub mr: Engine,
    /// The cluster model (with `data_scale` mapping simulator bytes to the
    /// paper's dataset size).
    pub model: ClusterModel,
    /// Human-readable dataset label.
    pub label: &'static str,
}

impl Workbench {
    fn new(
        graph: rapida_rdf::Graph,
        mut model: ClusterModel,
        paper_bytes: f64,
        label: &'static str,
    ) -> Workbench {
        let cat = DataCatalog::load(&graph);
        // Calibrate: simulator bytes × data_scale ≈ the paper's on-disk size,
        // so simulated seconds land in a comparable regime.
        let stored = cat.dfs.stored_bytes().max(1) as f64;
        model.data_scale = paper_bytes / stored;
        let mr = Engine::new(cat.dfs.clone());
        Workbench {
            cat,
            mr,
            model,
            label,
        }
    }

    /// The BSBM-500K stand-in (43 GB in the paper, 10-node cluster).
    pub fn bsbm_500k() -> Workbench {
        Workbench::new(
            generate_bsbm(&BsbmConfig::small()),
            ClusterModel::nodes10(),
            43e9,
            "BSBM-500K",
        )
    }

    /// The BSBM-2M stand-in (172 GB, 50-node cluster).
    pub fn bsbm_2m() -> Workbench {
        Workbench::new(
            generate_bsbm(&BsbmConfig::large()),
            ClusterModel::nodes50(),
            172e9,
            "BSBM-2M",
        )
    }

    /// The Chem2Bio2RDF stand-in (60 GB, 10-node cluster).
    pub fn chem() -> Workbench {
        Workbench::new(
            generate_chem(&ChemConfig::default()),
            ClusterModel::nodes10(),
            60e9,
            "Chem2Bio2RDF",
        )
    }

    /// The PubMed stand-in (230 GB, 60-node cluster).
    pub fn pubmed() -> Workbench {
        Workbench::new(
            generate_pubmed(&PubmedConfig::default()),
            ClusterModel::nodes60(),
            230e9,
            "PubMed",
        )
    }

    /// A tiny BSBM workbench for fast bench runs and smoke tests.
    pub fn bsbm_tiny() -> Workbench {
        Workbench::new(
            generate_bsbm(&BsbmConfig::tiny()),
            ClusterModel::nodes10(),
            43e9,
            "BSBM-tiny",
        )
    }

    /// Run one catalog query on one engine.
    pub fn run(
        &self,
        engine: &dyn QueryEngine,
        q: &CatalogQuery,
    ) -> Result<ExperimentResult, PlanError> {
        let parsed = parse_query(&q.sparql)
            .map_err(|e| PlanError::Unsupported(format!("parse: {e}")))?;
        let aq = extract(&parsed)?;
        let plan = engine.plan(&aq, &self.cat)?;
        let start = Instant::now();
        let (rel, wf) = plan.execute(&self.mr, &aq, &self.cat.dict);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        plan.cleanup(&self.mr.dfs);
        self.mr.dfs.remove(&plan.output_dataset);
        Ok(ExperimentResult {
            query: q.id.to_string(),
            engine: engine.name().to_string(),
            wall_ms,
            sim_seconds: self.model.workflow_time(&wf),
            cycles: wf.cycles(),
            full_cycles: wf.full_cycles(),
            map_only_cycles: wf.map_only_cycles(),
            shuffle_mb: wf.total_shuffle_bytes() as f64 / 1e6,
            materialized_mb: wf.total_output_bytes() as f64 / 1e6,
            rows: rel.len(),
            task_attempts: wf.total_task_attempts(),
            retried_attempts: wf.total_retried_attempts(),
            speculative_attempts: wf.total_speculative_attempts(),
            straggler_tasks: wf.total_straggler_tasks(),
            wasted_mb: wf.total_wasted_output_bytes() as f64 / 1e6,
            backoff_s: wf.total_backoff_s(),
            corrupt_blocks_detected: wf.total_corrupt_blocks_detected(),
            corrupt_spills_detected: wf.total_corrupt_spills_detected(),
            integrity_reread_mb: wf.total_integrity_reread_bytes() as f64 / 1e6,
            corrupt_records_skipped: wf.total_corrupt_records_skipped(),
            jobs_replayed: wf.recovery.jobs_replayed,
            recomputed_mb: wf.recovery.recomputed_bytes as f64 / 1e6,
            checkpoint_mb: wf.recovery.checkpoint_bytes_read as f64 / 1e6,
        })
    }

    /// Attach (or clear) a fault-injection plan for subsequent runs.
    pub fn set_faults(&mut self, faults: Option<FaultPlan>) {
        self.mr.faults = faults;
    }

    /// Run one query id across a set of engines.
    pub fn run_query(
        &self,
        engines: &[Box<dyn QueryEngine>],
        id: &str,
    ) -> Vec<ExperimentResult> {
        let q = query(id);
        engines
            .iter()
            .map(|e| {
                self.run(e.as_ref(), &q)
                    .unwrap_or_else(|err| panic!("{id} on {}: {err}", e.name()))
            })
            .collect()
    }
}

/// Render a set of results as a markdown table: one row per query, one
/// column pair (sim s / cycles) per engine.
pub fn render_table(title: &str, results: &[Vec<ExperimentResult>]) -> String {
    let mut s = String::new();
    s.push_str(&format!("\n### {title}\n\n"));
    if results.is_empty() {
        return s;
    }
    let engines: Vec<&str> = results[0].iter().map(|r| r.engine.as_str()).collect();
    s.push_str("| Query |");
    for e in &engines {
        s.push_str(&format!(" {e} (sim s) | cycles |"));
    }
    s.push_str(" rows |\n|---|");
    for _ in &engines {
        s.push_str("---|---|");
    }
    s.push_str("---|\n");
    for row in results {
        s.push_str(&format!("| {} |", row[0].query));
        for r in row {
            s.push_str(&format!(
                " {:.0} | {} ({} mo) |",
                r.sim_seconds, r.cycles, r.map_only_cycles
            ));
        }
        s.push_str(&format!(" {} |\n", row[0].rows));
    }
    s
}

/// A crossed-secondary ablation query (Table 2 row-4 shape, using the
/// paper's own Fig. 4 properties): block 1 requires `validFrom`, block 2
/// requires `validTo` — offers carrying neither match no pattern, so the
/// α-join prunes them (the pruning is a no-op on the MG catalog, whose
/// blocks always subsume one another).
pub fn crossed_secondary_query() -> String {
    "PREFIX bsbm: <http://bsbm.example.org/v01/>
SELECT ?n1 ?s1 ?n2 ?s2 {
  { SELECT (COUNT(?v1) AS ?n1) (SUM(?pc1) AS ?s1)
    { ?p a bsbm:ProductType1 . ?o bsbm:product ?p ; bsbm:price ?pc1 ; bsbm:validFrom ?v1 . } }
  { SELECT (COUNT(?v2) AS ?n2) (SUM(?pc2) AS ?s2)
    { ?p2 a bsbm:ProductType1 . ?o2 bsbm:product ?p2 ; bsbm:price ?pc2 ; bsbm:validTo ?v2 . } }
}"
    .to_string()
}

/// Run a raw SPARQL string (not from the catalog) on one engine.
pub fn run_sparql(
    wb: &Workbench,
    engine: &dyn QueryEngine,
    id: &str,
    sparql: &str,
) -> Result<ExperimentResult, PlanError> {
    let q = CatalogQuery {
        id: "adhoc",
        workload: rapida_datagen::Workload::Bsbm,
        selectivity: None,
        sparql: sparql.to_string(),
        shapes: &[],
        groups: &[],
    };
    let mut r = wb.run(engine, &q)?;
    r.query = id.to_string();
    Ok(r)
}

/// Serialize experiment rows as a JSON document (same hand-rolled style as
/// `rapida_testkit::bench`'s reports), including the fault counters — the
/// machine-readable companion to [`render_table`].
pub fn results_json(title: &str, results: &[Vec<ExperimentResult>]) -> String {
    let esc = |s: &str| {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    };
    let num = |v: f64| {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        }
    };
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"title\": {},\n", esc(title)));
    json.push_str("  \"results\": [\n");
    let flat: Vec<&ExperimentResult> = results.iter().flatten().collect();
    for (i, r) in flat.iter().enumerate() {
        json.push_str("    {");
        json.push_str(&format!("\"query\": {}, ", esc(&r.query)));
        json.push_str(&format!("\"engine\": {}, ", esc(&r.engine)));
        json.push_str(&format!("\"sim_seconds\": {}, ", num(r.sim_seconds)));
        json.push_str(&format!("\"cycles\": {}, ", r.cycles));
        json.push_str(&format!("\"full_cycles\": {}, ", r.full_cycles));
        json.push_str(&format!("\"map_only_cycles\": {}, ", r.map_only_cycles));
        json.push_str(&format!("\"shuffle_mb\": {}, ", num(r.shuffle_mb)));
        json.push_str(&format!("\"materialized_mb\": {}, ", num(r.materialized_mb)));
        json.push_str(&format!("\"rows\": {}, ", r.rows));
        json.push_str(&format!("\"task_attempts\": {}, ", r.task_attempts));
        json.push_str(&format!("\"retried_attempts\": {}, ", r.retried_attempts));
        json.push_str(&format!(
            "\"speculative_attempts\": {}, ",
            r.speculative_attempts
        ));
        json.push_str(&format!("\"straggler_tasks\": {}, ", r.straggler_tasks));
        json.push_str(&format!("\"wasted_mb\": {}, ", num(r.wasted_mb)));
        json.push_str(&format!("\"backoff_s\": {}, ", num(r.backoff_s)));
        json.push_str(&format!(
            "\"corrupt_blocks_detected\": {}, ",
            r.corrupt_blocks_detected
        ));
        json.push_str(&format!(
            "\"corrupt_spills_detected\": {}, ",
            r.corrupt_spills_detected
        ));
        json.push_str(&format!(
            "\"integrity_reread_mb\": {}, ",
            num(r.integrity_reread_mb)
        ));
        json.push_str(&format!(
            "\"corrupt_records_skipped\": {}, ",
            r.corrupt_records_skipped
        ));
        json.push_str(&format!("\"jobs_replayed\": {}, ", r.jobs_replayed));
        json.push_str(&format!("\"recomputed_mb\": {}, ", num(r.recomputed_mb)));
        json.push_str(&format!("\"checkpoint_mb\": {}", num(r.checkpoint_mb)));
        json.push_str(if i + 1 == flat.len() { "}\n" } else { "},\n" });
    }
    json.push_str("  ]\n}\n");
    json
}

/// Compute the slowdown factor of every other engine relative to the last
/// column (RAPIDAnalytics in the standard ordering).
pub fn speedups(row: &[ExperimentResult]) -> Vec<(String, f64)> {
    let base = row.last().expect("non-empty").sim_seconds.max(1e-9);
    row[..row.len() - 1]
        .iter()
        .map(|r| (r.engine.clone(), r.sim_seconds / base))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_workbench_runs_mg1_with_expected_ordering() {
        let wb = Workbench::bsbm_tiny();
        let results = wb.run_query(&all_engines(), "MG1");
        assert_eq!(results.len(), 4);
        // Cycle ordering from the paper: RA < RAPID+ < MQO <= naive.
        let by: std::collections::HashMap<&str, &ExperimentResult> = results
            .iter()
            .map(|r| (r.engine.as_str(), r))
            .collect();
        assert!(by["RAPIDAnalytics"].cycles < by["RAPID+ (Naive)"].cycles);
        assert!(by["RAPID+ (Naive)"].cycles < by["Hive (MQO)"].cycles);
        assert!(by["Hive (MQO)"].cycles <= by["Hive (Naive)"].cycles);
        // All engines produced the same number of rows.
        assert!(results.windows(2).all(|w| w[0].rows == w[1].rows));
    }

    #[test]
    fn render_produces_markdown() {
        let wb = Workbench::bsbm_tiny();
        let results = vec![wb.run_query(&table3_engines(), "G1")];
        let md = render_table("Table 3 smoke", &results);
        assert!(md.contains("| G1 |"));
        assert!(md.contains("Hive (Naive)"));
    }

    #[test]
    fn fault_counters_surface_in_results_and_json() {
        let mut wb = Workbench::bsbm_tiny();
        let engines = all_engines();
        let clean = wb.run_query(&engines, "MG1");
        assert!(clean.iter().all(|r| r.retried_attempts == 0
            && r.speculative_attempts == 0
            && r.task_attempts > 0));

        wb.set_faults(Some(FaultPlan::chaotic(0xBEEF)));
        let faulted = wb.run_query(&engines, "MG1");
        for (c, f) in clean.iter().zip(&faulted) {
            assert_eq!(c.rows, f.rows, "{}: rows changed under faults", c.engine);
            assert_eq!(
                c.shuffle_mb, f.shuffle_mb,
                "{}: committed shuffle changed under faults",
                c.engine
            );
            assert!(
                f.task_attempts >= c.task_attempts,
                "{}: attempts can only grow under faults",
                c.engine
            );
        }
        let injected: u64 = faulted
            .iter()
            .map(|r| r.retried_attempts + r.speculative_attempts)
            .sum();
        assert!(injected > 0, "chaotic plan injected nothing across engines");
        let total_extra_cost: f64 = faulted
            .iter()
            .zip(&clean)
            .map(|(f, c)| f.sim_seconds - c.sim_seconds)
            .sum();
        assert!(total_extra_cost > 0.0, "faults must cost simulated seconds");

        // The chaotic preset also injects read-path corruption: the sweep
        // must detect some of it and none may slip through silently (rows
        // and committed shuffle already asserted unchanged above).
        let detected: u64 = faulted
            .iter()
            .map(|r| r.corrupt_blocks_detected + r.corrupt_spills_detected)
            .sum();
        assert!(detected > 0, "chaotic plan corrupted nothing across engines");

        let json = results_json("chaos", &[faulted]);
        for key in [
            "\"task_attempts\"",
            "\"retried_attempts\"",
            "\"speculative_attempts\"",
            "\"wasted_mb\"",
            "\"backoff_s\"",
            "\"corrupt_blocks_detected\"",
            "\"corrupt_spills_detected\"",
            "\"integrity_reread_mb\"",
            "\"corrupt_records_skipped\"",
            "\"jobs_replayed\"",
            "\"recomputed_mb\"",
            "\"checkpoint_mb\"",
        ] {
            assert!(json.contains(key), "missing {key} in: {json}");
        }
    }

    #[test]
    fn speedup_helper() {
        let mk = |engine: &str, s: f64| ExperimentResult {
            query: "q".into(),
            engine: engine.into(),
            sim_seconds: s,
            ..Default::default()
        };
        let row = vec![mk("a", 100.0), mk("b", 50.0), mk("ra", 10.0)];
        let sp = speedups(&row);
        assert_eq!(sp[0], ("a".to_string(), 10.0));
        assert_eq!(sp[1], ("b".to_string(), 5.0));
    }
}
