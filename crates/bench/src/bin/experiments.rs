//! The experiment driver: regenerates every table and figure of the paper's
//! evaluation (§5) and prints paper-style markdown tables.
//!
//! Usage:
//! ```text
//! experiments [table3|fig8a|fig8b|fig8c|table4|cycles|ablations|all]
//! ```

use rapida_bench::{all_engines, render_table, results_json, speedups, table3_engines, Workbench};
use rapida_core::engines::{RapidAnalytics, RapidPlus};
use rapida_core::QueryEngine;
use rapida_mapred::FaultPlan;

fn main() {
    let what = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match what.as_str() {
        "table3" => table3(),
        "fig8a" => fig8a(),
        "fig8b" => fig8b(),
        "fig8c" => fig8c(),
        "table4" => table4(),
        "cycles" => cycles(),
        "ablations" => ablations(),
        "chaos" => chaos(),
        "all" => {
            table3();
            fig8a();
            fig8b();
            fig8c();
            table4();
            cycles();
            ablations();
            chaos();
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            eprintln!(
                "usage: experiments [table3|fig8a|fig8b|fig8c|table4|cycles|ablations|chaos|all]"
            );
            std::process::exit(2);
        }
    }
}

/// Table 3: G1–G4 on BSBM (both scales) and G5–G9 on Chem2Bio2RDF,
/// Hive vs RAPIDAnalytics.
fn table3() {
    let engines = table3_engines();
    for wb in [Workbench::bsbm_500k(), Workbench::bsbm_2m()] {
        let results: Vec<_> = ["G1", "G2", "G3", "G4"]
            .iter()
            .map(|id| wb.run_query(&engines, id))
            .collect();
        print!(
            "{}",
            render_table(&format!("Table 3 — {} (Hive vs RAPIDAnalytics)", wb.label), &results)
        );
    }
    let wb = Workbench::chem();
    let results: Vec<_> = ["G5", "G6", "G7", "G8", "G9"]
        .iter()
        .map(|id| wb.run_query(&engines, id))
        .collect();
    print!(
        "{}",
        render_table("Table 3 — Chem2Bio2RDF (Hive vs RAPIDAnalytics)", &results)
    );
}

fn fig8(label: &str, wb: &Workbench, ids: &[&str]) {
    let engines = all_engines();
    let results: Vec<_> = ids.iter().map(|id| wb.run_query(&engines, id)).collect();
    print!("{}", render_table(label, &results));
    for row in &results {
        let sp = speedups(row);
        let parts: Vec<String> = sp
            .iter()
            .map(|(e, f)| format!("{f:.1}x vs {e}"))
            .collect();
        println!("  {}: RAPIDAnalytics speedup: {}", row[0].query, parts.join(", "));
    }
}

/// Figure 8(a): MG1–MG4 on BSBM-500K, all four systems.
fn fig8a() {
    fig8(
        "Figure 8(a) — MG1–MG4 on BSBM-500K (all systems)",
        &Workbench::bsbm_500k(),
        &["MG1", "MG2", "MG3", "MG4"],
    );
}

/// Figure 8(b): MG1–MG4 on BSBM-2M.
fn fig8b() {
    fig8(
        "Figure 8(b) — MG1–MG4 on BSBM-2M (all systems)",
        &Workbench::bsbm_2m(),
        &["MG1", "MG2", "MG3", "MG4"],
    );
}

/// Figure 8(c): MG6–MG10 on Chem2Bio2RDF.
fn fig8c() {
    fig8(
        "Figure 8(c) — MG6–MG10 on Chem2Bio2RDF (all systems)",
        &Workbench::chem(),
        &["MG6", "MG7", "MG8", "MG9", "MG10"],
    );
}

/// Table 4: MG11–MG18 on PubMed, all four systems.
fn table4() {
    fig8(
        "Table 4 — MG11–MG18 on PubMed (all systems)",
        &Workbench::pubmed(),
        &["MG11", "MG12", "MG13", "MG14", "MG15", "MG16", "MG17", "MG18"],
    );
}

/// The §5.2 MR-cycle comparison table.
fn cycles() {
    let engines = all_engines();
    let wb = Workbench::bsbm_tiny();
    println!("\n### MR cycles per system (§5.2)\n");
    println!("| Query | Hive (Naive) | Hive (MQO) | RAPID+ | RAPIDAnalytics | paper |");
    println!("|---|---|---|---|---|---|");
    let paper = [
        ("MG1", "9 / 7 / 5 / 3"),
        ("MG3", "11 / 8 / 7 / 4"),
        ("G1", "4 / - / - / 2"),
    ];
    for (id, expect) in paper {
        let row = wb.run_query(&engines, id);
        print!("| {id} |");
        for r in &row {
            print!(" {} |", r.cycles);
        }
        println!(" {expect} |");
    }
}

/// Fault tolerance: MG1–MG4 on BSBM-500K under an aggressive fault plan vs
/// a perfect cluster. Prints the attempt ledger per engine and writes the
/// faulted rows as `CHAOS_fig8.json` (to `RAPIDA_BENCH_DIR`, default `.`).
fn chaos() {
    let mut wb = Workbench::bsbm_500k();
    let engines = all_engines();
    let ids = ["MG1", "MG2", "MG3", "MG4"];

    let clean: Vec<_> = ids.iter().map(|id| wb.run_query(&engines, id)).collect();
    wb.set_faults(Some(FaultPlan::chaotic(0xC4A05)));
    let faulted: Vec<_> = ids.iter().map(|id| wb.run_query(&engines, id)).collect();

    println!("\n### Fault tolerance — MG1–MG4 on BSBM-500K, chaotic fault plan\n");
    println!("| Query | Engine | sim s (clean) | sim s (faults) | attempts | retried | speculative | wasted MB | backoff s |");
    println!("|---|---|---|---|---|---|---|---|---|");
    for (crow, frow) in clean.iter().zip(&faulted) {
        for (c, f) in crow.iter().zip(frow) {
            assert_eq!(c.rows, f.rows, "fault recovery changed a result");
            println!(
                "| {} | {} | {:.0} | {:.0} | {} | {} | {} | {:.2} | {:.0} |",
                f.query,
                f.engine,
                c.sim_seconds,
                f.sim_seconds,
                f.task_attempts,
                f.retried_attempts,
                f.speculative_attempts,
                f.wasted_mb,
                f.backoff_s,
            );
        }
    }

    let dir = std::env::var("RAPIDA_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("failed to create {dir}: {e}");
    }
    let path = format!("{dir}/CHAOS_fig8.json");
    let json = results_json("Fig. 8 workloads under chaotic faults (BSBM-500K)", &faulted);
    match std::fs::write(&path, json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}

/// Ablations of the design choices DESIGN.md calls out.
fn ablations() {
    let wb = Workbench::bsbm_500k();
    println!("\n### Ablations (MG3 on BSBM-500K)\n");
    println!("| Variant | sim s | cycles | shuffle MB |");
    println!("|---|---|---|---|");
    let q = rapida_datagen::query("MG3");
    let variants: Vec<(&str, Box<dyn QueryEngine>)> = vec![
        ("RAPIDAnalytics (full)", Box::new(RapidAnalytics::default())),
        (
            "  − map-side hash agg",
            Box::new(RapidAnalytics {
                map_side_combine: false,
                ..Default::default()
            }),
        ),
        (
            "  − α-join pruning",
            Box::new(RapidAnalytics {
                alpha_pruning: false,
                ..Default::default()
            }),
        ),
        (
            "  − parallel Agg-Join (Fig. 6a)",
            Box::new(RapidAnalytics {
                parallel_agg: false,
                ..Default::default()
            }),
        ),
        (
            "  − composite GP (= RAPID+)",
            Box::new(RapidPlus::default()),
        ),
    ];
    for (label, engine) in variants {
        let r = wb.run(engine.as_ref(), &q).expect("ablation runs");
        println!(
            "| {label} | {:.0} | {} | {:.2} |",
            r.sim_seconds, r.cycles, r.shuffle_mb
        );
    }

    // α-join pruning needs crossed secondary properties to bite (Table 2
    // row 4); the MG catalog's blocks subsume one another, so measure it on
    // the Fig. 4-style validFrom/validTo query instead.
    println!("
### α-join pruning (crossed-secondary query, BSBM-500K)
");
    println!("| Variant | sim s | cycles | materialized MB |");
    println!("|---|---|---|---|");
    let q = rapida_bench::crossed_secondary_query();
    for (label, pruning) in [("with α-join pruning", true), ("without (all combos)", false)] {
        let engine = RapidAnalytics {
            alpha_pruning: pruning,
            ..Default::default()
        };
        let r = rapida_bench::run_sparql(&wb, &engine, "AQ-valid", &q).expect("runs");
        println!(
            "| {label} | {:.1} | {} | {:.4} |",
            r.sim_seconds, r.cycles, r.materialized_mb
        );
    }
}
