//! Figure 8(c): MG6–MG10 on the Chem2Bio2RDF stand-in, all four systems.

mod common;

use rapida_testkit::bench::Criterion;
use rapida_testkit::{criterion_group, criterion_main};
use rapida_bench::{all_engines, Workbench};

fn bench(c: &mut Criterion) {
    let wb = Workbench::chem();
    common::bench_queries(
        c,
        "fig8c_chem",
        &wb,
        &all_engines(),
        &["MG6", "MG7", "MG8", "MG9", "MG10"],
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
