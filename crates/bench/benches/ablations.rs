//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! map-side hash aggregation (Algorithm 3), α-join pruning (Table 2),
//! parallel vs sequential Agg-Join (Fig. 6), and composite-GP sharing
//! (RAPIDAnalytics vs RAPID+).

use rapida_testkit::bench::{BenchmarkId, Criterion};
use rapida_testkit::{criterion_group, criterion_main};
use rapida_bench::Workbench;
use rapida_core::engines::{RapidAnalytics, RapidPlus};
use rapida_core::QueryEngine;
use rapida_datagen::query;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let wb = Workbench::bsbm_500k();
    let q = query("MG3");
    let variants: Vec<(&str, Box<dyn QueryEngine>)> = vec![
        ("full", Box::new(RapidAnalytics::default())),
        (
            "no-map-side-hash-agg",
            Box::new(RapidAnalytics {
                map_side_combine: false,
                ..Default::default()
            }),
        ),
        (
            "no-alpha-pruning",
            Box::new(RapidAnalytics {
                alpha_pruning: false,
                ..Default::default()
            }),
        ),
        (
            "sequential-agg-join",
            Box::new(RapidAnalytics {
                parallel_agg: false,
                ..Default::default()
            }),
        ),
        ("no-composite-gp", Box::new(RapidPlus::default())),
    ];
    let mut group = c.benchmark_group("ablations_mg3");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for (label, engine) in &variants {
        group.bench_with_input(BenchmarkId::new(*label, "MG3"), &q, |b, q| {
            b.iter(|| wb.run(engine.as_ref(), q).expect("runs"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
