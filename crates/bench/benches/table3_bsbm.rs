//! Table 3 (left): G1–G4 on the BSBM-500K stand-in, Hive vs RAPIDAnalytics.

mod common;

use rapida_testkit::bench::Criterion;
use rapida_testkit::{criterion_group, criterion_main};
use rapida_bench::{table3_engines, Workbench};

fn bench(c: &mut Criterion) {
    let wb = Workbench::bsbm_500k();
    common::bench_queries(
        c,
        "table3_bsbm500k",
        &wb,
        &table3_engines(),
        &["G1", "G2", "G3", "G4"],
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
