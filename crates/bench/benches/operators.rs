//! Micro-benchmarks of the NTGA operators themselves: the optional group
//! filter (Def 3.3), n-split (Def 3.4), α-join (Def 3.5) and Agg-Join
//! accumulation (Def 3.6).

use rapida_testkit::bench::Criterion;
use rapida_testkit::{criterion_group, criterion_main};
use rapida_ntga::{
    agg_join, alpha_join, n_split, opt_group_filter, AggJoinSpec, AggOp, AggSpec, AlphaCond,
    AlphaTerm, AnnTg, PropReq, StarSpec, TripleGroup, VarRef,
};
use std::sync::Arc;
use std::time::Duration;

fn make_tgs(n: usize) -> Vec<TripleGroup> {
    (0..n as u64)
        .map(|i| {
            let mut triples = vec![(1, 100 + i % 50), (2, 200 + i % 90)];
            if i % 3 != 0 {
                triples.push((3, 300 + i % 7));
            }
            if i % 5 == 0 {
                triples.push((3, 300 + (i + 1) % 7));
            }
            TripleGroup::new(i, triples)
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let tgs = make_tgs(10_000);
    let spec = StarSpec {
        star: 0,
        primary: vec![PropReq::any(1), PropReq::any(2)],
        secondary: vec![PropReq::any(3)],
    };
    let mut group = c.benchmark_group("ntga_operators");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    group.bench_function("opt_group_filter/10k", |b| {
        b.iter(|| {
            tgs.iter()
                .filter_map(|tg| opt_group_filter(tg, &spec))
                .count()
        })
    });

    group.bench_function("n_split/10k", |b| {
        b.iter(|| {
            tgs.iter()
                .map(|tg| n_split(tg, &[1, 2], &[vec![], vec![3]]))
                .filter(|splits| splits.iter().any(Option::is_some))
                .count()
        })
    });

    let left: Vec<(u64, AnnTg)> = tgs
        .iter()
        .take(2000)
        .map(|tg| (tg.subject % 500, AnnTg::single(0, tg.clone())))
        .collect();
    let right: Vec<(u64, AnnTg)> = tgs
        .iter()
        .skip(2000)
        .take(2000)
        .map(|tg| (tg.subject % 500, AnnTg::single(1, tg.clone())))
        .collect();
    let conds = vec![AlphaCond {
        terms: vec![AlphaTerm {
            star: 0,
            prop: 3,
            required: true,
        }],
    }];
    group.bench_function("alpha_join/2kx2k", |b| {
        b.iter(|| alpha_join(&left, &right, &conds).len())
    });

    let details: Vec<AnnTg> = tgs.iter().map(|tg| AnnTg::single(0, tg.clone())).collect();
    let numeric = Arc::new(vec![Some(1.5); 1000]);
    let agg_spec = AggJoinSpec {
        id: 0,
        slots: vec![
            VarRef::ObjectOf { star: 0, prop: 1 },
            VarRef::ObjectOf { star: 0, prop: 2 },
        ],
        group_slots: vec![0],
        aggs: vec![AggSpec {
            op: AggOp::Sum,
            arg: Some(1),
        }],
        alpha: AlphaCond::default(),
    };
    group.bench_function("agg_join/10k", |b| {
        b.iter(|| agg_join(&details, &agg_spec, &numeric).len())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
