//! ExtVP semi-join reductions vs full VP scans: records every MG query's
//! simulated cluster cost on a catalog loaded *with* ExtVP reductions
//! (`extvp_*` ids) and on one loaded *without* them (`fullscan_*` ids),
//! per engine family, into `BENCH_extvp.json`.
//!
//! The measured quantity is the deterministic simulated cost in model
//! seconds (`iter_custom`, 1 iteration = `cost` seconds) — the same
//! pinned-simulator measurement as `plan.rs` — so the recorded numbers
//! are exact and reproducible. Both sides share one cluster model
//! calibrated on the *full-scan* catalog's stored bytes; the ExtVP
//! catalog's extra stored reductions are deliberately excluded from the
//! calibration so the ratio isolates scan-side savings. Floors checked by
//! `scripts/bench_report.sh extvp`: ExtVP never worse on any (query,
//! family) pair, and at least one MG pair >= 1.2x faster.

use rapida_core::engines::{HiveMqo, RapidAnalytics};
use rapida_core::{extract, DataCatalog, LoadConfig, QueryEngine, QueryPlan};
use rapida_datagen::{generate_bsbm, generate_chem, query, BsbmConfig, ChemConfig};
use rapida_mapred::{ClusterModel, Engine};
use rapida_rdf::Graph;
use rapida_sparql::parse_query;
use rapida_testkit::bench::{smoke_mode, BenchmarkId, Criterion};
use rapida_testkit::{criterion_group, criterion_main};
use std::time::Duration;

/// Load the ExtVP-on / ExtVP-off catalog pair and a cluster model
/// calibrated to the paper's dataset size on the full-scan catalog.
fn workload(graph: &Graph, paper_bytes: f64) -> (DataCatalog, DataCatalog, ClusterModel) {
    let off = DataCatalog::load_with(
        graph,
        LoadConfig {
            extvp: false,
            ..LoadConfig::default()
        },
    );
    let on = DataCatalog::load(graph);
    let mut model = ClusterModel::nodes10();
    model.data_scale = paper_bytes / off.dfs.stored_bytes().max(1) as f64;
    (on, off, model)
}

/// Measured simulated cost of one engine's fixed plan on the pinned
/// simulator, plus the run's input-byte total (for the report printout).
fn measured_cost(
    cat: &DataCatalog,
    aq: &rapida_core::AnalyticalQuery,
    engine: &dyn QueryEngine,
    model: &ClusterModel,
) -> (f64, u64) {
    let mr = Engine::pinned(cat.dfs.clone());
    let plan: QueryPlan = engine.plan(aq, cat).expect("fixed plan compiles");
    let (_rel, wf) = plan.execute(&mr, aq, &cat.dict);
    let cost = model.workflow_time(&wf);
    let input = wf.total_input_bytes();
    plan.cleanup(&cat.dfs);
    cat.dfs.remove(&plan.output_dataset);
    (cost, input)
}

fn record(group: &mut rapida_testkit::bench::BenchmarkGroup<'_>, id: BenchmarkId, cost: f64) {
    group.bench_function(id, |b| {
        b.iter_custom(|iters| Duration::from_secs_f64(cost * iters as f64))
    });
}

fn sweep(
    group: &mut rapida_testkit::bench::BenchmarkGroup<'_>,
    on: &DataCatalog,
    off: &DataCatalog,
    model: &ClusterModel,
    ids: &[&str],
) {
    let engines: Vec<(&str, Box<dyn QueryEngine>)> = vec![
        ("hive", Box::new(HiveMqo::default())),
        ("rapida", Box::new(RapidAnalytics::default())),
    ];
    for id in ids {
        let q = query(id);
        let aq = extract(&parse_query(&q.sparql).unwrap()).unwrap();
        for (family, engine) in &engines {
            let (full_cost, full_in) = measured_cost(off, &aq, engine.as_ref(), model);
            let (ext_cost, ext_in) = measured_cost(on, &aq, engine.as_ref(), model);
            println!(
                "  {id}/{family}: fullscan {full_cost:.2} model-s ({full_in} B in) \
                 -> extvp {ext_cost:.2} model-s ({ext_in} B in)"
            );
            let param = format!("{id}_{family}");
            record(group, BenchmarkId::new("fullscan", &param), full_cost);
            record(group, BenchmarkId::new("extvp", &param), ext_cost);
        }
    }
}

fn bench(c: &mut Criterion) {
    let (bsbm, chem) = if smoke_mode() {
        (generate_bsbm(&BsbmConfig::tiny()), generate_chem(&ChemConfig::tiny()))
    } else {
        (generate_bsbm(&BsbmConfig::small()), generate_chem(&ChemConfig::default()))
    };

    let mut group = c.benchmark_group("extvp");
    group.sample_size(10).measurement_time(Duration::from_millis(100));
    let (on, off, model) = workload(&bsbm, 43e9);
    sweep(&mut group, &on, &off, &model, &["MG1", "MG2", "MG3", "MG4"]);
    let (on, off, model) = workload(&chem, 60e9);
    sweep(&mut group, &on, &off, &model, &["MG6"]);
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
