//! Concurrent-serving throughput: batched MQO + cross-query scan cache vs
//! the one-query-at-a-time baseline, at 10 / 100 / 1000 simulated clients
//! on the same seeded Poisson-ish BSBM traffic mix. Writes
//! `BENCH_serve.json`.
//!
//! Every recorded value is deterministic: latencies are modeled cluster
//! seconds from [`ClusterModel`], so the QPS ratio is a pure function of
//! (catalog, traffic, config) and the serve floor — batched throughput at
//! least 1.5x serial at 100 clients — is checked by
//! `scripts/bench_report.sh serve` even in smoke mode (the same policy as
//! the recovery bench).
//!
//! Recorded ids (values are simulated quantities, 1 ns per unit):
//!   `qpq/{mode}_c{N}`      — simulated seconds per completed query (1/QPS)
//!   `p50/{mode}_c{N}`      — median simulated latency, seconds
//!   `p95/{mode}_c{N}`      — tail simulated latency, seconds
//!   `cache_hit/batched_c{N}`       — scan-cache hit ratio (dimensionless)
//!   `window_arrivals/batched_c{N}` — mean batch size, 1 ns per request
//!   `shared_members/batched_c{N}`  — fused-group members, 1 ns per query

use rapida_core::DataCatalog;
use rapida_datagen::{generate_bsbm, generate_traffic, BsbmConfig, TrafficConfig};
use rapida_serve::{ServeConfig, ServeLedger, ServeMode, Server};
use rapida_testkit::bench::{smoke_mode, BenchmarkId, Criterion};
use rapida_testkit::{criterion_group, criterion_main};
use std::time::Duration;

fn serve(cat: &DataCatalog, events_seed: u64, clients: usize, dur_ms: u64, mode: ServeMode) -> ServeLedger {
    let events = generate_traffic(&TrafficConfig::bsbm_mix(events_seed, clients, dur_ms));
    let server = Server::over(
        cat.clone(),
        ServeConfig {
            mode,
            ..ServeConfig::default()
        },
    );
    server.enqueue_traffic(&events);
    let report = server.drain();
    assert_eq!(
        report.ledger.rejected, 0,
        "{} c{clients}: traffic mix queries must all complete",
        mode.name()
    );
    report.ledger
}

fn record(group: &mut rapida_testkit::bench::BenchmarkGroup<'_>, id: BenchmarkId, value: f64) {
    group.bench_function(id, |b| {
        b.iter_custom(|iters| Duration::from_secs_f64(value * iters as f64))
    });
}

fn bench(c: &mut Criterion) {
    let (graph, dur_ms) = if smoke_mode() {
        (generate_bsbm(&BsbmConfig::tiny()), 220)
    } else {
        (generate_bsbm(&BsbmConfig::small()), 600)
    };
    let cat = DataCatalog::load(&graph);

    let mut group = c.benchmark_group("serve");
    group.sample_size(10).measurement_time(Duration::from_millis(100));

    for clients in [10usize, 100, 1000] {
        let batched = serve(&cat, 42, clients, dur_ms, ServeMode::Batched);
        let serial = serve(&cat, 42, clients, dur_ms, ServeMode::Serial);
        let speedup = batched.qps / serial.qps;
        println!(
            "  c{clients}: batched {:.2} q/s (p50 {:.0} ms, p95 {:.0} ms, cache {:.0}% hits) \
             vs serial {:.2} q/s (p50 {:.0} ms, p95 {:.0} ms) — {speedup:.2}x",
            batched.qps,
            batched.p50_ms,
            batched.p95_ms,
            100.0 * batched.cache_hit_ratio(),
            serial.qps,
            serial.p50_ms,
            serial.p95_ms,
        );
        assert!(
            batched.qps > serial.qps,
            "c{clients}: batched ({:.3} q/s) must beat serial ({:.3} q/s)",
            batched.qps,
            serial.qps
        );
        if clients == 100 {
            // The headline floor, deterministic (simulated seconds), so it
            // holds in smoke mode too; bench_report.sh re-checks the JSON.
            assert!(
                speedup >= 1.5,
                "c100: batched/serial QPS ratio {speedup:.2}x is below the 1.5x floor"
            );
        }

        for (mode, ledger) in [("batched", &batched), ("serial", &serial)] {
            let tag = format!("{mode}_c{clients}");
            record(&mut group, BenchmarkId::new("qpq", &tag), 1.0 / ledger.qps);
            record(&mut group, BenchmarkId::new("p50", &tag), ledger.p50_ms / 1e3);
            record(&mut group, BenchmarkId::new("p95", &tag), ledger.p95_ms / 1e3);
        }
        let hit_ratio = batched.cache_hit_ratio();
        assert!(
            hit_ratio > 0.0,
            "c{clients}: the cross-window scan cache never hit"
        );
        let tag = format!("batched_c{clients}");
        record(&mut group, BenchmarkId::new("cache_hit", &tag), hit_ratio);
        let windows = batched.windows.len().max(1) as f64;
        let arrivals: usize = batched.windows.iter().map(|w| w.arrivals).sum();
        let fused: usize = batched.windows.iter().map(|w| w.fused_members).sum();
        record(
            &mut group,
            BenchmarkId::new("window_arrivals", &tag),
            arrivals as f64 / windows * 1e-9,
        );
        record(
            &mut group,
            BenchmarkId::new("shared_members", &tag),
            fused as f64 * 1e-9,
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
