//! Figure 8(b): MG1–MG4 on the BSBM-2M stand-in (4× the data of Fig. 8(a)),
//! all four systems.

mod common;

use rapida_testkit::bench::Criterion;
use rapida_testkit::{criterion_group, criterion_main};
use rapida_bench::{all_engines, Workbench};

fn bench(c: &mut Criterion) {
    let wb = Workbench::bsbm_2m();
    common::bench_queries(
        c,
        "fig8b_bsbm2m",
        &wb,
        &all_engines(),
        &["MG1", "MG2", "MG3", "MG4"],
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
