//! Figure 8(a): MG1–MG4 on the BSBM-500K stand-in, all four systems.

mod common;

use rapida_testkit::bench::Criterion;
use rapida_testkit::{criterion_group, criterion_main};
use rapida_bench::{all_engines, Workbench};

fn bench(c: &mut Criterion) {
    let wb = Workbench::bsbm_500k();
    common::bench_queries(
        c,
        "fig8a_bsbm500k",
        &wb,
        &all_engines(),
        &["MG1", "MG2", "MG3", "MG4"],
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
