//! Worker-count scaling bench over the 1M-record shuffle workload.
//!
//! The build container may expose a single CPU, where wall-clock parallel
//! speedup is physically impossible — so each sample is the job's *busy-time
//! makespan*: the busiest worker's CPU time through the map phase plus the
//! busiest worker's through the reduce phase, measured per worker with the
//! thread CPU clock (`JobMetrics::busy_makespan_ns`). That is exactly the
//! wall time the run would take on a machine with one core per worker, and
//! it is what the work-stealing pool + shard-parallel reduce merge are
//! supposed to shrink as workers grow.
//!
//! Results land in `BENCH_scale.json` (ids `shuffle_1m/w{1,2,4,8}`);
//! `scripts/bench_report.sh scale` enforces the ≥2x floor at 4 workers.

use rapida_mapred::{
    DatasetWriter, Engine, FnMapFactory, FnReduceFactory, InputSrc, Job, JobBuilder, KeyLocal,
    MapOutput, MapTask, ReduceOutput, ReduceTask, SimDfs,
};
use rapida_testkit::bench::{smoke_mode, Criterion};
use rapida_testkit::rng::StdRng;
use rapida_testkit::{criterion_group, criterion_main};
use std::sync::Arc;
use std::time::Duration;

const KEY_LEN: usize = 16;
const VAL_LEN: usize = 8;

/// Records are pre-framed `key ++ value`; the mapper re-emits the two
/// halves — a pure shuffle workload, same shape as `benches/shuffle.rs`.
struct SplitMap;
impl MapTask for SplitMap {
    fn map(&mut self, _src: InputSrc, record: &[u8], out: &mut MapOutput) {
        out.emit(&record[..KEY_LEN], &record[KEY_LEN..]);
    }
}

/// Sums little-endian u64 values per key and writes `key ++ sum` —
/// key-local by construction, so the reduce merge shards.
struct SumReduce;
impl ReduceTask for SumReduce {
    fn reduce(&mut self, key: &[u8], values: &[&[u8]], out: &mut ReduceOutput) {
        let total: u64 = values
            .iter()
            .map(|v| {
                let mut b = [0u8; 8];
                b.copy_from_slice(v);
                u64::from_le_bytes(b)
            })
            .sum();
        let mut rec = Vec::with_capacity(KEY_LEN + 8);
        rec.extend_from_slice(key);
        rec.extend_from_slice(&total.to_le_bytes());
        out.write(&rec);
    }
}

/// The shuffle bench's seeded dataset: `n` records over a 64Ki key space.
fn dataset(n: usize) -> rapida_mapred::Dataset {
    let mut rng = StdRng::seed_from_u64(0x50FF1E);
    let mut w = DatasetWriter::new(256 * 1024);
    let mut rec = [0u8; KEY_LEN + VAL_LEN];
    for _ in 0..n {
        let key = rng.gen_range(0u64..65_536);
        rec[..KEY_LEN].copy_from_slice(format!("key-{key:012}").as_bytes());
        rec[KEY_LEN..].copy_from_slice(&rng.gen_range(0u64..1000).to_le_bytes());
        w.push(&rec);
    }
    w.finish()
}

fn job() -> Job {
    JobBuilder::new("scale-bench")
        .input("in")
        .mapper(Arc::new(FnMapFactory(|| SplitMap)))
        .reducer(Arc::new(KeyLocal(FnReduceFactory(|| SumReduce))))
        .output("out")
        .num_reducers(4)
        .build()
}

fn bench(c: &mut Criterion) {
    let (n, tag) = if smoke_mode() {
        (50_000, "shuffle_50k")
    } else {
        (1_000_000, "shuffle_1m")
    };
    let ds = dataset(n);

    let mut group = c.benchmark_group("scale");
    group
        .sample_size(5)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(6));

    for workers in [1usize, 2, 4, 8] {
        group.bench_function(format!("{tag}/w{workers}"), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let dfs = SimDfs::new();
                    dfs.put("in", ds.clone()); // blocks are refcounted: cheap
                    let engine = Engine::with_workers(dfs.clone(), workers);
                    let m = engine.run_job(&job());
                    std::hint::black_box(m.output_records);
                    total += Duration::from_nanos(m.busy_makespan_ns());
                }
                total
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
