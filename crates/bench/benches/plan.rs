//! Cost-based enumerator vs fixed plans: records every MG query's simulated
//! cluster cost under the enumerator's choice (`chosen_*`) and under each
//! family's fixed default plans (`fixed_*`) into `BENCH_plan.json`.
//!
//! The measured quantity is the *deterministic simulated cost* in model
//! seconds (reported through `iter_custom`, 1 iteration = `cost` seconds),
//! not wall time — plan choice is the thing under test, and the simulator's
//! metrics are worker-count independent, so the recorded numbers are exact
//! and reproducible. Floors checked by `scripts/bench_report.sh plan`:
//! chosen never worse than fixed per family, and at least one MG query
//! where a chosen plan beats the fixed Hive-MQO baseline by >= 1.1x.

use rapida_bench::Workbench;
use rapida_core::enumerate::{enumerate_best, Family};
use rapida_core::{extract, DataCatalog, QueryEngine, QueryPlan};
use rapida_datagen::query;
use rapida_mapred::{ClusterModel, Engine};
use rapida_sparql::parse_query;
use rapida_testkit::bench::{smoke_mode, BenchmarkId, Criterion};
use rapida_testkit::{criterion_group, criterion_main};
use std::time::Duration;

/// Measured simulated cost of one already-compiled plan on the pinned
/// simulator (the same measurement the enumerator's dry-run phase uses).
fn measured_cost(
    plan: &QueryPlan,
    aq: &rapida_core::AnalyticalQuery,
    cat: &DataCatalog,
    model: &ClusterModel,
) -> f64 {
    let mr = Engine::pinned(cat.dfs.clone());
    let (_rel, wf) = plan.execute(&mr, aq, &cat.dict);
    let cost = model.workflow_time(&wf);
    plan.cleanup(&cat.dfs);
    cat.dfs.remove(&plan.output_dataset);
    cost
}

/// Report a fixed, pre-computed cost (in model seconds) as the benchmark's
/// measured time.
fn record(group: &mut rapida_testkit::bench::BenchmarkGroup<'_>, id: BenchmarkId, cost: f64) {
    group.bench_function(id, |b| {
        b.iter_custom(|iters| Duration::from_secs_f64(cost * iters as f64))
    });
}

fn bench(c: &mut Criterion) {
    let wb = if smoke_mode() {
        Workbench::bsbm_tiny()
    } else {
        Workbench::bsbm_500k()
    };
    let cat = &wb.cat;
    let model = wb.model;

    let fixed: Vec<(&str, Box<dyn QueryEngine>)> = vec![
        ("fixed_hive_naive", Box::new(rapida_core::engines::HiveNaive::default())),
        ("fixed_hive_mqo", Box::new(rapida_core::engines::HiveMqo::default())),
        ("fixed_rapid_plus", Box::new(rapida_core::engines::RapidPlus::default())),
        ("fixed_rapida", Box::new(rapida_core::engines::RapidAnalytics::default())),
    ];

    let mut group = c.benchmark_group("plan");
    group.sample_size(10).measurement_time(Duration::from_millis(100));
    for id in ["MG1", "MG2", "MG3", "MG4"] {
        let q = query(id);
        let aq = extract(&parse_query(&q.sparql).unwrap()).unwrap();

        for (label, engine) in &fixed {
            let plan = engine.plan(&aq, cat).expect("fixed plan compiles");
            let cost = measured_cost(&plan, &aq, cat, &model);
            record(&mut group, BenchmarkId::new(*label, id), cost);
        }
        for (label, family) in [("chosen_hive", Family::Hive), ("chosen_rapid", Family::Rapid)] {
            let e = enumerate_best(family, &aq, cat, &model).expect("enumeration succeeds");
            let cost = measured_cost(&e.plan, &aq, cat, &model);
            println!("  {label}/{id}: {} -> {cost:.2} model-s", e.choice);
            record(&mut group, BenchmarkId::new(label, id), cost);
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
