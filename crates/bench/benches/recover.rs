//! Checkpoint-resume vs full-restart recovery after a late-job loss:
//! runs MG1 on Hive (Naive) — the longest workflow of the Fig. 8 set —
//! kills the last job of the main workflow exactly once, and records the
//! bytes each recovery mode recomputes into `BENCH_recover.json`.
//!
//! The measured quantity is deterministic (`iter_custom`, 1 ns per
//! recomputed byte, plus the model-seconds recovery overhead as a second
//! pair), so the recorded numbers are exact and reproducible. Floor
//! checked by `scripts/bench_report.sh recover`: full restart must
//! recompute at least 2x the bytes checkpoint resume does — the margin
//! that makes job-granular checkpoints worth their storage.

use rapida_core::engines::HiveNaive;
use rapida_core::{extract, DataCatalog, QueryEngine};
use rapida_datagen::{generate_bsbm, query, BsbmConfig};
use rapida_mapred::{ClusterModel, Engine, FaultPlan, RecoveryLedger, ResiliencePolicy};
use rapida_sparql::parse_query;
use rapida_testkit::bench::{smoke_mode, BenchmarkId, Criterion};
use rapida_testkit::{criterion_group, criterion_main};
use std::time::Duration;

/// Run MG1 with the last main-workflow job killed once, returning the
/// recovery ledger of the run.
fn recover_once(cat: &DataCatalog, checkpointing: bool) -> RecoveryLedger {
    let q = query("MG1");
    let aq = extract(&parse_query(&q.sparql).unwrap()).unwrap();
    let engine = HiveNaive::default();
    let plan = engine.plan(&aq, cat).expect("MG1 plans on HiveNaive");
    let late = plan.jobs.len() - 1;
    let mut mr = Engine::pinned(cat.dfs.clone()).with_resilience(ResiliencePolicy {
        checkpointing,
        ..ResiliencePolicy::default()
    });
    // Explicit index-based kill: job names embed the per-plan id, which
    // differs between plan instances, so the schedule targets the index.
    mr.faults = Some(FaultPlan {
        abort_job: Some((late, 1)),
        ..FaultPlan::new(0)
    });
    let (_rel, wf) = plan
        .try_execute(&mr, &aq, &cat.dict)
        .expect("one kill is within the default budget");
    plan.cleanup(&cat.dfs);
    cat.dfs.remove(&plan.output_dataset);
    wf.recovery
}

fn record(group: &mut rapida_testkit::bench::BenchmarkGroup<'_>, id: BenchmarkId, value: f64) {
    group.bench_function(id, |b| {
        b.iter_custom(|iters| Duration::from_secs_f64(value * iters as f64))
    });
}

fn bench(c: &mut Criterion) {
    let graph = if smoke_mode() {
        generate_bsbm(&BsbmConfig::tiny())
    } else {
        generate_bsbm(&BsbmConfig::small())
    };
    let cat = DataCatalog::load(&graph);
    let model = ClusterModel::nodes10();

    let restart = recover_once(&cat, false);
    let ckpt = recover_once(&cat, true);
    assert!(
        ckpt.checkpoint_jobs_skipped > 0 && restart.checkpoint_jobs_skipped == 0,
        "modes must differ: ckpt skipped {}, restart skipped {}",
        ckpt.checkpoint_jobs_skipped,
        restart.checkpoint_jobs_skipped
    );
    println!(
        "  MG1/HiveNaive late-job loss: restart recomputes {} B over {} jobs, \
         checkpoint resume {} B over {} jobs ({} skipped, {} B verified)",
        restart.recomputed_bytes,
        restart.jobs_replayed,
        ckpt.recomputed_bytes,
        ckpt.jobs_replayed,
        ckpt.checkpoint_jobs_skipped,
        ckpt.checkpoint_bytes_read
    );

    let mut group = c.benchmark_group("recover");
    group.sample_size(10).measurement_time(Duration::from_millis(100));
    // 1 ns per recomputed byte: the ratio restart/checkpoint is the
    // recomputation margin the report enforces.
    record(
        &mut group,
        BenchmarkId::new("recomputed", "restart_MG1"),
        restart.recomputed_bytes as f64 * 1e-9,
    );
    record(
        &mut group,
        BenchmarkId::new("recomputed", "checkpoint_MG1"),
        ckpt.recomputed_bytes as f64 * 1e-9,
    );
    // Model-seconds recovery overhead (backoff + resubmit startup + IO)
    // as a second pair, for the cost-model view of the same margin.
    record(
        &mut group,
        BenchmarkId::new("overhead", "restart_MG1"),
        model.recovery_overhead(&restart),
    );
    record(
        &mut group,
        BenchmarkId::new("overhead", "checkpoint_MG1"),
        model.recovery_overhead(&ckpt),
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
