//! Table 4: MG11–MG18 on the PubMed stand-in, all four systems.

mod common;

use rapida_testkit::bench::Criterion;
use rapida_testkit::{criterion_group, criterion_main};
use rapida_bench::{all_engines, Workbench};

fn bench(c: &mut Criterion) {
    let wb = Workbench::pubmed();
    common::bench_queries(
        c,
        "table4_pubmed",
        &wb,
        &all_engines(),
        &["MG11", "MG12", "MG13", "MG14", "MG15", "MG16", "MG17", "MG18"],
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
