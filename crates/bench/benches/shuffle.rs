//! Shuffle data-path microbench: the arena-backed sorted-run merge engine
//! against an in-bench reimplementation of the legacy shuffle (per-record
//! `(Vec<u8>, Vec<u8>)` pairs, reduce-side concatenation + one stable sort
//! per partition) over the same 1M-record workload.
//!
//! Both sides run single-threaded end to end — dataset scan, map emit,
//! partition, sort/merge, grouped reduction, output block build — so the
//! ratio isolates the data-path rewrite, not parallelism. Results land in
//! `BENCH_mapred.json` (group `mapred`); `scripts/bench_report.sh` records
//! the committed baseline.

use rapida_mapred::codec::{BlockBuilder, RecordIter};
use rapida_mapred::{
    shuffle_partition, DatasetWriter, Engine, FnMapFactory, FnReduceFactory, InputSrc, Job,
    JobBuilder, MapOutput, MapTask, ReduceOutput, ReduceTask, SimDfs,
};
use rapida_testkit::bench::{smoke_mode, Criterion};
use rapida_testkit::rng::StdRng;
use rapida_testkit::{criterion_group, criterion_main};
use std::sync::Arc;
use std::time::Duration;

const KEY_LEN: usize = 16;
const VAL_LEN: usize = 8;

/// Records are pre-framed `key ++ value`; the mapper re-emits the two
/// halves — a pure shuffle workload with zero map-side compute.
struct SplitMap;
impl MapTask for SplitMap {
    fn map(&mut self, _src: InputSrc, record: &[u8], out: &mut MapOutput) {
        out.emit(&record[..KEY_LEN], &record[KEY_LEN..]);
    }
}

/// Sums little-endian u64 values per key and writes `key ++ sum`.
struct SumReduce;
impl ReduceTask for SumReduce {
    fn reduce(&mut self, key: &[u8], values: &[&[u8]], out: &mut ReduceOutput) {
        let total: u64 = values
            .iter()
            .map(|v| {
                let mut b = [0u8; 8];
                b.copy_from_slice(v);
                u64::from_le_bytes(b)
            })
            .sum();
        let mut rec = Vec::with_capacity(KEY_LEN + 8);
        rec.extend_from_slice(key);
        rec.extend_from_slice(&total.to_le_bytes());
        out.write(&rec);
    }
}

/// A seeded dataset of `n` records over a 64Ki key space (≈16 values per
/// key at 1M records), written at the engine's default split size.
fn dataset(n: usize) -> rapida_mapred::Dataset {
    let mut rng = StdRng::seed_from_u64(0x50FF1E);
    let mut w = DatasetWriter::new(256 * 1024);
    let mut rec = [0u8; KEY_LEN + VAL_LEN];
    for _ in 0..n {
        let key = rng.gen_range(0u64..65_536);
        rec[..KEY_LEN].copy_from_slice(format!("key-{key:012}").as_bytes());
        rec[KEY_LEN..].copy_from_slice(&rng.gen_range(0u64..1000).to_le_bytes());
        w.push(&rec);
    }
    w.finish()
}

fn job(reducers: usize) -> Job {
    JobBuilder::new("shuffle-bench")
        .input("in")
        .mapper(Arc::new(FnMapFactory(|| SplitMap)))
        .reducer(Arc::new(FnReduceFactory(|| SumReduce)))
        .output("out")
        .num_reducers(reducers)
        .build()
}

/// The pre-rewrite data path, single-threaded: heap pairs per record,
/// task-order concatenation per partition, one stable sort per partition,
/// grouped reduction over the materialized list.
fn legacy_run(ds: &rapida_mapred::Dataset, reducers: usize) -> usize {
    let mut shuffled: Vec<Vec<(Vec<u8>, Vec<u8>)>> =
        (0..reducers).map(|_| Vec::new()).collect();
    for block in &ds.blocks {
        let mut pairs: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for rec in RecordIter::new(block) {
            pairs.push((rec[..KEY_LEN].to_vec(), rec[KEY_LEN..].to_vec()));
        }
        for (k, v) in pairs {
            let p = shuffle_partition(&k, reducers);
            shuffled[p].push((k, v));
        }
    }
    let mut out_records = 0usize;
    for kvs in &mut shuffled {
        kvs.sort_by(|a, b| a.0.cmp(&b.0));
        let mut bb = BlockBuilder::new();
        let mut i = 0;
        let mut rec = Vec::with_capacity(KEY_LEN + 8);
        while i < kvs.len() {
            let key = &kvs[i].0;
            let mut total = 0u64;
            let mut j = i;
            while j < kvs.len() && &kvs[j].0 == key {
                let mut b = [0u8; 8];
                b.copy_from_slice(&kvs[j].1);
                total += u64::from_le_bytes(b);
                j += 1;
            }
            rec.clear();
            rec.extend_from_slice(key);
            rec.extend_from_slice(&total.to_le_bytes());
            bb.push(&rec);
            out_records += 1;
            i = j;
        }
        std::hint::black_box(bb.finish());
    }
    out_records
}

fn bench(c: &mut Criterion) {
    let (n, tag) = if smoke_mode() {
        (50_000, "50k")
    } else {
        (1_000_000, "1M")
    };
    let reducers = 4;
    let ds = dataset(n);

    let mut group = c.benchmark_group("mapred");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(8));

    group.bench_function(format!("shuffle_legacy_pairs/{tag}"), |b| {
        b.iter(|| legacy_run(&ds, reducers))
    });

    group.bench_function(format!("shuffle_arena_merge/{tag}"), |b| {
        b.iter(|| {
            let dfs = SimDfs::new();
            dfs.put("in", ds.clone()); // blocks are refcounted: cheap
            let engine = Engine::with_workers(dfs.clone(), 1);
            let m = engine.run_job(&job(reducers));
            std::hint::black_box(m.output_records)
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
