//! Shared criterion plumbing for the per-table/figure benchmarks.

use rapida_testkit::bench::{BenchmarkId, Criterion};
use rapida_bench::Workbench;
use rapida_core::QueryEngine;
use rapida_datagen::query;
use std::time::Duration;

/// Benchmark `ids × engines` on one workbench, one criterion group.
pub fn bench_queries(
    c: &mut Criterion,
    group_name: &str,
    wb: &Workbench,
    engines: &[Box<dyn QueryEngine>],
    ids: &[&str],
) {
    let mut group = c.benchmark_group(group_name);
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for id in ids {
        let q = query(id);
        for engine in engines {
            group.bench_with_input(
                BenchmarkId::new(engine.name(), id),
                &q,
                |b, q| {
                    b.iter(|| {
                        wb.run(engine.as_ref(), q).expect("query runs")
                    })
                },
            );
        }
    }
    group.finish();
}
