//! End-to-end Fig. 8 query benchmark: the zero-copy view operator path
//! (`views`) against the pre-refactor owned-decode path (`legacy_owned`),
//! MG1–MG4 on RAPIDAnalytics. Both paths produce byte-identical results
//! (asserted by the engine-agreement and chaos suites); this group records
//! the wall-clock gap in `BENCH_query.json`.
//!
//! Measured on the Fig. 8(b) BSBM-2M workbench — large enough that
//! per-record operator cost dominates plan construction — with a
//! single-worker MR engine so the ratio reflects operator cost, not
//! scheduler jitter. The two variants are sampled *interleaved*
//! (`bench_pair`) so machine-load drift cancels out of the ratio.

mod common;

use rapida_bench::Workbench;
use rapida_core::engines::RapidAnalytics;
use rapida_datagen::query;
use rapida_mapred::Engine;
use rapida_testkit::bench::{smoke_mode, BenchmarkId, Criterion};
use rapida_testkit::{criterion_group, criterion_main};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut wb = if smoke_mode() {
        Workbench::bsbm_tiny()
    } else {
        Workbench::bsbm_2m()
    };
    wb.mr = Engine::with_workers(wb.cat.dfs.clone(), 1);

    let views = RapidAnalytics::default();
    let legacy = RapidAnalytics {
        legacy_owned: true,
        ..Default::default()
    };

    let mut group = c.benchmark_group("query");
    group
        .sample_size(16)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(8));
    for id in ["MG1", "MG2", "MG3", "MG4"] {
        let q = query(id);
        group.bench_pair(
            BenchmarkId::new("views", id),
            BenchmarkId::new("legacy_owned", id),
            &q,
            |q| wb.run(&views, q).expect("query runs"),
            |q| wb.run(&legacy, q).expect("query runs"),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
