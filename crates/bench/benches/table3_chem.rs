//! Table 3 (right): G5–G9 on the Chem2Bio2RDF stand-in, Hive vs
//! RAPIDAnalytics.

mod common;

use rapida_testkit::bench::Criterion;
use rapida_testkit::{criterion_group, criterion_main};
use rapida_bench::{table3_engines, Workbench};

fn bench(c: &mut Criterion) {
    let wb = Workbench::chem();
    common::bench_queries(
        c,
        "table3_chem",
        &wb,
        &table3_engines(),
        &["G5", "G6", "G7", "G8", "G9"],
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
