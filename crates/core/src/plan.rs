//! Query plans: the uniform output of every engine's compiler — a job
//! sequence, driver-side fixups, an optional final map-only join, and the
//! output assembly into a [`Relation`].

use crate::aquery::AnalyticalQuery;
use crate::rows::{decode_row, row_bytes, RVal};
use rapida_mapred::codec::BlockBuilder;
use rapida_mapred::{
    Dataset, Engine, InputSrc, Job, MapOutput, MapTask, MapTaskFactory, SimDfs, WorkflowError,
    WorkflowMetrics,
};
use rapida_ntga::{AggOp, AggRec};
use rapida_rdf::{Dictionary, FxHashMap, TermId};
use rapida_sparql::ast::AggFunc;
use rapida_sparql::{Cell, Relation};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// A cell source within the per-block [`AggRec`] outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellSrc {
    /// Grouping key `idx` of block `block`.
    Key {
        /// Block index.
        block: usize,
        /// Key position.
        idx: usize,
    },
    /// Aggregate value `idx` of block `block`.
    Agg {
        /// Block index.
        block: usize,
        /// Aggregate position.
        idx: usize,
    },
}

/// Config of the final map-only join of aggregated block results.
///
/// Block results are [`AggRec`]s stamped with their block id; several blocks
/// may share one physical dataset (the RAPID engines' parallel Agg-Join
/// writes all blocks into a single output), so every read filters on the id.
#[derive(Clone)]
pub struct FinalJoinCfg {
    /// Per-block result dataset names; block 0 is streamed, the rest are
    /// broadcast (they are small aggregates — the paper's map-only final
    /// join).
    pub datasets: Vec<String>,
    /// `joins[j-1]` describes how block `j` joins the accumulated blocks:
    /// pairs of (source cell among blocks `< j`, key index within block
    /// `j`). Empty = cross join (GROUP BY ALL blocks).
    pub joins: Vec<Vec<(CellSrc, usize)>>,
    /// Output row layout (the outer projection).
    pub output: Vec<CellSrc>,
}

type BlockTables = Vec<FxHashMap<Vec<u64>, Vec<AggRec>>>;

/// Factory for the final-join map task; loads the broadcast blocks lazily.
pub struct FinalJoinFactory {
    cfg: Arc<FinalJoinCfg>,
    dfs: SimDfs,
    cache: OnceLock<Arc<BlockTables>>,
}

impl FinalJoinFactory {
    /// Create bound to the DFS.
    pub fn new(cfg: Arc<FinalJoinCfg>, dfs: SimDfs) -> Self {
        FinalJoinFactory {
            cfg,
            dfs,
            cache: OnceLock::new(),
        }
    }

    fn tables(&self) -> Arc<BlockTables> {
        self.cache
            .get_or_init(|| {
                let mut tables = Vec::new();
                for (j, name) in self.cfg.datasets.iter().enumerate().skip(1) {
                    let mut map: FxHashMap<Vec<u64>, Vec<AggRec>> = FxHashMap::default();
                    let own_keys: Vec<usize> =
                        self.cfg.joins[j - 1].iter().map(|(_, k)| *k).collect();
                    if let Some(ds) = self.dfs.get(name) {
                        for rec in ds.iter_records() {
                            if let Some(r) = AggRec::decode(rec) {
                                if usize::from(r.id) != j {
                                    continue;
                                }
                                let key: Vec<u64> =
                                    own_keys.iter().map(|&k| r.key[k]).collect();
                                map.entry(key).or_default().push(r);
                            }
                        }
                    }
                    tables.push(map);
                }
                Arc::new(tables)
            })
            .clone()
    }
}

impl MapTaskFactory for FinalJoinFactory {
    fn create(&self) -> Box<dyn MapTask> {
        Box::new(FinalJoinTask {
            cfg: self.cfg.clone(),
            tables: self.tables(),
        })
    }
}

/// The final-join map task.
pub struct FinalJoinTask {
    cfg: Arc<FinalJoinCfg>,
    tables: Arc<BlockTables>,
}

impl FinalJoinTask {
    fn probe(&self, j: usize, acc: &mut Vec<AggRec>, out: &mut MapOutput) {
        if j == self.cfg.datasets.len() {
            let row: Vec<RVal> = self
                .cfg
                .output
                .iter()
                .map(|src| match src {
                    CellSrc::Key { block, idx } => RVal::Id(acc[*block].key[*idx]),
                    CellSrc::Agg { block, idx } => match acc[*block].values[*idx] {
                        Some(v) => RVal::Num(v),
                        None => RVal::Null,
                    },
                })
                .collect();
            out.write(&row_bytes(&row));
            return;
        }
        let probe_key: Vec<u64> = self.cfg.joins[j - 1]
            .iter()
            .map(|(src, _)| match src {
                CellSrc::Key { block, idx } => acc[*block].key[*idx],
                CellSrc::Agg { .. } => unreachable!("joins are on grouping keys"),
            })
            .collect();
        if let Some(matches) = self.tables[j - 1].get(&probe_key) {
            for m in matches {
                acc.push(m.clone());
                self.probe(j + 1, acc, out);
                acc.pop();
            }
        }
    }
}

impl MapTask for FinalJoinTask {
    fn map(&mut self, _src: InputSrc, record: &[u8], out: &mut MapOutput) {
        let Some(rec) = AggRec::decode(record) else {
            out.skip_corrupt();
            return;
        };
        if rec.id != 0 {
            return; // Only block 0 is streamed.
        }
        let mut acc = vec![rec];
        self.probe(1, &mut acc, out);
    }
}

/// A driver-side fixup: if a GROUP-BY-ALL block produced no groups, SPARQL
/// still defines one group (COUNT = 0, numeric aggregates unbound). Applied
/// between the block jobs and the final join without an extra MR cycle —
/// the Hive-driver analog of a short-circuit task.
#[derive(Debug, Clone)]
pub struct AllGroupFixup {
    /// The block's result dataset.
    pub dataset: String,
    /// The block id stamped on the synthesized record.
    pub block_id: u8,
    /// The block's aggregate ops (COUNT synthesizes 0, others unbound).
    pub aggs: Vec<AggOp>,
}

impl AllGroupFixup {
    /// Apply: append the synthesized record if the dataset holds no record
    /// stamped with this block's id (the dataset may be shared between
    /// blocks).
    pub fn apply(&self, dfs: &SimDfs) {
        let existing = dfs.peek(&self.dataset).unwrap_or_default();
        let has_block = existing
            .iter_records()
            .filter_map(AggRec::decode)
            .any(|r| r.id == self.block_id);
        if has_block {
            return;
        }
        let rec = AggRec {
            id: self.block_id,
            key: Vec::new(),
            values: self
                .aggs
                .iter()
                .map(|op| match op {
                    AggOp::Count => Some(0.0),
                    _ => None,
                })
                .collect(),
        };
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        let mut bb = BlockBuilder::new();
        bb.push(&buf);
        let mut blocks = existing.blocks.clone();
        blocks.push(rapida_mapred::Bytes::from(bb.finish()));
        // Extend per-block record counts only when the existing dataset
        // tracks them for every block; otherwise leave them unknown.
        let mut block_records = existing.block_records.clone();
        if block_records.len() + 1 == blocks.len() {
            block_records.push(1);
        } else {
            block_records = Vec::new();
        }
        dfs.put(
            &self.dataset,
            Dataset {
                records: existing.records + 1,
                blocks,
                block_records,
            },
        );
    }
}

/// How the plan's output dataset is decoded.
#[derive(Debug, Clone)]
pub enum OutputKind {
    /// Encoded rows in outer-projection order (multi-block plans).
    Rows,
    /// [`AggRec`]s of a single block; cells located by the projection map.
    AggRecs {
        /// Per projection var: where the cell lives.
        projection: Vec<CellSrc>,
    },
}

/// A compiled query plan.
pub struct QueryPlan {
    /// The compiling engine's name.
    pub engine: &'static str,
    /// The unique plan id embedded in this plan's intermediate dataset
    /// names (see [`next_plan_id`]); [`QueryPlan::dump`] normalizes it away.
    pub plan_id: String,
    /// The MR jobs, in order.
    pub jobs: Vec<Job>,
    /// Driver-side fixups applied after `jobs`.
    pub fixups: Vec<AllGroupFixup>,
    /// The final map-only join (absent for single-block plans).
    pub final_job: Option<Job>,
    /// The dataset holding the query output.
    pub output_dataset: String,
    /// Output decoding.
    pub output: OutputKind,
}

impl QueryPlan {
    /// Total MR cycles (the paper's plan-quality headline number).
    pub fn cycles(&self) -> usize {
        self.jobs.len() + usize::from(self.final_job.is_some())
    }

    /// Full (shuffling) cycles.
    pub fn full_cycles(&self) -> usize {
        self.jobs
            .iter()
            .chain(self.final_job.iter())
            .filter(|j| !j.is_map_only())
            .count()
    }

    /// Map-only cycles.
    pub fn map_only_cycles(&self) -> usize {
        self.cycles() - self.full_cycles()
    }

    /// A human-readable plan explanation (the `EXPLAIN` of this system):
    /// one line per MR cycle with job names, plus fixups and output shape.
    pub fn explain(&self) -> String {
        let mut s = format!(
            "{} plan: {} MR cycles ({} full, {} map-only)\n",
            self.engine,
            self.cycles(),
            self.full_cycles(),
            self.map_only_cycles()
        );
        for (i, job) in self.jobs.iter().enumerate() {
            let inputs: Vec<String> = job
                .inputs
                .iter()
                .map(|i| match scan_kind(i) {
                    Some(kind) => format!("{i} {kind}"),
                    None => i.clone(),
                })
                .collect();
            s.push_str(&format!(
                "  MR{} [{}] {} <- {}\n",
                i + 1,
                if job.is_map_only() { "map-only" } else { "map-reduce" },
                job.name,
                inputs.join(", ")
            ));
        }
        for f in &self.fixups {
            s.push_str(&format!(
                "  driver: synthesize empty-ALL group for block {} in {}\n",
                f.block_id, f.dataset
            ));
        }
        if let Some(job) = &self.final_job {
            s.push_str(&format!(
                "  MR{} [map-only] {} <- {}\n",
                self.jobs.len() + 1,
                job.name,
                job.inputs.join(", ")
            ));
        }
        s.push_str(&format!("  output: {}\n", self.output_dataset));
        s
    }

    /// A compact, *stable* textual plan dump: like [`QueryPlan::explain`]
    /// but with the per-compilation plan id replaced by `«P»`, so two
    /// compilations of the same plan produce byte-identical dumps. This is
    /// the representation the golden plan snapshots and the enumerator's
    /// determinism test pin.
    pub fn dump(&self) -> String {
        let mut s = format!(
            "{}: {} cycles ({} full, {} map-only)\n",
            self.engine,
            self.cycles(),
            self.full_cycles(),
            self.map_only_cycles()
        );
        for (i, job) in self.jobs.iter().chain(self.final_job.iter()).enumerate() {
            s.push_str(&format!(
                "MR{} {} {}",
                i + 1,
                if job.is_map_only() { "map-only " } else { "map-reduce" },
                job.name,
            ));
            if !job.tag.is_empty() {
                s.push_str(&format!("  [{}]", job.tag));
            }
            let inputs: Vec<String> = job
                .inputs
                .iter()
                .map(|i| match scan_kind(i) {
                    Some(kind) => format!("{i} {kind}"),
                    None => i.clone(),
                })
                .collect();
            s.push_str(&format!(
                "\n     <- {}\n     -> {}\n",
                inputs.join(", "),
                job.output
            ));
        }
        for f in &self.fixups {
            s.push_str(&format!(
                "driver: empty-ALL fixup block {} in {}\n",
                f.block_id, f.dataset
            ));
        }
        s.push_str(&format!(
            "output: {} ({})\n",
            self.output_dataset,
            match &self.output {
                OutputKind::Rows => "rows",
                OutputKind::AggRecs { .. } => "agg-recs",
            }
        ));
        if self.plan_id.is_empty() {
            s
        } else {
            s.replace(&self.plan_id, "«P»")
        }
    }

    /// Execute against an MR engine, returning the result relation and the
    /// measured workflow metrics.
    ///
    /// Delegates to [`QueryPlan::try_execute`]; an exhausted workflow
    /// recovery budget panics (unreachable for probabilistic fault plans —
    /// see `rapida_mapred::Engine::run_workflow`).
    pub fn execute(
        &self,
        mr: &Engine,
        aq: &AnalyticalQuery,
        dict: &Dictionary,
    ) -> (Relation, WorkflowMetrics) {
        self.try_execute(mr, aq, dict)
            .unwrap_or_else(|e| panic!("plan execution exhausted its recovery budget: {e}"))
    }

    /// Execute against an MR engine with workflow-level checkpoint/recovery:
    /// lost jobs resume from the last committed checkpoint, and an exhausted
    /// retry budget degrades to a typed [`WorkflowError`] carrying the
    /// partial metrics instead of panicking.
    pub fn try_execute(
        &self,
        mr: &Engine,
        aq: &AnalyticalQuery,
        dict: &Dictionary,
    ) -> Result<(Relation, WorkflowMetrics), WorkflowError> {
        let mut wf = mr.try_run_workflow(&self.jobs)?;
        for f in &self.fixups {
            f.apply(&mr.dfs);
        }
        if let Some(job) = &self.final_job {
            // The final join runs as a one-job continuation of the workflow
            // so it shares the same recovery machinery (checkpoints of the
            // block jobs are already committed above).
            let tail = mr.try_run_workflow(std::slice::from_ref(job))?;
            wf.jobs.extend(tail.jobs);
            wf.recovery.absorb(&tail.recovery);
        }
        let rel = self.assemble(&mr.dfs, aq, dict);
        Ok((rel, wf))
    }

    /// Attach cross-query scan-cache keys to every job of this plan.
    ///
    /// `plan_sig` must uniquely determine the whole compilation: the
    /// caller folds in the engine name, the full planner configuration,
    /// and a canonical signature of the analytical query (see
    /// [`crate::AnalyticalQuery::signature`]). Planning is a pure function
    /// of those inputs, so every job's output bytes are determined by
    /// `(plan_sig, job position)` plus the base datasets — and the cache
    /// is only sound while it is bound to **one** loaded catalog, which is
    /// the serving layer's contract (one cache per server, one server per
    /// catalog). The per-compilation plan id is normalized out of names so
    /// recompilations of the same query share cache entries, including the
    /// scan-kind-bearing base inputs (`vp_*`, `extvp_*`, `tg_ec*`) the key
    /// embeds via the normalized input list.
    pub fn attach_scan_cache_keys(&mut self, plan_sig: &str) {
        let pid = self.plan_id.clone();
        let norm = |s: &str| {
            if pid.is_empty() {
                s.to_string()
            } else {
                s.replace(&pid, "«P»")
            }
        };
        for (slot, job) in self
            .jobs
            .iter_mut()
            .chain(self.final_job.iter_mut())
            .enumerate()
        {
            let inputs: Vec<String> = job
                .inputs
                .iter()
                .map(|i| match rapida_storage::scan_class(i) {
                    Some(class) => format!("{i}#{class}"),
                    None => norm(i),
                })
                .collect();
            job.cache_key = Some(format!(
                "{plan_sig}|#{slot}|{}->{}<-[{}]",
                norm(&job.name),
                norm(&job.output),
                inputs.join(",")
            ));
        }
    }

    /// Remove the plan's intermediate datasets from the DFS (everything the
    /// jobs wrote except the final output). Call after the result has been
    /// assembled; benchmark loops use this to keep the simulated DFS from
    /// accumulating dead data.
    pub fn cleanup(&self, dfs: &SimDfs) {
        for job in self.jobs.iter().chain(self.final_job.iter()) {
            if job.output != self.output_dataset {
                dfs.remove(&job.output);
            }
        }
    }

    /// Decode the output dataset into a [`Relation`] over the outer
    /// projection.
    pub fn assemble(&self, dfs: &SimDfs, aq: &AnalyticalQuery, _dict: &Dictionary) -> Relation {
        let vars = aq.projection.clone();
        let Some(ds) = dfs.peek(&self.output_dataset) else {
            return Relation::empty(vars);
        };
        let mut rows = Vec::with_capacity(ds.records);
        match &self.output {
            OutputKind::Rows => {
                for rec in ds.iter_records() {
                    if let Some(row) = decode_row(rec) {
                        rows.push(row.iter().map(rval_to_cell).collect());
                    }
                }
            }
            OutputKind::AggRecs { projection } => {
                for rec in ds.iter_records() {
                    if let Some(r) = AggRec::decode(rec) {
                        if r.id != 0 {
                            continue;
                        }
                        rows.push(
                            projection
                                .iter()
                                .map(|src| match src {
                                    CellSrc::Key { idx, .. } => Cell::Term(TermId(r.key[*idx])),
                                    CellSrc::Agg { idx, .. } => match r.values[*idx] {
                                        Some(v) => Cell::Num(v),
                                        None => Cell::Null,
                                    },
                                })
                                .collect(),
                        );
                    }
                }
            }
        }
        Relation { vars, rows }
    }
}

/// Scan-kind annotation of a plan input dataset, keyed on the storage
/// layer's naming scheme (see [`rapida_storage::scan_class`]): full VP
/// tables vs ExtVP semi-join reductions. Intermediate datasets
/// (plan-id-prefixed) and triplegroup partitions get no annotation.
fn scan_kind(name: &str) -> Option<&'static str> {
    rapida_storage::scan_class(name).and_then(|c| c.plan_label())
}

fn rval_to_cell(v: &RVal) -> Cell {
    match v {
        RVal::Null => Cell::Null,
        RVal::Id(i) => Cell::Term(TermId(*i)),
        RVal::Num(n) => Cell::Num(*n),
    }
}

/// Map the AST aggregate function to the operator-level op.
pub fn agg_op_of(f: AggFunc) -> AggOp {
    match f {
        AggFunc::Count => AggOp::Count,
        AggFunc::Sum => AggOp::Sum,
        AggFunc::Avg => AggOp::Avg,
        AggFunc::Min => AggOp::Min,
        AggFunc::Max => AggOp::Max,
    }
}

/// Errors from plan compilation.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// IR extraction / analysis failure.
    Extract(crate::aquery::ExtractError),
    /// The construct is outside the engine subset.
    Unsupported(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Extract(e) => write!(f, "{e}"),
            PlanError::Unsupported(m) => write!(f, "unsupported by this engine: {m}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<crate::aquery::ExtractError> for PlanError {
    fn from(e: crate::aquery::ExtractError) -> Self {
        PlanError::Extract(e)
    }
}

/// The engine interface: compile an analytical query over a catalog into a
/// [`QueryPlan`].
pub trait QueryEngine {
    /// Engine name (matches the paper's system names).
    fn name(&self) -> &'static str;
    /// Compile a plan.
    fn plan(
        &self,
        aq: &AnalyticalQuery,
        cat: &crate::catalog::DataCatalog,
    ) -> Result<QueryPlan, PlanError>;
}

/// Build the standard fixups + final join for a multi-block plan, given the
/// per-block AggRec dataset names. Single-block plans get `OutputKind::AggRecs`
/// instead (no extra cycle, matching the paper's cycle counts).
pub fn finish_plan(
    engine: &'static str,
    aq: &AnalyticalQuery,
    jobs: Vec<Job>,
    block_datasets: Vec<String>,
    dfs: &SimDfs,
    plan_id: &str,
) -> Result<QueryPlan, PlanError> {
    let resolved = aq.resolve_projection()?;
    let fixups: Vec<AllGroupFixup> = aq
        .blocks
        .iter()
        .enumerate()
        .filter(|(_, b)| b.group_by.is_empty())
        .map(|(i, b)| AllGroupFixup {
            dataset: block_datasets[i].clone(),
            block_id: i as u8,
            aggs: b.aggregates.iter().map(|a| agg_op_of(a.func)).collect(),
        })
        .collect();

    if aq.blocks.len() == 1 {
        let projection = resolved
            .iter()
            .map(|(b, c)| match c {
                crate::aquery::ColRef::Key(k) => CellSrc::Key { block: *b, idx: *k },
                crate::aquery::ColRef::Agg(a) => CellSrc::Agg { block: *b, idx: *a },
            })
            .collect();
        return Ok(QueryPlan {
            engine,
            plan_id: plan_id.to_string(),
            jobs,
            fixups,
            final_job: None,
            output_dataset: block_datasets[0].clone(),
            output: OutputKind::AggRecs { projection },
        });
    }

    // Multi-block: final map-only join. Block j joins the accumulated
    // blocks on its grouping keys shared with any earlier block.
    let mut joins = Vec::with_capacity(aq.blocks.len() - 1);
    for j in 1..aq.blocks.len() {
        let mut pairs = Vec::new();
        for (kj, v) in aq.blocks[j].group_by.iter().enumerate() {
            // Find the first earlier block defining v as a key.
            for b in 0..j {
                if let Some(kb) = aq.blocks[b].group_by.iter().position(|g| g == v) {
                    pairs.push((CellSrc::Key { block: b, idx: kb }, kj));
                    break;
                }
            }
        }
        joins.push(pairs);
    }
    let output: Vec<CellSrc> = resolved
        .iter()
        .map(|(b, c)| match c {
            crate::aquery::ColRef::Key(k) => CellSrc::Key { block: *b, idx: *k },
            crate::aquery::ColRef::Agg(a) => CellSrc::Agg { block: *b, idx: *a },
        })
        .collect();
    let out_name = format!("{plan_id}_final");
    let cfg = Arc::new(FinalJoinCfg {
        datasets: block_datasets.clone(),
        joins,
        output,
    });
    let final_job = rapida_mapred::JobBuilder::new(format!("{engine}:final-join"))
        .input(block_datasets[0].clone())
        .mapper(Arc::new(FinalJoinFactory::new(cfg, dfs.clone())))
        .output(out_name.clone())
        .tag("final")
        .build();
    Ok(QueryPlan {
        engine,
        plan_id: plan_id.to_string(),
        jobs,
        fixups,
        final_job: Some(final_job),
        output_dataset: out_name,
        output: OutputKind::Rows,
    })
}

/// Monotonic plan-id generator: keeps dataset names unique within a shared
/// DFS across engines and queries.
pub fn next_plan_id(prefix: &str) -> String {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    format!("{prefix}{}", COUNTER.fetch_add(1, Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixup_synthesizes_single_all_group() {
        let dfs = SimDfs::new();
        let f = AllGroupFixup {
            dataset: "blk".into(),
            block_id: 1,
            aggs: vec![AggOp::Count, AggOp::Sum],
        };
        f.apply(&dfs);
        let ds = dfs.peek("blk").unwrap();
        assert_eq!(ds.records, 1);
        let rec = AggRec::decode(ds.iter_records().next().unwrap()).unwrap();
        assert_eq!(rec.values, vec![Some(0.0), None]);
        // Re-applying over a non-empty dataset is a no-op.
        f.apply(&dfs);
        assert_eq!(dfs.peek("blk").unwrap().records, 1);
    }

    #[test]
    fn plan_ids_are_unique() {
        let a = next_plan_id("x");
        let b = next_plan_id("x");
        assert_ne!(a, b);
    }

    #[test]
    fn agg_op_mapping() {
        assert_eq!(agg_op_of(AggFunc::Count), AggOp::Count);
        assert_eq!(agg_op_of(AggFunc::Avg), AggOp::Avg);
    }
}
