//! Batched multi-query optimization over ad-hoc query sets.
//!
//! The library's MQO machinery ([`crate::composite`], Hive (MQO)) rewrites
//! the blocks of *one* analytical query into a shared composite pattern.
//! The serving front end needs the same sharing across the queries of an
//! arrival batch: this module greedily partitions a batch into fusion
//! groups of mutually overlapping queries ([`fusion_groups`]), compiles
//! each group's blocks through the Hive MQO seam as one workflow
//! ([`plan_fused_group`]), and demultiplexes the per-block outputs back
//! into ordinary per-query plans ([`demux_member_plan`]) whose finishing
//! joins run against restamped copies of the shared block datasets.
//!
//! Soundness leans entirely on [`build_composite`]: a candidate joins a
//! group only when the composite builder accepts the union of the group's
//! blocks (same star structure, Table 2 α-conditions), which is exactly
//! the precondition under which the MQO rewriting is output-preserving.

use crate::aquery::AnalyticalQuery;
use crate::catalog::DataCatalog;
use crate::composite::{build_composite, CompositeOutcome};
use crate::engines::hive::{mqo_block_jobs, HiveConfig};
use crate::plan::{finish_plan, next_plan_id, PlanError, QueryPlan};
use rapida_mapred::{DatasetWriter, Job, SimDfs};
use rapida_ntga::AggRec;

/// Hard cap on combined blocks in one fusion group. Block ids are stamped
/// into [`AggRec::id`] as `u8`, and composite construction is quadratic in
/// stars — well before either limit bites, a wider batch stops paying.
pub const MAX_FUSED_BLOCKS: usize = 24;

/// Partition batch queries into fusion groups, greedily: each query joins
/// the first existing group whose accumulated blocks still form a valid
/// composite with it, else starts its own group. Singleton groups mean
/// "plan solo". Returned groups preserve input order (group by first
/// member, members ascending), so the grouping is deterministic.
pub fn fusion_groups(queries: &[AnalyticalQuery]) -> Vec<Vec<usize>> {
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut group_blocks: Vec<Vec<crate::aquery::GroupingBlock>> = Vec::new();
    for (qi, q) in queries.iter().enumerate() {
        let mut placed = false;
        for (g, blocks) in group_blocks.iter_mut().enumerate() {
            if blocks.len() + q.blocks.len() > MAX_FUSED_BLOCKS {
                continue;
            }
            let mut candidate = blocks.clone();
            candidate.extend(q.blocks.iter().cloned());
            if matches!(
                build_composite(&candidate),
                Ok(CompositeOutcome::Composite(_))
            ) {
                *blocks = candidate;
                groups[g].push(qi);
                placed = true;
                break;
            }
        }
        if !placed {
            groups.push(vec![qi]);
            group_blocks.push(q.blocks.clone());
        }
    }
    groups
}

/// The shared half of a fused group's execution: the MQO jobs over the
/// combined blocks, plus the bookkeeping to hand each member its slices.
pub struct FusedPlan {
    /// The shared jobs (composite materialization + per-block extraction
    /// and aggregation), to run once per group on the MR engine.
    pub jobs: Vec<Job>,
    /// Output dataset per *combined* block index; records are stamped with
    /// the combined index in [`AggRec::id`].
    pub block_datasets: Vec<String>,
    /// `member_offsets[m]` = first combined block index of member `m`.
    pub member_offsets: Vec<usize>,
    /// The compilation's plan id (intermediate dataset namespace).
    pub plan_id: String,
}

impl FusedPlan {
    /// Attach scan-cache keys to the shared jobs, by the same contract as
    /// [`QueryPlan::attach_scan_cache_keys`]: `group_sig` must fold in the
    /// engine configuration and every member query's canonical signature.
    pub fn attach_scan_cache_keys(&mut self, group_sig: &str) {
        for (slot, job) in self.jobs.iter_mut().enumerate() {
            let name = job.name.replace(&self.plan_id, "«P»");
            let output = job.output.replace(&self.plan_id, "«P»");
            let inputs: Vec<String> = job
                .inputs
                .iter()
                .map(|i| match rapida_storage::scan_class(i) {
                    Some(class) => format!("{i}#{class}"),
                    None => i.replace(&self.plan_id, "«P»"),
                })
                .collect();
            job.cache_key = Some(format!(
                "fused|{group_sig}|#{slot}|{name}->{output}<-[{}]",
                inputs.join(",")
            ));
        }
    }

    /// Every dataset the shared jobs write (for post-batch cleanup).
    pub fn intermediate_datasets(&self) -> Vec<String> {
        self.jobs.iter().map(|j| j.output.clone()).collect()
    }
}

/// Compile the shared jobs for one fusion group (≥ 2 members whose
/// combined blocks [`fusion_groups`] already validated). The combined
/// query's projection is irrelevant to block planning and left empty —
/// member projections live in their own finishing plans.
pub fn plan_fused_group(
    members: &[&AnalyticalQuery],
    config: &HiveConfig,
    cat: &DataCatalog,
) -> Result<FusedPlan, PlanError> {
    assert!(members.len() >= 2, "fused groups have at least two members");
    let mut blocks = Vec::new();
    let mut member_offsets = Vec::with_capacity(members.len());
    for q in members {
        member_offsets.push(blocks.len());
        blocks.extend(q.blocks.iter().cloned());
    }
    let combined = AnalyticalQuery {
        blocks,
        projection: Vec::new(),
    };
    let composite = match build_composite(&combined.blocks)? {
        CompositeOutcome::Composite(c) => c,
        CompositeOutcome::NotOverlapping(why) => {
            return Err(PlanError::Unsupported(format!(
                "fusion group lost overlap at planning time: {why}"
            )))
        }
    };
    let pid = next_plan_id("fb");
    let (jobs, block_datasets) = mqo_block_jobs(config, &combined, &composite, cat, pid.clone())?;
    Ok(FusedPlan {
        jobs,
        block_datasets,
        member_offsets,
        plan_id: pid,
    })
}

/// After the shared jobs have run, build one member's ordinary
/// [`QueryPlan`]: restamp its slice of the shared block datasets (filter
/// on the combined block id, rewrite to the member-local id) into private
/// datasets, then finish the plan — empty-ALL fixups, the final join, and
/// output decoding all run exactly as they would for a solo compilation.
pub fn demux_member_plan(
    fused: &FusedPlan,
    member: usize,
    aq: &AnalyticalQuery,
    engine: &'static str,
    dfs: &SimDfs,
    split_bytes: usize,
) -> Result<QueryPlan, PlanError> {
    let qpid = next_plan_id("dm");
    let offset = fused.member_offsets[member];
    let mut datasets = Vec::with_capacity(aq.blocks.len());
    for local in 0..aq.blocks.len() {
        let combined = offset + local;
        let dest = format!("{qpid}_b{local}");
        restamp(
            dfs,
            &fused.block_datasets[combined],
            combined as u8,
            local as u8,
            &dest,
            split_bytes,
        );
        datasets.push(dest);
    }
    finish_plan(engine, aq, Vec::new(), datasets, dfs, &qpid)
}

/// Copy the records of one combined block into a private dataset with the
/// member-local block id. Driver-side, like [`crate::plan::AllGroupFixup`]:
/// the demux moves final aggregates (small by construction), not scans.
fn restamp(dfs: &SimDfs, src: &str, from_id: u8, to_id: u8, dest: &str, split_bytes: usize) {
    let ds = dfs.peek(src).unwrap_or_default();
    let mut w = DatasetWriter::new(split_bytes);
    let mut buf = Vec::new();
    for rec in ds.iter_records() {
        let Some(mut r) = AggRec::decode(rec) else {
            continue;
        };
        if r.id != from_id {
            continue;
        }
        r.id = to_id;
        buf.clear();
        r.encode(&mut buf);
        w.push(&buf);
    }
    dfs.put(dest, w.finish());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aquery::extract;
    use rapida_datagen::{generate_bsbm, query, BsbmConfig};
    use rapida_mapred::Engine;
    use rapida_sparql::parse_query;

    fn aq_of(id: &str) -> AnalyticalQuery {
        extract(&parse_query(&query(id).sparql).expect("parse")).expect("extract")
    }

    #[test]
    fn identical_queries_fuse() {
        let qs = vec![aq_of("MG1"), aq_of("MG1")];
        let groups = fusion_groups(&qs);
        assert_eq!(groups, vec![vec![0, 1]]);
    }

    #[test]
    fn disjoint_queries_stay_solo() {
        // MG1 (product stars) and G5 share no star structure.
        let qs = vec![aq_of("MG1"), aq_of("G5")];
        let groups = fusion_groups(&qs);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], vec![0]);
        assert_eq!(groups[1], vec![1]);
    }

    #[test]
    fn grouping_is_deterministic_and_order_preserving() {
        let qs = vec![aq_of("MG1"), aq_of("G5"), aq_of("MG1"), aq_of("MG1")];
        let a = fusion_groups(&qs);
        let b = fusion_groups(&qs);
        assert_eq!(a, b);
        for g in &a {
            assert!(g.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn fused_member_matches_solo_run() {
        use crate::engines::hive::HiveMqo;
        use crate::plan::QueryEngine;

        let g = generate_bsbm(&BsbmConfig::tiny());
        let cat = DataCatalog::load(&g);
        let mr = Engine::pinned(cat.dfs.clone());

        let members = vec![aq_of("MG1"), aq_of("MG2")];
        let groups = fusion_groups(&members);
        if groups.len() != 1 {
            // The two templates happen not to fuse under this catalog's
            // composite rules — nothing to check here; the serve property
            // suite covers the solo path.
            return;
        }

        let cfg = HiveConfig::default();
        let refs: Vec<&AnalyticalQuery> = members.iter().collect();
        let fused = plan_fused_group(&refs, &cfg, &cat).expect("fused plan");
        mr.run_workflow(&fused.jobs);

        let solo_engine = HiveMqo::default();
        for (m, aq) in members.iter().enumerate() {
            let plan =
                demux_member_plan(&fused, m, aq, "Hive (MQO)", &cat.dfs, mr.split_bytes)
                    .expect("member plan");
            let (rel, _) = plan.execute(&mr, aq, &g.dict);

            let solo = solo_engine.plan(aq, &cat).expect("solo plan");
            let (srel, _) = solo.execute(&mr, aq, &g.dict);
            assert_eq!(
                rel.canonicalized(&g.dict),
                srel.canonicalized(&g.dict),
                "member {m} diverged from its solo run"
            );
        }
    }
}
