//! Overlap detection between graph patterns — Definitions 3.1 and 3.2.

use rapida_sparql::analysis::{role_equivalent, StarDecomposition, StarPattern};
use rapida_sparql::PropKey;

/// Def 3.1 — do two subject-rooted star patterns overlap?
///
/// Requires a non-empty intersection of property-key sets, and for every
/// `rdf:type`-with-constant pattern on either side a matching one (same
/// object) on the other.
pub fn stars_overlap(a: &StarPattern, b: &StarPattern) -> bool {
    let pa = a.prop_keys();
    let pb = b.prop_keys();
    if pa.intersection(&pb).next().is_none() {
        return false;
    }
    let type_keys = |s: &std::collections::BTreeSet<PropKey>| {
        s.iter().filter(|k| k.is_type_key()).cloned().collect::<Vec<_>>()
    };
    for tk in type_keys(&pa) {
        if !pb.contains(&tk) {
            return false;
        }
    }
    for tk in type_keys(&pb) {
        if !pa.contains(&tk) {
            return false;
        }
    }
    true
}

/// A verified overlap between two graph patterns: `mapping[i]` is the index
/// of the GP2 star matched to GP1 star `i`.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphOverlap {
    /// GP1-star → GP2-star mapping.
    pub mapping: Vec<usize>,
}

/// Def 3.2 — do two graph patterns overlap?
///
/// Searches for a bijective star mapping under which every star pair
/// overlaps (Def 3.1) and every join edge of either pattern has a
/// counterpart with role-equivalent join variables. Star counts ≤ 4 in the
/// paper's workloads, so the permutation search is exact and cheap.
pub fn graphs_overlap(gp1: &StarDecomposition, gp2: &StarDecomposition) -> Option<GraphOverlap> {
    if gp1.stars.len() != gp2.stars.len() {
        return None;
    }
    let n = gp1.stars.len();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut found: Option<Vec<usize>> = None;
    permute(&mut perm, 0, &mut |p| {
        if found.is_none() && mapping_valid(gp1, gp2, p) {
            found = Some(p.to_vec());
        }
    });
    found.map(|mapping| GraphOverlap { mapping })
}

fn permute(items: &mut Vec<usize>, k: usize, f: &mut dyn FnMut(&[usize])) {
    if k == items.len() {
        f(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, f);
        items.swap(k, i);
    }
}

fn mapping_valid(gp1: &StarDecomposition, gp2: &StarDecomposition, mapping: &[usize]) -> bool {
    // Every mapped star pair must overlap.
    for (i, &j) in mapping.iter().enumerate() {
        if !stars_overlap(&gp1.stars[i], &gp2.stars[j]) {
            return false;
        }
    }
    // Join edges must correspond with role-equivalent variables, both ways.
    if gp1.joins.len() != gp2.joins.len() {
        return false;
    }
    for j1 in &gp1.joins {
        let (a, b) = (j1.left.star, j1.right.star);
        let (ma, mb) = (mapping[a], mapping[b]);
        let matched = gp2.joins.iter().any(|j2| {
            let pair = (j2.left.star, j2.right.star);
            if pair == (ma, mb) {
                role_equivalent(&j1.left, &j2.left) && role_equivalent(&j1.right, &j2.right)
            } else if pair == (mb, ma) {
                role_equivalent(&j1.left, &j2.right) && role_equivalent(&j1.right, &j2.left)
            } else {
                false
            }
        });
        if !matched {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapida_sparql::analysis::decompose;
    use rapida_sparql::ast::TriplePattern;
    use rapida_sparql::parse_query;

    fn bgp(q: &str) -> Vec<TriplePattern> {
        parse_query(q)
            .unwrap()
            .select
            .pattern
            .triples()
            .into_iter()
            .cloned()
            .collect()
    }

    fn dec(q: &str) -> StarDecomposition {
        decompose(&bgp(q)).unwrap()
    }

    /// Fig. 3, AQ2: GP1 overlaps GP2.
    #[test]
    fn fig3_aq2_overlaps() {
        let gp1 = dec(
            "PREFIX ex: <http://x/>
             SELECT ?s1 { ?s1 a ex:PT18 . ?s2 ex:pr ?s1 ; ex:pc ?o1 ; ex:ve ?o2 . }",
        );
        let gp2 = dec(
            "PREFIX ex: <http://x/>
             SELECT ?s1 { ?s1 a ex:PT18 ; ex:pf ?o3 . ?s2 ex:pr ?s1 ; ex:pc ?o4 . }",
        );
        let ov = graphs_overlap(&gp1, &gp2).expect("AQ2 graph patterns overlap");
        // Star 0 (the PT18 star) maps to star 0, star 1 to star 1.
        assert_eq!(ov.mapping, vec![0, 1]);
    }

    /// Fig. 3, AQ3: object-subject vs object-object join — no overlap.
    #[test]
    fn fig3_aq3_does_not_overlap() {
        let gp1 = dec(
            "PREFIX ex: <http://x/>
             SELECT ?s3 { ?s3 ex:pr ?s1 ; ex:pc ?o5 ; ex:ve ?s4 . ?s4 ex:cn ?o6 . }",
        );
        let gp2 = dec(
            "PREFIX ex: <http://x/>
             SELECT ?s3 { ?s3 ex:pr ?s1 ; ex:pc ?o5 ; ex:ve ?o6 . ?s4 ex:cn ?o6 . }",
        );
        assert!(graphs_overlap(&gp1, &gp2).is_none());
    }

    #[test]
    fn stars_overlap_requires_shared_property() {
        let a = dec("PREFIX ex: <http://x/> SELECT ?s { ?s ex:a ?x ; ex:b ?y . }");
        let b = dec("PREFIX ex: <http://x/> SELECT ?s { ?s ex:c ?x . }");
        assert!(!stars_overlap(&a.stars[0], &b.stars[0]));
    }

    #[test]
    fn stars_overlap_requires_matching_type_objects() {
        let a = dec("PREFIX ex: <http://x/> SELECT ?s { ?s a ex:T1 ; ex:p ?x . }");
        let b = dec("PREFIX ex: <http://x/> SELECT ?s { ?s a ex:T2 ; ex:p ?x . }");
        assert!(
            !stars_overlap(&a.stars[0], &b.stars[0]),
            "different type objects must not overlap"
        );
        let c = dec("PREFIX ex: <http://x/> SELECT ?s { ?s a ex:T1 ; ex:p ?x ; ex:q ?y . }");
        assert!(stars_overlap(&a.stars[0], &c.stars[0]));
    }

    #[test]
    fn untyped_star_does_not_overlap_typed_star() {
        let a = dec("PREFIX ex: <http://x/> SELECT ?s { ?s a ex:T1 ; ex:p ?x . }");
        let b = dec("PREFIX ex: <http://x/> SELECT ?s { ?s ex:p ?x . }");
        assert!(!stars_overlap(&a.stars[0], &b.stars[0]));
    }

    #[test]
    fn different_star_counts_do_not_overlap() {
        let gp1 = dec("PREFIX ex: <http://x/> SELECT ?a { ?a ex:p ?b . ?b ex:q ?c . }");
        let gp2 = dec("PREFIX ex: <http://x/> SELECT ?a { ?a ex:p ?b . }");
        assert!(graphs_overlap(&gp1, &gp2).is_none());
    }

    /// Identical patterns overlap with the identity mapping.
    #[test]
    fn identical_patterns_overlap() {
        let q = "PREFIX ex: <http://x/>
                 SELECT ?g { ?g ex:geneSymbol ?gs . ?p ex:gene ?g ; ex:side_effect ?se . }";
        let gp1 = dec(q);
        let gp2 = dec(q);
        let ov = graphs_overlap(&gp1, &gp2).unwrap();
        assert_eq!(ov.mapping, vec![0, 1]);
    }

    /// Star order permutation is found: GP2 lists its stars in reverse.
    #[test]
    fn mapping_handles_permuted_star_order() {
        let gp1 = dec(
            "PREFIX ex: <http://x/>
             SELECT ?a { ?a ex:p ?b ; ex:x ?x1 . ?b ex:q ?c . }",
        );
        let gp2 = dec(
            "PREFIX ex: <http://x/>
             SELECT ?a { ?b ex:q ?c ; ex:r ?d . ?a ex:p ?b . }",
        );
        let ov = graphs_overlap(&gp1, &gp2).unwrap();
        assert_eq!(ov.mapping, vec![1, 0]);
    }
}
