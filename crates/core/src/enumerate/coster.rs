//! Physical-plan pricing: synthesize estimated [`JobMetrics`] for every job
//! of a compiled [`QueryPlan`] from the statistics-derived cardinality
//! context, and sum [`ClusterModel::job_time`] over them.
//!
//! The estimator never executes anything. Base-table input sizes are exact
//! (the VP / triplegroup datasets exist in the DFS at plan time);
//! intermediate sizes come from the producing job's tag — `"star u0 s1"`,
//! `"join u0 k2"`, `"agg b0"`, … — resolved against the [`CardCtx`] built
//! from the same statistics the memo search uses. The estimate is therefore
//! a pure function of (query, statistics, model): good enough to rank
//! alternatives for the dry-run shortlist, cheap enough to price dozens of
//! candidates.

use crate::catalog::DataCatalog;
use crate::plan::QueryPlan;
use rapida_mapred::{ClusterModel, Job, JobMetrics};
use std::collections::BTreeMap;

/// Bytes per encoded intermediate record when the input gives no signal.
const DEFAULT_REC_BYTES: f64 = 24.0;
/// Split size used to estimate map-task counts over intermediates.
const SPLIT_BYTES: f64 = 256.0 * 1024.0;

/// Cardinality context of one candidate plan: what each tagged job is
/// expected to emit.
#[derive(Debug, Clone, Default)]
pub struct CardCtx {
    /// `star_rows[u][s]` — rows of star `s` of planning unit `u`.
    pub star_rows: Vec<Vec<f64>>,
    /// `join_rows[u][k]` — rows after the `k`-th join cycle of unit `u`,
    /// following the candidate's effective edge order.
    pub join_rows: Vec<Vec<f64>>,
    /// Per block: rows feeding that block's aggregation.
    pub block_rows: Vec<f64>,
    /// Per block: estimated group count (NDV product capped by input rows).
    pub agg_rows: Vec<f64>,
}

impl CardCtx {
    fn star(&self, u: usize, s: usize) -> Option<f64> {
        self.star_rows.get(u)?.get(s).copied()
    }

    fn join(&self, u: usize, k: usize) -> Option<f64> {
        self.join_rows.get(u)?.get(k).copied()
    }

    /// Expected output rows of a job given its tag; `None` for untagged or
    /// unrecognized jobs (treated as pass-through).
    pub fn rows_for_tag(&self, tag: &str) -> Option<f64> {
        let mut parts = tag.split(' ');
        match parts.next()? {
            "star" => {
                let u = parse_idx(parts.next()?, 'u')?;
                let s = parse_idx(parts.next()?, 's')?;
                self.star(u, s)
            }
            "join" => {
                let u = parse_idx(parts.next()?, 'u')?;
                let k = parse_idx(parts.next()?, 'k')?;
                self.join(u, k)
            }
            "agg" => {
                let b = parse_idx(parts.next()?, 'b')?;
                self.agg_rows.get(b).copied()
            }
            "agg-par" | "agg-shared" => Some(self.agg_rows.iter().sum()),
            "extract" => {
                let b = parse_idx(parts.next()?, 'b')?;
                self.block_rows.get(b).copied()
            }
            "final" => Some(self.agg_rows.iter().cloned().fold(0.0, f64::max)),
            _ => None,
        }
    }
}

fn parse_idx(token: &str, prefix: char) -> Option<usize> {
    token.strip_prefix(prefix)?.parse().ok()
}

/// Estimated simulated cost of a plan, in model seconds.
pub fn estimate_plan(
    model: &ClusterModel,
    cat: &DataCatalog,
    plan: &QueryPlan,
    ctx: &CardCtx,
) -> f64 {
    // Intermediate sizes recorded as jobs are walked: name -> (rows, bytes).
    let mut inter: BTreeMap<&str, (f64, f64)> = BTreeMap::new();
    let mut total = 0.0;
    for job in plan.jobs.iter().chain(plan.final_job.iter()) {
        let m = estimate_job(cat, job, ctx, &inter);
        total += model.job_time(&m);
        inter.insert(
            job.output.as_str(),
            (m.output_records as f64, m.output_bytes as f64),
        );
    }
    total
}

fn estimate_job(
    cat: &DataCatalog,
    job: &Job,
    ctx: &CardCtx,
    inter: &BTreeMap<&str, (f64, f64)>,
) -> JobMetrics {
    let mut input_rows = 0.0;
    let mut input_bytes = 0.0;
    let mut splits = 0usize;
    for name in &job.inputs {
        if let Some((rows, bytes)) = inter.get(name.as_str()) {
            input_rows += rows;
            input_bytes += bytes;
            splits += (bytes / SPLIT_BYTES).ceil().max(1.0) as usize;
        } else if let Some(ds) = cat.dfs.peek(name) {
            input_rows += ds.records as f64;
            input_bytes += ds.total_bytes() as f64;
            splits += ds.blocks.len().max(1);
        }
    }
    let rec_bytes = if input_rows > 0.0 {
        (input_bytes / input_rows).clamp(8.0, 64.0)
    } else {
        DEFAULT_REC_BYTES
    };
    let out_rows = ctx.rows_for_tag(&job.tag).unwrap_or(input_rows).max(0.0);
    let out_bytes = out_rows * rec_bytes;

    let mut m = JobMetrics {
        name: job.name.clone(),
        map_only: job.is_map_only(),
        map_tasks: splits.max(1),
        input_bytes: input_bytes as u64,
        input_records: input_rows as u64,
        output_records: out_rows as u64,
        output_bytes: out_bytes as u64,
        ..Default::default()
    };
    if !m.map_only {
        // One map-output kv per input record; aggregation tags assume the
        // map-side combiner caps each mapper's emission at the group count.
        let emitted = input_rows;
        let shuffled = if job.tag.starts_with("agg") {
            emitted.min(out_rows * m.map_tasks as f64)
        } else {
            emitted
        };
        m.map_output_records = emitted as u64;
        m.map_output_bytes = (emitted * rec_bytes) as u64;
        m.shuffle_records = shuffled as u64;
        m.shuffle_bytes = (shuffled * rec_bytes) as u64;
        m.reduce_tasks = (shuffled as usize).clamp(1, job.num_reducers.max(1));
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_resolve_against_the_context() {
        let ctx = CardCtx {
            star_rows: vec![vec![100.0, 50.0], vec![7.0]],
            join_rows: vec![vec![80.0, 20.0]],
            block_rows: vec![80.0, 7.0],
            agg_rows: vec![10.0, 3.0],
        };
        assert_eq!(ctx.rows_for_tag("star u0 s1"), Some(50.0));
        assert_eq!(ctx.rows_for_tag("star u1 s0"), Some(7.0));
        assert_eq!(ctx.rows_for_tag("join u0 k1"), Some(20.0));
        assert_eq!(ctx.rows_for_tag("agg b1"), Some(3.0));
        assert_eq!(ctx.rows_for_tag("agg-par"), Some(13.0));
        assert_eq!(ctx.rows_for_tag("extract b0"), Some(80.0));
        assert_eq!(ctx.rows_for_tag("final"), Some(10.0));
        assert_eq!(ctx.rows_for_tag(""), None);
        assert_eq!(ctx.rows_for_tag("join u9 k0"), None);
    }
}
