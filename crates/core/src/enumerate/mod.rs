//! Cost-based plan enumeration: a mini-Volcano optimizer over the engines'
//! physical plan families.
//!
//! The enumerator explores a deterministic candidate space per family —
//! star-grouping alternatives (naive vs composite/MQO shapes), α-join
//! placement and parallel-vs-sequential aggregation for the NTGA engines,
//! map-join vs shuffle-join thresholds and aggregation placement for the
//! Hive engines, plus memo-searched star-join orders ([`memo`]) — compiles
//! each alternative to an ordinary [`QueryPlan`] through the *fixed*
//! engines, and prices it in two phases:
//!
//! 1. **Estimate** ([`coster`]): synthesize [`JobMetrics`] for every job
//!    from per-predicate statistics and price them with
//!    [`ClusterModel::job_time`]. Pure function of (query, stats, model).
//! 2. **Dry-run**: the shortlist of cheapest estimates — always including
//!    the family's fixed incumbent plans — is executed on the deterministic
//!    pinned simulator and re-priced from *measured* metrics via
//!    [`ClusterModel::workflow_time`]. The measured-cheapest plan wins.
//!
//! Because every incumbent is in the dry-run shortlist, the chosen plan's
//! measured simulated cost is never worse than the fixed plan's — the
//! invariant `tests/prop_plan_choice.rs` pins. Candidate order, the memo,
//! and the simulator are all deterministic, so the choice is a pure
//! function of (query, statistics, cluster model).

pub mod coster;
pub mod memo;

use crate::aquery::{resolve_block_var, AnalyticalQuery, BlockVarBinding};
use crate::catalog::DataCatalog;
use crate::composite::CompositeOutcome;
use crate::engines::hive::{is_permutation, HiveConfig, HiveMqo, HiveNaive};
use crate::engines::rapid::{RapidAnalytics, RapidPlus};
use crate::plan::{PlanError, QueryEngine, QueryPlan};
use coster::CardCtx;
use memo::UnitGraph;
use rapida_mapred::{ClusterModel, Engine};
use rapida_rdf::TermId;
use rapida_sparql::analysis::StarDecomposition;
use rapida_sparql::ast::Var;

/// How many non-incumbent candidates advance from the estimate phase to the
/// measured dry-run.
const SHORTLIST: usize = 4;

/// The two physical plan families (matching the paper's system pairs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Relational VP plans: Hive (Naive) and Hive (MQO) shapes.
    Hive,
    /// NTGA triplegroup plans: RAPID+ and RAPIDAnalytics shapes.
    Rapid,
}

/// One explored alternative, reported for experiments and tests.
#[derive(Debug, Clone)]
pub struct CandidateReport {
    /// Stable candidate label (shape + knobs).
    pub name: String,
    /// Is this one of the family's fixed default plans?
    pub incumbent: bool,
    /// MR cycles of the compiled plan.
    pub cycles: usize,
    /// Phase-1 estimated cost, model seconds.
    pub estimated_s: f64,
    /// Phase-2 measured cost (dry-run on the pinned simulator); `None` when
    /// the candidate did not make the shortlist.
    pub measured_s: Option<f64>,
}

/// The enumerator's outcome: the winning plan plus the full exploration
/// record.
pub struct Enumerated {
    /// The chosen plan, freshly compiled (never executed).
    pub plan: QueryPlan,
    /// Label of the winning candidate.
    pub choice: String,
    /// The winner's phase-1 estimate, model seconds.
    pub estimated_s: f64,
    /// The winner's measured dry-run cost, model seconds.
    pub measured_s: f64,
    /// Every explored candidate, in exploration order.
    pub candidates: Vec<CandidateReport>,
}

/// A candidate's compilation recipe: a fixed-engine configuration.
#[derive(Debug, Clone)]
enum Spec {
    HiveNaive(HiveConfig),
    HiveMqo(HiveConfig),
    RapidPlus(RapidPlus),
    Rapida(RapidAnalytics),
}

#[derive(Debug, Clone)]
struct Candidate {
    name: String,
    incumbent: bool,
    spec: Spec,
}

impl Candidate {
    fn compile(&self, aq: &AnalyticalQuery, cat: &DataCatalog) -> Result<QueryPlan, PlanError> {
        match &self.spec {
            Spec::HiveNaive(cfg) => HiveNaive {
                config: cfg.clone(),
                cost_model: None,
            }
            .plan(aq, cat),
            Spec::HiveMqo(cfg) => HiveMqo {
                config: cfg.clone(),
                cost_model: None,
            }
            .plan(aq, cat),
            Spec::RapidPlus(e) => e.plan(aq, cat),
            Spec::Rapida(e) => e.plan(aq, cat),
        }
    }

    /// The candidate's cardinality context (depends on its plan shape and
    /// its effective join orders).
    fn ctx(&self, aq: &AnalyticalQuery, cat: &DataCatalog) -> Result<CardCtx, PlanError> {
        match &self.spec {
            Spec::HiveNaive(cfg) => ctx_per_block(cat, aq, &cfg.join_orders),
            Spec::RapidPlus(e) => ctx_per_block(cat, aq, &e.join_orders),
            Spec::HiveMqo(cfg) => match composite_of(aq)? {
                Some(c) => {
                    let dec0 = aq.blocks[0].decomposition()?;
                    let unit = UnitGraph::from_dec(cat, &dec0);
                    ctx_composite(cat, aq, &c, unit, cfg.join_orders.first())
                }
                None => ctx_per_block(cat, aq, &cfg.join_orders),
            },
            Spec::Rapida(e) => match composite_of(aq)? {
                Some(c) => {
                    let unit = memo::unit_from_composite(cat, &c);
                    ctx_composite(cat, aq, &c, unit, e.join_orders.first())
                }
                None => ctx_per_block(cat, aq, &e.join_orders),
            },
        }
    }
}

fn composite_of(
    aq: &AnalyticalQuery,
) -> Result<Option<crate::composite::CompositePattern>, PlanError> {
    if aq.blocks.len() < 2 {
        return Ok(None);
    }
    match crate::composite::build_composite(&aq.blocks)? {
        CompositeOutcome::Composite(c) => Ok(Some(c)),
        CompositeOutcome::NotOverlapping(_) => Ok(None),
    }
}

/// Effective edge order of one unit: the configured permutation when valid,
/// the planner's greedy default otherwise.
fn effective_order(unit: &UnitGraph, cfg: Option<&Vec<usize>>) -> Vec<usize> {
    match cfg {
        Some(ord) if is_permutation(ord, unit.edges.len()) => ord.clone(),
        _ => unit.greedy_order(),
    }
}

/// NDV of a grouping variable within one unit graph. `remap` translates the
/// block-local star index into the unit's star index.
fn group_ndv(
    cat: &DataCatalog,
    dec: &StarDecomposition,
    unit: &UnitGraph,
    remap: &dyn Fn(usize) -> usize,
    v: &Var,
) -> f64 {
    match resolve_block_var(dec, v) {
        Ok(BlockVarBinding::Subject { star }) => unit
            .stars
            .get(remap(star))
            .map(|s| s.subjects)
            .unwrap_or(1.0),
        Ok(BlockVarBinding::ObjectOf { prop, .. }) => {
            let pid = cat.id_of(&prop.prop);
            cat.pstats
                .pred(TermId(pid))
                .map(|p| p.ndv_objects as f64)
                .unwrap_or(1.0)
        }
        Err(_) => 1.0,
    }
}

/// Context for per-block plan shapes (Hive Naive, RAPID+): one planning
/// unit per grouping block.
fn ctx_per_block(
    cat: &DataCatalog,
    aq: &AnalyticalQuery,
    orders: &[Vec<usize>],
) -> Result<CardCtx, PlanError> {
    let mut ctx = CardCtx::default();
    for (b, block) in aq.blocks.iter().enumerate() {
        let dec = block.decomposition()?;
        let unit = UnitGraph::from_dec(cat, &dec);
        let order = effective_order(&unit, orders.get(b));
        let prefix = unit.prefix_rows(&order);
        let rows = prefix
            .last()
            .copied()
            .unwrap_or_else(|| unit.stars.first().map(|s| s.rows).unwrap_or(0.0));
        let identity = |s: usize| s;
        let groups = if block.group_by.is_empty() {
            1.0
        } else {
            block
                .group_by
                .iter()
                .map(|v| group_ndv(cat, &dec, &unit, &identity, v))
                .product::<f64>()
                .min(rows.max(1.0))
        };
        ctx.star_rows.push(unit.stars.iter().map(|s| s.rows).collect());
        ctx.join_rows.push(prefix);
        ctx.block_rows.push(rows);
        ctx.agg_rows.push(groups);
    }
    Ok(ctx)
}

/// Context for composite plan shapes (Hive MQO, RAPIDAnalytics): one shared
/// planning unit; every block reads the composite intermediate.
fn ctx_composite(
    cat: &DataCatalog,
    aq: &AnalyticalQuery,
    c: &crate::composite::CompositePattern,
    unit: UnitGraph,
    order_cfg: Option<&Vec<usize>>,
) -> Result<CardCtx, PlanError> {
    let order = effective_order(&unit, order_cfg);
    let prefix = unit.prefix_rows(&order);
    let rows = prefix
        .last()
        .copied()
        .unwrap_or_else(|| unit.stars.first().map(|s| s.rows).unwrap_or(0.0));
    let mut ctx = CardCtx {
        star_rows: vec![unit.stars.iter().map(|s| s.rows).collect()],
        join_rows: vec![prefix],
        ..CardCtx::default()
    };
    for (b, block) in aq.blocks.iter().enumerate() {
        let dec = block.decomposition()?;
        let map = &c.star_map[b];
        let remap = |s: usize| map.get(s).copied().unwrap_or(s);
        let groups = if block.group_by.is_empty() {
            1.0
        } else {
            block
                .group_by
                .iter()
                .map(|v| group_ndv(cat, &dec, &unit, &remap, v))
                .product::<f64>()
                .min(rows.max(1.0))
        };
        ctx.block_rows.push(rows);
        ctx.agg_rows.push(groups);
    }
    Ok(ctx)
}

fn fmt_order(orders: &[Vec<usize>]) -> String {
    if orders.iter().all(|o| o.is_empty()) {
        "default".into()
    } else {
        let per: Vec<String> = orders
            .iter()
            .map(|o| {
                o.iter()
                    .map(|i| i.to_string())
                    .collect::<Vec<_>>()
                    .join("·")
            })
            .collect();
        per.join("/")
    }
}

/// Memo-searched edge orders for the per-block units. Empty entries mean
/// "keep the default"; `None` when no unit has a reorderable join tree.
fn memo_orders_per_block(
    cat: &DataCatalog,
    aq: &AnalyticalQuery,
) -> Result<Option<Vec<Vec<usize>>>, PlanError> {
    let mut orders = Vec::with_capacity(aq.blocks.len());
    let mut any = false;
    for block in &aq.blocks {
        let dec = block.decomposition()?;
        let unit = UnitGraph::from_dec(cat, &dec);
        match unit.best_order() {
            Some(ord) if ord != unit.greedy_order() => {
                orders.push(ord);
                any = true;
            }
            _ => orders.push(Vec::new()),
        }
    }
    Ok(if any { Some(orders) } else { None })
}

fn hive_candidates(
    aq: &AnalyticalQuery,
    cat: &DataCatalog,
) -> Result<Vec<Candidate>, PlanError> {
    let multi = aq.blocks.len() >= 2;
    let mut cands = Vec::new();
    // Incumbents: the fixed default shapes, always dry-run.
    cands.push(Candidate {
        name: "hive-naive (fixed)".into(),
        incumbent: true,
        spec: Spec::HiveNaive(HiveConfig::default()),
    });
    if multi {
        cands.push(Candidate {
            name: "hive-mqo (fixed)".into(),
            incumbent: true,
            spec: Spec::HiveMqo(HiveConfig::default()),
        });
    }

    let naive_memo = memo_orders_per_block(cat, aq)?;
    let mqo_memo: Option<Vec<Vec<usize>>> = match composite_of(aq)? {
        Some(_) => {
            let dec0 = aq.blocks[0].decomposition()?;
            let unit = UnitGraph::from_dec(cat, &dec0);
            match unit.best_order() {
                Some(ord) if ord != unit.greedy_order() => Some(vec![ord]),
                _ => None,
            }
        }
        None => None,
    };

    let default = HiveConfig::default();
    for mqo in [false, true] {
        if mqo && !multi {
            continue;
        }
        let memo_orders = if mqo { &mqo_memo } else { &naive_memo };
        let mut ord_variants: Vec<Option<&Vec<Vec<usize>>>> = vec![None];
        if memo_orders.is_some() {
            ord_variants.push(memo_orders.as_ref());
        }
        for &thr in &[0usize, default.map_join_threshold, 1 << 20] {
            for &msa in &[true, false] {
                for &extvp in &[true, false] {
                    for &ord in &ord_variants {
                        if thr == default.map_join_threshold && msa && extvp && ord.is_none() {
                            continue; // that's the incumbent
                        }
                        let cfg = HiveConfig {
                            map_join_threshold: thr,
                            map_side_agg: msa,
                            use_extvp: extvp,
                            join_orders: ord.cloned().unwrap_or_default(),
                        };
                        let name = format!(
                            "hive-{} mj={thr} msa={} extvp={} ord={}",
                            if mqo { "mqo" } else { "naive" },
                            if msa { "on" } else { "off" },
                            if extvp { "on" } else { "off" },
                            fmt_order(&cfg.join_orders),
                        );
                        cands.push(Candidate {
                            name,
                            incumbent: false,
                            spec: if mqo {
                                Spec::HiveMqo(cfg)
                            } else {
                                Spec::HiveNaive(cfg)
                            },
                        });
                    }
                }
            }
        }
    }
    Ok(cands)
}

fn rapid_candidates(
    aq: &AnalyticalQuery,
    cat: &DataCatalog,
) -> Result<Vec<Candidate>, PlanError> {
    let mut cands = Vec::new();
    cands.push(Candidate {
        name: "rapid-plus (fixed)".into(),
        incumbent: true,
        spec: Spec::RapidPlus(RapidPlus::default()),
    });
    cands.push(Candidate {
        name: "rapida (fixed)".into(),
        incumbent: true,
        spec: Spec::Rapida(RapidAnalytics::default()),
    });

    // Aggregation-placement and α-join ablations of the analytics shape.
    for (alpha, par, msc) in [
        (true, false, true),
        (false, true, true),
        (false, false, true),
        (true, true, false),
    ] {
        cands.push(Candidate {
            name: format!(
                "rapida alpha={} par={} msc={}",
                if alpha { "on" } else { "off" },
                if par { "on" } else { "off" },
                if msc { "on" } else { "off" }
            ),
            incumbent: false,
            spec: Spec::Rapida(RapidAnalytics {
                map_side_combine: msc,
                alpha_pruning: alpha,
                parallel_agg: par,
                ..Default::default()
            }),
        });
    }
    cands.push(Candidate {
        name: "rapid-plus msc=off".into(),
        incumbent: false,
        spec: Spec::RapidPlus(RapidPlus {
            map_side_combine: false,
            ..Default::default()
        }),
    });

    // ExtVP subject-gate ablations: the gates trade plan-time set loads for
    // map-side group drops, so the enumerator prices both sides.
    cands.push(Candidate {
        name: "rapid-plus extvp=off".into(),
        incumbent: false,
        spec: Spec::RapidPlus(RapidPlus {
            use_extvp: false,
            ..Default::default()
        }),
    });
    cands.push(Candidate {
        name: "rapida extvp=off".into(),
        incumbent: false,
        spec: Spec::Rapida(RapidAnalytics {
            use_extvp: false,
            ..Default::default()
        }),
    });

    // Memo-searched join orders.
    if let Some(orders) = memo_orders_per_block(cat, aq)? {
        cands.push(Candidate {
            name: format!("rapid-plus ord={}", fmt_order(&orders)),
            incumbent: false,
            spec: Spec::RapidPlus(RapidPlus {
                join_orders: orders,
                ..Default::default()
            }),
        });
    }
    if let Some(c) = composite_of(aq)? {
        let unit = memo::unit_from_composite(cat, &c);
        if let Some(ord) = unit.best_order() {
            if ord != unit.greedy_order() {
                let orders = vec![ord];
                cands.push(Candidate {
                    name: format!("rapida ord={}", fmt_order(&orders)),
                    incumbent: false,
                    spec: Spec::Rapida(RapidAnalytics {
                        join_orders: orders,
                        ..Default::default()
                    }),
                });
            }
        }
    }
    Ok(cands)
}

/// Enumerate, price, dry-run and choose the cheapest plan of `family` for
/// this query under `model`. See the module docs for the two-phase scheme
/// and the determinism / never-worse guarantees.
pub fn enumerate_best(
    family: Family,
    aq: &AnalyticalQuery,
    cat: &DataCatalog,
    model: &ClusterModel,
) -> Result<Enumerated, PlanError> {
    let cands = match family {
        Family::Hive => hive_candidates(aq, cat)?,
        Family::Rapid => rapid_candidates(aq, cat)?,
    };

    // Phase 1: compile + estimate every candidate. Incumbent compilation
    // failures are real errors; exotic knob combinations that fail to
    // compile are silently dropped.
    struct Scored {
        idx: usize,
        est: f64,
        plan: QueryPlan,
    }
    let mut scored: Vec<Scored> = Vec::with_capacity(cands.len());
    for (idx, cand) in cands.iter().enumerate() {
        let plan = match cand.compile(aq, cat) {
            Ok(p) => p,
            Err(e) if cand.incumbent => return Err(e),
            Err(_) => continue,
        };
        let ctx = cand.ctx(aq, cat)?;
        let est = coster::estimate_plan(model, cat, &plan, &ctx);
        scored.push(Scored { idx, est, plan });
    }
    if scored.is_empty() {
        return Err(PlanError::Unsupported(
            "plan enumeration produced no candidates".into(),
        ));
    }

    // Shortlist: the SHORTLIST cheapest estimates plus every incumbent.
    let mut by_est: Vec<usize> = (0..scored.len()).collect();
    by_est.sort_by(|&a, &b| {
        scored[a]
            .est
            .partial_cmp(&scored[b].est)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(scored[a].idx.cmp(&scored[b].idx))
    });
    let mut shortlist: Vec<usize> = by_est.into_iter().take(SHORTLIST).collect();
    for (i, s) in scored.iter().enumerate() {
        if cands[s.idx].incumbent && !shortlist.contains(&i) {
            shortlist.push(i);
        }
    }
    shortlist.sort_unstable(); // dry-run in exploration order

    // Phase 2: measured dry-runs on the deterministic pinned simulator.
    let mr = Engine::pinned(cat.dfs.clone());
    let mut measured: Vec<(usize, f64)> = Vec::with_capacity(shortlist.len());
    for &i in &shortlist {
        let plan = &scored[i].plan;
        let (_rel, wf) = plan.execute(&mr, aq, &cat.dict);
        let t = model.workflow_time(&wf);
        plan.cleanup(&cat.dfs);
        cat.dfs.remove(&plan.output_dataset);
        measured.push((i, t));
    }

    // Choose: minimum measured cost; ties prefer incumbents, then
    // exploration order.
    let &(win, win_t) = measured
        .iter()
        .min_by(|(a, ta), (b, tb)| {
            ta.partial_cmp(tb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| {
                    let ia = cands[scored[*a].idx].incumbent;
                    let ib = cands[scored[*b].idx].incumbent;
                    ib.cmp(&ia) // incumbent first
                })
                .then(scored[*a].idx.cmp(&scored[*b].idx))
        })
        .expect("shortlist is non-empty");

    let reports: Vec<CandidateReport> = scored
        .iter()
        .enumerate()
        .map(|(i, s)| CandidateReport {
            name: cands[s.idx].name.clone(),
            incumbent: cands[s.idx].incumbent,
            cycles: s.plan.cycles(),
            estimated_s: s.est,
            measured_s: measured.iter().find(|(j, _)| *j == i).map(|(_, t)| *t),
        })
        .collect();

    // Re-compile the winner fresh (its dry-run plan already executed once;
    // factories may hold caches) and stamp the cost-based engine name.
    let mut plan = cands[scored[win].idx].compile(aq, cat)?;
    plan.engine = match family {
        Family::Hive => "Hive (cost-based)",
        Family::Rapid => "RAPID (cost-based)",
    };
    Ok(Enumerated {
        plan,
        choice: cands[scored[win].idx].name.clone(),
        estimated_s: scored[win].est,
        measured_s: win_t,
        candidates: reports,
    })
}
