//! Join-order search over one planning unit's star graph: a tiny memo of
//! star subsets (the Volcano/Cascades "group" idea specialized to the
//! acyclic star-join trees the engines support), plus the cardinality
//! estimates that price them.
//!
//! Everything here is deterministic: star and edge estimates come from the
//! sorted [`rapida_storage::StatsCatalog`], the memo is a `BTreeMap` keyed
//! by sorted star subsets, edges are explored in index order, and ties keep
//! the first (lowest-index) alternative — so the best order is a pure
//! function of (query, statistics).

use crate::catalog::{DataCatalog, MISSING_ID};
use rapida_rdf::TermId;
use rapida_sparql::analysis::{PropKey, Role, StarDecomposition, StarPattern};
use rapida_sparql::ast::PatternTerm;
use std::collections::BTreeMap;

/// Estimated size of one star pattern.
#[derive(Debug, Clone, Copy)]
pub struct StarEst {
    /// Distinct subjects satisfying every triple pattern (the star's key
    /// NDV on the subject side).
    pub subjects: f64,
    /// Result rows: subjects × per-subject multiplicity of each
    /// variable-object triple (a subject with two `feature` objects yields
    /// two rows).
    pub rows: f64,
}

/// One join edge of a unit graph, with the key NDV used by the
/// independence-assumption join estimate `rows_l · rows_r / ndv`.
#[derive(Debug, Clone, Copy)]
pub struct UnitEdge {
    /// Left star index.
    pub l: usize,
    /// Right star index.
    pub r: usize,
    /// Estimated distinct join-key values (min over both sides).
    pub key_ndv: f64,
}

/// The logical join graph of one planning unit — a grouping block, or the
/// composite pattern the MQO rewrites build.
#[derive(Debug, Clone)]
pub struct UnitGraph {
    /// Per-star estimates.
    pub stars: Vec<StarEst>,
    /// Join edges, in the planner's edge order (indexes into this vector
    /// are what `join_orders` permutes).
    pub edges: Vec<UnitEdge>,
}

impl UnitGraph {
    /// Build the unit graph of one block's star decomposition.
    pub fn from_dec(cat: &DataCatalog, dec: &StarDecomposition) -> UnitGraph {
        let stars: Vec<StarEst> = dec.stars.iter().map(|s| star_est(cat, s)).collect();
        let edges = dec
            .joins
            .iter()
            .map(|j| {
                let ndv_of = |side: &rapida_sparql::analysis::JoinSide| -> f64 {
                    match side.role {
                        Role::Subject => stars[side.star].subjects,
                        _ => side
                            .prop
                            .as_ref()
                            .and_then(|p| pred_of(cat, p))
                            .map(|ps| ps.ndv_objects as f64)
                            .unwrap_or(1.0),
                    }
                };
                UnitEdge {
                    l: j.left.star,
                    r: j.right.star,
                    key_ndv: ndv_of(&j.left).min(ndv_of(&j.right)).max(1.0),
                }
            })
            .collect();
        UnitGraph { stars, edges }
    }

    /// Estimated rows of joining two relations on a key with `ndv` distinct
    /// values (textbook independence assumption).
    pub fn join_rows(l_rows: f64, r_rows: f64, ndv: f64) -> f64 {
        l_rows * r_rows / ndv.max(1.0)
    }

    /// Rows after each join step when edges are consumed in `order`
    /// (`result[k]` = rows of the intermediate produced by the `k`-th join
    /// cycle). Falls back to each edge's own estimate when `order` visits a
    /// disconnected edge.
    pub fn prefix_rows(&self, order: &[usize]) -> Vec<f64> {
        let mut joined: Vec<usize> = Vec::new();
        let mut rows = 0.0;
        let mut out = Vec::with_capacity(order.len());
        for &ei in order {
            let e = &self.edges[ei];
            if joined.is_empty() {
                joined.push(e.l);
                joined.push(e.r);
                rows = Self::join_rows(self.stars[e.l].rows, self.stars[e.r].rows, e.key_ndv);
            } else {
                let new = if joined.contains(&e.l) { e.r } else { e.l };
                if !joined.contains(&new) {
                    joined.push(new);
                }
                rows = Self::join_rows(rows, self.stars[new].rows, e.key_ndv);
            }
            out.push(rows);
        }
        out
    }

    /// The engines' default edge order: first edge first, then repeatedly
    /// the lowest-index edge connecting the joined set to a new star.
    pub fn greedy_order(&self) -> Vec<usize> {
        let n = self.edges.len();
        let mut joined: Vec<usize> = Vec::new();
        let mut used = vec![false; n];
        let mut order = Vec::with_capacity(n);
        while order.len() < n {
            let pick = if joined.is_empty() {
                Some(0)
            } else {
                (0..n).find(|&i| {
                    !used[i]
                        && (joined.contains(&self.edges[i].l)
                            != joined.contains(&self.edges[i].r))
                })
            };
            let Some(i) = pick else { break };
            used[i] = true;
            let e = &self.edges[i];
            for s in [e.l, e.r] {
                if !joined.contains(&s) {
                    joined.push(s);
                }
            }
            order.push(i);
        }
        order
    }

    /// The cheapest connected edge order by estimated cumulative
    /// intermediate cardinality, found by dynamic programming over star
    /// subsets. `None` when the unit has fewer than two edges (nothing to
    /// reorder) or the graph is disconnected/cyclic beyond the engines'
    /// left-deep subset.
    pub fn best_order(&self) -> Option<Vec<usize>> {
        if self.edges.len() < 2 {
            return None;
        }

        #[derive(Clone)]
        struct Group {
            cost: f64,
            rows: f64,
            order: Vec<usize>,
        }
        // Memo of explored groups, keyed by the sorted star subset — the
        // deduplication that makes this a memo rather than a plain
        // permutation sweep.
        let mut memo: BTreeMap<Vec<usize>, Group> = BTreeMap::new();

        // Seed: every edge as a first join, in index order.
        for (i, e) in self.edges.iter().enumerate() {
            let rows = Self::join_rows(self.stars[e.l].rows, self.stars[e.r].rows, e.key_ndv);
            let mut key = vec![e.l, e.r];
            key.sort_unstable();
            let cand = Group {
                cost: rows,
                rows,
                order: vec![i],
            };
            match memo.get(&key) {
                Some(g) if g.cost <= cand.cost => {}
                _ => {
                    memo.insert(key, cand);
                }
            }
        }

        // Expand each group with every connecting edge until the full star
        // set is covered. Iterating a BTreeMap snapshot per size keeps the
        // exploration order independent of insertion order.
        for _ in 2..self.stars.len() {
            let snapshot: Vec<(Vec<usize>, Group)> =
                memo.iter().map(|(k, g)| (k.clone(), g.clone())).collect();
            for (key, g) in snapshot {
                for (i, e) in self.edges.iter().enumerate() {
                    if g.order.contains(&i) {
                        continue;
                    }
                    let inside_l = key.binary_search(&e.l).is_ok();
                    let inside_r = key.binary_search(&e.r).is_ok();
                    if inside_l == inside_r {
                        continue; // disconnected or cycle-closing edge
                    }
                    let new = if inside_l { e.r } else { e.l };
                    let rows = Self::join_rows(g.rows, self.stars[new].rows, e.key_ndv);
                    let mut nkey = key.clone();
                    nkey.push(new);
                    nkey.sort_unstable();
                    let mut order = g.order.clone();
                    order.push(i);
                    let cand = Group {
                        cost: g.cost + rows,
                        rows,
                        order,
                    };
                    match memo.get(&nkey) {
                        Some(old) if old.cost <= cand.cost => {}
                        _ => {
                            memo.insert(nkey, cand);
                        }
                    }
                }
            }
        }

        let full: Vec<usize> = (0..self.stars.len()).collect();
        memo.get(&full)
            .filter(|g| g.order.len() == self.edges.len())
            .map(|g| g.order.clone())
    }
}

fn pred_of<'a>(
    cat: &'a DataCatalog,
    key: &PropKey,
) -> Option<&'a rapida_storage::PredStat> {
    let pid = cat.id_of(&key.prop);
    if pid == MISSING_ID {
        return None;
    }
    cat.pstats.pred(TermId(pid))
}

/// Estimate one star from the statistics catalog: subjects = min over the
/// triple patterns' candidate-subject counts, rows = subjects × the product
/// of variable-object multiplicities.
pub fn star_est(cat: &DataCatalog, star: &StarPattern) -> StarEst {
    let mut subjects = f64::INFINITY;
    let mut mult = 1.0;
    for tp in &star.triples {
        let Some(key) = PropKey::of(tp) else { continue };
        let cand = if let Some(obj) = &key.type_object {
            let oid = cat.id_of(obj);
            if oid == MISSING_ID {
                0.0
            } else {
                cat.pstats.type_count(TermId(oid)) as f64
            }
        } else {
            match pred_of(cat, &key) {
                None => 0.0,
                Some(ps) => match &tp.o {
                    // Constant object: expected subjects carrying that value.
                    PatternTerm::Term(_) => ps.count as f64 / (ps.ndv_objects.max(1) as f64),
                    PatternTerm::Var(_) => {
                        mult *= ps.avg_per_subject().max(1.0);
                        ps.ndv_subjects as f64
                    }
                },
            }
        };
        subjects = subjects.min(cand);
    }
    if !subjects.is_finite() {
        subjects = cat.pstats.subjects as f64;
    }
    StarEst {
        subjects,
        rows: subjects * mult,
    }
}

/// Estimate composite-star sizes: like [`star_est`] but over the composite
/// primary property keys (the shared scan pattern the MQO rewrites match).
pub fn composite_star_est(
    cat: &DataCatalog,
    c: &crate::composite::CompositePattern,
) -> Vec<StarEst> {
    c.stars
        .iter()
        .map(|cs| {
            let mut subjects = f64::INFINITY;
            let mut mult = 1.0;
            for key in &cs.primary {
                let cand = if let Some(obj) = &key.type_object {
                    let oid = cat.id_of(obj);
                    if oid == MISSING_ID {
                        0.0
                    } else {
                        cat.pstats.type_count(TermId(oid)) as f64
                    }
                } else {
                    match pred_of(cat, key) {
                        None => 0.0,
                        Some(ps) => {
                            mult *= ps.avg_per_subject().max(1.0);
                            ps.ndv_subjects as f64
                        }
                    }
                };
                subjects = subjects.min(cand);
            }
            if !subjects.is_finite() {
                subjects = cat.pstats.subjects as f64;
            }
            StarEst {
                subjects,
                rows: subjects * mult,
            }
        })
        .collect()
}

/// Build the unit graph of the composite pattern (stars from the primary
/// property intersection, edges from the composite joins).
pub fn unit_from_composite(
    cat: &DataCatalog,
    c: &crate::composite::CompositePattern,
) -> UnitGraph {
    let stars = composite_star_est(cat, c);
    let edges = c
        .joins
        .iter()
        .map(|j| {
            let ndv_of = |star: usize, key: &crate::composite::EdgeKey| -> f64 {
                match key {
                    crate::composite::EdgeKey::Subject => stars[star].subjects,
                    crate::composite::EdgeKey::ObjectOf(p) => pred_of(cat, p)
                        .map(|ps| ps.ndv_objects as f64)
                        .unwrap_or(1.0),
                }
            };
            UnitEdge {
                l: j.left_star,
                r: j.right_star,
                key_ndv: ndv_of(j.left_star, &j.left)
                    .min(ndv_of(j.right_star, &j.right))
                    .max(1.0),
            }
        })
        .collect();
    UnitGraph { stars, edges }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(rows: &[f64], ndvs: &[f64]) -> UnitGraph {
        // Star i joins star i+1 on edge i.
        UnitGraph {
            stars: rows
                .iter()
                .map(|&r| StarEst {
                    subjects: r,
                    rows: r,
                })
                .collect(),
            edges: ndvs
                .iter()
                .enumerate()
                .map(|(i, &n)| UnitEdge {
                    l: i,
                    r: i + 1,
                    key_ndv: n,
                })
                .collect(),
        }
    }

    #[test]
    fn greedy_order_consumes_first_connecting_edges() {
        let g = chain(&[10.0, 10.0, 10.0], &[10.0, 10.0]);
        assert_eq!(g.greedy_order(), vec![0, 1]);
    }

    #[test]
    fn best_order_starts_with_the_most_selective_join() {
        // Edge 1 (stars 1-2) is far more selective than edge 0 (stars 0-1):
        // joining 1-2 first shrinks the intermediate the second join reads.
        let g = UnitGraph {
            stars: vec![
                StarEst {
                    subjects: 1000.0,
                    rows: 1000.0,
                },
                StarEst {
                    subjects: 1000.0,
                    rows: 1000.0,
                },
                StarEst {
                    subjects: 10.0,
                    rows: 10.0,
                },
            ],
            edges: vec![
                UnitEdge {
                    l: 0,
                    r: 1,
                    key_ndv: 2.0,
                },
                UnitEdge {
                    l: 1,
                    r: 2,
                    key_ndv: 1000.0,
                },
            ],
        };
        assert_eq!(g.best_order(), Some(vec![1, 0]));
    }

    #[test]
    fn best_order_is_none_for_single_edge_units() {
        let g = chain(&[10.0, 10.0], &[10.0]);
        assert_eq!(g.best_order(), None);
    }

    #[test]
    fn prefix_rows_follow_the_order() {
        let g = chain(&[100.0, 10.0, 1000.0], &[10.0, 100.0]);
        let rows = g.prefix_rows(&[0, 1]);
        assert_eq!(rows.len(), 2);
        assert!((rows[0] - 100.0).abs() < 1e-9); // 100*10/10
        assert!((rows[1] - 1000.0).abs() < 1e-9); // 100*1000/100
    }

    #[test]
    fn memo_dedupes_equivalent_subsets() {
        // A 4-star chain has two seeds reaching {1,2}-adjacent subsets; the
        // memo must still produce a single full-coverage order.
        let g = chain(&[5.0, 5.0, 5.0, 5.0], &[5.0, 5.0, 5.0]);
        let order = g.best_order().expect("connected chain");
        assert_eq!(order.len(), 3);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }
}
