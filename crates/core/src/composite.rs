//! Composite graph pattern construction (§3) and α-condition generation
//! (Table 2).
//!
//! Given the grouping blocks of an analytical query, this module verifies
//! pairwise overlap (Def 3.2), merges the patterns into one composite
//! pattern with primary (`P_prim` = intersection) and secondary
//! (`P_sec` = union − intersection) properties per star, and derives one
//! α-condition per original block: every secondary property must be present
//! iff the block's own pattern carries it.

use crate::aquery::{ExtractError, GroupingBlock};
use crate::filters::{compile_block_filters, StarFilter, ValuePred};
use crate::overlap::graphs_overlap;
use rapida_sparql::analysis::{PropKey, Role, StarDecomposition};
use std::collections::BTreeSet;

/// A secondary property of a composite star, with per-block presence flags.
#[derive(Debug, Clone, PartialEq)]
pub struct SecondaryProp {
    /// The property key.
    pub prop: PropKey,
    /// `present[b]` — does block `b`'s star carry this property?
    pub present: Vec<bool>,
}

/// One composite star pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct CompositeStar {
    /// `P_prim` — properties shared by every block's star.
    pub primary: Vec<PropKey>,
    /// `P_sec` — properties carried by a strict subset of the blocks.
    pub secondary: Vec<SecondaryProp>,
}

/// One side of a composite join edge.
#[derive(Debug, Clone, PartialEq)]
pub enum EdgeKey {
    /// Join on the star's subject.
    Subject,
    /// Join on the objects of a property.
    ObjectOf(PropKey),
}

/// A join edge between composite stars.
#[derive(Debug, Clone, PartialEq)]
pub struct CompositeJoin {
    /// Left star index.
    pub left_star: usize,
    /// Right star index.
    pub right_star: usize,
    /// Key on the left star.
    pub left: EdgeKey,
    /// Key on the right star.
    pub right: EdgeKey,
}

/// The composite graph pattern with block α-conditions.
#[derive(Debug, Clone, PartialEq)]
pub struct CompositePattern {
    /// The composite stars (indexed like block 0's decomposition).
    pub stars: Vec<CompositeStar>,
    /// Join edges (from block 0's join structure, verified role-equivalent
    /// in every other block).
    pub joins: Vec<CompositeJoin>,
    /// `star_map[b][s]` — composite star index of block `b`'s star `s`.
    pub star_map: Vec<Vec<usize>>,
    /// Merged value filters, composite-star indexed. Primary-property
    /// filters are identical across blocks (checked); secondary-property
    /// filters come from their owning block.
    pub filters: Vec<StarFilter>,
    /// `alpha[b]` — the α-condition terms of block `b`:
    /// `(star, prop, required)` for every secondary property (Table 2).
    pub alpha: Vec<Vec<(usize, PropKey, bool)>>,
}

/// Outcome of attempting composite construction.
#[derive(Debug)]
pub enum CompositeOutcome {
    /// The blocks overlap; a composite pattern was built.
    Composite(CompositePattern),
    /// The blocks do not overlap (Def 3.2 fails, or filters conflict) —
    /// engines fall back to per-pattern evaluation.
    NotOverlapping(String),
}

/// Build the composite pattern of an analytical query's blocks.
///
/// A single block trivially yields a composite with no secondary properties
/// and one empty α-condition.
pub fn build_composite(blocks: &[GroupingBlock]) -> Result<CompositeOutcome, ExtractError> {
    assert!(!blocks.is_empty());
    let decs: Vec<StarDecomposition> = blocks
        .iter()
        .map(|b| b.decomposition())
        .collect::<Result<_, _>>()?;
    for d in &decs {
        if !d.connected && d.stars.len() > 1 {
            return Err(ExtractError::Unsupported(
                "disconnected graph pattern in a grouping block".into(),
            ));
        }
    }

    // Map every block onto block 0's star layout.
    let mut star_map: Vec<Vec<usize>> = vec![(0..decs[0].stars.len()).collect()];
    for d in &decs[1..] {
        match graphs_overlap(d, &decs[0]) {
            Some(ov) => star_map.push(ov.mapping),
            None => {
                return Ok(CompositeOutcome::NotOverlapping(
                    "graph patterns fail Def 3.2".into(),
                ))
            }
        }
    }

    let n_stars = decs[0].stars.len();
    let n_blocks = blocks.len();

    // Property sets per (composite star, block).
    let mut props: Vec<Vec<BTreeSet<PropKey>>> = vec![Vec::with_capacity(n_blocks); n_stars];
    for (b, d) in decs.iter().enumerate() {
        for (s, star) in d.stars.iter().enumerate() {
            let cs = star_map[b][s];
            while props[cs].len() < b {
                // A block star missing for this composite star cannot happen
                // under a bijective mapping, but keep indexes aligned.
                props[cs].push(BTreeSet::new());
            }
            props[cs].push(star.prop_keys());
        }
    }

    let mut stars = Vec::with_capacity(n_stars);
    for per_block in &props {
        let mut primary: BTreeSet<PropKey> = per_block[0].clone();
        for p in &per_block[1..] {
            primary = primary.intersection(p).cloned().collect();
        }
        let mut union: BTreeSet<PropKey> = BTreeSet::new();
        for p in per_block {
            union.extend(p.iter().cloned());
        }
        let secondary: Vec<SecondaryProp> = union
            .iter()
            .filter(|k| !primary.contains(k))
            .map(|k| SecondaryProp {
                prop: k.clone(),
                present: per_block.iter().map(|p| p.contains(k)).collect(),
            })
            .collect();
        stars.push(CompositeStar {
            primary: primary.into_iter().collect(),
            secondary,
        });
    }

    // Join edges from block 0 (role-equivalence across blocks already
    // verified by `graphs_overlap`).
    let joins = decs[0]
        .joins
        .iter()
        .map(|j| CompositeJoin {
            left_star: j.left.star,
            right_star: j.right.star,
            left: edge_key(&decs[0], j.left.star, j.left.role, &j.left.prop, &j.var),
            right: edge_key(&decs[0], j.right.star, j.right.role, &j.right.prop, &j.var),
        })
        .collect();

    // α-conditions (Table 2): block b requires secondary (star, prop) iff
    // its own star carries prop.
    let mut alpha: Vec<Vec<(usize, PropKey, bool)>> = vec![Vec::new(); n_blocks];
    for (cs, star) in stars.iter().enumerate() {
        for sec in &star.secondary {
            for (b, cond) in alpha.iter_mut().enumerate() {
                cond.push((cs, sec.prop.clone(), sec.present[b]));
            }
        }
    }

    // Constant-object compatibility: a shared (primary, non-type) property
    // whose object is constant in one block must carry the *same* constant
    // in every block (e.g. `pub_type "News"` in both MG16 blocks); a
    // constant-vs-variable or constant-vs-different-constant mismatch means
    // the patterns do not describe a shared substructure.
    for (cs, star) in stars.iter().enumerate() {
        for key in &star.primary {
            if key.is_type_key() {
                continue; // type constants are folded into the key itself
            }
            let mut consts: Vec<Option<&rapida_rdf::Term>> = Vec::new();
            for (b, d) in decs.iter().enumerate() {
                let bs = star_map[b].iter().position(|&c| c == cs).expect("bijective");
                let tp = d.stars[bs].triple_for(key).expect("primary prop present");
                consts.push(tp.o.as_term());
            }
            if consts.windows(2).any(|w| w[0] != w[1]) {
                return Ok(CompositeOutcome::NotOverlapping(format!(
                    "conflicting constant objects on shared property {key}"
                )));
            }
        }
    }

    // Filters: compile per block against its own star indexes, remap to
    // composite indexes, and check primary-property filter compatibility.
    let mut filters: Vec<StarFilter> = Vec::new();
    let mut per_block_filters: Vec<Vec<StarFilter>> = Vec::with_capacity(n_blocks);
    for (b, block) in blocks.iter().enumerate() {
        let fs = compile_block_filters(block, &decs[b])?
            .into_iter()
            .map(|f| StarFilter {
                star: star_map[b][f.star],
                prop: f.prop,
                pred: f.pred,
            })
            .collect::<Vec<_>>();
        per_block_filters.push(fs);
    }
    for (b, fs) in per_block_filters.iter().enumerate() {
        for f in fs {
            let on_primary = stars[f.star].primary.contains(&f.prop);
            if on_primary {
                // Every other block must carry the identical predicate.
                let all_match = per_block_filters.iter().enumerate().all(|(ob, ofs)| {
                    ob == b
                        || ofs
                            .iter()
                            .any(|of| of.star == f.star && of.prop == f.prop && of.pred == f.pred)
                });
                if !all_match {
                    return Ok(CompositeOutcome::NotOverlapping(format!(
                        "conflicting filters on shared property {}",
                        f.prop
                    )));
                }
            }
            if !filters.contains(f) {
                filters.push(f.clone());
            }
        }
    }

    Ok(CompositeOutcome::Composite(CompositePattern {
        stars,
        joins,
        star_map,
        filters,
        alpha,
    }))
}

fn edge_key(
    dec: &StarDecomposition,
    star: usize,
    role: Role,
    prop: &Option<PropKey>,
    var: &rapida_sparql::ast::Var,
) -> EdgeKey {
    match role {
        Role::Subject => EdgeKey::Subject,
        Role::Object => EdgeKey::ObjectOf(prop.clone().unwrap_or_else(|| {
            // The joining tp is the one whose object is the join variable.
            dec.stars[star]
                .triples
                .iter()
                .find(|tp| tp.o.as_var() == Some(var))
                .and_then(PropKey::of)
                .expect("object-role join side has a carrying pattern")
        })),
        Role::Property => unreachable!("property-role joins are out of scope"),
    }
}

impl CompositePattern {
    /// The *positive* α-terms of block `b`: the secondary properties the
    /// block's own pattern requires present. Engines use these for join-time
    /// pruning and per-block aggregation validity; the negative (`= ∅`)
    /// terms of Table 2 are intentionally omitted because SPARQL pattern
    /// semantics ignores extra properties (a subject with `a,b,c,d,e,f`
    /// matches both `abc:de` and `ab:def`), and correctness is defined by
    /// the reference evaluator.
    pub fn alpha_positive(&self, block: usize) -> Vec<(usize, PropKey)> {
        self.alpha[block]
            .iter()
            .filter(|(_, _, required)| *required)
            .map(|(s, p, _)| (*s, p.clone()))
            .collect()
    }

    /// Per-block star triple lookup: the constant object of `prop` in the
    /// composite star `cs`, taken from the first block that carries it.
    pub fn const_object(
        &self,
        decs: &[StarDecomposition],
        cs: usize,
        prop: &PropKey,
    ) -> Option<rapida_rdf::Term> {
        for (b, d) in decs.iter().enumerate() {
            if let Some(bs) = self.star_map[b].iter().position(|&c| c == cs) {
                if let Some(tp) = d.stars[bs].triple_for(prop) {
                    if let Some(t) = tp.o.as_term() {
                        return Some(t.clone());
                    }
                }
            }
        }
        None
    }
}

/// Does a filter predicate act as an equality pin (used by tests and plan
/// explanations)?
pub fn is_equality_pred(p: &ValuePred) -> bool {
    matches!(
        p,
        ValuePred::TermCmp { eq: true, .. }
            | ValuePred::Num {
                op: rapida_sparql::ast::CmpOp::Eq,
                ..
            }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aquery::extract;
    use rapida_sparql::parse_query;

    fn blocks(q: &str) -> Vec<GroupingBlock> {
        extract(&parse_query(q).unwrap()).unwrap().blocks
    }

    /// AQ1 (Fig. 1): the composite must have ty18+pf star (pf secondary to
    /// block 0... block order: GP with feature first) and pr/pc/ve star.
    const AQ1: &str = "
        PREFIX ex: <http://x/>
        SELECT ?f ?c ?sumF ?sumT {
          { SELECT ?f ?c (SUM(?pr2) AS ?sumF)
            { ?p2 a ex:PT18 ; ex:pf ?f .
              ?o2 ex:pr ?p2 ; ex:pc ?pr2 ; ex:ve ?v2 . ?v2 ex:cn ?c . }
            GROUP BY ?f ?c }
          { SELECT ?c (SUM(?pr) AS ?sumT)
            { ?p1 a ex:PT18 .
              ?o1 ex:pr ?p1 ; ex:pc ?pr ; ex:ve ?v1 . ?v1 ex:cn ?c . }
            GROUP BY ?c }
        }";

    #[test]
    fn aq1_composite_structure() {
        let bs = blocks(AQ1);
        let out = build_composite(&bs).unwrap();
        let CompositeOutcome::Composite(c) = out else {
            panic!("AQ1 blocks overlap");
        };
        assert_eq!(c.stars.len(), 3);
        // Star 0 (product): primary {ty18}, secondary {pf} present only in
        // block 0.
        let s0 = &c.stars[0];
        assert_eq!(s0.primary.len(), 1);
        assert!(s0.primary[0].is_type_key());
        assert_eq!(s0.secondary.len(), 1);
        assert_eq!(s0.secondary[0].present, vec![true, false]);
        // Star 1 (offer): all primary {pr, pc, ve}.
        assert_eq!(c.stars[1].primary.len(), 3);
        assert!(c.stars[1].secondary.is_empty());
        // Star 2 (vendor): primary {cn}.
        assert_eq!(c.stars[2].primary.len(), 1);
        // Joins: subject-object (product/offer) and object-subject
        // (offer/vendor).
        assert_eq!(c.joins.len(), 2);
        // α: block 0 requires pf present, block 1 requires it absent.
        assert_eq!(c.alpha[0], vec![(0, s0.secondary[0].prop.clone(), true)]);
        assert_eq!(c.alpha[1], vec![(0, s0.secondary[0].prop.clone(), false)]);
    }

    /// Table 2 row 2: ab:de vs ab:def → composite ab:de(f), α1 = f=∅,
    /// α2 = f≠∅.
    #[test]
    fn table2_row2() {
        let q = "
            PREFIX ex: <http://x/>
            SELECT ?x ?n1 ?n2 {
              { SELECT ?x (COUNT(?e1) AS ?n1)
                { ?s1 ex:a ?x ; ex:b ?b1 . ?t1 ex:d ?s1 ; ex:e ?e1 . } GROUP BY ?x }
              { SELECT ?x (COUNT(?e2) AS ?n2)
                { ?s2 ex:a ?x ; ex:b ?b2 . ?t2 ex:d ?s2 ; ex:e ?e2 ; ex:f ?f2 . } GROUP BY ?x }
            }";
        let bs = blocks(q);
        let CompositeOutcome::Composite(c) = build_composite(&bs).unwrap() else {
            panic!("row 2 patterns overlap");
        };
        let sec: Vec<_> = c
            .stars
            .iter()
            .flat_map(|s| s.secondary.iter())
            .collect();
        assert_eq!(sec.len(), 1, "only f is secondary");
        assert_eq!(c.alpha[0].len(), 1);
        assert!(!c.alpha[0][0].2, "block 1: f = ∅");
        assert!(c.alpha[1][0].2, "block 2: f ≠ ∅");
    }

    /// Table 2 row 4: abc:de vs ab:def → α1 = c≠∅ ∧ f=∅, α2 = c=∅ ∧ f≠∅.
    #[test]
    fn table2_row4() {
        let q = "
            PREFIX ex: <http://x/>
            SELECT ?x ?n1 ?n2 {
              { SELECT ?x (COUNT(?e1) AS ?n1)
                { ?s1 ex:a ?x ; ex:b ?b1 ; ex:c ?c1 . ?t1 ex:d ?s1 ; ex:e ?e1 . } GROUP BY ?x }
              { SELECT ?x (COUNT(?f2) AS ?n2)
                { ?s2 ex:a ?x ; ex:b ?b2 . ?t2 ex:d ?s2 ; ex:e ?e2 ; ex:f ?f2 . } GROUP BY ?x }
            }";
        let bs = blocks(q);
        let CompositeOutcome::Composite(c) = build_composite(&bs).unwrap() else {
            panic!("row 4 patterns overlap");
        };
        let mut a0 = c.alpha[0].clone();
        let mut a1 = c.alpha[1].clone();
        a0.sort_by(|x, y| x.1.cmp(&y.1));
        a1.sort_by(|x, y| x.1.cmp(&y.1));
        assert_eq!(a0.len(), 2);
        // Block 0 has c, lacks f.
        assert!(a0.iter().any(|(_, p, r)| p.prop.lexical().ends_with("/c") && *r));
        assert!(a0.iter().any(|(_, p, r)| p.prop.lexical().ends_with("/f") && !*r));
        // Block 1 lacks c, has f.
        assert!(a1.iter().any(|(_, p, r)| p.prop.lexical().ends_with("/c") && !*r));
        assert!(a1.iter().any(|(_, p, r)| p.prop.lexical().ends_with("/f") && *r));
    }

    #[test]
    fn non_overlapping_blocks_fall_back() {
        let q = "
            PREFIX ex: <http://x/>
            SELECT ?x ?n1 ?n2 {
              { SELECT ?x (COUNT(?y1) AS ?n1) { ?s1 ex:a ?x ; ex:p ?y1 . } GROUP BY ?x }
              { SELECT ?x (COUNT(?y2) AS ?n2) { ?s2 ex:zz ?x ; ex:qq ?y2 . } GROUP BY ?x }
            }";
        let bs = blocks(q);
        assert!(matches!(
            build_composite(&bs).unwrap(),
            CompositeOutcome::NotOverlapping(_)
        ));
    }

    #[test]
    fn single_block_is_trivially_composite() {
        let q = "PREFIX ex: <http://x/>
                 SELECT ?x (COUNT(?y) AS ?n) { ?s ex:a ?x ; ex:b ?y . } GROUP BY ?x";
        let bs = blocks(q);
        let CompositeOutcome::Composite(c) = build_composite(&bs).unwrap() else {
            panic!()
        };
        assert_eq!(c.stars.len(), 1);
        assert!(c.stars[0].secondary.is_empty());
        assert_eq!(c.alpha, vec![Vec::new()]);
    }

    #[test]
    fn identical_filters_on_shared_property_compose() {
        let q = "
            PREFIX ex: <http://x/>
            SELECT ?x ?n1 ?n2 {
              { SELECT ?x (COUNT(?p1) AS ?n1)
                { ?s1 ex:a ?x ; ex:price ?p1 . FILTER(?p1 > 100) } GROUP BY ?x }
              { SELECT ?x (COUNT(?p2) AS ?n2)
                { ?s2 ex:a ?x ; ex:price ?p2 ; ex:extra ?e2 . FILTER(?p2 > 100) } GROUP BY ?x }
            }";
        let bs = blocks(q);
        let CompositeOutcome::Composite(c) = build_composite(&bs).unwrap() else {
            panic!("identical filters must compose");
        };
        assert_eq!(c.filters.len(), 1);
    }

    #[test]
    fn conflicting_filters_on_shared_property_fall_back() {
        let q = "
            PREFIX ex: <http://x/>
            SELECT ?x ?n1 ?n2 {
              { SELECT ?x (COUNT(?p1) AS ?n1)
                { ?s1 ex:a ?x ; ex:price ?p1 . FILTER(?p1 > 100) } GROUP BY ?x }
              { SELECT ?x (COUNT(?p2) AS ?n2)
                { ?s2 ex:a ?x ; ex:price ?p2 . FILTER(?p2 > 500) } GROUP BY ?x }
            }";
        let bs = blocks(q);
        assert!(matches!(
            build_composite(&bs).unwrap(),
            CompositeOutcome::NotOverlapping(_)
        ));
    }
}
