//! # rapida-core
//!
//! The paper's primary contribution — algebraic optimization of complex
//! SPARQL analytical queries — plus the three baselines it is evaluated
//! against:
//!
//! * [`aquery`] — the analytical-query IR (grouping blocks + outer join).
//! * [`overlap`] — overlap detection between graph patterns (Defs 3.1/3.2).
//! * [`composite`] — composite graph pattern construction and α-condition
//!   generation (§3, Table 2).
//! * [`filters`] — the conjunctive FILTER subset and its compilation.
//! * [`catalog`] — loaded datasets (both storage layouts + snapshots).
//! * [`relops`] — relational physical MR operators (scans, joins, map-joins,
//!   group-agg, distinct).
//! * [`plan`] — query plans, the final map-only join, result assembly.
//! * [`engines`] — `HiveNaive`, `HiveMqo`, `RapidPlus`, `RapidAnalytics`.
//!
//! ```no_run
//! use rapida_core::{DataCatalog, QueryEngine, engines::RapidAnalytics, extract};
//! use rapida_rdf::Graph;
//! use rapida_sparql::parse_query;
//! use rapida_mapred::Engine;
//!
//! let graph = Graph::new(); // load data here
//! let cat = DataCatalog::load(&graph);
//! let query = parse_query("SELECT (COUNT(?o) AS ?n) { ?s <http://x/p> ?o . }").unwrap();
//! let aq = extract(&query).unwrap();
//! let plan = RapidAnalytics::default().plan(&aq, &cat).unwrap();
//! let mr = Engine::new(cat.dfs.clone());
//! let (result, metrics) = plan.execute(&mr, &aq, &cat.dict);
//! println!("{} rows in {} cycles", result.len(), metrics.cycles());
//! ```

pub mod aquery;
pub mod batch;
pub mod catalog;
pub mod composite;
pub mod engines;
pub mod enumerate;
pub mod filters;
pub mod overlap;
pub mod plan;
pub mod relops;
pub mod rollup;
pub mod rows;

pub use aquery::{extract, AnalyticalQuery, GroupingBlock};
pub use batch::{demux_member_plan, fusion_groups, plan_fused_group, FusedPlan};
pub use catalog::{DataCatalog, LoadConfig};
pub use composite::{build_composite, CompositeOutcome, CompositePattern};
pub use enumerate::{enumerate_best, CandidateReport, Enumerated, Family};
pub use overlap::{graphs_overlap, stars_overlap, GraphOverlap};
pub use plan::{PlanError, QueryEngine, QueryPlan};
pub use rollup::{cube_sets, rollup_sets, GroupingSetsPlan, GroupingSetsQuery};

use rapida_mapred::{Engine, WorkflowMetrics};
use rapida_sparql::Relation;

/// Parse, extract, plan and execute a SPARQL analytical query with one
/// engine. Convenience entry point for examples and benchmarks.
pub fn run_query(
    engine: &dyn QueryEngine,
    sparql: &str,
    cat: &DataCatalog,
    mr: &Engine,
) -> Result<(Relation, WorkflowMetrics, QueryPlan), PlanError> {
    let query = rapida_sparql::parse_query(sparql)
        .map_err(|e| PlanError::Unsupported(format!("parse error: {e}")))?;
    let aq = extract(&query)?;
    let plan = engine.plan(&aq, cat)?;
    let (rel, wf) = plan.execute(mr, &aq, &cat.dict);
    Ok((rel, wf, plan))
}
