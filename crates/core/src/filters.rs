//! FILTER compilation: the conjunctive value-predicate subset the engines
//! support (numeric comparisons, term equality and `regex` substring match
//! on the object of a single property), assigned to the star/property that
//! binds the filtered variable.

use crate::aquery::{resolve_block_var, BlockVarBinding, ExtractError, GroupingBlock};
use rapida_sparql::analysis::{PropKey, StarDecomposition};
use rapida_sparql::ast::{CmpOp, FilterExpr, ValueExpr};
use rapida_rdf::Term;

/// A value predicate over a single object binding.
#[derive(Debug, Clone, PartialEq)]
pub enum ValuePred {
    /// Numeric comparison against a constant.
    Num {
        /// Comparison operator.
        op: CmpOp,
        /// Right-hand constant.
        rhs: f64,
    },
    /// Term (identity) comparison; only `=` / `!=`.
    TermCmp {
        /// True for `=`, false for `!=`.
        eq: bool,
        /// Right-hand constant term.
        rhs: Term,
    },
    /// Substring containment (the paper's `regex` usage).
    Contains {
        /// The substring.
        pattern: String,
        /// Case-insensitive flag.
        case_insensitive: bool,
    },
}

impl ValuePred {
    /// Evaluate against a resolved value.
    pub fn eval(&self, numeric: Option<f64>, lexical: &str, term: Option<&Term>) -> bool {
        match self {
            ValuePred::Num { op, rhs } => match numeric {
                None => false,
                Some(v) => match op {
                    CmpOp::Eq => v == *rhs,
                    CmpOp::Ne => v != *rhs,
                    CmpOp::Lt => v < *rhs,
                    CmpOp::Le => v <= *rhs,
                    CmpOp::Gt => v > *rhs,
                    CmpOp::Ge => v >= *rhs,
                },
            },
            ValuePred::TermCmp { eq, rhs } => match term {
                None => false,
                Some(t) => (t == rhs) == *eq,
            },
            ValuePred::Contains {
                pattern,
                case_insensitive,
            } => {
                if *case_insensitive {
                    lexical.to_lowercase().contains(&pattern.to_lowercase())
                } else {
                    lexical.contains(pattern.as_str())
                }
            }
        }
    }
}

/// One compiled filter: a predicate on the objects of `prop` in block star
/// `star`.
#[derive(Debug, Clone, PartialEq)]
pub struct StarFilter {
    /// Star index (within the block's decomposition).
    pub star: usize,
    /// The property whose objects are filtered.
    pub prop: PropKey,
    /// The predicate.
    pub pred: ValuePred,
}

/// Compile a block's FILTERs into per-star value predicates. Errors on any
/// construct outside the conjunctive single-variable subset (the paper's §3
/// scope).
pub fn compile_block_filters(
    block: &GroupingBlock,
    dec: &StarDecomposition,
) -> Result<Vec<StarFilter>, ExtractError> {
    let mut out = Vec::new();
    for f in &block.filters {
        flatten_conjuncts(f, dec, &mut out)?;
    }
    Ok(out)
}

fn flatten_conjuncts(
    f: &FilterExpr,
    dec: &StarDecomposition,
    out: &mut Vec<StarFilter>,
) -> Result<(), ExtractError> {
    match f {
        FilterExpr::And(a, b) => {
            flatten_conjuncts(a, dec, out)?;
            flatten_conjuncts(b, dec, out)?;
        }
        FilterExpr::Regex {
            var,
            pattern,
            case_insensitive,
        } => {
            let (star, prop) = object_binding(dec, var)?;
            out.push(StarFilter {
                star,
                prop,
                pred: ValuePred::Contains {
                    pattern: pattern.clone(),
                    case_insensitive: *case_insensitive,
                },
            });
        }
        FilterExpr::Compare { left, op, right } => {
            let (var, constant, flipped) = match (left, right) {
                (ValueExpr::Var(v), c) => (v, c, false),
                (c, ValueExpr::Var(v)) => (v, c, true),
                _ => {
                    return Err(ExtractError::Unsupported(
                        "FILTER must compare a variable to a constant".into(),
                    ))
                }
            };
            let (star, prop) = object_binding(dec, var)?;
            let op = if flipped { flip(*op) } else { *op };
            let pred = match constant {
                ValueExpr::Number(n) => ValuePred::Num { op, rhs: *n },
                ValueExpr::Term(t) => match op {
                    CmpOp::Eq => ValuePred::TermCmp {
                        eq: true,
                        rhs: t.clone(),
                    },
                    CmpOp::Ne => ValuePred::TermCmp {
                        eq: false,
                        rhs: t.clone(),
                    },
                    _ => {
                        return Err(ExtractError::Unsupported(
                            "ordering comparison on non-numeric term".into(),
                        ))
                    }
                },
                ValueExpr::Var(_) => {
                    return Err(ExtractError::Unsupported(
                        "variable-to-variable FILTER comparisons".into(),
                    ))
                }
            };
            out.push(StarFilter { star, prop, pred });
        }
        FilterExpr::Or(_, _) | FilterExpr::Not(_) => {
            return Err(ExtractError::Unsupported(
                "disjunctive / negated FILTERs are outside the engine subset".into(),
            ))
        }
    }
    Ok(())
}

fn object_binding(
    dec: &StarDecomposition,
    var: &rapida_sparql::ast::Var,
) -> Result<(usize, PropKey), ExtractError> {
    match resolve_block_var(dec, var)? {
        BlockVarBinding::ObjectOf { star, prop } => Ok((star, prop)),
        BlockVarBinding::Subject { .. } => Err(ExtractError::Unsupported(
            "FILTER on a subject variable".into(),
        )),
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aquery::extract;
    use rapida_sparql::parse_query;

    fn block_and_dec(q: &str) -> (GroupingBlock, StarDecomposition) {
        let aq = extract(&parse_query(q).unwrap()).unwrap();
        let b = aq.blocks[0].clone();
        let d = b.decomposition().unwrap();
        (b, d)
    }

    #[test]
    fn compiles_numeric_filter() {
        let (b, d) = block_and_dec(
            "PREFIX ex: <http://x/>
             SELECT (COUNT(?p) AS ?n) { ?o ex:price ?p . FILTER(?p > 5000) }",
        );
        let fs = compile_block_filters(&b, &d).unwrap();
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].star, 0);
        assert_eq!(
            fs[0].pred,
            ValuePred::Num {
                op: CmpOp::Gt,
                rhs: 5000.0
            }
        );
    }

    #[test]
    fn flips_reversed_comparison() {
        let (b, d) = block_and_dec(
            "PREFIX ex: <http://x/>
             SELECT (COUNT(?p) AS ?n) { ?o ex:price ?p . FILTER(5000 < ?p) }",
        );
        let fs = compile_block_filters(&b, &d).unwrap();
        assert_eq!(
            fs[0].pred,
            ValuePred::Num {
                op: CmpOp::Gt,
                rhs: 5000.0
            }
        );
    }

    #[test]
    fn compiles_regex_and_conjunction() {
        let (b, d) = block_and_dec(
            "PREFIX ex: <http://x/>
             SELECT (COUNT(?p) AS ?n)
             { ?o ex:price ?p ; ex:name ?m . FILTER(?p > 10 && ?p < 100) FILTER regex(?m, \"MAPK\", \"i\") }",
        );
        let fs = compile_block_filters(&b, &d).unwrap();
        assert_eq!(fs.len(), 3);
        assert!(matches!(fs[2].pred, ValuePred::Contains { .. }));
    }

    #[test]
    fn rejects_disjunction() {
        let (b, d) = block_and_dec(
            "PREFIX ex: <http://x/>
             SELECT (COUNT(?p) AS ?n) { ?o ex:price ?p . FILTER(?p > 10 || ?p < 5) }",
        );
        assert!(compile_block_filters(&b, &d).is_err());
    }

    #[test]
    fn value_pred_eval() {
        let p = ValuePred::Num {
            op: CmpOp::Ge,
            rhs: 10.0,
        };
        assert!(p.eval(Some(10.0), "", None));
        assert!(!p.eval(Some(9.0), "", None));
        assert!(!p.eval(None, "10", None));

        let c = ValuePred::Contains {
            pattern: "Signal".into(),
            case_insensitive: true,
        };
        assert!(c.eval(None, "mapk signaling pathway", None));
        assert!(!c.eval(None, "other", None));

        let t = ValuePred::TermCmp {
            eq: true,
            rhs: Term::literal("News"),
        };
        assert!(t.eval(None, "News", Some(&Term::literal("News"))));
        assert!(!t.eval(None, "News", Some(&Term::literal("Journal"))));
    }
}
