//! OLAP grouping-set extension — the paper's stated future work (§6:
//! "a natural extension of this work is to support more complex OLAP
//! queries on RDF data models").
//!
//! A [`GroupingSetsQuery`] evaluates a whole lattice of groupings (GROUPING
//! SETS / ROLLUP / CUBE) over **one** graph pattern in a **single** Agg-Join
//! cycle: the generalized operator of §4.1 / Fig. 6(b) already evaluates
//! independent aggregations in parallel, and grouping sets are exactly such
//! a family — one `AggJoinSpec` per set, sharing the graph-pattern scan,
//! the join cycles and the aggregation cycle.
//!
//! The result is one relation in the SQL convention: a column per grouping
//! variable (unbound = `Null` for rolled-up levels, like SQL's NULL) plus
//! the aggregate columns, and a `__set` discriminator column holding the
//! grouping-set index.

use crate::aquery::GroupingBlock;
use crate::catalog::DataCatalog;
use crate::engines::rapid::{
    block_agg_spec, block_star_specs, compile_edges, star_prefilters, TgJoinPlanner,
};
use crate::filters::compile_block_filters;
use crate::plan::{next_plan_id, PlanError};
use rapida_mapred::{Engine, FnMapFactory, FnReduceFactory, JobBuilder, WorkflowMetrics};
use rapida_ntga::{
    AggJoinConfig, AggJoinMapper, AggJoinReducer, AggRec, AlphaCond,
};
use rapida_rdf::TermId;
use rapida_sparql::ast::Var;
use rapida_sparql::{Cell, Relation};
use std::sync::Arc;

/// A grouping-sets query: one pattern block, many grouping levels.
#[derive(Debug, Clone)]
pub struct GroupingSetsQuery {
    /// The graph pattern, filters and aggregate list. `block.group_by` is
    /// ignored; the sets below take its place.
    pub block: GroupingBlock,
    /// The grouping sets (each a list of pattern variables; `[]` = ALL).
    pub sets: Vec<Vec<Var>>,
}

/// The ROLLUP lattice of `vars`: all prefixes, longest first, down to ALL.
pub fn rollup_sets(vars: &[Var]) -> Vec<Vec<Var>> {
    (0..=vars.len())
        .rev()
        .map(|k| vars[..k].to_vec())
        .collect()
}

/// The CUBE lattice of `vars`: every subset, by descending size.
pub fn cube_sets(vars: &[Var]) -> Vec<Vec<Var>> {
    let n = vars.len();
    assert!(n <= 6, "CUBE over more than 6 variables is a mistake");
    let mut sets: Vec<Vec<Var>> = (0..(1usize << n))
        .map(|mask| {
            vars.iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, v)| v.clone())
                .collect()
        })
        .collect();
    sets.sort_by_key(|s: &Vec<Var>| std::cmp::Reverse(s.len()));
    sets
}

/// The executable plan of a grouping-sets query.
pub struct GroupingSetsPlan {
    jobs: Vec<rapida_mapred::Job>,
    dataset: String,
    /// Distinct grouping variables, in first-appearance order (the output
    /// key columns).
    pub key_vars: Vec<Var>,
    /// Per set: position of each of its keys within `key_vars`.
    set_layouts: Vec<Vec<usize>>,
    /// Aggregate aliases (output value columns).
    agg_aliases: Vec<Var>,
}

impl GroupingSetsQuery {
    /// Compile to jobs: the block's graph-pattern join cycles plus one
    /// generalized Agg-Join cycle carrying a spec per grouping set.
    pub fn plan(&self, cat: &DataCatalog) -> Result<GroupingSetsPlan, PlanError> {
        if self.sets.is_empty() {
            return Err(PlanError::Unsupported(
                "grouping-sets query requires at least one set".into(),
            ));
        }
        if self.sets.len() > u8::MAX as usize {
            return Err(PlanError::Unsupported("more than 255 grouping sets".into()));
        }
        let pid = next_plan_id("gs");
        let dec = self.block.decomposition()?;
        let filters = compile_block_filters(&self.block, &dec)?;
        let specs = block_star_specs(cat, &dec)?;
        let prefilters = star_prefilters(cat, &filters, dec.stars.len());
        let edges = compile_edges(cat, &dec)?;
        let planner = TgJoinPlanner {
            cat,
            prefix: pid.clone(),
            unit: 0,
            edge_order: Vec::new(),
            specs,
            prefilters,
            edges,
            conds: Arc::new(Vec::new()),
            legacy_owned: false,
        };
        let (mut jobs, joined) = planner.build_join_jobs()?;

        // Output key layout: union of set variables.
        let mut key_vars: Vec<Var> = Vec::new();
        for set in &self.sets {
            for v in set {
                if !key_vars.contains(v) {
                    key_vars.push(v.clone());
                }
            }
        }
        let set_layouts: Vec<Vec<usize>> = self
            .sets
            .iter()
            .map(|set| {
                set.iter()
                    .map(|v| key_vars.iter().position(|k| k == v).expect("in union"))
                    .collect()
            })
            .collect();

        // One AggJoinSpec per set, all in one cycle.
        let mut agg_specs = Vec::with_capacity(self.sets.len());
        for (i, set) in self.sets.iter().enumerate() {
            let mut level = self.block.clone();
            level.group_by = set.clone();
            agg_specs.push(block_agg_spec(
                cat,
                &level,
                &dec,
                i as u8,
                None,
                AlphaCond::default(),
            )?);
        }
        let cfg_joined = joined.clone();
        let (inputs, raw_filters) = match cfg_joined {
            Some(ds) => (vec![ds], Vec::new()),
            None => {
                let reqs: Vec<Vec<TermId>> = vec![planner.specs[0]
                    .primary_props()
                    .into_iter()
                    .map(TermId)
                    .collect()];
                (
                    cat.tg.datasets_covering_any(&reqs),
                    vec![(planner.specs[0].clone(), planner.prefilters[0].clone())],
                )
            }
        };
        let cfg = Arc::new(AggJoinConfig {
            specs: agg_specs,
            numeric: cat.numeric.clone(),
            raw_filters,
            map_side_combine: true,
            legacy_owned: false,
        });
        let out = format!("{pid}_sets");
        let mut b = JobBuilder::new(format!("grouping-sets x{}", self.sets.len()));
        for i in inputs {
            b = b.input(i);
        }
        jobs.push(
            b.mapper(Arc::new(FnMapFactory({
                let c = cfg.clone();
                move || AggJoinMapper::new(c.clone())
            })))
            .reducer(Arc::new(FnReduceFactory({
                let c = cfg.clone();
                move || AggJoinReducer::new(c.clone())
            })))
            .output(out.clone())
            .num_reducers(8)
            .build(),
        );
        Ok(GroupingSetsPlan {
            jobs,
            dataset: out,
            key_vars,
            set_layouts,
            agg_aliases: self.block.aggregates.iter().map(|a| a.alias.clone()).collect(),
        })
    }
}

impl GroupingSetsPlan {
    /// Number of MR cycles (pattern joins + the single aggregation cycle).
    pub fn cycles(&self) -> usize {
        self.jobs.len()
    }

    /// Execute, assembling the lattice result: columns
    /// `key_vars… aggregates… ?__set`.
    pub fn execute(&self, mr: &Engine) -> (Relation, WorkflowMetrics) {
        let wf = mr.run_workflow(&self.jobs);
        let mut vars = self.key_vars.clone();
        vars.extend(self.agg_aliases.iter().cloned());
        vars.push(Var::new("__set"));
        let mut rows = Vec::new();
        if let Some(ds) = mr.dfs.peek(&self.dataset) {
            for rec in ds.iter_records() {
                let Some(r) = AggRec::decode(rec) else { continue };
                let Some(layout) = self.set_layouts.get(r.id as usize) else {
                    continue;
                };
                let mut row = vec![Cell::Null; self.key_vars.len()];
                for (ki, &col) in layout.iter().enumerate() {
                    row[col] = Cell::Term(TermId(r.key[ki]));
                }
                for v in &r.values {
                    row.push(match v {
                        Some(x) => Cell::Num(*x),
                        None => Cell::Null,
                    });
                }
                row.push(Cell::Num(f64::from(r.id)));
                rows.push(row);
            }
        }
        (Relation { vars, rows }, wf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aquery::extract;
    use rapida_rdf::{Graph, Term};
    use rapida_sparql::parse_query;

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    fn sample_graph() -> Graph {
        let mut g = Graph::new();
        for i in 0..24 {
            let o = iri(&format!("o{i}"));
            g.insert_terms(&o, &iri("f"), &iri(&format!("feat{}", i % 3)));
            g.insert_terms(&o, &iri("c"), &iri(&format!("country{}", i % 2)));
            g.insert_terms(&o, &iri("pc"), &Term::decimal(10.0 * (i % 5) as f64));
        }
        g
    }

    fn block() -> GroupingBlock {
        let q = parse_query(
            "PREFIX ex: <http://x/>
             SELECT ?f ?c (COUNT(?p) AS ?n) (SUM(?p) AS ?s)
             { ?o ex:f ?f ; ex:c ?c ; ex:pc ?p . } GROUP BY ?f ?c",
        )
        .unwrap();
        extract(&q).unwrap().blocks.remove(0)
    }

    #[test]
    fn rollup_sets_are_prefixes() {
        let sets = rollup_sets(&[Var::new("a"), Var::new("b")]);
        assert_eq!(
            sets,
            vec![
                vec![Var::new("a"), Var::new("b")],
                vec![Var::new("a")],
                vec![],
            ]
        );
    }

    #[test]
    fn cube_sets_are_all_subsets() {
        let sets = cube_sets(&[Var::new("a"), Var::new("b")]);
        assert_eq!(sets.len(), 4);
        assert_eq!(sets[0].len(), 2);
        assert!(sets.contains(&vec![]));
        assert!(sets.contains(&vec![Var::new("b")]));
    }

    /// The single-cycle lattice must agree, level by level, with separately
    /// evaluated GROUP BY queries through the reference evaluator.
    #[test]
    fn rollup_agrees_with_separate_groupings() {
        let g = sample_graph();
        let cat = DataCatalog::load(&g);
        let mr = Engine::pinned(cat.dfs.clone());
        let q = GroupingSetsQuery {
            block: block(),
            sets: rollup_sets(&[Var::new("f"), Var::new("c")]),
        };
        let plan = q.plan(&cat).unwrap();
        // Single-star pattern: exactly ONE cycle for the whole lattice.
        assert_eq!(plan.cycles(), 1);
        let (rel, _wf) = plan.execute(&mr);

        // Compare each level with the reference evaluator.
        let level_queries = [
            (
                0.0,
                "PREFIX ex: <http://x/>
                 SELECT ?f ?c (COUNT(?p) AS ?n) (SUM(?p) AS ?s)
                 { ?o ex:f ?f ; ex:c ?c ; ex:pc ?p . } GROUP BY ?f ?c",
            ),
            (
                1.0,
                "PREFIX ex: <http://x/>
                 SELECT ?f (COUNT(?p) AS ?n) (SUM(?p) AS ?s)
                 { ?o ex:f ?f ; ex:c ?c ; ex:pc ?p . } GROUP BY ?f",
            ),
            (
                2.0,
                "PREFIX ex: <http://x/>
                 SELECT (COUNT(?p) AS ?n) (SUM(?p) AS ?s)
                 { ?o ex:f ?f ; ex:c ?c ; ex:pc ?p . }",
            ),
        ];
        let set_col = rel.col(&Var::new("__set")).unwrap();
        for (set_id, lq) in level_queries {
            let expected = rapida_sparql::evaluate(&parse_query(lq).unwrap(), &g);
            let level_rows: Vec<Vec<Cell>> = rel
                .rows
                .iter()
                .filter(|r| r[set_col] == Cell::Num(set_id))
                .map(|r| {
                    // Project to the level's own columns (drop Null keys
                    // and the discriminator).
                    let mut row = Vec::new();
                    for (i, c) in r.iter().enumerate() {
                        if i == set_col {
                            continue;
                        }
                        if i < 2 && matches!(c, Cell::Null) {
                            continue; // rolled-up key column
                        }
                        row.push(*c);
                    }
                    row
                })
                .collect();
            let got = Relation {
                vars: expected.vars.clone(),
                rows: level_rows,
            };
            assert_eq!(
                got.canonicalized(&g.dict),
                expected.canonicalized(&g.dict),
                "grouping-set level {set_id} disagrees"
            );
        }
    }

    /// CUBE over (f, c) = 4 levels, still one aggregation cycle; row count
    /// is the sum of the level cardinalities.
    #[test]
    fn cube_row_counts() {
        let g = sample_graph();
        let cat = DataCatalog::load(&g);
        let mr = Engine::pinned(cat.dfs.clone());
        let q = GroupingSetsQuery {
            block: block(),
            sets: cube_sets(&[Var::new("f"), Var::new("c")]),
        };
        let plan = q.plan(&cat).unwrap();
        assert_eq!(plan.cycles(), 1);
        let (rel, _) = plan.execute(&mr);
        // f×c = 6 groups, f = 3, c = 2, ALL = 1.
        assert_eq!(rel.len(), 6 + 3 + 2 + 1);
    }

    #[test]
    fn empty_sets_rejected() {
        let cat = DataCatalog::load(&sample_graph());
        let q = GroupingSetsQuery {
            block: block(),
            sets: vec![],
        };
        assert!(q.plan(&cat).is_err());
    }
}
