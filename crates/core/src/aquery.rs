//! The analytical-query intermediate representation.
//!
//! A SPARQL analytical query (Fig. 1 / Appendix A shape) is a set of
//! *grouping blocks* — each a graph pattern with a `GROUP BY` and aggregate
//! list — whose results the outer query joins on shared grouping keys.
//! This module extracts that IR from the parsed AST and resolves block
//! variables against the block's star decomposition.

use rapida_sparql::analysis::{decompose, PropKey, StarDecomposition};
use rapida_sparql::ast::{
    AggFunc, FilterExpr, PatternElement, ProjectionItem, Query, SelectQuery, TriplePattern, Var,
};
use std::fmt;

/// One aggregate of a grouping block.
#[derive(Debug, Clone, PartialEq)]
pub struct AggItem {
    /// The aggregate function.
    pub func: AggFunc,
    /// The aggregated variable (`None` = `COUNT(*)`).
    pub arg: Option<Var>,
    /// The output alias.
    pub alias: Var,
}

/// One grouping block: a graph pattern with grouping-aggregation constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupingBlock {
    /// The basic graph pattern.
    pub triples: Vec<TriplePattern>,
    /// Conjunctive FILTER constraints.
    pub filters: Vec<FilterExpr>,
    /// Grouping variables; empty = GROUP BY ALL.
    pub group_by: Vec<Var>,
    /// The aggregates.
    pub aggregates: Vec<AggItem>,
}

impl GroupingBlock {
    /// The output schema of this block: grouping keys then aggregate aliases.
    pub fn output_vars(&self) -> Vec<Var> {
        self.group_by
            .iter()
            .cloned()
            .chain(self.aggregates.iter().map(|a| a.alias.clone()))
            .collect()
    }

    /// Star-decompose this block's pattern.
    pub fn decomposition(&self) -> Result<StarDecomposition, ExtractError> {
        decompose(&self.triples).map_err(|e| ExtractError::Analysis(e.to_string()))
    }
}

/// The analytical-query IR.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticalQuery {
    /// The grouping blocks (≥ 1).
    pub blocks: Vec<GroupingBlock>,
    /// The outer projection (variables only; each must be a grouping key or
    /// an aggregate alias of some block).
    pub projection: Vec<Var>,
}

impl AnalyticalQuery {
    /// A canonical textual signature of this query's semantics.
    ///
    /// Two extractions of the same SPARQL text always produce the same
    /// signature, and any semantic difference (triples, filters, grouping,
    /// aggregates, projection) changes it. Built on the derived `Debug`
    /// form of the IR, which spells out every field — the serving layer
    /// folds it into scan-cache keys and batch dedup, so it must uniquely
    /// determine planner output for a fixed engine configuration.
    pub fn signature(&self) -> String {
        format!("{:?}<proj{:?}>", self.blocks, self.projection)
    }

    /// Which block and position each projection variable resolves to.
    /// Returns `(block, ColRef)` for every projection var; keys shared by
    /// several blocks resolve to the first defining block.
    pub fn resolve_projection(&self) -> Result<Vec<(usize, ColRef)>, ExtractError> {
        self.projection
            .iter()
            .map(|v| {
                for (bi, b) in self.blocks.iter().enumerate() {
                    if let Some(k) = b.group_by.iter().position(|g| g == v) {
                        return Ok((bi, ColRef::Key(k)));
                    }
                    if let Some(a) = b.aggregates.iter().position(|a| &a.alias == v) {
                        return Ok((bi, ColRef::Agg(a)));
                    }
                }
                Err(ExtractError::UnknownProjectionVar(v.clone()))
            })
            .collect()
    }

    /// Shared grouping variables between two blocks (the final-join keys).
    pub fn shared_keys(&self, a: usize, b: usize) -> Vec<Var> {
        self.blocks[a]
            .group_by
            .iter()
            .filter(|v| self.blocks[b].group_by.contains(v))
            .cloned()
            .collect()
    }
}

/// A column reference inside one block's output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColRef {
    /// Grouping key at index.
    Key(usize),
    /// Aggregate value at index.
    Agg(usize),
}

/// How a block variable binds within the block's star decomposition.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockVarBinding {
    /// The subject of star `star`.
    Subject {
        /// Star index within the block's decomposition.
        star: usize,
    },
    /// An object of property `prop` in star `star`.
    ObjectOf {
        /// Star index within the block's decomposition.
        star: usize,
        /// Property key of the carrying triple pattern.
        prop: PropKey,
    },
}

/// Resolve a block variable to its binding site. Subject bindings win over
/// object bindings (subjects are single-valued and always present).
pub fn resolve_block_var(
    dec: &StarDecomposition,
    var: &Var,
) -> Result<BlockVarBinding, ExtractError> {
    if let Some(star) = dec.star_of(var) {
        return Ok(BlockVarBinding::Subject { star });
    }
    for (si, star) in dec.stars.iter().enumerate() {
        for tp in &star.triples {
            if tp.o.as_var() == Some(var) {
                let prop = PropKey::of(tp)
                    .ok_or_else(|| ExtractError::Analysis("unbound property".into()))?;
                return Ok(BlockVarBinding::ObjectOf { star: si, prop });
            }
        }
    }
    Err(ExtractError::UnknownBlockVar(var.clone()))
}

/// Errors extracting or resolving the analytical IR.
#[derive(Debug, Clone, PartialEq)]
pub enum ExtractError {
    /// The query shape is outside the analytical subset.
    Unsupported(String),
    /// A projected variable is defined by no block.
    UnknownProjectionVar(Var),
    /// A grouping/aggregate variable does not occur in the block pattern.
    UnknownBlockVar(Var),
    /// Structural analysis failed.
    Analysis(String),
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractError::Unsupported(m) => write!(f, "unsupported analytical query: {m}"),
            ExtractError::UnknownProjectionVar(v) => {
                write!(f, "projection variable {v} is not produced by any block")
            }
            ExtractError::UnknownBlockVar(v) => {
                write!(f, "variable {v} does not occur in the block pattern")
            }
            ExtractError::Analysis(m) => write!(f, "analysis error: {m}"),
        }
    }
}

impl std::error::Error for ExtractError {}

/// Extract the analytical IR from a parsed query.
///
/// Two shapes are accepted:
/// 1. a plain aggregate `SELECT` (one block);
/// 2. an outer `SELECT` of variables over one or more `{ SELECT ... }`
///    subqueries (one block each) — the Fig. 1 / MG-query shape.
pub fn extract(query: &Query) -> Result<AnalyticalQuery, ExtractError> {
    let select = &query.select;
    let subselects = select.pattern.subselects();
    if subselects.is_empty() {
        let block = block_from_select(select)?;
        let projection = select.output_vars();
        return Ok(AnalyticalQuery {
            blocks: vec![block],
            projection,
        });
    }

    // Outer query: variables only, pattern must be exactly the subselects.
    for item in &select.projection {
        if !matches!(item, ProjectionItem::Var(_)) {
            return Err(ExtractError::Unsupported(
                "outer SELECT over subqueries must project plain variables".into(),
            ));
        }
    }
    for el in &select.pattern.elements {
        match el {
            PatternElement::SubSelect(_) => {}
            other => {
                return Err(ExtractError::Unsupported(format!(
                    "outer pattern may contain only subselects, found {other:?}"
                )))
            }
        }
    }
    let blocks = subselects
        .iter()
        .map(|s| block_from_select(s))
        .collect::<Result<Vec<_>, _>>()?;
    let projection: Vec<Var> = select.output_vars();
    let aq = AnalyticalQuery { blocks, projection };
    aq.resolve_projection()?;
    Ok(aq)
}

fn block_from_select(select: &SelectQuery) -> Result<GroupingBlock, ExtractError> {
    if !select.has_aggregates() {
        return Err(ExtractError::Unsupported(
            "each grouping block must compute at least one aggregate".into(),
        ));
    }
    if select.distinct {
        return Err(ExtractError::Unsupported(
            "DISTINCT blocks are outside the engine subset".into(),
        ));
    }
    let mut triples = Vec::new();
    let mut filters = Vec::new();
    for el in &select.pattern.elements {
        match el {
            PatternElement::Triple(tp) => triples.push(tp.clone()),
            PatternElement::Filter(f) => filters.push(f.clone()),
            PatternElement::SubSelect(_) => {
                return Err(ExtractError::Unsupported(
                    "nested subqueries below a grouping block".into(),
                ))
            }
            PatternElement::Optional(_) => {
                return Err(ExtractError::Unsupported(
                    "OPTIONAL inside a grouping block".into(),
                ))
            }
        }
    }
    let mut aggregates = Vec::new();
    for item in &select.projection {
        match item {
            ProjectionItem::Var(v) => {
                if !select.group_by.contains(v) {
                    return Err(ExtractError::Unsupported(format!(
                        "projected variable {v} is not a grouping key"
                    )));
                }
            }
            ProjectionItem::Aggregate {
                func,
                arg,
                alias,
                distinct,
            } => {
                if *distinct {
                    return Err(ExtractError::Unsupported(
                        "DISTINCT aggregates are outside the engine subset".into(),
                    ));
                }
                aggregates.push(AggItem {
                    func: *func,
                    arg: arg.clone(),
                    alias: alias.clone(),
                });
            }
        }
    }
    let block = GroupingBlock {
        triples,
        filters,
        group_by: select.group_by.clone(),
        aggregates,
    };
    // Validate variable references eagerly.
    let dec = block.decomposition()?;
    for v in &block.group_by {
        resolve_block_var(&dec, v)?;
    }
    for a in &block.aggregates {
        if let Some(arg) = &a.arg {
            resolve_block_var(&dec, arg)?;
        }
    }
    Ok(block)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapida_sparql::parse_query;

    const MG1_LIKE: &str = "
        PREFIX ex: <http://x/>
        SELECT ?f ?cntF ?cntT {
          { SELECT ?f (COUNT(?pr2) AS ?cntF)
            { ?p2 a ex:T1 ; ex:feature ?f . ?o2 ex:product ?p2 ; ex:price ?pr2 . }
            GROUP BY ?f }
          { SELECT (COUNT(?pr) AS ?cntT)
            { ?p1 a ex:T1 . ?o1 ex:product ?p1 ; ex:price ?pr . } }
        }";

    #[test]
    fn extracts_two_block_query() {
        let q = parse_query(MG1_LIKE).unwrap();
        let aq = extract(&q).unwrap();
        assert_eq!(aq.blocks.len(), 2);
        assert_eq!(aq.blocks[0].group_by.len(), 1);
        assert!(aq.blocks[1].group_by.is_empty());
        assert_eq!(aq.projection.len(), 3);
        let resolved = aq.resolve_projection().unwrap();
        assert_eq!(resolved[0], (0, ColRef::Key(0)));
        assert_eq!(resolved[1], (0, ColRef::Agg(0)));
        assert_eq!(resolved[2], (1, ColRef::Agg(0)));
    }

    #[test]
    fn extracts_single_block_query() {
        let q = parse_query(
            "PREFIX ex: <http://x/>
             SELECT ?c (SUM(?pr) AS ?s) { ?o ex:price ?pr ; ex:country ?c . } GROUP BY ?c",
        )
        .unwrap();
        let aq = extract(&q).unwrap();
        assert_eq!(aq.blocks.len(), 1);
        assert_eq!(aq.blocks[0].aggregates[0].func, AggFunc::Sum);
    }

    #[test]
    fn shared_keys_between_blocks() {
        let q = parse_query(
            "PREFIX ex: <http://x/>
             SELECT ?c ?a ?b {
               { SELECT ?c ?f (COUNT(?x) AS ?a)
                 { ?o ex:country ?c ; ex:feature ?f ; ex:val ?x . } GROUP BY ?c ?f }
               { SELECT ?c (COUNT(?y) AS ?b)
                 { ?o2 ex:country ?c ; ex:val ?y . } GROUP BY ?c }
             }",
        )
        .unwrap();
        let aq = extract(&q).unwrap();
        assert_eq!(aq.shared_keys(0, 1), vec![Var::new("c")]);
    }

    #[test]
    fn rejects_non_aggregate_block() {
        let q = parse_query(
            "PREFIX ex: <http://x/>
             SELECT ?x { { SELECT ?x { ?x ex:p ?y . } } }",
        )
        .unwrap();
        assert!(matches!(extract(&q), Err(ExtractError::Unsupported(_))));
    }

    #[test]
    fn rejects_projection_of_non_key() {
        let q = parse_query(
            "PREFIX ex: <http://x/>
             SELECT ?y (COUNT(?x) AS ?n) { ?s ex:p ?x ; ex:q ?y . } GROUP BY ?x",
        )
        .unwrap();
        assert!(extract(&q).is_err());
    }

    #[test]
    fn rejects_unknown_group_var() {
        let q = parse_query(
            "PREFIX ex: <http://x/>
             SELECT ?zz (COUNT(?x) AS ?n) { ?s ex:p ?x . } GROUP BY ?zz",
        )
        .unwrap();
        assert!(matches!(
            extract(&q),
            Err(ExtractError::UnknownBlockVar(_))
        ));
    }

    #[test]
    fn resolves_block_vars() {
        let q = parse_query(MG1_LIKE).unwrap();
        let aq = extract(&q).unwrap();
        let dec = aq.blocks[0].decomposition().unwrap();
        match resolve_block_var(&dec, &Var::new("f")).unwrap() {
            BlockVarBinding::ObjectOf { star, .. } => assert_eq!(star, 0),
            other => panic!("unexpected {other:?}"),
        }
        match resolve_block_var(&dec, &Var::new("p2")).unwrap() {
            BlockVarBinding::Subject { star } => assert_eq!(star, 0),
            other => panic!("unexpected {other:?}"),
        }
        match resolve_block_var(&dec, &Var::new("pr2")).unwrap() {
            BlockVarBinding::ObjectOf { star, .. } => assert_eq!(star, 1),
            other => panic!("unexpected {other:?}"),
        }
    }
}
