//! Relational physical MR operators for the Hive-style engines: VP scans,
//! reduce-side multi-way (outer) joins, map-side broadcast joins, group-by
//! aggregation with map-side partial aggregation, and distinct projection.

use crate::rows::{decode_row, decode_row_into, encode_cell, encode_row, row_bytes, RVal};
use rapida_mapred::codec::{read_varint, write_varint};
use rapida_mapred::{
    InputSrc, MapOutput, MapTask, MapTaskFactory, ReduceOutput, ReduceTask, SimDfs,
};
use rapida_ntga::{AggOp, AggRec, AggTable, NumericSnapshot, PartialAgg};
use rapida_rdf::{FxHashMap, FxHashSet};
use rapida_sparql::ast::CmpOp;
use rapida_storage::decode_segment;
use std::sync::{Arc, OnceLock};

/// Shared lexical snapshot type (regex filters).
pub type LexicalSnapshot = Arc<Vec<String>>;

/// An id-level value predicate (compiled from a `ValuePred` against the
/// catalog).
#[derive(Debug, Clone, PartialEq)]
pub enum IdPred {
    /// Numeric comparison via the numeric snapshot.
    Num {
        /// Operator.
        op: CmpOp,
        /// Constant.
        rhs: f64,
    },
    /// Identity comparison against a term id.
    IdEq {
        /// `=` vs `!=`.
        eq: bool,
        /// Constant id ([`crate::catalog::MISSING_ID`] matches nothing).
        rhs: u64,
    },
    /// Substring containment on the lexical form.
    Contains {
        /// Pattern.
        pattern: String,
        /// Case-insensitive flag.
        case_insensitive: bool,
    },
}

impl IdPred {
    /// Evaluate against a term id.
    pub fn eval(&self, id: u64, numeric: &NumericSnapshot, lexical: &LexicalSnapshot) -> bool {
        match self {
            IdPred::Num { op, rhs } => {
                let Some(v) = numeric.get(id as usize).copied().flatten() else {
                    return false;
                };
                match op {
                    CmpOp::Eq => v == *rhs,
                    CmpOp::Ne => v != *rhs,
                    CmpOp::Lt => v < *rhs,
                    CmpOp::Le => v <= *rhs,
                    CmpOp::Gt => v > *rhs,
                    CmpOp::Ge => v >= *rhs,
                }
            }
            IdPred::IdEq { eq, rhs } => (id == *rhs) == *eq,
            IdPred::Contains {
                pattern,
                case_insensitive,
            } => match lexical.get(id as usize) {
                None => false,
                Some(lex) => {
                    if *case_insensitive {
                        lex.to_lowercase().contains(&pattern.to_lowercase())
                    } else {
                        lex.contains(pattern.as_str())
                    }
                }
            },
        }
    }
}

/// A predicate bound to a row column. `Null` cells fail every predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct PredOnCol {
    /// Column index.
    pub col: usize,
    /// The predicate.
    pub pred: IdPred,
}

impl PredOnCol {
    fn eval(&self, row: &[RVal], numeric: &NumericSnapshot, lexical: &LexicalSnapshot) -> bool {
        match row[self.col] {
            RVal::Id(id) => self.pred.eval(id, numeric, lexical),
            RVal::Num(_) | RVal::Null => false,
        }
    }
}

/// How a job input's records become rows.
#[derive(Debug, Clone, PartialEq)]
pub enum ScanKind {
    /// VP segment records → rows `[s, o]`.
    VpFull,
    /// VP segment records → rows `[s]` (type partitions).
    VpSubjectOnly,
    /// VP segment records filtered to `o == id` → rows `[s]`.
    VpConstObject(u64),
    /// Records are already encoded rows of the given width.
    Rows(usize),
}

impl ScanKind {
    /// Output row width.
    pub fn width(&self) -> usize {
        match self {
            ScanKind::VpFull => 2,
            ScanKind::VpSubjectOnly | ScanKind::VpConstObject(_) => 1,
            ScanKind::Rows(w) => *w,
        }
    }

    /// Decode one record into zero or more rows. `row` is a reused scratch
    /// buffer: each row is built in place and handed to the sink as a
    /// borrowed slice, so a segment scan performs no per-row allocation.
    ///
    /// Returns `false` when the record is malformed and was quarantined —
    /// callers surface that through `MapOutput::skip_corrupt` so undecodable
    /// input is counted, never silently dropped.
    fn scan(&self, rec: &[u8], row: &mut Vec<RVal>, mut sink: impl FnMut(&[RVal])) -> bool {
        match self {
            ScanKind::VpFull => {
                let Some(pairs) = decode_segment(rec) else {
                    return false;
                };
                for (s, o) in pairs {
                    row.clear();
                    row.push(RVal::Id(s));
                    row.push(RVal::Id(o));
                    sink(row);
                }
            }
            ScanKind::VpSubjectOnly => {
                let Some(pairs) = decode_segment(rec) else {
                    return false;
                };
                for (s, _) in pairs {
                    row.clear();
                    row.push(RVal::Id(s));
                    sink(row);
                }
            }
            ScanKind::VpConstObject(oid) => {
                let Some(pairs) = decode_segment(rec) else {
                    return false;
                };
                for (s, o) in pairs {
                    if o == *oid {
                        row.clear();
                        row.push(RVal::Id(s));
                        sink(row);
                    }
                }
            }
            ScanKind::Rows(_) => {
                if !decode_row_into(rec, row) {
                    return false;
                }
                sink(row);
            }
        }
        true
    }
}

/// One input of a join cycle.
#[derive(Debug, Clone)]
pub struct JoinInputCfg {
    /// Scan kind.
    pub scan: ScanKind,
    /// Column holding the join key.
    pub key_col: usize,
    /// Scan-level predicates (FILTER pushdown, ORC predicate analog).
    pub scan_preds: Vec<PredOnCol>,
    /// Left-outer input (MQO optional properties).
    pub optional: bool,
}

/// Shared config of a reduce-side join cycle.
#[derive(Clone)]
pub struct JoinCycleCfg {
    /// Inputs aligned with the job's input datasets.
    pub inputs: Vec<JoinInputCfg>,
    /// Output row layout: `(input, column)` per output cell.
    pub output_cols: Vec<(usize, usize)>,
    /// Implicit equality constraints between duplicated variables.
    pub eq_checks: Vec<((usize, usize), (usize, usize))>,
    /// Predicates applied to the merged output row.
    pub post_preds: Vec<PredOnCol>,
    /// Numeric snapshot.
    pub numeric: NumericSnapshot,
    /// Lexical snapshot.
    pub lexical: LexicalSnapshot,
}

/// ORC-style row-group skipping: can the whole segment be skipped because
/// a predicate on the object column excludes its zone map? (The paper §5.1:
/// ORC's "light-weight indexes to skip row groups for predicate-based
/// filtering".) Two zone maps apply:
///
/// * the **numeric** min/max range, when every object in the segment is a
///   numeric literal (see `SegmentStats::numeric`'s `None` contract —
///   `None` means "unknown, never skip"), against `Num` predicates;
/// * the **id** min/max range (`o_min`/`o_max`, always present), against
///   constant-object scans and positive `IdEq` equality predicates.
pub fn segment_skippable(rec: &[u8], scan: &ScanKind, preds: &[PredOnCol]) -> bool {
    if matches!(scan, ScanKind::Rows(_)) {
        return false;
    }
    let Some(stats) = rapida_storage::decode_stats(rec) else {
        return false;
    };
    // Id zone map: a constant-object scan whose id falls outside the
    // segment's object range matches nothing in it. An empty segment
    // (degenerate 0..=0 range) is never worth a special case — scanning it
    // is free.
    if stats.rows > 0 {
        if let ScanKind::VpConstObject(oid) = scan {
            if *oid < stats.o_min || *oid > stats.o_max {
                return true;
            }
        }
    }
    preds.iter().any(|p| {
        if p.col != 1 {
            return false;
        }
        match &p.pred {
            IdPred::Num { op, rhs } => {
                let Some((lo, hi)) = stats.numeric else {
                    return false;
                };
                match op {
                    CmpOp::Lt => lo >= *rhs,
                    CmpOp::Le => lo > *rhs,
                    CmpOp::Gt => hi <= *rhs,
                    CmpOp::Ge => hi < *rhs,
                    CmpOp::Eq => *rhs < lo || *rhs > hi,
                    CmpOp::Ne => false,
                }
            }
            IdPred::IdEq { eq: true, rhs } => {
                stats.rows > 0 && (*rhs < stats.o_min || *rhs > stats.o_max)
            }
            _ => false,
        }
    })
}

/// Map task of a reduce-side join: scan, filter, tag, emit by key. Scratch
/// buffers persist across records (cleared, never reallocated).
pub struct JoinMapTask {
    cfg: Arc<JoinCycleCfg>,
    row_buf: Vec<RVal>,
    key_buf: Vec<u8>,
    val_buf: Vec<u8>,
}

impl JoinMapTask {
    /// Create from shared config.
    pub fn new(cfg: Arc<JoinCycleCfg>) -> Self {
        JoinMapTask {
            cfg,
            row_buf: Vec::new(),
            key_buf: Vec::new(),
            val_buf: Vec::new(),
        }
    }
}

impl MapTask for JoinMapTask {
    fn map(&mut self, src: InputSrc, record: &[u8], out: &mut MapOutput) {
        let JoinMapTask {
            cfg,
            row_buf,
            key_buf,
            val_buf,
        } = self;
        let Some(input) = cfg.inputs.get(src.dataset) else {
            return;
        };
        if segment_skippable(record, &input.scan, &input.scan_preds) {
            out.skip_segment(record.len());
            return;
        }
        let numeric = &cfg.numeric;
        let lexical = &cfg.lexical;
        let ok = input.scan.scan(record, row_buf, |row| {
            if !input.scan_preds.iter().all(|p| p.eval(row, numeric, lexical)) {
                return;
            }
            let RVal::Id(key) = row[input.key_col] else {
                return; // Null join keys never match.
            };
            key_buf.clear();
            write_varint(key_buf, key);
            val_buf.clear();
            write_varint(val_buf, src.dataset as u64);
            encode_row(row, val_buf);
            out.emit(key_buf, val_buf);
        });
        if !ok {
            out.skip_corrupt();
        }
    }
}

/// Reduce task of a join cycle: multi-way (outer) join per key.
pub struct JoinReduceTask {
    cfg: Arc<JoinCycleCfg>,
}

impl JoinReduceTask {
    /// Key-local (see `rapida_mapred::ReduceTaskFactory::key_local`): each
    /// key's join product is computed from that key's buckets alone and
    /// `cleanup` emits nothing, so factories may wrap this task in
    /// `rapida_mapred::KeyLocal` for shard-parallel reduce.
    pub const KEY_LOCAL: bool = true;

    /// Create from shared config.
    pub fn new(cfg: Arc<JoinCycleCfg>) -> Self {
        JoinReduceTask { cfg }
    }
}

impl ReduceTask for JoinReduceTask {
    fn reduce(&mut self, _key: &[u8], values: &[&[u8]], out: &mut ReduceOutput) {
        let n = self.cfg.inputs.len();
        let mut buckets: Vec<Vec<Vec<RVal>>> = vec![Vec::new(); n];
        for v in values {
            let mut rec = *v;
            let Some(tag) = read_varint(&mut rec) else {
                out.skip_corrupt();
                continue;
            };
            if let Some(row) = decode_row(rec) {
                if let Some(b) = buckets.get_mut(tag as usize) {
                    b.push(row);
                }
            } else {
                out.skip_corrupt();
            }
        }
        // Required inputs must all be present for this key.
        for (i, input) in self.cfg.inputs.iter().enumerate() {
            if !input.optional && buckets[i].is_empty() {
                return;
            }
        }
        // Cartesian across buckets; empty optional buckets pad with None.
        let mut selection: Vec<Option<usize>> = vec![None; n];
        self.combine(0, &mut selection, &buckets, out);
    }
}

impl JoinReduceTask {
    fn combine(
        &self,
        i: usize,
        selection: &mut Vec<Option<usize>>,
        buckets: &[Vec<Vec<RVal>>],
        out: &mut ReduceOutput,
    ) {
        if i == buckets.len() {
            self.emit(selection, buckets, out);
            return;
        }
        if buckets[i].is_empty() {
            selection[i] = None;
            self.combine(i + 1, selection, buckets, out);
        } else {
            for r in 0..buckets[i].len() {
                selection[i] = Some(r);
                self.combine(i + 1, selection, buckets, out);
            }
        }
    }

    fn emit(
        &self,
        selection: &[Option<usize>],
        buckets: &[Vec<Vec<RVal>>],
        out: &mut ReduceOutput,
    ) {
        let cell = |inp: usize, col: usize| -> RVal {
            match selection[inp] {
                Some(r) => buckets[inp][r][col],
                None => RVal::Null,
            }
        };
        for ((i1, c1), (i2, c2)) in &self.cfg.eq_checks {
            let a = cell(*i1, *c1);
            let b = cell(*i2, *c2);
            if let (RVal::Id(x), RVal::Id(y)) = (a, b) {
                if x != y {
                    return;
                }
            }
        }
        let row: Vec<RVal> = self
            .cfg
            .output_cols
            .iter()
            .map(|(i, c)| cell(*i, *c))
            .collect();
        if !self
            .cfg
            .post_preds
            .iter()
            .all(|p| p.eval(&row, &self.cfg.numeric, &self.cfg.lexical))
        {
            return;
        }
        out.write(&row_bytes(&row));
    }
}

/// One broadcast side of a map-side join.
#[derive(Debug, Clone)]
pub struct MapJoinSmall {
    /// DFS dataset to load into memory.
    pub dataset: String,
    /// How its records become rows.
    pub scan: ScanKind,
    /// Join key column within its own rows.
    pub key_col: usize,
    /// Probe column within the accumulated row.
    pub probe_col: usize,
    /// Left-outer probe.
    pub optional: bool,
    /// Scan predicates applied while loading.
    pub scan_preds: Vec<PredOnCol>,
}

/// Config of a map-only broadcast-join cycle. The accumulated row is the
/// stream row followed by each small side's columns, in order.
#[derive(Clone)]
pub struct MapJoinCfg {
    /// Stream-side scan.
    pub stream: JoinInputCfg,
    /// Broadcast sides, probed in order.
    pub smalls: Vec<MapJoinSmall>,
    /// Output layout: indexes into the accumulated row.
    pub output_cols: Vec<usize>,
    /// Equality checks between accumulated-row positions.
    pub eq_checks: Vec<(usize, usize)>,
    /// Predicates on the accumulated row.
    pub post_preds: Vec<PredOnCol>,
    /// Numeric snapshot.
    pub numeric: NumericSnapshot,
    /// Lexical snapshot.
    pub lexical: LexicalSnapshot,
}

type SmallTables = Vec<FxHashMap<u64, Vec<Vec<RVal>>>>;

/// Factory for map-join tasks; loads the broadcast sides lazily on first
/// task creation (by which time the producing jobs have run) — the
/// distributed-cache analog.
pub struct MapJoinFactory {
    cfg: Arc<MapJoinCfg>,
    dfs: SimDfs,
    cache: OnceLock<Arc<SmallTables>>,
}

impl MapJoinFactory {
    /// Create a factory bound to the DFS.
    pub fn new(cfg: Arc<MapJoinCfg>, dfs: SimDfs) -> Self {
        MapJoinFactory {
            cfg,
            dfs,
            cache: OnceLock::new(),
        }
    }

    fn tables(&self) -> Arc<SmallTables> {
        self.cache
            .get_or_init(|| {
                let mut tables = Vec::with_capacity(self.cfg.smalls.len());
                let mut row_buf = Vec::new();
                for small in &self.cfg.smalls {
                    let mut map: FxHashMap<u64, Vec<Vec<RVal>>> = FxHashMap::default();
                    if let Some(ds) = self.dfs.get(&small.dataset) {
                        for rec in ds.iter_records() {
                            // Broadcast sides load at cache-build time, off
                            // the task path — malformed records are dropped
                            // here like any driver-side read; task-level
                            // quarantine counters cover the stream side.
                            let _ = small.scan.scan(rec, &mut row_buf, |row| {
                                if !small
                                    .scan_preds
                                    .iter()
                                    .all(|p| p.eval(row, &self.cfg.numeric, &self.cfg.lexical))
                                {
                                    return;
                                }
                                if let RVal::Id(k) = row[small.key_col] {
                                    map.entry(k).or_default().push(row.to_vec());
                                }
                            });
                        }
                    }
                    tables.push(map);
                }
                Arc::new(tables)
            })
            .clone()
    }
}

impl MapTaskFactory for MapJoinFactory {
    fn create(&self) -> Box<dyn MapTask> {
        Box::new(MapJoinTask {
            cfg: self.cfg.clone(),
            tables: self.tables(),
            row_buf: Vec::new(),
            acc_buf: Vec::new(),
            out_buf: Vec::new(),
        })
    }
}

/// Map task of a broadcast join. The accumulated row, the scan row and the
/// output encoding all live in reusable per-task scratch buffers.
pub struct MapJoinTask {
    cfg: Arc<MapJoinCfg>,
    tables: Arc<SmallTables>,
    row_buf: Vec<RVal>,
    acc_buf: Vec<RVal>,
    out_buf: Vec<u8>,
}

impl MapJoinTask {
    fn probe(&self, i: usize, acc: &mut Vec<RVal>, out_buf: &mut Vec<u8>, out: &mut MapOutput) {
        if i == self.cfg.smalls.len() {
            for (a, b) in &self.cfg.eq_checks {
                if let (RVal::Id(x), RVal::Id(y)) = (acc[*a], acc[*b]) {
                    if x != y {
                        return;
                    }
                }
            }
            if !self
                .cfg
                .post_preds
                .iter()
                .all(|p| p.eval(acc, &self.cfg.numeric, &self.cfg.lexical))
            {
                return;
            }
            // Project + encode straight into the output scratch (same bytes
            // as `row_bytes` of the projected row).
            out_buf.clear();
            write_varint(out_buf, self.cfg.output_cols.len() as u64);
            for &c in &self.cfg.output_cols {
                encode_cell(acc[c], out_buf);
            }
            out.write(out_buf);
            return;
        }
        let small = &self.cfg.smalls[i];
        let width = small.scan.width();
        let key = acc[small.probe_col].id();
        let matches = key.and_then(|k| self.tables[i].get(&k));
        match matches {
            Some(rows) if !rows.is_empty() => {
                for r in rows {
                    let base = acc.len();
                    acc.extend_from_slice(r);
                    self.probe(i + 1, acc, out_buf, out);
                    acc.truncate(base);
                }
            }
            _ => {
                if small.optional {
                    let base = acc.len();
                    acc.extend(std::iter::repeat_n(RVal::Null, width));
                    self.probe(i + 1, acc, out_buf, out);
                    acc.truncate(base);
                }
                // Required side with no match: row is dropped.
            }
        }
    }
}

impl MapTask for MapJoinTask {
    fn map(&mut self, _src: InputSrc, record: &[u8], out: &mut MapOutput) {
        if segment_skippable(record, &self.cfg.stream.scan, &self.cfg.stream.scan_preds) {
            out.skip_segment(record.len());
            return;
        }
        // `probe` needs `&self`, so the scratch buffers are taken out for
        // the duration of the scan and put back after.
        let mut row_buf = std::mem::take(&mut self.row_buf);
        let mut acc = std::mem::take(&mut self.acc_buf);
        let mut out_buf = std::mem::take(&mut self.out_buf);
        let cfg = self.cfg.clone();
        let ok = cfg.stream.scan.scan(record, &mut row_buf, |row| {
            if !cfg
                .stream
                .scan_preds
                .iter()
                .all(|p| p.eval(row, &cfg.numeric, &cfg.lexical))
            {
                return;
            }
            acc.clear();
            acc.extend_from_slice(row);
            self.probe(0, &mut acc, &mut out_buf, out);
        });
        if !ok {
            out.skip_corrupt();
        }
        self.row_buf = row_buf;
        self.acc_buf = acc;
        self.out_buf = out_buf;
    }
}

/// Config of a group-by aggregation cycle over rows.
#[derive(Clone)]
pub struct GroupAggCfg {
    /// Block id stamped on output [`AggRec`]s.
    pub block_id: u8,
    /// How input records become rows (usually `Rows`, but single-table
    /// blocks aggregate straight over a VP scan).
    pub scan: ScanKind,
    /// Scan-level predicates.
    pub scan_preds: Vec<PredOnCol>,
    /// Grouping key columns.
    pub group_cols: Vec<usize>,
    /// `(op, arg column)` per aggregate; `None` = COUNT(*).
    pub aggs: Vec<(AggOp, Option<usize>)>,
    /// Numeric snapshot.
    pub numeric: NumericSnapshot,
    /// Lexical snapshot (scan predicates).
    pub lexical: LexicalSnapshot,
    /// Map-side hash partial aggregation (Hive's hash-based map
    /// aggregation). Ablation knob.
    pub map_side_combine: bool,
}

/// Map task: partial aggregation keyed by the group values. Combining runs
/// on the flat open-addressing [`AggTable`] (no per-group boxed state, no
/// per-record key allocation), drained in deterministic sorted key order
/// in [`MapTask::cleanup`].
pub struct GroupAggMapTask {
    cfg: Arc<GroupAggCfg>,
    table: AggTable,
    row_buf: Vec<RVal>,
    key_ids: Vec<u64>,
    key_buf: Vec<u8>,
    val_buf: Vec<u8>,
    partials: Vec<PartialAgg>,
}

impl GroupAggMapTask {
    /// Create from shared config.
    pub fn new(cfg: Arc<GroupAggCfg>) -> Self {
        GroupAggMapTask {
            cfg,
            table: AggTable::default(),
            row_buf: Vec::new(),
            key_ids: Vec::new(),
            key_buf: Vec::new(),
            val_buf: Vec::new(),
            partials: Vec::new(),
        }
    }
}

/// Extract the group key ids into a reused buffer. `false` = a group
/// column is unbound or non-id, dropping the row.
fn group_key_ids(row: &[RVal], cols: &[usize], out: &mut Vec<u64>) -> bool {
    out.clear();
    for &c in cols {
        match row[c] {
            RVal::Id(id) => out.push(id),
            _ => return false, // Null group keys drop the row.
        }
    }
    true
}

fn fold_row(row: &[RVal], cfg: &GroupAggCfg, partials: &mut [PartialAgg]) {
    for (i, (_, arg)) in cfg.aggs.iter().enumerate() {
        match arg {
            None => partials[i].add(None),
            Some(col) => match row[*col] {
                RVal::Null => {}
                RVal::Id(id) => partials[i].add(cfg.numeric.get(id as usize).copied().flatten()),
                RVal::Num(n) => partials[i].add(Some(n)),
            },
        }
    }
}

impl MapTask for GroupAggMapTask {
    fn map(&mut self, _src: InputSrc, record: &[u8], out: &mut MapOutput) {
        let GroupAggMapTask {
            cfg,
            table,
            row_buf,
            key_ids,
            key_buf,
            val_buf,
            partials,
        } = self;
        if segment_skippable(record, &cfg.scan, &cfg.scan_preds) {
            out.skip_segment(record.len());
            return;
        }
        let ok = cfg.scan.scan(record, row_buf, |row| {
            if !cfg
                .scan_preds
                .iter()
                .all(|p| p.eval(row, &cfg.numeric, &cfg.lexical))
            {
                return;
            }
            if !group_key_ids(row, &cfg.group_cols, key_ids) {
                return;
            }
            if cfg.map_side_combine {
                let slots = table.slots_mut(cfg.group_cols.len() as u64, key_ids, cfg.aggs.len());
                fold_row(row, cfg, slots);
            } else {
                key_buf.clear();
                write_varint(key_buf, cfg.group_cols.len() as u64);
                for &k in key_ids.iter() {
                    write_varint(key_buf, k);
                }
                partials.clear();
                partials.resize(cfg.aggs.len(), PartialAgg::default());
                fold_row(row, cfg, partials);
                val_buf.clear();
                for p in partials.iter() {
                    p.encode(val_buf);
                }
                out.emit(key_buf, val_buf);
            }
        });
        if !ok {
            out.skip_corrupt();
        }
    }

    fn cleanup(&mut self, out: &mut MapOutput) {
        let GroupAggMapTask {
            table,
            key_buf,
            val_buf,
            ..
        } = self;
        // The table tag is the key width, so the re-encoded key bytes are
        // identical to the non-combined emit format.
        table.drain_sorted(|full_key, partials| {
            key_buf.clear();
            for &k in full_key {
                write_varint(key_buf, k);
            }
            val_buf.clear();
            for p in partials {
                p.encode(val_buf);
            }
            out.emit(key_buf, val_buf);
        });
    }
}

/// Reduce task: merge partials and emit one [`AggRec`] per group.
pub struct GroupAggReduceTask {
    cfg: Arc<GroupAggCfg>,
}

impl GroupAggReduceTask {
    /// Key-local: one [`AggRec`] per key group, derived from that group's
    /// partials alone; no `cleanup` emissions.
    pub const KEY_LOCAL: bool = true;

    /// Create from shared config.
    pub fn new(cfg: Arc<GroupAggCfg>) -> Self {
        GroupAggReduceTask { cfg }
    }
}

impl ReduceTask for GroupAggReduceTask {
    fn reduce(&mut self, key: &[u8], values: &[&[u8]], out: &mut ReduceOutput) {
        let mut kb = key;
        let Some(nk) = read_varint(&mut kb) else {
            out.skip_corrupt();
            return;
        };
        let mut group_key = Vec::with_capacity(nk as usize);
        for _ in 0..nk {
            match read_varint(&mut kb) {
                Some(k) => group_key.push(k),
                None => {
                    out.skip_corrupt();
                    return;
                }
            }
        }
        let mut merged = vec![PartialAgg::default(); self.cfg.aggs.len()];
        for v in values {
            let mut vb = *v;
            for m in merged.iter_mut() {
                match PartialAgg::decode(&mut vb) {
                    Some(p) => m.merge(&p),
                    None => {
                        out.skip_corrupt();
                        break;
                    }
                }
            }
        }
        let rec = AggRec {
            id: self.cfg.block_id,
            key: group_key,
            values: merged
                .iter()
                .zip(self.cfg.aggs.iter())
                .map(|(p, (op, _))| p.finalize(*op))
                .collect(),
        };
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        out.write(&buf);
    }
}

/// Config of a distinct-projection cycle (the MQO extraction step).
#[derive(Clone)]
pub struct DistinctCfg {
    /// Columns to project (in output order).
    pub project_cols: Vec<usize>,
    /// Columns that must be non-null for the row to belong to the pattern.
    pub required_cols: Vec<usize>,
}

/// Map task: validate, project, map-side dedup, emit row as key. The
/// projected key is encoded into a reused scratch buffer; only first-seen
/// keys are copied into the dedup set.
pub struct DistinctMapTask {
    cfg: Arc<DistinctCfg>,
    seen: FxHashSet<Vec<u8>>,
    row_buf: Vec<RVal>,
    key_buf: Vec<u8>,
}

impl DistinctMapTask {
    /// Create from shared config.
    pub fn new(cfg: Arc<DistinctCfg>) -> Self {
        DistinctMapTask {
            cfg,
            seen: FxHashSet::default(),
            row_buf: Vec::new(),
            key_buf: Vec::new(),
        }
    }
}

impl MapTask for DistinctMapTask {
    fn map(&mut self, _src: InputSrc, record: &[u8], out: &mut MapOutput) {
        if !decode_row_into(record, &mut self.row_buf) {
            out.skip_corrupt();
            return;
        }
        let row = &self.row_buf;
        if self.cfg.required_cols.iter().any(|&c| row[c].is_null()) {
            return;
        }
        let kb = &mut self.key_buf;
        kb.clear();
        write_varint(kb, self.cfg.project_cols.len() as u64);
        for &c in &self.cfg.project_cols {
            encode_cell(row[c], kb);
        }
        if !self.seen.contains(kb.as_slice()) {
            self.seen.insert(kb.clone());
            out.emit(kb, &[]);
        }
    }
}

/// Reduce task of the distinct cycle: one output row per key.
pub struct DistinctReduceTask;

impl DistinctReduceTask {
    /// Key-local: the output is the key itself, nothing else.
    pub const KEY_LOCAL: bool = true;
}

impl ReduceTask for DistinctReduceTask {
    fn reduce(&mut self, key: &[u8], _values: &[&[u8]], out: &mut ReduceOutput) {
        out.write(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapida_mapred::{DatasetWriter, Engine, FnMapFactory, FnReduceFactory, JobBuilder};

    fn rows_dataset(rows: &[Vec<RVal>]) -> rapida_mapred::Dataset {
        let mut w = DatasetWriter::new(128);
        for r in rows {
            w.push(&row_bytes(r));
        }
        w.finish()
    }

    fn read_rows(dfs: &SimDfs, name: &str) -> Vec<Vec<RVal>> {
        dfs.get(name)
            .unwrap()
            .iter_records()
            .map(|r| decode_row(r).unwrap())
            .collect()
    }

    fn empty_snapshots() -> (NumericSnapshot, LexicalSnapshot) {
        (Arc::new(vec![None; 256]), Arc::new(vec![String::new(); 256]))
    }

    #[test]
    fn reduce_side_inner_join() {
        let dfs = SimDfs::new();
        dfs.put(
            "left",
            rows_dataset(&[
                vec![RVal::Id(1), RVal::Id(10)],
                vec![RVal::Id(2), RVal::Id(20)],
            ]),
        );
        dfs.put(
            "right",
            rows_dataset(&[
                vec![RVal::Id(1), RVal::Id(100)],
                vec![RVal::Id(1), RVal::Id(101)],
                vec![RVal::Id(3), RVal::Id(300)],
            ]),
        );
        let (numeric, lexical) = empty_snapshots();
        let cfg = Arc::new(JoinCycleCfg {
            inputs: vec![
                JoinInputCfg {
                    scan: ScanKind::Rows(2),
                    key_col: 0,
                    scan_preds: vec![],
                    optional: false,
                },
                JoinInputCfg {
                    scan: ScanKind::Rows(2),
                    key_col: 0,
                    scan_preds: vec![],
                    optional: false,
                },
            ],
            output_cols: vec![(0, 0), (0, 1), (1, 1)],
            eq_checks: vec![],
            post_preds: vec![],
            numeric,
            lexical,
        });
        let job = JobBuilder::new("join")
            .input("left")
            .input("right")
            .mapper(Arc::new(FnMapFactory({
                let c = cfg.clone();
                move || JoinMapTask::new(c.clone())
            })))
            .reducer(Arc::new(FnReduceFactory({
                let c = cfg.clone();
                move || JoinReduceTask::new(c.clone())
            })))
            .output("out")
            .build();
        Engine::pinned(dfs.clone()).run_job(&job);
        let mut rows = read_rows(&dfs, "out");
        rows.sort_by_key(|r| (r[0].id(), r[2].id()));
        assert_eq!(
            rows,
            vec![
                vec![RVal::Id(1), RVal::Id(10), RVal::Id(100)],
                vec![RVal::Id(1), RVal::Id(10), RVal::Id(101)],
            ]
        );
    }

    #[test]
    fn reduce_side_left_outer_join() {
        let dfs = SimDfs::new();
        dfs.put(
            "left",
            rows_dataset(&[
                vec![RVal::Id(1), RVal::Id(10)],
                vec![RVal::Id(2), RVal::Id(20)],
            ]),
        );
        dfs.put("right", rows_dataset(&[vec![RVal::Id(1), RVal::Id(100)]]));
        let (numeric, lexical) = empty_snapshots();
        let cfg = Arc::new(JoinCycleCfg {
            inputs: vec![
                JoinInputCfg {
                    scan: ScanKind::Rows(2),
                    key_col: 0,
                    scan_preds: vec![],
                    optional: false,
                },
                JoinInputCfg {
                    scan: ScanKind::Rows(2),
                    key_col: 0,
                    scan_preds: vec![],
                    optional: true,
                },
            ],
            output_cols: vec![(0, 0), (1, 1)],
            eq_checks: vec![],
            post_preds: vec![],
            numeric,
            lexical,
        });
        let job = JobBuilder::new("leftjoin")
            .input("left")
            .input("right")
            .mapper(Arc::new(FnMapFactory({
                let c = cfg.clone();
                move || JoinMapTask::new(c.clone())
            })))
            .reducer(Arc::new(FnReduceFactory({
                let c = cfg.clone();
                move || JoinReduceTask::new(c.clone())
            })))
            .output("out")
            .build();
        Engine::pinned(dfs.clone()).run_job(&job);
        let mut rows = read_rows(&dfs, "out");
        rows.sort_by_key(|r| r[0].id());
        assert_eq!(
            rows,
            vec![
                vec![RVal::Id(1), RVal::Id(100)],
                vec![RVal::Id(2), RVal::Null],
            ]
        );
    }

    #[test]
    fn map_join_broadcast() {
        let dfs = SimDfs::new();
        dfs.put(
            "stream",
            rows_dataset(&[
                vec![RVal::Id(1), RVal::Id(5)],
                vec![RVal::Id(2), RVal::Id(6)],
            ]),
        );
        dfs.put(
            "small",
            rows_dataset(&[vec![RVal::Id(5), RVal::Id(50)], vec![RVal::Id(7), RVal::Id(70)]]),
        );
        let (numeric, lexical) = empty_snapshots();
        let cfg = Arc::new(MapJoinCfg {
            stream: JoinInputCfg {
                scan: ScanKind::Rows(2),
                key_col: 0,
                scan_preds: vec![],
                optional: false,
            },
            smalls: vec![MapJoinSmall {
                dataset: "small".into(),
                scan: ScanKind::Rows(2),
                key_col: 0,
                probe_col: 1,
                optional: false,
                scan_preds: vec![],
            }],
            output_cols: vec![0, 1, 3],
            eq_checks: vec![],
            post_preds: vec![],
            numeric,
            lexical,
        });
        let job = JobBuilder::new("mapjoin")
            .input("stream")
            .mapper(Arc::new(MapJoinFactory::new(cfg, dfs.clone())))
            .output("out")
            .build();
        let m = Engine::pinned(dfs.clone()).run_job(&job);
        assert!(m.map_only);
        let rows = read_rows(&dfs, "out");
        assert_eq!(rows, vec![vec![RVal::Id(1), RVal::Id(5), RVal::Id(50)]]);
    }

    #[test]
    fn group_agg_cycle() {
        let dfs = SimDfs::new();
        let mut numeric = vec![None; 256];
        numeric[100] = Some(10.0);
        numeric[101] = Some(20.0);
        dfs.put(
            "rows",
            rows_dataset(&[
                vec![RVal::Id(1), RVal::Id(100)],
                vec![RVal::Id(1), RVal::Id(101)],
                vec![RVal::Id(2), RVal::Id(100)],
            ]),
        );
        let cfg = Arc::new(GroupAggCfg {
            block_id: 3,
            scan: ScanKind::Rows(2),
            scan_preds: vec![],
            group_cols: vec![0],
            aggs: vec![(AggOp::Sum, Some(1)), (AggOp::Count, Some(1))],
            numeric: Arc::new(numeric),
            lexical: Arc::new(vec![String::new(); 256]),
            map_side_combine: true,
        });
        let job = JobBuilder::new("agg")
            .input("rows")
            .mapper(Arc::new(FnMapFactory({
                let c = cfg.clone();
                move || GroupAggMapTask::new(c.clone())
            })))
            .reducer(Arc::new(FnReduceFactory({
                let c = cfg.clone();
                move || GroupAggReduceTask::new(c.clone())
            })))
            .output("out")
            .build();
        Engine::pinned(dfs.clone()).run_job(&job);
        let mut recs: Vec<AggRec> = dfs
            .get("out")
            .unwrap()
            .iter_records()
            .map(|r| AggRec::decode(r).unwrap())
            .collect();
        recs.sort_by_key(|r| r.key.clone());
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].id, 3);
        assert_eq!(recs[0].key, vec![1]);
        assert_eq!(recs[0].values, vec![Some(30.0), Some(2.0)]);
        assert_eq!(recs[1].values, vec![Some(10.0), Some(1.0)]);
    }

    #[test]
    fn distinct_cycle_validates_and_dedups() {
        let dfs = SimDfs::new();
        dfs.put(
            "rows",
            rows_dataset(&[
                vec![RVal::Id(1), RVal::Id(10), RVal::Id(99)],
                vec![RVal::Id(1), RVal::Id(10), RVal::Id(98)],
                vec![RVal::Id(2), RVal::Null, RVal::Id(97)],
            ]),
        );
        let cfg = Arc::new(DistinctCfg {
            project_cols: vec![0, 1],
            required_cols: vec![1],
        });
        let job = JobBuilder::new("distinct")
            .input("rows")
            .mapper(Arc::new(FnMapFactory({
                let c = cfg.clone();
                move || DistinctMapTask::new(c.clone())
            })))
            .reducer(Arc::new(FnReduceFactory(|| DistinctReduceTask)))
            .output("out")
            .build();
        Engine::pinned(dfs.clone()).run_job(&job);
        let rows = read_rows(&dfs, "out");
        assert_eq!(rows, vec![vec![RVal::Id(1), RVal::Id(10)]]);
    }

    #[test]
    fn segment_skipping_uses_numeric_stats() {
        // A VP segment whose prices are all in [10, 20].
        let rows: Vec<(u64, u64)> = (0..10).map(|i| (i, 100 + i)).collect();
        let mut seg = Vec::new();
        rapida_storage::encode_segment(&rows, |o| Some((o - 90) as f64), &mut seg);
        let pred = |op: CmpOp, rhs: f64| {
            vec![PredOnCol {
                col: 1,
                pred: IdPred::Num { op, rhs },
            }]
        };
        let scan = ScanKind::VpFull;
        // min = 10, max = 19.
        assert!(segment_skippable(&seg, &scan, &pred(CmpOp::Gt, 19.0)));
        assert!(segment_skippable(&seg, &scan, &pred(CmpOp::Lt, 10.0)));
        assert!(segment_skippable(&seg, &scan, &pred(CmpOp::Eq, 50.0)));
        assert!(!segment_skippable(&seg, &scan, &pred(CmpOp::Gt, 15.0)));
        assert!(!segment_skippable(&seg, &scan, &pred(CmpOp::Ne, 15.0)));
        // Row datasets are never skipped.
        assert!(!segment_skippable(&seg, &ScanKind::Rows(2), &pred(CmpOp::Gt, 99.0)));
        // Segments without numeric stats are never skipped.
        let mut seg2 = Vec::new();
        rapida_storage::encode_segment(&rows, |_| None, &mut seg2);
        assert!(!segment_skippable(&seg2, &scan, &pred(CmpOp::Gt, 99.0)));
    }

    #[test]
    fn segment_skipping_uses_id_range_stats() {
        // Object ids in [100, 109]; no numeric values at all.
        let rows: Vec<(u64, u64)> = (0..10).map(|i| (i, 100 + i)).collect();
        let mut seg = Vec::new();
        rapida_storage::encode_segment(&rows, |_| None, &mut seg);
        // Constant-object scans outside the id range skip the segment.
        assert!(segment_skippable(&seg, &ScanKind::VpConstObject(99), &[]));
        assert!(segment_skippable(&seg, &ScanKind::VpConstObject(110), &[]));
        assert!(segment_skippable(&seg, &ScanKind::VpConstObject(u64::MAX), &[]));
        assert!(!segment_skippable(&seg, &ScanKind::VpConstObject(100), &[]));
        assert!(!segment_skippable(&seg, &ScanKind::VpConstObject(105), &[]));
        // Positive IdEq predicates on the object column skip the same way;
        // negative equality never skips.
        let ideq = |eq: bool, rhs: u64| {
            vec![PredOnCol {
                col: 1,
                pred: IdPred::IdEq { eq, rhs },
            }]
        };
        assert!(segment_skippable(&seg, &ScanKind::VpFull, &ideq(true, 99)));
        assert!(!segment_skippable(&seg, &ScanKind::VpFull, &ideq(true, 104)));
        assert!(!segment_skippable(&seg, &ScanKind::VpFull, &ideq(false, 99)));
        // The empty segment is never "skipped" (scanning it is free and the
        // 0..=0 sentinel range must not match real ids).
        let mut empty = Vec::new();
        rapida_storage::encode_segment(&[], |_| None, &mut empty);
        assert!(!segment_skippable(&empty, &ScanKind::VpConstObject(5), &[]));
    }

    #[test]
    fn skipped_segments_are_counted_in_metrics() {
        // Two segments (blocks): objects [100..110) and [200..210). A
        // constant-object scan for 205 must skip the first segment whole
        // and count its bytes as pruned.
        let dfs = SimDfs::new();
        let mut writer = rapida_mapred::DatasetWriter::new(1);
        for base in [100u64, 200] {
            let rows: Vec<(u64, u64)> = (0..10).map(|i| (i, base + i)).collect();
            let mut seg = Vec::new();
            rapida_storage::encode_segment(&rows, |_| None, &mut seg);
            writer.push(&seg);
        }
        dfs.put("vp", writer.finish());
        let lexical: LexicalSnapshot = Arc::new(Vec::new());
        let cfg = Arc::new(GroupAggCfg {
            block_id: 0,
            scan: ScanKind::VpConstObject(205),
            scan_preds: vec![],
            group_cols: vec![0],
            aggs: vec![(AggOp::Count, None)],
            numeric: Arc::new(Vec::new()),
            lexical,
            map_side_combine: true,
        });
        let job = JobBuilder::new("pruned")
            .input("vp")
            .mapper(Arc::new(FnMapFactory({
                let c = cfg.clone();
                move || GroupAggMapTask::new(c.clone())
            })))
            .reducer(Arc::new(FnReduceFactory({
                let c = cfg.clone();
                move || GroupAggReduceTask::new(c.clone())
            })))
            .output("out")
            .build();
        let m = Engine::pinned(dfs.clone()).run_job(&job);
        assert_eq!(m.segments_skipped, 1);
        assert!(m.input_bytes_pruned > 0);
        assert!(m.input_bytes_pruned < m.input_bytes);
        // The surviving segment still produced one group per subject.
        assert_eq!(m.output_records, 1);
    }

    #[test]
    fn scan_pred_filters_at_scan() {
        let dfs = SimDfs::new();
        let mut numeric = vec![None; 256];
        numeric[100] = Some(10.0);
        numeric[101] = Some(99.0);
        dfs.put(
            "rows",
            rows_dataset(&[
                vec![RVal::Id(1), RVal::Id(100)],
                vec![RVal::Id(2), RVal::Id(101)],
            ]),
        );
        let lexical = Arc::new(vec![String::new(); 256]);
        let cfg = Arc::new(MapJoinCfg {
            stream: JoinInputCfg {
                scan: ScanKind::Rows(2),
                key_col: 0,
                scan_preds: vec![PredOnCol {
                    col: 1,
                    pred: IdPred::Num {
                        op: CmpOp::Gt,
                        rhs: 50.0,
                    },
                }],
                optional: false,
            },
            smalls: vec![],
            output_cols: vec![0],
            eq_checks: vec![],
            post_preds: vec![],
            numeric: Arc::new(numeric),
            lexical,
        });
        let job = JobBuilder::new("scanfilter")
            .input("rows")
            .mapper(Arc::new(MapJoinFactory::new(cfg, dfs.clone())))
            .output("out")
            .build();
        Engine::pinned(dfs.clone()).run_job(&job);
        let rows = read_rows(&dfs, "out");
        assert_eq!(rows, vec![vec![RVal::Id(2)]]);
    }
}
