//! Binding-row representation and codec for the relational (Hive-style)
//! engines.

use rapida_mapred::codec::{read_f64, read_varint, write_f64, write_varint};

/// One row cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RVal {
    /// Unbound (outer-join padding).
    Null,
    /// A dictionary-encoded term.
    Id(u64),
    /// A computed numeric value.
    Num(f64),
}

impl RVal {
    /// The id, if bound to a term.
    pub fn id(&self) -> Option<u64> {
        match self {
            RVal::Id(i) => Some(*i),
            _ => None,
        }
    }

    /// Is this cell unbound?
    pub fn is_null(&self) -> bool {
        matches!(self, RVal::Null)
    }
}

/// Encode a row as a DFS record.
pub fn encode_row(row: &[RVal], out: &mut Vec<u8>) {
    write_varint(out, row.len() as u64);
    for v in row {
        encode_cell(*v, out);
    }
}

/// Encode one row cell (the per-cell body of [`encode_row`]). Exposed so
/// operators can project + encode without materializing the output row.
pub fn encode_cell(v: RVal, out: &mut Vec<u8>) {
    match v {
        RVal::Null => out.push(0),
        RVal::Id(i) => {
            out.push(1);
            write_varint(out, i);
        }
        RVal::Num(n) => {
            out.push(2);
            write_f64(out, n);
        }
    }
}

/// Decode a row record.
pub fn decode_row(rec: &[u8]) -> Option<Vec<RVal>> {
    let mut out = Vec::new();
    decode_row_into(rec, &mut out).then_some(out)
}

/// Decode a row record into a reused buffer (cleared first). Returns
/// `false` on malformed input, leaving `out` in an unspecified cleared
/// state. The scratch-row form of [`decode_row`] for per-record hot paths.
pub fn decode_row_into(mut rec: &[u8], out: &mut Vec<RVal>) -> bool {
    out.clear();
    let Some(n) = read_varint(&mut rec) else {
        return false;
    };
    out.reserve((n as usize).min(64));
    for _ in 0..n {
        let Some((tag, rest)) = rec.split_first() else {
            return false;
        };
        rec = rest;
        let v = match tag {
            0 => RVal::Null,
            1 => match read_varint(&mut rec) {
                Some(i) => RVal::Id(i),
                None => return false,
            },
            2 => match read_f64(&mut rec) {
                Some(f) => RVal::Num(f),
                None => return false,
            },
            _ => return false,
        };
        out.push(v);
    }
    true
}

/// Encode a row into a fresh buffer.
pub fn row_bytes(row: &[RVal]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(row.len() * 4 + 2);
    encode_row(row, &mut buf);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_row() {
        let row = vec![RVal::Id(42), RVal::Null, RVal::Num(1.25), RVal::Id(0)];
        assert_eq!(decode_row(&row_bytes(&row)), Some(row));
    }

    #[test]
    fn roundtrip_empty_row() {
        let row: Vec<RVal> = vec![];
        assert_eq!(decode_row(&row_bytes(&row)), Some(row));
    }

    #[test]
    fn truncated_row_fails() {
        let mut b = row_bytes(&[RVal::Id(9000)]);
        b.pop();
        assert_eq!(decode_row(&b), None);
    }
}
