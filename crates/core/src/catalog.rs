//! The data catalog: one loaded dataset in both storage layouts, plus the
//! dictionary snapshots and statistics the planners need.

use rapida_mapred::SimDfs;
use rapida_ntga::NumericSnapshot;
use rapida_rdf::{Dictionary, Graph, GraphStats, Term, TermId};
use rapida_sparql::analysis::PropKey;
use rapida_storage::{StatsCatalog, TgStore, VpKey, VpStore};
use std::sync::Arc;

/// Sentinel id for query constants absent from the data: matches nothing.
pub const MISSING_ID: u64 = u64::MAX;

/// A loaded dataset: dictionary, DFS, both storage layouts, snapshots and
/// statistics.
#[derive(Clone)]
pub struct DataCatalog {
    /// The shared dictionary.
    pub dict: Dictionary,
    /// The simulated DFS holding all table/partition datasets.
    pub dfs: SimDfs,
    /// Vertical-partition store (Hive engines).
    pub vp: VpStore,
    /// Triplegroup store (RAPID engines).
    pub tg: TgStore,
    /// Numeric literal values by raw id.
    pub numeric: NumericSnapshot,
    /// Lexical forms by raw id (regex filters).
    pub lexical: Arc<Vec<String>>,
    /// Graph statistics (property cardinalities, type counts).
    pub stats: Arc<GraphStats>,
    /// Per-predicate count/NDV statistics (sorted; plan-enumeration inputs).
    pub pstats: Arc<StatsCatalog>,
}

/// Load-time tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Rows per VP columnar segment (ORC stripe analog; 1 segment = 1 split).
    pub vp_segment_rows: usize,
    /// Target triplegroup-store split size in bytes.
    pub tg_split_bytes: usize,
    /// Materialize ExtVP semi-join reductions at load time (S2RDF). On by
    /// default: the compilers substitute reductions for full-table scans,
    /// and the byte-identity oracles hold either way.
    pub extvp: bool,
    /// ExtVP selectivity cutoff: a reduction is kept only when it retains at
    /// most this fraction of its base table's rows (S2RDF's 0.25 default).
    pub extvp_threshold: f64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            vp_segment_rows: 8192,
            tg_split_bytes: 256 * 1024,
            extvp: true,
            extvp_threshold: 0.25,
        }
    }
}

impl DataCatalog {
    /// Load a graph into a fresh DFS with default tuning.
    pub fn load(graph: &Graph) -> DataCatalog {
        Self::load_with(graph, LoadConfig::default())
    }

    /// Load a graph with explicit tuning.
    pub fn load_with(graph: &Graph, cfg: LoadConfig) -> DataCatalog {
        let dfs = SimDfs::new();
        let extvp = cfg.extvp.then_some(cfg.extvp_threshold);
        let vp = VpStore::load_ext(graph, &dfs, cfg.vp_segment_rows, extvp);
        let tg = TgStore::load(graph, &dfs, cfg.tg_split_bytes);
        let mut pstats = StatsCatalog::compute(graph);
        pstats.register_ext_tables(vp.ext_tables());
        DataCatalog {
            dict: graph.dict.clone(),
            dfs,
            vp,
            tg,
            numeric: Arc::new(graph.dict.numeric_snapshot()),
            lexical: Arc::new(graph.dict.lexical_snapshot()),
            stats: Arc::new(graph.stats()),
            pstats: Arc::new(pstats),
        }
    }

    /// Raw id of a term, or [`MISSING_ID`] when the term is absent from the
    /// data (scans keyed on it match nothing).
    pub fn id_of(&self, term: &Term) -> u64 {
        self.dict.lookup(term).map(|t| t.0).unwrap_or(MISSING_ID)
    }

    /// Resolve a property key to `(property id, type-object id)`.
    pub fn resolve_prop(&self, key: &PropKey) -> (u64, Option<u64>) {
        let pid = self.id_of(&key.prop);
        let oid = key.type_object.as_ref().map(|o| self.id_of(o));
        (pid, oid)
    }

    /// The VP table key a triple-pattern property resolves to: type
    /// partitions for `rdf:type`-with-constant keys, plain property tables
    /// otherwise.
    pub fn vp_key(&self, key: &PropKey) -> VpKey {
        match &key.type_object {
            Some(obj) => VpKey::TypePartition(TermId(self.id_of(obj))),
            None => VpKey::Prop(TermId(self.id_of(&key.prop))),
        }
    }

    /// Stored size in bytes of the VP table for `key` (0 if absent) — the
    /// statistic behind Hive's map-join decision.
    pub fn vp_bytes(&self, key: &PropKey) -> usize {
        self.vp
            .table(self.vp_key(key))
            .map(|t| t.bytes)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapida_rdf::vocab;

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    fn catalog() -> DataCatalog {
        let mut g = Graph::new();
        for i in 0..10 {
            let s = iri(&format!("p{i}"));
            g.insert_terms(&s, &Term::iri(vocab::RDF_TYPE), &iri("T1"));
            g.insert_terms(&s, &iri("price"), &Term::decimal(i as f64 + 0.5));
        }
        DataCatalog::load(&g)
    }

    #[test]
    fn loads_both_layouts() {
        let c = catalog();
        assert!(c.vp.tables().count() >= 2);
        assert!(!c.tg.classes().is_empty());
        assert_eq!(c.stats.triples, 20);
    }

    #[test]
    fn missing_terms_resolve_to_sentinel() {
        let c = catalog();
        assert_eq!(c.id_of(&iri("nonexistent")), MISSING_ID);
        assert_ne!(c.id_of(&iri("price")), MISSING_ID);
    }

    #[test]
    fn snapshots_expose_values() {
        let c = catalog();
        let pid = c.id_of(&Term::decimal(0.5));
        assert_eq!(c.numeric[pid as usize], Some(0.5));
        assert_eq!(c.lexical[pid as usize], "0.5");
    }

    #[test]
    fn vp_key_routes_type_patterns_to_partitions() {
        let c = catalog();
        let key = PropKey {
            prop: Term::iri(vocab::RDF_TYPE),
            type_object: Some(iri("T1")),
        };
        assert!(matches!(c.vp_key(&key), VpKey::TypePartition(_)));
        assert!(c.vp_bytes(&key) > 0);
        let plain = PropKey {
            prop: iri("price"),
            type_object: None,
        };
        assert!(matches!(c.vp_key(&plain), VpKey::Prop(_)));
    }
}
