//! The four query engines the paper compares (§5): two relational
//! (Hive-style) and two NTGA-based.

pub mod hive;
pub mod rapid;

pub use hive::{HiveConfig, HiveMqo, HiveNaive};
pub use rapid::{RapidAnalytics, RapidPlus};
