//! The relational SQL-on-Hadoop engines: **Hive (Naive)** — direct
//! relational compilation of each grouping block over vertically partitioned
//! tables — and **Hive (MQO)** — the multi-query-optimization rewriting \[27\]:
//! one composite pattern evaluated with left-outer joins, materialized, then
//! per-block extraction + aggregation.

use crate::aquery::{AnalyticalQuery, GroupingBlock};
use crate::catalog::DataCatalog;
use crate::composite::{build_composite, CompositeOutcome, CompositePattern};
use crate::engines::rapid::id_pred_of;
use crate::filters::StarFilter;
use crate::plan::{agg_op_of, finish_plan, next_plan_id, PlanError, QueryEngine, QueryPlan};
use crate::relops::{
    DistinctCfg, DistinctMapTask, DistinctReduceTask, GroupAggCfg, GroupAggMapTask,
    GroupAggReduceTask, JoinCycleCfg, JoinInputCfg, JoinMapTask, JoinReduceTask, MapJoinCfg,
    MapJoinFactory, MapJoinSmall, PredOnCol, ScanKind,
};
use rapida_mapred::{ClusterModel, FnMapFactory, FnReduceFactory, Job, JobBuilder, KeyLocal};
use rapida_ntga::AggOp;
use rapida_rdf::FxHashMap;
use rapida_sparql::analysis::{PropKey, Role, StarDecomposition};
use rapida_storage::{ExtVpKind, ExtVpMeta, VpKey};
use rapida_sparql::ast::{PatternTerm, TriplePattern, Var};
use std::collections::BTreeSet;
use std::sync::Arc;

const NUM_REDUCERS: usize = 8;

/// Shared Hive engine configuration.
#[derive(Debug, Clone)]
pub struct HiveConfig {
    /// Map-join threshold: a join becomes a map-only broadcast join when
    /// every input but the largest is (estimated) below this many stored
    /// bytes — Hive's `hive.mapjoin.smalltable.filesize` analog.
    pub map_join_threshold: usize,
    /// Hash-based map-side partial aggregation.
    pub map_side_agg: bool,
    /// Explicit star-join edge orders, one per planning unit (block index
    /// for the naive planner; unit 0 for the MQO composite). Each entry is a
    /// permutation of the unit's join-edge indexes; the planner consumes
    /// edges in that order as long as every prefix stays connected. Empty =
    /// the default greedy (first connecting edge) order. Set by the plan
    /// enumerator.
    pub join_orders: Vec<Vec<usize>>,
    /// Substitute materialized ExtVP semi-join reductions for full VP
    /// scans where a required join partner makes them sound. Swapping a
    /// scan's dataset never changes query output (the reduction only drops
    /// rows that could not survive the join) and never changes the plan
    /// *shape*: map-join decisions keep pricing the base table, like Hive's
    /// metastore statistics. Ablation knob for the enumerator.
    pub use_extvp: bool,
}

impl Default for HiveConfig {
    fn default() -> Self {
        HiveConfig {
            map_join_threshold: 24 * 1024,
            map_side_agg: true,
            join_orders: Vec::new(),
            use_extvp: true,
        }
    }
}

/// Hive (Naive): sequential relational evaluation of every block.
#[derive(Debug, Clone, Default)]
pub struct HiveNaive {
    /// Engine configuration.
    pub config: HiveConfig,
    /// Cost-based opt-in: when set, `plan` runs the mini-Volcano enumerator
    /// over the Hive plan family and returns the cheapest physical plan
    /// under this cluster model instead of the fixed naive shape.
    pub cost_model: Option<ClusterModel>,
}

/// Hive (MQO): composite pattern via OPTIONAL-style left-outer joins,
/// materialized, then per-block extraction + aggregation \[27\].
#[derive(Debug, Clone, Default)]
pub struct HiveMqo {
    /// Engine configuration.
    pub config: HiveConfig,
    /// Cost-based opt-in (see [`HiveNaive::cost_model`]).
    pub cost_model: Option<ClusterModel>,
}

impl QueryEngine for HiveNaive {
    fn name(&self) -> &'static str {
        "Hive (Naive)"
    }

    fn plan(&self, aq: &AnalyticalQuery, cat: &DataCatalog) -> Result<QueryPlan, PlanError> {
        if let Some(model) = self.cost_model {
            return crate::enumerate::enumerate_best(crate::enumerate::Family::Hive, aq, cat, &model)
                .map(|e| e.plan);
        }
        let pid = next_plan_id("hn");
        let mut planner = RelPlanner::new(cat, &self.config, pid.clone());
        let mut block_datasets = Vec::new();
        for (b, block) in aq.blocks.iter().enumerate() {
            let out = planner.plan_block_naive(block, b as u8)?;
            block_datasets.push(out);
        }
        finish_plan(
            "Hive (Naive)",
            aq,
            planner.jobs,
            block_datasets,
            &cat.dfs,
            &pid,
        )
    }
}

impl QueryEngine for HiveMqo {
    fn name(&self) -> &'static str {
        "Hive (MQO)"
    }

    fn plan(&self, aq: &AnalyticalQuery, cat: &DataCatalog) -> Result<QueryPlan, PlanError> {
        if let Some(model) = self.cost_model {
            return crate::enumerate::enumerate_best(crate::enumerate::Family::Hive, aq, cat, &model)
                .map(|e| e.plan);
        }
        if aq.blocks.len() < 2 {
            // MQO rewriting needs multiple patterns; single blocks compile
            // exactly like naive Hive.
            let naive = HiveNaive {
                config: self.config.clone(),
                cost_model: None,
            };
            let mut plan = naive.plan(aq, cat)?;
            plan.engine = "Hive (MQO)";
            return Ok(plan);
        }
        let composite = match build_composite(&aq.blocks)? {
            CompositeOutcome::Composite(c) => c,
            CompositeOutcome::NotOverlapping(_) => {
                let naive = HiveNaive {
                    config: self.config.clone(),
                    cost_model: None,
                };
                let mut plan = naive.plan(aq, cat)?;
                plan.engine = "Hive (MQO)";
                return Ok(plan);
            }
        };
        let pid = next_plan_id("hm");
        let (jobs, block_datasets) = mqo_block_jobs(&self.config, aq, &composite, cat, pid.clone())?;
        finish_plan("Hive (MQO)", aq, jobs, block_datasets, &cat.dfs, &pid)
    }
}

/// Compile just the shared MQO block jobs — composite QOPT materialization
/// plus per-block extraction/aggregation — without the per-query finishing
/// join, returning `(jobs, per-block output dataset names)`.
///
/// This is the seam the batched serving layer plans through: it fuses the
/// blocks of several overlapping queries into one [`AnalyticalQuery`],
/// builds one composite for the whole batch, compiles the shared jobs here,
/// and demultiplexes the per-block datasets back to member queries (block
/// ids in the outputs are the *combined* block indices, stamped by
/// `group_agg_cycle`). [`HiveMqo::plan`] uses the same seam, so the fused
/// path and the solo path execute identical job shapes.
pub(crate) fn mqo_block_jobs(
    config: &HiveConfig,
    aq: &AnalyticalQuery,
    composite: &CompositePattern,
    cat: &DataCatalog,
    pid: String,
) -> Result<(Vec<Job>, Vec<String>), PlanError> {
    let mut planner = RelPlanner::new(cat, config, pid);
    let block_datasets = planner.plan_mqo(aq, composite)?;
    Ok((planner.jobs, block_datasets))
}

/// A plan-time relation handle.
#[derive(Clone)]
struct Rel {
    dataset: String,
    scan: ScanKind,
    schema: Vec<Var>,
    est_bytes: usize,
    scan_preds: Vec<PredOnCol>,
    optional: bool,
}

impl Rel {
    fn col(&self, v: &Var) -> Option<usize> {
        self.schema.iter().position(|x| x == v)
    }
}

struct RelPlanner<'a> {
    cat: &'a DataCatalog,
    cfg: HiveConfig,
    prefix: String,
    jobs: Vec<Job>,
    cycle: usize,
}

impl<'a> RelPlanner<'a> {
    fn new(cat: &'a DataCatalog, cfg: &HiveConfig, prefix: String) -> Self {
        RelPlanner {
            cat,
            cfg: cfg.clone(),
            prefix,
            jobs: Vec::new(),
            cycle: 0,
        }
    }

    /// A VP-scan relation for one triple pattern, with FILTER pushdown.
    fn tp_rel(
        &self,
        tp: &TriplePattern,
        filters: &FxHashMap<(usize, PropKey), Vec<PredOnCol>>,
        star: usize,
        rename_subject: Option<&Var>,
        rename_object: Option<&Var>,
    ) -> Result<Rel, PlanError> {
        let key = PropKey::of(tp)
            .ok_or_else(|| PlanError::Unsupported("unbound property".into()))?;
        let svar = rename_subject
            .cloned()
            .or_else(|| tp.s.as_var().cloned())
            .ok_or_else(|| PlanError::Unsupported("constant subject".into()))?;
        let vpk = self.cat.vp_key(&key);
        let dataset = format!("{vpk}");
        let est_bytes = self.cat.vp.table(vpk).map(|t| t.bytes).unwrap_or(0);
        let (scan, schema) = if key.is_type_key() {
            (ScanKind::VpSubjectOnly, vec![svar])
        } else {
            match &tp.o {
                PatternTerm::Term(t) => (
                    ScanKind::VpConstObject(self.cat.id_of(t)),
                    vec![svar],
                ),
                PatternTerm::Var(ov) => {
                    let ov = rename_object.cloned().unwrap_or_else(|| ov.clone());
                    if ov == svar {
                        return Err(PlanError::Unsupported(
                            "subject = object self-loop patterns".into(),
                        ));
                    }
                    (ScanKind::VpFull, vec![svar, ov])
                }
            }
        };
        let scan_preds = filters
            .get(&(star, key.clone()))
            .cloned()
            .unwrap_or_default();
        Ok(Rel {
            dataset,
            scan,
            schema,
            est_bytes,
            scan_preds,
            optional: false,
        })
    }

    /// ExtVP partner candidates for the pattern `key` of star `star`:
    /// required same-star siblings yield SS partners (shared subject
    /// variable); the star-join edges of `dec` yield SO partners (this
    /// star's subject is the other side's object) and OS partners (this
    /// pattern's object is the other star's subject). `required` says
    /// whether a `(star, key)` pattern is an inner input of its join —
    /// only required patterns may *reduce* others (a semi-join against an
    /// optional partner could drop rows a left-outer join must keep).
    fn extvp_partners(
        &self,
        dec: &StarDecomposition,
        star: usize,
        key: &PropKey,
        required: &dyn Fn(usize, &PropKey) -> bool,
    ) -> Vec<(ExtVpKind, VpKey)> {
        let mut partners = Vec::new();
        for tp in &dec.stars[star].triples {
            let Some(k2) = PropKey::of(tp) else { continue };
            if k2 != *key && required(star, &k2) {
                partners.push((ExtVpKind::SS, self.cat.vp_key(&k2)));
            }
        }
        for edge in &dec.joins {
            for (me, other) in [(&edge.left, &edge.right), (&edge.right, &edge.left)] {
                if me.star != star {
                    continue;
                }
                match me.role {
                    // The join variable is this star's subject: every
                    // pattern of the star joins through its subject to the
                    // other side's object column.
                    Role::Subject => {
                        if other.role == Role::Object {
                            if let Some(p) = &other.prop {
                                if required(other.star, p) {
                                    partners.push((ExtVpKind::SO, self.cat.vp_key(p)));
                                }
                            }
                        }
                    }
                    // The join variable is this pattern's object (the
                    // edge's own joining pattern only): it must equal the
                    // other star's subject, which in turn must be a subject
                    // of every required pattern over there.
                    Role::Object => {
                        if me.prop.as_ref() == Some(key) && other.role == Role::Subject {
                            for tp in &dec.stars[other.star].triples {
                                let Some(k2) = PropKey::of(tp) else { continue };
                                if required(other.star, &k2) {
                                    partners.push((ExtVpKind::OS, self.cat.vp_key(&k2)));
                                }
                            }
                        }
                    }
                    Role::Property => {}
                }
            }
        }
        partners
    }

    /// Swap `rel`'s scan dataset for the smallest materialized ExtVP
    /// reduction among `partners`, if any survived the load-time
    /// selectivity cutoff. `est_bytes` deliberately keeps the *base*
    /// table's size: the map-join decision models Hive's
    /// `smalltable.filesize` check against metastore statistics of the
    /// base tables, so the fixed engines' plan shapes (and the paper's
    /// pinned cycle counts) are invariant under ExtVP materialization.
    /// The cost enumerator explores the ExtVP × map-join interplay by
    /// sweeping `use_extvp` and measuring.
    fn substitute_extvp(&self, rel: &mut Rel, base: VpKey, partners: &[(ExtVpKind, VpKey)]) {
        if !self.cfg.use_extvp {
            return;
        }
        let mut best: Option<&ExtVpMeta> = None;
        for (kind, partner) in partners {
            if let Some(e) = self.cat.vp.reduction(base, *kind, *partner) {
                // Deterministic tie-break by name after size.
                if best.is_none_or(|b| (e.bytes, e.dataset.as_str()) < (b.bytes, b.dataset.as_str()))
                {
                    best = Some(e);
                }
            }
        }
        if let Some(e) = best {
            rel.dataset = e.dataset.clone();
        }
    }

    /// Compile one join cycle (reduce-side or broadcast) over relations all
    /// keyed on `key_var`. Output schema = `needed ∩ union(schemas)`, key
    /// first.
    fn join_cycle(
        &mut self,
        label: &str,
        tag: &str,
        rels: Vec<Rel>,
        key_var: &Var,
        needed: &BTreeSet<Var>,
    ) -> Result<Rel, PlanError> {
        assert!(rels.len() >= 2);
        self.cycle += 1;
        let out_name = format!("{}_c{}", self.prefix, self.cycle);

        // Output schema: key var first (if needed), then other needed vars.
        let mut out_schema: Vec<Var> = Vec::new();
        if needed.contains(key_var) {
            out_schema.push(key_var.clone());
        }
        for r in &rels {
            for v in &r.schema {
                if needed.contains(v) && !out_schema.contains(v) {
                    out_schema.push(v.clone());
                }
            }
        }
        // Implicit equality checks: non-key vars shared by several inputs.
        let mut shared: Vec<(Var, Vec<(usize, usize)>)> = Vec::new();
        for (i, r) in rels.iter().enumerate() {
            for (c, v) in r.schema.iter().enumerate() {
                if v == key_var {
                    continue;
                }
                match shared.iter_mut().find(|(sv, _)| sv == v) {
                    Some((_, occ)) => occ.push((i, c)),
                    None => shared.push((v.clone(), vec![(i, c)])),
                }
            }
        }
        let eq_checks: Vec<((usize, usize), (usize, usize))> = shared
            .iter()
            .filter(|(_, occ)| occ.len() > 1)
            .flat_map(|(_, occ)| occ.windows(2).map(|w| (w[0], w[1])).collect::<Vec<_>>())
            .collect();

        // Map-join eligibility: everything but the largest below threshold,
        // and the stream side must not be optional.
        let (stream_idx, _) = rels
            .iter()
            .enumerate()
            .max_by_key(|(_, r)| r.est_bytes)
            .expect("non-empty");
        let small_total_ok = rels
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != stream_idx)
            .all(|(_, r)| r.est_bytes <= self.cfg.map_join_threshold);
        let est_out = rels.iter().map(|r| r.est_bytes).min().unwrap_or(0);

        let job = if small_total_ok && !rels[stream_idx].optional {
            // Broadcast join, map-only cycle. Accumulated row layout:
            // stream schema then each small's schema in order.
            let stream = rels[stream_idx].clone();
            let smalls: Vec<&Rel> = rels
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != stream_idx)
                .map(|(_, r)| r)
                .collect();
            let mut acc_schema: Vec<Var> = stream.schema.clone();
            let stream_key = stream
                .col(key_var)
                .ok_or_else(|| PlanError::Unsupported("key var missing in stream".into()))?;
            let mut small_cfgs = Vec::new();
            for r in &smalls {
                let key_col = r
                    .col(key_var)
                    .ok_or_else(|| PlanError::Unsupported("key var missing in input".into()))?;
                small_cfgs.push(MapJoinSmall {
                    dataset: r.dataset.clone(),
                    scan: r.scan.clone(),
                    key_col,
                    probe_col: stream_key,
                    optional: r.optional,
                    scan_preds: r.scan_preds.clone(),
                });
                acc_schema.extend(r.schema.iter().cloned());
            }
            // Positions in the accumulated row.
            let pos_of = |v: &Var| acc_schema.iter().position(|x| x == v);
            let output_cols: Vec<usize> = out_schema
                .iter()
                .map(|v| pos_of(v).expect("output var present"))
                .collect();
            // Equality checks between duplicate occurrences (non-key vars).
            let mut acc_eq: Vec<(usize, usize)> = Vec::new();
            let mut seen: FxHashMap<Var, usize> = FxHashMap::default();
            for (i, v) in acc_schema.iter().enumerate() {
                if v == key_var {
                    continue;
                }
                if let Some(&first) = seen.get(v) {
                    acc_eq.push((first, i));
                } else {
                    seen.insert(v.clone(), i);
                }
            }
            let cfg = Arc::new(MapJoinCfg {
                stream: JoinInputCfg {
                    scan: stream.scan.clone(),
                    key_col: stream_key,
                    scan_preds: stream.scan_preds.clone(),
                    optional: false,
                },
                smalls: small_cfgs,
                output_cols,
                eq_checks: acc_eq,
                post_preds: vec![],
                numeric: self.cat.numeric.clone(),
                lexical: self.cat.lexical.clone(),
            });
            JobBuilder::new(format!("{label} [map-join]"))
                .input(stream.dataset.clone())
                .mapper(Arc::new(MapJoinFactory::new(cfg, self.cat.dfs.clone())))
                .output(out_name.clone())
                .tag(tag)
                .build()
        } else {
            // Reduce-side join.
            let inputs: Vec<JoinInputCfg> = rels
                .iter()
                .map(|r| {
                    Ok(JoinInputCfg {
                        scan: r.scan.clone(),
                        key_col: r
                            .col(key_var)
                            .ok_or_else(|| {
                                PlanError::Unsupported("key var missing in input".into())
                            })?,
                        scan_preds: r.scan_preds.clone(),
                        optional: r.optional,
                    })
                })
                .collect::<Result<_, PlanError>>()?;
            let output_cols: Vec<(usize, usize)> = out_schema
                .iter()
                .map(|v| {
                    // Prefer a required input as the source.
                    rels.iter()
                        .enumerate()
                        .filter(|(_, r)| !r.optional)
                        .find_map(|(i, r)| r.col(v).map(|c| (i, c)))
                        .or_else(|| {
                            rels.iter()
                                .enumerate()
                                .find_map(|(i, r)| r.col(v).map(|c| (i, c)))
                        })
                        .expect("output var present in some input")
                })
                .collect();
            let cfg = Arc::new(JoinCycleCfg {
                inputs,
                output_cols,
                eq_checks,
                post_preds: vec![],
                numeric: self.cat.numeric.clone(),
                lexical: self.cat.lexical.clone(),
            });
            let mut b = JobBuilder::new(label.to_string());
            for r in &rels {
                b = b.input(r.dataset.clone());
            }
            b.mapper(Arc::new(FnMapFactory({
                let c = cfg.clone();
                move || JoinMapTask::new(c.clone())
            })))
            .reducer(Arc::new(KeyLocal(FnReduceFactory({
                let c = cfg.clone();
                move || JoinReduceTask::new(c.clone())
            }))))
            .output(out_name.clone())
            .num_reducers(NUM_REDUCERS)
            .tag(tag)
            .build()
        };
        self.jobs.push(job);
        Ok(Rel {
            dataset: out_name,
            scan: ScanKind::Rows(out_schema.len()),
            schema: out_schema,
            est_bytes: est_out,
            scan_preds: vec![],
            optional: false,
        })
    }

    /// The grouping-aggregation cycle of a block over its final relation.
    fn group_agg_cycle(
        &mut self,
        label: &str,
        rel: &Rel,
        block: &GroupingBlock,
        block_id: u8,
    ) -> Result<String, PlanError> {
        let tag = format!("agg b{block_id}");
        self.cycle += 1;
        let out = format!("{}_agg{}", self.prefix, self.cycle);
        let group_cols = block
            .group_by
            .iter()
            .map(|v| {
                rel.col(v)
                    .ok_or_else(|| PlanError::Unsupported(format!("group var {v} missing")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let aggs: Vec<(AggOp, Option<usize>)> = block
            .aggregates
            .iter()
            .map(|a| {
                Ok((
                    agg_op_of(a.func),
                    match &a.arg {
                        None => None,
                        Some(v) => Some(rel.col(v).ok_or_else(|| {
                            PlanError::Unsupported(format!("agg var {v} missing"))
                        })?),
                    },
                ))
            })
            .collect::<Result<_, PlanError>>()?;
        let cfg = Arc::new(GroupAggCfg {
            block_id,
            scan: rel.scan.clone(),
            scan_preds: rel.scan_preds.clone(),
            group_cols,
            aggs,
            numeric: self.cat.numeric.clone(),
            lexical: self.cat.lexical.clone(),
            map_side_combine: self.cfg.map_side_agg,
        });
        let job = JobBuilder::new(label.to_string())
            .input(rel.dataset.clone())
            .mapper(Arc::new(FnMapFactory({
                let c = cfg.clone();
                move || GroupAggMapTask::new(c.clone())
            })))
            .reducer(Arc::new(KeyLocal(FnReduceFactory({
                let c = cfg.clone();
                move || GroupAggReduceTask::new(c.clone())
            }))))
            .output(out.clone())
            .num_reducers(NUM_REDUCERS)
            .tag(tag)
            .build();
        self.jobs.push(job);
        Ok(out)
    }

    /// Compile filters of a block into per-(star, prop) scan predicates.
    fn compiled_filters(
        &self,
        filters: &[StarFilter],
    ) -> FxHashMap<(usize, PropKey), Vec<PredOnCol>> {
        let mut map: FxHashMap<(usize, PropKey), Vec<PredOnCol>> = FxHashMap::default();
        for f in filters {
            map.entry((f.star, f.prop.clone()))
                .or_default()
                .push(PredOnCol {
                    col: 1, // object column of a VpFull scan
                    pred: id_pred_of(self.cat, &f.pred),
                });
        }
        map
    }

    /// Join the stars of a decomposition (BFS along the join edges),
    /// starting from per-star relations; returns the final relation.
    ///
    /// `unit` indexes into [`HiveConfig::join_orders`]: when an explicit
    /// edge permutation is configured for this planning unit, edges are
    /// offered in that order (each prefix must stay connected, which the
    /// enumerator guarantees; a disconnected prefix falls back to the first
    /// connecting edge of the permuted sequence).
    fn join_stars(
        &mut self,
        label: &str,
        unit: usize,
        dec: &StarDecomposition,
        mut star_rels: Vec<Rel>,
        needed: &BTreeSet<Var>,
    ) -> Result<Rel, PlanError> {
        if dec.stars.len() == 1 {
            return Ok(star_rels.remove(0));
        }
        // Vars needed downstream of star-star joins, including join vars.
        let mut joined: Vec<usize> = Vec::new();
        let mut remaining: Vec<&rapida_sparql::analysis::StarJoin> =
            match self.cfg.join_orders.get(unit) {
                Some(ord) if is_permutation(ord, dec.joins.len()) => {
                    ord.iter().map(|&i| &dec.joins[i]).collect()
                }
                _ => dec.joins.iter().collect(),
            };
        let mut acc: Option<Rel> = None;
        let mut k = 0usize;
        while !remaining.is_empty() {
            let pos = if joined.is_empty() {
                0
            } else {
                remaining
                    .iter()
                    .position(|e| joined.contains(&e.left.star) != joined.contains(&e.right.star))
                    .ok_or_else(|| {
                        PlanError::Unsupported(
                            "cyclic star-join graphs are outside the engine subset".into(),
                        )
                    })?
            };
            let edge = remaining.remove(pos);
            // Needed set for this cycle: global needed + join vars of still
            // pending edges.
            let mut cycle_needed = needed.clone();
            for e in &remaining {
                cycle_needed.insert(e.var.clone());
            }
            let (rels, label_n) = if joined.is_empty() {
                joined.push(edge.left.star);
                joined.push(edge.right.star);
                (
                    vec![
                        star_rels[edge.left.star].clone(),
                        star_rels[edge.right.star].clone(),
                    ],
                    format!("{label}:join {}", edge.var),
                )
            } else {
                let new_star = if joined.contains(&edge.left.star) {
                    edge.right.star
                } else {
                    edge.left.star
                };
                joined.push(new_star);
                (
                    vec![acc.clone().expect("acc set"), star_rels[new_star].clone()],
                    format!("{label}:join {}", edge.var),
                )
            };
            acc = Some(self.join_cycle(
                &label_n,
                &format!("join u{unit} k{k}"),
                rels,
                &edge.var,
                &cycle_needed,
            )?);
            k += 1;
        }
        if joined.len() != dec.stars.len() {
            return Err(PlanError::Unsupported("disconnected star-join graph".into()));
        }
        Ok(acc.expect("at least one join"))
    }

    /// Naive relational plan of one block: star cycles, star-star joins,
    /// grouping-aggregation.
    fn plan_block_naive(&mut self, block: &GroupingBlock, b: u8) -> Result<String, PlanError> {
        let dec = block.decomposition()?;
        let filters =
            self.compiled_filters(&crate::filters::compile_block_filters(block, &dec)?);
        // Needed vars: grouping keys + aggregate args + join vars.
        let mut needed: BTreeSet<Var> = block.group_by.iter().cloned().collect();
        for a in &block.aggregates {
            if let Some(v) = &a.arg {
                needed.insert(v.clone());
            }
        }
        for j in &dec.joins {
            needed.insert(j.var.clone());
        }

        // Per-star relations (a star cycle when the star has ≥ 2 patterns).
        let mut star_rels = Vec::with_capacity(dec.stars.len());
        for (s, star) in dec.stars.iter().enumerate() {
            let rels: Vec<Rel> = star
                .triples
                .iter()
                .map(|tp| {
                    let mut rel = self.tp_rel(tp, &filters, s, None, None)?;
                    // Every pattern of a naive block is an inner input, so
                    // any sibling or join neighbour may reduce it.
                    if let Some(key) = PropKey::of(tp) {
                        let partners = self.extvp_partners(&dec, s, &key, &|_, _| true);
                        self.substitute_extvp(&mut rel, self.cat.vp_key(&key), &partners);
                    }
                    Ok(rel)
                })
                .collect::<Result<_, PlanError>>()?;
            let rel = if rels.len() == 1 {
                rels.into_iter().next().expect("one")
            } else {
                let mut star_needed = needed.clone();
                star_needed.insert(star.subject.clone());
                self.join_cycle(
                    &format!("Hive b{b}:star {}", star.subject),
                    &format!("star u{b} s{s}"),
                    rels,
                    &star.subject,
                    &star_needed,
                )?
            };
            star_rels.push(rel);
        }
        let final_rel =
            self.join_stars(&format!("Hive b{b}"), b as usize, &dec, star_rels, &needed)?;
        self.group_agg_cycle(&format!("Hive b{b}:group-agg"), &final_rel, block, b)
    }

    /// MQO plan: composite QOPT materialization, then per-block extraction
    /// (distinct) + aggregation.
    fn plan_mqo(
        &mut self,
        aq: &AnalyticalQuery,
        composite: &CompositePattern,
    ) -> Result<Vec<String>, PlanError> {
        let decs: Vec<StarDecomposition> = aq
            .blocks
            .iter()
            .map(|blk| blk.decomposition())
            .collect::<Result<_, _>>()?;
        let n_blocks = aq.blocks.len();

        // Composite filter predicates (already composite-star indexed).
        let filters = self.compiled_filters(&composite.filters);

        // Composite variable naming: block 0 names for shared structure,
        // prefixed names for other blocks' secondary properties. Also build
        // each block's var → composite var map.
        let mut var_maps: Vec<FxHashMap<Var, Var>> =
            vec![FxHashMap::default(); n_blocks];
        let mut star_rels: Vec<Vec<Rel>> = Vec::with_capacity(composite.stars.len());
        let mut subjects: Vec<Var> = Vec::with_capacity(composite.stars.len());
        // ExtVP reductions in the composite may only come from *primary*
        // (inner) partners: a secondary pattern is left-outer joined, so
        // semi-joining a required input against it could drop rows the
        // outer join must keep.
        let mqo_required =
            |cs: usize, k: &PropKey| composite.stars[cs].primary.contains(k);
        for (cs, cstar) in composite.stars.iter().enumerate() {
            let subject = decs[0].stars[cs].subject.clone();
            subjects.push(subject.clone());
            let mut rels = Vec::new();
            // Primary properties: block 0's patterns verbatim.
            for key in &cstar.primary {
                let tp = decs[0].stars[cs]
                    .triple_for(key)
                    .expect("primary prop in block 0");
                let mut rel = self.tp_rel(tp, &filters, cs, None, None)?;
                let partners = self.extvp_partners(&decs[0], cs, key, &mqo_required);
                self.substitute_extvp(&mut rel, self.cat.vp_key(key), &partners);
                rels.push(rel);
            }
            // Secondary properties: owner block's pattern, subject renamed
            // to the composite subject, object prefixed, marked optional.
            for sec in &cstar.secondary {
                let owner = sec
                    .present
                    .iter()
                    .position(|&p| p)
                    .expect("secondary prop has an owner");
                let bs = composite.star_map[owner]
                    .iter()
                    .position(|&c| c == cs)
                    .expect("bijective");
                let tp = decs[owner].stars[bs]
                    .triple_for(&sec.prop)
                    .expect("secondary prop in owner");
                let renamed_obj = tp.o.as_var().map(|v| {
                    if owner == 0 {
                        v.clone()
                    } else {
                        Var::new(format!("__b{owner}_{}", v.name()))
                    }
                });
                let mut rel =
                    self.tp_rel(tp, &filters, cs, Some(&subject), renamed_obj.as_ref())?;
                rel.optional = true;
                // An optional input may itself be reduced by required
                // partners: its rows only ever attach to subjects that
                // satisfied every primary pattern.
                let partners = self.extvp_partners(&decs[0], cs, &sec.prop, &mqo_required);
                self.substitute_extvp(&mut rel, self.cat.vp_key(&sec.prop), &partners);
                rels.push(rel);
            }
            star_rels.push(rels);
        }

        // Block var maps.
        for (b, dec) in decs.iter().enumerate() {
            for (bs, star) in dec.stars.iter().enumerate() {
                let cs = composite.star_map[b][bs];
                insert_mapping(&mut var_maps[b], &star.subject, &subjects[cs])?;
                for tp in &star.triples {
                    let Some(ov) = tp.o.as_var() else { continue };
                    let key = PropKey::of(tp).expect("bound property");
                    let is_primary = composite.stars[cs].primary.contains(&key);
                    let target = if is_primary {
                        let tp0 = decs[0].stars[cs]
                            .triple_for(&key)
                            .expect("primary prop in block 0");
                        tp0.o
                            .as_var()
                            .cloned()
                            .ok_or_else(|| {
                                PlanError::Unsupported(
                                    "constant/variable object mismatch on shared property"
                                        .into(),
                                )
                            })?
                    } else {
                        // Secondary properties have one QOPT column, named
                        // after the *owner* block (the first block carrying
                        // the property); every carrying block maps onto it.
                        let sec = composite.stars[cs]
                            .secondary
                            .iter()
                            .find(|sp| sp.prop == key)
                            .expect("non-primary prop is secondary");
                        let owner = sec
                            .present
                            .iter()
                            .position(|&p| p)
                            .expect("secondary prop has an owner");
                        let obs = composite.star_map[owner]
                            .iter()
                            .position(|&c| c == cs)
                            .expect("bijective");
                        let owner_tp = decs[owner].stars[obs]
                            .triple_for(&key)
                            .expect("owner carries the property");
                        let owner_var = owner_tp
                            .o
                            .as_var()
                            .ok_or_else(|| {
                                PlanError::Unsupported(
                                    "constant/variable object mismatch on shared secondary"
                                        .into(),
                                )
                            })?;
                        if owner == 0 {
                            owner_var.clone()
                        } else {
                            Var::new(format!("__b{owner}_{}", owner_var.name()))
                        }
                    };
                    insert_mapping(&mut var_maps[b], ov, &target)?;
                }
            }
        }

        // QOPT needs every composite variable (the paper's point: the
        // materialized intermediate blocks early projection).
        let mut qopt_needed: BTreeSet<Var> = BTreeSet::new();
        for rels in &star_rels {
            for r in rels {
                qopt_needed.extend(r.schema.iter().cloned());
            }
        }

        // Composite star cycles (left-outer joins for secondary inputs).
        let mut star_out = Vec::with_capacity(star_rels.len());
        for (cs, rels) in star_rels.into_iter().enumerate() {
            let rel = if rels.len() == 1 {
                rels.into_iter().next().expect("one")
            } else {
                self.join_cycle(
                    &format!("HiveMQO:composite-star {}", subjects[cs]),
                    &format!("star u0 s{cs}"),
                    rels,
                    &subjects[cs].clone(),
                    &qopt_needed,
                )?
            };
            star_out.push(rel);
        }
        // Composite star-star joins (block 0's join structure).
        let qopt = self.join_stars("HiveMQO:composite", 0, &decs[0], star_out, &qopt_needed)?;

        // When the composite has no secondary properties the blocks are
        // structurally identical: every QOPT row is an exact solution of
        // every block, so the extraction step is unnecessary and each block
        // aggregates straight over QOPT (paper §5.2: MG6 takes 8 MQO cycles).
        let no_secondary = composite.stars.iter().all(|st| st.secondary.is_empty());
        if no_secondary {
            let mut block_datasets = Vec::with_capacity(n_blocks);
            for (b, block) in aq.blocks.iter().enumerate() {
                let mapped_block = remap_block_vars(block, &var_maps[b]);
                let out = self.group_agg_cycle(
                    &format!("HiveMQO:group-agg b{b}"),
                    &qopt,
                    &mapped_block,
                    b as u8,
                )?;
                block_datasets.push(out);
            }
            return Ok(block_datasets);
        }

        // Per block: extraction (distinct over the block's mapped vars,
        // requiring its secondary columns non-null) + aggregation.
        let mut block_datasets = Vec::with_capacity(n_blocks);
        for (b, block) in aq.blocks.iter().enumerate() {
            // The block's own variables, mapped to composite names.
            let mut block_vars: Vec<Var> = Vec::new();
            for tp in &block.triples {
                for v in tp.vars() {
                    let mapped = var_maps[b]
                        .get(v)
                        .ok_or_else(|| {
                            PlanError::Unsupported(format!("unmapped block variable {v}"))
                        })?
                        .clone();
                    if !block_vars.contains(&mapped) {
                        block_vars.push(mapped);
                    }
                }
            }
            let project_cols: Vec<usize> = block_vars
                .iter()
                .map(|v| {
                    qopt.col(v).ok_or_else(|| {
                        PlanError::Unsupported(format!("composite var {v} missing in QOPT"))
                    })
                })
                .collect::<Result<_, _>>()?;
            // Presence validation: the block's secondary-property object
            // columns must be non-null.
            let mut required_cols: Vec<usize> = Vec::new();
            for (cs, cstar) in composite.stars.iter().enumerate() {
                for sec in &cstar.secondary {
                    if !sec.present[b] {
                        continue;
                    }
                    let bs = composite.star_map[b]
                        .iter()
                        .position(|&c| c == cs)
                        .expect("bijective");
                    let tp = decs[b].stars[bs]
                        .triple_for(&sec.prop)
                        .expect("secondary prop present in this block");
                    if let Some(ov) = tp.o.as_var() {
                        let mapped = var_maps[b][ov].clone();
                        required_cols.push(qopt.col(&mapped).expect("in QOPT"));
                    }
                }
            }
            self.cycle += 1;
            let extract_out = format!("{}_x{}", self.prefix, self.cycle);
            let dcfg = Arc::new(DistinctCfg {
                project_cols,
                required_cols,
            });
            let job = JobBuilder::new(format!("HiveMQO:extract b{b}"))
                .input(qopt.dataset.clone())
                .mapper(Arc::new(FnMapFactory({
                    let c = dcfg.clone();
                    move || DistinctMapTask::new(c.clone())
                })))
                .reducer(Arc::new(KeyLocal(FnReduceFactory(|| DistinctReduceTask))))
                .output(extract_out.clone())
                .num_reducers(NUM_REDUCERS)
                .tag(format!("extract b{b}"))
                .build();
            self.jobs.push(job);

            // Aggregate over the extracted rows; the block's group/agg vars
            // live under their composite names.
            let extracted = Rel {
                dataset: extract_out,
                scan: ScanKind::Rows(block_vars.len()),
                schema: block_vars,
                est_bytes: qopt.est_bytes,
                scan_preds: vec![],
                optional: false,
            };
            let mapped_block = remap_block_vars(block, &var_maps[b]);
            let out = self.group_agg_cycle(
                &format!("HiveMQO:group-agg b{b}"),
                &extracted,
                &mapped_block,
                b as u8,
            )?;
            block_datasets.push(out);
        }
        Ok(block_datasets)
    }
}

/// Is `ord` a permutation of `0..n`? Anything else is ignored by
/// [`RelPlanner::join_stars`] (defensive: the enumerator only produces
/// valid permutations, but configs are public).
pub(crate) fn is_permutation(ord: &[usize], n: usize) -> bool {
    if ord.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &i in ord {
        if i >= n || seen[i] {
            return false;
        }
        seen[i] = true;
    }
    true
}

fn insert_mapping(
    map: &mut FxHashMap<Var, Var>,
    from: &Var,
    to: &Var,
) -> Result<(), PlanError> {
    match map.get(from) {
        Some(existing) if existing != to => Err(PlanError::Unsupported(format!(
            "block variable {from} maps to both {existing} and {to}"
        ))),
        _ => {
            map.insert(from.clone(), to.clone());
            Ok(())
        }
    }
}

/// Rewrite a block's grouping/aggregation variables through the composite
/// var map (pattern is irrelevant for the aggregation cycle).
fn remap_block_vars(block: &GroupingBlock, map: &FxHashMap<Var, Var>) -> GroupingBlock {
    let remap = |v: &Var| map.get(v).cloned().unwrap_or_else(|| v.clone());
    GroupingBlock {
        triples: block.triples.clone(),
        filters: vec![],
        group_by: block.group_by.iter().map(&remap).collect(),
        aggregates: block
            .aggregates
            .iter()
            .map(|a| crate::aquery::AggItem {
                func: a.func,
                arg: a.arg.as_ref().map(&remap),
                alias: a.alias.clone(),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aquery::extract;
    use rapida_rdf::Graph;
    use rapida_sparql::parse_query;

    fn catalog() -> DataCatalog {
        let mut g = Graph::new();
        let iri = |s: &str| rapida_rdf::Term::iri(format!("http://x/{s}"));
        for i in 0..20 {
            let p = iri(&format!("p{i}"));
            g.insert_terms(&p, &rapida_rdf::Term::iri(rapida_rdf::vocab::RDF_TYPE), &iri("T1"));
            g.insert_terms(&p, &iri("label"), &rapida_rdf::Term::literal(format!("l{i}")));
            let o = iri(&format!("o{i}"));
            g.insert_terms(&o, &iri("pr"), &p);
            g.insert_terms(&o, &iri("pc"), &rapida_rdf::Term::decimal(i as f64));
        }
        DataCatalog::load(&g)
    }

    #[test]
    fn naive_plan_structure_matches_paper() {
        let cat = catalog();
        let q = parse_query(
            "PREFIX ex: <http://x/>
             SELECT (COUNT(?c) AS ?n)
             { ?p a ex:T1 ; ex:label ?l . ?o ex:pr ?p ; ex:pc ?c . }",
        )
        .unwrap();
        let aq = extract(&q).unwrap();
        let plan = HiveNaive::default().plan(&aq, &cat).unwrap();
        // Paper §5.2: star1, star2, star-star join, group-agg = 4 cycles.
        assert_eq!(plan.cycles(), 4);
        let names: Vec<&str> = plan.jobs.iter().map(|j| j.name.as_str()).collect();
        assert!(names[0].contains("star"));
        assert!(names[2].contains("join"));
        assert!(names[3].contains("group-agg"));
    }

    #[test]
    fn tp_rel_kinds() {
        let cat = catalog();
        let q = parse_query(
            "PREFIX ex: <http://x/>
             SELECT (COUNT(?l) AS ?n)
             { ?p a ex:T1 ; ex:label ?l ; ex:label \"l3\" . }",
        )
        .unwrap();
        let aq = extract(&q).unwrap();
        let block = &aq.blocks[0];
        let planner = RelPlanner::new(&cat, &HiveConfig::default(), "t".into());
        let empty = FxHashMap::default();
        // Type pattern → subject-only scan over the type partition.
        let r0 = planner.tp_rel(&block.triples[0], &empty, 0, None, None).unwrap();
        assert_eq!(r0.scan, ScanKind::VpSubjectOnly);
        assert_eq!(r0.schema.len(), 1);
        // Variable object → full scan.
        let r1 = planner.tp_rel(&block.triples[1], &empty, 0, None, None).unwrap();
        assert_eq!(r1.scan, ScanKind::VpFull);
        assert_eq!(r1.schema.len(), 2);
        // Constant non-type object → filtered subject-only scan.
        let r2 = planner.tp_rel(&block.triples[2], &empty, 0, None, None).unwrap();
        assert!(matches!(r2.scan, ScanKind::VpConstObject(_)));
    }

    #[test]
    fn mqo_single_block_delegates_to_naive() {
        let cat = catalog();
        let q = parse_query(
            "PREFIX ex: <http://x/>
             SELECT (COUNT(?c) AS ?n) { ?o ex:pc ?c . }",
        )
        .unwrap();
        let aq = extract(&q).unwrap();
        let plan = HiveMqo::default().plan(&aq, &cat).unwrap();
        assert_eq!(plan.engine, "Hive (MQO)");
        // Single 1-tp star block: just the aggregation cycle.
        assert_eq!(plan.cycles(), 1);
    }
}
