//! The NTGA-based engines: **RAPID+** (sequential per-pattern evaluation,
//! the paper's baseline \[25,33\]) and **RAPIDAnalytics** (this paper's
//! contribution: composite graph patterns with shared scans, α-join pruning,
//! and parallel Agg-Join evaluation).

use crate::aquery::{resolve_block_var, AnalyticalQuery, BlockVarBinding, GroupingBlock};
use crate::catalog::DataCatalog;
use crate::composite::{build_composite, CompositeOutcome, CompositePattern, EdgeKey};
use crate::filters::{compile_block_filters, StarFilter, ValuePred};
use crate::plan::{agg_op_of, finish_plan, next_plan_id, PlanError, QueryEngine, QueryPlan};
use crate::relops::IdPred;
use rapida_mapred::{ClusterModel, FnMapFactory, FnReduceFactory, Job, JobBuilder, KeyLocal};
use rapida_ntga::{
    AggJoinConfig, AggJoinMapper, AggJoinReducer, AggJoinSpec, AggSpec, AlphaCond,
    AlphaJoinReducer, AlphaTerm, AnnRoute, JoinKey, PropReq, Side, StarRoute, StarSpec,
    TgJoinMapConfig, TgJoinMapper, TgTransform, VarRef,
};
use rapida_sparql::analysis::{PropKey, Role, StarDecomposition};
use rapida_storage::{read_dataset_rows, ExtVpKind, ExtVpMeta};
use rapida_sparql::ast::{PatternTerm, TriplePattern, Var};
use std::sync::Arc;

const NUM_REDUCERS: usize = 8;

/// RAPID+ — sequential NTGA evaluation of each grouping block.
#[derive(Debug, Clone)]
pub struct RapidPlus {
    /// Map-side hash aggregation in Agg-Join (Algorithm 3 ablation knob).
    pub map_side_combine: bool,
    /// Run operators on the owned-decode path instead of the borrowed
    /// triplegroup views (benchmark baseline; byte-identical output).
    pub legacy_owned: bool,
    /// Cost-based mode: enumerate candidate plans across the RAPID family,
    /// price each with this cluster model, and return the cheapest. `None`
    /// (default) keeps the fixed plan above.
    pub cost_model: Option<ClusterModel>,
    /// Explicit star-join edge orders, one entry per planning unit (block
    /// index). Each entry must be a permutation of that block's edge
    /// indexes; missing or invalid entries fall back to the default greedy
    /// order. Set by the enumerator.
    pub join_orders: Vec<Vec<usize>>,
    /// Gate star scans on ExtVP-derived subject sets: a star entering a
    /// join by Subject keeps only triplegroups whose subject appears in
    /// the matching SO reduction. Sound because the α-join is a pure inner
    /// join — gated-out groups could never survive it — so output stays
    /// byte-identical either way.
    pub use_extvp: bool,
}

impl Default for RapidPlus {
    fn default() -> Self {
        RapidPlus {
            map_side_combine: true,
            legacy_owned: false,
            cost_model: None,
            join_orders: Vec::new(),
            use_extvp: true,
        }
    }
}

/// RAPIDAnalytics — composite graph pattern with parallel Agg-Join.
#[derive(Debug, Clone)]
pub struct RapidAnalytics {
    /// Map-side hash aggregation (Algorithm 3 ablation knob).
    pub map_side_combine: bool,
    /// α-join pruning of invalid composite combinations (ablation: off
    /// materializes every combination; per-block α at aggregation time keeps
    /// results correct).
    pub alpha_pruning: bool,
    /// Parallel evaluation of independent aggregations in one cycle
    /// (Fig. 6(b)); off = one Agg-Join cycle per block (Fig. 6(a)).
    pub parallel_agg: bool,
    /// Run operators on the owned-decode path instead of the borrowed
    /// triplegroup views (benchmark baseline; byte-identical output).
    pub legacy_owned: bool,
    /// Cost-based mode: enumerate candidate plans across the RAPID family,
    /// price each with this cluster model, and return the cheapest. `None`
    /// (default) keeps the fixed plan above.
    pub cost_model: Option<ClusterModel>,
    /// Explicit star-join edge orders per planning unit (composite pattern =
    /// unit 0); invalid entries fall back to the default greedy order.
    pub join_orders: Vec<Vec<usize>>,
    /// Gate star scans on ExtVP-derived subject sets (see
    /// [`RapidPlus::use_extvp`]).
    pub use_extvp: bool,
}

impl Default for RapidAnalytics {
    fn default() -> Self {
        RapidAnalytics {
            map_side_combine: true,
            alpha_pruning: true,
            parallel_agg: true,
            legacy_owned: false,
            cost_model: None,
            join_orders: Vec::new(),
            use_extvp: true,
        }
    }
}

impl QueryEngine for RapidPlus {
    fn name(&self) -> &'static str {
        "RAPID+ (Naive)"
    }

    fn plan(&self, aq: &AnalyticalQuery, cat: &DataCatalog) -> Result<QueryPlan, PlanError> {
        if let Some(model) = self.cost_model {
            return crate::enumerate::enumerate_best(
                crate::enumerate::Family::Rapid,
                aq,
                cat,
                &model,
            )
            .map(|e| e.plan);
        }
        let pid = next_plan_id("rp");
        let mut jobs = Vec::new();
        let mut block_datasets = Vec::new();
        for (b, block) in aq.blocks.iter().enumerate() {
            let dec = block.decomposition()?;
            let filters = compile_block_filters(block, &dec)?;
            let specs = block_star_specs(cat, &dec)?;
            let mut prefilters = star_prefilters(cat, &filters, dec.stars.len());
            if self.use_extvp {
                let primary: Vec<Vec<PropKey>> = dec
                    .stars
                    .iter()
                    .map(|s| s.triples.iter().filter_map(PropKey::of).collect())
                    .collect();
                compose_extvp_gates(cat, &mut prefilters, &primary, &block_subject_gates(&dec));
            }
            let edges = compile_edges(cat, &dec)?;
            let planner = TgJoinPlanner {
                cat,
                prefix: format!("{pid}_b{b}"),
                unit: b,
                edge_order: self.join_orders.get(b).cloned().unwrap_or_default(),
                specs,
                prefilters,
                edges,
                conds: Arc::new(Vec::new()),
                legacy_owned: self.legacy_owned,
            };
            let (mut join_jobs, joined) = planner.build_join_jobs()?;
            jobs.append(&mut join_jobs);

            // Agg-Join cycle for this block.
            let spec = block_agg_spec(cat, block, &dec, b as u8, None, AlphaCond::default())?;
            let out = format!("{pid}_b{b}_agg");
            jobs.push(agg_join_job(
                cat,
                &format!("RAPID+:agg-join b{b}"),
                &format!("agg b{b}"),
                vec![spec],
                joined,
                &planner,
                self.map_side_combine,
                self.legacy_owned,
                &out,
            ));
            block_datasets.push(out);
        }
        finish_plan("RAPID+ (Naive)", aq, jobs, block_datasets, &cat.dfs, &pid)
    }
}

impl QueryEngine for RapidAnalytics {
    fn name(&self) -> &'static str {
        "RAPIDAnalytics"
    }

    fn plan(&self, aq: &AnalyticalQuery, cat: &DataCatalog) -> Result<QueryPlan, PlanError> {
        if let Some(model) = self.cost_model {
            return crate::enumerate::enumerate_best(
                crate::enumerate::Family::Rapid,
                aq,
                cat,
                &model,
            )
            .map(|e| e.plan);
        }
        let composite = match build_composite(&aq.blocks)? {
            CompositeOutcome::Composite(c) => c,
            CompositeOutcome::NotOverlapping(_) => {
                // Non-overlapping patterns: the composite rewrite does not
                // apply. When every block is a single star there is still a
                // sharing opportunity within one MR cycle (§2.2): scan the
                // union of covering partitions once, filter per block, and
                // aggregate all blocks in one generalized Agg-Join.
                if let Some(plan) = self.plan_shared_single_star(aq, cat)? {
                    return Ok(plan);
                }
                // Otherwise evaluate like RAPID+.
                let fallback = RapidPlus {
                    map_side_combine: self.map_side_combine,
                    legacy_owned: self.legacy_owned,
                    cost_model: None,
                    join_orders: self.join_orders.clone(),
                    use_extvp: self.use_extvp,
                };
                let mut plan = fallback.plan(aq, cat)?;
                plan.engine = "RAPIDAnalytics";
                return Ok(plan);
            }
        };
        let pid = next_plan_id("ra");
        let decs: Vec<StarDecomposition> = aq
            .blocks
            .iter()
            .map(|b| b.decomposition())
            .collect::<Result<_, _>>()?;

        let specs = composite_star_specs(cat, &composite, &decs)?;
        let mut prefilters = composite_prefilters(cat, &composite);
        if self.use_extvp {
            let primary: Vec<Vec<PropKey>> = composite
                .stars
                .iter()
                .map(|s| s.primary.clone())
                .collect();
            compose_extvp_gates(
                cat,
                &mut prefilters,
                &primary,
                &composite_subject_gates(&composite),
            );
        }
        let edges = composite_edges(cat, &composite);
        // Join-time pruning: the disjunction of every block's positive α.
        let conds: Vec<AlphaCond> = if self.alpha_pruning {
            (0..aq.blocks.len())
                .map(|b| alpha_cond_of(cat, &composite, b))
                .collect()
        } else {
            Vec::new()
        };
        let planner = TgJoinPlanner {
            cat,
            prefix: pid.clone(),
            unit: 0,
            edge_order: self.join_orders.first().cloned().unwrap_or_default(),
            specs,
            prefilters,
            edges,
            conds: Arc::new(conds),
            legacy_owned: self.legacy_owned,
        };
        let (mut jobs, joined) = planner.build_join_jobs()?;

        // Agg-Join specs, one per block, over the composite layout.
        let mut agg_specs = Vec::with_capacity(aq.blocks.len());
        for (b, block) in aq.blocks.iter().enumerate() {
            let alpha = alpha_cond_of(cat, &composite, b);
            agg_specs.push(block_agg_spec(
                cat,
                block,
                &decs[b],
                b as u8,
                Some(&composite.star_map[b]),
                alpha,
            )?);
        }

        let mut block_datasets;
        if self.parallel_agg {
            // One generalized Agg-Join cycle (Fig. 6(b)).
            let out = format!("{pid}_aggs");
            jobs.push(agg_join_job(
                cat,
                "RAPIDAnalytics:parallel-agg-join",
                "agg-par",
                agg_specs,
                joined.clone(),
                &planner,
                self.map_side_combine,
                self.legacy_owned,
                &out,
            ));
            block_datasets = vec![out; aq.blocks.len()];
        } else {
            // Sequential Agg-Joins (Fig. 6(a) ablation).
            block_datasets = Vec::with_capacity(aq.blocks.len());
            for (b, spec) in agg_specs.into_iter().enumerate() {
                let out = format!("{pid}_agg_b{b}");
                jobs.push(agg_join_job(
                    cat,
                    &format!("RAPIDAnalytics:agg-join b{b}"),
                    &format!("agg b{b}"),
                    vec![spec],
                    joined.clone(),
                    &planner,
                    self.map_side_combine,
                    self.legacy_owned,
                    &out,
                ));
                block_datasets.push(out);
            }
        }
        finish_plan("RAPIDAnalytics", aq, jobs, block_datasets, &cat.dfs, &pid)
    }
}

impl RapidAnalytics {
    /// The §2.2 shared-scan fallback: all blocks single-star and
    /// non-overlapping → one Agg-Join cycle over the union of covering
    /// partitions, each block's star filter applied to the shared scan.
    /// Returns `None` when any block has joins (RAPID+ handles those).
    fn plan_shared_single_star(
        &self,
        aq: &AnalyticalQuery,
        cat: &DataCatalog,
    ) -> Result<Option<QueryPlan>, PlanError> {
        let mut raw_filters = Vec::with_capacity(aq.blocks.len());
        let mut agg_specs = Vec::with_capacity(aq.blocks.len());
        let mut coverings: Vec<Vec<rapida_rdf::TermId>> = Vec::new();
        for (b, block) in aq.blocks.iter().enumerate() {
            let dec = block.decomposition()?;
            if dec.stars.len() != 1 {
                return Ok(None);
            }
            let filters = compile_block_filters(block, &dec)?;
            let mut specs = block_star_specs(cat, &dec)?;
            let mut spec = specs.remove(0);
            // Tag this block's star with the block index so the AnnTgs
            // produced by the shared scan route to the right Agg-Join spec.
            spec.star = b as u8;
            let prefilter = star_prefilters(cat, &filters, 1).remove(0);
            coverings.push(
                spec.primary_props()
                    .into_iter()
                    .map(rapida_rdf::TermId)
                    .collect(),
            );
            raw_filters.push((spec, prefilter));
            agg_specs.push(block_agg_spec(
                cat,
                block,
                &dec,
                b as u8,
                Some(&[b]),
                AlphaCond::default(),
            )?);
        }
        let pid = next_plan_id("ras");
        let inputs = cat.tg.datasets_covering_any(&coverings);
        let cfg = Arc::new(AggJoinConfig {
            specs: agg_specs,
            numeric: cat.numeric.clone(),
            raw_filters,
            map_side_combine: self.map_side_combine,
            legacy_owned: self.legacy_owned,
        });
        let out = format!("{pid}_aggs");
        let mut builder = JobBuilder::new("RAPIDAnalytics:shared-scan-agg-join");
        for i in inputs {
            builder = builder.input(i);
        }
        let job = builder
            .mapper(Arc::new(FnMapFactory({
                let c = cfg.clone();
                move || AggJoinMapper::new(c.clone())
            })))
            .reducer(Arc::new(KeyLocal(FnReduceFactory({
                let c = cfg.clone();
                move || AggJoinReducer::new(c.clone())
            }))))
            .output(out.clone())
            .num_reducers(NUM_REDUCERS)
            .tag("agg-shared")
            .build();
        let block_datasets = vec![out; aq.blocks.len()];
        finish_plan(
            "RAPIDAnalytics",
            aq,
            vec![job],
            block_datasets,
            &cat.dfs,
            &pid,
        )
        .map(Some)
    }
}

/// Shared join-cycle planning over star specs + edges.
pub(crate) struct TgJoinPlanner<'a> {
    pub(crate) cat: &'a DataCatalog,
    pub(crate) prefix: String,
    /// Planning-unit index for cost tags (block index, 0 for composites).
    pub(crate) unit: usize,
    /// Explicit edge order (permutation of `0..edges.len()`); anything else
    /// falls back to the default greedy order.
    pub(crate) edge_order: Vec<usize>,
    pub(crate) specs: Vec<StarSpec>,
    pub(crate) prefilters: Vec<Option<TgTransform>>,
    pub(crate) edges: Vec<CompiledEdge>,
    pub(crate) conds: Arc<Vec<AlphaCond>>,
    pub(crate) legacy_owned: bool,
}

#[derive(Debug, Clone)]
pub(crate) struct CompiledEdge {
    l_star: usize,
    r_star: usize,
    l_key: JoinKey,
    r_key: JoinKey,
}

impl TgJoinPlanner<'_> {
    fn route(&self, star: usize, side: Side, key: JoinKey) -> StarRoute {
        StarRoute {
            spec: self.specs[star].clone(),
            side,
            key,
            prefilter: self.prefilters[star].clone(),
        }
    }

    fn covering(&self, stars: &[usize]) -> Vec<String> {
        let reqs: Vec<Vec<rapida_rdf::TermId>> = stars
            .iter()
            .map(|&s| {
                self.specs[s]
                    .primary_props()
                    .into_iter()
                    .map(rapida_rdf::TermId)
                    .collect()
            })
            .collect();
        self.cat.tg.datasets_covering_any(&reqs)
    }

    /// Build the join cycles. Returns `(jobs, joined dataset)`;
    /// `joined = None` for single-star patterns (the Agg-Join scans raw
    /// triplegroups directly).
    pub(crate) fn build_join_jobs(&self) -> Result<(Vec<Job>, Option<String>), PlanError> {
        if self.specs.len() == 1 {
            return Ok((Vec::new(), None));
        }
        let mut jobs = Vec::new();
        let mut joined_stars: Vec<usize> = Vec::new();
        let mut remaining: Vec<&CompiledEdge> =
            if crate::engines::hive::is_permutation(&self.edge_order, self.edges.len()) {
                self.edge_order.iter().map(|&i| &self.edges[i]).collect()
            } else {
                self.edges.iter().collect()
            };
        let mut prev: Option<String> = None;
        let mut cycle = 0usize;
        while !remaining.is_empty() {
            // Pick the next edge: for the first cycle any edge, afterwards
            // one connecting the joined set to a new star.
            let pos = if joined_stars.is_empty() {
                0
            } else {
                remaining
                    .iter()
                    .position(|e| {
                        joined_stars.contains(&e.l_star) != joined_stars.contains(&e.r_star)
                    })
                    .ok_or_else(|| {
                        PlanError::Unsupported(
                            "cyclic star-join graphs are outside the engine subset".into(),
                        )
                    })?
            };
            let edge = remaining.remove(pos);
            cycle += 1;
            let out = format!("{}_join{}", self.prefix, cycle);
            let job = if joined_stars.is_empty() {
                // Both sides raw: the shared scan over covering partitions.
                joined_stars.push(edge.l_star);
                joined_stars.push(edge.r_star);
                let inputs = self.covering(&[edge.l_star, edge.r_star]);
                let cfg = Arc::new(TgJoinMapConfig {
                    raw_inputs: (0..inputs.len()).collect(),
                    star_routes: vec![
                        self.route(edge.l_star, Side::Left, edge.l_key),
                        self.route(edge.r_star, Side::Right, edge.r_key),
                    ],
                    ann_routes: vec![],
                    legacy_owned: self.legacy_owned,
                });
                join_job(
                    &format!("{}:tg-join{}", self.prefix, cycle),
                    &format!("join u{} k{}", self.unit, cycle - 1),
                    inputs,
                    cfg,
                    &self.conds,
                    self.legacy_owned,
                    &out,
                )
            } else {
                // One side is the intermediate, the other a raw star.
                let (new_star, new_key, old_key) =
                    if joined_stars.contains(&edge.l_star) {
                        (edge.r_star, edge.r_key, edge.l_key)
                    } else {
                        (edge.l_star, edge.l_key, edge.r_key)
                    };
                joined_stars.push(new_star);
                let mut inputs = vec![prev.clone().expect("intermediate exists")];
                inputs.extend(self.covering(&[new_star]));
                let cfg = Arc::new(TgJoinMapConfig {
                    raw_inputs: (1..inputs.len()).collect(),
                    star_routes: vec![self.route(new_star, Side::Right, new_key)],
                    ann_routes: vec![AnnRoute {
                        input: 0,
                        side: Side::Left,
                        key: old_key,
                    }],
                    legacy_owned: self.legacy_owned,
                });
                join_job(
                    &format!("{}:tg-join{}", self.prefix, cycle),
                    &format!("join u{} k{}", self.unit, cycle - 1),
                    inputs,
                    cfg,
                    &self.conds,
                    self.legacy_owned,
                    &out,
                )
            };
            jobs.push(job);
            prev = Some(out);
        }
        if joined_stars.len() != self.specs.len() {
            return Err(PlanError::Unsupported(
                "disconnected star-join graph".into(),
            ));
        }
        Ok((jobs, prev))
    }
}

fn join_job(
    name: &str,
    tag: &str,
    inputs: Vec<String>,
    cfg: Arc<TgJoinMapConfig>,
    conds: &Arc<Vec<AlphaCond>>,
    legacy_owned: bool,
    out: &str,
) -> Job {
    let mut b = JobBuilder::new(name);
    for i in inputs {
        b = b.input(i);
    }
    let conds = conds.clone();
    b.mapper(Arc::new(FnMapFactory({
        let c = cfg.clone();
        move || TgJoinMapper::new(c.clone())
    })))
    .reducer(Arc::new(KeyLocal(FnReduceFactory(move || {
        if legacy_owned {
            AlphaJoinReducer::legacy(conds.clone())
        } else {
            AlphaJoinReducer::new(conds.clone())
        }
    }))))
    .output(out)
    .num_reducers(NUM_REDUCERS)
    .tag(tag)
    .build()
}

pub(crate) fn agg_join_job(
    cat: &DataCatalog,
    name: &str,
    tag: &str,
    specs: Vec<AggJoinSpec>,
    joined: Option<String>,
    planner: &TgJoinPlanner<'_>,
    map_side_combine: bool,
    legacy_owned: bool,
    out: &str,
) -> Job {
    let (inputs, raw_filters) = match joined {
        Some(ds) => (vec![ds], Vec::new()),
        None => (
            planner.covering(&[0]),
            vec![(planner.specs[0].clone(), planner.prefilters[0].clone())],
        ),
    };
    let cfg = Arc::new(AggJoinConfig {
        specs,
        numeric: cat.numeric.clone(),
        raw_filters,
        map_side_combine,
        legacy_owned,
    });
    let mut b = JobBuilder::new(name);
    for i in inputs {
        b = b.input(i);
    }
    b.mapper(Arc::new(FnMapFactory({
        let c = cfg.clone();
        move || AggJoinMapper::new(c.clone())
    })))
    .reducer(Arc::new(KeyLocal(FnReduceFactory({
        let c = cfg.clone();
        move || AggJoinReducer::new(c.clone())
    }))))
    .output(out)
    .num_reducers(NUM_REDUCERS)
    .tag(tag)
    .build()
}

/// Id-level property requirement of a triple pattern (object constraints for
/// both `rdf:type PT18` and plain constants like `pub_type "News"`).
fn prop_req_of(cat: &DataCatalog, tp: &TriplePattern) -> Result<PropReq, PlanError> {
    let prop = tp
        .p
        .as_term()
        .ok_or_else(|| PlanError::Unsupported("unbound property".into()))?;
    let pid = cat.id_of(prop);
    Ok(match &tp.o {
        PatternTerm::Term(t) => PropReq::with_object(pid, cat.id_of(t)),
        PatternTerm::Var(_) => PropReq::any(pid),
    })
}

/// Star specs for a single block (all properties primary — the original
/// graph pattern).
pub(crate) fn block_star_specs(
    cat: &DataCatalog,
    dec: &StarDecomposition,
) -> Result<Vec<StarSpec>, PlanError> {
    dec.stars
        .iter()
        .enumerate()
        .map(|(i, star)| {
            let primary = star
                .triples
                .iter()
                .map(|tp| prop_req_of(cat, tp))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(StarSpec {
                star: i as u8,
                primary,
                secondary: vec![],
            })
        })
        .collect()
}

/// Composite star specs: primary = intersection (with constant-object
/// constraints recovered from the blocks), secondary = the rest.
fn composite_star_specs(
    cat: &DataCatalog,
    c: &CompositePattern,
    decs: &[StarDecomposition],
) -> Result<Vec<StarSpec>, PlanError> {
    c.stars
        .iter()
        .enumerate()
        .map(|(cs, star)| {
            let req_of = |key: &PropKey| -> PropReq {
                let (pid, type_obj) = cat.resolve_prop(key);
                match type_obj {
                    Some(o) => PropReq::with_object(pid, o),
                    None => match c.const_object(decs, cs, key) {
                        Some(t) => PropReq::with_object(pid, cat.id_of(&t)),
                        None => PropReq::any(pid),
                    },
                }
            };
            Ok(StarSpec {
                star: cs as u8,
                primary: star.primary.iter().map(&req_of).collect(),
                secondary: star.secondary.iter().map(|s| req_of(&s.prop)).collect(),
            })
        })
        .collect()
}

/// Build per-star prefilter transforms from compiled value filters.
pub(crate) fn star_prefilters(
    cat: &DataCatalog,
    filters: &[StarFilter],
    n_stars: usize,
) -> Vec<Option<TgTransform>> {
    (0..n_stars)
        .map(|s| {
            let preds: Vec<(u64, IdPred)> = filters
                .iter()
                .filter(|f| f.star == s)
                .map(|f| {
                    let (pid, _) = cat.resolve_prop(&f.prop);
                    (pid, id_pred_of(cat, &f.pred))
                })
                .collect();
            make_prefilter(cat, preds)
        })
        .collect()
}

fn composite_prefilters(cat: &DataCatalog, c: &CompositePattern) -> Vec<Option<TgTransform>> {
    star_prefilters(cat, &c.filters, c.stars.len())
}

/// Join edges where a star enters the join by its subject against a
/// partner's `ObjectOf(p)` column: `(subject-side star, partner prop p)`.
fn block_subject_gates(dec: &StarDecomposition) -> Vec<(usize, PropKey)> {
    let mut gates = Vec::new();
    for j in &dec.joins {
        for (me, other) in [(&j.left, &j.right), (&j.right, &j.left)] {
            if me.role == Role::Subject && other.role == Role::Object {
                if let Some(p) = &other.prop {
                    gates.push((me.star, p.clone()));
                }
            }
        }
    }
    gates
}

fn composite_subject_gates(c: &CompositePattern) -> Vec<(usize, PropKey)> {
    let mut gates = Vec::new();
    for j in &c.joins {
        for (star, key, other) in [
            (j.left_star, &j.left, &j.right),
            (j.right_star, &j.right, &j.left),
        ] {
            if *key == EdgeKey::Subject {
                if let EdgeKey::ObjectOf(p) = other {
                    gates.push((star, p.clone()));
                }
            }
        }
    }
    gates
}

/// Compose ExtVP subject gates into per-star prefilters. A spec-matching
/// triplegroup of the subject-side star has its subject in `subjects(a)`
/// for every primary prop `a`, and survives the pure-inner α-join only if
/// that subject also lies in `objects(p)` — together exactly the subject
/// set of the `SO[a|p]` reduction. The smallest applicable reduction is
/// loaded once at plan time as a sorted id set and checked by binary
/// search ahead of the shuffle; stars without a materialized reduction
/// stay ungated. Groups the gate removes could never survive the join,
/// so output is byte-identical either way.
fn compose_extvp_gates(
    cat: &DataCatalog,
    prefilters: &mut [Option<TgTransform>],
    star_primary: &[Vec<PropKey>],
    gates: &[(usize, PropKey)],
) {
    for (star, partner) in gates {
        let partner_key = cat.vp_key(partner);
        let mut best: Option<&ExtVpMeta> = None;
        for a in &star_primary[*star] {
            if let Some(e) = cat.vp.reduction(cat.vp_key(a), ExtVpKind::SO, partner_key) {
                if best
                    .is_none_or(|b| (e.bytes, e.dataset.as_str()) < (b.bytes, b.dataset.as_str()))
                {
                    best = Some(e);
                }
            }
        }
        let Some(e) = best else { continue };
        let Some(ds) = cat.dfs.peek(&e.dataset) else {
            continue;
        };
        let mut subjects: Vec<u64> = read_dataset_rows(&ds).into_iter().map(|(s, _)| s).collect();
        subjects.dedup(); // reduction rows are sorted by (s, o)
        let subjects = Arc::new(subjects);
        let inner = prefilters[*star].take();
        prefilters[*star] = Some(Arc::new(move |tg: rapida_ntga::TripleGroup| {
            let tg = match &inner {
                Some(f) => f(tg)?,
                None => tg,
            };
            subjects.binary_search(&tg.subject).is_ok().then_some(tg)
        }));
    }
}

/// Compile a [`ValuePred`] to the id level.
pub(crate) fn id_pred_of(cat: &DataCatalog, pred: &ValuePred) -> IdPred {
    match pred {
        ValuePred::Num { op, rhs } => IdPred::Num { op: *op, rhs: *rhs },
        ValuePred::TermCmp { eq, rhs } => IdPred::IdEq {
            eq: *eq,
            rhs: cat.id_of(rhs),
        },
        ValuePred::Contains {
            pattern,
            case_insensitive,
        } => IdPred::Contains {
            pattern: pattern.clone(),
            case_insensitive: *case_insensitive,
        },
    }
}

fn make_prefilter(cat: &DataCatalog, preds: Vec<(u64, IdPred)>) -> Option<TgTransform> {
    if preds.is_empty() {
        return None;
    }
    let numeric = cat.numeric.clone();
    let lexical = cat.lexical.clone();
    Some(Arc::new(move |mut tg: rapida_ntga::TripleGroup| {
        tg.triples.retain(|(p, o)| {
            preds
                .iter()
                .filter(|(fp, _)| fp == p)
                .all(|(_, pred)| pred.eval(*o, &numeric, &lexical))
        });
        Some(tg)
    }))
}

fn edge_jk(cat: &DataCatalog, star: usize, key: &EdgeKey) -> JoinKey {
    match key {
        EdgeKey::Subject => JoinKey::Subject { star: star as u8 },
        EdgeKey::ObjectOf(p) => JoinKey::ObjectOf {
            star: star as u8,
            prop: cat.resolve_prop(p).0,
        },
    }
}

pub(crate) fn compile_edges(
    cat: &DataCatalog,
    dec: &StarDecomposition,
) -> Result<Vec<CompiledEdge>, PlanError> {
    dec.joins
        .iter()
        .map(|j| {
            let side_key = |side: &rapida_sparql::analysis::JoinSide| -> JoinKey {
                match side.role {
                    Role::Subject => JoinKey::Subject {
                        star: side.star as u8,
                    },
                    Role::Object => JoinKey::ObjectOf {
                        star: side.star as u8,
                        prop: side
                            .prop
                            .as_ref()
                            .map(|p| cat.resolve_prop(p).0)
                            .unwrap_or(crate::catalog::MISSING_ID),
                    },
                    Role::Property => {
                        unreachable!("property-role joins are rejected by decompose()")
                    }
                }
            };
            Ok(CompiledEdge {
                l_star: j.left.star,
                r_star: j.right.star,
                l_key: side_key(&j.left),
                r_key: side_key(&j.right),
            })
        })
        .collect()
}

fn composite_edges(cat: &DataCatalog, c: &CompositePattern) -> Vec<CompiledEdge> {
    c.joins
        .iter()
        .map(|j| CompiledEdge {
            l_star: j.left_star,
            r_star: j.right_star,
            l_key: edge_jk(cat, j.left_star, &j.left),
            r_key: edge_jk(cat, j.right_star, &j.right),
        })
        .collect()
}

fn alpha_cond_of(cat: &DataCatalog, c: &CompositePattern, block: usize) -> AlphaCond {
    AlphaCond {
        terms: c
            .alpha_positive(block)
            .iter()
            .map(|(star, prop)| AlphaTerm {
                star: *star as u8,
                prop: cat.resolve_prop(prop).0,
                required: true,
            })
            .collect(),
    }
}

/// Build the Agg-Join spec of a block: slots for every distinct pattern
/// variable, grouping/aggregate references by slot. `star_remap` maps block
/// star indexes onto composite star indexes (identity when `None`).
pub(crate) fn block_agg_spec(
    cat: &DataCatalog,
    block: &GroupingBlock,
    dec: &StarDecomposition,
    id: u8,
    star_remap: Option<&[usize]>,
    alpha: AlphaCond,
) -> Result<AggJoinSpec, PlanError> {
    // Distinct variables in first-occurrence order.
    let mut vars: Vec<Var> = Vec::new();
    for tp in &block.triples {
        for v in tp.vars() {
            if !vars.contains(v) {
                vars.push(v.clone());
            }
        }
    }
    let remap = |s: usize| -> u8 {
        match star_remap {
            Some(m) => m[s] as u8,
            None => s as u8,
        }
    };
    let slots: Vec<VarRef> = vars
        .iter()
        .map(|v| {
            Ok(match resolve_block_var(dec, v)? {
                BlockVarBinding::Subject { star } => VarRef::Subject { star: remap(star) },
                BlockVarBinding::ObjectOf { star, prop } => VarRef::ObjectOf {
                    star: remap(star),
                    prop: cat.resolve_prop(&prop).0,
                },
            })
        })
        .collect::<Result<Vec<_>, PlanError>>()?;
    let slot_of = |v: &Var| -> Result<usize, PlanError> {
        vars.iter().position(|x| x == v).ok_or_else(|| {
            PlanError::Extract(crate::aquery::ExtractError::UnknownBlockVar(v.clone()))
        })
    };
    let group_slots = block
        .group_by
        .iter()
        .map(&slot_of)
        .collect::<Result<Vec<_>, _>>()?;
    let aggs = block
        .aggregates
        .iter()
        .map(|a| {
            Ok(AggSpec {
                op: agg_op_of(a.func),
                arg: match &a.arg {
                    None => None,
                    Some(v) => Some(slot_of(v)?),
                },
            })
        })
        .collect::<Result<Vec<_>, PlanError>>()?;
    Ok(AggJoinSpec {
        id,
        slots,
        group_slots,
        aggs,
        alpha,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aquery::extract;
    use rapida_rdf::Graph;
    use rapida_sparql::parse_query;

    fn catalog() -> DataCatalog {
        let mut g = Graph::new();
        let iri = |s: &str| rapida_rdf::Term::iri(format!("http://x/{s}"));
        for i in 0..10 {
            let p = iri(&format!("p{i}"));
            g.insert_terms(&p, &rapida_rdf::Term::iri(rapida_rdf::vocab::RDF_TYPE), &iri("T1"));
            g.insert_terms(&p, &iri("pf"), &iri(&format!("f{}", i % 3)));
            let o = iri(&format!("o{i}"));
            g.insert_terms(&o, &iri("pr"), &p);
            g.insert_terms(&o, &iri("pc"), &rapida_rdf::Term::decimal(i as f64));
        }
        DataCatalog::load(&g)
    }

    fn block(q: &str) -> GroupingBlock {
        extract(&parse_query(q).unwrap()).unwrap().blocks.remove(0)
    }

    #[test]
    fn prop_req_captures_constant_objects() {
        let cat = catalog();
        let b = block(
            "PREFIX ex: <http://x/>
             SELECT (COUNT(?x) AS ?n) { ?s a ex:T1 ; ex:pf ?x . }",
        );
        let req_type = prop_req_of(&cat, &b.triples[0]).unwrap();
        assert!(req_type.object.is_some(), "type object constrained");
        let req_pf = prop_req_of(&cat, &b.triples[1]).unwrap();
        assert!(req_pf.object.is_none(), "variable object unconstrained");
    }

    #[test]
    fn block_star_specs_are_all_primary() {
        let cat = catalog();
        let b = block(
            "PREFIX ex: <http://x/>
             SELECT (COUNT(?c) AS ?n) { ?p a ex:T1 ; ex:pf ?f . ?o ex:pr ?p ; ex:pc ?c . }",
        );
        let dec = b.decomposition().unwrap();
        let specs = block_star_specs(&cat, &dec).unwrap();
        assert_eq!(specs.len(), 2);
        assert!(specs.iter().all(|s| s.secondary.is_empty()));
        assert_eq!(specs[0].primary.len(), 2);
        assert_eq!(specs[1].primary.len(), 2);
    }

    #[test]
    fn block_agg_spec_enumerates_every_pattern_variable() {
        let cat = catalog();
        let b = block(
            "PREFIX ex: <http://x/>
             SELECT ?f (COUNT(?c) AS ?n)
             { ?p a ex:T1 ; ex:pf ?f . ?o ex:pr ?p ; ex:pc ?c . } GROUP BY ?f",
        );
        let dec = b.decomposition().unwrap();
        let spec = block_agg_spec(&cat, &b, &dec, 0, None, AlphaCond::default()).unwrap();
        // Variables: ?p, ?f, ?o, ?c — all four become enumeration slots
        // (SPARQL solution-row semantics), even unreferenced ?o.
        assert_eq!(spec.slots.len(), 4);
        assert_eq!(spec.group_slots.len(), 1);
        assert_eq!(spec.aggs.len(), 1);
    }

    #[test]
    fn compiled_edges_capture_roles() {
        let cat = catalog();
        let b = block(
            "PREFIX ex: <http://x/>
             SELECT (COUNT(?c) AS ?n) { ?p a ex:T1 . ?o ex:pr ?p ; ex:pc ?c . }",
        );
        let dec = b.decomposition().unwrap();
        let edges = compile_edges(&cat, &dec).unwrap();
        assert_eq!(edges.len(), 1);
        assert!(matches!(edges[0].l_key, JoinKey::Subject { star: 0 }));
        assert!(matches!(edges[0].r_key, JoinKey::ObjectOf { star: 1, .. }));
    }

    #[test]
    fn prefilter_drops_failing_triples_only() {
        let cat = catalog();
        let pc = cat.id_of(&rapida_rdf::Term::iri("http://x/pc"));
        let pred = IdPred::Num {
            op: rapida_sparql::ast::CmpOp::Ge,
            rhs: 5.0,
        };
        let f = make_prefilter(&cat, vec![(pc, pred)]).unwrap();
        let lo = cat.id_of(&rapida_rdf::Term::decimal(2.0));
        let hi = cat.id_of(&rapida_rdf::Term::decimal(7.0));
        let tg = rapida_ntga::TripleGroup::new(1, vec![(pc, lo), (pc, hi), (99, 5)]);
        let out = f(tg).unwrap();
        assert!(out.has_triple(pc, hi));
        assert!(!out.has_triple(pc, lo));
        assert!(out.has_prop(99), "unrelated properties untouched");
    }

    /// The ExtVP subject gate on a graph where only 4 of 40 `pa` subjects
    /// are referenced by `pr` objects (SO selectivity 0.1, under the 0.25
    /// threshold): the gated plan must produce identical result rows while
    /// emitting strictly fewer map-output records (groups dropped ahead of
    /// the shuffle).
    #[test]
    fn extvp_subject_gate_prunes_shuffle_but_not_output() {
        let mut g = Graph::new();
        let iri = |s: &str| rapida_rdf::Term::iri(format!("http://x/{s}"));
        for i in 0..40 {
            g.insert_terms(
                &iri(&format!("s{i}")),
                &iri("pa"),
                &iri(&format!("x{}", i % 7)),
            );
        }
        for i in 0..4 {
            let o = iri(&format!("o{i}"));
            g.insert_terms(&o, &iri("pr"), &iri(&format!("s{i}")));
            g.insert_terms(&o, &iri("pc"), &rapida_rdf::Term::decimal(i as f64));
        }
        let cat = DataCatalog::load(&g);
        let aq = extract(
            &parse_query(
                "PREFIX ex: <http://x/>
                 SELECT (COUNT(?c) AS ?n) { ?p ex:pa ?x . ?o ex:pr ?p ; ex:pc ?c . }",
            )
            .unwrap(),
        )
        .unwrap();
        let run = |use_extvp: bool| {
            let engine = RapidPlus {
                use_extvp,
                ..Default::default()
            };
            let plan = engine.plan(&aq, &cat).unwrap();
            let mr = rapida_mapred::Engine::pinned(cat.dfs.clone());
            let (rel, wf) = plan.execute(&mr, &aq, &cat.dict);
            plan.cleanup(&cat.dfs);
            cat.dfs.remove(&plan.output_dataset);
            let emitted: u64 = wf.jobs.iter().map(|j| j.map_output_records).sum();
            (rel.rows, emitted)
        };
        let (rows_gated, emitted_gated) = run(true);
        let (rows_full, emitted_full) = run(false);
        assert_eq!(rows_gated, rows_full, "gate changed the query result");
        assert!(
            emitted_gated < emitted_full,
            "gate never fired: {emitted_gated} map-output records vs {emitted_full}"
        );
    }

    #[test]
    fn shared_single_star_planner_declines_joined_blocks() {
        let cat = catalog();
        let q = parse_query(
            "PREFIX ex: <http://x/>
             SELECT ?nA ?nB {
               { SELECT (COUNT(?c) AS ?nA) { ?o ex:pr ?p ; ex:pc ?c . ?p ex:pf ?f . } }
               { SELECT (COUNT(?f2) AS ?nB) { ?p2 ex:pf ?f2 . } }
             }",
        )
        .unwrap();
        let aq = extract(&q).unwrap();
        let ra = RapidAnalytics::default();
        let plan = ra
            .plan_shared_single_star(&aq, &cat)
            .expect("planning succeeds");
        assert!(plan.is_none(), "block 0 has a join — not single-star");
    }
}
