//! Full-catalog agreement: every query of the paper's workload (G1–G9,
//! MG1–MG4, MG6–MG18) must produce identical result multisets across the
//! four engines and the reference evaluator, on tiny instances of all three
//! datasets.

use rapida_core::engines::{HiveMqo, HiveNaive, RapidAnalytics, RapidPlus};
use rapida_core::{extract, DataCatalog, QueryEngine};
use rapida_datagen::{
    catalog, generate_bsbm, generate_chem, generate_pubmed, BsbmConfig, ChemConfig, PubmedConfig,
    Workload,
};
use rapida_mapred::Engine;
use rapida_rdf::Graph;
use rapida_sparql::{evaluate, parse_query};

fn graph_for(w: Workload) -> Graph {
    match w {
        Workload::Bsbm => generate_bsbm(&BsbmConfig::tiny()),
        Workload::Chem => generate_chem(&ChemConfig::tiny()),
        Workload::Pubmed => generate_pubmed(&PubmedConfig::tiny()),
    }
}

fn run_workload(w: Workload) {
    let g = graph_for(w);
    let cat = DataCatalog::load(&g);
    let mr = Engine::pinned(cat.dfs.clone());
    let engines: Vec<Box<dyn QueryEngine>> = vec![
        Box::new(HiveNaive::default()),
        Box::new(HiveMqo::default()),
        Box::new(RapidPlus::default()),
        Box::new(RapidAnalytics::default()),
    ];
    let mut checked = 0;
    for q in catalog().into_iter().filter(|q| q.workload == w) {
        let query = parse_query(&q.sparql).unwrap_or_else(|e| panic!("{}: {e}", q.id));
        let expected = evaluate(&query, &g).canonicalized(&g.dict);
        let aq = extract(&query).unwrap_or_else(|e| panic!("{} extract: {e}", q.id));
        for e in &engines {
            let plan = e
                .plan(&aq, &cat)
                .unwrap_or_else(|err| panic!("{}: {} failed to plan: {err}", q.id, e.name()));
            let (rel, _wf) = plan.execute(&mr, &aq, &cat.dict);
            let got = rel.canonicalized(&g.dict);
            assert_eq!(
                got,
                expected,
                "{}: {} disagrees with reference ({} vs {} rows)",
                q.id,
                e.name(),
                got.len(),
                expected.len()
            );
        }
        assert!(
            !expected.is_empty(),
            "{}: reference result is empty — the generator must exercise the query",
            q.id
        );
        checked += 1;
    }
    assert!(checked > 0);
}

#[test]
fn bsbm_catalog_agrees() {
    run_workload(Workload::Bsbm);
}

#[test]
fn chem_catalog_agrees() {
    run_workload(Workload::Chem);
}

#[test]
fn pubmed_catalog_agrees() {
    run_workload(Workload::Pubmed);
}

/// The overlap detector must find composability on every MG query (the
/// catalog was designed from overlapping groupings, Fig. 7).
#[test]
fn all_mg_queries_compose() {
    for q in catalog().into_iter().filter(|q| q.id.starts_with("MG")) {
        let query = parse_query(&q.sparql).unwrap();
        let aq = extract(&query).unwrap();
        match rapida_core::build_composite(&aq.blocks).unwrap() {
            rapida_core::CompositeOutcome::Composite(c) => {
                assert_eq!(
                    c.stars.len(),
                    q.shapes[0].len(),
                    "{}: composite star count matches Fig. 7",
                    q.id
                );
            }
            rapida_core::CompositeOutcome::NotOverlapping(why) => {
                panic!("{} should overlap but did not: {why}", q.id)
            }
        }
    }
}

/// Fig. 7 star/triple-pattern structure matches the parsed patterns.
#[test]
fn fig7_shapes_match_parsed_patterns() {
    for q in catalog() {
        let query = parse_query(&q.sparql).unwrap();
        let aq = extract(&query).unwrap();
        assert_eq!(aq.blocks.len(), q.shapes.len(), "{}: block count", q.id);
        for (b, (block, shape)) in aq.blocks.iter().zip(q.shapes).enumerate() {
            let dec = block.decomposition().unwrap();
            let mut counts: Vec<usize> = dec.stars.iter().map(|s| s.triples.len()).collect();
            let mut expected: Vec<usize> = shape.to_vec();
            counts.sort_unstable();
            expected.sort_unstable();
            assert_eq!(
                counts, expected,
                "{} block {b}: star sizes differ from Fig. 7",
                q.id
            );
        }
    }
}
