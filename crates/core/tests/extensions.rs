//! Extension and robustness tests: three-grouping queries (beyond the
//! paper's two), corrupt-record resilience, plan explanation, and DFS
//! cleanup.

use rapida_core::engines::{HiveMqo, HiveNaive, RapidAnalytics, RapidPlus};
use rapida_core::{extract, DataCatalog, QueryEngine};
use rapida_mapred::{Dataset, DatasetWriter, Engine};
use rapida_rdf::{vocab, Graph, Term};
use rapida_sparql::{evaluate, parse_query};

fn iri(s: &str) -> Term {
    Term::iri(format!("http://x/{s}"))
}

fn sales_graph() -> Graph {
    let mut g = Graph::new();
    for i in 0..30 {
        let o = iri(&format!("o{i}"));
        g.insert_terms(&o, &Term::iri(vocab::RDF_TYPE), &iri("Sale"));
        g.insert_terms(&o, &iri("f"), &iri(&format!("feat{}", i % 3)));
        if i % 2 == 0 {
            g.insert_terms(&o, &iri("c"), &iri(&format!("country{}", i % 4)));
        }
        g.insert_terms(&o, &iri("pc"), &Term::decimal((i % 7) as f64 * 5.0));
    }
    g
}

/// THREE related groupings in one query — the paper evaluates two; the
/// composite machinery generalizes, and all engines must still agree.
#[test]
fn three_grouping_blocks() {
    let g = sales_graph();
    let q = "PREFIX ex: <http://x/>
        SELECT ?f ?c ?nFC ?nF ?nT {
          { SELECT ?f ?c (COUNT(?p1) AS ?nFC)
            { ?o1 a ex:Sale ; ex:f ?f ; ex:c ?c ; ex:pc ?p1 . } GROUP BY ?f ?c }
          { SELECT ?f (COUNT(?p2) AS ?nF)
            { ?o2 a ex:Sale ; ex:f ?f ; ex:pc ?p2 . } GROUP BY ?f }
          { SELECT (COUNT(?p3) AS ?nT)
            { ?o3 a ex:Sale ; ex:pc ?p3 . } }
        }";
    let query = parse_query(q).unwrap();
    let expected = evaluate(&query, &g).canonicalized(&g.dict);
    assert!(!expected.is_empty());
    let aq = extract(&query).unwrap();
    assert_eq!(aq.blocks.len(), 3);
    let cat = DataCatalog::load(&g);
    let mr = Engine::pinned(cat.dfs.clone());
    let engines: Vec<Box<dyn QueryEngine>> = vec![
        Box::new(HiveNaive::default()),
        Box::new(HiveMqo::default()),
        Box::new(RapidPlus::default()),
        Box::new(RapidAnalytics::default()),
    ];
    let mut ra_cycles = 0;
    let mut rp_cycles = 0;
    for e in &engines {
        let plan = e.plan(&aq, &cat).unwrap();
        if e.name() == "RAPIDAnalytics" {
            ra_cycles = plan.cycles();
        }
        if e.name().starts_with("RAPID+") {
            rp_cycles = plan.cycles();
        }
        let (rel, _wf) = plan.execute(&mr, &aq, &cat.dict);
        assert_eq!(
            rel.canonicalized(&g.dict),
            expected,
            "{} disagrees on the 3-block query",
            e.name()
        );
    }
    // Single-star patterns feed the Agg-Join directly from storage: the
    // parallel Agg-Join carries all three groupings in ONE cycle plus the
    // map-only final join, vs one aggregation cycle per block for RAPID+.
    assert_eq!(ra_cycles, 2);
    assert_eq!(rp_cycles, 4);
}

/// Corrupt records in input datasets are skipped gracefully by every
/// engine — no panics, the valid records still produce correct results,
/// and every skip is ledgered in the workflow metrics so the quarantine
/// is observable (not a silent `continue`).
#[test]
fn corrupt_records_are_skipped() {
    let g = sales_graph();
    let q = "PREFIX ex: <http://x/>
        SELECT ?f (COUNT(?p) AS ?n) { ?o a ex:Sale ; ex:f ?f ; ex:pc ?p . } GROUP BY ?f";
    let query = parse_query(q).unwrap();
    let aq = extract(&query).unwrap();
    let cat = DataCatalog::load(&g);

    // Inject garbage blocks into every stored dataset.
    for name in cat.dfs.names() {
        let ds = cat.dfs.peek(&name).unwrap();
        let mut w = DatasetWriter::new(64);
        w.push(&[0xFF; 11]); // invalid varint soup
        w.push(b"");
        let garbage: Dataset = w.finish();
        let mut blocks = ds.blocks.clone();
        blocks.extend(garbage.blocks);
        let mut block_records = ds.block_records.clone();
        block_records.extend(garbage.block_records);
        cat.dfs.put(
            &name,
            Dataset {
                records: ds.records + garbage.records,
                blocks,
                block_records,
            },
        );
    }

    let mr = Engine::pinned(cat.dfs.clone());
    let engines: Vec<Box<dyn QueryEngine>> = vec![
        Box::new(HiveNaive::default()),
        Box::new(RapidPlus::default()),
        Box::new(RapidAnalytics::default()),
    ];
    for e in &engines {
        let plan = e.plan(&aq, &cat).unwrap();
        let (rel, wf) = plan.execute(&mr, &aq, &cat.dict);
        assert_eq!(rel.len(), 3, "{}: three feature groups survive", e.name());
        assert!(
            wf.total_corrupt_records_skipped() > 0,
            "{}: skipped garbage records must be counted in the metrics",
            e.name()
        );
    }
}

#[test]
fn explain_describes_the_plan() {
    let g = sales_graph();
    let q = "PREFIX ex: <http://x/>
        SELECT ?f ?nF ?nT {
          { SELECT ?f (COUNT(?p2) AS ?nF)
            { ?o2 a ex:Sale ; ex:f ?f ; ex:pc ?p2 . } GROUP BY ?f }
          { SELECT (COUNT(?p3) AS ?nT) { ?o3 a ex:Sale ; ex:pc ?p3 . } }
        }";
    let aq = extract(&parse_query(q).unwrap()).unwrap();
    let cat = DataCatalog::load(&g);
    let plan = RapidAnalytics::default().plan(&aq, &cat).unwrap();
    let text = plan.explain();
    assert!(text.contains("RAPIDAnalytics plan"));
    assert!(text.contains("MR1"));
    assert!(text.contains("final-join"));
    assert!(text.contains("output:"));
    assert_eq!(
        text.matches("\n  MR").count(),
        plan.cycles(),
        "one line per cycle"
    );
}

#[test]
fn cleanup_removes_intermediates_only() {
    let g = sales_graph();
    let q = "PREFIX ex: <http://x/>
        SELECT ?f ?nF ?nT {
          { SELECT ?f (COUNT(?p2) AS ?nF)
            { ?o2 a ex:Sale ; ex:f ?f ; ex:pc ?p2 . } GROUP BY ?f }
          { SELECT (COUNT(?p3) AS ?nT) { ?o3 a ex:Sale ; ex:pc ?p3 . } }
        }";
    let query = parse_query(q).unwrap();
    let aq = extract(&query).unwrap();
    let cat = DataCatalog::load(&g);
    let mr = Engine::pinned(cat.dfs.clone());
    let base_names = cat.dfs.names();
    let plan = RapidAnalytics::default().plan(&aq, &cat).unwrap();
    let (rel, _) = plan.execute(&mr, &aq, &cat.dict);
    assert!(!rel.is_empty());
    assert!(cat.dfs.names().len() > base_names.len(), "intermediates exist");
    plan.cleanup(&cat.dfs);
    let after = cat.dfs.names();
    // Everything except the base datasets and the final output is gone.
    let extra: Vec<String> = after
        .iter()
        .filter(|n| !base_names.contains(n))
        .cloned()
        .collect();
    assert_eq!(extra, vec![plan.output_dataset.clone()]);
    // The result is still assemblable after cleanup.
    let rel2 = plan.assemble(&cat.dfs, &aq, &cat.dict);
    assert_eq!(
        rel2.canonicalized(&g.dict),
        rel.canonicalized(&g.dict)
    );
}

/// The shared composite scan: RAPIDAnalytics reads the triplegroup
/// partitions once for both patterns, where RAPID+ scans them once per
/// pattern — visible in measured input bytes of the pattern cycles.
#[test]
fn shared_scan_reads_less_input() {
    let g = sales_graph();
    let q = "PREFIX ex: <http://x/>
        SELECT ?f ?nF ?nT {
          { SELECT ?f (COUNT(?p2) AS ?nF)
            { ?o2 a ex:Sale ; ex:f ?f ; ex:pc ?p2 . } GROUP BY ?f }
          { SELECT (COUNT(?p3) AS ?nT) { ?o3 a ex:Sale ; ex:pc ?p3 . } }
        }";
    let query = parse_query(q).unwrap();
    let aq = extract(&query).unwrap();
    let cat = DataCatalog::load(&g);
    let mr = Engine::pinned(cat.dfs.clone());

    // Single-star patterns: the Agg-Join cycle scans raw triplegroups.
    let ra_plan = RapidAnalytics::default().plan(&aq, &cat).unwrap();
    let (_, ra_wf) = ra_plan.execute(&mr, &aq, &cat.dict);
    let rp_plan = RapidPlus::default().plan(&aq, &cat).unwrap();
    let (_, rp_wf) = rp_plan.execute(&mr, &aq, &cat.dict);
    let scan_bytes = |wf: &rapida_mapred::WorkflowMetrics| {
        wf.jobs
            .iter()
            .filter(|j| j.name.contains("agg"))
            .map(|j| j.input_bytes)
            .sum::<u64>()
    };
    assert!(
        scan_bytes(&ra_wf) < scan_bytes(&rp_wf),
        "composite shared scan must read less: {} vs {}",
        scan_bytes(&ra_wf),
        scan_bytes(&rp_wf)
    );
}

/// §2.2 sharing for NON-overlapping patterns: when every block is a single
/// star, RAPIDAnalytics shares one scan + one Agg-Join cycle instead of
/// falling back to fully sequential RAPID+ evaluation.
#[test]
fn non_overlapping_single_star_blocks_share_one_cycle() {
    let g = sales_graph();
    // Two structurally different single-star patterns (pf/label vs c only —
    // no shared property set on the same star shape with matching joins).
    let q = "PREFIX ex: <http://x/>
        SELECT ?nA ?nB {
          { SELECT (COUNT(?f) AS ?nA) { ?o1 ex:f ?f ; ex:pc ?p1 . } }
          { SELECT (COUNT(?c) AS ?nB) { ?o2 ex:c ?c . } }
        }";
    let query = parse_query(q).unwrap();
    let expected = evaluate(&query, &g).canonicalized(&g.dict);
    let aq = extract(&query).unwrap();
    assert!(matches!(
        rapida_core::build_composite(&aq.blocks).unwrap(),
        rapida_core::CompositeOutcome::NotOverlapping(_)
    ));
    let cat = DataCatalog::load(&g);
    let mr = Engine::pinned(cat.dfs.clone());

    let ra = RapidAnalytics::default().plan(&aq, &cat).unwrap();
    let rp = RapidPlus::default().plan(&aq, &cat).unwrap();
    // RA: one shared Agg-Join cycle + map-only final join = 2;
    // RAPID+: one Agg-Join per block + final join = 3.
    assert_eq!(ra.cycles(), 2, "shared scan collapses the block cycles");
    assert_eq!(rp.cycles(), 3);

    let (ra_rel, ra_wf) = ra.execute(&mr, &aq, &cat.dict);
    let (rp_rel, rp_wf) = rp.execute(&mr, &aq, &cat.dict);
    assert_eq!(ra_rel.canonicalized(&g.dict), expected);
    assert_eq!(rp_rel.canonicalized(&g.dict), expected);
    assert!(
        ra_wf.total_input_bytes() < rp_wf.total_input_bytes(),
        "one shared scan reads less than two scans: {} vs {}",
        ra_wf.total_input_bytes(),
        rp_wf.total_input_bytes()
    );
}

/// Engine runs are deterministic despite multi-threaded execution: two
/// executions of the same plan produce identical canonical results.
#[test]
fn execution_is_deterministic() {
    let g = sales_graph();
    let q = "PREFIX ex: <http://x/>
        SELECT ?f ?nF ?nT {
          { SELECT ?f (COUNT(?p2) AS ?nF)
            { ?o2 a ex:Sale ; ex:f ?f ; ex:pc ?p2 . } GROUP BY ?f }
          { SELECT (COUNT(?p3) AS ?nT) { ?o3 a ex:Sale ; ex:pc ?p3 . } }
        }";
    let query = parse_query(q).unwrap();
    let aq = extract(&query).unwrap();
    let cat = DataCatalog::load(&g);
    let mr = Engine::pinned(cat.dfs.clone());
    let mut results = Vec::new();
    for _ in 0..3 {
        let plan = RapidAnalytics::default().plan(&aq, &cat).unwrap();
        let (rel, _) = plan.execute(&mr, &aq, &cat.dict);
        results.push(rel.canonicalized(&g.dict));
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[1], results[2]);
}
