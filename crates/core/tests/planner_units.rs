//! Plan-structure unit tests: map-join thresholds, multi-key final joins,
//! out-of-scope constructs, and error reporting.

use rapida_core::engines::{HiveConfig, HiveNaive, RapidAnalytics};
use rapida_core::{extract, DataCatalog, PlanError, QueryEngine};
use rapida_mapred::Engine;
use rapida_rdf::{vocab, Graph, Term};
use rapida_sparql::{evaluate, parse_query};

fn iri(s: &str) -> Term {
    Term::iri(format!("http://x/{s}"))
}

fn shop_graph() -> Graph {
    let mut g = Graph::new();
    for i in 0..40 {
        let p = iri(&format!("p{i}"));
        g.insert_terms(&p, &Term::iri(vocab::RDF_TYPE), &iri("T1"));
        g.insert_terms(&p, &iri("label"), &Term::literal(format!("p {i}")));
        let o = iri(&format!("o{i}"));
        g.insert_terms(&o, &iri("product"), &p);
        g.insert_terms(&o, &iri("price"), &Term::decimal(i as f64));
        g.insert_terms(&o, &iri("region"), &iri(&format!("r{}", i % 4)));
        g.insert_terms(&o, &iri("channel"), &iri(&format!("ch{}", i % 2)));
    }
    g
}

const G1_SHAPE: &str = "PREFIX ex: <http://x/>
    SELECT (COUNT(?pr) AS ?n) {
      ?p a ex:T1 ; ex:label ?l .
      ?o ex:product ?p ; ex:price ?pr .
    }";

/// The map-join threshold decides which cycles go map-only; correctness is
/// unaffected either way.
#[test]
fn map_join_threshold_controls_cycle_kinds() {
    let g = shop_graph();
    let cat = DataCatalog::load(&g);
    let mr = Engine::pinned(cat.dfs.clone());
    let query = parse_query(G1_SHAPE).unwrap();
    let aq = extract(&query).unwrap();
    let expected = evaluate(&query, &g).canonicalized(&g.dict);

    let run = |threshold: usize| {
        let engine = HiveNaive {
            config: HiveConfig {
                map_join_threshold: threshold,
                ..Default::default()
            },
            cost_model: None,
        };
        let plan = engine.plan(&aq, &cat).unwrap();
        let map_only = plan.map_only_cycles();
        let (rel, _) = plan.execute(&mr, &aq, &cat.dict);
        assert_eq!(rel.canonicalized(&g.dict), expected, "threshold={threshold}");
        map_only
    };
    let none = run(0);
    let all = run(usize::MAX);
    assert_eq!(none, 0, "threshold 0 forbids map-joins");
    assert!(all >= 3, "huge threshold turns the joins map-only, got {all}");
}

/// A two-column shared grouping key joins correctly through the final
/// map-only join.
#[test]
fn final_join_on_two_shared_keys() {
    let g = shop_graph();
    let q = "PREFIX ex: <http://x/>
        SELECT ?r ?ch ?nA ?nB {
          { SELECT ?r ?ch (COUNT(?p1) AS ?nA)
            { ?o1 ex:region ?r ; ex:channel ?ch ; ex:price ?p1 . } GROUP BY ?r ?ch }
          { SELECT ?ch ?r (SUM(?p2) AS ?nB)
            { ?o2 ex:region ?r ; ex:channel ?ch ; ex:price ?p2 . } GROUP BY ?ch ?r }
        }";
    let query = parse_query(q).unwrap();
    let expected = evaluate(&query, &g).canonicalized(&g.dict);
    assert!(!expected.is_empty());
    let aq = extract(&query).unwrap();
    let cat = DataCatalog::load(&g);
    let mr = Engine::pinned(cat.dfs.clone());
    let plan = RapidAnalytics::default().plan(&aq, &cat).unwrap();
    let (rel, _) = plan.execute(&mr, &aq, &cat.dict);
    assert_eq!(rel.canonicalized(&g.dict), expected);
}

/// Unbound-property patterns are the paper's declared out-of-scope case —
/// the error must say so.
#[test]
fn unbound_property_is_rejected_with_scope_error() {
    let q = "SELECT (COUNT(?o) AS ?n) { ?s ?p ?o . }";
    let query = parse_query(q).unwrap();
    let err = extract(&query).unwrap_err();
    let msg = format!("{err}");
    assert!(
        msg.contains("unbound-property") || msg.contains("out of scope"),
        "error must cite the paper's scope: {msg}"
    );
}

/// PlanError displays are informative.
#[test]
fn plan_error_display() {
    let e = PlanError::Unsupported("variable-to-variable FILTER comparisons".into());
    assert!(format!("{e}").contains("unsupported"));
}

/// Engines reject disjunctive filters with a clear message, and the
/// reference evaluator still handles them (scope split).
#[test]
fn disjunctive_filter_rejected_by_engines_only() {
    let g = shop_graph();
    let q = "PREFIX ex: <http://x/>
        SELECT (COUNT(?pr) AS ?n) {
          ?o ex:price ?pr . FILTER(?pr < 3 || ?pr > 35)
        }";
    let query = parse_query(q).unwrap();
    // Reference handles it.
    let rel = evaluate(&query, &g);
    assert_eq!(rel.rows[0][0], rapida_sparql::Cell::Num(7.0));
    // The engine subset rejects it at planning time.
    let aq = extract(&query).unwrap();
    let cat = DataCatalog::load(&g);
    let Err(err) = RapidAnalytics::default().plan(&aq, &cat) else {
        panic!("disjunctive filter must be rejected");
    };
    assert!(format!("{err}").contains("disjunctive"));
}

/// Querying a property absent from the data yields clean empty results on
/// grouped blocks.
#[test]
fn absent_property_scans_empty() {
    let g = shop_graph();
    let q = "PREFIX ex: <http://x/>
        SELECT ?x (COUNT(?x) AS ?n) { ?s ex:nonexistent ?x . } GROUP BY ?x";
    let query = parse_query(q).unwrap();
    let aq = extract(&query).unwrap();
    let cat = DataCatalog::load(&g);
    let mr = Engine::pinned(cat.dfs.clone());
    for engine in [
        Box::new(HiveNaive::default()) as Box<dyn QueryEngine>,
        Box::new(RapidAnalytics::default()),
    ] {
        let plan = engine.plan(&aq, &cat).unwrap();
        let (rel, _) = plan.execute(&mr, &aq, &cat.dict);
        assert!(rel.is_empty(), "{}", engine.name());
    }
}
