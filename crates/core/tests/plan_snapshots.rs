//! Golden plan snapshots for the cost-based enumerator: the chosen plan of
//! every Fig. 8 MG query × engine family is pinned as a textual dump in
//! `tests/snapshots/`. A planner or enumerator change that moves any chosen
//! plan fails here with a line diff.
//!
//! Regenerate after an intentional change with:
//! `RAPIDA_UPDATE_SNAPSHOTS=1 cargo test -p rapida-core --test plan_snapshots`

use rapida_core::engines::{HiveMqo, HiveNaive, RapidAnalytics, RapidPlus};
use rapida_core::enumerate::{enumerate_best, Family};
use rapida_core::{extract, AnalyticalQuery, DataCatalog, QueryEngine};
use rapida_datagen::{generate_bsbm, query, BsbmConfig};
use rapida_mapred::ClusterModel;
use rapida_sparql::parse_query;
use std::path::PathBuf;

fn catalog() -> DataCatalog {
    DataCatalog::load(&generate_bsbm(&BsbmConfig::tiny()))
}

fn aq_of(id: &str) -> AnalyticalQuery {
    extract(&parse_query(&query(id).sparql).unwrap()).unwrap()
}

fn snapshot_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots")
        .join(format!("{name}.txt"))
}

/// Compare `got` against the pinned snapshot `name`, with a line diff on
/// mismatch. `RAPIDA_UPDATE_SNAPSHOTS=1` rewrites the file instead.
fn assert_snapshot(name: &str, got: &str) {
    let path = snapshot_path(name);
    if std::env::var("RAPIDA_UPDATE_SNAPSHOTS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing snapshot {} — run with RAPIDA_UPDATE_SNAPSHOTS=1 to create it",
            path.display()
        )
    });
    if want == got {
        return;
    }
    let mut diff = String::new();
    for (i, line) in want.lines().enumerate() {
        let g = got.lines().nth(i).unwrap_or("<missing>");
        if line != g {
            diff.push_str(&format!("  line {}:\n    - {line}\n    + {g}\n", i + 1));
        }
    }
    let extra = got.lines().count().saturating_sub(want.lines().count());
    if extra > 0 {
        diff.push_str(&format!("  ({extra} extra line(s) in the new dump)\n"));
    }
    panic!(
        "plan snapshot '{name}' drifted:\n{diff}\nfull new dump:\n{got}\n\
         (if intentional: RAPIDA_UPDATE_SNAPSHOTS=1 cargo test -p rapida-core --test plan_snapshots)"
    );
}

fn chosen_dump(cat: &DataCatalog, id: &str, family: Family) -> String {
    let aq = aq_of(id);
    let model = ClusterModel::nodes10();
    let e = enumerate_best(family, &aq, cat, &model).unwrap();
    format!("choice: {}\n{}", e.choice, e.plan.dump())
}

#[test]
fn chosen_plans_match_snapshots() {
    let cat = catalog();
    for id in ["MG1", "MG2", "MG3", "MG4"] {
        assert_snapshot(
            &format!("{id}_hive"),
            &chosen_dump(&cat, id, Family::Hive),
        );
        assert_snapshot(
            &format!("{id}_rapid"),
            &chosen_dump(&cat, id, Family::Rapid),
        );
    }
}

/// The enumerator rediscovers the paper's NTGA plans: for the MG queries
/// the chosen RAPID-family plan is the RAPIDAnalytics composite shape —
/// shared star scans + parallel Agg-Join — at the paper's cycle count,
/// strictly below the fixed RAPID+ star-at-a-time plan.
#[test]
fn enumerator_rediscovers_ntga_star_grouping() {
    let cat = catalog();
    let model = ClusterModel::nodes10();
    for (id, ra_cycles, rp_cycles) in [("MG1", 3, 5), ("MG2", 3, 5), ("MG3", 4, 7)] {
        let aq = aq_of(id);
        let e = enumerate_best(Family::Rapid, &aq, &cat, &model).unwrap();
        assert_eq!(
            e.plan.cycles(),
            ra_cycles,
            "{id}: chosen RAPID plan should be the {ra_cycles}-cycle composite NTGA shape"
        );
        let fixed = RapidPlus::default().plan(&aq, &cat).unwrap();
        assert_eq!(fixed.cycles(), rp_cycles);
        assert!(
            e.plan.cycles() < fixed.cycles(),
            "{id}: enumerator must beat the fixed star-at-a-time plan"
        );
        assert!(
            e.choice.starts_with("rapida"),
            "{id}: expected a RAPIDAnalytics-shaped winner, got {}",
            e.choice
        );
    }
}

/// Engine-level opt-in: setting `cost_model` on any fixed engine routes
/// planning through the enumerator, and the chosen plan's measured cost is
/// never worse than that engine's fixed plan (the incumbent is always in
/// the dry-run shortlist).
#[test]
fn cost_model_opt_in_never_worse_than_fixed() {
    let cat = catalog();
    let model = ClusterModel::nodes10();
    let aq = aq_of("MG1");

    let chosen = HiveMqo {
        cost_model: Some(model),
        ..Default::default()
    }
    .plan(&aq, &cat)
    .unwrap();
    assert_eq!(chosen.engine, "Hive (cost-based)");

    let e = enumerate_best(Family::Hive, &aq, &cat, &model).unwrap();
    for r in &e.candidates {
        if let (true, Some(m)) = (r.incumbent, r.measured_s) {
            assert!(
                e.measured_s <= m + 1e-9,
                "chosen ({}) measured {:.3}s worse than incumbent {} at {:.3}s",
                e.choice,
                e.measured_s,
                r.name,
                m
            );
        }
    }

    let chosen_r = RapidAnalytics {
        cost_model: Some(model),
        ..Default::default()
    }
    .plan(&aq, &cat)
    .unwrap();
    assert_eq!(chosen_r.engine, "RAPID (cost-based)");
    let hn = HiveNaive {
        cost_model: Some(model),
        ..Default::default()
    }
    .plan(&aq, &cat)
    .unwrap();
    assert_eq!(hn.engine, "Hive (cost-based)");
}

/// Determinism: two independent enumerations of the same (query, stats,
/// model) choose the same candidate and produce byte-identical plan dumps
/// (`dump()` normalizes the per-compilation plan id away).
#[test]
fn enumeration_is_deterministic() {
    let cat = catalog();
    let model = ClusterModel::nodes10();
    for id in ["MG1", "MG3"] {
        let aq = aq_of(id);
        for family in [Family::Hive, Family::Rapid] {
            let a = enumerate_best(family, &aq, &cat, &model).unwrap();
            let b = enumerate_best(family, &aq, &cat, &model).unwrap();
            assert_eq!(a.choice, b.choice, "{id}: choice drifted between runs");
            assert_eq!(
                a.plan.dump(),
                b.plan.dump(),
                "{id}: plan dump bytes drifted between runs"
            );
            assert_eq!(
                a.candidates.len(),
                b.candidates.len(),
                "{id}: candidate space drifted"
            );
        }
    }
}
