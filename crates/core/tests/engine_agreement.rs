//! End-to-end agreement: all four engines must produce the same result
//! multiset as the in-memory reference evaluator, on every query shape the
//! paper exercises.

use rapida_core::engines::{HiveMqo, HiveNaive, RapidAnalytics, RapidPlus};
use rapida_core::{extract, DataCatalog, QueryEngine};
use rapida_mapred::Engine;
use rapida_rdf::{vocab, Graph, Term};
use rapida_sparql::{evaluate, parse_query};

fn iri(s: &str) -> Term {
    Term::iri(format!("http://x/{s}"))
}

/// A miniature BSBM-like graph: products with types/labels/features, offers
/// with prices and vendors, vendors with countries.
fn bsbm_mini() -> Graph {
    let mut g = Graph::new();
    let countries = ["US", "UK", "DE"];
    for v in 0..6 {
        let vendor = iri(&format!("vendor{v}"));
        g.insert_terms(&vendor, &iri("cn"), &iri(countries[v % 3]));
    }
    for p in 0..20 {
        let prod = iri(&format!("prod{p}"));
        let ty = if p % 4 == 0 { "T9" } else { "T1" };
        g.insert_terms(&prod, &Term::iri(vocab::RDF_TYPE), &iri(ty));
        g.insert_terms(&prod, &iri("label"), &Term::literal(format!("product {p}")));
        // Multi-valued features on some products; none on others.
        if p % 3 != 0 {
            g.insert_terms(&prod, &iri("pf"), &iri(&format!("feat{}", p % 5)));
        }
        if p % 6 == 1 {
            g.insert_terms(&prod, &iri("pf"), &iri(&format!("feat{}", (p + 2) % 5)));
        }
    }
    let mut o = 0;
    for p in 0..20 {
        for k in 0..(1 + p % 3) {
            let offer = iri(&format!("offer{o}"));
            o += 1;
            g.insert_terms(&offer, &iri("pr"), &iri(&format!("prod{p}")));
            g.insert_terms(
                &offer,
                &iri("pc"),
                &Term::decimal(10.0 + ((p * 7 + k * 13) % 90) as f64),
            );
            g.insert_terms(&offer, &iri("ve"), &iri(&format!("vendor{}", (p + k) % 6)));
        }
    }
    g
}

fn check_all_engines(g: &Graph, sparql: &str) {
    let query = parse_query(sparql).expect("query parses");
    let expected = evaluate(&query, g).canonicalized(&g.dict);
    let aq = extract(&query).expect("analytical IR extracts");
    let cat = DataCatalog::load(g);
    let mr = Engine::pinned(cat.dfs.clone());
    let engines: Vec<Box<dyn QueryEngine>> = vec![
        Box::new(HiveNaive::default()),
        Box::new(HiveMqo::default()),
        Box::new(RapidPlus::default()),
        Box::new(RapidAnalytics::default()),
    ];
    for e in &engines {
        let plan = e
            .plan(&aq, &cat)
            .unwrap_or_else(|err| panic!("{} failed to plan: {err}", e.name()));
        let (rel, _wf) = plan.execute(&mr, &aq, &cat.dict);
        let got = rel.canonicalized(&g.dict);
        assert_eq!(
            got,
            expected,
            "{} disagrees with the reference evaluator on:\n{sparql}",
            e.name()
        );
    }
}

const PREFIX: &str = "PREFIX ex: <http://x/>\n";

/// G1-style: single grouping, GROUP BY ALL.
#[test]
fn g_style_group_by_all() {
    let q = format!(
        "{PREFIX}SELECT (COUNT(?pr) AS ?cnt) (SUM(?pr) AS ?sum) {{
            ?p a ex:T1 ; ex:label ?l .
            ?o ex:pr ?p ; ex:pc ?pr .
        }}"
    );
    check_all_engines(&bsbm_mini(), &q);
}

/// G3-style: single grouping by feature.
#[test]
fn g_style_group_by_feature() {
    let q = format!(
        "{PREFIX}SELECT ?f (COUNT(?pr) AS ?cnt) (SUM(?pr) AS ?sum) {{
            ?p a ex:T1 ; ex:label ?l ; ex:pf ?f .
            ?o ex:pr ?p ; ex:pc ?pr .
        }} GROUP BY ?f"
    );
    check_all_engines(&bsbm_mini(), &q);
}

/// MG1-style: per-feature vs ALL (overlapping patterns, pf secondary).
#[test]
fn mg1_style_feature_vs_all() {
    let q = format!(
        "{PREFIX}SELECT ?f ?cntF ?sumF ?cntT ?sumT {{
            {{ SELECT ?f (COUNT(?pr2) AS ?cntF) (SUM(?pr2) AS ?sumF)
               {{ ?p2 a ex:T1 ; ex:label ?l2 ; ex:pf ?f .
                  ?o2 ex:pr ?p2 ; ex:pc ?pr2 . }} GROUP BY ?f }}
            {{ SELECT (COUNT(?pr) AS ?cntT) (SUM(?pr) AS ?sumT)
               {{ ?p1 a ex:T1 ; ex:label ?l1 .
                  ?o1 ex:pr ?p1 ; ex:pc ?pr . }} }}
        }}"
    );
    check_all_engines(&bsbm_mini(), &q);
}

/// MG3-style: per-(feature, country) vs per-country — 3-star patterns.
#[test]
fn mg3_style_feature_country_vs_country() {
    let q = format!(
        "{PREFIX}SELECT ?f ?c ?cntF ?cntT {{
            {{ SELECT ?f ?c (COUNT(?pr2) AS ?cntF)
               {{ ?p2 a ex:T1 ; ex:label ?l2 ; ex:pf ?f .
                  ?o2 ex:pr ?p2 ; ex:pc ?pr2 ; ex:ve ?v2 .
                  ?v2 ex:cn ?c . }} GROUP BY ?f ?c }}
            {{ SELECT ?c (COUNT(?pr) AS ?cntT)
               {{ ?p1 a ex:T1 ; ex:label ?l1 .
                  ?o1 ex:pr ?p1 ; ex:pc ?pr ; ex:ve ?v1 .
                  ?v1 ex:cn ?c . }} GROUP BY ?c }}
        }}"
    );
    check_all_engines(&bsbm_mini(), &q);
}

/// High-selectivity type (T9) with numeric filter.
#[test]
fn filtered_query() {
    let q = format!(
        "{PREFIX}SELECT ?f ?cntF ?cntT {{
            {{ SELECT ?f (COUNT(?pr2) AS ?cntF)
               {{ ?p2 a ex:T9 ; ex:pf ?f .
                  ?o2 ex:pr ?p2 ; ex:pc ?pr2 . FILTER(?pr2 > 40) }} GROUP BY ?f }}
            {{ SELECT (COUNT(?pr) AS ?cntT)
               {{ ?p1 a ex:T9 .
                  ?o1 ex:pr ?p1 ; ex:pc ?pr . FILTER(?pr > 40) }} }}
        }}"
    );
    check_all_engines(&bsbm_mini(), &q);
}

/// Non-overlapping patterns must fall back and still agree.
#[test]
fn non_overlapping_blocks() {
    let q = format!(
        "{PREFIX}SELECT ?cntA ?cntB {{
            {{ SELECT (COUNT(?f) AS ?cntA) {{ ?p ex:pf ?f ; ex:label ?l . }} }}
            {{ SELECT (COUNT(?c) AS ?cntB) {{ ?v ex:cn ?c . }} }}
        }}"
    );
    check_all_engines(&bsbm_mini(), &q);
}

/// Empty result side: a type no product has.
#[test]
fn empty_all_block_synthesizes_zero_count() {
    let q = format!(
        "{PREFIX}SELECT ?f ?cntF ?cntT {{
            {{ SELECT ?f (COUNT(?pr2) AS ?cntF)
               {{ ?p2 a ex:T1 ; ex:pf ?f .
                  ?o2 ex:pr ?p2 ; ex:pc ?pr2 . }} GROUP BY ?f }}
            {{ SELECT (COUNT(?pr) AS ?cntT)
               {{ ?p1 a ex:NoSuchType .
                  ?o1 ex:pr ?p1 ; ex:pc ?pr . }} }}
        }}"
    );
    check_all_engines(&bsbm_mini(), &q);
}

/// MIN / MAX / AVG aggregates.
#[test]
fn min_max_avg_aggregates() {
    let q = format!(
        "{PREFIX}SELECT ?c (MIN(?pr) AS ?lo) (MAX(?pr) AS ?hi) (AVG(?pr) AS ?avg) {{
            ?o ex:pc ?pr ; ex:ve ?v . ?v ex:cn ?c .
        }} GROUP BY ?c"
    );
    check_all_engines(&bsbm_mini(), &q);
}

/// Object-object join (the AQ3/G5 shape): two stars sharing an object var.
#[test]
fn object_object_join() {
    let mut g = Graph::new();
    for i in 0..8 {
        let b = iri(&format!("assay{i}"));
        g.insert_terms(&b, &iri("cid"), &iri(&format!("compound{}", i % 4)));
        g.insert_terms(&b, &iri("gi"), &iri(&format!("gi{}", i % 3)));
        let u = iri(&format!("protein{i}"));
        g.insert_terms(&u, &iri("gi"), &iri(&format!("gi{}", i % 5)));
        g.insert_terms(&u, &iri("geneSymbol"), &iri(&format!("gene{}", i % 2)));
    }
    let q = format!(
        "{PREFIX}SELECT ?cid (COUNT(?g) AS ?n) {{
            ?b ex:cid ?cid ; ex:gi ?gi .
            ?u ex:gi ?gi ; ex:geneSymbol ?g .
        }} GROUP BY ?cid"
    );
    check_all_engines(&g, &q);
}

/// Constant-object (non-type) pattern in both blocks (MG16 shape).
#[test]
fn shared_constant_object() {
    let mut g = Graph::new();
    for i in 0..12 {
        let p = iri(&format!("pub{i}"));
        let ty = if i % 3 == 0 { "News" } else { "Journal Article" };
        g.insert_terms(&p, &iri("pub_type"), &Term::literal(ty));
        g.insert_terms(&p, &iri("chemical"), &iri(&format!("chem{}", i % 4)));
        g.insert_terms(&p, &iri("author"), &iri(&format!("auth{}", i % 3)));
        if i % 2 == 0 {
            g.insert_terms(&p, &iri("chemical"), &iri(&format!("chem{}", (i + 1) % 4)));
        }
    }
    for a in 0..3 {
        g.insert_terms(
            &iri(&format!("auth{a}")),
            &iri("last_name"),
            &Term::literal(format!("name{a}")),
        );
    }
    let q = format!(
        "{PREFIX}SELECT ?ln ?perA ?allA {{
            {{ SELECT ?ln (COUNT(?ch) AS ?perA)
               {{ ?pub ex:pub_type \"News\" ; ex:chemical ?ch ; ex:author ?a .
                  ?a ex:last_name ?ln . }} GROUP BY ?ln }}
            {{ SELECT (COUNT(?ch1) AS ?allA)
               {{ ?pub1 ex:pub_type \"News\" ; ex:chemical ?ch1 ; ex:author ?a1 .
                  ?a1 ex:last_name ?ln1 . }} }}
        }}"
    );
    check_all_engines(&g, &q);
}

/// Regex filter (the chem-query shape, G6/G7).
#[test]
fn regex_filter_query() {
    let mut g = Graph::new();
    for i in 0..10 {
        let pw = iri(&format!("pathway{i}"));
        g.insert_terms(&pw, &iri("protein"), &iri(&format!("protein{}", i % 4)));
        let name = if i % 2 == 0 {
            "MAPK signaling pathway - organism"
        } else {
            "other pathway"
        };
        g.insert_terms(&pw, &iri("Pathway_name"), &Term::literal(name));
        let u = iri(&format!("protein{i}"));
        g.insert_terms(&u, &iri("gi"), &iri(&format!("gi{i}")));
    }
    let q = format!(
        "{PREFIX}SELECT ?u (COUNT(?u) AS ?n) {{
            ?pathway ex:protein ?u ; ex:Pathway_name ?pname .
            ?u ex:gi ?gi .
            FILTER regex(?pname, \"MAPK signaling\", \"i\")
        }} GROUP BY ?u"
    );
    check_all_engines(&g, &q);
}

/// MR-cycle counts per engine on an MG1-shaped query (paper §5.2).
#[test]
fn mg1_cycle_counts_match_paper() {
    let g = bsbm_mini();
    let q = format!(
        "{PREFIX}SELECT ?f ?cntF ?cntT {{
            {{ SELECT ?f (COUNT(?pr2) AS ?cntF)
               {{ ?p2 a ex:T1 ; ex:label ?l2 ; ex:pf ?f .
                  ?o2 ex:pr ?p2 ; ex:pc ?pr2 . }} GROUP BY ?f }}
            {{ SELECT (COUNT(?pr) AS ?cntT)
               {{ ?p1 a ex:T1 ; ex:label ?l1 .
                  ?o1 ex:pr ?p1 ; ex:pc ?pr . }} }}
        }}"
    );
    let query = parse_query(&q).unwrap();
    let aq = extract(&query).unwrap();
    let cat = DataCatalog::load(&g);
    let cycles = |e: &dyn QueryEngine| e.plan(&aq, &cat).unwrap().cycles();
    assert_eq!(cycles(&HiveNaive::default()), 9, "paper: Hive naive = 9");
    assert_eq!(cycles(&RapidPlus::default()), 5, "paper: RAPID+ = 5");
    assert_eq!(
        cycles(&RapidAnalytics::default()),
        3,
        "paper: RAPIDAnalytics = 3"
    );
    let mqo = cycles(&HiveMqo::default());
    assert!(
        (7..=8).contains(&mqo),
        "paper: Hive MQO = 7 (we count the final map-only join; got {mqo})"
    );
}

/// α-join pruning must drop composite combinations that match no block:
/// with crossed secondary properties (Table 2 row 4 shape), disabling the
/// pruning strictly increases the records materialized by the join cycle,
/// while results stay identical.
#[test]
fn alpha_pruning_reduces_join_output() {
    let mut g = Graph::new();
    for p in 0..30 {
        let prod = iri(&format!("p{p}"));
        g.insert_terms(&prod, &Term::iri(vocab::RDF_TYPE), &iri("T1"));
        let offer = iri(&format!("o{p}"));
        g.insert_terms(&offer, &iri("pr"), &prod);
        g.insert_terms(&offer, &iri("pc"), &Term::decimal(p as f64));
        // One third have only vf, one third only vt, one third neither.
        match p % 3 {
            0 => {
                g.insert_terms(&offer, &iri("vf"), &Term::literal("2015"));
            }
            1 => {
                g.insert_terms(&offer, &iri("vt"), &Term::literal("2016"));
            }
            _ => {}
        }
    }
    let q = format!(
        "{PREFIX}SELECT ?n1 ?n2 {{
            {{ SELECT (COUNT(?v1) AS ?n1)
               {{ ?p a ex:T1 . ?o ex:pr ?p ; ex:pc ?c1 ; ex:vf ?v1 . }} }}
            {{ SELECT (COUNT(?v2) AS ?n2)
               {{ ?p2 a ex:T1 . ?o2 ex:pr ?p2 ; ex:pc ?c2 ; ex:vt ?v2 . }} }}
        }}"
    );
    let query = parse_query(&q).unwrap();
    let expected = evaluate(&query, &g).canonicalized(&g.dict);
    let aq = extract(&query).unwrap();
    let cat = DataCatalog::load(&g);
    let mr = Engine::pinned(cat.dfs.clone());

    let mut join_outputs = Vec::new();
    for pruning in [true, false] {
        let engine = RapidAnalytics {
            alpha_pruning: pruning,
            ..Default::default()
        };
        let plan = engine.plan(&aq, &cat).unwrap();
        let (rel, wf) = plan.execute(&mr, &aq, &cat.dict);
        assert_eq!(rel.canonicalized(&g.dict), expected, "pruning={pruning}");
        // The first job is the composite α-join cycle.
        join_outputs.push(wf.jobs[0].output_records);
    }
    assert!(
        join_outputs[0] < join_outputs[1],
        "α-join pruning must shrink the join output: {} vs {}",
        join_outputs[0],
        join_outputs[1]
    );
    // Exactly the no-valid-property third is pruned.
    assert_eq!(join_outputs[0], 20);
    assert_eq!(join_outputs[1], 30);
}
