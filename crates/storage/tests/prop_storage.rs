//! Property tests for the storage layouts: segment codec + stats laws,
//! triplegroup codec, and store/graph consistency.

use rapida_testkit::prelude::*;
use rapida_mapred::SimDfs;
use rapida_rdf::{Graph, Term, TermId};
use rapida_storage::{decode_segment, decode_stats, decode_tg, encode_segment, encode_tg, TgStore, VpKey, VpStore};

proptest! {
    #[test]
    fn segment_roundtrip_and_stats(
        mut rows in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..200)
    ) {
        let mut rows: Vec<(u64, u64)> = rows
            .drain(..)
            .map(|(s, o)| (u64::from(s), u64::from(o)))
            .collect();
        rows.sort_unstable();
        let mut buf = Vec::new();
        encode_segment(&rows, |_| None, &mut buf);
        prop_assert_eq!(decode_segment(&buf).unwrap(), rows.clone());
        let stats = decode_stats(&buf).unwrap();
        prop_assert_eq!(stats.rows as usize, rows.len());
        if !rows.is_empty() {
            prop_assert_eq!(stats.o_min, rows.iter().map(|r| r.1).min().unwrap());
            prop_assert_eq!(stats.o_max, rows.iter().map(|r| r.1).max().unwrap());
        }
    }

    #[test]
    fn segment_numeric_stats(
        mut rows in proptest::collection::vec((any::<u32>(), 0u64..1000), 1..100)
    ) {
        let mut rows: Vec<(u64, u64)> = rows
            .drain(..)
            .map(|(s, o)| (u64::from(s), o))
            .collect();
        rows.sort_unstable();
        let mut buf = Vec::new();
        encode_segment(&rows, |o| Some(o as f64), &mut buf);
        let stats = decode_stats(&buf).unwrap();
        let lo = rows.iter().map(|r| r.1 as f64).fold(f64::INFINITY, f64::min);
        let hi = rows.iter().map(|r| r.1 as f64).fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(stats.numeric, Some((lo, hi)));
        prop_assert_eq!(decode_segment(&buf).unwrap(), rows);
    }

    #[test]
    fn tg_codec_roundtrip(
        subject in any::<u64>(),
        pairs in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..40),
    ) {
        let mut buf = Vec::new();
        encode_tg(subject, &pairs, &mut buf);
        prop_assert_eq!(decode_tg(&buf), Some((subject, pairs)));
    }

    /// Loading a random graph into both layouts conserves the triple count:
    /// the VP tables and the triplegroup partitions each hold every triple
    /// exactly once.
    #[test]
    fn both_layouts_conserve_triples(
        triples in proptest::collection::btree_set((0u64..30, 0u64..6, 0u64..20), 0..120)
    ) {
        let mut g = Graph::new();
        for (s, p, o) in &triples {
            g.insert_terms(
                &Term::iri(format!("http://x/s{s}")),
                &Term::iri(format!("http://x/p{p}")),
                &Term::iri(format!("http://x/o{o}")),
            );
        }
        let n = g.len();

        let dfs = SimDfs::new();
        let vp = VpStore::load(&g, &dfs, 16);
        let vp_rows: usize = vp.tables().map(|t| t.rows).sum();
        prop_assert_eq!(vp_rows, n, "VP tables hold every triple once");

        let tg = TgStore::load(&g, &dfs, 128);
        let mut tg_rows = 0usize;
        for ec in tg.classes() {
            let ds = dfs.peek(&ec.dataset).unwrap();
            for rec in ds.iter_records() {
                tg_rows += decode_tg(rec).unwrap().1.len();
            }
        }
        prop_assert_eq!(tg_rows, n, "triplegroups hold every triple once");

        // Every VP table reads back its full row count.
        for meta in vp.tables() {
            let rows = vp.read_table(&dfs, meta.key);
            prop_assert_eq!(rows.len(), meta.rows);
        }
        // A covering query over an absent property selects nothing.
        let absent = TermId(9999);
        prop_assert!(tg.datasets_covering(&[absent]).is_empty());
        prop_assert!(vp.table(VpKey::Prop(absent)).is_none());
    }
}
