//! Subject-triplegroup store: the NTGA-side storage layout.
//!
//! Triples are grouped on the subject column into *subject triplegroups* and
//! partitioned by **equivalence class** (the set of properties a subject
//! has), one DFS dataset per class — the paper's pre-processing for RAPID+ /
//! RAPIDAnalytics (§5.1). Query evaluation reads only the classes whose
//! property set covers a star pattern's required properties.

use rapida_mapred::codec::{read_varint, write_varint};
use rapida_mapred::{DatasetWriter, SimDfs};
use rapida_rdf::{Dictionary, FxHashMap, Graph, TermId};
use std::collections::BTreeSet;

/// Canonical triplegroup record codec: `subject, n, (p, o) * n`.
///
/// This is the on-DFS representation of a subject triplegroup; the NTGA
/// operator crate builds its richer annotated triplegroups on top.
pub fn encode_tg(subject: u64, pairs: &[(u64, u64)], out: &mut Vec<u8>) {
    write_varint(out, subject);
    write_varint(out, pairs.len() as u64);
    for (p, o) in pairs {
        write_varint(out, *p);
        write_varint(out, *o);
    }
}

/// Decode a triplegroup record. Returns `(subject, pairs)`.
pub fn decode_tg(mut rec: &[u8]) -> Option<(u64, Vec<(u64, u64)>)> {
    let subject = read_varint(&mut rec)?;
    let n = read_varint(&mut rec)? as usize;
    let mut pairs = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let p = read_varint(&mut rec)?;
        let o = read_varint(&mut rec)?;
        pairs.push((p, o));
    }
    Some((subject, pairs))
}

/// Metadata for one equivalence-class partition.
#[derive(Debug, Clone)]
pub struct EcMeta {
    /// The property set of this class.
    pub props: BTreeSet<TermId>,
    /// DFS dataset name.
    pub dataset: String,
    /// Number of triplegroups.
    pub groups: usize,
    /// Stored bytes.
    pub bytes: usize,
}

/// The triplegroup store catalog.
#[derive(Clone)]
pub struct TgStore {
    /// Shared dictionary.
    pub dict: Dictionary,
    classes: Vec<EcMeta>,
}

impl TgStore {
    /// Build the store from a graph, writing one dataset per equivalence
    /// class into `dfs`. `split_bytes` is the target input-split size.
    pub fn load(graph: &Graph, dfs: &SimDfs, split_bytes: usize) -> TgStore {
        let dict = graph.dict.clone();
        // Group triples by subject.
        let mut by_subject: FxHashMap<u64, Vec<(u64, u64)>> = FxHashMap::default();
        for t in &graph.triples {
            by_subject.entry(t.s.0).or_default().push((t.p.0, t.o.0));
        }
        // Partition subjects by equivalence class.
        type EcGroups = FxHashMap<BTreeSet<TermId>, Vec<(u64, Vec<(u64, u64)>)>>;
        let mut by_ec: EcGroups = FxHashMap::default();
        for (s, mut pairs) in by_subject {
            pairs.sort_unstable();
            let ec: BTreeSet<TermId> = pairs.iter().map(|(p, _)| TermId(*p)).collect();
            by_ec.entry(ec).or_default().push((s, pairs));
        }

        // Class indexes feed the `tg_ec{i}` dataset names, which appear in
        // compiled plans: assign them in property-set order, never in hash
        // order, so plan dumps are a pure function of the graph.
        let mut ecs: Vec<(BTreeSet<TermId>, Vec<(u64, Vec<(u64, u64)>)>)> =
            by_ec.into_iter().collect();
        ecs.sort_unstable_by(|(a, _), (b, _)| a.cmp(b));

        let mut classes = Vec::with_capacity(ecs.len());
        for (i, (props, mut groups)) in ecs.into_iter().enumerate() {
            groups.sort_unstable_by_key(|(s, _)| *s);
            let dataset = format!("tg_ec{i}");
            let mut writer = DatasetWriter::new(split_bytes);
            let mut buf = Vec::new();
            for (s, pairs) in &groups {
                buf.clear();
                encode_tg(*s, pairs, &mut buf);
                writer.push(&buf);
            }
            let ds = writer.finish();
            let bytes = ds.total_bytes();
            dfs.put(&dataset, ds);
            classes.push(EcMeta {
                props,
                dataset,
                groups: groups.len(),
                bytes,
            });
        }
        // Canonical class order on the commit path. sort_unstable is safe:
        // dataset names are unique (one per property-set equivalence
        // class), so no equal elements exist for stability to order.
        classes.sort_unstable_by(|a, b| a.dataset.cmp(&b.dataset));
        TgStore { dict, classes }
    }

    /// All equivalence classes.
    pub fn classes(&self) -> &[EcMeta] {
        &self.classes
    }

    /// Dataset names of all classes whose property set covers `required` —
    /// the partitions a star pattern with those primary properties must scan.
    pub fn datasets_covering(&self, required: &[TermId]) -> Vec<String> {
        self.classes
            .iter()
            .filter(|ec| required.iter().all(|p| ec.props.contains(p)))
            .map(|ec| ec.dataset.clone())
            .collect()
    }

    /// Dataset names of classes overlapping *any* of the given property sets
    /// (deduplicated) — the single shared scan of a composite pattern.
    pub fn datasets_covering_any(&self, requireds: &[Vec<TermId>]) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for ec in &self.classes {
            if requireds
                .iter()
                .any(|req| req.iter().all(|p| ec.props.contains(p)))
                && !out.contains(&ec.dataset)
            {
                out.push(ec.dataset.clone());
            }
        }
        out
    }

    /// Total stored bytes.
    pub fn total_bytes(&self) -> usize {
        self.classes.iter().map(|c| c.bytes).sum()
    }

    /// Total triplegroup count.
    pub fn total_groups(&self) -> usize {
        self.classes.iter().map(|c| c.groups).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapida_rdf::{vocab, Term};

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    fn sample() -> (Graph, SimDfs, TgStore) {
        let mut g = Graph::new();
        for i in 0..20 {
            let s = iri(&format!("prod{i}"));
            g.insert_terms(&s, &Term::iri(vocab::RDF_TYPE), &iri("T1"));
            g.insert_terms(&s, &iri("label"), &Term::literal(format!("product {i}")));
            if i % 2 == 0 {
                g.insert_terms(&s, &iri("feature"), &iri(&format!("f{}", i % 3)));
                g.insert_terms(&s, &iri("feature"), &iri(&format!("f{}", (i + 1) % 3)));
            }
        }
        let dfs = SimDfs::new();
        let store = TgStore::load(&g, &dfs, 512);
        (g, dfs, store)
    }

    #[test]
    fn partitions_by_equivalence_class() {
        let (_g, _dfs, store) = sample();
        // Two classes: {type,label} and {type,label,feature}.
        assert_eq!(store.classes().len(), 2);
        assert_eq!(store.total_groups(), 20);
    }

    #[test]
    fn covering_selects_superset_classes() {
        let (g, _dfs, store) = sample();
        let ty = g.dict.lookup(&Term::iri(vocab::RDF_TYPE)).unwrap();
        let feature = g.dict.lookup(&iri("feature")).unwrap();
        let label = g.dict.lookup(&iri("label")).unwrap();
        assert_eq!(store.datasets_covering(&[ty, label]).len(), 2);
        assert_eq!(store.datasets_covering(&[feature]).len(), 1);
        assert_eq!(store.datasets_covering(&[ty, feature, label]).len(), 1);
    }

    #[test]
    fn covering_any_deduplicates() {
        let (g, _dfs, store) = sample();
        let ty = g.dict.lookup(&Term::iri(vocab::RDF_TYPE)).unwrap();
        let label = g.dict.lookup(&iri("label")).unwrap();
        let ds = store.datasets_covering_any(&[vec![ty], vec![label]]);
        assert_eq!(ds.len(), 2, "each class listed once");
    }

    #[test]
    fn tg_records_roundtrip() {
        let (g, dfs, store) = sample();
        let mut groups = 0;
        let mut multi_valued_seen = false;
        for ec in store.classes() {
            let ds = dfs.peek(&ec.dataset).unwrap();
            for rec in ds.iter_records() {
                let (s, pairs) = decode_tg(rec).unwrap();
                assert!(g.dict.lexical(TermId(s)).contains("prod"));
                assert!(!pairs.is_empty());
                let feature = g.dict.lookup(&iri("feature")).unwrap().0;
                if pairs.iter().filter(|(p, _)| *p == feature).count() == 2 {
                    multi_valued_seen = true;
                }
                groups += 1;
            }
        }
        assert_eq!(groups, 20);
        assert!(multi_valued_seen, "multi-valued property kept in one group");
    }

    #[test]
    fn encode_decode_empty_pairs() {
        let mut buf = Vec::new();
        encode_tg(7, &[], &mut buf);
        assert_eq!(decode_tg(&buf), Some((7, vec![])));
    }
}
