//! # rapida-storage
//!
//! Storage layouts for the two system families the paper compares:
//!
//! * [`vp`] — **vertical partitioning** with compressed columnar segments
//!   (the Hive + ORC setup): one `(s, o)` table per property, property–object
//!   partitions for `rdf:type`.
//! * [`tg_store`] — **subject triplegroups** partitioned by equivalence
//!   class (the RAPID+/RAPIDAnalytics setup).
//!
//! Both layouts materialize into the simulated DFS, so their (real,
//! compressed) sizes drive split counts and scan costs exactly as in the
//! paper's pre-processing section.

pub mod scan;
pub mod segment;
pub mod stats;
pub mod tg_store;
pub mod vp;

pub use scan::{scan_class, ScanClass};
pub use segment::{decode_segment, decode_stats, encode_segment, SegmentStats};
pub use stats::{PredStat, StatsCatalog};
pub use tg_store::{decode_tg, encode_tg, EcMeta, TgStore};
pub use vp::{read_dataset_rows, ExtVpKind, ExtVpMeta, VpKey, VpStore, VpTableMeta};
