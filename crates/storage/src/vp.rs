//! Vertical-partition store: one `(s, o)` table per property, with
//! property–object partitions for `rdf:type` (Abadi et al. \[3\] + the paper's
//! pre-processing §5.1), stored as compressed columnar segments in the
//! simulated DFS.
//!
//! Optionally the store also materializes **ExtVP** reductions (S2RDF):
//! for each co-occurring pair of tables, the semi-join reductions
//! SS (subjects of the base that are subjects of the partner),
//! SO (subjects of the base that are objects of the partner) and
//! OS (objects of the base that are subjects of the partner), kept only
//! when the reduction is selective enough (row ratio at or under a
//! threshold, S2RDF's 0.25 default). Compilers may substitute the smallest
//! applicable reduction for a full-table scan without changing query
//! output, because a semi-join against a *required* join partner only
//! removes rows that could never survive that join.

use crate::segment::encode_segment;
use rapida_rdf::{vocab, Dictionary, FxHashMap, Graph, Term, TermId};
use rapida_mapred::{Dataset, DatasetWriter, SimDfs};
use std::fmt;

/// Identifies a VP table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VpKey {
    /// The table of one property.
    Prop(TermId),
    /// An `rdf:type` property–object partition: subjects of one type.
    TypePartition(TermId),
}

impl fmt::Display for VpKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VpKey::Prop(p) => write!(f, "vp_p{}", p.0),
            VpKey::TypePartition(o) => write!(f, "vp_type_o{}", o.0),
        }
    }
}

/// Metadata about one VP table.
#[derive(Debug, Clone)]
pub struct VpTableMeta {
    /// The table key.
    pub key: VpKey,
    /// DFS dataset name.
    pub dataset: String,
    /// Row count.
    pub rows: usize,
    /// Stored (compressed) bytes.
    pub bytes: usize,
    /// Uncompressed estimate (16 bytes/row), for compression-ratio reporting.
    pub raw_bytes: usize,
}

/// Which semi-join reduction an ExtVP table holds, named for the columns
/// matched between base and partner (S2RDF's nomenclature).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ExtVpKind {
    /// Rows of the base whose **subject** is a **subject** of the partner
    /// (star groups: both patterns share the subject variable).
    SS,
    /// Rows of the base whose **subject** is an **object** of the partner
    /// (path/α-join edges: the base's subject variable is the partner's
    /// object variable).
    SO,
    /// Rows of the base whose **object** is a **subject** of the partner
    /// (the mirror edge direction).
    OS,
}

impl fmt::Display for ExtVpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtVpKind::SS => write!(f, "ss"),
            ExtVpKind::SO => write!(f, "so"),
            ExtVpKind::OS => write!(f, "os"),
        }
    }
}

/// Metadata about one materialized ExtVP reduction.
#[derive(Debug, Clone)]
pub struct ExtVpMeta {
    /// Reduction kind.
    pub kind: ExtVpKind,
    /// The reduced table.
    pub base: VpKey,
    /// The semi-join partner.
    pub partner: VpKey,
    /// DFS dataset name (`extvp_{kind}__{base}__{partner}` — self-describing
    /// so plan dumps can annotate scans from the name alone).
    pub dataset: String,
    /// Row count of the reduction.
    pub rows: usize,
    /// Stored (compressed) bytes.
    pub bytes: usize,
    /// `rows / base rows` — the retention ratio the threshold cut on.
    pub selectivity: f64,
}

/// The vertical-partition store. Table contents live in the [`SimDfs`];
/// this struct holds the catalog.
#[derive(Clone)]
pub struct VpStore {
    /// The dictionary shared with the source graph.
    pub dict: Dictionary,
    tables: FxHashMap<VpKey, VpTableMeta>,
    /// ExtVP reductions, sorted by `(base, kind, partner)` for binary-search
    /// lookup (plan choice must not depend on hash order).
    ext: Vec<ExtVpMeta>,
}

impl VpStore {
    /// Build the store from a graph, writing table datasets into `dfs`.
    ///
    /// `segment_rows` is the row-group size (ORC stripe analog): each segment
    /// becomes one input split for Hive-style scans.
    pub fn load(graph: &Graph, dfs: &SimDfs, segment_rows: usize) -> VpStore {
        Self::load_ext(graph, dfs, segment_rows, None)
    }

    /// Like [`VpStore::load`], but when `extvp_threshold` is `Some(t)` also
    /// materialize ExtVP semi-join reductions for every co-occurring table
    /// pair, keeping a reduction only when it is strictly smaller than its
    /// base and retains at most `t` of the base's rows (S2RDF's selectivity
    /// cutoff; empty reductions are kept — they prune the scan entirely).
    pub fn load_ext(
        graph: &Graph,
        dfs: &SimDfs,
        segment_rows: usize,
        extvp_threshold: Option<f64>,
    ) -> VpStore {
        let dict = graph.dict.clone();
        let rdf_type = dict.lookup(&Term::iri(vocab::RDF_TYPE));
        let mut groups: FxHashMap<VpKey, Vec<(u64, u64)>> = FxHashMap::default();
        for t in &graph.triples {
            let key = if Some(t.p) == rdf_type {
                VpKey::TypePartition(t.o)
            } else {
                VpKey::Prop(t.p)
            };
            groups.entry(key).or_default().push((t.s.0, t.o.0));
        }

        // Table datasets are keyed by VpKey so hash order cannot leak into
        // names, but keep the load deterministic end-to-end (DFS insertion
        // order, block layout) by materializing in key order.
        let mut groups: Vec<(VpKey, Vec<(u64, u64)>)> = groups.into_iter().collect();
        groups.sort_unstable_by_key(|(k, _)| *k);

        let write_table = |name: &str, rows: &[(u64, u64)]| -> usize {
            // One segment per block: writer with split size 1 rolls a block
            // after every record (= segment).
            let mut writer = DatasetWriter::new(1);
            for chunk in rows.chunks(segment_rows.max(1)) {
                let mut seg = Vec::new();
                encode_segment(chunk, |o| dict.numeric_value(TermId(o)), &mut seg);
                writer.push(&seg);
            }
            let ds = writer.finish();
            let bytes = ds.total_bytes();
            dfs.put(name, ds);
            bytes
        };

        let mut tables = FxHashMap::default();
        for (key, rows) in &mut groups {
            rows.sort_unstable();
            let raw_bytes = rows.len() * 16;
            let dataset_name = format!("{key}");
            let bytes = write_table(&dataset_name, rows);
            tables.insert(
                *key,
                VpTableMeta {
                    key: *key,
                    dataset: dataset_name,
                    rows: rows.len(),
                    bytes,
                    raw_bytes,
                },
            );
        }

        let mut ext = Vec::new();
        if let Some(threshold) = extvp_threshold {
            // Per-table sorted-unique subject and object id sets. Rows are
            // already sorted by (s, o), so subjects dedup in place; objects
            // need a sort.
            let sets: Vec<(VpKey, Vec<u64>, Vec<u64>)> = groups
                .iter()
                .map(|(key, rows)| {
                    let mut subjects: Vec<u64> = rows.iter().map(|r| r.0).collect();
                    subjects.dedup();
                    let mut objects: Vec<u64> = rows.iter().map(|r| r.1).collect();
                    objects.sort_unstable();
                    objects.dedup();
                    (*key, subjects, objects)
                })
                .collect();
            for (base, rows) in &groups {
                for (partner, p_subjects, p_objects) in &sets {
                    if partner == base {
                        continue;
                    }
                    for kind in [ExtVpKind::SS, ExtVpKind::SO, ExtVpKind::OS] {
                        // Semantically void pairs: a type partition's object
                        // column holds the type term itself, never a join
                        // variable — so it cannot feed an SO reduction as
                        // partner, nor an OS reduction as base.
                        let void = match kind {
                            ExtVpKind::SS => false,
                            ExtVpKind::SO => matches!(partner, VpKey::TypePartition(_)),
                            ExtVpKind::OS => matches!(base, VpKey::TypePartition(_)),
                        };
                        if void {
                            continue;
                        }
                        let keep = |id: &u64| -> bool {
                            let set = match kind {
                                ExtVpKind::SS | ExtVpKind::OS => p_subjects,
                                ExtVpKind::SO => p_objects,
                            };
                            set.binary_search(id).is_ok()
                        };
                        // Filtering preserves the (s, o) sort order, so the
                        // reduction is written exactly like a base table.
                        let reduced: Vec<(u64, u64)> = rows
                            .iter()
                            .filter(|(s, o)| match kind {
                                ExtVpKind::SS | ExtVpKind::SO => keep(s),
                                ExtVpKind::OS => keep(o),
                            })
                            .copied()
                            .collect();
                        let selectivity = reduced.len() as f64 / rows.len().max(1) as f64;
                        if reduced.len() >= rows.len() || selectivity > threshold {
                            continue;
                        }
                        let dataset = format!("extvp_{kind}__{base}__{partner}");
                        let bytes = write_table(&dataset, &reduced);
                        ext.push(ExtVpMeta {
                            kind,
                            base: *base,
                            partner: *partner,
                            dataset,
                            rows: reduced.len(),
                            bytes,
                            selectivity,
                        });
                    }
                }
            }
            ext.sort_unstable_by_key(|e| (e.base, e.kind, e.partner));
        }
        VpStore { dict, tables, ext }
    }

    /// Table metadata, if the table exists (absent tables mean no triples
    /// with that property — scans over them are empty).
    pub fn table(&self, key: VpKey) -> Option<&VpTableMeta> {
        self.tables.get(&key)
    }

    /// All tables.
    pub fn tables(&self) -> impl Iterator<Item = &VpTableMeta> {
        self.tables.values()
    }

    /// All materialized ExtVP reductions, sorted by `(base, kind, partner)`.
    pub fn ext_tables(&self) -> &[ExtVpMeta] {
        &self.ext
    }

    /// The materialized reduction for one `(base, kind, partner)` triple, if
    /// it survived the selectivity cutoff.
    pub fn reduction(&self, base: VpKey, kind: ExtVpKind, partner: VpKey) -> Option<&ExtVpMeta> {
        self.ext
            .binary_search_by_key(&(base, kind, partner), |e| (e.base, e.kind, e.partner))
            .ok()
            .map(|i| &self.ext[i])
    }

    /// Total stored bytes across all tables.
    pub fn total_bytes(&self) -> usize {
        self.tables.values().map(|t| t.bytes).sum()
    }

    /// Overall compression ratio (stored / raw).
    pub fn compression_ratio(&self) -> f64 {
        let raw: usize = self.tables.values().map(|t| t.raw_bytes).sum();
        if raw == 0 {
            1.0
        } else {
            self.total_bytes() as f64 / raw as f64
        }
    }

    /// Read a table fully into `(s, o)` pairs (test / small-table helper —
    /// the map-join path in the engines uses this for in-memory hash sides).
    pub fn read_table(&self, dfs: &SimDfs, key: VpKey) -> Vec<(u64, u64)> {
        let Some(meta) = self.tables.get(&key) else {
            return Vec::new();
        };
        let Some(ds) = dfs.get(&meta.dataset) else {
            return Vec::new();
        };
        read_dataset_rows(&ds)
    }
}

/// Decode every segment record of a VP dataset into `(s, o)` rows.
pub fn read_dataset_rows(ds: &Dataset) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    for rec in ds.iter_records() {
        if let Some(rows) = crate::segment::decode_segment(rec) {
            out.extend(rows);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    fn sample() -> (Graph, SimDfs, VpStore) {
        let mut g = Graph::new();
        for i in 0..50 {
            let s = iri(&format!("p{i}"));
            g.insert_terms(&s, &Term::iri(vocab::RDF_TYPE), &iri("T1"));
            g.insert_terms(&s, &iri("price"), &Term::decimal(i as f64));
            if i % 2 == 0 {
                g.insert_terms(&s, &iri("feature"), &iri(&format!("f{}", i % 5)));
            }
        }
        g.insert_terms(&iri("q"), &Term::iri(vocab::RDF_TYPE), &iri("T2"));
        let dfs = SimDfs::new();
        let store = VpStore::load(&g, &dfs, 16);
        (g, dfs, store)
    }

    #[test]
    fn creates_type_partitions_and_prop_tables() {
        let (g, _dfs, store) = sample();
        let t1 = g.dict.lookup(&iri("T1")).unwrap();
        let t2 = g.dict.lookup(&iri("T2")).unwrap();
        let price = g.dict.lookup(&iri("price")).unwrap();
        assert_eq!(store.table(VpKey::TypePartition(t1)).unwrap().rows, 50);
        assert_eq!(store.table(VpKey::TypePartition(t2)).unwrap().rows, 1);
        assert_eq!(store.table(VpKey::Prop(price)).unwrap().rows, 50);
        // No combined rdf:type table exists.
        let ty = g.dict.lookup(&Term::iri(vocab::RDF_TYPE)).unwrap();
        assert!(store.table(VpKey::Prop(ty)).is_none());
    }

    #[test]
    fn read_table_roundtrips_rows() {
        let (g, dfs, store) = sample();
        let price = g.dict.lookup(&iri("price")).unwrap();
        let rows = store.read_table(&dfs, VpKey::Prop(price));
        assert_eq!(rows.len(), 50);
        assert!(rows.windows(2).all(|w| w[0] <= w[1]), "sorted");
    }

    #[test]
    fn compression_beats_raw() {
        let (_g, _dfs, store) = sample();
        assert!(store.compression_ratio() < 0.5, "expected real compression");
    }

    #[test]
    fn segments_become_splits() {
        let (g, dfs, store) = sample();
        let price = g.dict.lookup(&iri("price")).unwrap();
        let meta = store.table(VpKey::Prop(price)).unwrap();
        let ds = dfs.peek(&meta.dataset).unwrap();
        // 50 rows / 16 per segment = 4 segments = 4 splits.
        assert_eq!(ds.blocks.len(), 4);
    }

    #[test]
    fn missing_table_reads_empty() {
        let (g, dfs, store) = sample();
        let nosuch = g.dict.intern(&iri("nosuch"));
        assert!(store.read_table(&dfs, VpKey::Prop(nosuch)).is_empty());
    }

    #[test]
    fn plain_load_materializes_no_extvp() {
        let (_g, _dfs, store) = sample();
        assert!(store.ext_tables().is_empty());
    }

    fn sample_ext(threshold: f64) -> (Graph, SimDfs, VpStore) {
        let mut g = Graph::new();
        for i in 0..50 {
            let s = iri(&format!("p{i}"));
            g.insert_terms(&s, &Term::iri(vocab::RDF_TYPE), &iri("T1"));
            g.insert_terms(&s, &iri("price"), &Term::decimal(i as f64));
            if i % 2 == 0 {
                g.insert_terms(&s, &iri("feature"), &iri(&format!("f{}", i % 5)));
            }
        }
        let dfs = SimDfs::new();
        let store = VpStore::load_ext(&g, &dfs, 16, Some(threshold));
        (g, dfs, store)
    }

    #[test]
    fn extvp_threshold_cuts_reductions() {
        // Half the price subjects have a feature, so SS[price|feature]
        // retains 25/50 = 0.5 of the base: kept at threshold 0.5, cut at
        // S2RDF's 0.25.
        let (g, _dfs, loose) = sample_ext(0.5);
        let price = VpKey::Prop(g.dict.lookup(&iri("price")).unwrap());
        let feature = VpKey::Prop(g.dict.lookup(&iri("feature")).unwrap());
        let red = loose.reduction(price, ExtVpKind::SS, feature).unwrap();
        assert_eq!(red.rows, 25);
        assert!((red.selectivity - 0.5).abs() < 1e-12);
        assert!(red.bytes > 0);

        let (g, _dfs, strict) = sample_ext(0.25);
        let price = VpKey::Prop(g.dict.lookup(&iri("price")).unwrap());
        let feature = VpKey::Prop(g.dict.lookup(&iri("feature")).unwrap());
        assert!(strict.reduction(price, ExtVpKind::SS, feature).is_none());
    }

    #[test]
    fn extvp_never_keeps_full_size_reductions() {
        // Every feature subject also has a price, so SS[feature|price] is
        // the whole base table — never materialized even at threshold 1.0.
        let (g, _dfs, store) = sample_ext(1.0);
        let price = VpKey::Prop(g.dict.lookup(&iri("price")).unwrap());
        let feature = VpKey::Prop(g.dict.lookup(&iri("feature")).unwrap());
        assert!(store.reduction(feature, ExtVpKind::SS, price).is_none());
        for e in store.ext_tables() {
            let base_rows = store.table(e.base).unwrap().rows;
            assert!(e.rows < base_rows, "{}: not a strict reduction", e.dataset);
        }
    }

    #[test]
    fn extvp_rows_match_semi_join_semantics() {
        let (g, dfs, store) = sample_ext(1.0);
        for e in store.ext_tables() {
            let base_rows = store.read_table(&dfs, e.base);
            let partner_rows = store.read_table(&dfs, e.partner);
            let keep_set: std::collections::BTreeSet<u64> = match e.kind {
                ExtVpKind::SS | ExtVpKind::OS => partner_rows.iter().map(|r| r.0).collect(),
                ExtVpKind::SO => partner_rows.iter().map(|r| r.1).collect(),
            };
            let expect: Vec<(u64, u64)> = base_rows
                .iter()
                .filter(|(s, o)| match e.kind {
                    ExtVpKind::SS | ExtVpKind::SO => keep_set.contains(s),
                    ExtVpKind::OS => keep_set.contains(o),
                })
                .copied()
                .collect();
            let ds = dfs.get(&e.dataset).unwrap();
            assert_eq!(read_dataset_rows(&ds), expect, "{}", e.dataset);
            assert_eq!(e.rows, expect.len(), "{}", e.dataset);
        }
        drop(g);
    }

    #[test]
    fn extvp_skips_type_partition_void_pairs() {
        // A type partition's object column holds the type term, not a join
        // variable: no SO reduction may use one as partner, no OS reduction
        // may use one as base.
        let (_g, _dfs, store) = sample_ext(1.0);
        assert!(!store.ext_tables().is_empty(), "sample should keep some");
        for e in store.ext_tables() {
            if matches!(e.kind, ExtVpKind::SO) {
                assert!(!matches!(e.partner, VpKey::TypePartition(_)), "{}", e.dataset);
            }
            if matches!(e.kind, ExtVpKind::OS) {
                assert!(!matches!(e.base, VpKey::TypePartition(_)), "{}", e.dataset);
            }
        }
    }

    #[test]
    fn extvp_catalog_is_sorted_and_datasets_exist() {
        let (_g, dfs, store) = sample_ext(1.0);
        let keys: Vec<_> = store
            .ext_tables()
            .iter()
            .map(|e| (e.base, e.kind, e.partner))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        for e in store.ext_tables() {
            assert!(dfs.get(&e.dataset).is_some(), "{} missing in DFS", e.dataset);
        }
    }
}
