//! Vertical-partition store: one `(s, o)` table per property, with
//! property–object partitions for `rdf:type` (Abadi et al. \[3\] + the paper's
//! pre-processing §5.1), stored as compressed columnar segments in the
//! simulated DFS.

use crate::segment::encode_segment;
use rapida_rdf::{vocab, Dictionary, FxHashMap, Graph, Term, TermId};
use rapida_mapred::{Dataset, DatasetWriter, SimDfs};
use std::fmt;

/// Identifies a VP table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VpKey {
    /// The table of one property.
    Prop(TermId),
    /// An `rdf:type` property–object partition: subjects of one type.
    TypePartition(TermId),
}

impl fmt::Display for VpKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VpKey::Prop(p) => write!(f, "vp_p{}", p.0),
            VpKey::TypePartition(o) => write!(f, "vp_type_o{}", o.0),
        }
    }
}

/// Metadata about one VP table.
#[derive(Debug, Clone)]
pub struct VpTableMeta {
    /// The table key.
    pub key: VpKey,
    /// DFS dataset name.
    pub dataset: String,
    /// Row count.
    pub rows: usize,
    /// Stored (compressed) bytes.
    pub bytes: usize,
    /// Uncompressed estimate (16 bytes/row), for compression-ratio reporting.
    pub raw_bytes: usize,
}

/// The vertical-partition store. Table contents live in the [`SimDfs`];
/// this struct holds the catalog.
#[derive(Clone)]
pub struct VpStore {
    /// The dictionary shared with the source graph.
    pub dict: Dictionary,
    tables: FxHashMap<VpKey, VpTableMeta>,
}

impl VpStore {
    /// Build the store from a graph, writing table datasets into `dfs`.
    ///
    /// `segment_rows` is the row-group size (ORC stripe analog): each segment
    /// becomes one input split for Hive-style scans.
    pub fn load(graph: &Graph, dfs: &SimDfs, segment_rows: usize) -> VpStore {
        let dict = graph.dict.clone();
        let rdf_type = dict.lookup(&Term::iri(vocab::RDF_TYPE));
        let mut groups: FxHashMap<VpKey, Vec<(u64, u64)>> = FxHashMap::default();
        for t in &graph.triples {
            let key = if Some(t.p) == rdf_type {
                VpKey::TypePartition(t.o)
            } else {
                VpKey::Prop(t.p)
            };
            groups.entry(key).or_default().push((t.s.0, t.o.0));
        }

        // Table datasets are keyed by VpKey so hash order cannot leak into
        // names, but keep the load deterministic end-to-end (DFS insertion
        // order, block layout) by materializing in key order.
        let mut groups: Vec<(VpKey, Vec<(u64, u64)>)> = groups.into_iter().collect();
        groups.sort_unstable_by_key(|(k, _)| *k);

        let mut tables = FxHashMap::default();
        for (key, mut rows) in groups {
            rows.sort_unstable();
            let raw_bytes = rows.len() * 16;
            let dataset_name = format!("{key}");
            // One segment per block: writer with split size 1 rolls a block
            // after every record (= segment).
            let mut writer = DatasetWriter::new(1);
            for chunk in rows.chunks(segment_rows.max(1)) {
                let mut seg = Vec::new();
                encode_segment(chunk, |o| dict.numeric_value(TermId(o)), &mut seg);
                writer.push(&seg);
            }
            let ds = writer.finish();
            let bytes = ds.total_bytes();
            dfs.put(&dataset_name, ds);
            tables.insert(
                key,
                VpTableMeta {
                    key,
                    dataset: dataset_name,
                    rows: rows.len(),
                    bytes,
                    raw_bytes,
                },
            );
        }
        VpStore { dict, tables }
    }

    /// Table metadata, if the table exists (absent tables mean no triples
    /// with that property — scans over them are empty).
    pub fn table(&self, key: VpKey) -> Option<&VpTableMeta> {
        self.tables.get(&key)
    }

    /// All tables.
    pub fn tables(&self) -> impl Iterator<Item = &VpTableMeta> {
        self.tables.values()
    }

    /// Total stored bytes across all tables.
    pub fn total_bytes(&self) -> usize {
        self.tables.values().map(|t| t.bytes).sum()
    }

    /// Overall compression ratio (stored / raw).
    pub fn compression_ratio(&self) -> f64 {
        let raw: usize = self.tables.values().map(|t| t.raw_bytes).sum();
        if raw == 0 {
            1.0
        } else {
            self.total_bytes() as f64 / raw as f64
        }
    }

    /// Read a table fully into `(s, o)` pairs (test / small-table helper —
    /// the map-join path in the engines uses this for in-memory hash sides).
    pub fn read_table(&self, dfs: &SimDfs, key: VpKey) -> Vec<(u64, u64)> {
        let Some(meta) = self.tables.get(&key) else {
            return Vec::new();
        };
        let Some(ds) = dfs.get(&meta.dataset) else {
            return Vec::new();
        };
        read_dataset_rows(&ds)
    }
}

/// Decode every segment record of a VP dataset into `(s, o)` rows.
pub fn read_dataset_rows(ds: &Dataset) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    for rec in ds.iter_records() {
        if let Some(rows) = crate::segment::decode_segment(rec) {
            out.extend(rows);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    fn sample() -> (Graph, SimDfs, VpStore) {
        let mut g = Graph::new();
        for i in 0..50 {
            let s = iri(&format!("p{i}"));
            g.insert_terms(&s, &Term::iri(vocab::RDF_TYPE), &iri("T1"));
            g.insert_terms(&s, &iri("price"), &Term::decimal(i as f64));
            if i % 2 == 0 {
                g.insert_terms(&s, &iri("feature"), &iri(&format!("f{}", i % 5)));
            }
        }
        g.insert_terms(&iri("q"), &Term::iri(vocab::RDF_TYPE), &iri("T2"));
        let dfs = SimDfs::new();
        let store = VpStore::load(&g, &dfs, 16);
        (g, dfs, store)
    }

    #[test]
    fn creates_type_partitions_and_prop_tables() {
        let (g, _dfs, store) = sample();
        let t1 = g.dict.lookup(&iri("T1")).unwrap();
        let t2 = g.dict.lookup(&iri("T2")).unwrap();
        let price = g.dict.lookup(&iri("price")).unwrap();
        assert_eq!(store.table(VpKey::TypePartition(t1)).unwrap().rows, 50);
        assert_eq!(store.table(VpKey::TypePartition(t2)).unwrap().rows, 1);
        assert_eq!(store.table(VpKey::Prop(price)).unwrap().rows, 50);
        // No combined rdf:type table exists.
        let ty = g.dict.lookup(&Term::iri(vocab::RDF_TYPE)).unwrap();
        assert!(store.table(VpKey::Prop(ty)).is_none());
    }

    #[test]
    fn read_table_roundtrips_rows() {
        let (g, dfs, store) = sample();
        let price = g.dict.lookup(&iri("price")).unwrap();
        let rows = store.read_table(&dfs, VpKey::Prop(price));
        assert_eq!(rows.len(), 50);
        assert!(rows.windows(2).all(|w| w[0] <= w[1]), "sorted");
    }

    #[test]
    fn compression_beats_raw() {
        let (_g, _dfs, store) = sample();
        assert!(store.compression_ratio() < 0.5, "expected real compression");
    }

    #[test]
    fn segments_become_splits() {
        let (g, dfs, store) = sample();
        let price = g.dict.lookup(&iri("price")).unwrap();
        let meta = store.table(VpKey::Prop(price)).unwrap();
        let ds = dfs.peek(&meta.dataset).unwrap();
        // 50 rows / 16 per segment = 4 segments = 4 splits.
        assert_eq!(ds.blocks.len(), 4);
    }

    #[test]
    fn missing_table_reads_empty() {
        let (g, dfs, store) = sample();
        let nosuch = g.dict.intern(&iri("nosuch"));
        assert!(store.read_table(&dfs, VpKey::Prop(nosuch)).is_empty());
    }
}
