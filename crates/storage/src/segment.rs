//! Compressed columnar segments for vertical-partition tables — the ORC
//! stand-in.
//!
//! A segment holds a run of `(subject, object)` id pairs sorted by subject,
//! encoded as delta varints for the subject column and plain varints for the
//! object column, with a small header of light-weight statistics (row count,
//! object min/max, numeric object min/max) enabling ORC-style row-group
//! skipping. Compression is *real*: the bytes written are the bytes the
//! simulator's cost model sees, so the paper's "ORC initializes fewer
//! mappers" effect emerges naturally.

use rapida_mapred::codec::{read_f64, read_varint, write_f64, write_varint};

/// Per-segment statistics (ORC "light-weight index").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentStats {
    /// Number of rows in the segment.
    pub rows: u64,
    /// Minimum object id.
    pub o_min: u64,
    /// Maximum object id.
    pub o_max: u64,
    /// Numeric min/max over object literals, when every object is numeric.
    ///
    /// **`None` contract:** this field is `Some((lo, hi))` iff the segment is
    /// non-empty and *every* object resolves to a numeric value. A single
    /// non-numeric object — no matter where it sits in the row run — poisons
    /// the whole segment to `None`, and an empty segment is `None`. There is
    /// no partial range: consumers (zone-map pruning in the scan path) may
    /// treat `Some` as a sound bound over all rows, and `None` as
    /// "unknown, never skip". The poisoning is order-independent, so two
    /// segments holding the same multiset of rows encode the same header.
    pub numeric: Option<(f64, f64)>,
}

/// Encode a segment. `rows` must be sorted by subject id. `numeric_of`
/// resolves the numeric value of an object id (dictionary lookup) for the
/// stats header.
pub fn encode_segment(
    rows: &[(u64, u64)],
    numeric_of: impl Fn(u64) -> Option<f64>,
    out: &mut Vec<u8>,
) {
    debug_assert!(rows.windows(2).all(|w| w[0].0 <= w[1].0), "rows sorted by s");
    let o_min = rows.iter().map(|r| r.1).min().unwrap_or(0);
    let o_max = rows.iter().map(|r| r.1).max().unwrap_or(0);
    // Numeric zone map: `Some` only when every object is numeric (see the
    // `SegmentStats::numeric` contract). The fold short-circuits on the
    // first non-numeric object — nothing accumulated up to that point
    // survives, so a poisoned segment can never publish a stale partial
    // range. Starting from `None` also makes the empty segment fall out of
    // the same rule instead of needing an (INF, -INF) sentinel fixup.
    let mut numeric: Option<(f64, f64)> = None;
    for (_, o) in rows {
        let Some(v) = numeric_of(*o) else {
            numeric = None;
            break;
        };
        numeric = Some(match numeric {
            None => (v, v),
            Some((lo, hi)) => (lo.min(v), hi.max(v)),
        });
    }

    write_varint(out, rows.len() as u64);
    write_varint(out, o_min);
    write_varint(out, o_max);
    match numeric {
        Some((lo, hi)) => {
            out.push(1);
            write_f64(out, lo);
            write_f64(out, hi);
        }
        None => out.push(0),
    }
    // Subject column: delta varints.
    let mut prev = 0u64;
    for (s, _) in rows {
        write_varint(out, s - prev);
        prev = *s;
    }
    // Object column: plain varints.
    for (_, o) in rows {
        write_varint(out, *o);
    }
}

/// Decode just the stats header of a segment.
pub fn decode_stats(mut rec: &[u8]) -> Option<SegmentStats> {
    let rows = read_varint(&mut rec)?;
    let o_min = read_varint(&mut rec)?;
    let o_max = read_varint(&mut rec)?;
    let numeric = match rec.split_first()? {
        (1, rest) => {
            let mut rest = rest;
            let lo = read_f64(&mut rest)?;
            let hi = read_f64(&mut rest)?;
            Some((lo, hi))
        }
        _ => None,
    };
    Some(SegmentStats {
        rows,
        o_min,
        o_max,
        numeric,
    })
}

/// Decode a full segment into `(subject, object)` pairs.
pub fn decode_segment(mut rec: &[u8]) -> Option<Vec<(u64, u64)>> {
    let rows = read_varint(&mut rec)? as usize;
    let _o_min = read_varint(&mut rec)?;
    let _o_max = read_varint(&mut rec)?;
    let (flag, rest) = rec.split_first()?;
    rec = rest;
    if *flag == 1 {
        read_f64(&mut rec)?;
        read_f64(&mut rec)?;
    }
    let mut subjects = Vec::with_capacity(rows);
    let mut prev = 0u64;
    for _ in 0..rows {
        prev += read_varint(&mut rec)?;
        subjects.push(prev);
    }
    let mut out = Vec::with_capacity(rows);
    for s in subjects {
        out.push((s, read_varint(&mut rec)?));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rows: &[(u64, u64)]) {
        let mut buf = Vec::new();
        encode_segment(rows, |_| None, &mut buf);
        assert_eq!(decode_segment(&buf).unwrap(), rows);
    }

    #[test]
    fn empty_segment() {
        roundtrip(&[]);
    }

    #[test]
    fn simple_roundtrip() {
        roundtrip(&[(1, 100), (1, 200), (5, 3), (900, 900)]);
    }

    #[test]
    fn stats_header() {
        let rows = [(1u64, 10u64), (2, 5), (3, 99)];
        let mut buf = Vec::new();
        encode_segment(&rows, |_| None, &mut buf);
        let st = decode_stats(&buf).unwrap();
        assert_eq!(st.rows, 3);
        assert_eq!(st.o_min, 5);
        assert_eq!(st.o_max, 99);
        assert_eq!(st.numeric, None);
    }

    #[test]
    fn numeric_stats_computed_when_all_numeric() {
        let rows = [(1u64, 10u64), (2, 11), (3, 12)];
        let mut buf = Vec::new();
        encode_segment(&rows, |o| Some(o as f64 * 2.0), &mut buf);
        let st = decode_stats(&buf).unwrap();
        assert_eq!(st.numeric, Some((20.0, 24.0)));
        // Full decode still works past the numeric header.
        assert_eq!(decode_segment(&buf).unwrap(), rows);
    }

    #[test]
    fn single_non_numeric_object_poisons_numeric_stats() {
        // Object id 2 is the lone non-numeric; wherever it sits in the run,
        // the segment's numeric zone map must be None — never a partial
        // range over the numeric prefix or suffix.
        let numeric_of = |o: u64| if o == 2 { None } else { Some(o as f64) };
        let poisoned_first: [(u64, u64); 3] = [(1, 2), (2, 10), (3, 20)];
        let poisoned_mid: [(u64, u64); 3] = [(1, 10), (2, 2), (3, 20)];
        let poisoned_last: [(u64, u64); 3] = [(1, 10), (2, 20), (3, 2)];
        for rows in [&poisoned_first, &poisoned_mid, &poisoned_last] {
            let mut buf = Vec::new();
            encode_segment(rows, numeric_of, &mut buf);
            let st = decode_stats(&buf).unwrap();
            assert_eq!(st.numeric, None, "poisoned segment {rows:?}");
            // Non-numeric headers stay intact.
            assert_eq!(st.rows, 3);
            assert_eq!(st.o_min, 2);
            assert_eq!(st.o_max, 20);
        }
    }

    #[test]
    fn numeric_poisoning_is_order_independent() {
        // Same multiset of objects, different subject-run layouts: the
        // numeric header bytes must agree (all Some with the same range, or
        // all None) regardless of where the poison lands.
        let numeric_of = |o: u64| if o % 3 == 0 { None } else { Some(o as f64) };
        let a: [(u64, u64); 4] = [(1, 1), (2, 3), (3, 5), (4, 7)];
        let b: [(u64, u64); 4] = [(1, 7), (2, 5), (3, 1), (4, 3)];
        let (mut ba, mut bb) = (Vec::new(), Vec::new());
        encode_segment(&a, numeric_of, &mut ba);
        encode_segment(&b, numeric_of, &mut bb);
        assert_eq!(
            decode_stats(&ba).unwrap().numeric,
            decode_stats(&bb).unwrap().numeric
        );
        assert_eq!(decode_stats(&ba).unwrap().numeric, None);
    }

    #[test]
    fn empty_segment_has_no_numeric_stats() {
        let mut buf = Vec::new();
        encode_segment(&[], |o| Some(o as f64), &mut buf);
        let st = decode_stats(&buf).unwrap();
        assert_eq!(st.rows, 0);
        assert_eq!(st.numeric, None, "empty segment must not claim a range");
    }

    #[test]
    fn all_numeric_single_row_range_is_degenerate() {
        let mut buf = Vec::new();
        encode_segment(&[(7, 42)], |o| Some(o as f64), &mut buf);
        assert_eq!(decode_stats(&buf).unwrap().numeric, Some((42.0, 42.0)));
    }

    #[test]
    fn delta_encoding_compresses_sorted_subjects() {
        // Dense sorted subjects compress far better than random ones would
        // with fixed-width encoding (16 bytes/row).
        let rows: Vec<(u64, u64)> = (0..10_000u64).map(|i| (1_000_000 + i, i % 50)).collect();
        let mut buf = Vec::new();
        encode_segment(&rows, |_| None, &mut buf);
        assert!(
            buf.len() < rows.len() * 4,
            "expected < 4 bytes/row, got {} for {} rows",
            buf.len(),
            rows.len()
        );
    }
}
