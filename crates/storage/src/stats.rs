//! Per-predicate catalog statistics: triple counts and NDV (number of
//! distinct values) for the subject and object columns of every property,
//! plus per-type instance counts — the cardinality inputs of the plan
//! enumerator's coster.
//!
//! Everything here is stored in **sorted** vectors and looked up by binary
//! search: statistics sit on the plan-choice path, where hash-map iteration
//! order must never leak into the chosen plan.

use rapida_rdf::{vocab, FxHashMap, Graph, Term, TermId};
use std::collections::hash_map::Entry;

/// Statistics of one property's triple table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredStat {
    /// The property id.
    pub prop: TermId,
    /// Triple count.
    pub count: u64,
    /// Distinct subjects.
    pub ndv_subjects: u64,
    /// Distinct objects.
    pub ndv_objects: u64,
}

impl PredStat {
    /// Average object multiplicity per subject (≥ 1 for non-empty tables).
    pub fn avg_per_subject(&self) -> f64 {
        if self.ndv_subjects == 0 {
            0.0
        } else {
            self.count as f64 / self.ndv_subjects as f64
        }
    }
}

/// Row/byte counts of one materialized ExtVP reduction, keyed by its DFS
/// dataset name — the coster prices ExtVP scans from these without touching
/// the DFS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtTableStat {
    /// DFS dataset name (`extvp_{kind}__{base}__{partner}`).
    pub dataset: String,
    /// Row count.
    pub rows: u64,
    /// Stored (compressed) bytes.
    pub bytes: u64,
}

/// Catalog-wide statistics over a loaded graph, ordered deterministically.
#[derive(Debug, Clone, Default)]
pub struct StatsCatalog {
    /// Total triples.
    pub triples: u64,
    /// Distinct subjects across the whole graph.
    pub subjects: u64,
    /// Per-property statistics, sorted by property id.
    preds: Vec<PredStat>,
    /// Per-`rdf:type`-object instance counts, sorted by object id.
    types: Vec<(TermId, u64)>,
    /// Registered ExtVP reduction stats, sorted by dataset name.
    ext: Vec<ExtTableStat>,
}

impl StatsCatalog {
    /// One pass over the graph. NDVs are exact (the simulator's datasets are
    /// small); a production system would substitute sketches here without
    /// changing the interface.
    pub fn compute(graph: &Graph) -> StatsCatalog {
        let rdf_type = graph.dict.lookup(&Term::iri(vocab::RDF_TYPE));
        struct Acc {
            count: u64,
            subjects: FxHashMap<u64, ()>,
            objects: FxHashMap<u64, ()>,
        }
        let mut by_prop: FxHashMap<TermId, Acc> = FxHashMap::default();
        let mut all_subjects: FxHashMap<u64, ()> = FxHashMap::default();
        let mut type_counts: FxHashMap<TermId, u64> = FxHashMap::default();
        for t in &graph.triples {
            all_subjects.insert(t.s.0, ());
            if Some(t.p) == rdf_type {
                *type_counts.entry(t.o).or_insert(0) += 1;
            }
            let acc = match by_prop.entry(t.p) {
                Entry::Occupied(e) => e.into_mut(),
                Entry::Vacant(e) => e.insert(Acc {
                    count: 0,
                    subjects: FxHashMap::default(),
                    objects: FxHashMap::default(),
                }),
            };
            acc.count += 1;
            acc.subjects.insert(t.s.0, ());
            acc.objects.insert(t.o.0, ());
        }
        let mut preds: Vec<PredStat> = by_prop
            .into_iter()
            .map(|(prop, acc)| PredStat {
                prop,
                count: acc.count,
                ndv_subjects: acc.subjects.len() as u64,
                ndv_objects: acc.objects.len() as u64,
            })
            .collect();
        preds.sort_unstable_by_key(|p| p.prop);
        let mut types: Vec<(TermId, u64)> = type_counts.into_iter().collect();
        types.sort_unstable_by_key(|(o, _)| *o);
        StatsCatalog {
            triples: graph.triples.len() as u64,
            subjects: all_subjects.len() as u64,
            preds,
            types,
            ext: Vec::new(),
        }
    }

    /// Statistics of one property, if any triple carries it.
    pub fn pred(&self, prop: TermId) -> Option<&PredStat> {
        self.preds
            .binary_search_by_key(&prop, |p| p.prop)
            .ok()
            .map(|i| &self.preds[i])
    }

    /// Instance count of one `rdf:type` object (0 when absent).
    pub fn type_count(&self, object: TermId) -> u64 {
        self.types
            .binary_search_by_key(&object, |(o, _)| *o)
            .ok()
            .map(|i| self.types[i].1)
            .unwrap_or(0)
    }

    /// All per-property statistics, sorted by property id.
    pub fn preds(&self) -> &[PredStat] {
        &self.preds
    }

    /// Register the VP store's materialized ExtVP reductions so their sizes
    /// participate in cost estimation. Replaces any prior registration.
    pub fn register_ext_tables(&mut self, ext: &[crate::vp::ExtVpMeta]) {
        self.ext = ext
            .iter()
            .map(|e| ExtTableStat {
                dataset: e.dataset.clone(),
                rows: e.rows as u64,
                bytes: e.bytes as u64,
            })
            .collect();
        self.ext.sort_unstable_by(|a, b| a.dataset.cmp(&b.dataset));
    }

    /// Statistics of one registered ExtVP reduction, by dataset name.
    pub fn ext_table(&self, dataset: &str) -> Option<&ExtTableStat> {
        self.ext
            .binary_search_by(|e| e.dataset.as_str().cmp(dataset))
            .ok()
            .map(|i| &self.ext[i])
    }

    /// All registered ExtVP reduction stats, sorted by dataset name.
    pub fn ext_tables(&self) -> &[ExtTableStat] {
        &self.ext
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    fn sample() -> Graph {
        let mut g = Graph::new();
        for i in 0..6 {
            let s = iri(&format!("s{i}"));
            g.insert_terms(&s, &Term::iri(vocab::RDF_TYPE), &iri("T"));
            g.insert_terms(&s, &iri("p"), &iri(&format!("v{}", i % 3)));
            g.insert_terms(&s, &iri("p"), &iri("shared"));
        }
        g
    }

    #[test]
    fn counts_and_ndvs_are_exact() {
        let g = sample();
        let st = StatsCatalog::compute(&g);
        assert_eq!(st.triples, 18);
        assert_eq!(st.subjects, 6);
        let p = g.dict.lookup(&iri("p")).unwrap();
        let ps = st.pred(p).unwrap();
        assert_eq!(ps.count, 12);
        assert_eq!(ps.ndv_subjects, 6);
        assert_eq!(ps.ndv_objects, 4); // v0, v1, v2, shared
        assert!((ps.avg_per_subject() - 2.0).abs() < 1e-12);
        let t = g.dict.lookup(&iri("T")).unwrap();
        assert_eq!(st.type_count(t), 6);
        assert_eq!(st.type_count(TermId(u64::MAX)), 0);
    }

    #[test]
    fn preds_are_sorted_by_property_id() {
        let st = StatsCatalog::compute(&sample());
        let ids: Vec<u64> = st.preds().iter().map(|p| p.prop.0).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn empty_graph_has_zero_stats() {
        let st = StatsCatalog::compute(&Graph::new());
        assert_eq!(st.triples, 0);
        assert_eq!(st.subjects, 0);
        assert!(st.preds().is_empty());
        assert_eq!(st.type_count(TermId(0)), 0);
        assert!(st.ext_tables().is_empty());
    }

    #[test]
    fn single_predicate_graph() {
        let mut g = Graph::new();
        for i in 0..4 {
            g.insert_terms(&iri(&format!("s{i}")), &iri("only"), &iri("o"));
        }
        let st = StatsCatalog::compute(&g);
        assert_eq!(st.preds().len(), 1);
        let p = g.dict.lookup(&iri("only")).unwrap();
        let ps = st.pred(p).unwrap();
        assert_eq!((ps.count, ps.ndv_subjects, ps.ndv_objects), (4, 4, 1));
        assert_eq!(st.subjects, 4);
    }

    #[test]
    fn all_duplicate_subjects_gives_ndv_one() {
        let mut g = Graph::new();
        for i in 0..7 {
            g.insert_terms(&iri("hub"), &iri("edge"), &iri(&format!("o{i}")));
        }
        let st = StatsCatalog::compute(&g);
        let p = g.dict.lookup(&iri("edge")).unwrap();
        let ps = st.pred(p).unwrap();
        assert_eq!(ps.ndv_subjects, 1);
        assert_eq!(ps.count, 7);
        assert!((ps.avg_per_subject() - 7.0).abs() < 1e-12);
        assert_eq!(st.subjects, 1);
    }

    #[test]
    fn stats_rows_agree_with_vp_table_meta_including_extvp() {
        use crate::vp::{VpKey, VpStore};
        use rapida_mapred::SimDfs;

        let g = sample();
        let dfs = SimDfs::new();
        let store = VpStore::load_ext(&g, &dfs, 16, Some(1.0));
        let mut st = StatsCatalog::compute(&g);
        st.register_ext_tables(store.ext_tables());

        // Base tables: per-property counts and per-type instance counts must
        // match the VP metadata row for row.
        for meta in store.tables() {
            let expect = match meta.key {
                VpKey::Prop(p) => st.pred(p).unwrap().count,
                VpKey::TypePartition(o) => st.type_count(o),
            };
            assert_eq!(expect, meta.rows as u64, "{}", meta.dataset);
        }
        // ExtVP reductions: registered stats mirror the store metadata.
        assert_eq!(st.ext_tables().len(), store.ext_tables().len());
        for e in store.ext_tables() {
            let reg = st.ext_table(&e.dataset).unwrap();
            assert_eq!(reg.rows, e.rows as u64, "{}", e.dataset);
            assert_eq!(reg.bytes, e.bytes as u64, "{}", e.dataset);
        }
    }
}
