//! Per-predicate catalog statistics: triple counts and NDV (number of
//! distinct values) for the subject and object columns of every property,
//! plus per-type instance counts — the cardinality inputs of the plan
//! enumerator's coster.
//!
//! Everything here is stored in **sorted** vectors and looked up by binary
//! search: statistics sit on the plan-choice path, where hash-map iteration
//! order must never leak into the chosen plan.

use rapida_rdf::{vocab, FxHashMap, Graph, Term, TermId};
use std::collections::hash_map::Entry;

/// Statistics of one property's triple table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredStat {
    /// The property id.
    pub prop: TermId,
    /// Triple count.
    pub count: u64,
    /// Distinct subjects.
    pub ndv_subjects: u64,
    /// Distinct objects.
    pub ndv_objects: u64,
}

impl PredStat {
    /// Average object multiplicity per subject (≥ 1 for non-empty tables).
    pub fn avg_per_subject(&self) -> f64 {
        if self.ndv_subjects == 0 {
            0.0
        } else {
            self.count as f64 / self.ndv_subjects as f64
        }
    }
}

/// Catalog-wide statistics over a loaded graph, ordered deterministically.
#[derive(Debug, Clone, Default)]
pub struct StatsCatalog {
    /// Total triples.
    pub triples: u64,
    /// Distinct subjects across the whole graph.
    pub subjects: u64,
    /// Per-property statistics, sorted by property id.
    preds: Vec<PredStat>,
    /// Per-`rdf:type`-object instance counts, sorted by object id.
    types: Vec<(TermId, u64)>,
}

impl StatsCatalog {
    /// One pass over the graph. NDVs are exact (the simulator's datasets are
    /// small); a production system would substitute sketches here without
    /// changing the interface.
    pub fn compute(graph: &Graph) -> StatsCatalog {
        let rdf_type = graph.dict.lookup(&Term::iri(vocab::RDF_TYPE));
        struct Acc {
            count: u64,
            subjects: FxHashMap<u64, ()>,
            objects: FxHashMap<u64, ()>,
        }
        let mut by_prop: FxHashMap<TermId, Acc> = FxHashMap::default();
        let mut all_subjects: FxHashMap<u64, ()> = FxHashMap::default();
        let mut type_counts: FxHashMap<TermId, u64> = FxHashMap::default();
        for t in &graph.triples {
            all_subjects.insert(t.s.0, ());
            if Some(t.p) == rdf_type {
                *type_counts.entry(t.o).or_insert(0) += 1;
            }
            let acc = match by_prop.entry(t.p) {
                Entry::Occupied(e) => e.into_mut(),
                Entry::Vacant(e) => e.insert(Acc {
                    count: 0,
                    subjects: FxHashMap::default(),
                    objects: FxHashMap::default(),
                }),
            };
            acc.count += 1;
            acc.subjects.insert(t.s.0, ());
            acc.objects.insert(t.o.0, ());
        }
        let mut preds: Vec<PredStat> = by_prop
            .into_iter()
            .map(|(prop, acc)| PredStat {
                prop,
                count: acc.count,
                ndv_subjects: acc.subjects.len() as u64,
                ndv_objects: acc.objects.len() as u64,
            })
            .collect();
        preds.sort_unstable_by_key(|p| p.prop);
        let mut types: Vec<(TermId, u64)> = type_counts.into_iter().collect();
        types.sort_unstable_by_key(|(o, _)| *o);
        StatsCatalog {
            triples: graph.triples.len() as u64,
            subjects: all_subjects.len() as u64,
            preds,
            types,
        }
    }

    /// Statistics of one property, if any triple carries it.
    pub fn pred(&self, prop: TermId) -> Option<&PredStat> {
        self.preds
            .binary_search_by_key(&prop, |p| p.prop)
            .ok()
            .map(|i| &self.preds[i])
    }

    /// Instance count of one `rdf:type` object (0 when absent).
    pub fn type_count(&self, object: TermId) -> u64 {
        self.types
            .binary_search_by_key(&object, |(o, _)| *o)
            .ok()
            .map(|i| self.types[i].1)
            .unwrap_or(0)
    }

    /// All per-property statistics, sorted by property id.
    pub fn preds(&self) -> &[PredStat] {
        &self.preds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    fn sample() -> Graph {
        let mut g = Graph::new();
        for i in 0..6 {
            let s = iri(&format!("s{i}"));
            g.insert_terms(&s, &Term::iri(vocab::RDF_TYPE), &iri("T"));
            g.insert_terms(&s, &iri("p"), &iri(&format!("v{}", i % 3)));
            g.insert_terms(&s, &iri("p"), &iri("shared"));
        }
        g
    }

    #[test]
    fn counts_and_ndvs_are_exact() {
        let g = sample();
        let st = StatsCatalog::compute(&g);
        assert_eq!(st.triples, 18);
        assert_eq!(st.subjects, 6);
        let p = g.dict.lookup(&iri("p")).unwrap();
        let ps = st.pred(p).unwrap();
        assert_eq!(ps.count, 12);
        assert_eq!(ps.ndv_subjects, 6);
        assert_eq!(ps.ndv_objects, 4); // v0, v1, v2, shared
        assert!((ps.avg_per_subject() - 2.0).abs() < 1e-12);
        let t = g.dict.lookup(&iri("T")).unwrap();
        assert_eq!(st.type_count(t), 6);
        assert_eq!(st.type_count(TermId(u64::MAX)), 0);
    }

    #[test]
    fn preds_are_sorted_by_property_id() {
        let st = StatsCatalog::compute(&sample());
        let ids: Vec<u64> = st.preds().iter().map(|p| p.prop.0).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }
}
