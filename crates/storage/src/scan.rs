//! Classification of DFS dataset names into storage scan kinds.
//!
//! Both store families publish datasets under self-describing names
//! (`vp_p{prop}`, `vp_type_o{obj}`, `extvp_{kind}__{base}__{partner}`,
//! `tg_ec{class}`). Plan explainers annotate inputs with the kind, and the
//! cross-query scan cache folds it into its keys — a cached ExtVP-reduced
//! scan must never alias the full-VP scan of the same property.

use std::fmt;

/// The scan kind a base dataset name denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanClass {
    /// Full vertical-partition property table (`vp_p*`, `vp_type_o*`).
    FullVp,
    /// ExtVP subject–subject semi-join reduction (`extvp_ss__*`).
    ExtVpSS,
    /// ExtVP subject–object semi-join reduction (`extvp_so__*`).
    ExtVpSO,
    /// ExtVP object–subject semi-join reduction (`extvp_os__*`).
    ExtVpOS,
    /// Subject triplegroup equivalence-class partition (`tg_ec*`).
    TripleGroup,
}

impl ScanClass {
    /// The bracketed label plan explainers print (e.g. `"[ExtVP-SS]"`).
    /// Triplegroup partitions carry no annotation in plan dumps — the
    /// golden snapshots predate the classifier — so their label is `None`.
    pub fn plan_label(&self) -> Option<&'static str> {
        match self {
            ScanClass::FullVp => Some("[full-VP]"),
            ScanClass::ExtVpSS => Some("[ExtVP-SS]"),
            ScanClass::ExtVpSO => Some("[ExtVP-SO]"),
            ScanClass::ExtVpOS => Some("[ExtVP-OS]"),
            ScanClass::TripleGroup => None,
        }
    }
}

impl fmt::Display for ScanClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScanClass::FullVp => write!(f, "full-vp"),
            ScanClass::ExtVpSS => write!(f, "extvp-ss"),
            ScanClass::ExtVpSO => write!(f, "extvp-so"),
            ScanClass::ExtVpOS => write!(f, "extvp-os"),
            ScanClass::TripleGroup => write!(f, "tg"),
        }
    }
}

/// Classify a dataset name; `None` for intermediates (plan-id-prefixed
/// names) and anything else the storage layer did not publish.
pub fn scan_class(name: &str) -> Option<ScanClass> {
    if name.starts_with("extvp_ss__") {
        Some(ScanClass::ExtVpSS)
    } else if name.starts_with("extvp_so__") {
        Some(ScanClass::ExtVpSO)
    } else if name.starts_with("extvp_os__") {
        Some(ScanClass::ExtVpOS)
    } else if name.starts_with("vp_") {
        Some(ScanClass::FullVp)
    } else if name.starts_with("tg_ec") {
        Some(ScanClass::TripleGroup)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_store_names() {
        assert_eq!(scan_class("vp_p3"), Some(ScanClass::FullVp));
        assert_eq!(scan_class("vp_type_o7"), Some(ScanClass::FullVp));
        assert_eq!(scan_class("extvp_ss__vp_p1__vp_p2"), Some(ScanClass::ExtVpSS));
        assert_eq!(scan_class("extvp_so__vp_p1__vp_type_o2"), Some(ScanClass::ExtVpSO));
        assert_eq!(scan_class("extvp_os__vp_type_o2__vp_p1"), Some(ScanClass::ExtVpOS));
        assert_eq!(scan_class("tg_ec4"), Some(ScanClass::TripleGroup));
        assert_eq!(scan_class("p17_b0"), None);
        assert_eq!(scan_class("hive_mqo_3_qopt"), None);
    }

    #[test]
    fn labels_match_plan_dump_convention() {
        assert_eq!(scan_class("vp_p3").unwrap().plan_label(), Some("[full-VP]"));
        assert_eq!(scan_class("tg_ec1").unwrap().plan_label(), None);
        assert_eq!(format!("{}", ScanClass::ExtVpOS), "extvp-os");
    }
}
