//! # rapida-datagen
//!
//! Deterministic synthetic data generators for the three evaluation datasets
//! of the paper, plus the full query catalog (Fig. 7 + Appendix A):
//!
//! * [`bsbm`] — BSBM-like e-commerce data (Table 3 left, Fig. 8 a/b).
//! * [`chem`] — Chem2Bio2RDF-like chemogenomics data (Table 3 right,
//!   Fig. 8c).
//! * [`pubmed`] — PubMed/Bio2RDF-like publication data (Table 4).
//! * [`queries`] — G1–G9, MG1–MG4, MG6–MG18 with Fig. 7 structure metadata.
//! * [`traffic`] — seeded multi-client arrival streams for `rapida serve`.

pub mod bsbm;
pub mod chem;
pub mod pubmed;
pub mod queries;
pub mod traffic;

pub use bsbm::{generate as generate_bsbm, BsbmConfig};
pub use chem::{generate as generate_chem, ChemConfig};
pub use pubmed::{generate as generate_pubmed, PubmedConfig};
pub use queries::{catalog, mg_ids, query, CatalogQuery, Workload};
pub use traffic::{generate as generate_traffic, TrafficConfig, TrafficEvent};
