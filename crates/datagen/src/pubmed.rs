//! PubMed/Bio2RDF-like synthetic publication generator: publications with
//! journals, publication types, multi-valued authors / MeSH headings /
//! chemicals, and grants with agencies and countries.
//!
//! The heavily multi-valued `mesh_heading` and `chemical` properties are the
//! relations whose join blow-up made naive Hive exhaust HDFS space on MG13
//! in the paper; the generator reproduces that fan-out at laptop scale.

use rapida_testkit::rng::StdRng;
use rapida_rdf::{vocab, Graph, Term};

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct PubmedConfig {
    /// Number of publications.
    pub publications: usize,
    /// Number of distinct authors.
    pub authors: usize,
    /// Number of journals.
    pub journals: usize,
    /// Number of grant agencies.
    pub agencies: usize,
    /// Number of countries.
    pub countries: usize,
    /// Maximum MeSH headings per publication.
    pub max_mesh: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PubmedConfig {
    fn default() -> Self {
        PubmedConfig {
            publications: 4000,
            authors: 600,
            journals: 80,
            agencies: 40,
            countries: 12,
            max_mesh: 12,
            seed: 99,
        }
    }
}

impl PubmedConfig {
    /// Tiny configuration for unit tests.
    pub fn tiny() -> Self {
        PubmedConfig {
            publications: 200,
            authors: 40,
            journals: 10,
            agencies: 8,
            countries: 5,
            max_mesh: 6,
            seed: 11,
        }
    }
}

fn ns(local: &str) -> Term {
    Term::iri(format!("{}{}", vocab::PUBMED_NS, local))
}

/// Generate a PubMed-like graph.
pub fn generate(cfg: &PubmedConfig) -> Graph {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut g = Graph::new();

    let p_journal = ns("journal");
    let p_pub_type = ns("pub_type");
    let p_author = ns("author");
    let p_mesh = ns("mesh_heading");
    let p_chemical = ns("chemical");
    let p_grant = ns("grant");
    let p_agency = ns("grant_agency");
    let p_country = ns("grant_country");
    let p_last_name = ns("last_name");

    for a in 0..cfg.authors {
        g.insert_terms(
            &ns(&format!("author{a}")),
            &p_last_name,
            &Term::literal(format!("Lastname{}", a % (cfg.authors / 2).max(1))),
        );
    }

    let mut grant_id = 0usize;
    for p in 0..cfg.publications {
        let publ = ns(&format!("pub{p}"));
        g.insert_terms(
            &publ,
            &p_journal,
            &ns(&format!("journal{}", rng.gen_range(0..cfg.journals))),
        );
        // "Journal Article" ≈ 70% (low selectivity, MG15); "News" ≈ 5%
        // (high selectivity, MG16).
        let roll: f64 = rng.gen_range(0.0..1.0);
        let pub_type = if roll < 0.70 {
            "Journal Article"
        } else if roll < 0.75 {
            "News"
        } else if roll < 0.88 {
            "Review"
        } else {
            "Letter"
        };
        g.insert_terms(&publ, &p_pub_type, &Term::literal(pub_type));
        for _ in 0..rng.gen_range(1..=4usize) {
            g.insert_terms(
                &publ,
                &p_author,
                &ns(&format!("author{}", rng.gen_range(0..cfg.authors))),
            );
        }
        // Heavy multi-valued MeSH headings.
        for _ in 0..rng.gen_range(2..=cfg.max_mesh) {
            g.insert_terms(
                &publ,
                &p_mesh,
                &ns(&format!("mesh{}", rng.gen_range(0..400))),
            );
        }
        // Chemicals on ~60% of publications.
        if rng.gen_bool(0.6) {
            for _ in 0..rng.gen_range(1..=5usize) {
                g.insert_terms(
                    &publ,
                    &p_chemical,
                    &ns(&format!("chem{}", rng.gen_range(0..250))),
                );
            }
        }
        // Grants on ~50% of publications.
        if rng.gen_bool(0.5) {
            for _ in 0..rng.gen_range(1..=2usize) {
                let grant = ns(&format!("grant{grant_id}"));
                grant_id += 1;
                g.insert_terms(&publ, &p_grant, &grant);
                g.insert_terms(
                    &grant,
                    &p_agency,
                    &ns(&format!("agency{}", rng.gen_range(0..cfg.agencies))),
                );
                g.insert_terms(
                    &grant,
                    &p_country,
                    &ns(&format!("country{}", rng.gen_range(0..cfg.countries))),
                );
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(
            generate(&PubmedConfig::tiny()).len(),
            generate(&PubmedConfig::tiny()).len()
        );
    }

    #[test]
    fn pub_type_selectivities() {
        let g = generate(&PubmedConfig::default());
        let lex = g.dict.lexical_snapshot();
        // Count triples whose object is each pub-type literal.
        let count_obj = |needle: &str| {
            let id = g.dict.lookup(&Term::literal(needle)).expect("type exists");
            g.triples.iter().filter(|t| t.o == id).count()
        };
        let journal = count_obj("Journal Article");
        let news = count_obj("News");
        assert!(journal > 5 * news, "Journal Article must dominate News");
        assert!(lex.iter().any(|s| s == "News"));
    }

    #[test]
    fn mesh_is_heavily_multivalued() {
        let g = generate(&PubmedConfig::tiny());
        let stats = g.stats();
        let mesh = g.dict.lookup(&ns("mesh_heading")).unwrap();
        let journal = g.dict.lookup(&ns("journal")).unwrap();
        assert!(stats.per_property[&mesh] > 2 * stats.per_property[&journal]);
    }
}
