//! Chem2Bio2RDF-like synthetic chemogenomics generator: compounds, bioassays,
//! proteins/genes, drug targets, drugs (including "Dexamethasone"), KEGG-like
//! pathways (including "MAPK signaling pathway"), side effects (including
//! "hepatomegaly") and MEDLINE-like publications (the large VP relations of
//! G9 / MG9–MG10).

use rapida_testkit::rng::StdRng;
use rapida_rdf::{vocab, Graph, Term};

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct ChemConfig {
    /// Number of chemical compounds.
    pub compounds: usize,
    /// Number of bioassay records.
    pub assays: usize,
    /// Number of proteins (each with a gene symbol).
    pub proteins: usize,
    /// Number of drugs.
    pub drugs: usize,
    /// Number of pathways.
    pub pathways: usize,
    /// Number of side-effect records.
    pub sider: usize,
    /// Number of MEDLINE-like publications (the large relation).
    pub medline: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChemConfig {
    fn default() -> Self {
        ChemConfig {
            compounds: 400,
            assays: 2500,
            proteins: 250,
            drugs: 120,
            pathways: 60,
            sider: 500,
            medline: 6000,
            seed: 1234,
        }
    }
}

impl ChemConfig {
    /// Tiny configuration for unit tests.
    pub fn tiny() -> Self {
        ChemConfig {
            compounds: 40,
            assays: 150,
            proteins: 30,
            drugs: 15,
            pathways: 10,
            sider: 40,
            medline: 250,
            seed: 5,
        }
    }
}

fn ns(local: &str) -> Term {
    Term::iri(format!("{}{}", vocab::CHEM_NS, local))
}

/// Generate a Chem2Bio2RDF-like graph.
pub fn generate(cfg: &ChemConfig) -> Graph {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut g = Graph::new();

    let p_cid = ns("CID");
    let p_outcome = ns("outcome");
    let p_score = ns("Score");
    let p_gi = ns("gi");
    let p_gene_symbol = ns("geneSymbol");
    let p_gene = ns("gene");
    let p_dbid = ns("DBID");
    let p_generic_name = ns("Generic_Name");
    let p_protein = ns("protein");
    let p_pathway_name = ns("Pathway_name");
    let p_pathway_id = ns("pathwayid");
    let p_side_effect = ns("side_effect");
    let p_cid_ref = ns("cid");
    let p_swissprot = ns("SwissProt_ID");
    let p_disease = ns("disease");

    // Proteins with entrez gi ids and gene symbols.
    for u in 0..cfg.proteins {
        let protein = ns(&format!("protein{u}"));
        g.insert_terms(&protein, &p_gi, &ns(&format!("gi{u}")));
        g.insert_terms(
            &protein,
            &p_gene_symbol,
            &Term::literal(format!("GENE{}", u % (cfg.proteins / 2).max(1))),
        );
        if rng.gen_bool(0.8) {
            g.insert_terms(&protein, &p_swissprot, &ns(&format!("swiss{u}")));
        }
        // Pathway membership is added below via protein IRIs.
    }

    // Bioassays: compound x protein activity records.
    for b in 0..cfg.assays {
        let assay = ns(&format!("assay{b}"));
        let c = rng.gen_range(0..cfg.compounds);
        g.insert_terms(&assay, &p_cid, &ns(&format!("compound{c}")));
        g.insert_terms(
            &assay,
            &p_outcome,
            &Term::literal(if rng.gen_bool(0.6) { "active" } else { "inactive" }),
        );
        g.insert_terms(
            &assay,
            &p_score,
            &Term::integer(rng.gen_range(0..100)),
        );
        let u = rng.gen_range(0..cfg.proteins);
        g.insert_terms(&assay, &p_gi, &ns(&format!("gi{u}")));
    }

    // Drugs (drug 0 is Dexamethasone) and drug-target records.
    for d in 0..cfg.drugs {
        let drug = ns(&format!("drug{d}"));
        let name = if d == 0 {
            "Dexamethasone".to_string()
        } else {
            format!("Drug-{d}")
        };
        g.insert_terms(&drug, &p_generic_name, &Term::literal(name));
        // DrugBank compound cross-references (G7 joins SIDER cids to drugs).
        for _ in 0..rng.gen_range(1..=2usize) {
            let c = rng.gen_range(0..cfg.compounds);
            g.insert_terms(&drug, &p_cid, &ns(&format!("compound{c}")));
        }
        // Each drug targets 1–4 genes.
        for t in 0..rng.gen_range(1..=4usize) {
            let di = ns(&format!("drugtarget{d}_{t}"));
            let u = rng.gen_range(0..cfg.proteins);
            g.insert_terms(
                &di,
                &p_gene,
                &Term::literal(format!("GENE{}", u % (cfg.proteins / 2).max(1))),
            );
            g.insert_terms(&di, &p_dbid, &drug);
            // Target records linking drugs to proteins via SwissProt ids
            // (G7 joins these to pathway membership).
            let target = ns(&format!("target{d}_{t}"));
            g.insert_terms(&target, &p_dbid, &drug);
            g.insert_terms(&target, &p_swissprot, &ns(&format!("protein{u}")));
        }
    }

    // Pathways: multi-valued protein membership, names include "MAPK
    // signaling pathway" for a slice.
    for pw in 0..cfg.pathways {
        let pathway = ns(&format!("pathway{pw}"));
        let name = if pw % 8 == 0 {
            format!("MAPK signaling pathway variant {pw}")
        } else {
            format!("pathway nr {pw}")
        };
        g.insert_terms(&pathway, &p_pathway_name, &Term::literal(name));
        g.insert_terms(&pathway, &p_pathway_id, &ns(&format!("pwid{pw}")));
        for _ in 0..rng.gen_range(2..=8usize) {
            let u = rng.gen_range(0..cfg.proteins);
            g.insert_terms(&pathway, &p_protein, &ns(&format!("protein{u}")));
        }
    }

    // Side-effect records (SIDER): cid + side-effect literal.
    for s in 0..cfg.sider {
        let sider = ns(&format!("sider{s}"));
        let effect = if s % 10 == 0 {
            "hepatomegaly and related conditions".to_string()
        } else {
            format!("side effect {}", s % 37)
        };
        g.insert_terms(&sider, &p_side_effect, &Term::literal(effect));
        let c = rng.gen_range(0..cfg.compounds);
        g.insert_terms(&sider, &p_cid_ref, &ns(&format!("compound{c}")));
    }

    // MEDLINE-like publications: gene links + side effects + diseases
    // (the large VP relations).
    for m in 0..cfg.medline {
        let pmid = ns(&format!("pmid{m}"));
        let u = rng.gen_range(0..cfg.proteins);
        g.insert_terms(&pmid, &p_gene, &ns(&format!("protein{u}")));
        g.insert_terms(
            &pmid,
            &p_side_effect,
            &Term::literal(format!("observation {}", m % 53)),
        );
        if rng.gen_bool(0.6) {
            g.insert_terms(
                &pmid,
                &p_disease,
                &ns(&format!("disease{}", rng.gen_range(0..25))),
            );
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(
            generate(&ChemConfig::tiny()).len(),
            generate(&ChemConfig::tiny()).len()
        );
    }

    #[test]
    fn contains_marker_entities() {
        let g = generate(&ChemConfig::tiny());
        assert!(g.dict.lookup(&Term::literal("Dexamethasone")).is_some());
        let lex = g.dict.lexical_snapshot();
        assert!(lex.iter().any(|s| s.contains("MAPK signaling")));
        assert!(lex.iter().any(|s| s.contains("hepatomegaly")));
    }

    #[test]
    fn medline_is_the_largest_relation() {
        let g = generate(&ChemConfig::tiny());
        let stats = g.stats();
        let gene = g.dict.lookup(&ns("gene")).unwrap();
        let pathway_name = g.dict.lookup(&ns("Pathway_name")).unwrap();
        assert!(stats.per_property[&gene] > 3 * stats.per_property[&pathway_name]);
    }
}
