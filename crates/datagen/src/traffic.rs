//! Seeded traffic generator for the serving front end.
//!
//! Produces a deterministic stream of query arrivals for N simulated
//! clients: each client draws Poisson-ish (exponential) interarrival
//! offsets from its own PRNG stream and picks a query template from a
//! weighted mix. The same `TrafficConfig` always yields the same event
//! stream, independent of how the consumer threads it — the serve bench
//! and the serve tests replay identical traffic from identical seeds.

use crate::queries;
use rapida_testkit::rng::{splitmix64, StdRng};

/// One simulated query arrival.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficEvent {
    /// Arrival offset from the start of the run, in simulated ms.
    pub at_ms: u64,
    /// Client (tenant) index in `0..clients`.
    pub client: usize,
    /// Per-client arrival sequence number (0, 1, 2, …).
    pub seq: usize,
    /// Catalog query id (e.g. `"MG1"`); resolve via [`queries::query`].
    pub query_id: String,
}

/// Parameters of the simulated arrival process.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Master seed; per-client streams are derived from it, so the same
    /// seed gives the same traffic regardless of client count order.
    pub seed: u64,
    /// Number of simulated clients.
    pub clients: usize,
    /// Length of the run in simulated ms; arrivals beyond it are dropped.
    pub duration_ms: u64,
    /// Mean interarrival gap per client in simulated ms (exponential).
    pub mean_interarrival_ms: f64,
    /// Weighted query-template mix: (catalog id, weight > 0).
    pub mix: Vec<(String, f64)>,
}

impl TrafficConfig {
    /// A BSBM-flavoured default mix: the four MG analytical templates plus
    /// two single-block G templates, weighted toward the overlapping MGs.
    pub fn bsbm_mix(seed: u64, clients: usize, duration_ms: u64) -> Self {
        TrafficConfig {
            seed,
            clients,
            duration_ms,
            mean_interarrival_ms: 40.0,
            mix: vec![
                ("MG1".into(), 3.0),
                ("MG2".into(), 3.0),
                ("MG3".into(), 2.0),
                ("MG4".into(), 2.0),
                ("G1".into(), 1.0),
                ("G2".into(), 1.0),
            ],
        }
    }
}

/// Generate the full arrival stream, sorted by `(at_ms, client, seq)`.
///
/// Each client's interarrival gaps are exponential with the configured
/// mean (inverse-CDF of a uniform draw), quantised to whole ms with a
/// 1 ms floor so two arrivals of one client never tie. Template choice
/// is an independent weighted draw per event.
pub fn generate(cfg: &TrafficConfig) -> Vec<TrafficEvent> {
    assert!(!cfg.mix.is_empty(), "traffic mix must not be empty");
    assert!(cfg.mean_interarrival_ms > 0.0, "mean interarrival must be positive");
    let total_weight: f64 = cfg.mix.iter().map(|(_, w)| *w).sum();
    assert!(total_weight > 0.0, "traffic mix weights must sum to > 0");

    let mut events = Vec::new();
    for client in 0..cfg.clients {
        // Independent per-client stream: mixing the client index through
        // SplitMix64 keeps streams decorrelated for adjacent indices.
        let mut derive = cfg.seed ^ (client as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let stream_seed = splitmix64(&mut derive);
        let mut rng = StdRng::seed_from_u64(stream_seed);
        let mut at = 0u64;
        let mut seq = 0usize;
        loop {
            // Exponential interarrival, floored at 1 ms after rounding.
            let u = rng.unit_f64();
            let gap = (-cfg.mean_interarrival_ms * (1.0 - u).ln()).round() as u64;
            at = at.saturating_add(gap.max(1));
            if at >= cfg.duration_ms {
                break;
            }
            let mut roll = rng.unit_f64() * total_weight;
            let mut query_id = cfg.mix.last().unwrap().0.clone();
            for (id, w) in &cfg.mix {
                if roll < *w {
                    query_id = id.clone();
                    break;
                }
                roll -= *w;
            }
            events.push(TrafficEvent { at_ms: at, client, seq, query_id });
            seq += 1;
        }
    }
    events.sort_by(|a, b| {
        (a.at_ms, a.client, a.seq).cmp(&(b.at_ms, b.client, b.seq))
    });
    events
}

/// Resolve an event to its catalog SPARQL text.
pub fn sparql_of(ev: &TrafficEvent) -> String {
    queries::query(&ev.query_id).sparql
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TrafficConfig {
        TrafficConfig::bsbm_mix(7, 5, 2_000)
    }

    #[test]
    fn same_seed_same_stream() {
        assert_eq!(generate(&cfg()), generate(&cfg()));
    }

    #[test]
    fn different_seeds_differ() {
        let mut other = cfg();
        other.seed = 8;
        assert_ne!(generate(&cfg()), generate(&other));
    }

    #[test]
    fn events_sorted_and_in_bounds() {
        let c = cfg();
        let evs = generate(&c);
        assert!(!evs.is_empty());
        for w in evs.windows(2) {
            assert!((w[0].at_ms, w[0].client, w[0].seq) < (w[1].at_ms, w[1].client, w[1].seq));
        }
        for ev in &evs {
            assert!(ev.at_ms < c.duration_ms);
            assert!(ev.client < c.clients);
            assert!(c.mix.iter().any(|(id, _)| *id == ev.query_id));
        }
    }

    #[test]
    fn per_client_sequences_are_dense() {
        let evs = generate(&cfg());
        for client in 0..5 {
            let seqs: Vec<usize> =
                evs.iter().filter(|e| e.client == client).map(|e| e.seq).collect();
            let mut sorted = seqs.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..seqs.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn mix_weights_are_respected_roughly() {
        let mut c = cfg();
        c.clients = 40;
        c.duration_ms = 10_000;
        let evs = generate(&c);
        let mg1 = evs.iter().filter(|e| e.query_id == "MG1").count();
        let g1 = evs.iter().filter(|e| e.query_id == "G1").count();
        // MG1 has 3x the weight of G1; allow a generous band.
        assert!(mg1 > g1, "expected MG1 ({mg1}) to dominate G1 ({g1})");
    }

    #[test]
    fn adding_a_client_preserves_existing_streams() {
        let a = generate(&cfg());
        let mut c = cfg();
        c.clients = 6;
        let b = generate(&c);
        let a_only: Vec<_> = a.iter().filter(|e| e.client < 5).collect();
        let b_only: Vec<_> = b.iter().filter(|e| e.client < 5).collect();
        assert_eq!(a_only, b_only);
    }

    #[test]
    fn events_resolve_to_catalog_sparql() {
        let evs = generate(&cfg());
        let text = sparql_of(&evs[0]);
        assert!(text.contains("SELECT"));
    }
}
