//! The full evaluated query catalog: simple grouping queries G1–G9 and
//! multi-grouping queries MG1–MG4, MG6–MG18, reconstructed from Fig. 7,
//! Appendix A, and the case-study descriptions of §5.1.

/// Which dataset a query runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// BSBM-like e-commerce data.
    Bsbm,
    /// Chem2Bio2RDF-like chemogenomics data.
    Chem,
    /// PubMed-like publication data.
    Pubmed,
}

/// One catalog entry.
#[derive(Debug, Clone)]
pub struct CatalogQuery {
    /// Paper query id (e.g. `"MG3"`).
    pub id: &'static str,
    /// Target dataset.
    pub workload: Workload,
    /// Paper-annotated selectivity, when given ("lo"/"hi").
    pub selectivity: Option<&'static str>,
    /// The SPARQL text.
    pub sparql: String,
    /// Fig. 7 structure: per block, the triple-pattern count of each star.
    pub shapes: &'static [&'static [usize]],
    /// Fig. 7 GROUP BY summary per block.
    pub groups: &'static [&'static str],
}

const BSBM_PREFIX: &str = "PREFIX bsbm: <http://bsbm.example.org/v01/>\n";
const CHEM_PREFIX: &str = "PREFIX chem: <http://chem2bio2rdf.example.org/>\n";
const PM_PREFIX: &str = "PREFIX pm: <http://pubmed.example.org/>\n";

fn bsbm_g(ty: usize, by_feature: bool) -> String {
    if by_feature {
        format!(
            "{BSBM_PREFIX}SELECT ?f (COUNT(?pr) AS ?cnt) (SUM(?pr) AS ?sum) {{
  ?p a bsbm:ProductType{ty} ; rdfs:label ?l ; bsbm:productFeature ?f .
  ?o bsbm:product ?p ; bsbm:price ?pr .
}} GROUP BY ?f"
        )
    } else {
        format!(
            "{BSBM_PREFIX}SELECT (COUNT(?pr) AS ?cnt) (SUM(?pr) AS ?sum) {{
  ?p a bsbm:ProductType{ty} ; rdfs:label ?l .
  ?o bsbm:product ?p ; bsbm:price ?pr .
}}"
        )
    }
}

/// MG1/MG2 (Appendix A, MG1): average price per feature vs across ALL
/// features.
fn bsbm_mg12(ty: usize) -> String {
    format!(
        "{BSBM_PREFIX}SELECT ?f ?sumF ?cntF ?sumT ?cntT {{
  {{ SELECT ?f (COUNT(?pr2) AS ?cntF) (SUM(?pr2) AS ?sumF)
     {{ ?p2 a bsbm:ProductType{ty} ; rdfs:label ?l2 ; bsbm:productFeature ?f .
        ?off2 bsbm:product ?p2 ; bsbm:price ?pr2 . }} GROUP BY ?f }}
  {{ SELECT (COUNT(?pr) AS ?cntT) (SUM(?pr) AS ?sumT)
     {{ ?p1 a bsbm:ProductType{ty} ; rdfs:label ?l1 .
        ?off1 bsbm:product ?p1 ; bsbm:price ?pr . }} }}
}}"
    )
}

/// MG3/MG4 (Appendix A, MG3): price per country-feature vs per country.
fn bsbm_mg34(ty: usize) -> String {
    format!(
        "{BSBM_PREFIX}SELECT ?f ?c ?sumF ?cntF ?sumT ?cntT {{
  {{ SELECT ?f ?c (COUNT(?pr2) AS ?cntF) (SUM(?pr2) AS ?sumF)
     {{ ?p2 a bsbm:ProductType{ty} ; rdfs:label ?l2 ; bsbm:productFeature ?f .
        ?off2 bsbm:product ?p2 ; bsbm:price ?pr2 ; bsbm:vendor ?v2 .
        ?v2 bsbm:country ?c . }} GROUP BY ?f ?c }}
  {{ SELECT ?c (COUNT(?pr) AS ?cntT) (SUM(?pr) AS ?sumT)
     {{ ?p1 a bsbm:ProductType{ty} ; rdfs:label ?l1 .
        ?off1 bsbm:product ?p1 ; bsbm:price ?pr ; bsbm:vendor ?v1 .
        ?v1 bsbm:country ?c . }} GROUP BY ?c }}
}}"
    )
}

/// Build the full catalog.
pub fn catalog() -> Vec<CatalogQuery> {
    let mut out = Vec::new();

    // --- BSBM simple groupings (Table 3 left) ---
    out.push(CatalogQuery {
        id: "G1",
        workload: Workload::Bsbm,
        selectivity: Some("lo"),
        sparql: bsbm_g(1, false),
        shapes: &[&[2, 2]],
        groups: &["ALL"],
    });
    out.push(CatalogQuery {
        id: "G2",
        workload: Workload::Bsbm,
        selectivity: Some("hi"),
        sparql: bsbm_g(9, false),
        shapes: &[&[2, 2]],
        groups: &["ALL"],
    });
    out.push(CatalogQuery {
        id: "G3",
        workload: Workload::Bsbm,
        selectivity: Some("lo"),
        sparql: bsbm_g(1, true),
        shapes: &[&[3, 2]],
        groups: &["{feature}"],
    });
    out.push(CatalogQuery {
        id: "G4",
        workload: Workload::Bsbm,
        selectivity: Some("hi"),
        sparql: bsbm_g(9, true),
        shapes: &[&[3, 2]],
        groups: &["{feature}"],
    });

    // --- Chem2Bio2RDF simple groupings (Table 3 right) ---
    out.push(CatalogQuery {
        id: "G5",
        workload: Workload::Chem,
        selectivity: None,
        sparql: format!(
            "{CHEM_PREFIX}SELECT ?cid (COUNT(?cid) AS ?active_assays) {{
  ?b chem:CID ?cid ; chem:outcome ?a ; chem:Score ?s1 ; chem:gi ?gi .
  ?u chem:gi ?gi ; chem:geneSymbol ?g .
  ?di chem:gene ?g ; chem:DBID ?dr .
  ?dr chem:Generic_Name \"Dexamethasone\" .
}} GROUP BY ?cid"
        ),
        shapes: &[&[4, 2, 2, 1]],
        groups: &["{cid}"],
    });
    out.push(CatalogQuery {
        id: "G6",
        workload: Workload::Chem,
        selectivity: None,
        sparql: format!(
            "{CHEM_PREFIX}SELECT ?cid (COUNT(?cid) AS ?active_assays) {{
  ?b chem:CID ?cid ; chem:outcome ?a ; chem:Score ?s1 ; chem:gi ?gi .
  ?u chem:gi ?gi .
  ?pathway chem:protein ?u ; chem:Pathway_name ?pname .
  FILTER regex(?pname, \"MAPK signaling pathway\", \"i\")
}} GROUP BY ?cid"
        ),
        shapes: &[&[4, 1, 2]],
        groups: &["{cid}"],
    });
    out.push(CatalogQuery {
        id: "G7",
        workload: Workload::Chem,
        selectivity: None,
        sparql: format!(
            "{CHEM_PREFIX}SELECT ?pid (COUNT(?pid) AS ?count) {{
  ?sider chem:side_effect ?se ; chem:cid ?cid .
  FILTER regex(?se, \"hepatomegaly\", \"i\")
  ?dr chem:CID ?cid .
  ?target chem:DBID ?dr ; chem:SwissProt_ID ?u .
  ?pathway chem:protein ?u ; chem:pathwayid ?pid .
}} GROUP BY ?pid"
        ),
        shapes: &[&[2, 1, 2, 2]],
        groups: &["{pid}"],
    });
    out.push(CatalogQuery {
        id: "G8",
        workload: Workload::Chem,
        selectivity: None,
        sparql: format!(
            "{CHEM_PREFIX}SELECT ?g (COUNT(?cid) AS ?compounds) {{
  ?b chem:CID ?cid ; chem:outcome ?a ; chem:Score ?s ; chem:gi ?gi .
  ?u chem:gi ?gi ; chem:geneSymbol ?g .
}} GROUP BY ?g"
        ),
        shapes: &[&[4, 2]],
        groups: &["{gene}"],
    });
    out.push(CatalogQuery {
        id: "G9",
        workload: Workload::Chem,
        selectivity: None,
        sparql: format!(
            "{CHEM_PREFIX}SELECT ?gs (COUNT(?gs) AS ?pubs) {{
  ?g chem:geneSymbol ?gs .
  ?pmid chem:gene ?g ; chem:side_effect ?se .
}} GROUP BY ?gs"
        ),
        shapes: &[&[1, 2]],
        groups: &["{gene}"],
    });

    // --- BSBM multi-groupings (Fig. 8 a/b) ---
    out.push(CatalogQuery {
        id: "MG1",
        workload: Workload::Bsbm,
        selectivity: Some("lo"),
        sparql: bsbm_mg12(1),
        shapes: &[&[3, 2], &[2, 2]],
        groups: &["{feature}", "ALL"],
    });
    out.push(CatalogQuery {
        id: "MG2",
        workload: Workload::Bsbm,
        selectivity: Some("hi"),
        sparql: bsbm_mg12(9),
        shapes: &[&[3, 2], &[2, 2]],
        groups: &["{feature}", "ALL"],
    });
    out.push(CatalogQuery {
        id: "MG3",
        workload: Workload::Bsbm,
        selectivity: Some("lo"),
        sparql: bsbm_mg34(1),
        shapes: &[&[3, 3, 1], &[2, 3, 1]],
        groups: &["{feature, country}", "{country}"],
    });
    out.push(CatalogQuery {
        id: "MG4",
        workload: Workload::Bsbm,
        selectivity: Some("hi"),
        sparql: bsbm_mg34(9),
        shapes: &[&[3, 3, 1], &[2, 3, 1]],
        groups: &["{feature, country}", "{country}"],
    });

    // --- Chem multi-groupings (Fig. 8c) ---
    out.push(CatalogQuery {
        id: "MG6",
        workload: Workload::Chem,
        selectivity: None,
        sparql: format!(
            "{CHEM_PREFIX}SELECT ?cid ?g1 ?aPerCG ?aPerC {{
  {{ SELECT ?cid ?g1 (COUNT(?cid) AS ?aPerCG)
     {{ ?b1 chem:CID ?cid ; chem:outcome ?a1 ; chem:Score ?s1 ; chem:gi ?gi1 .
        ?u1 chem:gi ?gi1 ; chem:geneSymbol ?g1 .
        ?di1 chem:gene ?g1 ; chem:DBID ?dr1 . }} GROUP BY ?cid ?g1 }}
  {{ SELECT ?cid (COUNT(?cid) AS ?aPerC)
     {{ ?b chem:CID ?cid ; chem:outcome ?a ; chem:Score ?s ; chem:gi ?gi .
        ?u chem:gi ?gi ; chem:geneSymbol ?g .
        ?di chem:gene ?g ; chem:DBID ?dr . }} GROUP BY ?cid }}
}}"
        ),
        shapes: &[&[4, 2, 2], &[4, 2, 2]],
        groups: &["{cid, gene}", "{cid}"],
    });
    out.push(CatalogQuery {
        id: "MG7",
        workload: Workload::Chem,
        selectivity: None,
        sparql: format!(
            "{CHEM_PREFIX}SELECT ?cid ?dr1 ?aPerCD ?aPerC {{
  {{ SELECT ?cid ?dr1 (COUNT(?cid) AS ?aPerCD)
     {{ ?b1 chem:CID ?cid ; chem:outcome ?a1 ; chem:Score ?s1 ; chem:gi ?gi1 .
        ?u1 chem:gi ?gi1 ; chem:geneSymbol ?g1 .
        ?di1 chem:gene ?g1 ; chem:DBID ?dr1 . }} GROUP BY ?cid ?dr1 }}
  {{ SELECT ?cid (COUNT(?cid) AS ?aPerC)
     {{ ?b chem:CID ?cid ; chem:outcome ?a ; chem:Score ?s ; chem:gi ?gi .
        ?u chem:gi ?gi ; chem:geneSymbol ?g .
        ?di chem:gene ?g ; chem:DBID ?dr . }} GROUP BY ?cid }}
}}"
        ),
        shapes: &[&[4, 2, 2], &[4, 2, 2]],
        groups: &["{cid, drug}", "{cid}"],
    });
    out.push(CatalogQuery {
        id: "MG8",
        workload: Workload::Chem,
        selectivity: None,
        sparql: format!(
            "{CHEM_PREFIX}SELECT ?cid ?g1 ?aPerCG ?aT {{
  {{ SELECT ?cid ?g1 (COUNT(?cid) AS ?aPerCG)
     {{ ?b1 chem:CID ?cid ; chem:outcome ?a1 ; chem:Score ?s1 ; chem:gi ?gi1 .
        ?u1 chem:gi ?gi1 ; chem:geneSymbol ?g1 .
        ?di1 chem:gene ?g1 ; chem:DBID ?dr1 . }} GROUP BY ?cid ?g1 }}
  {{ SELECT (COUNT(?cid2) AS ?aT)
     {{ ?b chem:CID ?cid2 ; chem:outcome ?a ; chem:Score ?s ; chem:gi ?gi .
        ?u chem:gi ?gi ; chem:geneSymbol ?g .
        ?di chem:gene ?g ; chem:DBID ?dr . }} }}
}}"
        ),
        shapes: &[&[4, 2, 2], &[4, 2, 2]],
        groups: &["{cid, gene}", "ALL"],
    });
    out.push(CatalogQuery {
        id: "MG9",
        workload: Workload::Chem,
        selectivity: None,
        sparql: format!(
            "{CHEM_PREFIX}SELECT ?gs ?pPerGene ?pT {{
  {{ SELECT ?gs (COUNT(?gs) AS ?pPerGene)
     {{ ?g chem:geneSymbol ?gs .
        ?pmid chem:gene ?g ; chem:side_effect ?se . }} GROUP BY ?gs }}
  {{ SELECT (COUNT(?gs1) AS ?pT)
     {{ ?g1 chem:geneSymbol ?gs1 .
        ?pmid1 chem:gene ?g1 ; chem:side_effect ?se1 . }} }}
}}"
        ),
        shapes: &[&[1, 2], &[1, 2]],
        groups: &["{gene}", "ALL"],
    });
    out.push(CatalogQuery {
        id: "MG10",
        workload: Workload::Chem,
        selectivity: None,
        sparql: format!(
            "{CHEM_PREFIX}SELECT ?d ?gs ?pPerDG ?pPerG {{
  {{ SELECT ?d ?gs (COUNT(?pmid) AS ?pPerDG)
     {{ ?pmid chem:gene ?g ; chem:side_effect ?se ; chem:disease ?d .
        ?g chem:geneSymbol ?gs . }} GROUP BY ?d ?gs }}
  {{ SELECT ?gs (COUNT(?pmid1) AS ?pPerG)
     {{ ?pmid1 chem:gene ?g1 ; chem:side_effect ?se1 .
        ?g1 chem:geneSymbol ?gs . }} GROUP BY ?gs }}
}}"
        ),
        shapes: &[&[3, 1], &[2, 1]],
        groups: &["{disease, gene}", "{gene}"],
    });

    // --- PubMed multi-groupings (Table 4) ---
    out.push(CatalogQuery {
        id: "MG11",
        workload: Workload::Pubmed,
        selectivity: None,
        sparql: format!(
            "{PM_PREFIX}SELECT ?c ?cntC ?cntT {{
  {{ SELECT ?c (COUNT(?g) AS ?cntC)
     {{ ?pub pm:journal ?j ; pm:grant ?g .
        ?g pm:grant_agency ?ga ; pm:grant_country ?c . }} GROUP BY ?c }}
  {{ SELECT (COUNT(?g1) AS ?cntT)
     {{ ?pub1 pm:journal ?j1 ; pm:grant ?g1 .
        ?g1 pm:grant_agency ?ga1 . }} }}
}}"
        ),
        shapes: &[&[2, 2], &[2, 1]],
        groups: &["{country}", "ALL"],
    });
    out.push(CatalogQuery {
        id: "MG12",
        workload: Workload::Pubmed,
        selectivity: None,
        sparql: format!(
            "{PM_PREFIX}SELECT ?c ?pt ?cntCP ?cntC {{
  {{ SELECT ?c ?pt (COUNT(?g) AS ?cntCP)
     {{ ?pub pm:pub_type ?pt ; pm:grant ?g .
        ?g pm:grant_agency ?ga ; pm:grant_country ?c . }} GROUP BY ?c ?pt }}
  {{ SELECT ?c (COUNT(?g1) AS ?cntC)
     {{ ?pub1 pm:pub_type ?pt1 ; pm:grant ?g1 .
        ?g1 pm:grant_country ?c . }} GROUP BY ?c }}
}}"
        ),
        shapes: &[&[2, 2], &[2, 1]],
        groups: &["{country, pubType}", "{country}"],
    });
    out.push(CatalogQuery {
        id: "MG13",
        workload: Workload::Pubmed,
        selectivity: None,
        sparql: format!(
            "{PM_PREFIX}SELECT ?a ?pty ?perPT ?perAPT {{
  {{ SELECT ?a ?pty (COUNT(?m) AS ?perAPT)
     {{ ?p pm:pub_type ?pty ; pm:mesh_heading ?m ; pm:author ?a .
        ?a pm:last_name ?ln . }} GROUP BY ?a ?pty }}
  {{ SELECT ?pty (COUNT(?m1) AS ?perPT)
     {{ ?p1 pm:pub_type ?pty ; pm:mesh_heading ?m1 ; pm:author ?a1 .
        ?a1 pm:last_name ?ln1 . }} GROUP BY ?pty }}
}}"
        ),
        shapes: &[&[3, 1], &[3, 1]],
        groups: &["{author, pubType}", "{pubType}"],
    });
    out.push(CatalogQuery {
        id: "MG14",
        workload: Workload::Pubmed,
        selectivity: None,
        sparql: format!(
            "{PM_PREFIX}SELECT ?a ?pty ?perPT ?perAPT {{
  {{ SELECT ?a ?pty (COUNT(?ch) AS ?perAPT)
     {{ ?p pm:pub_type ?pty ; pm:chemical ?ch ; pm:author ?a .
        ?a pm:last_name ?ln . }} GROUP BY ?a ?pty }}
  {{ SELECT ?pty (COUNT(?ch1) AS ?perPT)
     {{ ?p1 pm:pub_type ?pty ; pm:chemical ?ch1 ; pm:author ?a1 .
        ?a1 pm:last_name ?ln1 . }} GROUP BY ?pty }}
}}"
        ),
        shapes: &[&[3, 1], &[3, 1]],
        groups: &["{author, pubType}", "{pubType}"],
    });
    for (id, pub_type, sel) in [
        ("MG15", "Journal Article", "lo"),
        ("MG16", "News", "hi"),
    ] {
        out.push(CatalogQuery {
            id,
            workload: Workload::Pubmed,
            selectivity: Some(sel),
            sparql: format!(
                "{PM_PREFIX}SELECT ?ln ?perA ?allA {{
  {{ SELECT ?ln (COUNT(?ch) AS ?perA)
     {{ ?pub pm:pub_type \"{pub_type}\" ; pm:chemical ?ch ; pm:author ?a .
        ?a pm:last_name ?ln . }} GROUP BY ?ln }}
  {{ SELECT (COUNT(?ch1) AS ?allA)
     {{ ?pub1 pm:pub_type \"{pub_type}\" ; pm:chemical ?ch1 ; pm:author ?a1 .
        ?a1 pm:last_name ?ln1 . }} }}
}}"
            ),
            shapes: &[&[3, 1], &[3, 1]],
            groups: &["{authorlastname}", "ALL"],
        });
    }
    out.push(CatalogQuery {
        id: "MG17",
        workload: Workload::Pubmed,
        selectivity: None,
        sparql: format!(
            "{PM_PREFIX}SELECT ?c ?cntC ?cntT {{
  {{ SELECT ?c (COUNT(?g) AS ?cntC)
     {{ ?pub pm:journal ?j ; pm:author ?a ; pm:grant ?g .
        ?g pm:grant_agency ?ga ; pm:grant_country ?c . }} GROUP BY ?c }}
  {{ SELECT (COUNT(?g1) AS ?cntT)
     {{ ?pub1 pm:journal ?j1 ; pm:author ?a1 ; pm:grant ?g1 .
        ?g1 pm:grant_agency ?ga1 . }} }}
}}"
        ),
        shapes: &[&[3, 2], &[3, 1]],
        groups: &["{country}", "ALL"],
    });
    out.push(CatalogQuery {
        id: "MG18",
        workload: Workload::Pubmed,
        selectivity: None,
        sparql: format!(
            "{PM_PREFIX}SELECT ?c ?a ?perC ?perAC {{
  {{ SELECT ?c ?a (COUNT(?g) AS ?perAC)
     {{ ?p pm:pub_type \"Journal Article\" ; pm:author ?a ; pm:grant ?g .
        ?g pm:grant_agency ?ga ; pm:grant_country ?c . }} GROUP BY ?c ?a }}
  {{ SELECT ?c (COUNT(?g1) AS ?perC)
     {{ ?pub1 pm:pub_type \"Journal Article\" ; pm:grant ?g1 .
        ?g1 pm:grant_agency ?ga1 ; pm:grant_country ?c . }} GROUP BY ?c }}
}}"
        ),
        shapes: &[&[3, 2], &[2, 2]],
        groups: &["{author, country}", "{country}"],
    });
    out
}

/// Look up a catalog query by id. Panics on unknown ids (programmer error
/// in benchmarks/examples).
pub fn query(id: &str) -> CatalogQuery {
    catalog()
        .into_iter()
        .find(|q| q.id == id)
        .unwrap_or_else(|| panic!("unknown catalog query '{id}'"))
}

/// All multi-grouping query ids.
pub fn mg_ids() -> Vec<&'static str> {
    catalog()
        .into_iter()
        .filter(|q| q.id.starts_with("MG"))
        .map(|q| q.id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapida_sparql::parse_query;

    #[test]
    fn all_queries_parse() {
        for q in catalog() {
            parse_query(&q.sparql)
                .unwrap_or_else(|e| panic!("{} does not parse: {e}\n{}", q.id, q.sparql));
        }
    }

    #[test]
    fn catalog_covers_the_paper() {
        let ids: Vec<&str> = catalog().iter().map(|q| q.id).collect();
        for id in [
            "G1", "G2", "G3", "G4", "G5", "G6", "G7", "G8", "G9", "MG1", "MG2", "MG3", "MG4",
            "MG6", "MG7", "MG8", "MG9", "MG10", "MG11", "MG12", "MG13", "MG14", "MG15", "MG16",
            "MG17", "MG18",
        ] {
            assert!(ids.contains(&id), "{id} missing from catalog");
        }
    }

    #[test]
    fn lookup_by_id() {
        assert_eq!(query("MG3").shapes, &[&[3, 3, 1][..], &[2, 3, 1][..]]);
        assert_eq!(query("MG16").selectivity, Some("hi"));
    }

    #[test]
    #[should_panic(expected = "unknown catalog query")]
    fn unknown_id_panics() {
        let _ = query("MG99");
    }
}
