//! BSBM-like synthetic data generator (Berlin SPARQL Benchmark, Business
//! Intelligence use case vocabulary subset): products with types, labels and
//! multi-valued features; offers with prices and vendors; vendors with
//! countries.
//!
//! Selectivity mirrors the paper's setup: `ProductType1` is low-selectivity
//! (many products), `ProductType9` high-selectivity (few products).

use rapida_testkit::rng::StdRng;
use rapida_rdf::{vocab, Graph, Term};

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct BsbmConfig {
    /// Number of products.
    pub products: usize,
    /// Number of vendors.
    pub vendors: usize,
    /// Number of distinct product features.
    pub features: usize,
    /// Number of countries.
    pub countries: usize,
    /// Maximum offers per product (uniform 0..=max).
    pub max_offers_per_product: usize,
    /// RNG seed (generation is fully deterministic).
    pub seed: u64,
}

impl Default for BsbmConfig {
    fn default() -> Self {
        BsbmConfig {
            products: 2000,
            vendors: 50,
            features: 40,
            countries: 10,
            max_offers_per_product: 4,
            seed: 42,
        }
    }
}

impl BsbmConfig {
    /// The scaled-down stand-in for BSBM-500K.
    pub fn small() -> Self {
        BsbmConfig::default()
    }

    /// The scaled-down stand-in for BSBM-2M (4× `small`, like 2M : 500K).
    pub fn large() -> Self {
        BsbmConfig {
            products: 8000,
            vendors: 120,
            features: 80,
            countries: 10,
            max_offers_per_product: 4,
            seed: 43,
        }
    }

    /// A tiny configuration for unit tests.
    pub fn tiny() -> Self {
        BsbmConfig {
            products: 400,
            vendors: 8,
            features: 10,
            countries: 4,
            max_offers_per_product: 3,
            seed: 7,
        }
    }
}

fn ns(local: &str) -> Term {
    Term::iri(format!("{}{}", vocab::BSBM_NS, local))
}

/// Generate a BSBM-like graph.
pub fn generate(cfg: &BsbmConfig) -> Graph {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut g = Graph::new();

    let rdf_type = Term::iri(vocab::RDF_TYPE);
    let label = Term::iri(vocab::RDFS_LABEL);
    let p_feature = ns("productFeature");
    let p_product = ns("product");
    let p_price = ns("price");
    let p_vendor = ns("vendor");
    let p_country = ns("country");
    let p_valid_from = ns("validFrom");
    let p_valid_to = ns("validTo");

    // Type distribution: ProductType1 covers ~35% of products, decaying to
    // ProductType9 at ~2% (low → high selectivity).
    let type_weights: [f64; 9] = [35.0, 20.0, 12.0, 9.0, 7.0, 6.0, 5.0, 4.0, 2.0];
    let total_weight: f64 = type_weights.iter().sum();

    let countries: Vec<Term> = (0..cfg.countries)
        .map(|c| ns(&format!("Country{c}")))
        .collect();
    for v in 0..cfg.vendors {
        let vendor = ns(&format!("Vendor{v}"));
        g.insert_terms(&vendor, &p_country, &countries[rng.gen_range(0..countries.len())]);
        g.insert_terms(&vendor, &label, &Term::literal(format!("vendor {v}")));
    }

    let mut offer_id = 0usize;
    for p in 0..cfg.products {
        let product = ns(&format!("Product{p}"));
        // Pick the type by weight.
        let mut roll = rng.gen_range(0.0..total_weight);
        let mut ty = 1usize;
        for (i, w) in type_weights.iter().enumerate() {
            if roll < *w {
                ty = i + 1;
                break;
            }
            roll -= w;
        }
        g.insert_terms(&product, &rdf_type, &ns(&format!("ProductType{ty}")));
        g.insert_terms(&product, &label, &Term::literal(format!("product nr {p}")));
        // Multi-valued features; ~20% of products have none (drives the
        // with-feature vs ALL contrast of MG1/AQ1).
        if rng.gen_bool(0.8) {
            let n_feats = rng.gen_range(1..=4usize);
            for _ in 0..n_feats {
                let f = rng.gen_range(0..cfg.features);
                g.insert_terms(&product, &p_feature, &ns(&format!("Feature{f}")));
            }
        }
        // Offers.
        let n_offers = rng.gen_range(0..=cfg.max_offers_per_product);
        for _ in 0..n_offers {
            let offer = ns(&format!("Offer{offer_id}"));
            offer_id += 1;
            g.insert_terms(&offer, &p_product, &product);
            let price = (rng.gen_range(500..500_000) as f64) / 100.0;
            g.insert_terms(&offer, &p_price, &Term::decimal(price));
            let v = rng.gen_range(0..cfg.vendors);
            g.insert_terms(&offer, &p_vendor, &ns(&format!("Vendor{v}")));
            if rng.gen_bool(0.7) {
                g.insert_terms(
                    &offer,
                    &p_valid_from,
                    &Term::literal(format!("2015-{:02}-01", rng.gen_range(1..=12))),
                );
            }
            if rng.gen_bool(0.7) {
                g.insert_terms(
                    &offer,
                    &p_valid_to,
                    &Term::literal(format!("2016-{:02}-28", rng.gen_range(1..=12))),
                );
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = generate(&BsbmConfig::tiny());
        let b = generate(&BsbmConfig::tiny());
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn has_expected_shape() {
        let g = generate(&BsbmConfig::tiny());
        let stats = g.stats();
        // Type partitions exist and ProductType1 dominates ProductType9.
        let t1 = g.dict.lookup(&ns("ProductType1"));
        let t9 = g.dict.lookup(&ns("ProductType9"));
        let count = |t: Option<rapida_rdf::TermId>| {
            t.and_then(|id| stats.type_objects.get(&id).copied()).unwrap_or(0)
        };
        assert!(count(t1) > count(t9), "PT1 must be low selectivity");
        assert!(stats.triples > 500);
    }

    #[test]
    fn larger_config_scales() {
        let small = generate(&BsbmConfig::tiny());
        let big = generate(&BsbmConfig {
            products: 1600,
            ..BsbmConfig::tiny()
        });
        assert!(big.len() > 3 * small.len());
    }
}
