//! The paper's Appendix A queries in (near-)verbatim text form — including
//! the idiosyncratic `(COUNT(?x) ?alias)` no-`AS` aggregate style and the
//! `;`-chained predicate lists exactly as printed.

use rapida_sparql::ast::ProjectionItem;
use rapida_sparql::parse_query;

const PFX: &str = "PREFIX : <http://paper.example/>\n";

/// Appendix MG1 with its mixed aggregate syntax: `(COUNT(?pr2) ?cntF)`
/// (no AS) alongside `(COUNT(?pr) As ?cntT)` (mixed-case As).
#[test]
fn mg1_verbatim_mixed_aggregate_syntax() {
    let q = parse_query(&format!(
        "{PFX}SELECT ?f ?sumF ?cntF ?sumT ?cntT {{
 {{ SELECT ?f (COUNT(?pr2) ?cntF) (SUM(?pr2) ?sumF)
 {{?p2 :type :ProductType1; :label ?l2; :productFeature ?f.
  ?off2 :product ?p2; :price ?pr2 .
 }} GROUP BY ?f
}}
 {{ SELECT (COUNT(?pr) As ?cntT) (SUM(?pr) As ?sumT)
 {{?p1 :type :ProductType1; :label ?l1 .
  ?off1 :product ?p1; :price ?pr .
 }} }} }}"
    ))
    .expect("verbatim MG1 parses");
    let subs = q.select.pattern.subselects();
    assert_eq!(subs.len(), 2);
    assert_eq!(subs[0].projection.len(), 3);
    assert!(matches!(
        subs[0].projection[1],
        ProjectionItem::Aggregate { .. }
    ));
}

/// Appendix G5 (with the paper's missing close-paren typo repaired).
#[test]
fn g5_verbatim() {
    let q = parse_query(&format!(
        "{PFX}SELECT ?cid (COUNT(?cid) as ?active_assays) {{
 ?b :CID ?cid; :outcome ?a; :Score ?s1; :gi ?gi .
 ?u :gi ?gi; :geneSymbol ?g .
 ?di :gene ?g; :DBID ?dr .
 ?dr :Generic_Name \"Dexamethasone\" .
}} GROUP BY ?cid"
    ))
    .expect("verbatim G5 parses");
    assert_eq!(q.select.pattern.triples().len(), 9);
    assert_eq!(q.select.group_by.len(), 1);
}

/// Appendix G6 with the FILTER regex placed mid-pattern.
#[test]
fn g6_verbatim_with_regex() {
    let q = parse_query(&format!(
        "{PFX}SELECT ?cid (COUNT(?cid) as ?active_assays) {{
 ?b :CID ?cid; :outcome ?a; :Score ?s1; :gi ?gi .
 ?u :gi ?gi .
 ?pathway :protein ?u; :Pathway_name ?pname .
 FILTER regex(?pname, \"MAPK signaling pathway\", \"i\")
}} GROUP BY ?cid"
    ))
    .expect("verbatim G6 parses");
    assert_eq!(q.select.pattern.filters().len(), 1);
}

/// Appendix MG9: two structurally identical blocks, one grouped, one ALL.
#[test]
fn mg9_verbatim() {
    let q = parse_query(&format!(
        "{PFX}SELECT ?gs ?pPerGene ?pT {{
 {{ SELECT ?gs (COUNT(?gs) as ?pPerGene)
 {{?g :geneSymbol ?gs .
  ?pmid :gene ?g; :side_effect ?se .
 }} GROUP BY ?gs
}}
 {{ SELECT (COUNT(?gs1) as ?pT)
 {{?g1 :geneSymbol ?gs1 .
  ?pmid1 :gene ?g1; :side_effect ?se1 .
 }} }} }}"
    ))
    .expect("verbatim MG9 parses");
    let subs = q.select.pattern.subselects();
    assert!(subs[1].group_by.is_empty(), "second block is GROUP BY ALL");
}

/// Appendix MG16 with a quoted constant object on `pub_type`.
#[test]
fn mg16_verbatim_constant_object() {
    let q = parse_query(&format!(
        "{PFX}SELECT ?ln ?perA ?allA {{
 {{ SELECT ?ln (count(?ch) as ?perA)
 {{?pub :pub_type \"News\"; :chemical ?ch; :author ?a .
  ?a :last_name ?ln .
 }} GROUP BY ?ln
}}
 {{ SELECT (count(?ch1) as ?allA)
 {{?pub1 :pub_type \"News\"; :chemical ?ch1; :author ?a1 .
  ?a1 :last_name ?ln1 .
 }} }} }}"
    ))
    .expect("verbatim MG16 parses (lowercase count)");
    let tps = q.select.pattern.subselects()[0].pattern.triples();
    assert!(tps
        .iter()
        .any(|tp| tp.o.as_term().map(|t| t.lexical()) == Some("News")));
}

/// Fig. 1 AQ1 as printed, including the nested SELECT layout.
#[test]
fn aq1_fig1_shape() {
    let q = parse_query(&format!(
        "{PFX}SELECT ?f ?c ?sumF ?cntF ?sumT ?cntT {{
  {{ SELECT ?f ?c (COUNT(?pr2) ?cntF) (SUM(?pr2) ?sumF)
     {{ ?p2 :type :ProductType18; :label ?l2; :productFeature ?f .
        ?off2 :product ?p2; :price ?pr2; :vendor ?v2 .
        ?v2 :country ?c . }} GROUP BY ?f ?c }}
  {{ SELECT ?c (COUNT(?pr) As ?cntT) (SUM(?pr) As ?sumT)
     {{ ?p1 :type :ProductType18; :label ?l1 .
        ?off1 :product ?p1; :price ?pr; :vendor ?v1 .
        ?v1 :country ?c . }} GROUP BY ?c }}
}}"
    ))
    .expect("AQ1 parses");
    let subs = q.select.pattern.subselects();
    assert_eq!(subs[0].group_by.len(), 2);
    assert_eq!(subs[1].group_by.len(), 1);
}
