//! Reference-evaluator edge cases beyond the unit suite: nested OPTIONALs,
//! filters inside optional groups, cross-joined subselects and degenerate
//! graphs.

use rapida_rdf::{Graph, Term};
use rapida_sparql::{evaluate, parse_query, Cell, Var};

fn iri(s: &str) -> Term {
    Term::iri(format!("http://x/{s}"))
}

fn g() -> Graph {
    let mut g = Graph::new();
    g.insert_terms(&iri("a"), &iri("p"), &Term::integer(1));
    g.insert_terms(&iri("b"), &iri("p"), &Term::integer(2));
    g.insert_terms(&iri("b"), &iri("q"), &Term::integer(20));
    g.insert_terms(&iri("c"), &iri("p"), &Term::integer(3));
    g.insert_terms(&iri("c"), &iri("q"), &Term::integer(30));
    g.insert_terms(&iri("c"), &iri("r"), &Term::integer(300));
    g
}

#[test]
fn optional_with_inner_filter_keeps_outer_row() {
    // The filter applies inside the OPTIONAL group: non-matching optionals
    // degrade to unbound instead of dropping the outer row.
    let q = parse_query(
        "PREFIX ex: <http://x/>
         SELECT ?s ?v { ?s ex:p ?o . OPTIONAL { ?s ex:q ?v . FILTER(?v > 25) } }",
    )
    .unwrap();
    let rel = evaluate(&q, &g());
    assert_eq!(rel.len(), 3);
    let vcol = rel.col(&Var::new("v")).unwrap();
    let bound: Vec<f64> = rel
        .rows
        .iter()
        .filter_map(|r| r[vcol].as_num(&g().dict))
        .collect();
    assert_eq!(bound, vec![30.0], "only c's q=30 passes the inner filter");
}

#[test]
fn nested_optionals() {
    let q = parse_query(
        "PREFIX ex: <http://x/>
         SELECT ?s ?v ?w {
           ?s ex:p ?o .
           OPTIONAL { ?s ex:q ?v . OPTIONAL { ?s ex:r ?w . } }
         }",
    )
    .unwrap();
    let rel = evaluate(&q, &g());
    assert_eq!(rel.len(), 3);
    let (vc, wc) = (
        rel.col(&Var::new("v")).unwrap(),
        rel.col(&Var::new("w")).unwrap(),
    );
    // a: neither; b: v only; c: both.
    let mut shapes: Vec<(bool, bool)> = rel
        .rows
        .iter()
        .map(|r| (!matches!(r[vc], Cell::Null), !matches!(r[wc], Cell::Null)))
        .collect();
    shapes.sort();
    assert_eq!(shapes, vec![(false, false), (true, false), (true, true)]);
}

#[test]
fn cross_join_of_two_all_subselects() {
    let q = parse_query(
        "PREFIX ex: <http://x/>
         SELECT ?n1 ?n2 {
           { SELECT (COUNT(?a) AS ?n1) { ?s ex:p ?a . } }
           { SELECT (SUM(?b) AS ?n2) { ?t ex:q ?b . } }
         }",
    )
    .unwrap();
    let rel = evaluate(&q, &g());
    assert_eq!(rel.len(), 1);
    assert_eq!(rel.rows[0][0], Cell::Num(3.0));
    assert_eq!(rel.rows[0][1], Cell::Num(50.0));
}

#[test]
fn empty_graph_aggregates() {
    let empty = Graph::new();
    let q = parse_query(
        "SELECT (COUNT(?o) AS ?n) (SUM(?o) AS ?s) { ?x <http://x/p> ?o . }",
    )
    .unwrap();
    let rel = evaluate(&q, &empty);
    assert_eq!(rel.len(), 1);
    assert_eq!(rel.rows[0][0], Cell::Num(0.0));
    assert_eq!(rel.rows[0][1], Cell::Null, "SUM over nothing is unbound");
}

#[test]
fn filter_on_unbound_variable_is_false() {
    let q = parse_query(
        "PREFIX ex: <http://x/>
         SELECT ?s { ?s ex:p ?o . OPTIONAL { ?s ex:q ?v . } FILTER(?v > 0) }",
    )
    .unwrap();
    let rel = evaluate(&q, &g());
    // Only b and c have q at all.
    assert_eq!(rel.len(), 2);
}

#[test]
fn select_star_projects_all_vars() {
    let q = parse_query("PREFIX ex: <http://x/> SELECT * { ?s ex:q ?v . }").unwrap();
    let rel = evaluate(&q, &g());
    assert_eq!(rel.vars.len(), 2);
    assert_eq!(rel.len(), 2);
}

#[test]
fn term_equality_filter_on_iris() {
    let q = parse_query(
        "PREFIX ex: <http://x/>
         SELECT ?o { ?s ex:p ?o . FILTER(?s = ex:b) }",
    )
    .unwrap();
    let rel = evaluate(&q, &g());
    assert_eq!(rel.len(), 1);
}

#[test]
fn not_filter() {
    let q = parse_query(
        "PREFIX ex: <http://x/>
         SELECT ?o { ?s ex:p ?o . FILTER(!(?o > 1)) }",
    )
    .unwrap();
    let rel = evaluate(&q, &g());
    assert_eq!(rel.len(), 1, "only p=1 fails ?o > 1");
}
