//! Negative tests for the SPARQL parser: every malformed-input error path
//! around SELECT projections, aggregates and GROUP BY must fail cleanly
//! (no panic) with its specific message — these paths previously had no
//! coverage at all.

use rapida_sparql::parse_query;

/// Assert `sparql` fails to parse and the error message mentions `expect`.
fn assert_parse_error(sparql: &str, expect: &str) {
    match parse_query(sparql) {
        Ok(q) => panic!("parsed malformed query {sparql:?} into {q:?}"),
        Err(e) => {
            let msg = e.to_string();
            assert!(
                msg.contains(expect),
                "query {sparql:?}: error {msg:?} does not mention {expect:?}"
            );
        }
    }
}

#[test]
fn non_select_query_form_is_rejected() {
    assert_parse_error("ASK { ?s ?p ?o . }", "expected keyword 'SELECT'");
}

#[test]
fn select_without_projection_is_rejected() {
    assert_parse_error(
        "SELECT { ?s ?p ?o . }",
        "SELECT requires '*' or at least one projection item",
    );
}

#[test]
fn unknown_aggregate_function_is_rejected() {
    assert_parse_error(
        "SELECT (MEDIAN(?x) AS ?m) { ?s ?p ?x . }",
        "unknown aggregate 'MEDIAN'",
    );
}

#[test]
fn parenthesized_non_aggregate_is_rejected() {
    assert_parse_error(
        "SELECT (?x AS ?y) { ?s ?p ?x . }",
        "expected aggregate function",
    );
}

#[test]
fn aggregate_argument_must_be_variable_or_star() {
    assert_parse_error(
        "SELECT (COUNT(42) AS ?c) { ?s ?p ?x . }",
        "expected variable or * in aggregate",
    );
}

#[test]
fn aggregate_missing_closing_paren_is_rejected() {
    assert_parse_error("SELECT (COUNT(?x AS ?c) { ?s ?p ?x . }", "expected ')'");
}

#[test]
fn aggregate_without_alias_is_rejected() {
    assert_parse_error(
        "SELECT (COUNT(?x)) { ?s ?p ?x . }",
        "expected alias variable after aggregate",
    );
}

#[test]
fn aggregate_alias_must_be_variable() {
    assert_parse_error(
        "SELECT (COUNT(?x) AS count) { ?s ?p ?x . }",
        "expected alias variable after aggregate",
    );
}

#[test]
fn group_without_by_is_rejected() {
    assert_parse_error(
        "SELECT ?s { ?s ?p ?o . } GROUP ?s",
        "expected keyword 'BY'",
    );
}

#[test]
fn group_by_without_variables_is_rejected() {
    assert_parse_error(
        "SELECT ?s { ?s ?p ?o . } GROUP BY",
        "GROUP BY requires at least one variable",
    );
}

#[test]
fn group_by_non_variable_is_rejected() {
    // `GROUP BY 3` binds no variable, so the empty-group-by error fires
    // and the stray literal is never silently swallowed.
    assert_parse_error(
        "SELECT ?s { ?s ?p ?o . } GROUP BY 3",
        "GROUP BY requires at least one variable",
    );
}

#[test]
fn unterminated_pattern_is_rejected() {
    assert_parse_error("SELECT ?s { ?s ?p ?o .", "unterminated group graph pattern");
}

#[test]
fn trailing_tokens_are_rejected() {
    assert_parse_error(
        "SELECT ?s { ?s ?p ?o . } LIMIT",
        "trailing tokens after query",
    );
}

#[test]
fn prefix_without_name_is_rejected() {
    assert_parse_error(
        "PREFIX <http://x/> SELECT ?s { ?s ?p ?o . }",
        "expected prefix name after PREFIX",
    );
}

#[test]
fn well_formed_neighbours_still_parse() {
    // Guard against over-eager rejection: the closest well-formed variants
    // of each malformed query above must parse.
    for q in [
        "SELECT * { ?s ?p ?o . }",
        "SELECT (COUNT(?x) AS ?c) { ?s ?p ?x . }",
        "SELECT (COUNT(*) AS ?c) { ?s ?p ?x . }",
        "SELECT ?s { ?s ?p ?o . } GROUP BY ?s",
        "SELECT (COUNT(?x) ?c) { ?s ?p ?x . }",
        "PREFIX ex: <http://x/> SELECT ?s { ?s ex:p ?o . }",
    ] {
        parse_query(q).unwrap_or_else(|e| panic!("rejected well-formed {q:?}: {e}"));
    }
}
