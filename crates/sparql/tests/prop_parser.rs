//! Property tests for the SPARQL front end: total functions over arbitrary
//! input (no panics), parse determinism, and evaluator laws.

use rapida_testkit::prelude::*;
use rapida_rdf::{Graph, Term};
use rapida_sparql::token::tokenize;
use rapida_sparql::{evaluate, parse_query, Cell, Relation, Var};

proptest! {
    /// The lexer and parser are total: arbitrary input produces Ok or Err,
    /// never a panic.
    #[test]
    fn lexer_and_parser_never_panic(input in "\\PC{0,200}") {
        let _ = tokenize(&input);
        let _ = parse_query(&input);
    }

    /// Parsing is deterministic.
    #[test]
    fn parse_is_deterministic(input in "[ -~]{0,120}") {
        let a = parse_query(&input);
        let b = parse_query(&input);
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}

fn arb_graph() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::vec((0u8..12, 0u8..4, 0u8..10), 0..60)
}

fn build(triples: &[(u8, u8, u8)]) -> Graph {
    let mut g = Graph::new();
    for (s, p, o) in triples {
        g.insert_terms(
            &Term::iri(format!("http://x/s{s}")),
            &Term::iri(format!("http://x/p{p}")),
            &Term::integer(i64::from(*o)),
        );
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// COUNT over a single triple pattern equals the property's cardinality.
    #[test]
    fn count_matches_cardinality(triples in arb_graph(), p in 0u8..4) {
        let g = build(&triples);
        let q = parse_query(&format!(
            "SELECT (COUNT(?o) AS ?n) {{ ?s <http://x/p{p}> ?o . }}"
        )).unwrap();
        let rel = evaluate(&q, &g);
        let expected = triples
            .iter()
            .collect::<std::collections::BTreeSet<_>>()
            .iter()
            .filter(|(_, tp, _)| *tp == p)
            .count();
        prop_assert_eq!(rel.rows[0][0], Cell::Num(expected as f64));
    }

    /// A numeric FILTER never increases the row count, and its complement
    /// partitions the unfiltered rows.
    #[test]
    fn filter_partitions_rows(triples in arb_graph(), threshold in 0u8..10) {
        let g = build(&triples);
        let all = evaluate(
            &parse_query("SELECT ?s ?o { ?s <http://x/p0> ?o . }").unwrap(),
            &g,
        );
        let lo = evaluate(
            &parse_query(&format!(
                "SELECT ?s ?o {{ ?s <http://x/p0> ?o . FILTER(?o < {threshold}) }}"
            )).unwrap(),
            &g,
        );
        let hi = evaluate(
            &parse_query(&format!(
                "SELECT ?s ?o {{ ?s <http://x/p0> ?o . FILTER(?o >= {threshold}) }}"
            )).unwrap(),
            &g,
        );
        prop_assert_eq!(lo.len() + hi.len(), all.len());
    }

    /// SUM grouped by subject totals to the ungrouped SUM.
    #[test]
    fn group_sums_total(triples in arb_graph()) {
        let g = build(&triples);
        let grouped = evaluate(
            &parse_query(
                "SELECT ?s (SUM(?o) AS ?sum) { ?s <http://x/p1> ?o . } GROUP BY ?s"
            ).unwrap(),
            &g,
        );
        let total = evaluate(
            &parse_query("SELECT (SUM(?o) AS ?sum) { ?s <http://x/p1> ?o . }").unwrap(),
            &g,
        );
        let sum_of_groups: f64 = grouped
            .rows
            .iter()
            .filter_map(|r| r[1].as_num(&g.dict))
            .sum();
        let grand = total.rows[0][0].as_num(&g.dict).unwrap_or(0.0);
        prop_assert!((sum_of_groups - grand).abs() < 1e-9);
    }

    /// Canonicalization is invariant under row permutation.
    #[test]
    fn canonicalization_order_invariant(
        rows in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..20),
        seed in any::<u64>(),
    ) {
        let dict = rapida_rdf::Dictionary::new();
        let cells: Vec<Vec<Cell>> = rows
            .iter()
            .map(|(a, b)| vec![Cell::Num(f64::from(*a)), Cell::Num(f64::from(*b))])
            .collect();
        let r1 = Relation {
            vars: vec![Var::new("a"), Var::new("b")],
            rows: cells.clone(),
        };
        // Deterministic pseudo-shuffle.
        let mut shuffled = cells;
        if shuffled.len() > 1 {
            let n = shuffled.len();
            for i in 0..n {
                let j = ((seed as usize).wrapping_mul(31).wrapping_add(i * 17)) % n;
                shuffled.swap(i, j);
            }
        }
        let r2 = Relation {
            vars: vec![Var::new("a"), Var::new("b")],
            rows: shuffled,
        };
        prop_assert_eq!(r1.canonicalized(&dict), r2.canonicalized(&dict));
    }
}
