//! Structural analysis of basic graph patterns: subject-rooted star
//! decomposition, join-variable detection and role analysis.
//!
//! This module implements the Table 1 machinery of the paper — `var(tp)`,
//! `role(?v)`, `prop(tp)`, `props(Stp)` — on which overlap detection
//! (Defs 3.1/3.2, in `rapida-core`) is built.

use crate::ast::{TriplePattern, Var};
use rapida_rdf::{vocab, Term};
use std::collections::BTreeSet;
use std::fmt;

/// The role a variable plays inside a triple pattern (Table 1: `role(?v)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Appears in subject position.
    Subject,
    /// Appears in property position (out of the paper's optimization scope).
    Property,
    /// Appears in object position.
    Object,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Role::Subject => "subject",
            Role::Property => "property",
            Role::Object => "object",
        };
        f.write_str(s)
    }
}

/// The identity of a "property" for equivalence-class purposes.
///
/// Following the paper's treatment of `?s ty PT18` as a single pseudo-property
/// `ty18`, an `rdf:type` pattern with a **constant** object folds the object
/// into the key. All other patterns are identified by their property IRI.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PropKey {
    /// The property IRI.
    pub prop: Term,
    /// For `rdf:type` with constant object: that object.
    pub type_object: Option<Term>,
}

impl PropKey {
    /// Derive the key of a triple pattern. `None` if the property slot is a
    /// variable (unbound-property patterns are out of scope, §3).
    pub fn of(tp: &TriplePattern) -> Option<PropKey> {
        let prop = tp.p.as_term()?.clone();
        let type_object = if prop == Term::iri(vocab::RDF_TYPE) {
            tp.o.as_term().cloned()
        } else {
            None
        };
        Some(PropKey { prop, type_object })
    }

    /// Is this key an `rdf:type`-with-constant pseudo-property?
    pub fn is_type_key(&self) -> bool {
        self.type_object.is_some()
    }
}

impl fmt::Display for PropKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.type_object {
            Some(o) => write!(f, "ty[{o}]"),
            None => write!(f, "{}", self.prop),
        }
    }
}

/// A subject-rooted star subpattern (Table 1: `Stp`).
#[derive(Debug, Clone, PartialEq)]
pub struct StarPattern {
    /// The shared subject variable.
    pub subject: Var,
    /// The triple patterns of this star, in source order.
    pub triples: Vec<TriplePattern>,
}

impl StarPattern {
    /// `props(Stp)` — the property-key set of this star.
    pub fn prop_keys(&self) -> BTreeSet<PropKey> {
        self.triples
            .iter()
            .filter_map(PropKey::of)
            .collect()
    }

    /// The triple pattern carrying a given property key, if any.
    pub fn triple_for(&self, key: &PropKey) -> Option<&TriplePattern> {
        self.triples
            .iter()
            .find(|tp| PropKey::of(tp).as_ref() == Some(key))
    }

    /// The `rdf:type` pattern with constant object, if present — used as the
    /// anchor `jtp` for subject-role joins (cf. Fig. 3 where `jtp_a` is the
    /// `ty` pattern).
    pub fn type_anchor(&self) -> Option<&TriplePattern> {
        self.triples.iter().find(|tp| {
            PropKey::of(tp).is_some_and(|k| k.is_type_key())
        })
    }

    /// All variables appearing in object position, with their property keys.
    pub fn object_vars(&self) -> Vec<(&Var, PropKey)> {
        self.triples
            .iter()
            .filter_map(|tp| {
                let v = tp.o.as_var()?;
                let k = PropKey::of(tp)?;
                Some((v, k))
            })
            .collect()
    }
}

/// One side of a star-join edge: which star, the variable's role there, and
/// the property key of the joining triple pattern (`jtp`).
#[derive(Debug, Clone, PartialEq)]
pub struct JoinSide {
    /// Index of the star in the decomposition.
    pub star: usize,
    /// Role of the join variable on this side.
    pub role: Role,
    /// Property key of the joining triple pattern. For subject-role sides
    /// this is the star's type anchor if present (`None` otherwise).
    pub prop: Option<PropKey>,
}

/// A join edge between two stars via a shared variable (Table 1: `jv`).
#[derive(Debug, Clone, PartialEq)]
pub struct StarJoin {
    /// The join variable.
    pub var: Var,
    /// The side with the smaller star index.
    pub left: JoinSide,
    /// The side with the larger star index.
    pub right: JoinSide,
}

impl StarJoin {
    /// Short description such as "subject-object" for test assertions.
    pub fn kind(&self) -> String {
        format!("{}-{}", self.left.role, self.right.role)
    }
}

/// Role-equivalence of two join sides (Def 3.2 prerequisite).
///
/// Two join variables are role-equivalent if the corresponding joining
/// triple patterns agree on the property component and the variables play
/// the same role. For subject-role sides the property comparison uses the
/// stars' type anchors (the convention of Fig. 3); two subject-role sides
/// with no anchors are considered property-compatible.
pub fn role_equivalent(a: &JoinSide, b: &JoinSide) -> bool {
    if a.role != b.role {
        return false;
    }
    match (&a.prop, &b.prop) {
        (Some(pa), Some(pb)) => pa == pb,
        (None, None) => a.role == Role::Subject,
        _ => a.role == Role::Subject,
    }
}

/// The result of star-decomposing a basic graph pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct StarDecomposition {
    /// The stars, in order of first appearance of their subject.
    pub stars: Vec<StarPattern>,
    /// Join edges between stars.
    pub joins: Vec<StarJoin>,
    /// Whether the join graph over stars is connected.
    pub connected: bool,
}

impl StarDecomposition {
    /// Index of the star rooted at `v`, if any.
    pub fn star_of(&self, v: &Var) -> Option<usize> {
        self.stars.iter().position(|s| &s.subject == v)
    }

    /// All join edges touching star `i`.
    pub fn joins_of(&self, i: usize) -> Vec<&StarJoin> {
        self.joins
            .iter()
            .filter(|j| j.left.star == i || j.right.star == i)
            .collect()
    }
}

/// Errors from structural analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// A triple pattern has a constant (non-variable) subject.
    ConstantSubject(String),
    /// A triple pattern has a variable in the property position.
    UnboundProperty(String),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::ConstantSubject(tp) => {
                write!(f, "constant subject not supported: {tp}")
            }
            AnalysisError::UnboundProperty(tp) => write!(
                f,
                "unbound-property triple patterns are out of scope (paper §3): {tp}"
            ),
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Decompose a basic graph pattern into subject-rooted stars and join edges.
pub fn decompose(triples: &[TriplePattern]) -> Result<StarDecomposition, AnalysisError> {
    let mut stars: Vec<StarPattern> = Vec::new();
    for tp in triples {
        let subj = match tp.s.as_var() {
            Some(v) => v.clone(),
            None => return Err(AnalysisError::ConstantSubject(tp.to_string())),
        };
        if tp.p.is_var() {
            return Err(AnalysisError::UnboundProperty(tp.to_string()));
        }
        match stars.iter_mut().find(|s| s.subject == subj) {
            Some(star) => star.triples.push(tp.clone()),
            None => stars.push(StarPattern {
                subject: subj,
                triples: vec![tp.clone()],
            }),
        }
    }

    // Join detection: for every ordered star pair and shared variable.
    let mut joins = Vec::new();
    for i in 0..stars.len() {
        for j in (i + 1)..stars.len() {
            let shared = shared_vars(&stars[i], &stars[j]);
            for v in shared {
                let left = join_side(&stars[i], i, &v);
                let right = join_side(&stars[j], j, &v);
                joins.push(StarJoin { var: v, left, right });
            }
        }
    }

    // Connectivity over the star-join graph.
    let connected = if stars.is_empty() {
        true
    } else {
        let mut seen = vec![false; stars.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(s) = stack.pop() {
            for jn in &joins {
                let (a, b) = (jn.left.star, jn.right.star);
                for (x, y) in [(a, b), (b, a)] {
                    if x == s && !seen[y] {
                        seen[y] = true;
                        stack.push(y);
                    }
                }
            }
        }
        seen.iter().all(|&x| x)
    };

    Ok(StarDecomposition {
        stars,
        joins,
        connected,
    })
}

fn star_vars(star: &StarPattern) -> BTreeSet<Var> {
    let mut out = BTreeSet::new();
    out.insert(star.subject.clone());
    for tp in &star.triples {
        if let Some(v) = tp.o.as_var() {
            out.insert(v.clone());
        }
    }
    out
}

fn shared_vars(a: &StarPattern, b: &StarPattern) -> Vec<Var> {
    star_vars(a).intersection(&star_vars(b)).cloned().collect()
}

fn join_side(star: &StarPattern, idx: usize, v: &Var) -> JoinSide {
    if &star.subject == v {
        JoinSide {
            star: idx,
            role: Role::Subject,
            prop: star.type_anchor().and_then(PropKey::of),
        }
    } else {
        // The joining tp is the one whose object is v. If several, take the
        // first (multiple joining tps on the same variable behave alike).
        let tp = star
            .triples
            .iter()
            .find(|tp| tp.o.as_var() == Some(v))
            .expect("join variable must appear in the star");
        JoinSide {
            star: idx,
            role: Role::Object,
            prop: PropKey::of(tp),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn bgp(q: &str) -> Vec<TriplePattern> {
        parse_query(q)
            .unwrap()
            .select
            .pattern
            .triples()
            .into_iter()
            .cloned()
            .collect()
    }

    /// AQ2 GP1 from Fig. 3: two stars joined subject-object.
    #[test]
    fn decomposes_aq2_gp1() {
        let tps = bgp(
            "PREFIX ex: <http://x/>
             SELECT ?s1 { ?s1 a ex:PT18 . ?s2 ex:pr ?s1 ; ex:pc ?o1 ; ex:ve ?o2 . }",
        );
        let d = decompose(&tps).unwrap();
        assert_eq!(d.stars.len(), 2);
        assert!(d.connected);
        assert_eq!(d.joins.len(), 1);
        let j = &d.joins[0];
        assert_eq!(j.var, Var::new("s1"));
        assert_eq!(j.kind(), "subject-object");
        // jtp on the subject side is the type anchor.
        assert!(j.left.prop.as_ref().unwrap().is_type_key());
    }

    /// AQ3 from Fig. 3: GP1 joins object-subject, GP2 joins object-object —
    /// the roles must come out differently so Def 3.2 can reject the overlap.
    #[test]
    fn aq3_join_roles_differ() {
        let gp1 = bgp(
            "PREFIX ex: <http://x/>
             SELECT ?s3 { ?s3 ex:pr ?s1 ; ex:pc ?o5 ; ex:ve ?s4 . ?s4 ex:cn ?o6 . }",
        );
        let gp2 = bgp(
            "PREFIX ex: <http://x/>
             SELECT ?s3 { ?s3 ex:pr ?s1 ; ex:pc ?o5 ; ex:ve ?o6 . ?s4 ex:cn ?o6 . }",
        );
        let d1 = decompose(&gp1).unwrap();
        let d2 = decompose(&gp2).unwrap();
        assert_eq!(d1.joins[0].kind(), "object-subject");
        assert_eq!(d2.joins[0].kind(), "object-object");
        // The second side of the joins is not role-equivalent.
        assert!(!role_equivalent(&d1.joins[0].right, &d2.joins[0].right));
        // The first side is (both object role via property ve).
        assert!(role_equivalent(&d1.joins[0].left, &d2.joins[0].left));
    }

    #[test]
    fn prop_key_folds_type_object() {
        let tps = bgp("PREFIX ex: <http://x/> SELECT ?s { ?s a ex:PT18 ; ex:pf ?f . }");
        let d = decompose(&tps).unwrap();
        let keys = d.stars[0].prop_keys();
        assert_eq!(keys.len(), 2);
        assert!(keys.iter().any(|k| k.is_type_key()));
    }

    #[test]
    fn type_with_var_object_is_plain_property() {
        let tps = bgp("SELECT ?s { ?s a ?t . }");
        let d = decompose(&tps).unwrap();
        let keys = d.stars[0].prop_keys();
        assert!(!keys.iter().next().unwrap().is_type_key());
    }

    #[test]
    fn detects_disconnected_pattern() {
        let tps = bgp(
            "PREFIX ex: <http://x/> SELECT ?a { ?a ex:p ?x . ?b ex:q ?y . }",
        );
        let d = decompose(&tps).unwrap();
        assert_eq!(d.stars.len(), 2);
        assert!(!d.connected);
        assert!(d.joins.is_empty());
    }

    #[test]
    fn rejects_unbound_property() {
        let tps = bgp("SELECT ?s { ?s ?p ?o . }");
        assert!(matches!(
            decompose(&tps),
            Err(AnalysisError::UnboundProperty(_))
        ));
    }

    #[test]
    fn three_star_chain() {
        // The AQ1 composite shape: product -> offer -> vendor.
        let tps = bgp(
            "PREFIX ex: <http://x/>
             SELECT ?s1 {
               ?s1 a ex:PT18 ; ex:pf ?f .
               ?s2 ex:pr ?s1 ; ex:pc ?pc ; ex:ve ?v .
               ?v ex:cn ?c .
             }",
        );
        let d = decompose(&tps).unwrap();
        assert_eq!(d.stars.len(), 3);
        assert_eq!(d.joins.len(), 2);
        assert!(d.connected);
        let kinds: Vec<String> = d.joins.iter().map(|j| j.kind()).collect();
        assert!(kinds.contains(&"subject-object".to_string()));
        assert!(kinds.contains(&"object-subject".to_string()));
    }

    #[test]
    fn star_of_and_joins_of() {
        let tps = bgp(
            "PREFIX ex: <http://x/>
             SELECT ?a { ?a ex:p ?b . ?b ex:q ?c . }",
        );
        let d = decompose(&tps).unwrap();
        let ia = d.star_of(&Var::new("a")).unwrap();
        let ib = d.star_of(&Var::new("b")).unwrap();
        assert_eq!(d.joins_of(ia).len(), 1);
        assert_eq!(d.joins_of(ib).len(), 1);
        assert!(d.star_of(&Var::new("zzz")).is_none());
    }
}
