//! A direct, in-memory reference evaluator for the SPARQL subset.
//!
//! This is the correctness oracle of the workspace: it evaluates the AST by
//! straightforward nested iteration with no optimization at all, and every
//! scale-out engine in `rapida-core` must agree with it on result multisets.

use crate::ast::*;
use crate::relation::{Cell, Relation};
use rapida_rdf::{FxHashMap, Dictionary, Graph, TermId, Triple};

/// Evaluate a parsed query against a graph.
pub fn evaluate(query: &Query, graph: &Graph) -> Relation {
    let ev = Evaluator::new(graph);
    ev.eval_select(&query.select)
}

/// Evaluate a select (sub)query against a graph.
pub fn evaluate_select(select: &SelectQuery, graph: &Graph) -> Relation {
    Evaluator::new(graph).eval_select(select)
}

type Bindings = FxHashMap<Var, TermId>;

/// Convert a binding id into an output cell, recovering tagged numerics
/// (aggregate values that were joined back into bindings).
fn cell_of(id: TermId) -> Cell {
    match untag_num(id) {
        Some(n) => Cell::Num(n),
        None => Cell::Term(id),
    }
}

struct Evaluator<'g> {
    graph: &'g Graph,
    dict: Dictionary,
    by_prop: FxHashMap<TermId, Vec<Triple>>,
}

impl<'g> Evaluator<'g> {
    fn new(graph: &'g Graph) -> Self {
        let mut by_prop: FxHashMap<TermId, Vec<Triple>> = FxHashMap::default();
        for t in &graph.triples {
            by_prop.entry(t.p).or_default().push(*t);
        }
        Evaluator {
            graph,
            dict: graph.dict.clone(),
            by_prop,
        }
    }

    fn eval_select(&self, q: &SelectQuery) -> Relation {
        let rows = self.eval_group(&q.pattern);
        let rel = self.apply_grouping_and_projection(q, rows);
        if q.distinct {
            distinct(rel)
        } else {
            rel
        }
    }

    /// Evaluate a group graph pattern to a list of bindings.
    fn eval_group(&self, group: &GroupGraphPattern) -> Vec<Bindings> {
        let mut rows: Vec<Bindings> = vec![Bindings::default()];
        let mut filters: Vec<&FilterExpr> = Vec::new();
        for el in &group.elements {
            match el {
                PatternElement::Triple(tp) => {
                    rows = self.extend_by_pattern(rows, tp);
                }
                PatternElement::Filter(f) => filters.push(f),
                PatternElement::SubSelect(sub) => {
                    let sub_rel = self.eval_select(sub);
                    rows = join_with_relation(rows, &sub_rel);
                }
                PatternElement::Optional(inner) => {
                    rows = self.left_join_group(rows, inner);
                }
            }
        }
        // SPARQL applies FILTERs to the whole group.
        rows.retain(|b| filters.iter().all(|f| self.eval_filter(f, b)));
        rows
    }

    fn extend_by_pattern(&self, rows: Vec<Bindings>, tp: &TriplePattern) -> Vec<Bindings> {
        let mut out = Vec::new();
        for b in rows {
            let candidates: &[Triple] = match &tp.p {
                PatternTerm::Term(t) => match self.dict.lookup(t) {
                    Some(pid) => self.by_prop.get(&pid).map(|v| v.as_slice()).unwrap_or(&[]),
                    None => &[],
                },
                PatternTerm::Var(pv) => match b.get(pv) {
                    Some(pid) => self.by_prop.get(pid).map(|v| v.as_slice()).unwrap_or(&[]),
                    None => &self.graph.triples,
                },
            };
            for t in candidates {
                if let Some(nb) = self.try_match(&b, tp, t) {
                    out.push(nb);
                }
            }
        }
        out
    }

    fn try_match(&self, b: &Bindings, tp: &TriplePattern, t: &Triple) -> Option<Bindings> {
        let mut nb = b.clone();
        for (slot, id) in [(&tp.s, t.s), (&tp.p, t.p), (&tp.o, t.o)] {
            match slot {
                PatternTerm::Term(term) => {
                    if self.dict.lookup(term) != Some(id) {
                        return None;
                    }
                }
                PatternTerm::Var(v) => match nb.get(v) {
                    Some(&bound) if bound != id => return None,
                    Some(_) => {}
                    None => {
                        nb.insert(v.clone(), id);
                    }
                },
            }
        }
        Some(nb)
    }

    fn left_join_group(&self, rows: Vec<Bindings>, inner: &GroupGraphPattern) -> Vec<Bindings> {
        let mut out = Vec::new();
        for b in rows {
            // Evaluate the optional part with the current bindings in scope.
            let seeded = self.eval_group_seeded(inner, &b);
            if seeded.is_empty() {
                out.push(b);
            } else {
                out.extend(seeded);
            }
        }
        out
    }

    fn eval_group_seeded(&self, group: &GroupGraphPattern, seed: &Bindings) -> Vec<Bindings> {
        let mut rows = vec![seed.clone()];
        let mut filters: Vec<&FilterExpr> = Vec::new();
        for el in &group.elements {
            match el {
                PatternElement::Triple(tp) => rows = self.extend_by_pattern(rows, tp),
                PatternElement::Filter(f) => filters.push(f),
                PatternElement::SubSelect(sub) => {
                    let sub_rel = self.eval_select(sub);
                    rows = join_with_relation(rows, &sub_rel);
                }
                PatternElement::Optional(inner) => rows = self.left_join_group(rows, inner),
            }
        }
        rows.retain(|b| filters.iter().all(|f| self.eval_filter(f, b)));
        rows
    }

    fn eval_filter(&self, f: &FilterExpr, b: &Bindings) -> bool {
        match f {
            FilterExpr::Compare { left, op, right } => {
                self.eval_compare(left, *op, right, b)
            }
            FilterExpr::Regex {
                var,
                pattern,
                case_insensitive,
            } => match b.get(var) {
                None => false,
                Some(&id) => {
                    let lex = match untag_num(id) {
                        Some(n) => format!("{n}"),
                        None => self.dict.lexical(id),
                    };
                    if *case_insensitive {
                        lex.to_lowercase().contains(&pattern.to_lowercase())
                    } else {
                        lex.contains(pattern.as_str())
                    }
                }
            },
            FilterExpr::And(a, c) => self.eval_filter(a, b) && self.eval_filter(c, b),
            FilterExpr::Or(a, c) => self.eval_filter(a, b) || self.eval_filter(c, b),
            FilterExpr::Not(a) => !self.eval_filter(a, b),
        }
    }

    fn eval_compare(&self, left: &ValueExpr, op: CmpOp, right: &ValueExpr, b: &Bindings) -> bool {
        // Numeric comparison when both sides are numeric; otherwise term
        // identity for Eq/Ne, false for ordering operators.
        let lnum = self.value_num(left, b);
        let rnum = self.value_num(right, b);
        if let (Some(l), Some(r)) = (lnum, rnum) {
            return match op {
                CmpOp::Eq => l == r,
                CmpOp::Ne => l != r,
                CmpOp::Lt => l < r,
                CmpOp::Le => l <= r,
                CmpOp::Gt => l > r,
                CmpOp::Ge => l >= r,
            };
        }
        let lid = self.value_id(left, b);
        let rid = self.value_id(right, b);
        match (lid, rid, op) {
            (Some(l), Some(r), CmpOp::Eq) => l == r,
            (Some(l), Some(r), CmpOp::Ne) => l != r,
            _ => false,
        }
    }

    fn value_num(&self, e: &ValueExpr, b: &Bindings) -> Option<f64> {
        match e {
            ValueExpr::Number(n) => Some(*n),
            ValueExpr::Var(v) => b
                .get(v)
                .and_then(|id| untag_num(*id).or_else(|| self.dict.numeric_value(*id))),
            ValueExpr::Term(t) => t.numeric_value(),
        }
    }

    fn value_id(&self, e: &ValueExpr, b: &Bindings) -> Option<TermId> {
        match e {
            ValueExpr::Number(_) => None,
            ValueExpr::Var(v) => b.get(v).copied(),
            ValueExpr::Term(t) => self.dict.lookup(t),
        }
    }

    fn apply_grouping_and_projection(&self, q: &SelectQuery, rows: Vec<Bindings>) -> Relation {
        if !q.has_aggregates() {
            // Plain projection.
            let vars: Vec<Var> = if q.projection.is_empty() {
                // SELECT * — all variables seen in any row, sorted for
                // determinism.
                let mut all: Vec<Var> = rows
                    .iter()
                    .flat_map(|b| b.keys().cloned())
                    .collect::<std::collections::BTreeSet<_>>()
                    .into_iter()
                    .collect();
                all.sort();
                all
            } else {
                q.output_vars()
            };
            let out_rows = rows
                .iter()
                .map(|b| {
                    vars.iter()
                        .map(|v| b.get(v).map(|&id| cell_of(id)).unwrap_or(Cell::Null))
                        .collect()
                })
                .collect();
            return Relation {
                vars,
                rows: out_rows,
            };
        }

        // Group rows by the GROUP BY key.
        let mut groups: FxHashMap<Vec<Option<TermId>>, Vec<&Bindings>> = FxHashMap::default();
        for b in &rows {
            let key: Vec<Option<TermId>> =
                q.group_by.iter().map(|v| b.get(v).copied()).collect();
            groups.entry(key).or_default().push(b);
        }
        // "GROUP BY ALL" over zero rows still yields one (empty) group, per
        // SPARQL 1.1 implicit-grouping semantics.
        if q.group_by.is_empty() && groups.is_empty() {
            groups.insert(Vec::new(), Vec::new());
        }

        let vars = q.output_vars();
        let mut out_rows = Vec::with_capacity(groups.len());
        for (key, members) in groups {
            let mut row = Vec::with_capacity(vars.len());
            for item in &q.projection {
                match item {
                    ProjectionItem::Var(v) => {
                        // Must be a grouping key to be well-formed.
                        let cell = q
                            .group_by
                            .iter()
                            .position(|g| g == v)
                            .and_then(|i| key[i])
                            .map(cell_of)
                            .unwrap_or(Cell::Null);
                        row.push(cell);
                    }
                    ProjectionItem::Aggregate {
                        func,
                        arg,
                        distinct,
                        ..
                    } => {
                        row.push(self.compute_aggregate(*func, arg.as_ref(), *distinct, &members));
                    }
                }
            }
            out_rows.push(row);
        }
        Relation {
            vars,
            rows: out_rows,
        }
    }

    fn compute_aggregate(
        &self,
        func: AggFunc,
        arg: Option<&Var>,
        distinct: bool,
        members: &[&Bindings],
    ) -> Cell {
        // Collect the argument values (term ids) across member rows.
        let mut ids: Vec<TermId> = Vec::new();
        for b in members {
            match arg {
                None => {
                    // COUNT(*): every row counts; encode as a dummy presence.
                    ids.push(TermId(u64::MAX));
                }
                Some(v) => {
                    if let Some(&id) = b.get(v) {
                        ids.push(id);
                    }
                }
            }
        }
        if distinct {
            let mut seen = std::collections::BTreeSet::new();
            ids.retain(|id| seen.insert(*id));
        }
        match func {
            AggFunc::Count => Cell::Num(ids.len() as f64),
            AggFunc::Sum | AggFunc::Avg | AggFunc::Min | AggFunc::Max => {
                let nums: Vec<f64> = ids
                    .iter()
                    .filter_map(|id| untag_num(*id).or_else(|| self.dict.numeric_value(*id)))
                    .collect();
                if nums.is_empty() {
                    return Cell::Null;
                }
                match func {
                    AggFunc::Sum => Cell::Num(nums.iter().sum()),
                    AggFunc::Avg => Cell::Num(nums.iter().sum::<f64>() / nums.len() as f64),
                    AggFunc::Min => Cell::Num(nums.iter().cloned().fold(f64::INFINITY, f64::min)),
                    AggFunc::Max => {
                        Cell::Num(nums.iter().cloned().fold(f64::NEG_INFINITY, f64::max))
                    }
                    AggFunc::Count => unreachable!(),
                }
            }
        }
    }
}

/// Join a list of bindings with a relation on shared variables (hash join on
/// the full shared-variable vector; Null/unbound never matches, per SPARQL
/// compatibility over *bound* values in our numeric-free subset).
fn join_with_relation(rows: Vec<Bindings>, rel: &Relation) -> Vec<Bindings> {
    let mut out = Vec::new();
    for b in rows {
        for rel_row in &rel.rows {
            let mut nb = b.clone();
            let mut ok = true;
            for (i, v) in rel.vars.iter().enumerate() {
                match rel_row[i] {
                    Cell::Term(id) => match nb.get(v) {
                        Some(&bound) if bound != id => {
                            ok = false;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            nb.insert(v.clone(), id);
                        }
                    },
                    Cell::Num(n) => {
                        // Aggregate outputs join only by being carried along;
                        // numeric cells are stored via a synthetic binding in
                        // the NUMERIC_NS space (they never collide with term
                        // ids because term ids are dense from 0 while these
                        // carry the bit pattern tagged in the high bit).
                        let tagged = TermId(tag_num(n));
                        match nb.get(v) {
                            Some(&bound) if bound != tagged => {
                                ok = false;
                                break;
                            }
                            Some(_) => {}
                            None => {
                                nb.insert(v.clone(), tagged);
                            }
                        }
                    }
                    Cell::Null => {}
                }
            }
            if ok {
                out.push(nb);
            }
        }
    }
    out
}

/// Tag a float's bit pattern so it can live in a `TermId` slot without
/// colliding with dictionary ids.
///
/// The tag repurposes the f64 sign bit (bit 63): aggregate values in this
/// system are always non-negative (counts, sums of prices, averages), so
/// the sign bit is free, and dictionary ids are dense from zero and never
/// approach 2^63.
pub(crate) fn tag_num(n: f64) -> u64 {
    debug_assert!(n >= 0.0, "tagged numerics must be non-negative");
    n.to_bits() | (1u64 << 63)
}

/// Recover a float from a tagged id if it is one.
pub(crate) fn untag_num(id: TermId) -> Option<f64> {
    const TAG: u64 = 1u64 << 63;
    if id.0 & TAG != 0 {
        Some(f64::from_bits(id.0 & !TAG))
    } else {
        None
    }
}

fn distinct(rel: Relation) -> Relation {
    let mut seen = std::collections::HashSet::new();
    let mut rows = Vec::new();
    for row in rel.rows {
        let key: Vec<String> = row
            .iter()
            .map(|c| match c {
                Cell::Term(id) => format!("t{}", id.0),
                Cell::Num(n) => format!("n{}", n.to_bits()),
                Cell::Null => "x".to_string(),
            })
            .collect();
        if seen.insert(key) {
            rows.push(row);
        }
    }
    Relation {
        vars: rel.vars,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use rapida_rdf::Term;

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    fn sample_graph() -> Graph {
        let mut g = Graph::new();
        // Three products, two with features, offers with prices.
        g.insert_terms(&iri("p1"), &Term::iri(rapida_rdf::vocab::RDF_TYPE), &iri("T1"));
        g.insert_terms(&iri("p2"), &Term::iri(rapida_rdf::vocab::RDF_TYPE), &iri("T1"));
        g.insert_terms(&iri("p3"), &Term::iri(rapida_rdf::vocab::RDF_TYPE), &iri("T2"));
        g.insert_terms(&iri("p1"), &iri("feature"), &iri("f1"));
        g.insert_terms(&iri("p2"), &iri("feature"), &iri("f1"));
        g.insert_terms(&iri("p2"), &iri("feature"), &iri("f2"));
        g.insert_terms(&iri("o1"), &iri("product"), &iri("p1"));
        g.insert_terms(&iri("o1"), &iri("price"), &Term::decimal(10.0));
        g.insert_terms(&iri("o2"), &iri("product"), &iri("p2"));
        g.insert_terms(&iri("o2"), &iri("price"), &Term::decimal(30.0));
        g.insert_terms(&iri("o3"), &iri("product"), &iri("p2"));
        g.insert_terms(&iri("o3"), &iri("price"), &Term::decimal(50.0));
        g
    }

    #[test]
    fn bgp_join_counts() {
        let g = sample_graph();
        let q = parse_query(
            "PREFIX ex: <http://x/>
             SELECT ?p ?pr { ?p a ex:T1 . ?o ex:product ?p ; ex:price ?pr . }",
        )
        .unwrap();
        let rel = evaluate(&q, &g);
        assert_eq!(rel.len(), 3); // o1->p1, o2->p2, o3->p2
    }

    #[test]
    fn group_by_aggregation() {
        let g = sample_graph();
        let q = parse_query(
            "PREFIX ex: <http://x/>
             SELECT ?p (SUM(?pr) AS ?total) (COUNT(?pr) AS ?n)
             { ?o ex:product ?p ; ex:price ?pr . } GROUP BY ?p",
        )
        .unwrap();
        let rel = evaluate(&q, &g);
        assert_eq!(rel.len(), 2);
        let dict = &g.dict;
        let p2 = dict.lookup(&iri("p2")).unwrap();
        let row = rel
            .rows
            .iter()
            .find(|r| r[0] == Cell::Term(p2))
            .expect("p2 group present");
        assert_eq!(row[1], Cell::Num(80.0));
        assert_eq!(row[2], Cell::Num(2.0));
    }

    #[test]
    fn group_by_all_single_group() {
        let g = sample_graph();
        let q = parse_query(
            "PREFIX ex: <http://x/>
             SELECT (COUNT(?pr) AS ?n) (AVG(?pr) AS ?avg) { ?o ex:price ?pr . }",
        )
        .unwrap();
        let rel = evaluate(&q, &g);
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.rows[0][0], Cell::Num(3.0));
        assert_eq!(rel.rows[0][1], Cell::Num(30.0));
    }

    #[test]
    fn empty_grouped_query_returns_no_rows() {
        let g = sample_graph();
        let q = parse_query(
            "PREFIX ex: <http://x/>
             SELECT ?z (COUNT(?z) AS ?n) { ?a ex:nosuch ?z . } GROUP BY ?z",
        )
        .unwrap();
        assert!(evaluate(&q, &g).is_empty());
    }

    #[test]
    fn empty_ungrouped_aggregate_returns_one_row() {
        let g = sample_graph();
        let q = parse_query(
            "PREFIX ex: <http://x/>
             SELECT (COUNT(?z) AS ?n) { ?a ex:nosuch ?z . }",
        )
        .unwrap();
        let rel = evaluate(&q, &g);
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.rows[0][0], Cell::Num(0.0));
    }

    #[test]
    fn numeric_filter() {
        let g = sample_graph();
        let q = parse_query(
            "PREFIX ex: <http://x/>
             SELECT ?o { ?o ex:price ?pr . FILTER(?pr > 20) }",
        )
        .unwrap();
        assert_eq!(evaluate(&q, &g).len(), 2);
    }

    #[test]
    fn regex_filter_case_insensitive() {
        let mut g = Graph::new();
        g.insert_terms(&iri("a"), &iri("name"), &Term::literal("MAPK Signaling Pathway"));
        g.insert_terms(&iri("b"), &iri("name"), &Term::literal("other"));
        let q = parse_query(
            "PREFIX ex: <http://x/>
             SELECT ?s { ?s ex:name ?n . FILTER regex(?n, \"mapk signaling\", \"i\") }",
        )
        .unwrap();
        assert_eq!(evaluate(&q, &g).len(), 1);
    }

    #[test]
    fn optional_keeps_unmatched() {
        let g = sample_graph();
        let q = parse_query(
            "PREFIX ex: <http://x/>
             SELECT ?p ?f { ?p a ex:T1 . OPTIONAL { ?p ex:feature ?f . } }",
        )
        .unwrap();
        let rel = evaluate(&q, &g);
        // p1 has 1 feature, p2 has 2 -> 3 rows, all matched; add an
        // unfeatured product of T1 and it would surface with Null.
        assert_eq!(rel.len(), 3);

        let mut g2 = sample_graph();
        g2.insert_terms(&iri("p9"), &Term::iri(rapida_rdf::vocab::RDF_TYPE), &iri("T1"));
        let rel2 = evaluate(&q, &g2);
        assert_eq!(rel2.len(), 4);
        let fcol = rel2.col(&Var::new("f")).unwrap();
        assert!(rel2.rows.iter().any(|r| r[fcol] == Cell::Null));
    }

    #[test]
    fn nested_subselects_join_on_shared_keys() {
        let g = sample_graph();
        // Per-feature sum of prices vs overall sum: MG1 in miniature.
        let q = parse_query(
            "PREFIX ex: <http://x/>
             SELECT ?f ?sumF ?sumT {
               { SELECT ?f (SUM(?pr) AS ?sumF)
                 { ?p ex:feature ?f . ?o ex:product ?p ; ex:price ?pr . } GROUP BY ?f }
               { SELECT (SUM(?pr2) AS ?sumT)
                 { ?o2 ex:product ?p2 ; ex:price ?pr2 . } }
             }",
        )
        .unwrap();
        let rel = evaluate(&q, &g);
        // f1: p1(10) + p2(30+50) = 90 ; f2: p2(30+50) = 80 ; total = 90.
        assert_eq!(rel.len(), 2);
        let dict = &g.dict;
        let f1 = dict.lookup(&iri("f1")).unwrap();
        let row = rel.rows.iter().find(|r| r[0] == Cell::Term(f1)).unwrap();
        assert_eq!(row[1], Cell::Num(90.0));
        assert_eq!(row[2], Cell::Num(90.0));
    }

    #[test]
    fn distinct_dedups() {
        let g = sample_graph();
        let q = parse_query(
            "PREFIX ex: <http://x/>
             SELECT DISTINCT ?p { ?o ex:product ?p . }",
        )
        .unwrap();
        assert_eq!(evaluate(&q, &g).len(), 2);
    }

    #[test]
    fn count_distinct() {
        let g = sample_graph();
        let q = parse_query(
            "PREFIX ex: <http://x/>
             SELECT (COUNT(DISTINCT ?p) AS ?n) { ?o ex:product ?p . }",
        )
        .unwrap();
        let rel = evaluate(&q, &g);
        assert_eq!(rel.rows[0][0], Cell::Num(2.0));
    }

    #[test]
    fn count_star_counts_rows() {
        let g = sample_graph();
        let q = parse_query(
            "PREFIX ex: <http://x/>
             SELECT (COUNT(*) AS ?n) { ?o ex:product ?p . }",
        )
        .unwrap();
        let rel = evaluate(&q, &g);
        assert_eq!(rel.rows[0][0], Cell::Num(3.0));
    }

    #[test]
    fn min_max_aggregates() {
        let g = sample_graph();
        let q = parse_query(
            "PREFIX ex: <http://x/>
             SELECT (MIN(?pr) AS ?lo) (MAX(?pr) AS ?hi) { ?o ex:price ?pr . }",
        )
        .unwrap();
        let rel = evaluate(&q, &g);
        assert_eq!(rel.rows[0][0], Cell::Num(10.0));
        assert_eq!(rel.rows[0][1], Cell::Num(50.0));
    }

    #[test]
    fn tag_untag_roundtrip() {
        for v in [0.0, 1.0, 42.5, 1e9] {
            let id = TermId(tag_num(v));
            assert_eq!(untag_num(id), Some(v));
        }
        assert_eq!(untag_num(TermId(5)), None);
    }
}
