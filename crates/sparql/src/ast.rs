//! Abstract syntax tree for the SPARQL subset exercised by the paper:
//! `SELECT` queries with basic graph patterns, predicate lists, FILTERs
//! (comparisons and `regex`), nested sub-`SELECT`s, `OPTIONAL`, aggregates
//! and `GROUP BY`.

use rapida_rdf::Term;
use std::fmt;

/// A SPARQL variable (`?name`), stored without the leading `?`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub String);

impl Var {
    /// Construct a variable from its bare name.
    pub fn new(name: impl Into<String>) -> Self {
        Var(name.into())
    }

    /// The bare name (no `?`).
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

/// A term slot in a triple pattern: either a variable or a constant term.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PatternTerm {
    /// A variable slot.
    Var(Var),
    /// A constant RDF term.
    Term(Term),
}

impl PatternTerm {
    /// The variable, if this slot is one.
    pub fn as_var(&self) -> Option<&Var> {
        match self {
            PatternTerm::Var(v) => Some(v),
            PatternTerm::Term(_) => None,
        }
    }

    /// The constant term, if this slot is one.
    pub fn as_term(&self) -> Option<&Term> {
        match self {
            PatternTerm::Var(_) => None,
            PatternTerm::Term(t) => Some(t),
        }
    }

    /// Is this slot a variable?
    pub fn is_var(&self) -> bool {
        matches!(self, PatternTerm::Var(_))
    }
}

impl fmt::Display for PatternTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternTerm::Var(v) => write!(f, "{v}"),
            PatternTerm::Term(t) => write!(f, "{t}"),
        }
    }
}

/// A triple pattern (Table 1: `tp`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TriplePattern {
    /// Subject slot.
    pub s: PatternTerm,
    /// Property slot (always bound in the paper's scope; the parser accepts
    /// variables here but the optimizers reject them, per §3).
    pub p: PatternTerm,
    /// Object slot.
    pub o: PatternTerm,
}

impl TriplePattern {
    /// Construct a triple pattern.
    pub fn new(s: PatternTerm, p: PatternTerm, o: PatternTerm) -> Self {
        TriplePattern { s, p, o }
    }

    /// `var(tp)` from Table 1: the set of variables in this pattern.
    pub fn vars(&self) -> Vec<&Var> {
        [&self.s, &self.p, &self.o]
            .into_iter()
            .filter_map(|t| t.as_var())
            .collect()
    }
}

impl fmt::Display for TriplePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.s, self.p, self.o)
    }
}

/// Aggregate functions supported by the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT`.
    Count,
    /// `SUM`.
    Sum,
    /// `AVG`.
    Avg,
    /// `MIN`.
    Min,
    /// `MAX`.
    Max,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        };
        f.write_str(s)
    }
}

/// One item in a `SELECT` projection.
#[derive(Debug, Clone, PartialEq)]
pub enum ProjectionItem {
    /// A plain variable.
    Var(Var),
    /// An aggregate expression `(FUNC(?v) AS ?alias)`.
    Aggregate {
        /// The aggregate function.
        func: AggFunc,
        /// The aggregated variable (`COUNT(*)` is expressed as `arg = None`).
        arg: Option<Var>,
        /// Result alias.
        alias: Var,
        /// `DISTINCT` modifier inside the aggregate.
        distinct: bool,
    },
}

impl ProjectionItem {
    /// The output variable this item binds.
    pub fn output_var(&self) -> &Var {
        match self {
            ProjectionItem::Var(v) => v,
            ProjectionItem::Aggregate { alias, .. } => alias,
        }
    }
}

/// Comparison operators in FILTER expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A scalar value expression inside a FILTER.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueExpr {
    /// A variable reference.
    Var(Var),
    /// A numeric constant.
    Number(f64),
    /// A constant RDF term (string literal or IRI).
    Term(Term),
}

/// A FILTER expression.
#[derive(Debug, Clone, PartialEq)]
pub enum FilterExpr {
    /// Binary comparison.
    Compare {
        /// Left operand.
        left: ValueExpr,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        right: ValueExpr,
    },
    /// `regex(?v, "pattern" [, "i"])` — substring match, optionally
    /// case-insensitive (the only regex form the paper's queries use).
    Regex {
        /// The variable whose lexical form is matched.
        var: Var,
        /// The pattern, treated as a plain substring.
        pattern: String,
        /// Case-insensitive flag (`"i"`).
        case_insensitive: bool,
    },
    /// Conjunction.
    And(Box<FilterExpr>, Box<FilterExpr>),
    /// Disjunction.
    Or(Box<FilterExpr>, Box<FilterExpr>),
    /// Negation.
    Not(Box<FilterExpr>),
}

impl FilterExpr {
    /// All variables mentioned by this filter.
    pub fn vars(&self) -> Vec<Var> {
        fn walk(e: &FilterExpr, out: &mut Vec<Var>) {
            match e {
                FilterExpr::Compare { left, right, .. } => {
                    for v in [left, right] {
                        if let ValueExpr::Var(v) = v {
                            out.push(v.clone());
                        }
                    }
                }
                FilterExpr::Regex { var, .. } => out.push(var.clone()),
                FilterExpr::And(a, b) | FilterExpr::Or(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                FilterExpr::Not(a) => walk(a, out),
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }
}

/// One element in a group graph pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternElement {
    /// A block of triple patterns.
    Triple(TriplePattern),
    /// A FILTER constraint.
    Filter(FilterExpr),
    /// A nested `{ SELECT ... }` subquery.
    SubSelect(Box<SelectQuery>),
    /// An `OPTIONAL { ... }` block.
    Optional(GroupGraphPattern),
}

/// A `{ ... }` group of pattern elements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GroupGraphPattern {
    /// The elements, in source order.
    pub elements: Vec<PatternElement>,
}

impl GroupGraphPattern {
    /// All triple patterns at this level (not descending into subselects or
    /// optionals).
    pub fn triples(&self) -> Vec<&TriplePattern> {
        self.elements
            .iter()
            .filter_map(|e| match e {
                PatternElement::Triple(t) => Some(t),
                _ => None,
            })
            .collect()
    }

    /// All FILTER expressions at this level.
    pub fn filters(&self) -> Vec<&FilterExpr> {
        self.elements
            .iter()
            .filter_map(|e| match e {
                PatternElement::Filter(f) => Some(f),
                _ => None,
            })
            .collect()
    }

    /// All nested subselects at this level.
    pub fn subselects(&self) -> Vec<&SelectQuery> {
        self.elements
            .iter()
            .filter_map(|e| match e {
                PatternElement::SubSelect(q) => Some(q.as_ref()),
                _ => None,
            })
            .collect()
    }
}

/// A `SELECT` query (outer or nested).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    /// Projection list; empty means `SELECT *`.
    pub projection: Vec<ProjectionItem>,
    /// `DISTINCT` modifier.
    pub distinct: bool,
    /// The `WHERE` pattern.
    pub pattern: GroupGraphPattern,
    /// `GROUP BY` variables (empty = no grouping, i.e. a single group when
    /// aggregates are present — "GROUP BY ALL" in the paper's terminology).
    pub group_by: Vec<Var>,
}

impl SelectQuery {
    /// Whether this query computes any aggregate.
    pub fn has_aggregates(&self) -> bool {
        self.projection
            .iter()
            .any(|p| matches!(p, ProjectionItem::Aggregate { .. }))
    }

    /// The output variable names, in projection order.
    pub fn output_vars(&self) -> Vec<Var> {
        self.projection.iter().map(|p| p.output_var().clone()).collect()
    }
}

/// A parsed SPARQL query with its prologue.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `PREFIX` declarations (prefix, expansion).
    pub prefixes: Vec<(String, String)>,
    /// The top-level select.
    pub select: SelectQuery,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tp_vars() {
        let tp = TriplePattern::new(
            PatternTerm::Var(Var::new("s")),
            PatternTerm::Term(Term::iri("http://x/p")),
            PatternTerm::Var(Var::new("o")),
        );
        let vs = tp.vars();
        assert_eq!(vs.len(), 2);
        assert_eq!(vs[0].name(), "s");
    }

    #[test]
    fn filter_vars_collects_nested() {
        let f = FilterExpr::And(
            Box::new(FilterExpr::Compare {
                left: ValueExpr::Var(Var::new("a")),
                op: CmpOp::Gt,
                right: ValueExpr::Number(5.0),
            }),
            Box::new(FilterExpr::Regex {
                var: Var::new("b"),
                pattern: "x".into(),
                case_insensitive: false,
            }),
        );
        let vs = f.vars();
        assert_eq!(vs, vec![Var::new("a"), Var::new("b")]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Var::new("x").to_string(), "?x");
        assert_eq!(AggFunc::Count.to_string(), "COUNT");
    }
}
