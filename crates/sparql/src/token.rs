//! Lexer for the SPARQL subset.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// `<...>` IRI reference (contents only).
    Iri(String),
    /// Prefixed name `prefix:local`.
    PName(String, String),
    /// Variable `?name` (name only).
    Var(String),
    /// String literal `"..."` (unescaped contents).
    Str(String),
    /// Numeric literal.
    Num(f64),
    /// Bare identifier / keyword (original case preserved).
    Ident(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<` (comparison context)
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `^^` datatype marker
    DtMarker,
    /// `@lang` tag (language only)
    LangTag(String),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Iri(s) => write!(f, "<{s}>"),
            Token::PName(p, l) => write!(f, "{p}:{l}"),
            Token::Var(v) => write!(f, "?{v}"),
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::Num(n) => write!(f, "{n}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Dot => write!(f, "."),
            Token::Semi => write!(f, ";"),
            Token::Comma => write!(f, ","),
            Token::Star => write!(f, "*"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::AndAnd => write!(f, "&&"),
            Token::OrOr => write!(f, "||"),
            Token::Bang => write!(f, "!"),
            Token::DtMarker => write!(f, "^^"),
            Token::LangTag(l) => write!(f, "@{l}"),
        }
    }
}

/// Lexer error with byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Byte offset in the input.
    pub pos: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_cont(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '-'
}

/// Tokenize a SPARQL query string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '#' => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '{' => {
                out.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                out.push(Token::RBrace);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '@' => {
                i += 1;
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '-') {
                    i += 1;
                }
                out.push(Token::LangTag(chars[start..i].iter().collect()));
            }
            '^' => {
                if chars.get(i + 1) == Some(&'^') {
                    out.push(Token::DtMarker);
                    i += 2;
                } else {
                    return Err(LexError {
                        pos: i,
                        message: "stray '^'".into(),
                    });
                }
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    out.push(Token::Bang);
                    i += 1;
                }
            }
            '&' => {
                if chars.get(i + 1) == Some(&'&') {
                    out.push(Token::AndAnd);
                    i += 2;
                } else {
                    return Err(LexError {
                        pos: i,
                        message: "stray '&'".into(),
                    });
                }
            }
            '|' => {
                if chars.get(i + 1) == Some(&'|') {
                    out.push(Token::OrOr);
                    i += 2;
                } else {
                    return Err(LexError {
                        pos: i,
                        message: "stray '|'".into(),
                    });
                }
            }
            '<' => {
                // IRI if it looks like one (no whitespace before '>'), else
                // comparison operator.
                let mut j = i + 1;
                let mut is_iri = false;
                while j < chars.len() {
                    match chars[j] {
                        '>' => {
                            is_iri = true;
                            break;
                        }
                        ' ' | '\t' | '\n' | '\r' => break,
                        _ => j += 1,
                    }
                }
                if is_iri {
                    out.push(Token::Iri(chars[i + 1..j].iter().collect()));
                    i = j + 1;
                } else if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::Le);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '?' | '$' => {
                i += 1;
                let start = i;
                while i < chars.len() && is_ident_cont(chars[i]) {
                    i += 1;
                }
                if start == i {
                    return Err(LexError {
                        pos: i,
                        message: "empty variable name".into(),
                    });
                }
                out.push(Token::Var(chars[start..i].iter().collect()));
            }
            '"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= chars.len() {
                        return Err(LexError {
                            pos: i,
                            message: "unterminated string".into(),
                        });
                    }
                    match chars[i] {
                        '"' => {
                            i += 1;
                            break;
                        }
                        '\\' => {
                            i += 1;
                            match chars.get(i) {
                                Some('n') => s.push('\n'),
                                Some('t') => s.push('\t'),
                                Some('r') => s.push('\r'),
                                Some('"') => s.push('"'),
                                Some('\\') => s.push('\\'),
                                other => {
                                    return Err(LexError {
                                        pos: i,
                                        message: format!("bad escape {other:?}"),
                                    })
                                }
                            }
                            i += 1;
                        }
                        c => {
                            s.push(c);
                            i += 1;
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            '.' => {
                // Could be end-of-triple or part of a number like .5 —
                // numbers starting with '.' are not produced by our queries,
                // so '.' is always punctuation here.
                out.push(Token::Dot);
                i += 1;
            }
            c if c.is_ascii_digit() || (c == '-' && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())) => {
                let start = i;
                if c == '-' {
                    i += 1;
                }
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                if i < chars.len()
                    && chars[i] == '.'
                    && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                {
                    i += 1;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                let n = text.parse::<f64>().map_err(|_| LexError {
                    pos: start,
                    message: format!("bad number '{text}'"),
                })?;
                out.push(Token::Num(n));
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < chars.len() && is_ident_cont(chars[i]) {
                    i += 1;
                }
                // prefixed name?
                if i < chars.len() && chars[i] == ':' {
                    let prefix: String = chars[start..i].iter().collect();
                    i += 1; // ':'
                    let lstart = i;
                    while i < chars.len() && (is_ident_cont(chars[i]) || chars[i] == '.') {
                        i += 1;
                    }
                    // A trailing '.' belongs to the sentence, not the local name.
                    let mut lend = i;
                    while lend > lstart && chars[lend - 1] == '.' {
                        lend -= 1;
                    }
                    i = lend;
                    out.push(Token::PName(prefix, chars[lstart..lend].iter().collect()));
                } else {
                    out.push(Token::Ident(chars[start..i].iter().collect()));
                }
            }
            ':' => {
                // default-prefix name `:local`
                i += 1;
                let lstart = i;
                while i < chars.len() && (is_ident_cont(chars[i]) || chars[i] == '.') {
                    i += 1;
                }
                let mut lend = i;
                while lend > lstart && chars[lend - 1] == '.' {
                    lend -= 1;
                }
                i = lend;
                out.push(Token::PName(String::new(), chars[lstart..lend].iter().collect()));
            }
            other => {
                return Err(LexError {
                    pos: i,
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_simple_query() {
        let toks = tokenize("SELECT ?s WHERE { ?s <http://x/p> ?o . }").unwrap();
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert_eq!(toks[1], Token::Var("s".into()));
        assert!(toks.contains(&Token::Iri("http://x/p".into())));
        assert!(toks.contains(&Token::Dot));
    }

    #[test]
    fn lex_pname_strips_trailing_dot() {
        let toks = tokenize("?s bsbm:price ?o .").unwrap();
        assert_eq!(toks[1], Token::PName("bsbm".into(), "price".into()));
        let toks = tokenize("?p2 rdf:type bsbm:ProductType1 .").unwrap();
        assert_eq!(
            toks[2],
            Token::PName("bsbm".into(), "ProductType1".into())
        );
        assert_eq!(toks[3], Token::Dot);
    }

    #[test]
    fn lex_comparison_vs_iri() {
        let toks = tokenize("FILTER(?x > 500) FILTER(?y < 3)").unwrap();
        assert!(toks.contains(&Token::Gt));
        assert!(toks.contains(&Token::Lt));
        let toks = tokenize("<http://x/a>").unwrap();
        assert_eq!(toks, vec![Token::Iri("http://x/a".into())]);
    }

    #[test]
    fn lex_numbers() {
        let toks = tokenize("5000 3.25 -7").unwrap();
        assert_eq!(
            toks,
            vec![Token::Num(5000.0), Token::Num(3.25), Token::Num(-7.0)]
        );
    }

    #[test]
    fn lex_string_with_escapes() {
        let toks = tokenize(r#""MAPK \"signaling\"""#).unwrap();
        assert_eq!(toks, vec![Token::Str("MAPK \"signaling\"".into())]);
    }

    #[test]
    fn lex_operators() {
        let toks = tokenize("!= <= >= && || !").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ne,
                Token::Le,
                Token::Ge,
                Token::AndAnd,
                Token::OrOr,
                Token::Bang
            ]
        );
    }

    #[test]
    fn lex_comments() {
        let toks = tokenize("SELECT # comment\n ?s").unwrap();
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn lex_typed_literal() {
        let toks = tokenize(r#""42"^^<http://www.w3.org/2001/XMLSchema#integer>"#).unwrap();
        assert_eq!(toks[0], Token::Str("42".into()));
        assert_eq!(toks[1], Token::DtMarker);
        assert!(matches!(toks[2], Token::Iri(_)));
    }

    #[test]
    fn lex_errors() {
        assert!(tokenize("?").is_err());
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("&x").is_err());
    }
}
