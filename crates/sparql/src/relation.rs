//! Result relations: the uniform output representation shared by the
//! reference evaluator and all query engines, plus canonicalization helpers
//! used by the 4-way engine-agreement tests.

use crate::ast::Var;
use rapida_rdf::{Dictionary, TermId};
use std::fmt;

/// One output cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Cell {
    /// A dictionary-encoded term.
    Term(TermId),
    /// A computed numeric value (aggregate results).
    Num(f64),
    /// Unbound.
    Null,
}

impl Cell {
    /// The numeric interpretation, via the dictionary for term cells.
    pub fn as_num(&self, dict: &Dictionary) -> Option<f64> {
        match self {
            Cell::Num(n) => Some(*n),
            Cell::Term(id) => dict.numeric_value(*id),
            Cell::Null => None,
        }
    }

    /// Render for canonical comparison: terms by lexical form, numbers with
    /// fixed precision so f64 noise does not break equality.
    pub fn canonical(&self, dict: &Dictionary) -> String {
        match self {
            Cell::Term(id) => format!("t:{}", dict.term(*id)),
            Cell::Num(n) => {
                // Round to the printed precision BEFORE testing integrality;
                // otherwise 36516.0 and 36516.0000000000004 (the same sum
                // accumulated in different orders) take different branches
                // and canonicalization stops absorbing f64 noise.
                let r = if n.abs() < 9e15 { (n * 1e6).round() / 1e6 } else { *n };
                if r.fract() == 0.0 && r.abs() < 9e15 {
                    format!("n:{}", r as i64)
                } else {
                    format!("n:{r:.6}")
                }
            }
            Cell::Null => "∅".to_string(),
        }
    }
}

/// A named-column multiset of rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Relation {
    /// Column variables, in order.
    pub vars: Vec<Var>,
    /// Rows; each row has exactly `vars.len()` cells.
    pub rows: Vec<Vec<Cell>>,
}

impl Relation {
    /// An empty relation with the given schema.
    pub fn empty(vars: Vec<Var>) -> Self {
        Relation { vars, rows: Vec::new() }
    }

    /// Column index of a variable.
    pub fn col(&self, v: &Var) -> Option<usize> {
        self.vars.iter().position(|x| x == v)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Canonical, order-insensitive form for multiset comparison across
    /// engines: one string per row, sorted. Columns are reordered into the
    /// lexicographic order of variable names so engines may differ in column
    /// order.
    pub fn canonicalized(&self, dict: &Dictionary) -> Vec<String> {
        let mut order: Vec<usize> = (0..self.vars.len()).collect();
        order.sort_by(|&a, &b| self.vars[a].0.cmp(&self.vars[b].0));
        let mut out: Vec<String> = self
            .rows
            .iter()
            .map(|row| {
                order
                    .iter()
                    .map(|&i| format!("{}={}", self.vars[i].0, row[i].canonical(dict)))
                    .collect::<Vec<_>>()
                    .join("|")
            })
            .collect();
        out.sort();
        out
    }

    /// Pretty-print with resolved terms (for examples and debugging).
    pub fn pretty(&self, dict: &Dictionary) -> String {
        let mut s = String::new();
        s.push_str(
            &self
                .vars
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\t"),
        );
        s.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .map(|c| match c {
                    Cell::Term(id) => dict.lexical(*id),
                    Cell::Num(n) => format!("{n}"),
                    Cell::Null => "-".to_string(),
                })
                .collect();
            s.push_str(&cells.join("\t"));
            s.push('\n');
        }
        s
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation[{} cols x {} rows]", self.vars.len(), self.rows.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapida_rdf::Term;

    #[test]
    fn canonicalization_is_column_order_insensitive() {
        let dict = Dictionary::new();
        let a = dict.intern(&Term::iri("http://x/a"));
        let b = dict.intern(&Term::iri("http://x/b"));
        let r1 = Relation {
            vars: vec![Var::new("x"), Var::new("y")],
            rows: vec![vec![Cell::Term(a), Cell::Term(b)]],
        };
        let r2 = Relation {
            vars: vec![Var::new("y"), Var::new("x")],
            rows: vec![vec![Cell::Term(b), Cell::Term(a)]],
        };
        assert_eq!(r1.canonicalized(&dict), r2.canonicalized(&dict));
    }

    #[test]
    fn canonicalization_is_row_order_insensitive() {
        let dict = Dictionary::new();
        let r1 = Relation {
            vars: vec![Var::new("x")],
            rows: vec![vec![Cell::Num(1.0)], vec![Cell::Num(2.0)]],
        };
        let r2 = Relation {
            vars: vec![Var::new("x")],
            rows: vec![vec![Cell::Num(2.0)], vec![Cell::Num(1.0)]],
        };
        assert_eq!(r1.canonicalized(&dict), r2.canonicalized(&dict));
    }

    #[test]
    fn integral_floats_canonicalize_as_integers() {
        let dict = Dictionary::new();
        assert_eq!(Cell::Num(42.0).canonical(&dict), "n:42");
        assert_eq!(Cell::Num(42.5).canonical(&dict), "n:42.500000");
    }

    #[test]
    fn multiset_semantics_preserved() {
        let dict = Dictionary::new();
        let one = Relation {
            vars: vec![Var::new("x")],
            rows: vec![vec![Cell::Num(1.0)], vec![Cell::Num(1.0)]],
        };
        let dup = Relation {
            vars: vec![Var::new("x")],
            rows: vec![vec![Cell::Num(1.0)]],
        };
        assert_ne!(one.canonicalized(&dict), dup.canonicalized(&dict));
    }

    #[test]
    fn cell_as_num_resolves_terms() {
        let dict = Dictionary::new();
        let id = dict.intern(&Term::integer(7));
        assert_eq!(Cell::Term(id).as_num(&dict), Some(7.0));
        assert_eq!(Cell::Num(1.5).as_num(&dict), Some(1.5));
        assert_eq!(Cell::Null.as_num(&dict), None);
    }
}
