//! # rapida-sparql
//!
//! SPARQL substrate for the RAPIDA workspace: lexer, recursive-descent parser
//! for the analytical-query subset (nested sub-`SELECT`s, aggregates,
//! `GROUP BY`, `FILTER`, `OPTIONAL`), structural analysis (subject-rooted
//! star decomposition, join roles — the Table 1 machinery of the paper), and
//! a direct in-memory reference evaluator used as the correctness oracle for
//! all scale-out engines.
//!
//! ```
//! use rapida_sparql::{parse_query, evaluate};
//! use rapida_rdf::{Graph, Term};
//!
//! let mut g = Graph::new();
//! g.insert_terms(
//!     &Term::iri("http://x/o1"),
//!     &Term::iri("http://x/price"),
//!     &Term::decimal(12.5),
//! );
//! let q = parse_query(
//!     "SELECT (SUM(?p) AS ?total) { ?o <http://x/price> ?p . }",
//! ).unwrap();
//! let result = evaluate(&q, &g);
//! assert_eq!(result.rows.len(), 1);
//! ```

pub mod analysis;
pub mod ast;
pub mod eval;
pub mod parser;
pub mod relation;
pub mod token;

pub use analysis::{
    decompose, role_equivalent, AnalysisError, JoinSide, PropKey, Role, StarDecomposition,
    StarJoin, StarPattern,
};
pub use ast::{
    AggFunc, CmpOp, FilterExpr, GroupGraphPattern, PatternElement, PatternTerm, ProjectionItem,
    Query, SelectQuery, TriplePattern, ValueExpr, Var,
};
pub use eval::{evaluate, evaluate_select};
pub use parser::{parse_query, ParseError};
pub use relation::{Cell, Relation};
