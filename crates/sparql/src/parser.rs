//! Recursive-descent parser for the SPARQL subset.

use crate::ast::*;
use crate::token::{tokenize, Token};
use rapida_rdf::{vocab, Term};
use std::collections::HashMap;
use std::fmt;

/// Parse error with token position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Index of the offending token (may equal token count at EOF).
    pub at: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at token {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a SPARQL query string into an AST.
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    let tokens = tokenize(input).map_err(|e| ParseError {
        at: 0,
        message: e.to_string(),
    })?;
    let mut p = Parser {
        tokens,
        pos: 0,
        prefixes: HashMap::new(),
    };
    // Built-in convenience prefixes; queries may override them.
    p.prefixes
        .insert("rdf".into(), "http://www.w3.org/1999/02/22-rdf-syntax-ns#".into());
    p.prefixes
        .insert("rdfs".into(), "http://www.w3.org/2000/01/rdf-schema#".into());
    p.prefixes
        .insert("xsd".into(), "http://www.w3.org/2001/XMLSchema#".into());
    let q = p.parse_query()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing tokens after query"));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    prefixes: HashMap<String, String>,
}

impl Parser {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            message: format!(
                "{} (near '{}')",
                msg.into(),
                self.tokens
                    .get(self.pos)
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "<eof>".into())
            ),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{t}'")))
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword '{kw}'")))
        }
    }

    fn resolve_pname(&self, prefix: &str, local: &str) -> Result<String, ParseError> {
        match self.prefixes.get(prefix) {
            Some(base) => Ok(format!("{base}{local}")),
            None => Err(ParseError {
                at: self.pos,
                message: format!("undeclared prefix '{prefix}:'"),
            }),
        }
    }

    fn parse_query(&mut self) -> Result<Query, ParseError> {
        let mut prefixes = Vec::new();
        while self.eat_keyword("PREFIX") {
            let (pfx, local) = match self.bump() {
                Some(Token::PName(p, l)) => (p, l),
                _ => return Err(self.err("expected prefix name after PREFIX")),
            };
            if !local.is_empty() {
                return Err(self.err("prefix declaration must end with ':'"));
            }
            let iri = match self.bump() {
                Some(Token::Iri(i)) => i,
                _ => return Err(self.err("expected IRI in PREFIX declaration")),
            };
            self.prefixes.insert(pfx.clone(), iri.clone());
            prefixes.push((pfx, iri));
        }
        let select = self.parse_select()?;
        Ok(Query { prefixes, select })
    }

    fn parse_select(&mut self) -> Result<SelectQuery, ParseError> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let mut projection = Vec::new();
        let mut saw_star = false;
        loop {
            match self.peek() {
                Some(Token::Star) => {
                    self.pos += 1;
                    saw_star = true;
                    break; // SELECT * — empty projection list
                }
                Some(Token::Var(_)) => {
                    if let Some(Token::Var(v)) = self.bump() {
                        projection.push(ProjectionItem::Var(Var::new(v)));
                    }
                }
                Some(Token::LParen) => {
                    self.pos += 1;
                    projection.push(self.parse_agg_projection()?);
                }
                Some(Token::Ident(s)) if is_agg_name(s) => {
                    // Unparenthesized aggregate: COUNT(?x) as ?y
                    projection.push(self.parse_agg_projection()?);
                }
                _ => break,
            }
        }
        if projection.is_empty() && !saw_star {
            return Err(self.err("SELECT requires '*' or at least one projection item"));
        }
        let pattern = self.parse_where()?;
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            while let Some(Token::Var(_)) = self.peek() {
                if let Some(Token::Var(v)) = self.bump() {
                    group_by.push(Var::new(v));
                }
            }
            if group_by.is_empty() {
                return Err(self.err("GROUP BY requires at least one variable"));
            }
        }
        Ok(SelectQuery {
            projection,
            distinct,
            pattern,
            group_by,
        })
    }

    /// Parses `FUNC '(' [DISTINCT] (?v | *) ')' [AS] ?alias [')' consumed by caller-aware logic]`.
    ///
    /// Called either after an opening `(` (the standard SPARQL 1.1 form) or at
    /// a bare aggregate name. The paper's appendix uses both
    /// `(COUNT(?pr2) ?cntF)` (no AS) and `(COUNT(?cid) as ?alias)`.
    fn parse_agg_projection(&mut self) -> Result<ProjectionItem, ParseError> {
        let func = match self.bump() {
            Some(Token::Ident(s)) => parse_agg_name(&s).ok_or_else(|| ParseError {
                at: self.pos,
                message: format!("unknown aggregate '{s}'"),
            })?,
            _ => return Err(self.err("expected aggregate function")),
        };
        self.expect(&Token::LParen)?;
        let distinct = self.eat_keyword("DISTINCT");
        let arg = match self.bump() {
            Some(Token::Var(v)) => Some(Var::new(v)),
            Some(Token::Star) => None,
            _ => return Err(self.err("expected variable or * in aggregate")),
        };
        self.expect(&Token::RParen)?;
        let _ = self.eat_keyword("AS") || self.eat_keyword("As") || self.eat_keyword("as");
        let alias = match self.bump() {
            Some(Token::Var(v)) => Var::new(v),
            _ => return Err(self.err("expected alias variable after aggregate")),
        };
        // Close the surrounding paren if present.
        let _ = self.eat(&Token::RParen);
        Ok(ProjectionItem::Aggregate {
            func,
            arg,
            alias,
            distinct,
        })
    }

    fn parse_where(&mut self) -> Result<GroupGraphPattern, ParseError> {
        let _ = self.eat_keyword("WHERE");
        self.parse_group_graph_pattern()
    }

    fn parse_group_graph_pattern(&mut self) -> Result<GroupGraphPattern, ParseError> {
        self.expect(&Token::LBrace)?;
        let mut elements = Vec::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated group graph pattern")),
                Some(Token::RBrace) => {
                    self.pos += 1;
                    break;
                }
                Some(Token::LBrace) => {
                    // Nested group: either a sub-SELECT or a plain group
                    // (plain groups are inlined — no UNION semantics needed).
                    if matches!(self.peek2(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case("SELECT"))
                    {
                        self.pos += 1; // '{'
                        let sub = self.parse_select()?;
                        self.expect(&Token::RBrace)?;
                        elements.push(PatternElement::SubSelect(Box::new(sub)));
                    } else {
                        let inner = self.parse_group_graph_pattern()?;
                        elements.extend(inner.elements);
                    }
                    let _ = self.eat(&Token::Dot);
                }
                Some(Token::Ident(s)) if s.eq_ignore_ascii_case("FILTER") => {
                    self.pos += 1;
                    let f = self.parse_filter_constraint()?;
                    elements.push(PatternElement::Filter(f));
                    let _ = self.eat(&Token::Dot);
                }
                Some(Token::Ident(s)) if s.eq_ignore_ascii_case("OPTIONAL") => {
                    self.pos += 1;
                    let inner = self.parse_group_graph_pattern()?;
                    elements.push(PatternElement::Optional(inner));
                    let _ = self.eat(&Token::Dot);
                }
                _ => {
                    let triples = self.parse_triples_same_subject()?;
                    elements.extend(triples.into_iter().map(PatternElement::Triple));
                    // '.' separates sentences; it is optional before '}'.
                    let _ = self.eat(&Token::Dot);
                }
            }
        }
        Ok(GroupGraphPattern { elements })
    }

    fn parse_triples_same_subject(&mut self) -> Result<Vec<TriplePattern>, ParseError> {
        let subject = self.parse_term_slot(false)?;
        let mut out = Vec::new();
        loop {
            let verb = self.parse_verb()?;
            loop {
                let object = self.parse_term_slot(true)?;
                out.push(TriplePattern::new(subject.clone(), verb.clone(), object));
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            if !self.eat(&Token::Semi) {
                break;
            }
            // Allow a dangling ';' before '.' or '}'.
            if matches!(self.peek(), Some(Token::Dot) | Some(Token::RBrace)) {
                break;
            }
        }
        Ok(out)
    }

    fn parse_verb(&mut self) -> Result<PatternTerm, ParseError> {
        if let Some(Token::Ident(s)) = self.peek() {
            if s == "a" {
                self.pos += 1;
                return Ok(PatternTerm::Term(Term::iri(vocab::RDF_TYPE)));
            }
        }
        self.parse_term_slot(false)
    }

    fn parse_term_slot(&mut self, allow_literal: bool) -> Result<PatternTerm, ParseError> {
        match self.bump() {
            Some(Token::Var(v)) => Ok(PatternTerm::Var(Var::new(v))),
            Some(Token::Iri(i)) => Ok(PatternTerm::Term(Term::iri(i))),
            Some(Token::PName(p, l)) => {
                let iri = self.resolve_pname(&p, &l)?;
                Ok(PatternTerm::Term(Term::iri(iri)))
            }
            Some(Token::Str(s)) if allow_literal => {
                // Optional datatype / language tag.
                match self.peek() {
                    Some(Token::DtMarker) => {
                        self.pos += 1;
                        let dt = match self.bump() {
                            Some(Token::Iri(i)) => i,
                            Some(Token::PName(p, l)) => self.resolve_pname(&p, &l)?,
                            _ => return Err(self.err("expected datatype IRI after '^^'")),
                        };
                        Ok(PatternTerm::Term(Term::typed_literal(s, dt)))
                    }
                    Some(Token::LangTag(_)) => {
                        if let Some(Token::LangTag(lang)) = self.bump() {
                            Ok(PatternTerm::Term(Term::lang_literal(s, lang)))
                        } else {
                            unreachable!()
                        }
                    }
                    _ => Ok(PatternTerm::Term(Term::literal(s))),
                }
            }
            Some(Token::Num(n)) if allow_literal => Ok(PatternTerm::Term(number_term(n))),
            other => Err(ParseError {
                at: self.pos,
                message: format!("expected term, found {other:?}"),
            }),
        }
    }

    fn parse_filter_constraint(&mut self) -> Result<FilterExpr, ParseError> {
        if self.at_keyword("REGEX") {
            return self.parse_regex_call();
        }
        self.expect(&Token::LParen)?;
        let e = self.parse_or_expr()?;
        self.expect(&Token::RParen)?;
        Ok(e)
    }

    fn parse_regex_call(&mut self) -> Result<FilterExpr, ParseError> {
        self.expect_keyword("REGEX")?;
        self.expect(&Token::LParen)?;
        let var = match self.bump() {
            Some(Token::Var(v)) => Var::new(v),
            _ => return Err(self.err("regex() first argument must be a variable")),
        };
        self.expect(&Token::Comma)?;
        let pattern = match self.bump() {
            Some(Token::Str(s)) => s,
            _ => return Err(self.err("regex() second argument must be a string")),
        };
        let mut case_insensitive = false;
        if self.eat(&Token::Comma) {
            match self.bump() {
                Some(Token::Str(flags)) => case_insensitive = flags.contains('i'),
                _ => return Err(self.err("regex() flags must be a string")),
            }
        }
        self.expect(&Token::RParen)?;
        Ok(FilterExpr::Regex {
            var,
            pattern,
            case_insensitive,
        })
    }

    fn parse_or_expr(&mut self) -> Result<FilterExpr, ParseError> {
        let mut left = self.parse_and_expr()?;
        while self.eat(&Token::OrOr) {
            let right = self.parse_and_expr()?;
            left = FilterExpr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and_expr(&mut self) -> Result<FilterExpr, ParseError> {
        let mut left = self.parse_unary_expr()?;
        while self.eat(&Token::AndAnd) {
            let right = self.parse_unary_expr()?;
            left = FilterExpr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_unary_expr(&mut self) -> Result<FilterExpr, ParseError> {
        if self.eat(&Token::Bang) {
            let inner = self.parse_unary_expr()?;
            return Ok(FilterExpr::Not(Box::new(inner)));
        }
        if self.at_keyword("REGEX") {
            return self.parse_regex_call();
        }
        if self.peek() == Some(&Token::LParen) {
            self.pos += 1;
            let e = self.parse_or_expr()?;
            self.expect(&Token::RParen)?;
            return Ok(e);
        }
        let left = self.parse_value_expr()?;
        let op = match self.peek() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Ne) => CmpOp::Ne,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            _ => return Err(self.err("expected comparison operator in FILTER")),
        };
        self.pos += 1;
        let right = self.parse_value_expr()?;
        Ok(FilterExpr::Compare { left, op, right })
    }

    fn parse_value_expr(&mut self) -> Result<ValueExpr, ParseError> {
        match self.bump() {
            Some(Token::Var(v)) => Ok(ValueExpr::Var(Var::new(v))),
            Some(Token::Num(n)) => Ok(ValueExpr::Number(n)),
            Some(Token::Str(s)) => Ok(ValueExpr::Term(Term::literal(s))),
            Some(Token::Iri(i)) => Ok(ValueExpr::Term(Term::iri(i))),
            Some(Token::PName(p, l)) => {
                let iri = self.resolve_pname(&p, &l)?;
                Ok(ValueExpr::Term(Term::iri(iri)))
            }
            other => Err(ParseError {
                at: self.pos,
                message: format!("expected value expression, found {other:?}"),
            }),
        }
    }
}

fn is_agg_name(s: &str) -> bool {
    parse_agg_name(s).is_some()
}

fn parse_agg_name(s: &str) -> Option<AggFunc> {
    match s.to_ascii_uppercase().as_str() {
        "COUNT" => Some(AggFunc::Count),
        "SUM" => Some(AggFunc::Sum),
        "AVG" => Some(AggFunc::Avg),
        "MIN" => Some(AggFunc::Min),
        "MAX" => Some(AggFunc::Max),
        _ => None,
    }
}

fn number_term(n: f64) -> Term {
    if n.fract() == 0.0 && n.abs() < 9e15 {
        Term::integer(n as i64)
    } else {
        Term::decimal(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_select() {
        let q = parse_query(
            "PREFIX ex: <http://x/> SELECT ?s WHERE { ?s ex:p ?o . ?o ex:q \"v\" . }",
        )
        .unwrap();
        assert_eq!(q.select.projection.len(), 1);
        assert_eq!(q.select.pattern.triples().len(), 2);
    }

    #[test]
    fn parses_predicate_list() {
        let q = parse_query(
            "PREFIX ex: <http://x/> SELECT ?s { ?s ex:a ?x ; ex:b ?y ; ex:c \"z\" . }",
        )
        .unwrap();
        let tps = q.select.pattern.triples();
        assert_eq!(tps.len(), 3);
        for tp in &tps {
            assert_eq!(tp.s, PatternTerm::Var(Var::new("s")));
        }
    }

    #[test]
    fn parses_a_keyword() {
        let q = parse_query("SELECT ?s { ?s a <http://x/T> . }").unwrap();
        let tps = q.select.pattern.triples();
        assert_eq!(
            tps[0].p,
            PatternTerm::Term(Term::iri(rapida_rdf::vocab::RDF_TYPE))
        );
    }

    #[test]
    fn parses_aggregates_both_styles() {
        let q = parse_query(
            "SELECT ?f (COUNT(?p) AS ?c) (SUM(?p) ?s) { ?x <http://x/p> ?p . } GROUP BY ?f",
        )
        .unwrap();
        assert_eq!(q.select.projection.len(), 3);
        assert!(matches!(
            q.select.projection[1],
            ProjectionItem::Aggregate {
                func: AggFunc::Count,
                ..
            }
        ));
        assert!(matches!(
            q.select.projection[2],
            ProjectionItem::Aggregate {
                func: AggFunc::Sum,
                ..
            }
        ));
        assert_eq!(q.select.group_by, vec![Var::new("f")]);
    }

    #[test]
    fn parses_count_star() {
        let q = parse_query("SELECT (COUNT(*) AS ?n) { ?s ?p ?o . }").unwrap();
        match &q.select.projection[0] {
            ProjectionItem::Aggregate { arg, .. } => assert!(arg.is_none()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_nested_subselects() {
        let q = parse_query(
            "PREFIX ex: <http://x/>
             SELECT ?f ?c ?t {
               { SELECT ?f (COUNT(?p) AS ?c) { ?x ex:f ?f ; ex:p ?p . } GROUP BY ?f }
               { SELECT (COUNT(?p2) AS ?t) { ?y ex:p ?p2 . } }
             }",
        )
        .unwrap();
        let subs = q.select.pattern.subselects();
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0].group_by.len(), 1);
        assert!(subs[1].group_by.is_empty());
        assert!(subs[1].has_aggregates());
    }

    #[test]
    fn parses_filters() {
        let q = parse_query(
            "SELECT ?s { ?s <http://x/price> ?p . FILTER(?p > 5000 && ?p != 9999) }",
        )
        .unwrap();
        let fs = q.select.pattern.filters();
        assert_eq!(fs.len(), 1);
        assert!(matches!(fs[0], FilterExpr::And(_, _)));
    }

    #[test]
    fn parses_regex_filter() {
        let q = parse_query(
            "SELECT ?s { ?s <http://x/name> ?n . FILTER regex(?n, \"MAPK signaling pathway\", \"i\") }",
        )
        .unwrap();
        match q.select.pattern.filters()[0] {
            FilterExpr::Regex {
                case_insensitive, ..
            } => assert!(case_insensitive),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_optional() {
        let q = parse_query(
            "SELECT ?s { ?s <http://x/p> ?o . OPTIONAL { ?s <http://x/q> ?q . } }",
        )
        .unwrap();
        assert!(q
            .select
            .pattern
            .elements
            .iter()
            .any(|e| matches!(e, PatternElement::Optional(_))));
    }

    #[test]
    fn parses_string_object_with_literal() {
        let q = parse_query(
            "SELECT ?dr { ?dr <http://x/Generic_Name> \"Dexamethasone\" . }",
        )
        .unwrap();
        let tps = q.select.pattern.triples();
        assert_eq!(
            tps[0].o,
            PatternTerm::Term(Term::literal("Dexamethasone"))
        );
    }

    #[test]
    fn rejects_undeclared_prefix() {
        assert!(parse_query("SELECT ?s { ?s foo:p ?o . }").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_query("SELECT ?s WHERE ?s").is_err());
        assert!(parse_query("SELECT { }").is_err());
    }

    #[test]
    fn parses_distinct() {
        let q = parse_query("SELECT DISTINCT ?s { ?s <http://x/p> ?o . }").unwrap();
        assert!(q.select.distinct);
    }

    #[test]
    fn group_by_multiple_vars() {
        let q = parse_query(
            "SELECT ?a ?b (COUNT(?c) AS ?n) { ?x <http://x/a> ?a ; <http://x/b> ?b ; <http://x/c> ?c . } GROUP BY ?a ?b",
        )
        .unwrap();
        assert_eq!(q.select.group_by.len(), 2);
    }
}
