//! Workflow checkpoint/recovery tests: losing a job mid-workflow must
//! resume from the last fully-committed checkpoint (not job 0), recompute
//! strictly less than a full restart, keep the output byte-identical, and
//! ledger every replay deterministically. Exhausting the retry budget must
//! degrade to a typed [`WorkflowError`] carrying partial metrics.

use rapida_mapred::{
    Backoff, ClusterModel, DatasetWriter, Engine, FaultPlan, FnMapFactory, FnReduceFactory,
    InputSrc, JobBuilder, JobDeadline, MapOutput, MapTask, ReduceOutput, ReduceTask,
    ResiliencePolicy, SimDfs, WorkflowError, WorkflowMetrics,
};
use rapida_testkit::rng::StdRng;
use std::sync::Arc;

/// Emits (word, 1) for every input record.
struct TokenMap;
impl MapTask for TokenMap {
    fn map(&mut self, _src: InputSrc, record: &[u8], out: &mut MapOutput) {
        out.emit(record, &1u32.to_le_bytes());
    }
}

/// Map-only pass that drops records shorter than 2 bytes.
struct FilterMap;
impl MapTask for FilterMap {
    fn map(&mut self, _src: InputSrc, record: &[u8], out: &mut MapOutput) {
        if record.len() >= 2 {
            out.write(record);
        }
    }
}

/// Sums u32 values; writes `key \0 sum` as output or re-emits as combiner.
struct Sum {
    to_output: bool,
}
impl ReduceTask for Sum {
    fn reduce(&mut self, key: &[u8], values: &[&[u8]], out: &mut ReduceOutput) {
        let total: u32 = values
            .iter()
            .map(|v| {
                let mut b = [0u8; 4];
                b.copy_from_slice(v);
                u32::from_le_bytes(b)
            })
            .sum();
        if self.to_output {
            let mut rec = key.to_vec();
            rec.push(0);
            rec.extend_from_slice(&total.to_le_bytes());
            out.write(&rec);
        } else {
            out.emit(key, &total.to_le_bytes());
        }
    }
}

/// Three-cycle workflow (filter → combined word count → regroup); the
/// late job is the recovery target so checkpoint resume has two committed
/// upstream jobs to skip.
fn workflow() -> Vec<rapida_mapred::Job> {
    vec![
        JobBuilder::new("filter")
            .input("in")
            .mapper(Arc::new(FnMapFactory(|| FilterMap)))
            .output("filtered")
            .build(),
        JobBuilder::new("wc")
            .input("filtered")
            .mapper(Arc::new(FnMapFactory(|| TokenMap)))
            .combiner(Arc::new(FnReduceFactory(|| Sum { to_output: false })))
            .reducer(Arc::new(FnReduceFactory(|| Sum { to_output: true })))
            .output("counts")
            .num_reducers(5)
            .build(),
        JobBuilder::new("regroup")
            .input("counts")
            .mapper(Arc::new(FnMapFactory(|| TokenMap)))
            .reducer(Arc::new(FnReduceFactory(|| Sum { to_output: true })))
            .output("out")
            .num_reducers(3)
            .build(),
    ]
}

fn run(
    faults: Option<FaultPlan>,
    policy: ResiliencePolicy,
) -> (Result<WorkflowMetrics, WorkflowError>, Vec<Vec<u8>>) {
    let dfs = SimDfs::new();
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let mut w = DatasetWriter::new(64);
    for _ in 0..400 {
        let len = rng.gen_range(1usize..=4);
        let word: String = (0..len)
            .map(|_| (b'a' + rng.gen_range(0u8..6)) as char)
            .collect();
        w.push(word.as_bytes());
    }
    dfs.put("in", w.finish());
    let mut engine = Engine::with_workers(dfs.clone(), 4).with_resilience(policy);
    engine.faults = faults;
    let res = engine.try_run_workflow(&workflow());
    let blocks: Vec<Vec<u8>> = dfs
        .get("out")
        .map(|ds| ds.blocks.iter().map(|b| b.as_ref().to_vec()).collect())
        .unwrap_or_default();
    (res, blocks)
}

/// Kill the late job (index 2) exactly once.
fn kill_late_job() -> FaultPlan {
    FaultPlan {
        abort_job: Some((2, 1)),
        ..FaultPlan::new(0)
    }
}

/// Checkpoint resume after a late-job loss: the two committed upstream
/// jobs are verified and skipped, only the lost job replays, and the
/// output is byte-identical to the undisturbed run.
#[test]
fn checkpoint_resume_replays_only_the_lost_job() {
    let (clean, golden) = run(None, ResiliencePolicy::default());
    let clean = clean.expect("clean run");
    assert!(clean.recovery.is_clean());

    let (wf, blocks) = run(Some(kill_late_job()), ResiliencePolicy::default());
    let wf = wf.expect("recovery within budget");
    assert_eq!(blocks, golden, "checkpoint resume changed the output bytes");
    let r = &wf.recovery;
    assert_eq!(r.workflow_restarts, 1);
    assert_eq!(r.aborted_job_attempts, 1);
    assert_eq!(r.checkpoint_jobs_skipped, 2, "both upstream checkpoints skip");
    assert_eq!(r.jobs_replayed, 1, "only the lost job replays");
    assert!(r.checkpoint_bytes_read > 0);
    assert!(r.recomputed_bytes > 0);
    assert!(r.wasted_bytes > 0, "the aborted attempt's work is charged");
    assert!(r.wasted_task_attempts > 0);
    assert_eq!(r.recovery_backoff_s, Backoff::default().delay_s(0));
    // Committed metrics are those of the final (successful) runs only.
    assert_eq!(wf.jobs.len(), 3);
}

/// The same loss without checkpointing replays the whole DAG: every job
/// reruns, nothing is skipped, and the recomputed bytes are at least 2×
/// the checkpoint-resume figure — the margin `BENCH_recover.json` reports
/// and `scripts/bench_report.sh` enforces.
#[test]
fn full_restart_recomputes_at_least_twice_as_much() {
    let model = ClusterModel::nodes10();
    let (_, golden) = run(None, ResiliencePolicy::default());

    let (ckpt, ckpt_blocks) = run(Some(kill_late_job()), ResiliencePolicy::default());
    let ckpt = ckpt.expect("checkpoint-mode recovery");
    let restart_policy = ResiliencePolicy {
        checkpointing: false,
        ..ResiliencePolicy::default()
    };
    let (restart, restart_blocks) = run(Some(kill_late_job()), restart_policy);
    let restart = restart.expect("restart-mode recovery");

    assert_eq!(ckpt_blocks, golden);
    assert_eq!(restart_blocks, golden, "full restart changed the output bytes");
    assert_eq!(restart.recovery.checkpoint_jobs_skipped, 0);
    assert_eq!(restart.recovery.jobs_replayed, 3, "the whole DAG replays");
    assert!(
        restart.recovery.recomputed_bytes >= 2 * ckpt.recovery.recomputed_bytes,
        "restart recomputed {} B, checkpoint resume {} B — expected ≥ 2×",
        restart.recovery.recomputed_bytes,
        ckpt.recovery.recomputed_bytes
    );
    assert!(
        model.workflow_time(&restart) > model.workflow_time(&ckpt),
        "the cost model must charge full restart more than checkpoint resume"
    );
}

/// Exhausting the workflow retry budget returns the typed error with the
/// partial metrics — committed upstream jobs and the full recovery ledger
/// — instead of panicking.
#[test]
fn exhausted_retry_budget_degrades_gracefully() {
    let plan = FaultPlan {
        abort_job: Some((1, 99)),
        ..FaultPlan::new(0)
    };
    let policy = ResiliencePolicy {
        workflow_attempts: 3,
        ..ResiliencePolicy::default()
    };
    let (res, _) = run(Some(plan), policy);
    let err = res.expect_err("budget of 3 cannot absorb 99 kills");
    match &err {
        WorkflowError::RetryBudgetExhausted {
            job,
            job_index,
            attempts,
            partial,
        } => {
            assert_eq!(job, "wc");
            assert_eq!(*job_index, 1);
            assert_eq!(*attempts, 3);
            assert_eq!(partial.jobs.len(), 1, "only the filter job committed");
            assert_eq!(partial.recovery.aborted_job_attempts, 3);
            assert_eq!(partial.recovery.workflow_restarts, 2);
            assert_eq!(partial.recovery.jobs_replayed, 2);
        }
        other => panic!("expected RetryBudgetExhausted, got {other}"),
    }
    assert_eq!(err.job(), "wc");
    assert_eq!(err.partial().jobs.len(), 1);
    assert!(err.to_string().contains("retry budget"));
}

/// Deadline timeout-kills escalate the per-job limit until the job clears
/// it; the workflow completes with the kills ledgered and byte-identical
/// output.
#[test]
fn deadline_kills_escalate_until_the_job_clears() {
    let (_, golden) = run(None, ResiliencePolicy::default());
    let policy = ResiliencePolicy {
        deadline: Some(JobDeadline {
            model: ClusterModel::nodes10(),
            limit_s: 1.0,
            escalation: 4.0,
        }),
        workflow_attempts: 16,
        ..ResiliencePolicy::default()
    };
    let (wf, blocks) = run(None, policy);
    let wf = wf.expect("escalation must eventually clear the deadline");
    assert_eq!(blocks, golden, "deadline recovery changed the output bytes");
    let r = &wf.recovery;
    assert!(r.timeout_kills > 0, "a 1 s limit must kill these jobs at least once");
    assert_eq!(r.deadline_escalations, r.timeout_kills);
    assert_eq!(r.aborted_job_attempts, 0, "no fault plan attached");
    assert_eq!(wf.jobs.len(), 3);
}

/// A deadline that never escalates exhausts the budget on the first job
/// and reports the limit that was in force.
#[test]
fn unescalated_deadline_exhausts_the_budget() {
    let policy = ResiliencePolicy {
        deadline: Some(JobDeadline {
            model: ClusterModel::nodes10(),
            limit_s: 0.5,
            escalation: 1.0,
        }),
        workflow_attempts: 2,
        ..ResiliencePolicy::default()
    };
    let (res, _) = run(None, policy);
    match res.expect_err("a fixed sub-second deadline cannot be met") {
        WorkflowError::DeadlineExhausted {
            job,
            job_index,
            limit_s,
            partial,
        } => {
            assert_eq!(job, "filter");
            assert_eq!(job_index, 0);
            assert_eq!(limit_s, 0.5, "escalation 1.0 must leave the limit unchanged");
            assert!(partial.jobs.is_empty(), "nothing committed");
            assert_eq!(partial.recovery.timeout_kills, 2);
        }
        other => panic!("expected DeadlineExhausted, got {other}"),
    }
}

/// The infallible wrapper panics (rather than returning wrong results)
/// when an explicit kill schedule outlasts the budget.
#[test]
#[should_panic(expected = "recovery budget")]
fn run_workflow_panics_when_the_budget_is_exhausted() {
    let dfs = SimDfs::new();
    let mut w = DatasetWriter::new(64);
    w.push(b"ab");
    dfs.put("in", w.finish());
    let mut engine = Engine::with_workers(dfs, 2);
    engine.faults = Some(FaultPlan {
        abort_job: Some((0, 99)),
        ..FaultPlan::new(0)
    });
    engine.run_workflow(&workflow());
}
