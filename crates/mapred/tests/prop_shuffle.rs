//! Property test for the arena-backed shuffle data path: random jobs run
//! through the real [`Engine`] must produce byte-identical `Dataset` output
//! and identical data-flow metrics to a reference implementation that keeps
//! the pre-rewrite semantics — per-record `(Vec<u8>, Vec<u8>)` pairs,
//! reduce-side concatenation of task outputs in task order, and one stable
//! sort per partition.

use rapida_testkit::prelude::*;

use rapida_mapred::codec::BlockBuilder;
use rapida_mapred::job::ReduceTaskFactory;
use rapida_mapred::{
    shuffle_partition, DatasetWriter, Engine, FnMapFactory, FnReduceFactory, InputSrc, Job,
    JobBuilder, MapOutput, MapTask, ReduceOutput, ReduceTask, SimDfs,
};
use std::sync::Arc;

/// Mapper used by both engines: writes records through (map-only output)
/// and emits one `(byte % 5, 1u32)` count pair per record byte, so runs
/// carry plenty of equal keys across tasks.
struct ByteCountMap;
impl MapTask for ByteCountMap {
    fn map(&mut self, _src: InputSrc, record: &[u8], out: &mut MapOutput) {
        if !record.is_empty() {
            out.write(record);
        }
        for &b in record {
            out.emit(&[b % 5], &1u32.to_le_bytes());
        }
    }
}

/// Sums u32 counts; writes `key \0 sum` as a reducer, re-emits as combiner.
struct Sum {
    to_output: bool,
}
impl ReduceTask for Sum {
    fn reduce(&mut self, key: &[u8], values: &[&[u8]], out: &mut ReduceOutput) {
        let total: u32 = values
            .iter()
            .map(|v| {
                let mut b = [0u8; 4];
                b.copy_from_slice(v);
                u32::from_le_bytes(b)
            })
            .sum();
        if self.to_output {
            let mut rec = key.to_vec();
            rec.push(0);
            rec.extend_from_slice(&total.to_le_bytes());
            out.write(&rec);
        } else {
            out.emit(key, &total.to_le_bytes());
        }
    }
}

fn build_job(combiner: bool, map_only: bool, reducers: usize) -> Job {
    let mut b = JobBuilder::new("prop-shuffle")
        .input("in")
        .mapper(Arc::new(FnMapFactory(|| ByteCountMap)))
        .output("out")
        .num_reducers(reducers);
    if !map_only {
        b = b.reducer(Arc::new(FnReduceFactory(|| Sum { to_output: true })));
        if combiner {
            b = b.combiner(Arc::new(FnReduceFactory(|| Sum { to_output: false })));
        }
    }
    b.build()
}

/// Signature of everything the run committed: output block bytes plus the
/// data-flow counters the cost model consumes.
#[derive(Debug, PartialEq, Eq)]
struct RunSig {
    blocks: Vec<Vec<u8>>,
    records: usize,
    block_records: Vec<usize>,
    map_tasks: usize,
    input_records: u64,
    input_bytes: u64,
    map_output_records: u64,
    map_output_bytes: u64,
    shuffle_records: u64,
    shuffle_bytes: u64,
    reduce_tasks: usize,
    output_records: u64,
    output_bytes: u64,
}

/// Group runs of equal keys in a key-sorted pair list (the old engine's
/// `run_key_groups`, kept verbatim in the reference).
fn pair_key_groups<F: FnMut(&[u8], &[&[u8]])>(kvs: &[(Vec<u8>, Vec<u8>)], mut f: F) {
    let mut i = 0;
    let mut values: Vec<&[u8]> = Vec::new();
    while i < kvs.len() {
        let key = &kvs[i].0;
        values.clear();
        let mut j = i;
        while j < kvs.len() && &kvs[j].0 == key {
            values.push(&kvs[j].1);
            j += 1;
        }
        f(key, &values);
        i = j;
    }
}

/// The pre-rewrite engine, single-threaded: materialized pairs, reduce-side
/// stable sort per partition, task-ordered concatenation.
fn reference_run(job: &Job, records: &[Vec<u8>], split: usize) -> RunSig {
    let mut w = DatasetWriter::new(split);
    for r in records {
        w.push(r);
    }
    let input = w.finish();
    let input_bytes = input.total_bytes() as u64;
    let input_records = input.records as u64;

    // Map phase, in task (= split) order.
    let mut task_pairs: Vec<Vec<(Vec<u8>, Vec<u8>)>> = Vec::new();
    let mut task_records: Vec<Vec<Vec<u8>>> = Vec::new();
    let mut map_output_records = 0u64;
    let mut map_output_bytes = 0u64;
    for block in &input.blocks {
        let mut task = job.mapper.create();
        let mut out = MapOutput::default();
        for rec in rapida_mapred::codec::RecordIter::new(block) {
            task.map(InputSrc { dataset: 0 }, rec, &mut out);
        }
        task.cleanup(&mut out);
        let mut pairs: Vec<(Vec<u8>, Vec<u8>)> = out
            .kvs
            .iter()
            .map(|kv| (kv.key.to_vec(), kv.value.to_vec()))
            .collect();
        map_output_records += pairs.len() as u64;
        map_output_bytes += pairs.iter().map(|(k, v)| (k.len() + v.len()) as u64).sum::<u64>();
        if let (Some(comb), false) = (&job.combiner, job.is_map_only()) {
            if !pairs.is_empty() {
                pairs.sort_by(|a, b| a.0.cmp(&b.0)); // stable, key-only: old contract
                let mut ctask = ReduceTaskFactory::create(comb.as_ref());
                let mut cout = ReduceOutput::default();
                pair_key_groups(&pairs, |key, values| {
                    ctask.reduce(key, values, &mut cout);
                });
                ctask.cleanup(&mut cout);
                pairs = cout
                    .kvs
                    .iter()
                    .map(|kv| (kv.key.to_vec(), kv.value.to_vec()))
                    .collect();
            }
        }
        task_pairs.push(pairs);
        task_records.push(out.records.iter().map(|r| r.to_vec()).collect());
    }

    let mut blocks: Vec<Vec<u8>> = Vec::new();
    let mut block_records: Vec<usize> = Vec::new();
    let mut shuffle_records = 0u64;
    let mut shuffle_bytes = 0u64;
    let mut reduce_tasks = 0usize;
    if job.is_map_only() {
        for recs in &task_records {
            if recs.is_empty() {
                continue;
            }
            let mut bb = BlockBuilder::new();
            for r in recs {
                bb.push(r);
            }
            block_records.push(bb.records());
            blocks.push(bb.finish());
        }
    } else {
        let num_partitions = job.num_reducers.max(1);
        let mut shuffled: Vec<Vec<(Vec<u8>, Vec<u8>)>> =
            (0..num_partitions).map(|_| Vec::new()).collect();
        for pairs in task_pairs {
            for (k, v) in pairs {
                let p = shuffle_partition(&k, num_partitions);
                shuffled[p].push((k, v));
            }
        }
        for p in &mut shuffled {
            p.sort_by(|a, b| a.0.cmp(&b.0)); // stable, key-only: old contract
        }
        shuffle_records = shuffled.iter().map(|p| p.len() as u64).sum();
        shuffle_bytes = shuffled
            .iter()
            .flat_map(|p| p.iter())
            .map(|(k, v)| (k.len() + v.len()) as u64)
            .sum();
        reduce_tasks = shuffled.iter().filter(|p| !p.is_empty()).count();
        let reducer = job.reducer.as_ref().unwrap();
        for kvs in &shuffled {
            if kvs.is_empty() {
                continue;
            }
            let mut task = ReduceTaskFactory::create(reducer.as_ref());
            let mut out = ReduceOutput::default();
            pair_key_groups(kvs, |key, values| {
                task.reduce(key, values, &mut out);
            });
            task.cleanup(&mut out);
            if !out.records.is_empty() {
                let mut bb = BlockBuilder::new();
                for r in out.records.iter() {
                    bb.push(r);
                }
                block_records.push(bb.records());
                blocks.push(bb.finish());
            }
        }
    }

    let records = block_records.iter().sum();
    let output_bytes = blocks.iter().map(|b| b.len() as u64).sum();
    RunSig {
        records,
        block_records,
        map_tasks: input.blocks.len(),
        input_records,
        input_bytes,
        map_output_records,
        map_output_bytes,
        shuffle_records,
        shuffle_bytes,
        reduce_tasks,
        output_records: records as u64,
        output_bytes,
        blocks,
    }
}

/// The real engine under test.
fn engine_run(job: &Job, records: &[Vec<u8>], split: usize, workers: usize) -> RunSig {
    let dfs = SimDfs::new();
    let mut w = DatasetWriter::new(split);
    for r in records {
        w.push(r);
    }
    dfs.put("in", w.finish());
    let engine = Engine::with_workers(dfs.clone(), workers);
    let m = engine.run_job(job);
    let out = dfs.get("out").unwrap();
    RunSig {
        blocks: out.blocks.iter().map(|b| b.as_ref().to_vec()).collect(),
        records: out.records,
        block_records: out.block_records.clone(),
        map_tasks: m.map_tasks,
        input_records: m.input_records,
        input_bytes: m.input_bytes,
        map_output_records: m.map_output_records,
        map_output_bytes: m.map_output_bytes,
        shuffle_records: m.shuffle_records,
        shuffle_bytes: m.shuffle_bytes,
        reduce_tasks: m.reduce_tasks,
        output_records: m.output_records,
        output_bytes: m.output_bytes,
    }
}

proptest! {
    #[test]
    fn arena_shuffle_matches_pair_sort_reference(
        records in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..10), 0..120),
        split in 1usize..96,
        reducers in 1usize..6,
        combiner in any::<bool>(),
        map_only in any::<bool>(),
        workers in 1usize..9,
    ) {
        let job = build_job(combiner, map_only, reducers);
        let expect = reference_run(&job, &records, split);
        let got = engine_run(&job, &records, split, workers);
        prop_assert_eq!(got, expect);
    }
}
