//! Execution determinism: rerunning the same job sequence over the same
//! input must reproduce every measured metric bit-for-bit (everything except
//! wall-clock), regardless of the worker thread count. The cost model's
//! simulated cluster times are derived from these counters, so any
//! scheduling-dependent wobble here would make every paper figure flaky.
//!
//! Also pins the shuffle partitioner contract: FNV-1a over the key bytes,
//! a pure function of (key, reducer count) that spreads distinct keys over
//! every reducer.

use rapida_mapred::engine::shuffle_partition;
use rapida_mapred::{
    DatasetWriter, Engine, FaultPlan, FnMapFactory, FnReduceFactory, InputSrc, JobBuilder,
    JobMetrics, MapOutput, MapTask, ReduceOutput, ReduceTask, SimDfs, WorkflowMetrics,
};
use rapida_testkit::rng::StdRng;
use std::sync::Arc;

/// Emits (word, 1) for every input record.
struct TokenMap;
impl MapTask for TokenMap {
    fn map(&mut self, _src: InputSrc, record: &[u8], out: &mut MapOutput) {
        out.emit(record, &1u32.to_le_bytes());
    }
}

/// Map-only pass that drops records shorter than 2 bytes.
struct FilterMap;
impl MapTask for FilterMap {
    fn map(&mut self, _src: InputSrc, record: &[u8], out: &mut MapOutput) {
        if record.len() >= 2 {
            out.write(record);
        }
    }
}

/// Sums u32 values; writes `key \0 sum` as output or re-emits as combiner.
struct Sum {
    to_output: bool,
}
impl ReduceTask for Sum {
    fn reduce(&mut self, key: &[u8], values: &[&[u8]], out: &mut ReduceOutput) {
        let total: u32 = values
            .iter()
            .map(|v| {
                let mut b = [0u8; 4];
                b.copy_from_slice(v);
                u32::from_le_bytes(b)
            })
            .sum();
        if self.to_output {
            let mut rec = key.to_vec();
            rec.push(0);
            rec.extend_from_slice(&total.to_le_bytes());
            out.write(&rec);
        } else {
            out.emit(key, &total.to_le_bytes());
        }
    }
}

/// A seeded input dataset: ~400 words over a skewed alphabet.
fn seeded_input(dfs: &SimDfs, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = DatasetWriter::new(64);
    for _ in 0..400 {
        let len = rng.gen_range(1usize..=4);
        let word: String = (0..len)
            .map(|_| (b'a' + rng.gen_range(0u8..6)) as char)
            .collect();
        w.push(word.as_bytes());
    }
    dfs.put("in", w.finish());
}

/// The three-cycle workflow under test: map-only filter, combined word
/// count, then a re-aggregation over the counts.
fn workflow() -> Vec<rapida_mapred::Job> {
    vec![
        JobBuilder::new("filter")
            .input("in")
            .mapper(Arc::new(FnMapFactory(|| FilterMap)))
            .output("filtered")
            .build(),
        JobBuilder::new("wc")
            .input("filtered")
            .mapper(Arc::new(FnMapFactory(|| TokenMap)))
            .combiner(Arc::new(FnReduceFactory(|| Sum { to_output: false })))
            .reducer(Arc::new(FnReduceFactory(|| Sum { to_output: true })))
            .output("counts")
            .num_reducers(5)
            .build(),
        JobBuilder::new("regroup")
            .input("counts")
            .mapper(Arc::new(FnMapFactory(|| TokenMap)))
            .reducer(Arc::new(FnReduceFactory(|| Sum { to_output: true })))
            .output("out")
            .num_reducers(3)
            .build(),
    ]
}

/// Every JobMetrics field except `wall`, for exact comparison.
fn signature(m: &JobMetrics) -> (String, bool, usize, usize, [u64; 8]) {
    (
        m.name.clone(),
        m.map_only,
        m.map_tasks,
        m.reduce_tasks,
        [
            m.input_bytes,
            m.input_records,
            m.map_output_records,
            m.map_output_bytes,
            m.shuffle_records,
            m.shuffle_bytes,
            m.output_records,
            m.output_bytes,
        ],
    )
}

fn run_with_workers(seed: u64, workers: usize) -> (WorkflowMetrics, Vec<Vec<u8>>) {
    run_with_faults(seed, workers, None)
}

fn run_with_faults(
    seed: u64,
    workers: usize,
    faults: Option<FaultPlan>,
) -> (WorkflowMetrics, Vec<Vec<u8>>) {
    let dfs = SimDfs::new();
    seeded_input(&dfs, seed);
    let mut engine = Engine::with_workers(dfs.clone(), workers);
    engine.faults = faults;
    let wf = engine.run_workflow(&workflow());
    let out: Vec<Vec<u8>> = dfs
        .get("out")
        .expect("workflow output")
        .iter_records()
        .map(|r| r.to_vec())
        .collect();
    (wf, out)
}

#[test]
fn rerun_reproduces_workflow_metrics_exactly() {
    let (a, out_a) = run_with_workers(7, 4);
    let (b, out_b) = run_with_workers(7, 4);
    assert_eq!(a.jobs.len(), b.jobs.len());
    for (ja, jb) in a.jobs.iter().zip(&b.jobs) {
        assert_eq!(signature(ja), signature(jb), "job {} drifted across reruns", ja.name);
    }
    assert_eq!(out_a, out_b, "output records drifted across reruns");
    // Sanity: the workflow actually exercised all three cycle kinds.
    assert_eq!(a.cycles(), 3);
    assert_eq!(a.map_only_cycles(), 1);
    assert_eq!(a.full_cycles(), 2);
    assert!(a.total_shuffle_bytes() > 0);
}

#[test]
fn metrics_do_not_depend_on_worker_count() {
    let (one, out_one) = run_with_workers(11, 1);
    for workers in [2, 3, 8] {
        let (many, out_many) = run_with_workers(11, workers);
        for (ja, jb) in one.jobs.iter().zip(&many.jobs) {
            assert_eq!(
                signature(ja),
                signature(jb),
                "job {} differs between workers=1 and workers={workers}",
                ja.name
            );
        }
        assert_eq!(out_one, out_many, "output differs at workers={workers}");
    }
}

#[test]
fn outputs_bit_identical_across_workers_with_and_without_faults() {
    // The workers ∈ {1, 2, 8} grid, fault-free and under two fault plans:
    // every combination must reproduce the golden run's committed metrics
    // AND the exact output bytes (block layout included).
    let (golden_wf, golden_out) = run_with_workers(23, 1);
    let plans: [Option<FaultPlan>; 3] = [
        None,
        Some(FaultPlan::chaotic(0xDECAF)),
        Some(FaultPlan {
            lost_node: Some(1),
            ..FaultPlan::failures_only(99, 0.4)
        }),
    ];
    for plan in &plans {
        for workers in [1usize, 2, 8] {
            let (wf, out) = run_with_faults(23, workers, plan.clone());
            for (ja, jb) in golden_wf.jobs.iter().zip(&wf.jobs) {
                assert_eq!(
                    signature(ja),
                    signature(jb),
                    "job {} drifted at workers={workers}, faults={:?}",
                    ja.name,
                    plan.as_ref().map(|p| p.seed)
                );
            }
            assert_eq!(
                golden_out,
                out,
                "output bytes drifted at workers={workers}, faults={:?}",
                plan.as_ref().map(|p| p.seed)
            );
            // Faulted runs must actually have injected something.
            if plan.is_some() {
                assert!(
                    wf.total_retried_attempts() + wf.total_speculative_attempts() > 0,
                    "fault plan injected nothing"
                );
            } else {
                assert_eq!(wf.total_retried_attempts(), 0);
            }
        }
    }
}

#[test]
fn partitioner_covers_all_reducers_on_1k_distinct_keys() {
    let keys: Vec<Vec<u8>> = (0..1500u32)
        .map(|i| format!("key-{i:05}").into_bytes())
        .collect();
    for r in [2usize, 3, 5, 8, 16] {
        let mut hits = vec![0usize; r];
        for k in &keys {
            let p = shuffle_partition(k, r);
            assert!(p < r, "partition {p} out of range for R={r}");
            hits[p] += 1;
        }
        assert!(
            hits.iter().all(|&h| h > 0),
            "empty reduce partition at R={r}: {hits:?}"
        );
    }
}

#[test]
fn partitioner_is_a_pure_function_of_key_and_reducer_count() {
    // Pinned values: the FNV-1a routing is part of the on-disk layout every
    // shuffle-byte baseline depends on. If these change, the shuffle changed.
    assert_eq!(shuffle_partition(b"", 7), shuffle_partition(b"", 7));
    assert_eq!(shuffle_partition(b"subject", 4), 3);
    assert_eq!(shuffle_partition(b"predicate", 4), 2);
    assert_eq!(shuffle_partition(b"object", 4), 2);
    // Degenerate R never panics and always routes to 0.
    assert_eq!(shuffle_partition(b"anything", 0), 0);
    assert_eq!(shuffle_partition(b"anything", 1), 0);
}
