//! Property test for the shard-parallel reduce merge: cutting a partition's
//! sorted runs into key-range shards with [`plan_shards`] and merging each
//! shard independently must reproduce the serial [`merge_key_groups`] pass
//! exactly — same key groups, same value order inside each group, and no
//! key group straddling a shard boundary — for arbitrary run shapes,
//! duplicate-heavy key distributions, empty runs, and degenerate shard
//! counts.

use rapida_testkit::prelude::*;

use rapida_mapred::{merge_key_groups, plan_shards, shard_merge_key_groups, KvBuffer, Run};

/// Build one sorted run from `(key_id, value)` pairs. Keys come from a tiny
/// id space so equal keys frequently cross runs; values are tagged with the
/// run index and insertion order so value-order violations are visible.
fn run_buffer(run_idx: usize, pairs: &[(u8, u8)]) -> KvBuffer {
    let mut kvs = KvBuffer::default();
    for (i, (kid, v)) in pairs.iter().enumerate() {
        // Two-byte key: duplicates both within and across runs.
        kvs.push(&[b'k', kid % 7], &[*v, run_idx as u8, i as u8]);
    }
    kvs.sort_unstable();
    kvs
}

/// One flattened group list: `(key, concatenated values in order)`.
type Groups = Vec<(Vec<u8>, Vec<Vec<u8>>)>;

fn serial_groups(runs: &[Run<'_>]) -> Groups {
    let mut out: Groups = Vec::new();
    merge_key_groups(runs, None, |key, values| {
        out.push((key.to_vec(), values.iter().map(|v| v.to_vec()).collect()));
    });
    out
}

proptest! {
    #[test]
    fn sharded_merge_is_byte_identical_to_serial(
        runs in proptest::collection::vec(
            proptest::collection::vec((any::<u8>(), any::<u8>()), 0..40), 0..6),
        shards in 1usize..8,
    ) {
        let bufs: Vec<KvBuffer> = runs
            .iter()
            .enumerate()
            .map(|(i, pairs)| run_buffer(i, pairs))
            .collect();
        let runs: Vec<Run<'_>> = bufs.iter().map(Run::sorted).collect();
        let serial = serial_groups(&runs);

        // Shard-by-shard merge through the plan, concatenated in shard
        // order, must equal the serial merge...
        let plan = plan_shards(&runs, shards);
        let mut sharded: Groups = Vec::new();
        let mut boundary_keys: Vec<Option<Vec<u8>>> = Vec::new();
        for shard_runs in &plan {
            let mut first_key: Option<Vec<u8>> = None;
            merge_key_groups(shard_runs, None, |key, values| {
                if first_key.is_none() {
                    first_key = Some(key.to_vec());
                }
                sharded.push((key.to_vec(), values.iter().map(|v| v.to_vec()).collect()));
            });
            boundary_keys.push(first_key);
        }
        prop_assert_eq!(&sharded, &serial);

        // ...and no key group may straddle a boundary. A straddled group
        // would surface as two adjacent entries with the same key in the
        // concatenation (the serial merge emits each key once), so adjacent
        // sharded groups must always have strictly increasing keys. The
        // per-shard first keys must be strictly increasing as well.
        for w in sharded.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "adjacent groups share a key: {:?}", w[0].0);
        }
        let firsts: Vec<&Vec<u8>> = boundary_keys.iter().flatten().collect();
        for w in firsts.windows(2) {
            prop_assert!(w[0] < w[1], "shard first keys must strictly increase");
        }

        // The convenience serial driver agrees too, and reports the shard
        // index non-decreasingly.
        let mut driver: Groups = Vec::new();
        let mut last_shard = 0usize;
        let consumed = shard_merge_key_groups(&runs, shards, |s, key, values| {
            assert!(s >= last_shard, "shard order must be non-decreasing");
            last_shard = s;
            driver.push((key.to_vec(), values.iter().map(|v| v.to_vec()).collect()));
        });
        prop_assert_eq!(&driver, &serial);
        prop_assert_eq!(consumed, runs.iter().map(|r| r.len()).sum::<usize>());
    }

    #[test]
    fn empty_and_single_key_runs_never_break_the_plan(
        n_empty in 0usize..4,
        dup_len in 0usize..30,
        shards in 1usize..10,
    ) {
        // Pathological partition: some all-empty runs plus one run whose
        // keys are all identical — no legal cut point exists, so every
        // plan must collapse to one effective shard holding the whole run.
        let mut bufs: Vec<KvBuffer> = (0..n_empty).map(|_| KvBuffer::default()).collect();
        bufs.push(run_buffer(0, &vec![(3u8, 9u8); dup_len]));
        let runs: Vec<Run<'_>> = bufs.iter().map(Run::sorted).collect();
        let serial = serial_groups(&runs);

        let plan = plan_shards(&runs, shards);
        let mut sharded: Groups = Vec::new();
        for shard_runs in &plan {
            merge_key_groups(shard_runs, None, |key, values| {
                sharded.push((key.to_vec(), values.iter().map(|v| v.to_vec()).collect()));
            });
        }
        prop_assert_eq!(&sharded, &serial);
        if dup_len > 0 {
            // All duplicates of the single key stay in one group.
            prop_assert_eq!(sharded.len(), 1);
            prop_assert_eq!(sharded[0].1.len(), dup_len);
        }
    }
}
