//! Chaos suite for the MapReduce simulator itself: sweep fault seeds ×
//! worker counts over a three-cycle workflow and require (a) bit-identical
//! recovery and (b) an honest attempt ledger with correspondingly higher
//! simulated cost.
//!
//! Sweep width is tunable via `RAPIDA_CHAOS_SEEDS` (see
//! `rapida_testkit::chaos`); `scripts/verify.sh` runs this file as its
//! chaos smoke pass.

use rapida_mapred::{
    ClusterModel, DatasetWriter, Engine, FaultPlan, FnMapFactory, FnReduceFactory, InputSrc,
    JobBuilder, KeyLocal, MapOutput, MapTask, ReduceOutput, ReduceTask, SimDfs, WorkflowMetrics,
};
use rapida_testkit::chaos;
use rapida_testkit::chaos::{ChaosConfig, Scenario};
use rapida_testkit::rng::StdRng;
use std::sync::Arc;

/// Emits (word, 1) for every input record.
struct TokenMap;
impl MapTask for TokenMap {
    fn map(&mut self, _src: InputSrc, record: &[u8], out: &mut MapOutput) {
        out.emit(record, &1u32.to_le_bytes());
    }
}

/// Map-only pass that drops records shorter than 2 bytes.
struct FilterMap;
impl MapTask for FilterMap {
    fn map(&mut self, _src: InputSrc, record: &[u8], out: &mut MapOutput) {
        if record.len() >= 2 {
            out.write(record);
        }
    }
}

/// Shuffle-heavy mapper: emits one pair per byte of the record (so every
/// map task produces several sorted runs with heavy key overlap) plus a
/// per-record length marker — exercises the loser-tree run merge with
/// many equal keys spread across every task.
struct FanoutMap;
impl MapTask for FanoutMap {
    fn map(&mut self, _src: InputSrc, record: &[u8], out: &mut MapOutput) {
        for &b in record {
            out.emit(&[b], &1u32.to_le_bytes());
        }
        out.emit(&[b'L', record.len() as u8], &1u32.to_le_bytes());
    }
}

/// Sums u32 values; writes `key \0 sum` as output or re-emits as combiner.
struct Sum {
    to_output: bool,
}
impl ReduceTask for Sum {
    fn reduce(&mut self, key: &[u8], values: &[&[u8]], out: &mut ReduceOutput) {
        let total: u32 = values
            .iter()
            .map(|v| {
                let mut b = [0u8; 4];
                b.copy_from_slice(v);
                u32::from_le_bytes(b)
            })
            .sum();
        if self.to_output {
            let mut rec = key.to_vec();
            rec.push(0);
            rec.extend_from_slice(&total.to_le_bytes());
            out.write(&rec);
        } else {
            out.emit(key, &total.to_le_bytes());
        }
    }
}

/// The three-cycle workflow: map-only filter → combined word count →
/// re-aggregation (same shape as the determinism suite's).
fn workflow() -> Vec<rapida_mapred::Job> {
    vec![
        JobBuilder::new("filter")
            .input("in")
            .mapper(Arc::new(FnMapFactory(|| FilterMap)))
            .output("filtered")
            .build(),
        JobBuilder::new("wc")
            .input("filtered")
            .mapper(Arc::new(FnMapFactory(|| TokenMap)))
            .combiner(Arc::new(FnReduceFactory(|| Sum { to_output: false })))
            .reducer(Arc::new(FnReduceFactory(|| Sum { to_output: true })))
            .output("counts")
            .num_reducers(5)
            .build(),
        JobBuilder::new("regroup")
            .input("counts")
            .mapper(Arc::new(FnMapFactory(|| TokenMap)))
            .reducer(Arc::new(FnReduceFactory(|| Sum { to_output: true })))
            .output("out")
            .num_reducers(3)
            .build(),
    ]
}

/// Run the workflow under a scenario; returns full workflow metrics plus
/// the output dataset's exact block bytes.
fn run(scenario: &Scenario, plan_of: impl Fn(u64) -> FaultPlan) -> (WorkflowMetrics, Vec<Vec<u8>>) {
    let dfs = SimDfs::new();
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let mut w = DatasetWriter::new(64);
    for _ in 0..400 {
        let len = rng.gen_range(1usize..=4);
        let word: String = (0..len)
            .map(|_| (b'a' + rng.gen_range(0u8..6)) as char)
            .collect();
        w.push(word.as_bytes());
    }
    dfs.put("in", w.finish());
    let mut engine = Engine::with_workers(dfs.clone(), scenario.workers);
    engine.faults = scenario.fault_seed.map(plan_of);
    let wf = engine.run_workflow(&workflow());
    let blocks: Vec<Vec<u8>> = dfs
        .get("out")
        .expect("workflow output")
        .blocks
        .iter()
        .map(|b| b.as_ref().to_vec())
        .collect();
    (wf, blocks)
}

/// The committed (data-flow) portion of the metrics: everything the cost
/// of a *fault-free* run depends on. Attempt counters are deliberately
/// excluded — they are supposed to differ across scenarios.
fn committed_signature(wf: &WorkflowMetrics) -> Vec<(String, bool, usize, usize, [u64; 8])> {
    wf.jobs
        .iter()
        .map(|m| {
            (
                m.name.clone(),
                m.map_only,
                m.map_tasks,
                m.reduce_tasks,
                [
                    m.input_bytes,
                    m.input_records,
                    m.map_output_records,
                    m.map_output_bytes,
                    m.shuffle_records,
                    m.shuffle_bytes,
                    m.output_records,
                    m.output_bytes,
                ],
            )
        })
        .collect()
}

chaos! {
    /// Output blocks and committed metrics are identical across the whole
    /// seed × worker grid under the aggressive chaotic preset.
    fn workflow_survives_chaotic_faults(scenario) {
        let (wf, blocks) = run(scenario, FaultPlan::chaotic);
        (committed_signature(&wf), blocks)
    }

    /// Same, under pure failures at a high rate (no stragglers).
    fn workflow_survives_pure_failures(scenario) {
        let (wf, blocks) = run(scenario, |seed| FaultPlan::failures_only(seed, 0.5));
        (committed_signature(&wf), blocks)
    }

    /// Same, losing a whole node on top of background failures, with
    /// speculation disabled.
    fn workflow_survives_node_loss_without_speculation(scenario) {
        let (wf, blocks) = run(scenario, |seed| FaultPlan {
            lost_node: Some((seed % 8) as usize),
            speculation: false,
            straggler_p: 0.2,
            straggler_slowdown: 5.0,
            ..FaultPlan::failures_only(seed, 0.3)
        });
        (committed_signature(&wf), blocks)
    }

    /// Shard-parallel reduce merge under reduce-side chaos: a key-local
    /// reducer over a partition big enough to shard, with reduce attempts
    /// failing at a high rate — so doomed attempts (serial full-partition
    /// merges) and committed shard merges interleave on the pool. Recovery
    /// must be byte-identical to the fault-free golden at every worker
    /// count and seed.
    fn sharded_reduce_survives_mid_merge_faults(scenario) {
        let (wf, blocks) = run_sharded(scenario, |seed| FaultPlan {
            map_fail_p: 0.05,
            reduce_fail_p: 0.7,
            straggler_p: 0.3,
            straggler_slowdown: 5.0,
            speculation: true,
            ..FaultPlan::new(seed)
        });
        (committed_signature(&wf), blocks)
    }

    /// Read-path corruption only: DFS block reads and shuffle spill runs
    /// flip bits at a high rate, but with checksums on (the default) every
    /// corruption is detected and quarantined — the committed output must
    /// be bit-identical to the fault-free golden, with zero silent
    /// corruptions, at every seed and worker count.
    fn workflow_survives_read_corruption(scenario) {
        let (wf, blocks) = run(scenario, FaultPlan::corrupting);
        assert_eq!(
            wf.total_silent_corruptions(), 0,
            "[{}] corruption slipped past the checksum gate", scenario.label()
        );
        (committed_signature(&wf), blocks)
    }

    /// Sorted-run merge under map-side chaos only: a shuffle-heavy job
    /// (several emitted pairs per record, runs overlapping on every key)
    /// where map attempts fail or straggle but reduce tasks never do.
    /// Killed map attempts re-emit into fresh arenas; the committed runs —
    /// and therefore the merged reduce input — must be bit-identical to the
    /// fault-free golden.
    fn run_merge_survives_map_failures_and_stragglers(scenario) {
        let (wf, blocks) = run_fanout(scenario, |seed| FaultPlan {
            map_fail_p: 0.6,
            reduce_fail_p: 0.0,
            straggler_p: 0.4,
            straggler_slowdown: 6.0,
            speculation: true,
            ..FaultPlan::new(seed)
        });
        (committed_signature(&wf), blocks)
    }
}

/// Like [`run`], but over the shuffle-heavy [`FanoutMap`] workflow: a
/// combined fan-out count followed by a regrouping cycle, 7 then 2
/// reducers so partitions see many runs each.
fn run_fanout(
    scenario: &Scenario,
    plan_of: impl Fn(u64) -> FaultPlan,
) -> (WorkflowMetrics, Vec<Vec<u8>>) {
    let dfs = SimDfs::new();
    let mut rng = StdRng::seed_from_u64(0xFA57);
    let mut w = DatasetWriter::new(48);
    for _ in 0..300 {
        let len = rng.gen_range(1usize..=5);
        let word: Vec<u8> = (0..len).map(|_| b'a' + rng.gen_range(0u8..4)).collect();
        w.push(&word);
    }
    dfs.put("in", w.finish());
    let jobs = vec![
        JobBuilder::new("fanout")
            .input("in")
            .mapper(Arc::new(FnMapFactory(|| FanoutMap)))
            .combiner(Arc::new(FnReduceFactory(|| Sum { to_output: false })))
            .reducer(Arc::new(FnReduceFactory(|| Sum { to_output: true })))
            .output("counts")
            .num_reducers(7)
            .build(),
        JobBuilder::new("regroup")
            .input("counts")
            .mapper(Arc::new(FnMapFactory(|| TokenMap)))
            .reducer(Arc::new(FnReduceFactory(|| Sum { to_output: true })))
            .output("out")
            .num_reducers(2)
            .build(),
    ];
    let mut engine = Engine::with_workers(dfs.clone(), scenario.workers);
    engine.faults = scenario.fault_seed.map(plan_of);
    let wf = engine.run_workflow(&jobs);
    let blocks: Vec<Vec<u8>> = dfs
        .get("out")
        .expect("workflow output")
        .blocks
        .iter()
        .map(|b| b.as_ref().to_vec())
        .collect();
    (wf, blocks)
}

/// Bigram counter: emits a 2-byte key per adjacent byte pair — a wider key
/// space than [`FanoutMap`], so [`rapida_mapred::plan_shards`] has real cut
/// points to work with.
struct BigramMap;
impl MapTask for BigramMap {
    fn map(&mut self, _src: InputSrc, record: &[u8], out: &mut MapOutput) {
        for w in record.windows(2) {
            out.emit(w, &1u32.to_le_bytes());
        }
    }
}

/// Like [`run`], but a single-cycle bigram count sized past the engine's
/// shard floor (≥ 4096 records per partition), with the reducer declared
/// key-local so committed merges genuinely shard.
fn run_sharded(
    scenario: &Scenario,
    plan_of: impl Fn(u64) -> FaultPlan,
) -> (WorkflowMetrics, Vec<Vec<u8>>) {
    let dfs = SimDfs::new();
    let mut rng = StdRng::seed_from_u64(0xB16);
    let mut w = DatasetWriter::new(2048);
    for _ in 0..2500 {
        let len = rng.gen_range(4usize..=9);
        let word: Vec<u8> = (0..len).map(|_| b'a' + rng.gen_range(0u8..12)).collect();
        w.push(&word);
    }
    dfs.put("in", w.finish());
    let jobs = vec![JobBuilder::new("bigrams")
        .input("in")
        .mapper(Arc::new(FnMapFactory(|| BigramMap)))
        .reducer(Arc::new(KeyLocal(FnReduceFactory(|| Sum { to_output: true }))))
        .output("out")
        .num_reducers(2)
        .build()];
    let mut engine = Engine::with_workers(dfs.clone(), scenario.workers);
    engine.faults = scenario.fault_seed.map(plan_of);
    let wf = engine.run_workflow(&jobs);
    let blocks: Vec<Vec<u8>> = dfs
        .get("out")
        .expect("workflow output")
        .blocks
        .iter()
        .map(|b| b.as_ref().to_vec())
        .collect();
    (wf, blocks)
}

/// Under reduce-side chaos the entire attempt ledger — including wasted
/// output bytes, which are *measured during execution* — must be identical
/// at every worker count, because doomed and superseded attempts always run
/// the serial full-partition merge regardless of how committed merges shard.
#[test]
fn sharded_reduce_ledger_is_worker_count_independent() {
    let cfg = ChaosConfig::from_env();
    let plan_of = |seed: u64| FaultPlan {
        reduce_fail_p: 0.7,
        straggler_p: 0.3,
        straggler_slowdown: 5.0,
        speculation: true,
        ..FaultPlan::new(seed)
    };
    for seed in &cfg.seeds {
        let ledgers: Vec<Vec<(u64, u64, u64, u64, u64, String)>> = [1usize, 2, 4, 8]
            .iter()
            .map(|&workers| {
                let s = Scenario {
                    fault_seed: Some(*seed),
                    workers,
                };
                let (wf, _) = run_sharded(&s, plan_of);
                wf.jobs
                    .iter()
                    .map(|j| {
                        (
                            j.task_attempts(),
                            j.failed_attempts,
                            j.wasted_input_records,
                            j.wasted_output_bytes,
                            j.speculative_attempts,
                            format!("{:.6}", j.backoff_s),
                        )
                    })
                    .collect()
            })
            .collect();
        for l in &ledgers[1..] {
            assert_eq!(
                l, &ledgers[0],
                "seed {seed:#x}: fault ledger drifted with worker count"
            );
        }
        let extra: u64 = {
            let s = Scenario {
                fault_seed: Some(*seed),
                workers: 8,
            };
            let (wf, _) = run_sharded(&s, plan_of);
            assert_eq!(
                wf.jobs.iter().map(|j| j.extra_attempts()).sum::<u64>(),
                wf.total_retried_attempts() + wf.total_speculative_attempts(),
                "seed {seed:#x}: attempt ledger must balance"
            );
            wf.total_retried_attempts() + wf.total_speculative_attempts()
        };
        assert!(extra > 0, "seed {seed:#x}: reduce chaos injected nothing");
    }
}

/// The integrity ledger — corrupt blocks/spills detected, bytes re-read
/// from replicas, malformed records skipped — must be identical at every
/// worker count: block corruption is decided during the serial split
/// gather, spill corruption in a serial verify-on-commit pass, and record
/// skips only on committed attempts. The sweep as a whole must actually
/// detect something, and nothing may slip through silently.
#[test]
fn corruption_ledger_is_worker_count_independent_and_detects() {
    let cfg = ChaosConfig::from_env();
    for seed in &cfg.seeds {
        let ledgers: Vec<Vec<(u64, u64, u64, u64)>> = [1usize, 2, 4, 8]
            .iter()
            .map(|&workers| {
                let s = Scenario {
                    fault_seed: Some(*seed),
                    workers,
                };
                let (wf, _) = run(&s, FaultPlan::corrupting);
                assert_eq!(
                    wf.total_silent_corruptions(),
                    0,
                    "seed {seed:#x}/{workers}w: silent corruption under checksums"
                );
                wf.jobs
                    .iter()
                    .map(|j| {
                        (
                            j.corrupt_blocks_detected,
                            j.corrupt_spills_detected,
                            j.integrity_reread_bytes,
                            j.corrupt_records_skipped,
                        )
                    })
                    .collect()
            })
            .collect();
        for l in &ledgers[1..] {
            assert_eq!(
                l, &ledgers[0],
                "seed {seed:#x}: integrity ledger drifted with worker count"
            );
        }
        let detected: u64 = ledgers[0]
            .iter()
            .map(|(blocks, spills, _, _)| blocks + spills)
            .sum();
        assert!(detected > 0, "seed {seed:#x}: corrupting plan injected nothing");
    }
}

/// Faulted runs must report the chaos they absorbed — retries and/or
/// speculative attempts — and the cost model must charge for it.
#[test]
fn faulted_runs_ledger_attempts_and_cost_more() {
    let model = ClusterModel::nodes10();
    let cfg = ChaosConfig::from_env();
    let clean = Scenario {
        fault_seed: None,
        workers: 4,
    };
    let (clean_wf, _) = run(&clean, FaultPlan::chaotic);
    assert_eq!(clean_wf.total_retried_attempts(), 0);
    assert_eq!(clean_wf.total_speculative_attempts(), 0);
    assert_eq!(
        clean_wf.total_task_attempts(),
        clean_wf
            .jobs
            .iter()
            .map(|j| (j.map_tasks + j.reduce_tasks) as u64)
            .sum::<u64>()
    );
    let clean_cost = model.workflow_time(&clean_wf);

    for seed in &cfg.seeds {
        let s = Scenario {
            fault_seed: Some(*seed),
            workers: 4,
        };
        let (wf, _) = run(&s, FaultPlan::chaotic);
        let extra: u64 = wf.jobs.iter().map(|j| j.extra_attempts()).sum();
        assert!(
            wf.total_retried_attempts() + wf.total_speculative_attempts() > 0,
            "seed {seed:#x}: chaotic plan injected nothing"
        );
        assert_eq!(
            extra,
            wf.total_retried_attempts() + wf.total_speculative_attempts(),
            "attempt ledger must balance"
        );
        assert!(
            model.workflow_time(&wf) > clean_cost,
            "seed {seed:#x}: faulted cost not above fault-free cost"
        );
    }
}

/// The chaos sweep macro re-exported path works (`rapida_testkit::chaos`
/// as both module and macro) — compile-time check via an explicit call.
#[test]
fn sweep_callable_directly() {
    chaos::sweep(
        "direct",
        &ChaosConfig::with_seed_count(1),
        |s| {
            let (wf, blocks) = run(s, FaultPlan::chaotic);
            (committed_signature(&wf), blocks)
        },
    );
}
