//! Deterministic cost-model unit tests backing the plan enumerator: the
//! orderings the chooser relies on must hold exactly — more shuffled bytes,
//! more records, and more cycles each cost strictly more, and the paper's
//! cluster presets (nodes10 / nodes50 / nodes60) rank as expected on jobs
//! big enough to saturate the smaller cluster.

use rapida_mapred::{ClusterModel, JobMetrics, WorkflowMetrics};

/// A mid-size full MR job; knobs for the dimension under test.
fn job() -> JobMetrics {
    JobMetrics {
        name: "j".into(),
        map_only: false,
        map_tasks: 16,
        reduce_tasks: 8,
        input_bytes: 64 << 20,
        input_records: 1_000_000,
        map_output_records: 1_000_000,
        map_output_bytes: 32 << 20,
        shuffle_records: 1_000_000,
        shuffle_bytes: 32 << 20,
        output_records: 100_000,
        output_bytes: 4 << 20,
        ..Default::default()
    }
}

#[test]
fn strictly_monotone_in_shuffle_bytes() {
    let model = ClusterModel::nodes10();
    let mut prev = f64::NEG_INFINITY;
    for mb in [1u64, 8, 64, 256, 1024] {
        let mut j = job();
        j.shuffle_bytes = mb << 20;
        j.map_output_bytes = mb << 20;
        let t = model.job_time(&j);
        assert!(
            t > prev,
            "job_time must strictly increase with shuffle bytes ({mb} MiB: {t:.3}s <= {prev:.3}s)"
        );
        prev = t;
    }
}

#[test]
fn strictly_monotone_in_record_counts() {
    let model = ClusterModel::nodes10();
    let mut prev = f64::NEG_INFINITY;
    for n in [10_000u64, 100_000, 1_000_000, 10_000_000, 100_000_000] {
        let mut j = job();
        j.input_records = n;
        j.map_output_records = n;
        j.shuffle_records = n;
        let t = model.job_time(&j);
        assert!(
            t > prev,
            "job_time must strictly increase with record counts ({n} recs: {t:.3}s <= {prev:.3}s)"
        );
        prev = t;
    }
}

#[test]
fn strictly_monotone_in_input_bytes() {
    let model = ClusterModel::nodes10();
    let mut prev = f64::NEG_INFINITY;
    for mb in [1u64, 16, 128, 512, 2048] {
        let mut j = job();
        j.input_bytes = mb << 20;
        let t = model.job_time(&j);
        assert!(t > prev, "job_time must strictly increase with input bytes");
        prev = t;
    }
}

/// Every extra MR cycle pays at least the full job startup — the term that
/// makes the paper's cycle-count reduction the dominant optimization.
#[test]
fn workflow_time_monotone_in_cycle_count() {
    let model = ClusterModel::nodes10();
    let mut prev = 0.0;
    for cycles in 1..=8 {
        let wf = WorkflowMetrics {
            jobs: (0..cycles).map(|_| job()).collect(),
            ..Default::default()
        };
        let t = model.workflow_time(&wf);
        assert!(
            t >= prev + model.job_startup_s,
            "cycle {cycles} must add at least startup ({:.1}s): {t:.3}s vs {prev:.3}s",
            model.job_startup_s
        );
        prev = t;
    }
}

/// The paper's three cluster presets rank 10 > 50 > 60 (slower to faster)
/// on a job large enough to fill every cluster's slots.
#[test]
fn cluster_presets_rank_on_saturating_jobs() {
    let big = JobMetrics {
        name: "big".into(),
        map_only: false,
        map_tasks: 600,
        reduce_tasks: 200,
        input_bytes: 8 << 30,
        input_records: 100_000_000,
        map_output_records: 100_000_000,
        map_output_bytes: 4 << 30,
        shuffle_records: 100_000_000,
        shuffle_bytes: 4 << 30,
        output_records: 10_000_000,
        output_bytes: 1 << 30,
        ..Default::default()
    };
    let t10 = ClusterModel::nodes10().job_time(&big);
    let t50 = ClusterModel::nodes50().job_time(&big);
    let t60 = ClusterModel::nodes60().job_time(&big);
    assert!(
        t10 > t50 && t50 > t60,
        "expected nodes10 ({t10:.1}s) > nodes50 ({t50:.1}s) > nodes60 ({t60:.1}s)"
    );
}

/// On a tiny job the presets converge: startup dominates and extra nodes
/// cannot help, so the enumerator's choice is scale-aware, not node-aware.
#[test]
fn presets_converge_on_startup_bound_jobs() {
    let tiny = JobMetrics {
        name: "tiny".into(),
        map_only: false,
        map_tasks: 1,
        reduce_tasks: 1,
        input_bytes: 4 << 10,
        input_records: 100,
        map_output_records: 100,
        map_output_bytes: 2 << 10,
        shuffle_records: 100,
        shuffle_bytes: 2 << 10,
        output_records: 10,
        output_bytes: 512,
        ..Default::default()
    };
    let t10 = ClusterModel::nodes10().job_time(&tiny);
    let t60 = ClusterModel::nodes60().job_time(&tiny);
    assert!((t10 - t60).abs() < 0.5, "tiny jobs are startup-bound on any cluster");
}

/// Map-only cycles skip shuffle and reduce entirely; converting a full
/// cycle to map-only (the map-join rewrite) must always pay off on equal
/// data volumes.
#[test]
fn map_only_conversion_always_pays_on_equal_volumes() {
    let model = ClusterModel::nodes10();
    for mb in [1u64, 32, 256] {
        let mut full = job();
        full.shuffle_bytes = mb << 20;
        full.map_output_bytes = mb << 20;
        let mut mo = full.clone();
        mo.map_only = true;
        mo.shuffle_bytes = 0;
        mo.shuffle_records = 0;
        mo.reduce_tasks = 0;
        assert!(
            model.job_time(&mo) < model.job_time(&full),
            "map-only must be cheaper at {mb} MiB"
        );
    }
}
