//! Property tests for the cluster cost model: monotonicity in every input
//! dimension and sane composition over workflows.

use rapida_testkit::prelude::*;
use rapida_mapred::{ClusterModel, JobMetrics, WorkflowMetrics};

fn arb_job() -> impl Strategy<Value = JobMetrics> {
    (
        any::<bool>(),
        1usize..200,
        1usize..40,
        0u64..(1 << 30),
        0u64..(1 << 24),
        0u64..(1 << 28),
        0u64..(1 << 26),
    )
        .prop_map(
            |(map_only, map_tasks, reduce_tasks, input_bytes, records, shuffle, out)| JobMetrics {
                name: "j".into(),
                map_only,
                map_tasks,
                reduce_tasks,
                input_bytes,
                input_records: records,
                map_output_records: records,
                map_output_bytes: shuffle,
                shuffle_records: records,
                shuffle_bytes: shuffle,
                output_records: records / 2,
                output_bytes: out,
                wall: Default::default(),
            },
        )
}

proptest! {
    /// Times are positive, at least the startup cost, and finite.
    #[test]
    fn job_time_is_sane(job in arb_job()) {
        let m = ClusterModel::nodes10();
        let t = m.job_time(&job);
        prop_assert!(t.is_finite());
        prop_assert!(t >= m.job_startup_s);
        prop_assert!(t < 1e9, "bounded for bounded inputs");
    }

    /// More input bytes never makes a job cheaper.
    #[test]
    fn monotone_in_input_bytes(job in arb_job(), extra in 0u64..(1 << 30)) {
        let m = ClusterModel::nodes10();
        let mut bigger = job.clone();
        bigger.input_bytes += extra;
        prop_assert!(m.job_time(&bigger) >= m.job_time(&job) - 1e-9);
    }

    /// More shuffle bytes never makes a shuffling job cheaper.
    #[test]
    fn monotone_in_shuffle_bytes(job in arb_job(), extra in 0u64..(1 << 30)) {
        let m = ClusterModel::nodes10();
        let mut bigger = job.clone();
        bigger.shuffle_bytes += extra;
        prop_assert!(m.job_time(&bigger) >= m.job_time(&job) - 1e-9);
    }

    /// Workflow time is the sum of job times (sequential stages).
    #[test]
    fn workflow_time_is_sum(jobs in proptest::collection::vec(arb_job(), 0..6)) {
        let m = ClusterModel::nodes60();
        let wf = WorkflowMetrics { jobs: jobs.clone() };
        let total = m.workflow_time(&wf);
        let sum: f64 = jobs.iter().map(|j| m.job_time(j)).sum();
        prop_assert!((total - sum).abs() < 1e-9);
    }

    /// A bigger cluster is never slower (for equal metrics).
    #[test]
    fn bigger_cluster_not_slower(job in arb_job()) {
        let t10 = ClusterModel::nodes10().job_time(&job);
        let t60 = ClusterModel::nodes60().job_time(&job);
        prop_assert!(t60 <= t10 + 1e-9);
    }

    /// Scaling the data scales the variable part of the cost and leaves the
    /// fixed part alone.
    #[test]
    fn data_scale_monotone(job in arb_job(), scale in 1.0f64..100.0) {
        let base = ClusterModel::nodes10();
        let mut scaled = base;
        scaled.data_scale = scale;
        prop_assert!(scaled.job_time(&job) >= base.job_time(&job) - 1e-9);
    }
}
