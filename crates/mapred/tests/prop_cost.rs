//! Property tests for the cluster cost model: monotonicity in every input
//! dimension — including the fault dimensions — and sane composition over
//! workflows.

use rapida_mapred::job::{InputSrc, MapOutput, MapTask, ReduceOutput, ReduceTask};
use rapida_mapred::{
    ClusterModel, DatasetWriter, Engine, FaultPlan, FnMapFactory, FnReduceFactory, JobBuilder,
    JobMetrics, SimDfs, WorkflowMetrics,
};
use rapida_testkit::prelude::*;
use rapida_testkit::rng::StdRng;
use std::sync::Arc;

fn arb_job() -> impl Strategy<Value = JobMetrics> {
    (
        any::<bool>(),
        1usize..200,
        1usize..40,
        0u64..(1 << 30),
        0u64..(1 << 24),
        0u64..(1 << 28),
        0u64..(1 << 26),
    )
        .prop_map(
            |(map_only, map_tasks, reduce_tasks, input_bytes, records, shuffle, out)| JobMetrics {
                name: "j".into(),
                map_only,
                map_tasks,
                reduce_tasks,
                input_bytes,
                input_records: records,
                map_output_records: records,
                map_output_bytes: shuffle,
                shuffle_records: records,
                shuffle_bytes: shuffle,
                output_records: records / 2,
                output_bytes: out,
                ..Default::default()
            },
        )
}

proptest! {
    /// Times are positive, at least the startup cost, and finite.
    #[test]
    fn job_time_is_sane(job in arb_job()) {
        let m = ClusterModel::nodes10();
        let t = m.job_time(&job);
        prop_assert!(t.is_finite());
        prop_assert!(t >= m.job_startup_s);
        prop_assert!(t < 1e9, "bounded for bounded inputs");
    }

    /// More input bytes never makes a job cheaper.
    #[test]
    fn monotone_in_input_bytes(job in arb_job(), extra in 0u64..(1 << 30)) {
        let m = ClusterModel::nodes10();
        let mut bigger = job.clone();
        bigger.input_bytes += extra;
        prop_assert!(m.job_time(&bigger) >= m.job_time(&job) - 1e-9);
    }

    /// More shuffle bytes never makes a shuffling job cheaper.
    #[test]
    fn monotone_in_shuffle_bytes(job in arb_job(), extra in 0u64..(1 << 30)) {
        let m = ClusterModel::nodes10();
        let mut bigger = job.clone();
        bigger.shuffle_bytes += extra;
        prop_assert!(m.job_time(&bigger) >= m.job_time(&job) - 1e-9);
    }

    /// Workflow time is the sum of job times (sequential stages).
    #[test]
    fn workflow_time_is_sum(jobs in proptest::collection::vec(arb_job(), 0..6)) {
        let m = ClusterModel::nodes60();
        let wf = WorkflowMetrics { jobs: jobs.clone(), ..Default::default() };
        let total = m.workflow_time(&wf);
        let sum: f64 = jobs.iter().map(|j| m.job_time(j)).sum();
        prop_assert!((total - sum).abs() < 1e-9);
    }

    /// A bigger cluster is never slower (for equal metrics).
    #[test]
    fn bigger_cluster_not_slower(job in arb_job()) {
        let t10 = ClusterModel::nodes10().job_time(&job);
        let t60 = ClusterModel::nodes60().job_time(&job);
        prop_assert!(t60 <= t10 + 1e-9);
    }

    /// Scaling the data scales the variable part of the cost and leaves the
    /// fixed part alone.
    #[test]
    fn data_scale_monotone(job in arb_job(), scale in 1.0f64..100.0) {
        let base = ClusterModel::nodes10();
        let mut scaled = base;
        scaled.data_scale = scale;
        prop_assert!(scaled.job_time(&job) >= base.job_time(&job) - 1e-9);
    }

    /// Piling fault counters onto a job never makes it cheaper: every
    /// overhead term is non-negative, so faults can only add cost.
    #[test]
    fn monotone_in_fault_counters(
        job in arb_job(),
        failed in 0u64..20,
        wasted_rec in 0u64..(1 << 20),
        wasted_bytes in 0u64..(1 << 26),
        backoff in 0.0f64..600.0,
        stragglers in 0u64..20,
    ) {
        let m = ClusterModel::nodes10();
        let mut faulty = job.clone();
        faulty.map_attempts = job.map_tasks as u64 + failed;
        faulty.reduce_attempts = job.reduce_tasks as u64;
        faulty.failed_attempts = failed;
        faulty.wasted_input_records += wasted_rec;
        faulty.wasted_output_bytes += wasted_bytes;
        faulty.backoff_s += backoff;
        faulty.straggler_tasks += stragglers;
        prop_assert!(m.job_time(&faulty) >= m.job_time(&job) - 1e-9);
        prop_assert!(m.fault_overhead(&faulty) >= m.fault_overhead(&job) - 1e-9);
    }
}

// ---------------------------------------------------------------------------
// Executed fault ladder: run a real workflow under increasing injected
// failure rates and check simulated seconds never decrease.
// ---------------------------------------------------------------------------

struct WcMap;
impl MapTask for WcMap {
    fn map(&mut self, _src: InputSrc, record: &[u8], out: &mut MapOutput) {
        out.emit(record, &[1]);
    }
}

struct WcReduce;
impl ReduceTask for WcReduce {
    fn reduce(&mut self, key: &[u8], values: &[&[u8]], out: &mut ReduceOutput) {
        let mut rec = key.to_vec();
        rec.push(b'=');
        rec.extend_from_slice(values.len().to_string().as_bytes());
        out.write(&rec);
    }
}

/// Run the fixed wordcount workload under `plan`, returning its simulated
/// cluster seconds.
fn ladder_cost(plan: Option<FaultPlan>) -> f64 {
    let dfs = SimDfs::new();
    let mut w = DatasetWriter::new(16);
    let mut rng = StdRng::seed_from_u64(0xFA17);
    for _ in 0..400 {
        w.push(format!("w{}", rng.below(40)).as_bytes());
    }
    dfs.put("in", w.finish());
    let job = JobBuilder::new("ladder-wc")
        .input("in")
        .mapper(Arc::new(FnMapFactory(|| WcMap)))
        .reducer(Arc::new(FnReduceFactory(|| WcReduce)))
        .output("out")
        .num_reducers(4)
        .build();
    let mut engine = Engine::pinned(dfs);
    engine.faults = plan;
    let wf = engine.run_workflow(&[job]);
    ClusterModel::nodes10().workflow_time(&wf)
}

/// Simulated seconds are monotonically non-decreasing in the injected
/// failure rate: with a fixed seed the set of failing attempts at a lower
/// rate is a subset of the set at a higher rate (threshold comparison
/// against the same per-attempt hashes), and each failed attempt only adds
/// non-negative overhead.
#[test]
fn simulated_seconds_monotone_in_injected_fault_rate() {
    for seed in [1u64, 9, 77] {
        let mut prev = ladder_cost(None);
        for p in [0.0, 0.15, 0.3, 0.45, 0.6, 0.75] {
            let cost = ladder_cost(Some(FaultPlan::failures_only(seed, p)));
            assert!(
                cost >= prev - 1e-9,
                "seed {seed}: cost at p={p} ({cost}) below previous ({prev})"
            );
            prev = cost;
        }
    }
}
