//! Property tests for the MapReduce substrate: codec round-trips, dataset
//! integrity across arbitrary split sizes, and a full MapReduce word count
//! checked against an in-memory oracle (with and without combiner, across
//! reducer counts).

use rapida_testkit::prelude::*;
use rapida_mapred::codec::{
    read_bytes, read_f64, read_u64_list, read_varint, write_bytes, write_f64, write_u64_list,
    write_varint, BlockBuilder, RecordIter,
};
use rapida_mapred::{
    DatasetWriter, Engine, FnMapFactory, FnReduceFactory, InputSrc, JobBuilder, MapOutput,
    MapTask, ReduceOutput, ReduceTask, SimDfs,
};
use std::collections::HashMap;
use std::sync::Arc;

proptest! {
    #[test]
    fn varint_roundtrip(v in any::<u64>()) {
        let mut buf = Vec::new();
        write_varint(&mut buf, v);
        let mut s = buf.as_slice();
        prop_assert_eq!(read_varint(&mut s), Some(v));
        prop_assert!(s.is_empty());
    }

    #[test]
    fn mixed_codec_roundtrip(
        v in any::<u64>(),
        f in any::<f64>(),
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
        list in proptest::collection::vec(any::<u64>(), 0..16),
    ) {
        let mut buf = Vec::new();
        write_varint(&mut buf, v);
        write_f64(&mut buf, f);
        write_bytes(&mut buf, &bytes);
        write_u64_list(&mut buf, &list);
        let mut s = buf.as_slice();
        prop_assert_eq!(read_varint(&mut s), Some(v));
        let back = read_f64(&mut s).unwrap();
        prop_assert!(back == f || (back.is_nan() && f.is_nan()));
        prop_assert_eq!(read_bytes(&mut s), Some(bytes.as_slice()));
        prop_assert_eq!(read_u64_list(&mut s), Some(list));
        prop_assert!(s.is_empty());
    }

    #[test]
    fn block_preserves_records(
        records in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..32), 0..40)
    ) {
        let mut b = BlockBuilder::new();
        for r in &records {
            b.push(r);
        }
        let block = b.finish();
        let back: Vec<Vec<u8>> = RecordIter::new(&block).map(|r| r.to_vec()).collect();
        prop_assert_eq!(back, records);
    }

    #[test]
    fn dataset_writer_preserves_records_across_split_sizes(
        records in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..24), 0..60),
        split in 1usize..256,
    ) {
        let mut w = DatasetWriter::new(split);
        for r in &records {
            w.push(r);
        }
        let ds = w.finish();
        prop_assert_eq!(ds.records, records.len());
        let back: Vec<Vec<u8>> = ds.iter_records().map(|r| r.to_vec()).collect();
        prop_assert_eq!(back, records);
    }
}

struct WcMap;
impl MapTask for WcMap {
    fn map(&mut self, _src: InputSrc, record: &[u8], out: &mut MapOutput) {
        out.emit(record, &[1u8, 0, 0, 0]);
    }
}

struct SumTask {
    to_output: bool,
}
impl ReduceTask for SumTask {
    fn reduce(&mut self, key: &[u8], values: &[&[u8]], out: &mut ReduceOutput) {
        let total: u32 = values
            .iter()
            .map(|v| {
                let mut b = [0u8; 4];
                b.copy_from_slice(v);
                u32::from_le_bytes(b)
            })
            .sum();
        if self.to_output {
            let mut rec = key.to_vec();
            rec.push(0);
            rec.extend_from_slice(&total.to_le_bytes());
            out.write(&rec);
        } else {
            out.emit(key, &total.to_le_bytes());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// MapReduce word count == in-memory histogram, for any word multiset,
    /// reducer count, split size, and combiner setting.
    #[test]
    fn wordcount_matches_oracle(
        words in proptest::collection::vec("[a-d]{1,3}", 0..80),
        reducers in 1usize..7,
        split in 4usize..64,
        with_combiner in any::<bool>(),
    ) {
        let mut oracle: HashMap<String, u32> = HashMap::new();
        for w in &words {
            *oracle.entry(w.clone()).or_default() += 1;
        }

        let dfs = SimDfs::new();
        let mut w = DatasetWriter::new(split);
        for word in &words {
            w.push(word.as_bytes());
        }
        dfs.put("in", w.finish());
        let mut builder = JobBuilder::new("wc")
            .input("in")
            .mapper(Arc::new(FnMapFactory(|| WcMap)))
            .reducer(Arc::new(FnReduceFactory(|| SumTask { to_output: true })))
            .output("out")
            .num_reducers(reducers);
        if with_combiner {
            builder = builder.combiner(Arc::new(FnReduceFactory(|| SumTask { to_output: false })));
        }
        let metrics = Engine::pinned(dfs.clone()).run_job(&builder.build());
        prop_assert_eq!(metrics.input_records as usize, words.len());

        let mut got: HashMap<String, u32> = HashMap::new();
        for rec in dfs.get("out").unwrap().iter_records() {
            let sep = rec.iter().position(|&b| b == 0).unwrap();
            let word = String::from_utf8(rec[..sep].to_vec()).unwrap();
            let mut b = [0u8; 4];
            b.copy_from_slice(&rec[sep + 1..]);
            got.insert(word, u32::from_le_bytes(b));
        }
        prop_assert_eq!(got, oracle);
    }
}
