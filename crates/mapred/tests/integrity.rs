//! End-to-end data-integrity tests: read-path corruption of DFS blocks and
//! shuffle spill runs must be *detected* (checksums on, the default) and
//! quarantined with byte-identical committed output — and the detection
//! must be load-bearing: the same corruption with checksums disabled
//! reaches the committed output and diverges. A silent-corruption run that
//! still produced golden bytes would mean the fault injection is a no-op;
//! a checksummed run that diverges would mean quarantine is broken.

use rapida_mapred::{
    ClusterModel, DatasetWriter, Engine, FaultPlan, FnMapFactory, FnReduceFactory, InputSrc,
    JobBuilder, MapOutput, MapTask, ReduceOutput, ReduceTask, ResiliencePolicy, SimDfs,
    WorkflowMetrics,
};
use rapida_testkit::rng::StdRng;
use std::sync::Arc;

/// Emits (word, 1) for every input record.
struct TokenMap;
impl MapTask for TokenMap {
    fn map(&mut self, _src: InputSrc, record: &[u8], out: &mut MapOutput) {
        out.emit(record, &1u32.to_le_bytes());
    }
}

/// Sums u32 values; writes `key \0 sum` as output or re-emits as combiner.
struct Sum {
    to_output: bool,
}
impl ReduceTask for Sum {
    fn reduce(&mut self, key: &[u8], values: &[&[u8]], out: &mut ReduceOutput) {
        let total: u32 = values
            .iter()
            .map(|v| {
                let mut b = [0u8; 4];
                b.copy_from_slice(v);
                u32::from_le_bytes(b)
            })
            .sum();
        if self.to_output {
            let mut rec = key.to_vec();
            rec.push(0);
            rec.extend_from_slice(&total.to_le_bytes());
            out.write(&rec);
        } else {
            out.emit(key, &total.to_le_bytes());
        }
    }
}

/// Two-cycle word count (combined count, then regroup) over a multi-block
/// input — enough block reads and spill runs for the corrupting preset to
/// fire many times per run.
fn workflow() -> Vec<rapida_mapred::Job> {
    vec![
        JobBuilder::new("wc")
            .input("in")
            .mapper(Arc::new(FnMapFactory(|| TokenMap)))
            .combiner(Arc::new(FnReduceFactory(|| Sum { to_output: false })))
            .reducer(Arc::new(FnReduceFactory(|| Sum { to_output: true })))
            .output("counts")
            .num_reducers(4)
            .build(),
        JobBuilder::new("regroup")
            .input("counts")
            .mapper(Arc::new(FnMapFactory(|| TokenMap)))
            .reducer(Arc::new(FnReduceFactory(|| Sum { to_output: true })))
            .output("out")
            .num_reducers(2)
            .build(),
    ]
}

fn run(
    faults: Option<FaultPlan>,
    policy: ResiliencePolicy,
) -> (WorkflowMetrics, Vec<Vec<u8>>) {
    let dfs = SimDfs::new();
    let mut rng = StdRng::seed_from_u64(0x1DEA);
    let mut w = DatasetWriter::new(64);
    for _ in 0..500 {
        let len = rng.gen_range(2usize..=5);
        let word: String = (0..len)
            .map(|_| (b'a' + rng.gen_range(0u8..6)) as char)
            .collect();
        w.push(word.as_bytes());
    }
    dfs.put("in", w.finish());
    let mut engine = Engine::with_workers(dfs.clone(), 4).with_resilience(policy);
    engine.faults = faults;
    let wf = engine.run_workflow(&workflow());
    let blocks: Vec<Vec<u8>> = dfs
        .get("out")
        .expect("workflow output")
        .blocks
        .iter()
        .map(|b| b.as_ref().to_vec())
        .collect();
    (wf, blocks)
}

const SEEDS: [u64; 3] = [1, 0xC0FFEE, 0xDEAD_BEEF];

/// Checksums on (default): every injected corruption is detected, the
/// corrupt copy is quarantined (block → replica re-read, spill → clean
/// arena kept), and the committed output is byte-identical to the
/// fault-free golden. The detections and re-read bytes must be ledgered,
/// and the cost model must charge for the extra replica I/O.
#[test]
fn checksums_detect_quarantine_and_preserve_bytes() {
    let model = ClusterModel::nodes10();
    let (golden_wf, golden) = run(None, ResiliencePolicy::default());
    assert_eq!(golden_wf.total_corrupt_blocks_detected(), 0);
    assert_eq!(golden_wf.total_silent_corruptions(), 0);
    let golden_cost = model.workflow_time(&golden_wf);

    for seed in SEEDS {
        let (wf, blocks) = run(Some(FaultPlan::corrupting(seed)), ResiliencePolicy::default());
        assert_eq!(
            blocks, golden,
            "seed {seed:#x}: corruption leaked into committed output despite checksums"
        );
        let detected =
            wf.total_corrupt_blocks_detected() + wf.total_corrupt_spills_detected();
        assert!(detected > 0, "seed {seed:#x}: corrupting plan injected nothing");
        assert_eq!(
            wf.total_silent_corruptions(),
            0,
            "seed {seed:#x}: corruption slipped past the checksum gate"
        );
        assert!(
            wf.total_integrity_reread_bytes() > 0,
            "seed {seed:#x}: detections without replica re-read bytes"
        );
        assert!(
            model.workflow_time(&wf) > golden_cost,
            "seed {seed:#x}: {detected} detections but no simulated re-read cost"
        );
    }
}

/// Detection is load-bearing: the *same* corruption seeds with checksums
/// disabled reach the committed output — the run diverges from the golden
/// bytes and the silent-corruption ledger is non-zero. If this test ever
/// passes with identical bytes, the fault injection itself is broken and
/// the checksummed identity above proves nothing.
#[test]
fn corruption_without_checksums_diverges() {
    let (_, golden) = run(None, ResiliencePolicy::default());
    let unchecked = ResiliencePolicy {
        checksums: false,
        ..ResiliencePolicy::default()
    };
    for seed in SEEDS {
        let (wf, blocks) = run(Some(FaultPlan::corrupting(seed)), unchecked.clone());
        assert!(
            wf.total_silent_corruptions() > 0,
            "seed {seed:#x}: no corruption applied with checksums off"
        );
        assert_eq!(
            wf.total_corrupt_blocks_detected() + wf.total_corrupt_spills_detected(),
            0,
            "seed {seed:#x}: detections ledgered while checksums were off"
        );
        assert_ne!(
            blocks, golden,
            "seed {seed:#x}: silent corruption left the output byte-identical"
        );
    }
}

/// The corruption ledger itself is deterministic: two runs with the same
/// seed produce identical detection counters *and* identical bytes.
#[test]
fn integrity_ledger_is_deterministic() {
    let sig = |wf: &WorkflowMetrics| {
        wf.jobs
            .iter()
            .map(|j| {
                (
                    j.corrupt_blocks_detected,
                    j.corrupt_spills_detected,
                    j.integrity_reread_bytes,
                    j.corrupt_records_skipped,
                )
            })
            .collect::<Vec<_>>()
    };
    let (wf_a, blocks_a) = run(Some(FaultPlan::corrupting(7)), ResiliencePolicy::default());
    let (wf_b, blocks_b) = run(Some(FaultPlan::corrupting(7)), ResiliencePolicy::default());
    assert_eq!(sig(&wf_a), sig(&wf_b));
    assert_eq!(blocks_a, blocks_b);
}
