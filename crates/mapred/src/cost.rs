//! Analytic cluster cost model: converts measured job metrics into simulated
//! cluster seconds.
//!
//! The paper's numbers come from 10/50/60-node Hadoop clusters where total
//! time is dominated by (a) the number of MR cycles — each paying job startup
//! — and (b) I/O: split reads, shuffle transfer + merge-sort, and HDFS
//! materialization. This model reproduces exactly those terms from the
//! *measured* byte/record counts of the simulator, so the relative ordering
//! of plans matches the paper's even though absolute constants differ.

use crate::metrics::{JobMetrics, RecoveryLedger, WorkflowMetrics};

/// Cluster configuration for the cost model.
#[derive(Debug, Clone, Copy)]
pub struct ClusterModel {
    /// Number of worker nodes.
    pub nodes: usize,
    /// Concurrent map slots per node (Hadoop 0.20 default: 2).
    pub map_slots_per_node: usize,
    /// Concurrent reduce slots per node.
    pub reduce_slots_per_node: usize,
    /// Sequential disk bandwidth per node, MB/s.
    pub disk_mbps: f64,
    /// Network bandwidth per node, MB/s.
    pub net_mbps: f64,
    /// Fixed job submission + scheduling overhead, seconds (Hadoop JVM spin-up).
    pub job_startup_s: f64,
    /// Per-task-wave scheduling overhead, seconds.
    pub task_overhead_s: f64,
    /// CPU cost per record processed, microseconds.
    pub cpu_per_record_us: f64,
    /// Extra seconds a straggling task adds to its wave when speculation
    /// does not replace it (the slow attempt holds the job open).
    pub straggler_penalty_s: f64,
    /// HDFS replication factor applied to final job output writes.
    pub replication: f64,
    /// Scale factor mapping simulator bytes to modeled cluster bytes
    /// (our datasets are scaled down; 1.0 evaluates the simulator's bytes
    /// as-is).
    pub data_scale: f64,
}

impl ClusterModel {
    /// The 10-node cluster used for the BSBM-500K experiments (Table 3,
    /// Fig. 8a).
    pub fn nodes10() -> Self {
        ClusterModel {
            nodes: 10,
            ..Default::default()
        }
    }

    /// The 50-node cluster (BSBM-2M experiments, Fig. 8b).
    pub fn nodes50() -> Self {
        ClusterModel {
            nodes: 50,
            ..Default::default()
        }
    }

    /// The 60-node cluster (PubMed experiments, Table 4).
    pub fn nodes60() -> Self {
        ClusterModel {
            nodes: 60,
            ..Default::default()
        }
    }

    fn map_slots(&self) -> f64 {
        (self.nodes * self.map_slots_per_node) as f64
    }

    fn reduce_slots(&self) -> f64 {
        (self.nodes * self.reduce_slots_per_node) as f64
    }

    /// Simulated time of one job, in seconds.
    pub fn job_time(&self, m: &JobMetrics) -> f64 {
        let mb = |bytes: u64| (bytes as f64) * self.data_scale / (1024.0 * 1024.0);

        let map_tasks = m.map_tasks.max(1) as f64;
        let eff_m = map_tasks.min(self.map_slots());
        let map_waves = (map_tasks / self.map_slots()).ceil();

        // Map phase: read splits from disk + CPU + local spill of map output.
        let map_read = mb(m.input_bytes) / (self.disk_mbps * eff_m);
        let map_cpu =
            (m.input_records + m.map_output_records) as f64 * self.cpu_per_record_us / 1e6 / eff_m;
        let map_spill = mb(m.map_output_bytes) / (self.disk_mbps * eff_m);
        let map_time = map_waves * self.task_overhead_s + map_read + map_cpu + map_spill;

        let (shuffle_time, reduce_time) = if m.map_only {
            (0.0, 0.0)
        } else {
            let reduce_tasks = m.reduce_tasks.max(1) as f64;
            let eff_r = reduce_tasks.min(self.reduce_slots());
            let reduce_waves = (reduce_tasks / self.reduce_slots()).ceil();
            // Shuffle: network transfer, bounded by receiving reducers.
            let shuffle = mb(m.shuffle_bytes) / (self.net_mbps * eff_r);
            // Reduce: merge-sort pass over shuffled data + CPU + output write.
            let merge = mb(m.shuffle_bytes) / (self.disk_mbps * eff_r);
            let cpu = m.shuffle_records as f64 * self.cpu_per_record_us / 1e6 / eff_r;
            let write = mb(m.output_bytes) * self.replication / (self.disk_mbps * eff_r);
            (
                shuffle,
                reduce_waves * self.task_overhead_s + merge + cpu + write,
            )
        };

        // Map-only jobs still write their output (replicated).
        let map_only_write = if m.map_only {
            mb(m.output_bytes) * self.replication / (self.disk_mbps * self.map_slots().min(m.map_tasks.max(1) as f64))
        } else {
            0.0
        };

        self.job_startup_s
            + map_time
            + shuffle_time
            + reduce_time
            + map_only_write
            + self.fault_overhead(m)
    }

    /// Extra simulated seconds attributable to injected faults: retry
    /// backoff, per-attempt scheduling overhead for every attempt beyond
    /// the one-per-task minimum, redoing the work that was discarded, and
    /// the tail latency of stragglers speculation didn't cover.
    ///
    /// Every term is ≥ 0 and zero on a fault-free run, so adding this to
    /// [`ClusterModel::job_time`] can only increase a job's cost — the
    /// monotonicity the `prop_cost` properties pin down.
    pub fn fault_overhead(&self, m: &JobMetrics) -> f64 {
        let mb = |bytes: u64| (bytes as f64) * self.data_scale / (1024.0 * 1024.0);
        let extra = m.extra_attempts() as f64;
        let slots = self.map_slots();
        let redo_io = mb(m.wasted_output_bytes) / (self.disk_mbps * slots);
        let redo_cpu = m.wasted_input_records as f64 * self.cpu_per_record_us / 1e6 / slots;
        let unspeculated = m.straggler_tasks.saturating_sub(m.speculative_attempts) as f64;
        // Integrity re-reads: every quarantined block/spill is read again
        // from a replica — pure extra disk traffic.
        let reread_io = mb(m.integrity_reread_bytes) / (self.disk_mbps * slots);
        m.backoff_s
            + extra * self.task_overhead_s
            + redo_io
            + redo_cpu
            + reread_io
            + unspeculated * self.straggler_penalty_s
    }

    /// Extra simulated seconds attributable to workflow-level recovery:
    /// restart backoff, re-submitting every replayed/aborted/timed-out job
    /// (each pays job startup again), and the I/O of the recomputed, wasted,
    /// and checkpoint-read bytes. Zero on an undisturbed workflow.
    pub fn recovery_overhead(&self, r: &RecoveryLedger) -> f64 {
        let mb = |bytes: u64| (bytes as f64) * self.data_scale / (1024.0 * 1024.0);
        let slots = self.map_slots();
        let resubmits = (r.aborted_job_attempts + r.timeout_kills + r.jobs_replayed) as f64;
        let io =
            mb(r.recomputed_bytes + r.wasted_bytes + r.checkpoint_bytes_read)
                / (self.disk_mbps * slots);
        r.recovery_backoff_s + resubmits * self.job_startup_s + io
    }

    /// Simulated replica count for the DFS integrity model, derived from the
    /// replication factor (HDFS keeps `replication` copies; at least one).
    pub fn replicas(&self) -> usize {
        (self.replication.round() as usize).max(1)
    }

    /// Simulated time of a whole workflow (jobs run sequentially, as Hadoop
    /// executes a dependent job DAG stage by stage), plus the recovery
    /// overhead of any workflow-level restarts.
    pub fn workflow_time(&self, wf: &WorkflowMetrics) -> f64 {
        wf.jobs.iter().map(|j| self.job_time(j)).sum::<f64>()
            + self.recovery_overhead(&wf.recovery)
    }
}

impl Default for ClusterModel {
    fn default() -> Self {
        ClusterModel {
            nodes: 10,
            map_slots_per_node: 2,
            reduce_slots_per_node: 2,
            disk_mbps: 80.0,
            net_mbps: 40.0,
            job_startup_s: 12.0,
            task_overhead_s: 1.5,
            cpu_per_record_us: 1.5,
            straggler_penalty_s: 8.0,
            replication: 2.0,
            data_scale: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(map_only: bool, shuffle: u64, out: u64) -> JobMetrics {
        JobMetrics {
            name: "j".into(),
            map_only,
            map_tasks: 8,
            reduce_tasks: 4,
            input_bytes: 8 << 20,
            input_records: 100_000,
            map_output_records: 100_000,
            map_output_bytes: shuffle,
            shuffle_records: 100_000,
            shuffle_bytes: shuffle,
            output_records: 10_000,
            output_bytes: out,
            ..Default::default()
        }
    }

    #[test]
    fn startup_dominates_small_jobs() {
        let model = ClusterModel::nodes10();
        let t = model.job_time(&job(false, 1024, 1024));
        assert!(t >= model.job_startup_s);
        assert!(t < model.job_startup_s + 10.0);
    }

    #[test]
    fn more_cycles_cost_more() {
        let model = ClusterModel::nodes10();
        let one = WorkflowMetrics {
            jobs: vec![job(false, 1 << 20, 1 << 20)],
            ..Default::default()
        };
        let three = WorkflowMetrics {
            jobs: vec![
                job(false, 1 << 20, 1 << 20),
                job(false, 1 << 20, 1 << 20),
                job(false, 1 << 20, 1 << 20),
            ],
            ..Default::default()
        };
        assert!(model.workflow_time(&three) > 2.5 * model.workflow_time(&one));
    }

    #[test]
    fn map_only_cheaper_than_full_cycle() {
        let model = ClusterModel::nodes10();
        let full = model.job_time(&job(false, 64 << 20, 64 << 20));
        let maponly = model.job_time(&job(true, 0, 64 << 20));
        assert!(maponly < full);
    }

    #[test]
    fn bigger_cluster_is_faster_on_big_jobs() {
        let big_job = JobMetrics {
            map_tasks: 400,
            reduce_tasks: 100,
            input_bytes: 4 << 30,
            input_records: 50_000_000,
            map_output_records: 50_000_000,
            map_output_bytes: 2 << 30,
            shuffle_records: 50_000_000,
            shuffle_bytes: 2 << 30,
            output_bytes: 1 << 30,
            ..Default::default()
        };
        let t10 = ClusterModel::nodes10().job_time(&big_job);
        let t60 = ClusterModel::nodes60().job_time(&big_job);
        assert!(t60 < t10);
    }

    #[test]
    fn shuffle_bytes_increase_time() {
        let model = ClusterModel::nodes10();
        let small = model.job_time(&job(false, 1 << 20, 1 << 20));
        let large = model.job_time(&job(false, 512 << 20, 1 << 20));
        assert!(large > small + 1.0);
    }

    #[test]
    fn fault_overhead_is_zero_without_faults_and_additive_with() {
        let model = ClusterModel::nodes10();
        let clean = job(false, 1 << 20, 1 << 20);
        assert_eq!(model.fault_overhead(&clean), 0.0);

        let mut faulty = clean.clone();
        faulty.map_attempts = faulty.map_tasks as u64 + 3;
        faulty.reduce_attempts = faulty.reduce_tasks as u64;
        faulty.failed_attempts = 3;
        faulty.wasted_input_records = 10_000;
        faulty.wasted_output_bytes = 1 << 20;
        faulty.backoff_s = 14.0;
        // Overhead covers at least the backoff plus the extra scheduling.
        assert!(
            model.job_time(&faulty)
                >= model.job_time(&clean) + faulty.backoff_s + 3.0 * model.task_overhead_s
        );
    }

    #[test]
    fn unspeculated_stragglers_pay_the_tail_penalty() {
        let model = ClusterModel::nodes10();
        let mut slow = job(false, 1 << 20, 1 << 20);
        slow.map_attempts = slow.map_tasks as u64;
        slow.reduce_attempts = slow.reduce_tasks as u64;
        slow.straggler_tasks = 2;
        assert_eq!(
            model.fault_overhead(&slow),
            2.0 * model.straggler_penalty_s
        );
        // With speculation covering them, the tail penalty disappears (the
        // duplicates' cost shows up as extra attempts + wasted work instead).
        slow.speculative_attempts = 2;
        slow.map_attempts += 2;
        assert_eq!(
            model.fault_overhead(&slow),
            2.0 * model.task_overhead_s
        );
    }

    #[test]
    fn integrity_rereads_and_recovery_cost_simulated_time() {
        let model = ClusterModel::nodes10();
        let clean = job(false, 1 << 20, 1 << 20);
        let mut rereads = clean.clone();
        rereads.corrupt_blocks_detected = 2;
        rereads.integrity_reread_bytes = 8 << 20;
        assert!(model.job_time(&rereads) > model.job_time(&clean));

        assert_eq!(model.recovery_overhead(&RecoveryLedger::default()), 0.0);
        let r = RecoveryLedger {
            workflow_restarts: 1,
            aborted_job_attempts: 1,
            jobs_replayed: 2,
            recomputed_bytes: 16 << 20,
            wasted_bytes: 4 << 20,
            recovery_backoff_s: 2.0,
            ..Default::default()
        };
        // At least the backoff plus three job re-submissions.
        assert!(model.recovery_overhead(&r) >= 2.0 + 3.0 * model.job_startup_s);
        let wf = WorkflowMetrics {
            jobs: vec![clean.clone()],
            recovery: r,
        };
        let undisturbed = WorkflowMetrics {
            jobs: vec![clean],
            ..Default::default()
        };
        assert!(model.workflow_time(&wf) > model.workflow_time(&undisturbed));
    }

    #[test]
    fn replicas_follow_the_replication_factor() {
        let mut model = ClusterModel::nodes10();
        assert_eq!(model.replicas(), 2);
        model.replication = 3.0;
        assert_eq!(model.replicas(), 3);
        model.replication = 0.0;
        assert_eq!(model.replicas(), 1, "always at least one copy");
    }

    #[test]
    fn data_scale_amplifies() {
        let mut model = ClusterModel::nodes10();
        let base = model.job_time(&job(false, 64 << 20, 64 << 20));
        model.data_scale = 10.0;
        let scaled = model.job_time(&job(false, 64 << 20, 64 << 20));
        assert!(scaled > base);
    }
}
