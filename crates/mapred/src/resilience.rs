//! The unified resilience policy: one place for every retry budget, backoff
//! schedule, deadline, and integrity switch the engine consults, replacing
//! the per-attempt constants that used to be scattered across the task path.
//!
//! Three layers of recovery compose here (see DESIGN.md §2f):
//!
//! 1. **Task attempts** — bounded retry with exponential backoff and
//!    speculation, owned by [`crate::fault::FaultPlan`] since PR 2. The
//!    plan's `backoff_s` now delegates to the shared [`Backoff`] schedule.
//! 2. **Data integrity** — checksummed DFS blocks and spill runs with a
//!    detect → quarantine → re-read-from-replica path ([`Self::checksums`]).
//! 3. **Workflow recovery** — job-granular checkpoint/resume after a job
//!    abort or deadline kill ([`Self::checkpointing`]), bounded by
//!    [`Self::workflow_attempts`]; exhaustion degrades gracefully to a typed
//!    [`WorkflowError`] carrying partial metrics instead of panicking.

use crate::cost::ClusterModel;
use crate::metrics::WorkflowMetrics;
use std::fmt;

/// Deterministic exponential backoff: `base_s · 2^min(retry, cap)`.
///
/// The cap bounds the exponent so the simulated delay saturates instead of
/// overflowing `f64` range on adversarial retry counts — with the default
/// `cap = 16` the schedule tops out at `base_s · 65536`, already hours of
/// simulated wall clock. Hadoop's real backoff jitters; ours deliberately
/// does not, which is what keeps the waste ledger bit-identical across
/// worker counts and replays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Backoff {
    /// Delay before the first retry, seconds.
    pub base_s: f64,
    /// Exponent clamp: retry numbers at or beyond this reuse its delay.
    pub cap: u32,
}

impl Backoff {
    /// The default schedule (2 s base, ×2 per retry, capped at 2^16).
    pub fn new(base_s: f64) -> Self {
        Backoff { base_s, cap: 16 }
    }

    /// Simulated delay before retry number `retry` (0-based).
    pub fn delay_s(&self, retry: usize) -> f64 {
        self.base_s * 2f64.powi((retry as u32).min(self.cap) as i32)
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff::new(2.0)
    }
}

/// A per-job simulated deadline: after a job attempt completes, its modeled
/// cluster time is checked against the current limit; exceeding it counts as
/// a timeout-kill — the attempt's work is discarded, the limit escalates,
/// and the job re-runs on the workflow retry budget.
#[derive(Debug, Clone)]
pub struct JobDeadline {
    /// Cost model evaluating a job's simulated seconds.
    pub model: ClusterModel,
    /// Initial per-job limit, simulated seconds.
    pub limit_s: f64,
    /// Multiplier applied to a job's limit after each of its timeout-kills
    /// (clamped to ≥ 1.0). Escalation is what guarantees a deterministic
    /// simulator eventually clears its own deadline: re-runs take identical
    /// simulated time, so only a growing limit (or the budget running out)
    /// terminates the loop.
    pub escalation: f64,
}

impl JobDeadline {
    /// A deadline with the conventional doubling escalation.
    pub fn new(model: ClusterModel, limit_s: f64) -> Self {
        JobDeadline {
            model,
            limit_s,
            escalation: 2.0,
        }
    }
}

/// Engine-level resilience policy. All fields are public; construct with
/// struct-update syntax over [`ResiliencePolicy::default`].
#[derive(Debug, Clone)]
pub struct ResiliencePolicy {
    /// Verify block and spill checksums whenever a fault plan is attached,
    /// quarantining corrupt copies (blocks re-read from the next replica,
    /// spills re-fetched from the map output). Disabling this lets injected
    /// corruption flow through silently — the counterfactual the integrity
    /// tests use to prove detection is load-bearing.
    pub checksums: bool,
    /// Resume a recovering workflow from the last fully-committed job's
    /// checkpoint instead of job 0. Disabling forces full-workflow restart
    /// (the pre-checkpoint behavior the recovery bench baselines against).
    pub checkpointing: bool,
    /// Workflow-level retry budget: total job aborts + timeout-kills the
    /// workflow may absorb before giving up with a [`WorkflowError`].
    pub workflow_attempts: usize,
    /// Backoff schedule shared by workflow-level recovery (and, with the
    /// plan's own base, by the per-task retry path).
    pub backoff: Backoff,
    /// Optional per-job simulated deadline with timeout-kill + escalation.
    pub deadline: Option<JobDeadline>,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy {
            checksums: true,
            checkpointing: true,
            workflow_attempts: 4,
            backoff: Backoff::default(),
            deadline: None,
        }
    }
}

/// Typed failure of a workflow that exhausted its recovery budget. Carries
/// the metrics accumulated so far (committed jobs + the recovery ledger) so
/// callers can report partial progress instead of losing the run.
#[derive(Debug, Clone)]
pub enum WorkflowError {
    /// The workflow-level retry budget ran out on a job abort.
    RetryBudgetExhausted {
        /// Name of the job whose abort exhausted the budget.
        job: String,
        /// Its index in the workflow.
        job_index: usize,
        /// The budget that was exhausted.
        attempts: usize,
        /// Metrics up to the failure: committed jobs + recovery ledger.
        partial: WorkflowMetrics,
    },
    /// The budget ran out on a deadline timeout-kill.
    DeadlineExhausted {
        /// Name of the job that kept missing its deadline.
        job: String,
        /// Its index in the workflow.
        job_index: usize,
        /// The limit (simulated seconds) in force at the final kill.
        limit_s: f64,
        /// Metrics up to the failure: committed jobs + recovery ledger.
        partial: WorkflowMetrics,
    },
}

impl WorkflowError {
    /// The partial metrics accumulated before the failure.
    pub fn partial(&self) -> &WorkflowMetrics {
        match self {
            WorkflowError::RetryBudgetExhausted { partial, .. } => partial,
            WorkflowError::DeadlineExhausted { partial, .. } => partial,
        }
    }

    /// Name of the job the workflow died on.
    pub fn job(&self) -> &str {
        match self {
            WorkflowError::RetryBudgetExhausted { job, .. } => job,
            WorkflowError::DeadlineExhausted { job, .. } => job,
        }
    }
}

impl fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkflowError::RetryBudgetExhausted {
                job,
                job_index,
                attempts,
                partial,
            } => write!(
                f,
                "workflow retry budget ({attempts}) exhausted at job {job_index} ({job}); \
                 {} jobs committed",
                partial.jobs.len()
            ),
            WorkflowError::DeadlineExhausted {
                job,
                job_index,
                limit_s,
                partial,
            } => write!(
                f,
                "deadline ({limit_s:.1}s) exhausted the retry budget at job {job_index} ({job}); \
                 {} jobs committed",
                partial.jobs.len()
            ),
        }
    }
}

impl std::error::Error for WorkflowError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_saturates_at_the_cap() {
        let b = Backoff::new(2.0);
        assert_eq!(b.delay_s(0), 2.0);
        assert_eq!(b.delay_s(1), 4.0);
        assert_eq!(b.delay_s(10), 2.0 * 1024.0);
        // At and beyond the cap the delay is constant — no overflow, no NaN.
        assert_eq!(b.delay_s(16), 2.0 * 65536.0);
        assert_eq!(b.delay_s(17), b.delay_s(16));
        assert_eq!(b.delay_s(usize::MAX), b.delay_s(16));
        assert!(b.delay_s(usize::MAX).is_finite());
    }

    #[test]
    fn default_policy_is_safe() {
        let p = ResiliencePolicy::default();
        assert!(p.checksums);
        assert!(p.checkpointing);
        assert!(p.workflow_attempts >= 2);
        assert!(p.deadline.is_none());
    }

    #[test]
    fn workflow_error_exposes_partials() {
        let e = WorkflowError::RetryBudgetExhausted {
            job: "j3".into(),
            job_index: 3,
            attempts: 4,
            partial: WorkflowMetrics::default(),
        };
        assert_eq!(e.job(), "j3");
        assert_eq!(e.partial().jobs.len(), 0);
        assert!(e.to_string().contains("retry budget"));
    }
}
