//! Job specification: mapper / combiner / reducer task factories, mirroring
//! the Hadoop task lifecycle (`setup` via factory, `map`/`reduce` per record
//! or key group, `cleanup` at task end — the hook Algorithm 3's map-side
//! hash aggregation relies on).

use crate::codec::{KvBuffer, RecBuffer};
use std::sync::Arc;

/// Identifies which job input a record came from (Hadoop: input path tag).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InputSrc {
    /// Index into [`Job::inputs`].
    pub dataset: usize,
}

/// Output sink handed to map tasks. Emitted pairs and records land in
/// contiguous arenas ([`KvBuffer`] / [`RecBuffer`]) — the task borrows the
/// bytes it emits, and no per-record heap pair is ever allocated.
#[derive(Default)]
pub struct MapOutput {
    /// Key-value pairs destined for the shuffle.
    pub kvs: KvBuffer,
    /// Direct records (map-only jobs).
    pub records: RecBuffer,
    /// Input segments the task skipped whole via zone-map pruning (ORC
    /// row-group skipping). Mappers bump this instead of scanning.
    pub segments_skipped: u64,
    /// Input bytes of those skipped segments — work the scan never did.
    pub input_bytes_pruned: u64,
    /// Records this task quarantined because they failed to decode —
    /// record-level integrity, surfaced as
    /// `JobMetrics::corrupt_records_skipped` for committed attempts.
    pub corrupt_records: u64,
}

impl MapOutput {
    /// Emit a key-value pair into the shuffle.
    #[inline]
    pub fn emit(&mut self, key: &[u8], value: &[u8]) {
        self.kvs.push(key, value);
    }

    /// Write a record directly to the job output (map-only jobs).
    #[inline]
    pub fn write(&mut self, record: &[u8]) {
        self.records.push(record);
    }

    /// Record a zone-map skip of one whole input segment of `bytes` bytes.
    #[inline]
    pub fn skip_segment(&mut self, bytes: usize) {
        self.segments_skipped += 1;
        self.input_bytes_pruned += bytes as u64;
    }

    /// Record one quarantined (undecodable) input record.
    #[inline]
    pub fn skip_corrupt(&mut self) {
        self.corrupt_records += 1;
    }
}

/// Output sink handed to reduce tasks (arena-backed, like [`MapOutput`]).
#[derive(Default)]
pub struct ReduceOutput {
    /// Final output records.
    pub records: RecBuffer,
    /// Re-keyed pairs (used when a combiner runs map-side).
    pub kvs: KvBuffer,
    /// Shuffled values this task quarantined because they failed to decode
    /// (see [`MapOutput::corrupt_records`]).
    pub corrupt_records: u64,
}

impl ReduceOutput {
    /// Write a record to the job output.
    #[inline]
    pub fn write(&mut self, record: &[u8]) {
        self.records.push(record);
    }

    /// Emit a key-value pair (combiner path: stays in the shuffle).
    #[inline]
    pub fn emit(&mut self, key: &[u8], value: &[u8]) {
        self.kvs.push(key, value);
    }

    /// Record one quarantined (undecodable) shuffled value.
    #[inline]
    pub fn skip_corrupt(&mut self) {
        self.corrupt_records += 1;
    }
}

/// A per-split map task instance.
pub trait MapTask: Send {
    /// Process one input record.
    fn map(&mut self, src: InputSrc, record: &[u8], out: &mut MapOutput);
    /// Called once after the last record of the split (Hadoop `cleanup`).
    fn cleanup(&mut self, _out: &mut MapOutput) {}
}

/// Factory creating map task instances (one per split).
pub trait MapTaskFactory: Send + Sync {
    /// Create a fresh task.
    fn create(&self) -> Box<dyn MapTask>;
}

/// A per-partition reduce task instance.
pub trait ReduceTask: Send {
    /// Process one key group. `values` holds every value for `key`.
    fn reduce(&mut self, key: &[u8], values: &[&[u8]], out: &mut ReduceOutput);
    /// Called once after the last key group of the partition.
    fn cleanup(&mut self, _out: &mut ReduceOutput) {}
}

/// Factory creating reduce task instances (one per partition, and one per
/// map task when used as a combiner).
pub trait ReduceTaskFactory: Send + Sync {
    /// Create a fresh task.
    fn create(&self) -> Box<dyn ReduceTask>;

    /// Does this factory's reducer treat every key group independently?
    ///
    /// A *key-local* reducer's output for a key group depends only on that
    /// group (no state carried between `reduce` calls), and its `cleanup`
    /// emits nothing. Declaring key-locality lets the engine cut a reduce
    /// partition's key range into shards and merge-reduce the shards on
    /// separate workers — one fresh task instance per shard — and still
    /// produce the exact bytes of the serial merge by concatenating shard
    /// outputs in key-range order. The default is conservative: `false`
    /// keeps the whole partition on one task instance.
    fn key_local(&self) -> bool {
        false
    }
}

/// Marker wrapper declaring a factory's reducer key-local (see
/// [`ReduceTaskFactory::key_local`]). Wrapping is an assertion about the
/// inner reducer's semantics — per-group-only logic, no cleanup emissions —
/// that the engine trusts for shard-parallel reduce.
pub struct KeyLocal<F>(pub F);

impl<F: ReduceTaskFactory> ReduceTaskFactory for KeyLocal<F> {
    fn create(&self) -> Box<dyn ReduceTask> {
        self.0.create()
    }

    fn key_local(&self) -> bool {
        true
    }
}

/// Blanket factory over a cloneable function returning a task.
pub struct FnMapFactory<F>(pub F);

impl<F, T> MapTaskFactory for FnMapFactory<F>
where
    F: Fn() -> T + Send + Sync,
    T: MapTask + 'static,
{
    fn create(&self) -> Box<dyn MapTask> {
        Box::new((self.0)())
    }
}

/// Blanket factory over a cloneable function returning a reduce task.
pub struct FnReduceFactory<F>(pub F);

impl<F, T> ReduceTaskFactory for FnReduceFactory<F>
where
    F: Fn() -> T + Send + Sync,
    T: ReduceTask + 'static,
{
    fn create(&self) -> Box<dyn ReduceTask> {
        Box::new((self.0)())
    }
}

/// A MapReduce job specification.
#[derive(Clone)]
pub struct Job {
    /// Human-readable name (shows up in metrics and workflow reports).
    pub name: String,
    /// Input dataset names; record origin is exposed to mappers as
    /// [`InputSrc`].
    pub inputs: Vec<String>,
    /// The mapper.
    pub mapper: Arc<dyn MapTaskFactory>,
    /// Optional map-side combiner (run per map task over sorted map output).
    pub combiner: Option<Arc<dyn ReduceTaskFactory>>,
    /// The reducer; `None` makes this a map-only job.
    pub reducer: Option<Arc<dyn ReduceTaskFactory>>,
    /// Output dataset name.
    pub output: String,
    /// Number of reduce partitions (ignored for map-only jobs).
    pub num_reducers: usize,
    /// Free-form structured tag describing the job's logical operation
    /// (e.g. `"join u0 k1"`). Planners set it; cost estimators parse it.
    /// Empty when the producer did not annotate the job.
    pub tag: String,
    /// Scan-cache key. When set and the engine carries a [`crate::ScanCache`],
    /// a cached output under this key short-circuits the job; on miss the
    /// job's output is inserted after it runs. `None` (the default) opts
    /// out entirely. Keys must uniquely determine the output bytes — the
    /// planner is responsible for folding in everything the job's output
    /// depends on (engine config, plan signature, input identity).
    pub cache_key: Option<String>,
}

impl Job {
    /// Is this a map-only job (no shuffle, no reduce phase)?
    pub fn is_map_only(&self) -> bool {
        self.reducer.is_none()
    }
}

/// Builder for [`Job`].
pub struct JobBuilder {
    name: String,
    inputs: Vec<String>,
    mapper: Option<Arc<dyn MapTaskFactory>>,
    combiner: Option<Arc<dyn ReduceTaskFactory>>,
    reducer: Option<Arc<dyn ReduceTaskFactory>>,
    output: String,
    num_reducers: usize,
    tag: String,
    cache_key: Option<String>,
}

impl JobBuilder {
    /// Start building a job.
    pub fn new(name: impl Into<String>) -> Self {
        JobBuilder {
            name: name.into(),
            inputs: Vec::new(),
            mapper: None,
            combiner: None,
            reducer: None,
            output: String::new(),
            num_reducers: 4,
            tag: String::new(),
            cache_key: None,
        }
    }

    /// Set the scan-cache key (see [`Job::cache_key`]).
    pub fn cache_key(mut self, key: impl Into<String>) -> Self {
        self.cache_key = Some(key.into());
        self
    }

    /// Set the logical-operation tag (see [`Job::tag`]).
    pub fn tag(mut self, tag: impl Into<String>) -> Self {
        self.tag = tag.into();
        self
    }

    /// Add an input dataset.
    pub fn input(mut self, name: impl Into<String>) -> Self {
        self.inputs.push(name.into());
        self
    }

    /// Set the mapper factory.
    pub fn mapper(mut self, m: Arc<dyn MapTaskFactory>) -> Self {
        self.mapper = Some(m);
        self
    }

    /// Set the combiner factory.
    pub fn combiner(mut self, c: Arc<dyn ReduceTaskFactory>) -> Self {
        self.combiner = Some(c);
        self
    }

    /// Set the reducer factory.
    pub fn reducer(mut self, r: Arc<dyn ReduceTaskFactory>) -> Self {
        self.reducer = Some(r);
        self
    }

    /// Set the output dataset name.
    pub fn output(mut self, name: impl Into<String>) -> Self {
        self.output = name.into();
        self
    }

    /// Set the number of reduce partitions.
    pub fn num_reducers(mut self, n: usize) -> Self {
        self.num_reducers = n.max(1);
        self
    }

    /// Finish. Panics if mapper or output are missing (programmer error in
    /// plan construction, not a runtime condition).
    pub fn build(self) -> Job {
        Job {
            name: self.name,
            inputs: self.inputs,
            mapper: self.mapper.expect("job requires a mapper"),
            combiner: self.combiner,
            reducer: self.reducer,
            output: self.output,
            num_reducers: self.num_reducers,
            tag: self.tag,
            cache_key: self.cache_key,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NopMap;
    impl MapTask for NopMap {
        fn map(&mut self, _src: InputSrc, _r: &[u8], _o: &mut MapOutput) {}
    }

    #[test]
    fn builder_constructs_map_only_job() {
        let job = JobBuilder::new("j")
            .input("in")
            .mapper(Arc::new(FnMapFactory(|| NopMap)))
            .output("out")
            .build();
        assert!(job.is_map_only());
        assert_eq!(job.inputs, vec!["in".to_string()]);
    }

    #[test]
    #[should_panic(expected = "requires a mapper")]
    fn builder_panics_without_mapper() {
        let _ = JobBuilder::new("j").input("in").output("out").build();
    }
}
