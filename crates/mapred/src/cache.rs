//! Cross-query scan cache: an LRU over keyed job outputs.
//!
//! The serving front end runs many workflows whose early jobs scan the
//! same base datasets with the same plan shape (same triplegroup store,
//! same VP/ExtVP reduction, same star filter). Those jobs carry a
//! `cache_key` (see [`crate::job::Job::cache_key`]); when the engine
//! meets a keyed job whose output is cached, it skips the job body and
//! republishes the cached [`Dataset`] under the job's output name.
//!
//! Determinism: eviction order is strict LRU driven by a monotone access
//! counter, never by wall time or pointer identity, so two identical
//! traffic replays produce identical hit/miss/eviction ledgers. The
//! byte budget is enforced at insert; entries larger than the whole
//! budget are never admitted.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::dfs::Dataset;

/// Running cache counters (monotone; read via [`ScanCache::stats`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanCacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to make room for an insert.
    pub evictions: u64,
    /// Inserts rejected because the entry alone exceeds the budget.
    pub rejected_oversize: u64,
    /// Bytes currently resident.
    pub resident_bytes: u64,
    /// Entries currently resident.
    pub resident_entries: u64,
}

#[derive(Debug)]
struct Entry {
    data: Dataset,
    bytes: u64,
    /// Last-use stamp from the monotone counter; unique per access, so
    /// LRU order is a total order and eviction is deterministic.
    used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<String, Entry>,
    clock: u64,
    stats: ScanCacheStats,
}

/// Shared, thread-safe LRU scan cache with a byte budget.
///
/// Cloning shares the underlying store — one cache serves every engine
/// and workflow of a serving session.
#[derive(Debug, Clone)]
pub struct ScanCache {
    inner: Arc<Mutex<Inner>>,
    budget_bytes: u64,
}

impl ScanCache {
    /// Create a cache with the given byte budget.
    pub fn new(budget_bytes: u64) -> Self {
        ScanCache {
            inner: Arc::new(Mutex::new(Inner::default())),
            budget_bytes,
        }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Look up a key, refreshing its LRU stamp on hit.
    pub fn get(&self, key: &str) -> Option<Dataset> {
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.entries.get_mut(key) {
            Some(e) => {
                e.used = clock;
                let data = e.data.clone();
                inner.stats.hits += 1;
                Some(data)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) an entry, evicting least-recently-used entries
    /// until the budget holds. Returns the number of evictions performed.
    /// Oversize entries (larger than the whole budget) are not admitted.
    pub fn insert(&self, key: &str, data: Dataset) -> u64 {
        let bytes = data.total_bytes() as u64;
        let mut inner = self.inner.lock().unwrap();
        if bytes > self.budget_bytes {
            inner.stats.rejected_oversize += 1;
            return 0;
        }
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(old) = inner.entries.insert(
            key.to_string(),
            Entry { data, bytes, used: clock },
        ) {
            inner.stats.resident_bytes -= old.bytes;
        } else {
            inner.stats.resident_entries += 1;
        }
        inner.stats.resident_bytes += bytes;
        let mut evicted = 0;
        while inner.stats.resident_bytes > self.budget_bytes {
            // Strict LRU: smallest `used` stamp goes first. Stamps are
            // unique, so the victim is unambiguous.
            let victim = inner
                .entries
                .iter()
                .filter(|(k, _)| k.as_str() != key)
                .min_by_key(|(_, e)| e.used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    let e = inner.entries.remove(&k).unwrap();
                    inner.stats.resident_bytes -= e.bytes;
                    inner.stats.resident_entries -= 1;
                    inner.stats.evictions += 1;
                    evicted += 1;
                }
                None => break, // only the fresh entry left; budget holds by the oversize gate
            }
        }
        evicted
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> ScanCacheStats {
        self.inner.lock().unwrap().stats.clone()
    }

    /// Hit ratio over all lookups so far (0.0 when no lookups).
    pub fn hit_ratio(&self) -> f64 {
        let s = self.stats();
        let total = s.hits + s.misses;
        if total == 0 {
            0.0
        } else {
            s.hits as f64 / total as f64
        }
    }

    /// Drop every entry (counters are kept — they are a ledger, not state).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.entries.clear();
        inner.stats.resident_bytes = 0;
        inner.stats.resident_entries = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs::DatasetWriter;

    fn dataset(records: usize, payload: &[u8]) -> Dataset {
        let mut w = DatasetWriter::new(1 << 20);
        for _ in 0..records {
            w.push(payload);
        }
        w.finish()
    }

    #[test]
    fn hit_returns_identical_dataset() {
        let cache = ScanCache::new(1 << 20);
        let d = dataset(10, b"abcdef");
        cache.insert("k", d.clone());
        let got = cache.get("k").expect("hit");
        assert_eq!(got.records, d.records);
        assert_eq!(got.blocks.len(), d.blocks.len());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 0));
    }

    #[test]
    fn miss_is_counted() {
        let cache = ScanCache::new(1 << 20);
        assert!(cache.get("nope").is_none());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_is_deterministic() {
        // Budget fits two entries; touching "a" makes "b" the victim.
        let d = dataset(1, &[0u8; 100]);
        let per = d.total_bytes() as u64;
        let cache = ScanCache::new(per * 2);
        cache.insert("a", d.clone());
        cache.insert("b", d.clone());
        assert!(cache.get("a").is_some());
        let evicted = cache.insert("c", d.clone());
        assert_eq!(evicted, 1);
        assert!(cache.get("b").is_none(), "b was least recently used");
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn oversize_entries_are_rejected() {
        let d = dataset(100, &[0u8; 100]);
        let cache = ScanCache::new(10);
        assert_eq!(cache.insert("big", d), 0);
        assert!(cache.get("big").is_none());
        assert_eq!(cache.stats().rejected_oversize, 1);
        assert_eq!(cache.stats().resident_bytes, 0);
    }

    #[test]
    fn replay_gives_identical_stats() {
        let run = || {
            let d = dataset(1, &[0u8; 64]);
            let per = d.total_bytes() as u64;
            let cache = ScanCache::new(per * 2);
            for key in ["a", "b", "a", "c", "b", "a", "d"] {
                if cache.get(key).is_none() {
                    cache.insert(key, d.clone());
                }
            }
            cache.stats()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn clones_share_state() {
        let cache = ScanCache::new(1 << 20);
        let alias = cache.clone();
        cache.insert("k", dataset(1, b"x"));
        assert!(alias.get("k").is_some());
    }
}
