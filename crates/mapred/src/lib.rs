//! # rapida-mapred
//!
//! A MapReduce execution simulator: the scale-out substrate under every
//! engine in the workspace. Jobs run genuinely in parallel (map over splits,
//! hash-partitioned sorted shuffle, parallel reduce) over serialized byte
//! records, so the byte and record counts feeding the cluster cost model are
//! measured, not estimated.
//!
//! The shuffle data path is zero-copy: map tasks emit into contiguous
//! arenas ([`KvBuffer`] / [`RecBuffer`]), each task's output is sorted once
//! map-side by permuting its offset table, and the reduce side merges the
//! pre-sorted runs with a loser tree ([`merge`]) that streams key groups
//! straight into reducers — no per-record heap pairs, no reduce-side
//! re-sort. See `DESIGN.md`, "Zero-copy shuffle data path".
//!
//! Components:
//! * [`bytes`] — the cheap-clone immutable byte buffer ([`Bytes`]) blocks
//!   are made of.
//! * [`cache`] — the cross-query LRU scan cache ([`ScanCache`]) keyed jobs
//!   can be served from instead of re-running.
//! * [`codec`] — varint record encoding shared by all operators, plus the
//!   [`KvBuffer`] / [`RecBuffer`] emit arenas.
//! * [`merge`] — sorted-run selection and the loser-tree k-way merge.
//! * [`dfs`] — the simulated DFS ([`SimDfs`]) holding named datasets of
//!   splits.
//! * [`job`] — job specs with Hadoop-style task lifecycles (map / combiner /
//!   reduce, per-task `cleanup` hooks).
//! * [`pool`] — the work-stealing task pool both phases run on.
//! * [`engine`] — the executor ([`Engine`]).
//! * [`fault`] — deterministic fault injection ([`FaultPlan`]): task
//!   failures, stragglers, node loss, read-path corruption, job aborts,
//!   with bounded retry + speculation.
//! * [`integrity`] — FNV-1a block/spill checksums and the deterministic
//!   payload-safe bit-flip corruption the fault plan injects on read.
//! * [`resilience`] — the unified policy layer ([`ResiliencePolicy`]):
//!   retry budgets per task and per workflow, shared exponential backoff,
//!   per-job deadlines, checkpoint/recovery switches, and the typed
//!   [`WorkflowError`] exhausted budgets degrade to.
//! * [`metrics`] — measured per-job and per-workflow counters, including
//!   the workflow-level [`RecoveryLedger`].
//! * [`cost`] — the analytic cluster model turning metrics into simulated
//!   cluster seconds ([`ClusterModel`]).

pub mod bytes;
pub mod cache;
pub mod codec;
pub mod cost;
pub mod dfs;
pub mod engine;
pub mod fault;
pub mod integrity;
pub mod job;
pub mod merge;
pub mod metrics;
pub mod pool;
pub mod resilience;

pub use bytes::Bytes;
pub use cache::{ScanCache, ScanCacheStats};
pub use codec::{KvBuffer, KvRef, RecBuffer};
pub use cost::ClusterModel;
pub use dfs::{Dataset, DatasetWriter, IntegrityReport, SimDfs};
pub use engine::{shuffle_partition, Engine};
pub use merge::{merge_key_groups, plan_shards, shard_merge_key_groups, LoserTree, Run};
pub use fault::{FaultPlan, Outcome, TaskKind};
pub use job::{
    FnMapFactory, FnReduceFactory, InputSrc, Job, JobBuilder, KeyLocal, MapOutput, MapTask,
    MapTaskFactory, ReduceOutput, ReduceTask, ReduceTaskFactory,
};
pub use pool::{PersistentPool, PoolStats};
pub use metrics::{JobMetrics, RecoveryLedger, WorkflowMetrics};
pub use resilience::{Backoff, JobDeadline, ResiliencePolicy, WorkflowError};
