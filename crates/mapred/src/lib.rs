//! # rapida-mapred
//!
//! A MapReduce execution simulator: the scale-out substrate under every
//! engine in the workspace. Jobs run genuinely in parallel (map over splits,
//! hash-partitioned sorted shuffle, parallel reduce) over serialized byte
//! records, so the byte and record counts feeding the cluster cost model are
//! measured, not estimated.
//!
//! Components:
//! * [`bytes`] — the cheap-clone immutable byte buffer ([`Bytes`]) blocks
//!   are made of.
//! * [`codec`] — varint record encoding shared by all operators.
//! * [`dfs`] — the simulated DFS ([`SimDfs`]) holding named datasets of
//!   splits.
//! * [`job`] — job specs with Hadoop-style task lifecycles (map / combiner /
//!   reduce, per-task `cleanup` hooks).
//! * [`engine`] — the executor ([`Engine`]).
//! * [`fault`] — deterministic fault injection ([`FaultPlan`]): task
//!   failures, stragglers, node loss, with bounded retry + speculation.
//! * [`metrics`] — measured per-job and per-workflow counters.
//! * [`cost`] — the analytic cluster model turning metrics into simulated
//!   cluster seconds ([`ClusterModel`]).

pub mod bytes;
pub mod codec;
pub mod cost;
pub mod dfs;
pub mod engine;
pub mod fault;
pub mod job;
pub mod metrics;

pub use bytes::Bytes;
pub use cost::ClusterModel;
pub use dfs::{Dataset, DatasetWriter, SimDfs};
pub use engine::{shuffle_partition, Engine};
pub use fault::{FaultPlan, Outcome, TaskKind};
pub use job::{
    FnMapFactory, FnReduceFactory, InputSrc, Job, JobBuilder, MapOutput, MapTask, MapTaskFactory,
    ReduceOutput, ReduceTask, ReduceTaskFactory,
};
pub use metrics::{JobMetrics, WorkflowMetrics};
